package superpose_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesSmoke builds and runs the fast examples end-to-end, checking
// their headline output. The slower sweeps (pvsweep, lotcert) are covered
// by their underlying library tests; here they are only compiled.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries")
	}
	runs := []struct {
		pkg  string
		want string
	}{
		{"./examples/quickstart", "TROJAN DETECTED"},
		{"./examples/figure1", "full magnitude"},
		{"./examples/customtrojan", "TROJAN DETECTED"},
		{"./examples/diagnosis", "diagnosis successful"},
	}
	for _, r := range runs {
		r := r
		t.Run(strings.TrimPrefix(r.pkg, "./examples/"), func(t *testing.T) {
			out, err := exec.Command("go", "run", r.pkg).CombinedOutput()
			if err != nil {
				t.Fatalf("%s: %v\n%s", r.pkg, err, out)
			}
			if !strings.Contains(string(out), r.want) {
				t.Errorf("%s output missing %q:\n%s", r.pkg, r.want, out)
			}
		})
	}
	for _, pkg := range []string{"./examples/pvsweep", "./examples/lotcert"} {
		if out, err := exec.Command("go", "build", "-o", "/dev/null", pkg).CombinedOutput(); err != nil {
			t.Errorf("%s does not build: %v\n%s", pkg, err, out)
		}
	}
}
