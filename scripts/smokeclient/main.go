// Smokeclient is the HTTP half of scripts/superposed_smoke.sh and
// scripts/cluster_smoke.sh: it health-checks a running superposed
// daemon, submits jobs, polls them to completion and asserts the
// report carries a verdict. A separate stdlib binary so the smoke
// scripts need no curl or jq.
//
// Modes (-mode):
//
//	full       health-check, submit, poll to done (the classic smoke pass)
//	submit     submit only; prints the job ID alone on stdout for capture
//	wait       poll an existing job (-job) to done
//	ready      poll /healthz/ready until the daemon reports ready
//	report     write a done job's (-job) canonical LotReport bytes to stdout
//	fleet      poll /cluster/v1/workers until -n workers hold live leases
//	busyworker poll the fleet until a worker has a job in flight; print its addr
//
// submit+wait split across a daemon SIGKILL is how the smoke scripts
// prove journal recovery end to end; submit+busyworker+report is how
// cluster_smoke.sh aims the SIGKILL at the busy worker and then
// byte-compares the failed-over report against a standalone control.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"superpose/internal/netio"
	"superpose/internal/service"
)

func main() {
	base := flag.String("base", "http://127.0.0.1:8418", "daemon base URL")
	mode := flag.String("mode", "full", "full | submit | wait | ready | report | fleet | busyworker")
	job := flag.String("job", "", "job ID to poll (-mode wait/report)")
	spec := flag.String("spec", `{"kind":"detect","case":"s35932-T200","scale":0.02,"clean":true}`,
		"job spec JSON for -mode submit/full")
	n := flag.Int("n", 1, "worker count to wait for (-mode fleet)")
	timeout := flag.Duration("timeout", 2*time.Minute, "polling budget")
	flag.Parse()

	var err error
	switch *mode {
	case "full":
		err = runFull(*base, *spec, *timeout)
	case "submit":
		var id string
		if id, err = submit(*base, *spec); err == nil {
			fmt.Println(id)
		}
	case "wait":
		if *job == "" {
			err = fmt.Errorf("-mode wait requires -job")
		} else {
			err = wait(*base, *job, *timeout)
		}
	case "ready":
		err = waitReady(*base, *timeout)
	case "report":
		if *job == "" {
			err = fmt.Errorf("-mode report requires -job")
		} else {
			err = dumpReport(*base, *job)
		}
	case "fleet":
		err = waitFleet(*base, *n, *timeout)
	case "busyworker":
		var addr string
		if addr, err = busyWorker(*base, *timeout); err == nil {
			fmt.Println(addr)
		}
	default:
		err = fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokeclient:", err)
		os.Exit(1)
	}
}

func runFull(base, spec string, timeout time.Duration) error {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	id, err := submit(base, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "smoke: submitted %s\n", id)
	return wait(base, id, timeout)
}

func submit(base, body string) (string, error) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	var st service.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: HTTP %d", resp.StatusCode)
	}
	return st.ID, nil
}

func wait(base, id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still not terminal", id)
		}
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		var cur service.Status
		err = json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if cur.State.Terminal() {
			if cur.State != service.StateDone {
				return fmt.Errorf("job ended %s: %s", cur.State, cur.Error)
			}
			switch {
			case cur.Report != nil:
				fmt.Fprintf(os.Stderr, "smoke: job done, detected=%v final |S-RPD|=%.4f (bound %.4f)\n",
					cur.Report.Detected, cur.Report.FinalSRPD, cur.Report.Varsigma)
			case cur.LotReport != nil:
				fmt.Fprintf(os.Stderr, "smoke: lot done, %d/%d dies detected (%d unstable)\n",
					cur.LotReport.Detected, len(cur.LotReport.Dies), cur.LotReport.Unstable)
			default:
				return fmt.Errorf("done job carries no report")
			}
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// dumpReport writes the canonical netio encoding of a done lot job's
// report to stdout — what cluster_smoke.sh byte-compares (cmp) between
// the failed-over cluster run and the standalone control run.
func dumpReport(base, id string) error {
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return err
	}
	var st service.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if st.State != service.StateDone || st.LotReport == nil {
		return fmt.Errorf("job %s is %s with no lot report", id, st.State)
	}
	return netio.EncodeLotReport(os.Stdout, st.LotReport)
}

// workerView mirrors cluster.WorkerView (decoded loosely so the smoke
// binary does not import internal/cluster's server half).
type workerView struct {
	Addr     string `json:"addr"`
	InFlight int    `json:"in_flight"`
}

func liveWorkers(base string) ([]workerView, error) {
	resp, err := http.Get(base + "/cluster/v1/workers")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("workers: HTTP %d", resp.StatusCode)
	}
	var body struct {
		Workers []workerView `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Workers, nil
}

func waitFleet(base string, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ws, err := liveWorkers(base)
		if err == nil && len(ws) >= n {
			return nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("fleet never reached %d workers: %w", n, err)
			}
			return fmt.Errorf("fleet never reached %d workers (have %d)", n, len(ws))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func busyWorker(base string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		ws, err := liveWorkers(base)
		if err == nil {
			for _, w := range ws {
				if w.InFlight > 0 {
					return w.Addr, nil
				}
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("no worker ever went busy")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func waitReady(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz/ready")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("daemon never became ready: %w", err)
			}
			return fmt.Errorf("daemon never became ready (last HTTP %d)", resp.StatusCode)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
