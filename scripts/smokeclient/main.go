// Smokeclient is the HTTP half of scripts/superposed_smoke.sh: it
// health-checks a running superposed daemon, submits a small detect
// job, polls it to completion and asserts the report carries a verdict.
// A separate stdlib binary so the smoke script needs no curl or jq.
//
// Modes (-mode):
//
//	full    health-check, submit, poll to done (the classic smoke pass)
//	submit  submit only; prints the job ID alone on stdout for capture
//	wait    poll an existing job (-job) to done
//	ready   poll /healthz/ready until the daemon reports ready
//
// submit+wait split across a daemon SIGKILL is how the smoke script
// proves journal recovery end to end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"superpose/internal/service"
)

func main() {
	base := flag.String("base", "http://127.0.0.1:8418", "daemon base URL")
	mode := flag.String("mode", "full", "full | submit | wait | ready")
	job := flag.String("job", "", "job ID to poll (-mode wait)")
	timeout := flag.Duration("timeout", 2*time.Minute, "polling budget")
	flag.Parse()

	var err error
	switch *mode {
	case "full":
		err = runFull(*base, *timeout)
	case "submit":
		var id string
		if id, err = submit(*base); err == nil {
			fmt.Println(id)
		}
	case "wait":
		if *job == "" {
			err = fmt.Errorf("-mode wait requires -job")
		} else {
			err = wait(*base, *job, *timeout)
		}
	case "ready":
		err = waitReady(*base, *timeout)
	default:
		err = fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokeclient:", err)
		os.Exit(1)
	}
}

func runFull(base string, timeout time.Duration) error {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	id, err := submit(base)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "smoke: submitted %s\n", id)
	return wait(base, id, timeout)
}

func submit(base string) (string, error) {
	body := `{"kind":"detect","case":"s35932-T200","scale":0.02,"clean":true}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	var st service.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: HTTP %d", resp.StatusCode)
	}
	return st.ID, nil
}

func wait(base, id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still not terminal", id)
		}
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		var cur service.Status
		err = json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if cur.State.Terminal() {
			if cur.State != service.StateDone {
				return fmt.Errorf("job ended %s: %s", cur.State, cur.Error)
			}
			if cur.Report == nil {
				return fmt.Errorf("done job carries no report")
			}
			fmt.Fprintf(os.Stderr, "smoke: job done, detected=%v final |S-RPD|=%.4f (bound %.4f)\n",
				cur.Report.Detected, cur.Report.FinalSRPD, cur.Report.Varsigma)
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func waitReady(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz/ready")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("daemon never became ready: %w", err)
			}
			return fmt.Errorf("daemon never became ready (last HTTP %d)", resp.StatusCode)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
