// Smokeclient is the HTTP half of scripts/superposed_smoke.sh: it
// health-checks a running superposed daemon, submits a small detect
// job, polls it to completion and asserts the report carries a verdict.
// A separate stdlib binary so the smoke script needs no curl or jq.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"superpose/internal/service"
)

func main() {
	base := flag.String("base", "http://127.0.0.1:8418", "daemon base URL")
	flag.Parse()
	if err := run(*base); err != nil {
		fmt.Fprintln(os.Stderr, "smokeclient:", err)
		os.Exit(1)
	}
}

func run(base string) error {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}

	body := `{"kind":"detect","case":"s35932-T200","scale":0.02,"clean":true}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	var st service.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: HTTP %d", resp.StatusCode)
	}
	fmt.Printf("smoke: submitted %s\n", st.ID)

	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still not terminal", st.ID)
		}
		resp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return err
		}
		var cur service.Status
		err = json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if cur.State.Terminal() {
			if cur.State != service.StateDone {
				return fmt.Errorf("job ended %s: %s", cur.State, cur.Error)
			}
			if cur.Report == nil {
				return fmt.Errorf("done job carries no report")
			}
			fmt.Printf("smoke: job done, detected=%v final |S-RPD|=%.4f (bound %.4f)\n",
				cur.Report.Detected, cur.Report.FinalSRPD, cur.Report.Varsigma)
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
}
