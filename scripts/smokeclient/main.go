// Smokeclient is the HTTP half of scripts/superposed_smoke.sh and
// scripts/cluster_smoke.sh: it health-checks a running superposed
// daemon, submits jobs, polls them to completion and asserts the
// report carries a verdict. A separate stdlib binary so the smoke
// scripts need no curl or jq.
//
// Modes (-mode):
//
//	full       health-check, submit, poll to done (the classic smoke pass)
//	submit     submit only; prints the job ID alone on stdout for capture
//	wait       poll an existing job (-job) to done
//	ready      poll /healthz/ready until the daemon reports ready
//	report     write a done job's (-job) canonical LotReport bytes to stdout
//	fleet      poll /cluster/v1/workers until -n workers hold live leases
//	busyworker poll the fleet until a worker has a job in flight; print its addr
//	halag      poll /v1/stats until ha_peer_lag_records is 0 (standby caught up)
//
// -base accepts a comma-separated list for an HA coordinator pair: the
// client targets one member at a time and rotates on connection errors
// and 503s (a standby, or a primary mid-promotion), so a failover is a
// retried poll, not a failed smoke run.
//
// submit+wait split across a daemon SIGKILL is how the smoke scripts
// prove journal recovery end to end; submit+busyworker+report is how
// cluster_smoke.sh aims the SIGKILL at the busy worker and then
// byte-compares the failed-over report against a standalone control.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"superpose/internal/netio"
	"superpose/internal/service"
)

func main() {
	base := flag.String("base", "http://127.0.0.1:8418", "daemon base URL(s), comma-separated for an HA pair")
	mode := flag.String("mode", "full", "full | submit | wait | ready | report | fleet | busyworker | halag")
	job := flag.String("job", "", "job ID to poll (-mode wait/report)")
	spec := flag.String("spec", `{"kind":"detect","case":"s35932-T200","scale":0.02,"clean":true}`,
		"job spec JSON for -mode submit/full")
	n := flag.Int("n", 1, "worker count to wait for (-mode fleet)")
	timeout := flag.Duration("timeout", 2*time.Minute, "polling budget")
	flag.Parse()

	t := newTarget(*base)
	var err error
	switch *mode {
	case "full":
		err = runFull(t, *spec, *timeout)
	case "submit":
		var id string
		if id, err = submit(t, *spec, *timeout); err == nil {
			fmt.Println(id)
		}
	case "wait":
		if *job == "" {
			err = fmt.Errorf("-mode wait requires -job")
		} else {
			err = wait(t, *job, *timeout)
		}
	case "ready":
		err = waitReady(t, *timeout)
	case "report":
		if *job == "" {
			err = fmt.Errorf("-mode report requires -job")
		} else {
			err = dumpReport(t, *job, *timeout)
		}
	case "fleet":
		err = waitFleet(t, *n, *timeout)
	case "busyworker":
		var addr string
		if addr, err = busyWorker(t, *timeout); err == nil {
			fmt.Println(addr)
		}
	case "halag":
		err = waitHALag(t, *timeout)
	default:
		err = fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokeclient:", err)
		os.Exit(1)
	}
}

// target is the coordinator discovery list: requests go to the current
// member; connection errors and 503s rotate to the next so a failover
// only costs a retry.
type target struct {
	bases []string
	cur   int
}

func newTarget(base string) *target {
	var bases []string
	for _, b := range strings.Split(base, ",") {
		if b = strings.TrimSpace(b); b != "" {
			bases = append(bases, b)
		}
	}
	if len(bases) == 0 {
		bases = []string{"http://127.0.0.1:8418"}
	}
	return &target{bases: bases}
}

func (t *target) base() string { return t.bases[t.cur%len(t.bases)] }
func (t *target) rotate()      { t.cur++ }

// getJSON fetches one endpoint into out. A connection error or a 503
// rotates the target and reports a retryable error; other non-2xx
// statuses are returned as-is for the caller to judge.
func (t *target) getJSON(path string, out any) (int, error) {
	resp, err := http.Get(t.base() + path)
	if err != nil {
		t.rotate()
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusServiceUnavailable {
		t.rotate()
		return resp.StatusCode, fmt.Errorf("%s: HTTP 503 (not primary)", path)
	}
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func runFull(t *target, spec string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		code, err := t.getJSON("/healthz", nil)
		if err == nil && code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("healthz never answered (last: HTTP %d, %v)", code, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	id, err := submit(t, spec, timeout)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "smoke: submitted %s\n", id)
	return wait(t, id, timeout)
}

// submit posts the job spec, retrying across the discovery list until
// a primary accepts. The spec carries no client-side submit token, so
// the retry only resends after a definitive refusal (connection error
// or 503) — never after a 202.
func submit(t *target, body string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Post(t.base()+"/v1/jobs", "application/json", strings.NewReader(body))
		if err == nil {
			var st service.Status
			derr := json.NewDecoder(resp.Body).Decode(&st)
			code := resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if code == http.StatusAccepted {
				if derr != nil {
					return "", derr
				}
				return st.ID, nil
			}
			if code != http.StatusServiceUnavailable {
				return "", fmt.Errorf("submit: HTTP %d", code)
			}
			t.rotate()
			err = fmt.Errorf("submit: HTTP 503 (not primary)")
		} else {
			t.rotate()
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("submit never accepted: %w", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func wait(t *target, id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still not terminal", id)
		}
		var cur service.Status
		code, err := t.getJSON("/v1/jobs/"+id, &cur)
		if err != nil || code != http.StatusOK {
			// Transient: connection refused (daemon restarting), 503
			// (failover in progress), 404 from a standby that has not
			// finished replaying. Keep polling until the deadline.
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if cur.State.Terminal() {
			if cur.State != service.StateDone {
				return fmt.Errorf("job ended %s: %s", cur.State, cur.Error)
			}
			switch {
			case cur.Report != nil:
				fmt.Fprintf(os.Stderr, "smoke: job done, detected=%v final |S-RPD|=%.4f (bound %.4f)\n",
					cur.Report.Detected, cur.Report.FinalSRPD, cur.Report.Varsigma)
			case cur.LotReport != nil:
				fmt.Fprintf(os.Stderr, "smoke: lot done, %d/%d dies detected (%d unstable)\n",
					cur.LotReport.Detected, len(cur.LotReport.Dies), cur.LotReport.Unstable)
			default:
				return fmt.Errorf("done job carries no report")
			}
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// dumpReport writes the canonical netio encoding of a done lot job's
// report to stdout — what cluster_smoke.sh byte-compares (cmp) between
// the failed-over cluster run and the standalone control run.
func dumpReport(t *target, id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var st service.Status
		code, err := t.getJSON("/v1/jobs/"+id, &st)
		if err == nil && code == http.StatusOK {
			if st.State != service.StateDone || st.LotReport == nil {
				return fmt.Errorf("job %s is %s with no lot report", id, st.State)
			}
			return netio.EncodeLotReport(os.Stdout, st.LotReport)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s never readable (last: HTTP %d, %v)", id, code, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// workerView mirrors cluster.WorkerView (decoded loosely so the smoke
// binary does not import internal/cluster's server half).
type workerView struct {
	Addr     string `json:"addr"`
	InFlight int    `json:"in_flight"`
}

func liveWorkers(t *target) ([]workerView, error) {
	var body struct {
		Workers []workerView `json:"workers"`
	}
	code, err := t.getJSON("/cluster/v1/workers", &body)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("workers: HTTP %d", code)
	}
	return body.Workers, nil
}

func waitFleet(t *target, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ws, err := liveWorkers(t)
		if err == nil && len(ws) >= n {
			return nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("fleet never reached %d workers: %w", n, err)
			}
			return fmt.Errorf("fleet never reached %d workers (have %d)", n, len(ws))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func busyWorker(t *target, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		ws, err := liveWorkers(t)
		if err == nil {
			for _, w := range ws {
				if w.InFlight > 0 {
					return w.Addr, nil
				}
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("no worker ever went busy")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitHALag blocks until the primary reports zero replication lag to
// its standby — the point after which a primary SIGKILL is survivable
// by journal replay rather than luck.
func waitHALag(t *target, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var stats struct {
			HA map[string]any `json:"ha"`
		}
		code, err := t.getJSON("/v1/stats", &stats)
		if err == nil && code == http.StatusOK && stats.HA != nil {
			if lag, ok := stats.HA["ha_peer_lag_records"].(float64); ok && lag == 0 {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("standby never caught up (last: HTTP %d, ha=%v, %v)", code, stats.HA, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func waitReady(t *target, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		code, err := t.getJSON("/healthz/ready", nil)
		if err == nil && code == http.StatusOK {
			return nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("daemon never became ready: %w", err)
			}
			return fmt.Errorf("daemon never became ready (last HTTP %d)", code)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
