#!/usr/bin/env sh
# Smoke test for the superposed certification daemon, in two acts:
#
#  1. Classic pass: boot on an ephemeral port, submit a small detect
#     job, poll to completion, check the report carries a verdict, then
#     drain the daemon with SIGTERM.
#  2. Kill-and-recover: boot with -data-dir (journal on), submit a job,
#     SIGKILL the daemon mid-flight, restart on the same data dir, and
#     require the recovered daemon to finish the same job ID.
#
# Requires only the go toolchain and a POSIX shell (no curl/jq): the
# HTTP client half lives in scripts/smokeclient, a tiny stdlib program.
#
# SMOKE_SPEC overrides the job spec the client submits (e.g. a fused-
# channel spec for the chaos job); empty keeps the client's default.
set -eu

cd "$(dirname "$0")/.."

log=$(mktemp)
log2=$(mktemp)
log3=$(mktemp)
datadir=$(mktemp -d)
pid="" pid2="" pid3=""
trap 'for p in "$pid" "$pid2" "$pid3"; do [ -n "$p" ] && kill "$p" 2>/dev/null || true; done; rm -rf "$log" "$log2" "$log3" "$datadir"' EXIT INT TERM

go build -o /tmp/superposed-smoke ./cmd/superposed
go build -o /tmp/smokeclient-smoke ./scripts/smokeclient

# client <args...>: the smoke client, with SMOKE_SPEC threaded through
# when set (modes that don't submit ignore the flag).
client() {
    if [ -n "${SMOKE_SPEC:-}" ]; then
        /tmp/smokeclient-smoke -spec "$SMOKE_SPEC" "$@"
    else
        /tmp/smokeclient-smoke "$@"
    fi
}

# wait_banner <log> <pid>: print the daemon's bound base URL.
wait_banner() {
    b=""
    for _ in $(seq 1 100); do
        b=$(sed -n 's/^superposed: listening on \(http:\/\/.*\)$/\1/p' "$1")
        [ -n "$b" ] && break
        kill -0 "$2" 2>/dev/null || { echo "daemon died at startup:" >&2; cat "$1" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$b" ] || { echo "daemon never announced its port:" >&2; cat "$1" >&2; exit 1; }
    echo "$b"
}

# --- Act 1: classic pass -------------------------------------------------
/tmp/superposed-smoke -addr 127.0.0.1:0 -drain 20s >"$log" 2>&1 &
pid=$!
base=$(wait_banner "$log" "$pid")
echo "smoke: daemon at $base"

client -base "$base"

# Graceful drain: SIGTERM, then require a clean exit and the farewell.
kill -TERM "$pid"
wait "$pid" || { echo "daemon exited non-zero after SIGTERM:"; cat "$log"; exit 1; }
grep -q "drained, bye" "$log" || { echo "daemon exited without draining:"; cat "$log"; exit 1; }
pid=""
echo "smoke: classic pass OK"

# --- Act 2: kill-and-recover ---------------------------------------------
/tmp/superposed-smoke -addr 127.0.0.1:0 -drain 20s -data-dir "$datadir" >"$log2" 2>&1 &
pid2=$!
base2=$(wait_banner "$log2" "$pid2")
echo "smoke: journaled daemon at $base2 (data dir $datadir)"

id=$(client -base "$base2" -mode submit)
echo "smoke: submitted $id, delivering SIGKILL"
kill -9 "$pid2"
wait "$pid2" 2>/dev/null || true
pid2=""

/tmp/superposed-smoke -addr 127.0.0.1:0 -drain 20s -data-dir "$datadir" >"$log3" 2>&1 &
pid3=$!
base3=$(wait_banner "$log3" "$pid3")
echo "smoke: restarted daemon at $base3, waiting for recovery"

client -base "$base3" -mode ready -timeout 30s
client -base "$base3" -mode wait -job "$id"

kill -TERM "$pid3"
wait "$pid3" || { echo "recovered daemon exited non-zero after SIGTERM:"; cat "$log3"; exit 1; }
grep -q "drained, bye" "$log3" || { echo "recovered daemon exited without draining:"; cat "$log3"; exit 1; }
pid3=""
echo "smoke: kill-and-recover OK"
echo "smoke: OK"
