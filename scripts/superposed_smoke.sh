#!/usr/bin/env sh
# Smoke test for the superposed certification daemon: boot it on an
# ephemeral port, submit a small detect job, poll to completion, check
# the report carries a verdict, then drain the daemon with SIGTERM.
#
# Requires only the go toolchain and a POSIX shell (no curl/jq): the
# HTTP client half lives in scripts/smokeclient, a tiny stdlib program.
set -eu

cd "$(dirname "$0")/.."

log=$(mktemp)
trap 'kill "$pid" 2>/dev/null || true; rm -f "$log"' EXIT INT TERM

go build -o /tmp/superposed-smoke ./cmd/superposed
/tmp/superposed-smoke -addr 127.0.0.1:0 -drain 20s >"$log" 2>&1 &
pid=$!

# Wait for the startup banner and extract the bound base URL.
base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's/^superposed: listening on \(http:\/\/.*\)$/\1/p' "$log")
    [ -n "$base" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "daemon died at startup:"; cat "$log"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "daemon never announced its port:"; cat "$log"; exit 1; }
echo "smoke: daemon at $base"

go run ./scripts/smokeclient -base "$base"

# Graceful drain: SIGTERM, then require a clean exit and the farewell.
kill -TERM "$pid"
wait "$pid" || { echo "daemon exited non-zero after SIGTERM:"; cat "$log"; exit 1; }
grep -q "drained, bye" "$log" || { echo "daemon exited without draining:"; cat "$log"; exit 1; }
echo "smoke: OK"
