#!/usr/bin/env sh
# Smoke test for the superposed cluster, two acts:
#
#   Act 1 — kill the busy WORKER: coordinator + two workers as real
#   processes, one lot job, SIGKILL whichever worker is running it; the
#   coordinator must fail the job over to the survivor.
#
#   Act 2 — kill the PRIMARY coordinator: an HA pair (primary + hot
#   standby replicating the journals) + two workers, one lot job,
#   SIGKILL the primary mid-lot; the standby must promote itself and
#   finish serving the job.
#
# Both acts must end with a report byte-identical to a standalone
# control run of the same spec.
#
# HA_SMOKE_FAILPOINTS, when set, is passed to the HA pair's -failpoints
# flag — CI uses it to drop replication frames mid-stream
# (cluster/ha/replicate/send|recv) and prove the stream reconnects and
# catches up before the kill.
#
# Requires only the go toolchain and a POSIX shell (no curl/jq): the
# HTTP client half lives in scripts/smokeclient, a tiny stdlib program.
set -eu

cd "$(dirname "$0")/.."

# Sized so one lot runs for several seconds — long enough to land the
# SIGKILL mid-lot, short enough for CI. Deterministic for a fixed spec,
# which is what makes the byte-compare below meaningful.
SPEC='{"kind":"lot","case":"s35932-T200","scale":0.12,"dies":8,"seeds":4,"tenant":"acme"}'

clog=$(mktemp) w1log=$(mktemp) w2log=$(mktemp) slog=$(mktemp) blog=$(mktemp)
control=$(mktemp) recovered=$(mktemp)
cdir=$(mktemp -d) w1dir=$(mktemp -d) w2dir=$(mktemp -d) sdir=$(mktemp -d) bdir=$(mktemp -d) hadir=$(mktemp -d)
cpid="" w1pid="" w2pid="" spid="" bpid=""
trap 'for p in "$cpid" "$w1pid" "$w2pid" "$spid" "$bpid"; do [ -n "$p" ] && kill -9 "$p" 2>/dev/null || true; done; rm -rf "$clog" "$w1log" "$w2log" "$slog" "$blog" "$control" "$recovered" "$cdir" "$w1dir" "$w2dir" "$sdir" "$bdir" "$hadir"' EXIT INT TERM

go build -o /tmp/superposed-csmoke ./cmd/superposed
go build -o /tmp/smokeclient-csmoke ./scripts/smokeclient

# wait_banner <log> <pid>: print the daemon's bound base URL.
wait_banner() {
    b=""
    for _ in $(seq 1 100); do
        b=$(sed -n 's/^superposed: listening on \(http:\/\/.*\)$/\1/p' "$1")
        [ -n "$b" ] && break
        kill -0 "$2" 2>/dev/null || { echo "daemon died at startup:" >&2; cat "$1" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$b" ] || { echo "daemon never announced its port:" >&2; cat "$1" >&2; exit 1; }
    echo "$b"
}

# --- Control: the same lot, standalone and uninterrupted -----------------
/tmp/superposed-csmoke -addr 127.0.0.1:0 -drain 60s -data-dir "$sdir" >"$slog" 2>&1 &
spid=$!
sbase=$(wait_banner "$slog" "$spid")
echo "cluster-smoke: control daemon at $sbase"
cid=$(/tmp/smokeclient-csmoke -base "$sbase" -mode submit -spec "$SPEC")
/tmp/smokeclient-csmoke -base "$sbase" -mode wait -job "$cid" -timeout 3m
/tmp/smokeclient-csmoke -base "$sbase" -mode report -job "$cid" >"$control"
kill -TERM "$spid"; wait "$spid" || true; spid=""
echo "cluster-smoke: control report captured ($(wc -c <"$control") bytes)"

# --- Fleet: coordinator + two workers ------------------------------------
/tmp/superposed-csmoke -role coordinator -addr 127.0.0.1:0 -lease-ttl 1s -poll 25ms \
    -drain 60s -data-dir "$cdir" >"$clog" 2>&1 &
cpid=$!
cbase=$(wait_banner "$clog" "$cpid")
/tmp/superposed-csmoke -role worker -addr 127.0.0.1:0 -coordinator-addr "$cbase" \
    -drain 60s -data-dir "$w1dir" >"$w1log" 2>&1 &
w1pid=$!
w1base=$(wait_banner "$w1log" "$w1pid")
/tmp/superposed-csmoke -role worker -addr 127.0.0.1:0 -coordinator-addr "$cbase" \
    -drain 60s -data-dir "$w2dir" >"$w2log" 2>&1 &
w2pid=$!
w2base=$(wait_banner "$w2log" "$w2pid")
/tmp/smokeclient-csmoke -base "$cbase" -mode fleet -n 2 -timeout 30s
echo "cluster-smoke: coordinator $cbase, workers $w1base $w2base"

# --- Kill the busy worker mid-lot ----------------------------------------
id=$(/tmp/smokeclient-csmoke -base "$cbase" -mode submit -spec "$SPEC")
victim=$(/tmp/smokeclient-csmoke -base "$cbase" -mode busyworker -timeout 30s)
sleep 1
case "$victim" in
"$w1base") vpid=$w1pid ;;
"$w2base") vpid=$w2pid ;;
*) echo "cluster-smoke: busy worker $victim is not in the fleet" >&2; exit 1 ;;
esac
echo "cluster-smoke: SIGKILL busy worker $victim (pid $vpid)"
kill -9 "$vpid"
[ "$vpid" = "$w1pid" ] && w1pid="" || w2pid=""

# --- The survivor finishes the job; the report must match the control ----
/tmp/smokeclient-csmoke -base "$cbase" -mode wait -job "$id" -timeout 3m
/tmp/smokeclient-csmoke -base "$cbase" -mode report -job "$id" >"$recovered"
cmp "$control" "$recovered" || {
    echo "cluster-smoke: failed-over report differs from the standalone control" >&2
    exit 1
}
echo "cluster-smoke: failed-over report is byte-identical to the control ($(wc -c <"$recovered") bytes)"

# --- Graceful teardown of the survivors ----------------------------------
for p in "$cpid" "$w1pid" "$w2pid"; do
    [ -n "$p" ] && kill -TERM "$p"
done
[ -n "$cpid" ] && { wait "$cpid" || { echo "coordinator exited non-zero:"; cat "$clog"; exit 1; }; }
[ -n "$w1pid" ] && { wait "$w1pid" || { echo "worker 1 exited non-zero:"; cat "$w1log"; exit 1; }; }
[ -n "$w2pid" ] && { wait "$w2pid" || { echo "worker 2 exited non-zero:"; cat "$w2log"; exit 1; }; }
grep -q "drained, bye" "$clog" || { echo "coordinator exited without draining:"; cat "$clog"; exit 1; }
cpid="" w1pid="" w2pid=""
echo "cluster-smoke: act 1 (kill busy worker) OK"

# =========================================================================
# Act 2 — HA pair: SIGKILL the PRIMARY coordinator mid-lot. The standby
# tails the primary's journals over the replication stream, detects the
# lease silence, promotes itself, re-attaches the in-flight work and
# serves the byte-identical report. The client side never targets one
# node: every smokeclient call below gets the full discovery list.
# =========================================================================
ha_fp="${HA_SMOKE_FAILPOINTS:-}"
[ -n "$ha_fp" ] && echo "cluster-smoke: HA failpoints armed: $ha_fp"
lease="$hadir/primary.lease"

/tmp/superposed-csmoke -role coordinator -addr 127.0.0.1:0 -lease-ttl 2s -poll 25ms \
    -ha-lease "$lease" -ha-lease-ttl 1s \
    ${ha_fp:+-failpoints} ${ha_fp:+"$ha_fp"} \
    -drain 60s -data-dir "$hadir/a" >"$clog" 2>&1 &
cpid=$!
pbase=$(wait_banner "$clog" "$cpid")
/tmp/superposed-csmoke -role standby -addr 127.0.0.1:0 -lease-ttl 2s -poll 25ms \
    -ha-lease "$lease" -ha-lease-ttl 1s -peer "$pbase" \
    ${ha_fp:+-failpoints} ${ha_fp:+"$ha_fp"} \
    -drain 60s -data-dir "$hadir/b" >"$blog" 2>&1 &
bpid=$!
bbase=$(wait_banner "$blog" "$bpid")
discovery="$pbase,$bbase"
/tmp/superposed-csmoke -role worker -addr 127.0.0.1:0 -coordinator-addr "$discovery" \
    -drain 60s -data-dir "$hadir/w1" >"$w1log" 2>&1 &
w1pid=$!
/tmp/superposed-csmoke -role worker -addr 127.0.0.1:0 -coordinator-addr "$discovery" \
    -drain 60s -data-dir "$hadir/w2" >"$w2log" 2>&1 &
w2pid=$!
/tmp/smokeclient-csmoke -base "$pbase" -mode fleet -n 2 -timeout 30s
echo "cluster-smoke: HA pair primary=$pbase standby=$bbase, 2 workers"

id=$(/tmp/smokeclient-csmoke -base "$discovery" -mode submit -spec "$SPEC")
/tmp/smokeclient-csmoke -base "$pbase" -mode busyworker -timeout 30s >/dev/null
# Only kill once the standby's journal copy has caught up: surviving the
# crash must be replication, not luck. With HA_SMOKE_FAILPOINTS set this
# also proves the stream reconnects through injected frame drops.
/tmp/smokeclient-csmoke -base "$pbase" -mode halag -timeout 30s
sleep 1
echo "cluster-smoke: SIGKILL primary coordinator $pbase (pid $cpid)"
kill -9 "$cpid"
cpid=""

/tmp/smokeclient-csmoke -base "$discovery" -mode wait -job "$id" -timeout 3m
/tmp/smokeclient-csmoke -base "$discovery" -mode report -job "$id" >"$recovered"
cmp "$control" "$recovered" || {
    echo "cluster-smoke: failed-over report differs from the standalone control" >&2
    exit 1
}
echo "cluster-smoke: post-failover report is byte-identical to the control ($(wc -c <"$recovered") bytes)"

for p in "$bpid" "$w1pid" "$w2pid"; do
    kill -TERM "$p"
done
wait "$bpid" || { echo "standby exited non-zero:"; cat "$blog"; exit 1; }
wait "$w1pid" || { echo "worker 1 exited non-zero:"; cat "$w1log"; exit 1; }
wait "$w2pid" || { echo "worker 2 exited non-zero:"; cat "$w2log"; exit 1; }
grep -q "drained, bye" "$blog" || { echo "promoted standby exited without draining:"; cat "$blog"; exit 1; }
grep -q "promoted to primary" "$blog" || { echo "standby never logged a promotion:"; cat "$blog"; exit 1; }
bpid="" w1pid="" w2pid=""
echo "cluster-smoke: act 2 (kill primary coordinator) OK"
echo "cluster-smoke: OK"
