#!/usr/bin/env sh
# Smoke test for the superposed cluster: boot a coordinator and two
# workers as real processes, submit a lot job, SIGKILL whichever worker
# is running it, and require the coordinator to fail the job over to
# the survivor — finishing with a report byte-identical to a standalone
# control run of the same spec.
#
# Requires only the go toolchain and a POSIX shell (no curl/jq): the
# HTTP client half lives in scripts/smokeclient, a tiny stdlib program.
set -eu

cd "$(dirname "$0")/.."

# Sized so one lot runs for several seconds — long enough to land the
# SIGKILL mid-lot, short enough for CI. Deterministic for a fixed spec,
# which is what makes the byte-compare below meaningful.
SPEC='{"kind":"lot","case":"s35932-T200","scale":0.12,"dies":8,"seeds":4,"tenant":"acme"}'

clog=$(mktemp) w1log=$(mktemp) w2log=$(mktemp) slog=$(mktemp)
control=$(mktemp) recovered=$(mktemp)
cdir=$(mktemp -d) w1dir=$(mktemp -d) w2dir=$(mktemp -d) sdir=$(mktemp -d)
cpid="" w1pid="" w2pid="" spid=""
trap 'for p in "$cpid" "$w1pid" "$w2pid" "$spid"; do [ -n "$p" ] && kill -9 "$p" 2>/dev/null || true; done; rm -rf "$clog" "$w1log" "$w2log" "$slog" "$control" "$recovered" "$cdir" "$w1dir" "$w2dir" "$sdir"' EXIT INT TERM

go build -o /tmp/superposed-csmoke ./cmd/superposed
go build -o /tmp/smokeclient-csmoke ./scripts/smokeclient

# wait_banner <log> <pid>: print the daemon's bound base URL.
wait_banner() {
    b=""
    for _ in $(seq 1 100); do
        b=$(sed -n 's/^superposed: listening on \(http:\/\/.*\)$/\1/p' "$1")
        [ -n "$b" ] && break
        kill -0 "$2" 2>/dev/null || { echo "daemon died at startup:" >&2; cat "$1" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$b" ] || { echo "daemon never announced its port:" >&2; cat "$1" >&2; exit 1; }
    echo "$b"
}

# --- Control: the same lot, standalone and uninterrupted -----------------
/tmp/superposed-csmoke -addr 127.0.0.1:0 -drain 60s -data-dir "$sdir" >"$slog" 2>&1 &
spid=$!
sbase=$(wait_banner "$slog" "$spid")
echo "cluster-smoke: control daemon at $sbase"
cid=$(/tmp/smokeclient-csmoke -base "$sbase" -mode submit -spec "$SPEC")
/tmp/smokeclient-csmoke -base "$sbase" -mode wait -job "$cid" -timeout 3m
/tmp/smokeclient-csmoke -base "$sbase" -mode report -job "$cid" >"$control"
kill -TERM "$spid"; wait "$spid" || true; spid=""
echo "cluster-smoke: control report captured ($(wc -c <"$control") bytes)"

# --- Fleet: coordinator + two workers ------------------------------------
/tmp/superposed-csmoke -role coordinator -addr 127.0.0.1:0 -lease-ttl 1s -poll 25ms \
    -drain 60s -data-dir "$cdir" >"$clog" 2>&1 &
cpid=$!
cbase=$(wait_banner "$clog" "$cpid")
/tmp/superposed-csmoke -role worker -addr 127.0.0.1:0 -coordinator-addr "$cbase" \
    -drain 60s -data-dir "$w1dir" >"$w1log" 2>&1 &
w1pid=$!
w1base=$(wait_banner "$w1log" "$w1pid")
/tmp/superposed-csmoke -role worker -addr 127.0.0.1:0 -coordinator-addr "$cbase" \
    -drain 60s -data-dir "$w2dir" >"$w2log" 2>&1 &
w2pid=$!
w2base=$(wait_banner "$w2log" "$w2pid")
/tmp/smokeclient-csmoke -base "$cbase" -mode fleet -n 2 -timeout 30s
echo "cluster-smoke: coordinator $cbase, workers $w1base $w2base"

# --- Kill the busy worker mid-lot ----------------------------------------
id=$(/tmp/smokeclient-csmoke -base "$cbase" -mode submit -spec "$SPEC")
victim=$(/tmp/smokeclient-csmoke -base "$cbase" -mode busyworker -timeout 30s)
sleep 1
case "$victim" in
"$w1base") vpid=$w1pid ;;
"$w2base") vpid=$w2pid ;;
*) echo "cluster-smoke: busy worker $victim is not in the fleet" >&2; exit 1 ;;
esac
echo "cluster-smoke: SIGKILL busy worker $victim (pid $vpid)"
kill -9 "$vpid"
[ "$vpid" = "$w1pid" ] && w1pid="" || w2pid=""

# --- The survivor finishes the job; the report must match the control ----
/tmp/smokeclient-csmoke -base "$cbase" -mode wait -job "$id" -timeout 3m
/tmp/smokeclient-csmoke -base "$cbase" -mode report -job "$id" >"$recovered"
cmp "$control" "$recovered" || {
    echo "cluster-smoke: failed-over report differs from the standalone control" >&2
    exit 1
}
echo "cluster-smoke: failed-over report is byte-identical to the control ($(wc -c <"$recovered") bytes)"

# --- Graceful teardown of the survivors ----------------------------------
for p in "$cpid" "$w1pid" "$w2pid"; do
    [ -n "$p" ] && kill -TERM "$p"
done
[ -n "$cpid" ] && { wait "$cpid" || { echo "coordinator exited non-zero:"; cat "$clog"; exit 1; }; }
[ -n "$w1pid" ] && { wait "$w1pid" || { echo "worker 1 exited non-zero:"; cat "$w1log"; exit 1; }; }
[ -n "$w2pid" ] && { wait "$w2pid" || { echo "worker 2 exited non-zero:"; cat "$w2log"; exit 1; }; }
grep -q "drained, bye" "$clog" || { echo "coordinator exited without draining:"; cat "$clog"; exit 1; }
cpid="" w1pid="" w2pid=""
echo "cluster-smoke: OK"
