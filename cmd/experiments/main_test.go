package main

import (
	"runtime"
	"testing"
)

func TestResolveWorkers(t *testing.T) {
	if got, err := resolveWorkers(0); err != nil || got != runtime.NumCPU() {
		t.Errorf("-workers 0: got (%d, %v), want one per CPU (%d)", got, err, runtime.NumCPU())
	}
	if got, err := resolveWorkers(7); err != nil || got != 7 {
		t.Errorf("-workers 7: got (%d, %v)", got, err)
	}
	if _, err := resolveWorkers(-4); err == nil {
		t.Error("-workers -4 must error")
	}
}

func TestParseCase(t *testing.T) {
	c, err := parseCase("s35932-T200")
	if err != nil || c.Benchmark != "s35932" || c.Trojan != "T200" {
		t.Errorf("parseCase: got (%v, %v)", c, err)
	}
	if _, err := parseCase("malformed"); err == nil {
		t.Error("malformed case must error")
	}
}
