// Experiments regenerates every table and figure of the paper's
// evaluation section (§V):
//
//	experiments -table 1              # Table I: Trojan signal isolation
//	experiments -table 1 -case s35932-T200  # one Table I row
//	experiments -table 1 -csv out.csv # machine-readable rows
//	experiments -table 2              # Table II: detection likelihood
//	experiments -table 2 -paper       # Table II from the paper's printed S-RPDs
//	experiments -table control        # clean-die false-positive controls
//	experiments -table fig1           # Figure 1: the ideal superposition pair
//	experiments -table fig2           # Figure 2: the strategic modification suite
//	experiments -table all            # everything
//
//	# tester-fault robustness table (naive vs robust acquisition); the
//	# configuration of the recorded EXPERIMENTS.md run:
//	experiments -table robust -scale 0.04 -varsigma 0.08 -chip-seed 99
//
//	# σ-sweep: detection probability vs intra-die variation, run for real
//	experiments -table sweep -case s38584-T100 -dies 5
//
//	# multi-parameter fusion ROC: power vs delay vs fused verdict across
//	# tester fault presets; -roc-out keeps the full curves as JSON
//	experiments -table fusion -scale 0.04 -varsigma 0.08 -chip-seed 99 -roc-out roc.json
//
// Every table fans out across -workers goroutines (default: one per CPU)
// with bit-identical output at any worker count; -workers 1 is the exact
// serial path.
//
// Absolute numbers depend on the synthetic benchmark substitution (see
// DESIGN.md §2); the shape — who wins, by what order of magnitude — is the
// reproduction target, recorded in EXPERIMENTS.md.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"superpose/internal/core"
	"superpose/internal/netio"
	"superpose/internal/profile"
	"superpose/internal/report"
	"superpose/internal/trust"
)

func main() {
	var (
		table    = flag.String("table", "all", "which artifact: 1, 2, fig1, fig2, control, robust, sweep, fusion, all")
		scale    = flag.Float64("scale", 0.25, "benchmark scale (1.0 = published size)")
		varsigma = flag.Float64("varsigma", 0.15, "manufacturing intra-die 3σ")
		chipSeed = flag.Uint64("chip-seed", 0xC0FFEE, "die selection seed")
		paper    = flag.Bool("paper", false, "table 2: use the paper's printed S-RPD values")
		caseName = flag.String("case", "", "restrict Table I (or pick the sweep case), e.g. s35932-T200")
		csvPath  = flag.String("csv", "", "also write Table I rows as CSV to this file")
		dies     = flag.Int("dies", 5, "table sweep: dies per variation magnitude")
		rocOut   = flag.String("roc-out", "", "table fusion: also write the full ROC curves as JSON to this file")
		workers  = flag.Int("workers", 0, "parallel workers (0 = one per CPU, 1 = serial); output is bit-identical at any count")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" || *memProfile != "" {
		stopProfile, err := profile.Start(*cpuProfile, *memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		// Profiles are written on the normal return path only; the error
		// exits below abandon them.
		defer func() {
			if err := stopProfile(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	nw, err := resolveWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	cfg := core.ExperimentConfig{Scale: *scale, Varsigma: *varsigma, ChipSeed: *chipSeed, Workers: nw}

	var rows []core.TableIRow
	needTableI := *table == "1" || *table == "all" || (*table == "2" && !*paper)

	if needTableI {
		fmt.Fprintf(os.Stderr, "running Table I pipeline (scale %.2f, 3σ_intra %.0f%%)...\n",
			*scale, 100**varsigma)
		var err error
		if *caseName != "" {
			c, err := parseCase(*caseName)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(2)
			}
			row, err := core.RunTableICase(c, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			rows = []core.TableIRow{row}
		} else if rows, err = core.RunTableI(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if *csvPath != "" {
			if err := writeCSV(*csvPath, rows); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}

	switch *table {
	case "1":
		printTableI(rows)
	case "control":
		ctrl, err := core.RunCleanControls(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		tbl := report.New("CONTROL: clean-die runs (false-positive check, not in the paper)",
			"Host", "Final |S-RPD|", "Flagged")
		for _, r := range ctrl {
			tbl.Row(r.Case, fmt.Sprintf("%.4f", r.FinalSRPD), fmt.Sprintf("%v", r.Detected))
		}
		fmt.Print(tbl)
	case "robust":
		rcfg := cfg
		// Fault-perturbed significance rankings need a wider strategic
		// net (see ExperimentConfig.MaxPairs).
		rcfg.MaxPairs = 6
		fmt.Fprintf(os.Stderr, "running robustness table (4 regimes x 2 policies)...\n")
		rrows, err := core.RunRobustnessTable(rcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		printRobustness(rrows)
	case "fusion":
		fcfg := cfg
		// Same widened strategic net the robustness table uses: the
		// fault-perturbed rankings need more candidate pairs.
		fcfg.MaxPairs = 6
		fmt.Fprintf(os.Stderr, "running fusion table (%d tester presets x 3 channels)...\n",
			len(core.FusionPresets))
		frows, err := core.RunFusionTable(fcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		printFusion(frows)
		if *rocOut != "" {
			if err := netio.WriteROCFile(*rocOut, frows); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote ROC curves to %s\n", *rocOut)
		}
	case "sweep":
		c := trust.Case{Benchmark: "s38584", Trojan: "T100"}
		if *caseName != "" {
			var err error
			if c, err = parseCase(*caseName); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(2)
			}
		}
		fmt.Fprintf(os.Stderr, "running sigma sweep for %s (%d dies per magnitude)...\n", c, *dies)
		srows, err := core.RunSigmaSweep(c, cfg, nil, *dies)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		printSweep(c, srows)
	case "2":
		if *paper {
			printTableII(core.PaperTableII(), "paper-printed S-RPD")
		} else {
			printTableII(core.RunTableII(rows), "measured S-RPD")
		}
	case "fig1":
		printFigure1()
	case "fig2":
		printFigure2()
	case "all":
		printTableI(rows)
		fmt.Println()
		printTableII(core.RunTableII(rows), "measured S-RPD")
		fmt.Println()
		printTableII(core.PaperTableII(), "paper-printed S-RPD")
		fmt.Println()
		printFigure1()
		fmt.Println()
		printFigure2()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown table %q\n", *table)
		os.Exit(2)
	}
}

// parseCase resolves a <bench>-<trojan> flag value.
func parseCase(s string) (trust.Case, error) {
	parts := strings.SplitN(s, "-", 2)
	if len(parts) != 2 {
		return trust.Case{}, fmt.Errorf("bad case %q: want <bench>-<trojan>, e.g. s35932-T200", s)
	}
	return trust.Case{Benchmark: parts[0], Trojan: parts[1]}, nil
}

// resolveWorkers validates the -workers flag: 0 means one worker per CPU,
// positive counts are taken as-is, negative counts are rejected.
func resolveWorkers(w int) (int, error) {
	if w < 0 {
		return 0, fmt.Errorf("-workers must be >= 0, got %d", w)
	}
	if w == 0 {
		return runtime.NumCPU(), nil
	}
	return w, nil
}

func writeCSV(path string, rows []core.TableIRow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"case", "atpg_rpd", "atpg_tca", "adaptive_rpd", "adaptive_tca",
		"super_srpd", "super_tca", "strategic_srpd", "strategic_tca",
		"mag_over_atpg", "mag_over_adaptive"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Case,
			fmt.Sprintf("%g", r.ATPGRPD), fmt.Sprintf("%g", r.ATPGTCA),
			fmt.Sprintf("%g", r.AdaptiveRPD), fmt.Sprintf("%g", r.AdaptiveTCA),
			fmt.Sprintf("%g", r.SuperSRPD), fmt.Sprintf("%g", r.SuperTCA),
			fmt.Sprintf("%g", r.StrategicSRPD), fmt.Sprintf("%g", r.StrategicTCA),
			fmt.Sprintf("%g", r.MagOverATPG), fmt.Sprintf("%g", r.MagOverAdaptive),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func printTableI(rows []core.TableIRow) {
	tbl := report.New("TABLE I: Trojan Signal Isolation Achievements with Various Approaches",
		"Benchmark", "ATPG-RPD", "TCA", "Adapt-RPD", "TCA", "S-RPD", "TCA",
		"Strat-SRPD", "TCA", "xATPG", "xAdapt")
	for _, r := range rows {
		tbl.Row(r.Case,
			fmt.Sprintf("%.5f", r.ATPGRPD), fmt.Sprintf("%.4f", r.ATPGTCA),
			fmt.Sprintf("%.5f", r.AdaptiveRPD), fmt.Sprintf("%.4f", r.AdaptiveTCA),
			fmt.Sprintf("%.4f", r.SuperSRPD), fmt.Sprintf("%.3f", r.SuperTCA),
			fmt.Sprintf("%.4f", r.StrategicSRPD), fmt.Sprintf("%.3f", r.StrategicTCA),
			fmt.Sprintf("%.1fx", r.MagOverATPG), fmt.Sprintf("%.1fx", r.MagOverAdaptive))
	}
	fmt.Print(tbl)
}

func printTableII(rows []core.TableIIRow, source string) {
	headers := []string{"Benchmark", "S-RPD"}
	for _, v := range core.TableIIVarsigmas {
		headers = append(headers, fmt.Sprintf("%.0f%%", 100*v))
	}
	tbl := report.New(
		fmt.Sprintf("TABLE II: Trojan Detection Likelihood w/ Intra-Die Variation (%s)", source),
		headers...)
	for _, r := range rows {
		cells := []interface{}{r.Case, fmt.Sprintf("%.3f", r.AchievedSRPD)}
		for _, p := range r.Probabilities {
			cells = append(cells, core.FormatProbability(p))
		}
		tbl.Row(cells...)
	}
	fmt.Print(tbl)
}

func printSweep(c trust.Case, rows []core.SigmaSweepRow) {
	tbl := report.New(fmt.Sprintf("SWEEP: detection vs intra-die variation, %s (measured dies)", c),
		"3sigma_intra", "Dies", "Detected", "Unstable", "mean |S-RPD|", "min", "max", "P(detect)")
	for _, r := range rows {
		tbl.Row(fmt.Sprintf("%.0f%%", 100*r.Varsigma),
			fmt.Sprintf("%d", r.Dies), fmt.Sprintf("%d", r.Detected),
			fmt.Sprintf("%d", r.Unstable),
			fmt.Sprintf("%.4f", r.SRPD.Mean), fmt.Sprintf("%.4f", r.SRPD.Min),
			fmt.Sprintf("%.4f", r.SRPD.Max),
			core.FormatProbability(r.PDetect))
	}
	fmt.Print(tbl)
}

func printRobustness(rows []core.RobustnessRow) {
	tbl := report.New("ROBUSTNESS: tester fault regimes x acquisition policies",
		"Regime", "Policy", "TPR", "FPR", "Unstable", "mean |S-RPD|", "Acquisition (per lot-pair)")
	for _, r := range rows {
		tbl.Row(r.Regime, r.Policy,
			fmt.Sprintf("%d/%d", r.Detected, r.Infected),
			fmt.Sprintf("%d/%d", r.FalsePos, r.Clean),
			fmt.Sprintf("%d", r.Unstable),
			fmt.Sprintf("%.4f", r.MeanSRPD),
			fmt.Sprintf("%v", r.Acquisition))
	}
	fmt.Print(tbl)
}

func printFusion(rows []core.FusionRow) {
	tbl := report.New("FUSION: power x delay side-channel fusion across tester fault presets",
		"Regime", "Case", "AUC power", "AUC delay", "AUC fused", "Threshold",
		"Fused TPR", "Fused FPR", "Power TPR", "Train FP", "Unstable")
	for _, r := range rows {
		tbl.Row(r.Preset, r.Case,
			fmt.Sprintf("%.3f", r.PowerAUC),
			fmt.Sprintf("%.3f", r.DelayAUC),
			fmt.Sprintf("%.3f", r.FusedAUC),
			fmt.Sprintf("%.3g", r.Threshold),
			fmt.Sprintf("%d/%d", r.FusedDetected, r.Infected),
			fmt.Sprintf("%d/%d", r.FusedFP, r.Clean),
			fmt.Sprintf("%d/%d", r.PowerDetected, r.Infected),
			fmt.Sprintf("%d/%d", r.TrainFP, r.TrainDies),
			fmt.Sprintf("%d", r.Unstable))
	}
	fmt.Print(tbl)
}

func printFigure1() {
	demo, err := core.BuildFigure1()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Println("FIGURE 1: test pattern pair leveraging superposition to fully magnify the Trojan")
	fmt.Printf("  TPa (activates):   %s\n", demo.TPa)
	fmt.Printf("  TPb (deactivates): %s\n", demo.TPb)
	fmt.Printf("  observed power:  POa=%.3f POb=%.3f   nominal: PNa=%.3f PNb=%.3f\n",
		demo.ObservedA, demo.ObservedB, demo.NominalA, demo.NominalB)
	fmt.Printf("  unique benign activity: %d gates (perfect overlap)\n", demo.UniqueBenign)
	fmt.Printf("  superposition residual: %.3f = Trojan gates %.3f + payload-induced %.3f\n",
		demo.Residual, demo.TrojanEnergy, demo.InducedEnergy)
	fmt.Println("  -> the Trojan signal stands alone at full magnitude")
}

func printFigure2() {
	fmt.Println("FIGURE 2: suite of strategic test pattern modifications")
	fmt.Printf("  %-3s %-30s %-10s %-10s %s\n", "#", "Modification", "Original", "Updated", "Classified")
	for _, r := range core.Figure2Rows() {
		fmt.Printf("  %-3d %-30s %-10s %-10s %s\n", r.Num, r.Name, r.Original, r.Updated, r.Kind)
	}
}
