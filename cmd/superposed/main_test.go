package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"superpose/internal/failpoint"
	"superpose/internal/service"
)

// lineWriter is a concurrency-safe io.Writer that hands complete lines
// to a channel, so the test can react to the daemon's startup banner.
type lineWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	lines chan string
}

func newLineWriter() *lineWriter {
	return &lineWriter{lines: make(chan string, 16)}
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, _ := w.buf.Write(p)
	for {
		line, err := w.buf.ReadString('\n')
		if err != nil {
			// Partial line: keep it buffered for the next write.
			w.buf.WriteString(line)
			break
		}
		select {
		case w.lines <- strings.TrimSuffix(line, "\n"):
		default:
		}
	}
	return n, nil
}

// startDaemon runs run() on an ephemeral port and returns the base URL
// plus a channel carrying run's eventual error.
func startDaemon(t *testing.T, extra ...string) (string, *lineWriter, chan error) {
	t.Helper()
	out := newLineWriter()
	args := append([]string{"-addr", "127.0.0.1:0", "-drain", "10s"}, extra...)
	errc := make(chan error, 1)
	go func() { errc <- run(args, out) }()

	deadline := time.After(10 * time.Second)
	for {
		select {
		case line := <-out.lines:
			// Earlier banners (e.g. "failpoints armed") may precede the
			// listen line; scan until it shows up.
			const marker = "listening on "
			if i := strings.Index(line, marker); i >= 0 {
				return strings.TrimSpace(line[i+len(marker):]), out, errc
			}
		case err := <-errc:
			t.Fatalf("daemon exited before listening: %v", err)
		case <-deadline:
			t.Fatal("daemon never printed its listen address")
		}
	}
}

// TestDaemonLifecycle boots the daemon, exercises the API over a real
// TCP socket, then delivers SIGTERM and requires a clean drain.
func TestDaemonLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the real daemon and runs a detection job")
	}
	base, out, errc := startDaemon(t)

	// Health.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}

	// Malformed submission is a client error, not a daemon failure.
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submit: HTTP %d, want 400", resp.StatusCode)
	}

	// A real (small) job runs to completion.
	body := `{"kind":"detect","case":"s35932-T200","scale":0.02,"clean":true}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", resp.StatusCode)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished", st.ID)
		}
		resp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur service.Status
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if cur.State.Terminal() {
			if cur.State != service.StateDone {
				t.Fatalf("job ended %s: %s", cur.State, cur.Error)
			}
			if cur.Report == nil {
				t.Fatal("done job carries no report")
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// SIGTERM to ourselves: run() is wired to signal.NotifyContext, so
	// the daemon must drain and exit cleanly.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("daemon exited with error after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	// The farewell line confirms the drain path ran, not a crash-exit.
	sawBye := false
	for {
		select {
		case line := <-out.lines:
			if strings.Contains(line, "drained, bye") {
				sawBye = true
			}
			continue
		default:
		}
		break
	}
	if !sawBye {
		t.Error("daemon exited without the drain farewell")
	}
}

// TestDaemonReadyLifecycle boots the daemon with a journal and a
// failpoint-stretched recovery window, and pins the liveness/readiness
// split over the real HTTP surface: live answers 200 while ready holds
// 503 until replay completes, then both pass, a job runs, and SIGTERM
// drains cleanly.
func TestDaemonReadyLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the real daemon and runs a detection job")
	}
	// The -failpoints flag arms the process-global registry; disarm it so
	// later tests in this binary see a clean slate.
	t.Cleanup(failpoint.DisableAll)
	base, out, errc := startDaemon(t,
		"-data-dir", t.TempDir(),
		"-failpoints", "service/recovery=sleep(400ms)")

	probe := func(path string) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Recovery is held open by the failpoint: alive, not ready.
	if code := probe("/healthz/live"); code != http.StatusOK {
		t.Errorf("live during recovery: HTTP %d, want 200", code)
	}
	if code := probe("/healthz/ready"); code != http.StatusServiceUnavailable {
		t.Errorf("ready during recovery: HTTP %d, want 503", code)
	}

	deadline := time.Now().Add(10 * time.Second)
	for probe("/healthz/ready") != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("readiness never flipped after recovery")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code := probe("/healthz"); code != http.StatusOK {
		t.Errorf("combined healthz after recovery: HTTP %d, want 200", code)
	}

	// The ready daemon still does its day job.
	body := `{"kind":"detect","case":"s35932-T200","scale":0.02,"clean":true}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", resp.StatusCode)
	}
	jobDeadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(jobDeadline) {
			t.Fatalf("job %s never finished", st.ID)
		}
		resp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur service.Status
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if cur.State.Terminal() {
			if cur.State != service.StateDone {
				t.Fatalf("job ended %s: %s", cur.State, cur.Error)
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("daemon exited with error after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	sawBye := false
	for {
		select {
		case line := <-out.lines:
			if strings.Contains(line, "drained, bye") {
				sawBye = true
			}
			continue
		default:
		}
		break
	}
	if !sawBye {
		t.Error("daemon exited without the drain farewell")
	}
}

// TestDaemonFlagError pins the exit path for unparseable flags.
func TestDaemonFlagError(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &buf); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
}

// TestDaemonAddrInUse pins the error path when the port is taken.
func TestDaemonAddrInUse(t *testing.T) {
	base, _, errc := startDaemon(t)
	addr := strings.TrimPrefix(base, "http://")

	var buf bytes.Buffer
	if err := run([]string{"-addr", addr}, &buf); err == nil {
		t.Fatal("second daemon bound an already-taken port")
	}

	// Tear the first daemon down so later tests see a quiet process.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-errc:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
