package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"superpose/internal/journal"
	"superpose/internal/netio"
	"superpose/internal/service"
)

// TestHelperDaemon is not a test: it is the child-process entry point
// for the multi-process cluster e2e. When re-exec'd with
// SUPERPOSED_HELPER=1, it runs the real daemon with the args after
// "--" and never returns control to the test harness.
func TestHelperDaemon(t *testing.T) {
	if os.Getenv("SUPERPOSED_HELPER") != "1" {
		t.Skip("helper process entry point, not a test")
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	if err := run(args, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "helper daemon:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// daemonProc is one spawned superposed child process.
type daemonProc struct {
	cmd  *exec.Cmd
	base string // http://host:port from the listen banner
}

// spawnDaemon re-execs the test binary as a superposed daemon and
// waits for its listen banner.
func spawnDaemon(t *testing.T, args ...string) *daemonProc {
	t.Helper()
	full := append([]string{"-test.run=^TestHelperDaemon$", "--"}, args...)
	cmd := exec.Command(os.Args[0], full...)
	cmd.Env = append(os.Environ(), "SUPERPOSED_HELPER=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &daemonProc{cmd: cmd}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})

	banner := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			const marker = "listening on "
			if i := strings.Index(line, marker); i >= 0 {
				select {
				case banner <- strings.TrimSpace(line[i+len(marker):]):
				default:
				}
			}
		}
	}()
	select {
	case p.base = <-banner:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon %v never printed its listen address", args)
	}
	return p
}

// e2eSpec is sized so one lot takes several seconds on a laptop-class
// machine: long enough to SIGKILL the worker mid-lot, short enough for
// CI. The flow is deterministic for a fixed spec (shared ATPG seeds,
// per-die chip seeds), so the handoff re-run must reproduce the
// interrupted run bit for bit.
const e2eSpec = `{"kind":"lot","case":"s35932-T200","scale":0.12,"dies":8,"seeds":4,"tenant":"acme"}`

// controlLotReport runs the e2e spec start-to-finish in-process and
// returns its canonical encoding — the byte-identity reference.
func controlLotReport(t *testing.T) ([]byte, time.Duration) {
	t.Helper()
	var spec service.JobSpec
	if err := json.Unmarshal([]byte(e2eSpec), &spec); err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Options{QueueSize: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	start := time.Now()
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Minute)
	for !j.Status().State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("control run never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := j.Status()
	if st.State != service.StateDone || st.LotReport == nil {
		t.Fatalf("control run ended %s: %s", st.State, st.Error)
	}
	var buf bytes.Buffer
	if err := netio.EncodeLotReport(&buf, st.LotReport); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), time.Since(start)
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// workerView mirrors cluster.WorkerView over the wire.
type workerView struct {
	ID       string  `json:"id"`
	Addr     string  `json:"addr"`
	InFlight int     `json:"in_flight"`
	Lease    float64 `json:"lease_remaining_sec"`
}

func liveWorkers(t *testing.T, coord string) []workerView {
	t.Helper()
	var body struct {
		Workers []workerView `json:"workers"`
	}
	getJSON(t, coord+"/cluster/v1/workers", &body)
	return body.Workers
}

// countJournal replays a journal directory and tallies records the
// filter accepts. The owning daemon must be dead first.
func countJournal(t *testing.T, dir string, filter func(map[string]any) bool) int {
	t.Helper()
	jnl, records, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatalf("open journal %s: %v", dir, err)
	}
	jnl.Close()
	n := 0
	for _, payload := range records {
		var rec map[string]any
		if err := json.Unmarshal(payload, &rec); err != nil {
			t.Fatalf("journal %s: malformed record %q", dir, payload)
		}
		if filter(rec) {
			n++
		}
	}
	return n
}

// TestClusterKillWorkerMidLot is the cluster layer's headline proof:
// a coordinator and two workers as real processes, one lot job, the
// busy worker SIGKILLed mid-lot. The coordinator must detect the lease
// death, hand the job to the survivor, and serve a LotReport that is
// byte-identical to an uninterrupted control run — with the job
// executed to completion exactly once.
func TestClusterKillWorkerMidLot(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster e2e with a multi-second lot job")
	}

	control, controlDur := controlLotReport(t)
	t.Logf("control run: %s, %d report bytes", controlDur, len(control))

	coordDir := t.TempDir()
	workerDirs := []string{t.TempDir(), t.TempDir()}
	coord := spawnDaemon(t,
		"-role", "coordinator", "-addr", "127.0.0.1:0",
		"-lease-ttl", "1s", "-poll", "25ms",
		"-data-dir", coordDir, "-drain", "3m")
	workers := make([]*daemonProc, 2)
	for i := range workers {
		workers[i] = spawnDaemon(t,
			"-role", "worker", "-addr", "127.0.0.1:0",
			"-coordinator-addr", coord.base,
			"-data-dir", workerDirs[i], "-drain", "3m")
	}

	// Fleet assembled: both workers hold leases.
	deadline := time.Now().Add(30 * time.Second)
	for len(liveWorkers(t, coord.base)) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached 2 live workers: %+v", liveWorkers(t, coord.base))
		}
		time.Sleep(25 * time.Millisecond)
	}

	resp, err := http.Post(coord.base+"/v1/jobs", "application/json", strings.NewReader(e2eSpec))
	if err != nil {
		t.Fatal(err)
	}
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", resp.StatusCode)
	}

	// Find the worker actually running the lot...
	var victimAddr string
	deadline = time.Now().Add(30 * time.Second)
	for victimAddr == "" {
		if time.Now().After(deadline) {
			t.Fatal("no worker ever went busy")
		}
		for _, w := range liveWorkers(t, coord.base) {
			if w.InFlight > 0 {
				victimAddr = w.Addr
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	// ...let it get genuinely mid-lot, then kill -9.
	midLot := controlDur / 3
	if midLot > 2*time.Second {
		midLot = 2 * time.Second
	}
	time.Sleep(midLot)
	var victim, survivor *daemonProc
	for _, w := range workers {
		if w.base == victimAddr {
			victim = w
		} else {
			survivor = w
		}
	}
	if victim == nil {
		t.Fatalf("busy worker %s is not one of ours", victimAddr)
	}
	if cur := getStatusE2E(t, coord.base, st.ID); cur.State.Terminal() {
		t.Fatalf("job finished in %q before the kill; grow e2eSpec", cur.State)
	}
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.cmd.Wait()
	t.Logf("killed worker %s mid-lot", victimAddr)

	// The lease lapses, the job hands off, the survivor re-runs it.
	deadline = time.Now().Add(3*controlDur + time.Minute)
	var final service.Status
	for {
		final = getStatusE2E(t, coord.base, st.ID)
		if final.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q after worker kill", final.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if final.State != service.StateDone || final.LotReport == nil {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}

	// Byte-identity: the recovered lot report equals the control run's.
	var got bytes.Buffer
	if err := netio.EncodeLotReport(&got, final.LotReport); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), control) {
		t.Fatalf("recovered report differs from control (%d vs %d bytes)", got.Len(), len(control))
	}

	// The failover is visible in the coordinator's stats.
	var stats service.Stats
	getJSON(t, coord.base+"/v1/stats", &stats)
	if stats.Cluster["handoffs"] < 1 {
		t.Errorf("handoffs = %d, want >= 1", stats.Cluster["handoffs"])
	}
	if stats.Cluster["leases_expired"] < 1 {
		t.Errorf("leases_expired = %d, want >= 1", stats.Cluster["leases_expired"])
	}

	// Shut the survivors down so their journals quiesce.
	for _, p := range []*daemonProc{survivor, coord} {
		p.cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { p.cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(time.Minute):
			t.Fatal("daemon did not exit after SIGTERM")
		}
	}

	// Exactly-once execution, proven from the durable record: one
	// done-finish across all worker journals, and the victim died
	// between start and finish.
	doneFinishes := 0
	for _, dir := range workerDirs {
		doneFinishes += countJournal(t, dir+"/journal", func(rec map[string]any) bool {
			return rec["type"] == "finish" && rec["state"] == "done"
		})
	}
	if doneFinishes != 1 {
		t.Errorf("done-finish records across worker journals = %d, want exactly 1", doneFinishes)
	}
	victimDir := workerDirs[0]
	if workers[1] == victim {
		victimDir = workerDirs[1]
	}
	if n := countJournal(t, victimDir+"/journal", func(rec map[string]any) bool {
		return rec["type"] == "start"
	}); n < 1 {
		t.Errorf("victim journal has no start record; kill landed before the job began")
	}
	// And the coordinator's cluster journal retired the job exactly once.
	completes := countJournal(t, coordDir+"/cluster", func(rec map[string]any) bool {
		return rec["type"] == "complete" && rec["job"] == st.ID
	})
	if completes != 1 {
		t.Errorf("cluster journal complete records for %s = %d, want exactly 1", st.ID, completes)
	}
}

func getStatusE2E(t *testing.T, base, id string) service.Status {
	t.Helper()
	var st service.Status
	getJSON(t, base+"/v1/jobs/"+id, &st)
	return st
}
