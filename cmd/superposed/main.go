// Superposed is the certification service daemon: it exposes the
// superposition detection pipeline over HTTP/JSON so testers and CI
// systems submit certification jobs instead of shelling out to
// trojanscan.
//
//	superposed -addr 127.0.0.1:8418
//	curl -s localhost:8418/healthz
//	curl -s -X POST localhost:8418/v1/jobs -d '{"kind":"detect","case":"s35932-T200","scale":0.05}'
//	curl -s localhost:8418/v1/jobs/job-1            # poll state + report
//	curl -N  localhost:8418/v1/jobs/job-1/events    # live SSE progress
//	curl -s -X DELETE localhost:8418/v1/jobs/job-1  # cancel
//
// Beyond the default standalone mode, -role splits the daemon into a
// cluster: one coordinator owning the public API plus N workers that
// register with it over leases (see internal/cluster):
//
//	superposed -role coordinator -addr 127.0.0.1:8418 -lease-ttl 10s
//	superposed -role worker -addr 127.0.0.1:0 -coordinator-addr http://127.0.0.1:8418
//
// With -ha-lease the coordinator becomes one node of an HA pair: the
// designated primary serves while a -role standby peer tails its
// journals and promotes itself automatically if the primary goes
// silent for a lease TTL. Workers list both coordinators
// (comma-separated -coordinator-addr) and rotate on failover:
//
//	superposed -role coordinator -addr 127.0.0.1:8418 -data-dir a -ha-lease /shared/primary.lease -peer http://127.0.0.1:8419
//	superposed -role standby     -addr 127.0.0.1:8419 -data-dir b -ha-lease /shared/primary.lease -peer http://127.0.0.1:8418
//	superposed -role worker -addr 127.0.0.1:0 -coordinator-addr http://127.0.0.1:8418,http://127.0.0.1:8419
//
// On SIGTERM/SIGINT the daemon stops accepting jobs, drains the backlog
// within the -drain budget, then cancels whatever is still in flight.
// Workers drain before deregistering, so a job finished during drain is
// still collected by the coordinator rather than handed off (and run
// twice).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"superpose/internal/cluster"
	"superpose/internal/failpoint"
	"superpose/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "superposed:", err)
		os.Exit(1)
	}
}

// drainable is what run shuts down on signal — a service.Server or a
// cluster.Coordinator.
type drainable interface {
	http.Handler
	Start()
	Drain(ctx context.Context) error
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("superposed", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8418", "listen address (use :0 for an ephemeral port)")
		queueSize = fs.Int("queue", 16, "max pending jobs; submissions beyond this get 429")
		workers   = fs.Int("workers", 1, "jobs run concurrently (coordinator: concurrent dispatches, default 8)")
		drain     = fs.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM/SIGINT")
		dataDir   = fs.String("data-dir", "", "enable the crash-safe job journal under this directory (restart recovers jobs)")
		retain    = fs.Duration("retain", 0, "evict terminal jobs (and their idempotency tokens) this long after they finish; 0 keeps them forever")
		failpts   = fs.String("failpoints", os.Getenv("FAILPOINTS"), "fault-injection spec, e.g. 'core/acquire=1*error(chaos);journal/fsync=p(0.1,7)*error(disk)' (default $FAILPOINTS)")

		role        = fs.String("role", "standalone", "standalone | coordinator | worker | standby")
		coordAddr   = fs.String("coordinator-addr", "", "worker role: coordinator base URL(s), comma-separated for an HA pair")
		peer        = fs.String("peer", "", "HA pair: the other coordinator's base URL")
		haLease     = fs.String("ha-lease", "", "HA pair: shared primary-lease file; enables HA for coordinator/standby roles")
		haTTL       = fs.Duration("ha-lease-ttl", 0, "HA pair: primary lease TTL (default: -lease-ttl)")
		advertise   = fs.String("advertise-addr", "", "worker role: base URL the coordinator reaches this worker on (default: the bound listen address)")
		leaseTTL    = fs.Duration("lease-ttl", 10*time.Second, "coordinator role: worker lease TTL (heartbeats renew at TTL/3)")
		pollEvery   = fs.Duration("poll", 100*time.Millisecond, "coordinator role: worker job-status poll interval")
		stealMargin = fs.Int("steal-margin", 2, "coordinator role: in-flight skew that lets an idle worker steal from the affinity shard (0 disables)")
		tenantRate  = fs.Float64("tenant-rate", 8, "coordinator role: per-tenant admission tokens per second")
		tenantBurst = fs.Float64("tenant-burst", 16, "coordinator role: per-tenant admission burst")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *failpts != "" {
		if err := failpoint.Setup(*failpts); err != nil {
			return err
		}
		fmt.Fprintf(out, "superposed: failpoints armed: %s\n", *failpts)
	}

	workersSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			workersSet = true
		}
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	svcOpts := service.Options{QueueSize: *queueSize, Workers: *workers, DataDir: *dataDir, Retain: *retain}

	var svc drainable
	switch *role {
	case "standalone", "worker":
		s, err := service.New(svcOpts)
		if err != nil {
			return err
		}
		svc = s
	case "coordinator", "standby":
		if !workersSet {
			// Dispatch slots are cheap waiting, not CPU: default wider
			// than the standalone worker pool.
			svcOpts.Workers = 8
		}
		clOpts := cluster.Options{
			Service:      svcOpts,
			LeaseTTL:     *leaseTTL,
			PollInterval: *pollEvery,
			StealMargin:  *stealMargin,
			TenantRate:   *tenantRate,
			TenantBurst:  *tenantBurst,
		}
		if *haLease != "" {
			if svcOpts.DataDir == "" {
				return errors.New("-ha-lease requires -data-dir (the standby journal copy lives there)")
			}
			n, err := cluster.NewHANode(cluster.HAOptions{
				Coordinator: clOpts,
				Standby:     *role == "standby",
				Peer:        *peer,
				LeasePath:   *haLease,
				LeaseTTL:    *haTTL,
				Logf: func(format string, a ...any) {
					fmt.Fprintf(out, "superposed: %s\n", fmt.Sprintf(format, a...))
				},
			})
			if err != nil {
				return err
			}
			svc = n
		} else {
			if *role == "standby" {
				return errors.New("-role standby requires -ha-lease (and usually -peer)")
			}
			c, err := cluster.New(clOpts)
			if err != nil {
				return err
			}
			svc = c
		}
	default:
		return fmt.Errorf("unknown -role %q (want standalone, coordinator, standby or worker)", *role)
	}
	svc.Start()

	// Listen explicitly (rather than http.ListenAndServe) so an :0
	// request reports the bound ephemeral port — what the smoke script
	// and the e2e tests parse.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "superposed: listening on http://%s\n", ln.Addr())

	// A worker joins the cluster only after its listener is live, so
	// the coordinator never routes to a socket that isn't answering.
	var agentWG sync.WaitGroup
	agentCtx, stopAgent := context.WithCancel(context.Background())
	defer stopAgent()
	if *role == "worker" {
		if *coordAddr == "" {
			ln.Close()
			return errors.New("-role worker requires -coordinator-addr")
		}
		workerURL := *advertise
		if workerURL == "" {
			workerURL = "http://" + ln.Addr().String()
		}
		var coords []string
		for _, b := range strings.Split(*coordAddr, ",") {
			if b = strings.TrimSpace(b); b != "" {
				coords = append(coords, b)
			}
		}
		agent := cluster.NewAgent(cluster.AgentOptions{
			Coordinators: coords,
			Addr:         workerURL,
			Logf: func(format string, a ...any) {
				fmt.Fprintf(out, "superposed: %s\n", fmt.Sprintf(format, a...))
			},
		})
		agentWG.Add(1)
		go func() {
			defer agentWG.Done()
			agent.Run(agentCtx)
		}()
	}

	hs := &http.Server{Handler: svc}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(out, "superposed: signal received, draining (budget %s)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		fmt.Fprintln(out, "superposed: drain budget exhausted; in-flight jobs cancelled")
	}
	// Deregister after the drain: jobs finished during it are collected
	// by the coordinator instead of handed off and run twice.
	stopAgent()
	agentWG.Wait()
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "superposed: drained, bye")
	return nil
}
