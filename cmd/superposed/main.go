// Superposed is the certification service daemon: it exposes the
// superposition detection pipeline over HTTP/JSON so testers and CI
// systems submit certification jobs instead of shelling out to
// trojanscan.
//
//	superposed -addr 127.0.0.1:8418
//	curl -s localhost:8418/healthz
//	curl -s -X POST localhost:8418/v1/jobs -d '{"kind":"detect","case":"s35932-T200","scale":0.05}'
//	curl -s localhost:8418/v1/jobs/job-1            # poll state + report
//	curl -N  localhost:8418/v1/jobs/job-1/events    # live SSE progress
//	curl -s -X DELETE localhost:8418/v1/jobs/job-1  # cancel
//
// On SIGTERM/SIGINT the daemon stops accepting jobs, drains the backlog
// within the -drain budget, then cancels whatever is still in flight.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"superpose/internal/failpoint"
	"superpose/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "superposed:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("superposed", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8418", "listen address (use :0 for an ephemeral port)")
		queueSize = fs.Int("queue", 16, "max pending jobs; submissions beyond this get 429")
		workers   = fs.Int("workers", 1, "jobs run concurrently")
		drain     = fs.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM/SIGINT")
		dataDir   = fs.String("data-dir", "", "enable the crash-safe job journal under this directory (restart recovers jobs)")
		failpts   = fs.String("failpoints", os.Getenv("FAILPOINTS"), "fault-injection spec, e.g. 'core/acquire=1*error(chaos);journal/fsync=p(0.1,7)*error(disk)' (default $FAILPOINTS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *failpts != "" {
		if err := failpoint.Setup(*failpts); err != nil {
			return err
		}
		fmt.Fprintf(out, "superposed: failpoints armed: %s\n", *failpts)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	svc, err := service.New(service.Options{QueueSize: *queueSize, Workers: *workers, DataDir: *dataDir})
	if err != nil {
		return err
	}
	svc.Start()

	// Listen explicitly (rather than http.ListenAndServe) so an :0
	// request reports the bound ephemeral port — what the smoke script
	// and the e2e tests parse.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "superposed: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: svc}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(out, "superposed: signal received, draining (budget %s)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		fmt.Fprintln(out, "superposed: drain budget exhausted; in-flight jobs cancelled")
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "superposed: drained, bye")
	return nil
}
