package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"syscall"
	"testing"
	"time"

	"superpose/internal/netio"
	"superpose/internal/service"
)

// haGetStatus polls a job tolerating the transient failures a failover
// produces (connection refused, 503 from a standby, 404 mid-replay).
func haGetStatus(base, id string) (service.Status, bool) {
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return service.Status{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.Status{}, false
	}
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.Status{}, false
	}
	return st, true
}

// haRole reads a node's /ha/v1/role discovery probe.
func haRole(base string) string {
	resp, err := http.Get(base + "/ha/v1/role")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	var body struct {
		Role string `json:"role"`
	}
	if json.NewDecoder(resp.Body).Decode(&body) != nil {
		return ""
	}
	return body.Role
}

// TestClusterKillPrimaryMidLot is the HA layer's headline proof: a
// primary+standby coordinator pair and two workers as real processes,
// one lot job in flight, the primary SIGKILLed mid-lot. The standby
// must detect the lease silence, promote itself within the failover
// window, re-attach the live worker run through the replicated journal
// copy, and serve a LotReport byte-identical to an uninterrupted
// control run — with exactly one done-finish across the worker
// journals and exactly one complete across BOTH coordinators' cluster
// journals.
func TestClusterKillPrimaryMidLot(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process HA e2e with a multi-second lot job")
	}

	control, controlDur := controlLotReport(t)
	t.Logf("control run: %s, %d report bytes", controlDur, len(control))

	const haTTL = 1 * time.Second
	root := t.TempDir()
	lease := root + "/primary.lease"
	primaryDir, standbyDir := root+"/coord-a", root+"/coord-b"
	workerDirs := []string{t.TempDir(), t.TempDir()}

	primary := spawnDaemon(t,
		"-role", "coordinator", "-addr", "127.0.0.1:0",
		"-lease-ttl", "2s", "-poll", "25ms",
		"-data-dir", primaryDir, "-ha-lease", lease, "-ha-lease-ttl", "1s",
		"-drain", "3m")
	standby := spawnDaemon(t,
		"-role", "standby", "-addr", "127.0.0.1:0",
		"-lease-ttl", "2s", "-poll", "25ms",
		"-data-dir", standbyDir, "-ha-lease", lease, "-ha-lease-ttl", "1s",
		"-peer", primary.base,
		"-drain", "3m")
	discovery := primary.base + "," + standby.base
	workers := make([]*daemonProc, 2)
	for i := range workers {
		workers[i] = spawnDaemon(t,
			"-role", "worker", "-addr", "127.0.0.1:0",
			"-coordinator-addr", discovery,
			"-data-dir", workerDirs[i], "-drain", "3m")
	}

	deadline := time.Now().Add(30 * time.Second)
	for len(liveWorkers(t, primary.base)) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached 2 live workers: %+v", liveWorkers(t, primary.base))
		}
		time.Sleep(25 * time.Millisecond)
	}

	resp, err := http.Post(primary.base+"/v1/jobs", "application/json", strings.NewReader(e2eSpec))
	if err != nil {
		t.Fatal(err)
	}
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", resp.StatusCode)
	}

	// Wait until a worker is genuinely mid-lot and the standby's journal
	// copy has caught up — the crash must be survivable by replication,
	// not luck.
	deadline = time.Now().Add(30 * time.Second)
	for {
		busy := false
		for _, w := range liveWorkers(t, primary.base) {
			if w.InFlight > 0 {
				busy = true
			}
		}
		var stats service.Stats
		getJSON(t, primary.base+"/v1/stats", &stats)
		lag, _ := stats.HA["ha_peer_lag_records"].(float64)
		if busy && lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached busy worker + zero replication lag (lag %v)", stats.HA["ha_peer_lag_records"])
		}
		time.Sleep(10 * time.Millisecond)
	}
	midLot := controlDur / 3
	if midLot > 2*time.Second {
		midLot = 2 * time.Second
	}
	time.Sleep(midLot)
	if cur, ok := haGetStatus(primary.base, st.ID); ok && cur.State.Terminal() {
		t.Fatalf("job finished in %q before the kill; grow e2eSpec", cur.State)
	}

	killedAt := time.Now()
	if err := primary.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	primary.cmd.Wait()
	t.Logf("killed primary %s mid-lot", primary.base)

	// The standby must promote once the lease goes silent for a TTL —
	// allow detection granularity plus replay on top of the window.
	deadline = time.Now().Add(3*haTTL + 2*time.Second)
	for haRole(standby.base) != "primary" {
		if time.Now().After(deadline) {
			t.Fatalf("standby never promoted (role %q)", haRole(standby.base))
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("standby promoted %s after the kill", time.Since(killedAt))

	// The job must finish on the promoted standby with the exact bytes
	// of the control run — the worker's in-flight run re-attached, not
	// restarted (and even a worst-case restart must replay identically).
	deadline = time.Now().Add(3*controlDur + time.Minute)
	var final service.Status
	for {
		if cur, ok := haGetStatus(standby.base, st.ID); ok && cur.State.Terminal() {
			final = cur
			break
		}
		if time.Now().After(deadline) {
			cur, _ := haGetStatus(standby.base, st.ID)
			t.Fatalf("job stuck in %q after primary kill", cur.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if final.State != service.StateDone || final.LotReport == nil {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	var got bytes.Buffer
	if err := netio.EncodeLotReport(&got, final.LotReport); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), control) {
		t.Fatalf("failed-over report differs from control (%d vs %d bytes)", got.Len(), len(control))
	}

	// The failover shows up in the survivor's stats.
	var stats service.Stats
	getJSON(t, standby.base+"/v1/stats", &stats)
	if role, _ := stats.HA["ha_role"].(string); role != "primary" {
		t.Errorf("survivor ha_role = %q, want primary", role)
	}
	if fo, _ := stats.HA["failovers_total"].(float64); fo != 1 {
		t.Errorf("failovers_total = %v, want 1", stats.HA["failovers_total"])
	}

	// Quiesce the survivors so the journals can be read.
	for _, p := range append(workers, standby) {
		p.cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { p.cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(time.Minute):
			t.Fatal("daemon did not exit after SIGTERM")
		}
	}

	// Exactly-once, proven from the durable record: one done-finish
	// across the worker journals, one complete for the job across BOTH
	// coordinators' cluster journals.
	doneFinishes := 0
	for _, dir := range workerDirs {
		doneFinishes += countJournal(t, dir+"/journal", func(rec map[string]any) bool {
			return rec["type"] == "finish" && rec["state"] == "done"
		})
	}
	if doneFinishes != 1 {
		t.Errorf("done-finish records across worker journals = %d, want exactly 1", doneFinishes)
	}
	completes := 0
	for _, dir := range []string{primaryDir, standbyDir} {
		completes += countJournal(t, dir+"/cluster", func(rec map[string]any) bool {
			return rec["type"] == "complete" && rec["job"] == st.ID
		})
	}
	if completes != 1 {
		t.Errorf("complete records for %s across both cluster journals = %d, want exactly 1", st.ID, completes)
	}
}

// TestClusterKillCoordinatorInConfirmWindow pins the fsync-ordering
// bugfix end to end: the assign INTENT must be durable before the
// dispatch RPC. The armed failpoint stretches the window between the
// accepted RPC and its confirming record; SIGKILLing the coordinator
// inside it leaves exactly the crash state the ordering exists for. On
// restart, reclaim re-sends the journaled token and the worker dedupes
// — the job finishes, having run exactly once. If the intent were
// written after the RPC, the restarted coordinator would find no
// record and dispatch the job a second time.
func TestClusterKillCoordinatorInConfirmWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash-window e2e")
	}

	coordDir, workerDir := t.TempDir(), t.TempDir()
	coord := spawnDaemon(t,
		"-role", "coordinator", "-addr", "127.0.0.1:0",
		"-lease-ttl", "1s", "-poll", "25ms",
		"-data-dir", coordDir,
		"-failpoints", "cluster/assign/confirm=1*sleep(8s)",
		"-drain", "3m")
	worker := spawnDaemon(t,
		"-role", "worker", "-addr", "127.0.0.1:0",
		"-coordinator-addr", coord.base,
		"-data-dir", workerDir, "-drain", "3m")

	deadline := time.Now().Add(30 * time.Second)
	for len(liveWorkers(t, coord.base)) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(25 * time.Millisecond)
	}

	spec := `{"kind":"detect","case":"s35932-T200","scale":0.05,"clean":true}`
	resp, err := http.Post(coord.base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", resp.StatusCode)
	}

	// The RPC has landed once the worker has accepted a job; the armed
	// sleep guarantees the coordinator is still pre-confirm — kill it
	// there.
	deadline = time.Now().Add(30 * time.Second)
	for {
		var ws service.Stats
		getJSON(t, worker.base+"/v1/stats", &ws)
		if ws.JobsSubmitted >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never received the dispatch RPC")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := coord.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	coord.cmd.Wait()
	t.Log("killed coordinator inside the assign-confirm window")

	// Restart on the same address and data dir (the worker only knows
	// that address). Replay must find the un-confirmed intent.
	u, err := url.Parse(coord.base)
	if err != nil {
		t.Fatal(err)
	}
	coord2 := spawnDaemon(t,
		"-role", "coordinator", "-addr", u.Host,
		"-lease-ttl", "1s", "-poll", "25ms",
		"-data-dir", coordDir, "-drain", "3m")

	deadline = time.Now().Add(2 * time.Minute)
	var final service.Status
	for {
		if cur, ok := haGetStatus(coord2.base, st.ID); ok && cur.State.Terminal() {
			final = cur
			break
		}
		if time.Now().After(deadline) {
			cur, _ := haGetStatus(coord2.base, st.ID)
			t.Fatalf("job stuck in %q after coordinator restart", cur.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if final.State != service.StateDone || final.Report == nil {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}

	// Quiesce and read the durable record: the worker journaled exactly
	// one submit and one done-finish (the token resend deduped), and the
	// coordinator journals carry the intent (token, no worker job)
	// before exactly one complete.
	for _, p := range []*daemonProc{worker, coord2} {
		p.cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { p.cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(time.Minute):
			t.Fatal("daemon did not exit after SIGTERM")
		}
	}
	if n := countJournal(t, workerDir+"/journal", func(rec map[string]any) bool {
		return rec["type"] == "submit"
	}); n != 1 {
		t.Errorf("worker journal submit records = %d, want exactly 1 (token resend must dedupe)", n)
	}
	if n := countJournal(t, workerDir+"/journal", func(rec map[string]any) bool {
		return rec["type"] == "finish" && rec["state"] == "done"
	}); n != 1 {
		t.Errorf("worker journal done-finish records = %d, want exactly 1", n)
	}
	intents := countJournal(t, coordDir+"/cluster", func(rec map[string]any) bool {
		return rec["type"] == "assign" && rec["job"] == st.ID &&
			rec["token"] != nil && rec["worker_job"] == nil
	})
	if intents < 1 {
		t.Errorf("cluster journal has no durable intent record for %s", st.ID)
	}
	if n := countJournal(t, coordDir+"/cluster", func(rec map[string]any) bool {
		return rec["type"] == "complete" && rec["job"] == st.ID
	}); n != 1 {
		t.Errorf("cluster journal complete records = %d, want exactly 1", n)
	}
}
