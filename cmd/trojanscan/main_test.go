package main

import (
	"os"
	"path/filepath"
	"testing"

	"superpose/internal/bench"
	"superpose/internal/trust"
)

func TestMaterializeCase(t *testing.T) {
	golden, physical, truth, err := materialize("s35932-T200", "", 0, false, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if truth == nil {
		t.Fatal("infected case must carry ground truth")
	}
	if physical.NumGates() <= golden.NumGates() {
		t.Error("physical netlist must be the infected one")
	}
}

func TestMaterializeCleanCase(t *testing.T) {
	golden, physical, truth, err := materialize("s35932-T200", "", 0, true, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if truth != nil {
		t.Error("clean die must have no ground truth")
	}
	if golden != physical {
		t.Error("clean die: golden and physical must coincide")
	}
}

func TestMaterializeBenchFile(t *testing.T) {
	host, err := trust.Generate(trust.Params{
		Name: "u", PIs: 4, POs: 4, FFs: 24, Comb: 220, Levels: 5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "u.bench")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.Write(f, host); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Clean user netlist.
	golden, physical, truth, err := materialize("", path, 0, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if truth != nil || golden != physical {
		t.Error("uninfected user netlist handling")
	}

	// Auto-infected user netlist.
	golden, physical, truth, err = materialize("", path, 3, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if truth == nil || physical.NumGates() <= golden.NumGates() {
		t.Error("auto-infection failed")
	}
}

func TestMaterializeErrors(t *testing.T) {
	if _, _, _, err := materialize("", "", 0, false, 0.05); err == nil {
		t.Error("no inputs must error")
	}
	if _, _, _, err := materialize("x-y", "z.bench", 0, false, 0.05); err == nil {
		t.Error("both -case and -bench must error")
	}
	if _, _, _, err := materialize("malformed", "", 0, false, 0.05); err == nil {
		t.Error("malformed case must error")
	}
	if _, _, _, err := materialize("", "/does/not/exist.bench", 0, false, 0.05); err == nil {
		t.Error("missing file must error")
	}
}
