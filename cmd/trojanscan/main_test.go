package main

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"superpose/internal/atpg"
	"superpose/internal/bench"
	"superpose/internal/core"
	"superpose/internal/power"
	"superpose/internal/trust"
)

func TestMaterializeCase(t *testing.T) {
	golden, physical, truth, err := materialize("s35932-T200", "", 0, false, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if truth == nil {
		t.Fatal("infected case must carry ground truth")
	}
	if physical.NumGates() <= golden.NumGates() {
		t.Error("physical netlist must be the infected one")
	}
}

func TestMaterializeCleanCase(t *testing.T) {
	golden, physical, truth, err := materialize("s35932-T200", "", 0, true, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if truth != nil {
		t.Error("clean die must have no ground truth")
	}
	if golden != physical {
		t.Error("clean die: golden and physical must coincide")
	}
}

func TestMaterializeBenchFile(t *testing.T) {
	host, err := trust.Generate(trust.Params{
		Name: "u", PIs: 4, POs: 4, FFs: 24, Comb: 220, Levels: 5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "u.bench")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.Write(f, host); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Clean user netlist.
	golden, physical, truth, err := materialize("", path, 0, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if truth != nil || golden != physical {
		t.Error("uninfected user netlist handling")
	}

	// Auto-infected user netlist.
	golden, physical, truth, err = materialize("", path, 3, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if truth == nil || physical.NumGates() <= golden.NumGates() {
		t.Error("auto-infection failed")
	}
}

func TestResolveWorkers(t *testing.T) {
	if got, err := resolveWorkers(0); err != nil || got != runtime.NumCPU() {
		t.Errorf("-workers 0: got (%d, %v), want one per CPU (%d)", got, err, runtime.NumCPU())
	}
	if got, err := resolveWorkers(3); err != nil || got != 3 {
		t.Errorf("-workers 3: got (%d, %v)", got, err)
	}
	if _, err := resolveWorkers(-1); err == nil {
		t.Error("-workers -1 must error")
	}
}

// TestRunLotWorkersIdenticalReport pins the user-facing guarantee: the
// report file written at -workers 1 and at -workers 4 is byte-identical.
func TestRunLotWorkersIdenticalReport(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-die pipeline run")
	}
	golden, physical, truth, err := materialize("s35932-T200", "", 0, false, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	render := func(workers int) string {
		cfg := core.Config{
			NumChains: 4, Varsigma: 0.10,
			ATPG: atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40,
				FaultSample: 120, Workers: workers},
		}
		var buf bytes.Buffer
		err := runLot(&buf, golden, lib, physical, truth, cfg, core.LotOptions{
			Dies:      3,
			Variation: power.ThreeSigmaIntra(0.10),
			Seed:      5,
			Workers:   workers,
		})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		return buf.String()
	}
	serial, parallel := render(1), render(4)
	if serial != parallel {
		t.Errorf("-workers 1 and -workers 4 reports differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

func TestMaterializeErrors(t *testing.T) {
	if _, _, _, err := materialize("", "", 0, false, 0.05); err == nil {
		t.Error("no inputs must error")
	}
	if _, _, _, err := materialize("x-y", "z.bench", 0, false, 0.05); err == nil {
		t.Error("both -case and -bench must error")
	}
	if _, _, _, err := materialize("malformed", "", 0, false, 0.05); err == nil {
		t.Error("malformed case must error")
	}
	if _, _, _, err := materialize("", "/does/not/exist.bench", 0, false, 0.05); err == nil {
		t.Error("missing file must error")
	}
}
