// Trojanscan runs the full superposition detection pipeline against a
// simulated IC-under-certification and prints the certification report.
//
// The device is simulated: a benchmark case (or a user netlist, optionally
// auto-infected through rare-net analysis) is manufactured with process
// variation, and the defender's flow — which sees only the golden netlist
// and scalar power readings — hunts for the Trojan.
//
// Usage:
//
//	trojanscan -case s35932-T200 -scale 0.1 -varsigma 0.15
//	trojanscan -case s38417-T100 -clean              # certify a clean die
//	trojanscan -bench my.bench -infect 4             # custom host, 4-tap Trojan
//	trojanscan -case s35932-T200 -lot 5              # whole-lot certification
//	trojanscan -case s35932-T200 -lot 5 -workers 8   # parallel lot (bit-identical output)
//	trojanscan -case s35932-T200 -mode delay         # delay-fingerprint baseline
//	trojanscan -case s35932-T200 -channel fused      # power×delay fused verdict
//	trojanscan -case s35932-T200 -report             # full report document
//	trojanscan -case s35932-T200 -tester combined    # faulty tester, robust acquisition
//	trojanscan -case s35932-T200 -tester spikes -acq naive   # show the naive collapse
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"superpose/internal/atpg"
	"superpose/internal/core"
	"superpose/internal/delay"
	"superpose/internal/fusion"
	"superpose/internal/netio"
	"superpose/internal/netlist"
	"superpose/internal/parallel"
	"superpose/internal/power"
	"superpose/internal/profile"
	"superpose/internal/scan"
	"superpose/internal/sim"
	"superpose/internal/tester"
	"superpose/internal/timing"
	"superpose/internal/trojan"
	"superpose/internal/trust"
)

func main() {
	var (
		caseName  = flag.String("case", "", "benchmark case, e.g. s35932-T200 (see -list)")
		benchFile = flag.String("bench", "", "user .bench netlist instead of a suite case")
		infect    = flag.Int("infect", 0, "with -bench: insert an auto-placed Trojan with this many trigger taps")
		clean     = flag.Bool("clean", false, "manufacture a clean (Trojan-free) die")
		list      = flag.Bool("list", false, "list available benchmark cases")

		scale    = flag.Float64("scale", 0.1, "benchmark scale (1.0 = published size)")
		varsigma = flag.Float64("varsigma", 0.15, "intra-die variation 3σ of the die AND the verdict bound")
		chipSeed = flag.Uint64("chip-seed", 1, "die selection seed")
		chains   = flag.Int("chains", 4, "scan chains")
		seeds    = flag.Int("seeds", 3, "adaptive runs from the strongest seed patterns")
		lot      = flag.Int("lot", 0, "certify a lot of this many dies instead of a single die")
		mode     = flag.String("mode", "power", "side channel: power (superposition) or delay (fingerprint baseline)")
		channel  = flag.String("channel", "power", "measurement channel: power, delay (adds the path-delay measurement), or fused (power×delay with a learned calibration)")
		report   = flag.Bool("report", false, "print the full certification report document")

		testerPreset = flag.String("tester", "clean", "tester fault model preset: "+strings.Join(tester.PresetNames(), ", "))
		testerSeed   = flag.Uint64("tester-seed", 1, "fault realization seed (with -tester)")
		acqName      = flag.String("acq", "", "measurement-acquisition policy: naive or robust (default: naive, or robust when -tester is set)")
		workersFlag  = flag.Int("workers", 0, "parallel workers for lot dies and fault simulation (0 = one per CPU, 1 = serial); results are bit-identical at any count")
		engineFlag   = flag.String("engine", "auto", "simulation engine: auto, ppsfp (SoA batch engine, default) or scalar (reference oracle); results are bit-identical")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" || *memProfile != "" {
		stopProfile, err := profile.Start(*cpuProfile, *memProfile)
		if err != nil {
			fail(err)
		}
		// Profiles are written on the normal return path only; fail()
		// exits the process and abandons them.
		defer func() {
			if err := stopProfile(); err != nil {
				fmt.Fprintln(os.Stderr, "trojanscan:", err)
			}
		}()
	}

	if *list {
		fmt.Println("available cases:", strings.Join(trust.Names(), ", "))
		return
	}

	golden, physical, truth, err := materialize(*caseName, *benchFile, *infect, *clean, *scale)
	if err != nil {
		fail(err)
	}

	if *mode == "delay" {
		runDelayFingerprint(golden, physical, truth, *varsigma, *chipSeed)
		return
	}
	if *mode != "power" {
		fail(fmt.Errorf("unknown -mode %q (power or delay)", *mode))
	}

	workers, err := resolveWorkers(*workersFlag)
	if err != nil {
		fail(err)
	}

	engine, ok := sim.ParseEngineKind(*engineFlag)
	if !ok {
		fail(fmt.Errorf("unknown -engine %q (auto, ppsfp or scalar)", *engineFlag))
	}

	faultCfg, err := tester.Preset(*testerPreset, *testerSeed)
	if err != nil {
		fail(err)
	}
	acq, err := resolveAcquisition(*acqName, faultCfg.Enabled())
	if err != nil {
		fail(err)
	}
	ch, err := core.ParseChannel(*channel)
	if err != nil {
		fail(err)
	}

	lib := power.SAED90Like()
	cfg := core.Config{
		NumChains:   *chains,
		MaxSeeds:    *seeds,
		Varsigma:    *varsigma,
		ATPG:        atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120, Workers: workers, Engine: engine},
		Adaptive:    core.AdaptiveOptions{Engine: engine},
		Acquisition: acq,
		Channel:     ch,
	}

	if ch == core.ChannelFused {
		// Share the seed set between the calibration lot and the run
		// proper, then learn the fused operating point on clean controls
		// of the golden design under the same tester preset.
		cfg, err = core.WithSharedSeeds(golden, cfg)
		if err != nil {
			fail(err)
		}
		cal, err := trainFusionCalibration(golden, lib, cfg, faultCfg, *varsigma, *chipSeed, *testerSeed, workers)
		if err != nil {
			fail(fmt.Errorf("fusion calibration: %w", err))
		}
		cfg.Fusion = &cal
		fmt.Println("calibration:", cal)
	}

	if *lot > 0 {
		err := runLot(os.Stdout, golden, lib, physical, truth, cfg, core.LotOptions{
			Dies:        *lot,
			Variation:   power.ThreeSigmaIntra(*varsigma),
			Seed:        *chipSeed,
			Tester:      faultCfg,
			Acquisition: acq,
			Workers:     workers,
		})
		if err != nil {
			fail(err)
		}
		return
	}

	chip := power.Manufacture(physical, lib, power.ThreeSigmaIntra(*varsigma), *chipSeed)
	dev := core.NewDevice(chip, *chains, scan.LOS)
	dev.SetEngine(engine)
	if ch.UsesDelay() {
		dev.SetDelayChip(delay.Manufacture(physical, timing.SAED90LikeDelays(),
			power.ThreeSigmaIntra(*varsigma), *chipSeed))
	}
	if faultCfg.Enabled() {
		dev.SetFaultModel(tester.New(faultCfg))
	}

	rep, err := core.Detect(golden, lib, dev, cfg)
	if err != nil {
		fail(err)
	}

	if *report {
		if err := core.WriteReport(os.Stdout, rep); err != nil {
			fail(err)
		}
		if truth != nil {
			fmt.Printf("\nground truth: %d Trojan gates inserted (%s)\n",
				len(truth.TrojanGates), truth.Spec.Name)
		} else {
			fmt.Println("\nground truth: die is clean")
		}
		return
	}

	fmt.Println("golden:", golden.ComputeStats())
	if rep.ATPGSummary != "" {
		fmt.Println("seeds: ", rep.ATPGSummary)
	}
	fmt.Printf("seed pattern      RPD   = %+.5f\n", rep.SeedReading.RPD)
	fmt.Printf("adaptive flow     RPD   = %+.5f  (%d steps, %d pairs flagged)\n",
		rep.AdaptiveReading.RPD, len(rep.Adaptive.Steps), len(rep.Adaptive.Pairs))
	if rep.HasPair {
		fmt.Printf("superposition     S-RPD = %+.5f  (unique %d+%d gates)\n",
			rep.Superposition.SRPD, rep.Superposition.AUniqueCount, rep.Superposition.BUniqueCount)
		fmt.Printf("strategic mods    S-RPD = %+.5f  (%d modifications)\n",
			rep.Strategic.Final.SRPD, len(rep.Strategic.Applied))
	} else {
		fmt.Println("superposition: no suspicious drop flagged")
	}
	if faultCfg.Enabled() {
		fmt.Printf("acquisition (%s tester, %s policy): %v\n", *testerPreset, acq.Aggregation, rep.Acquisition)
	}
	if rep.Delay != nil {
		fmt.Printf("delay channel     score = %.5f  (scale %.4f, %d patterns, %d unstable) -> %s\n",
			rep.Delay.Score, rep.Delay.Scale, rep.Delay.Patterns, rep.Delay.Unstable,
			verdictWord(rep.Delay.Detected))
	}
	if cfg.Fusion != nil {
		fmt.Printf("fused score       %.4f  (threshold %.4f) -> %s\n",
			rep.FusedScore, cfg.Fusion.Threshold, verdictWord(rep.FusedDetected))
	}
	// The headline verdict is the selected channel's; the power line
	// above always reports the paper's |S-RPD| criterion alongside.
	fmt.Printf("verdict: ")
	switch {
	case ch == core.ChannelDelay:
		if rep.Delay.Detected {
			fmt.Printf("TROJAN DETECTED  (delay residual %.4f > threshold %.4f)\n",
				rep.Delay.Score, rep.Delay.Threshold)
		} else {
			fmt.Printf("clean (delay residual %.4f within threshold %.4f; power |S-RPD| %.4f vs bound %.4f -> %s)\n",
				rep.Delay.Score, rep.Delay.Threshold, abs(rep.FinalSRPD), rep.Varsigma, verdictWord(rep.Detected))
		}
	case ch == core.ChannelFused && cfg.Fusion != nil:
		if rep.FusedDetected {
			fmt.Printf("TROJAN DETECTED  (fused score %.4f > learned threshold %.4f)\n",
				rep.FusedScore, cfg.Fusion.Threshold)
		} else {
			fmt.Printf("clean (fused score %.4f within learned threshold %.4f)\n",
				rep.FusedScore, cfg.Fusion.Threshold)
		}
	case rep.Detected:
		fmt.Printf("TROJAN DETECTED  (|S-RPD| %.4f > max benign %.4f at 3σ_intra=%.0f%%)\n",
			abs(rep.FinalSRPD), rep.Varsigma, 100**varsigma)
	default:
		fmt.Printf("clean (|S-RPD| %.4f within benign bound %.4f)\n", abs(rep.FinalSRPD), rep.Varsigma)
	}
	fmt.Println("\ndetection likelihood vs intra-die variation (Eq. 3):")
	for _, v := range core.TableIIVarsigmas {
		fmt.Printf("  3σ_intra = %4.0f%%: %s\n", 100*v,
			core.FormatProbability(core.DetectionProbability(rep.FinalSRPD, v)))
	}

	if truth != nil {
		fmt.Printf("\nground truth: %d Trojan gates inserted (%s)\n",
			len(truth.TrojanGates), truth.Spec.Name)
	} else {
		fmt.Println("\nground truth: die is clean")
	}
}

// materialize resolves the flags into (golden, physical, groundTruth).
func materialize(caseName, benchFile string, infect int, clean bool, scale float64) (
	golden, physical *netlist.Netlist, truth *trojan.Instance, err error) {
	switch {
	case caseName != "" && benchFile != "":
		return nil, nil, nil, fmt.Errorf("use -case or -bench, not both")

	case caseName != "":
		parts := strings.SplitN(caseName, "-", 2)
		if len(parts) != 2 {
			return nil, nil, nil, fmt.Errorf("case %q: want <bench>-<trojan>, e.g. s35932-T200", caseName)
		}
		inst, err := trust.Build(trust.Case{Benchmark: parts[0], Trojan: parts[1]}, scale)
		if err != nil {
			return nil, nil, nil, err
		}
		if clean {
			return inst.Host, inst.Host, nil, nil
		}
		return inst.Host, inst.Infected, inst, nil

	case benchFile != "":
		host, err := netio.ReadFile(benchFile)
		if err != nil {
			return nil, nil, nil, err
		}
		if clean || infect == 0 {
			return host, host, nil, nil
		}
		inst, err := trojan.AutoInsert(host, infect)
		if err != nil {
			return nil, nil, nil, err
		}
		return host, inst.Infected, inst, nil

	default:
		return nil, nil, nil, fmt.Errorf("one of -case or -bench is required (try -list)")
	}
}

// verdictWord renders a per-channel boolean verdict.
func verdictWord(detected bool) string {
	if detected {
		return "DETECTED"
	}
	return "clean"
}

// trainFusionCalibration learns the fused operating point on a clean
// control lot of the golden design: 8 Trojan-free dies certified under
// the same tester preset, their (power, delay) scores reduced by
// fusion.Train. The lot's process and fault seeds are decorrelated
// from the die under certification, so the evaluated die is held out
// of its own calibration.
func trainFusionCalibration(golden *netlist.Netlist, lib *power.Library, cfg core.Config,
	faultCfg tester.Config, varsigma float64, chipSeed, testerSeed uint64, workers int) (fusion.Calibration, error) {
	tcfg := cfg
	tcfg.Fusion = nil
	tc := faultCfg
	tc.Seed = parallel.Mix(testerSeed, 0x5EED)
	lr, err := core.CertifyLot(golden, lib, golden, tcfg, core.LotOptions{
		Dies:        8,
		Variation:   power.ThreeSigmaIntra(varsigma),
		Seed:        parallel.Mix(chipSeed, 0xCA1),
		Tester:      tc,
		Acquisition: cfg.Acquisition,
		Workers:     workers,
	})
	if err != nil {
		return fusion.Calibration{}, err
	}
	obs := make([]fusion.Observation, 0, len(lr.Dies))
	for _, d := range lr.Dies {
		obs = append(obs, fusion.Observation{Power: d.FinalMag, Delay: d.DelayMag})
	}
	return fusion.Train(obs, 0), nil
}

// runDelayFingerprint runs the path-delay baseline ([1]-style) instead of
// the power superposition pipeline.
func runDelayFingerprint(golden, physical *netlist.Netlist, truth *trojan.Instance,
	varsigma float64, chipSeed uint64) {
	lib := timing.SAED90LikeDelays()
	m := timing.NewModel(golden, lib)
	chip := timing.Manufacture(physical, lib, varsigma, varsigma/3, chipSeed)
	res, err := timing.Fingerprint(golden, m, chip.Measure(), varsigma)
	if err != nil {
		fail(err)
	}
	fmt.Println("golden:", golden.ComputeStats())
	fmt.Printf("delay fingerprint: max calibrated residual %.4f (threshold %.4f, scale %.4f)\n",
		res.MaxResidual, varsigma, res.Scale)
	if res.Detected {
		fmt.Println("verdict: TIMING ANOMALY DETECTED")
	} else {
		fmt.Println("verdict: clean (timing within process variation)")
	}
	if truth != nil {
		fmt.Printf("ground truth: die is attacked (%d Trojan gates)\n", len(truth.TrojanGates))
	} else {
		fmt.Println("ground truth: die is clean")
	}
}

// runLot certifies a whole lot and renders the report. The rendered text
// is bit-identical at any worker count (see internal/parallel); the CLI
// tests pin that by diffing -workers 1 against -workers 4 output.
func runLot(out io.Writer, golden *netlist.Netlist, lib *power.Library, physical *netlist.Netlist,
	truth *trojan.Instance, cfg core.Config, lot core.LotOptions) error {
	cfg, err := core.WithSharedSeeds(golden, cfg)
	if err != nil {
		return err
	}
	lr, err := core.CertifyLot(golden, lib, physical, cfg, lot)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "golden:", golden.ComputeStats())
	fmt.Fprintln(out, lr)
	for _, d := range lr.Dies {
		line := fmt.Sprintf("  die %d (seed %d): |S-RPD| %.4f  detected=%v",
			d.Die, d.Seed, d.FinalMag, d.Report.Detected)
		if d.Report.Delay != nil {
			line += fmt.Sprintf("  delay %.4f=%v", d.DelayMag, d.Report.Delay.Detected)
		}
		if cfg.Fusion != nil {
			line += fmt.Sprintf("  fused %.4f=%v", d.FusedScore, d.Report.FusedDetected)
		}
		fmt.Fprintln(out, line)
	}
	if truth != nil {
		fmt.Fprintf(out, "ground truth: lot is attacked (%d Trojan gates)\n", len(truth.TrojanGates))
	} else {
		fmt.Fprintln(out, "ground truth: lot is clean")
	}
	return nil
}

// resolveWorkers validates the -workers flag: 0 means one worker per CPU,
// positive counts are taken as-is, negative counts are rejected.
func resolveWorkers(w int) (int, error) {
	if w < 0 {
		return 0, fmt.Errorf("-workers must be >= 0, got %d", w)
	}
	if w == 0 {
		return runtime.NumCPU(), nil
	}
	return w, nil
}

// resolveAcquisition maps the -acq flag to a policy. With no explicit
// choice the policy follows the tester: robust under a fault model,
// naive on an ideal tester.
func resolveAcquisition(name string, faulty bool) (core.AcquisitionPolicy, error) {
	switch name {
	case "naive":
		return core.NaiveAcquisition(), nil
	case "robust":
		return core.RobustAcquisition(), nil
	case "":
		if faulty {
			return core.RobustAcquisition(), nil
		}
		return core.NaiveAcquisition(), nil
	default:
		return core.AcquisitionPolicy{}, fmt.Errorf("unknown -acq %q (naive or robust)", name)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "trojanscan:", err)
	os.Exit(1)
}
