// Benchgen emits the synthetic Trust-Hub-style benchmark netlists (or a
// custom-sized host circuit) in ISCAS .bench format.
//
// Usage:
//
//	benchgen -bench s35932 -scale 0.25 -o s35932.bench
//	benchgen -bench s38417 -trojan T100 -scale 0.25 -o s38417_t100.bench
//	benchgen -pis 8 -pos 8 -ffs 64 -comb 600 -levels 6 -seed 1 -o custom.bench
//	benchgen -gates 1000000 -seed 1 -o synth1m.bench
//
// -gates selects the capacity-tier streaming generator: the netlist is
// emitted straight to the output as .bench text with O(levels) scratch,
// never materialized in memory, so 10⁶–10⁷ gate files generate in
// seconds at flat RSS.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"superpose/internal/bench"
	"superpose/internal/netio"
	"superpose/internal/netlist"
	"superpose/internal/trust"
)

func main() {
	var (
		benchName = flag.String("bench", "", "suite benchmark name (s35932, s38417, s38584); empty = custom params")
		trojName  = flag.String("trojan", "", "Trojan variant to insert (e.g. T100); empty = clean host")
		scale     = flag.Float64("scale", 0.25, "size scale for suite benchmarks (1.0 = published size)")
		out       = flag.String("o", "", "output file (default stdout)")

		gates = flag.Int("gates", 0, "streaming: emit a synthetic host of this total gate count (capacity tier; .bench only)")

		pis    = flag.Int("pis", 8, "custom: primary inputs")
		pos    = flag.Int("pos", 8, "custom: primary outputs")
		ffs    = flag.Int("ffs", 64, "custom: flip-flops")
		comb   = flag.Int("comb", 600, "custom: combinational gates")
		levels = flag.Int("levels", 6, "custom: logic depth")
		seed   = flag.Uint64("seed", 1, "custom: generator seed")
	)
	flag.Parse()

	if *gates > 0 {
		if err := emitStreaming(*gates, *seed, *out); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		return
	}

	n, err := generate(*benchName, *trojName, *scale, trust.Params{
		Name: "custom", PIs: *pis, POs: *pos, FFs: *ffs, Comb: *comb, Levels: *levels, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}

	if *out != "" {
		// Format follows the extension: .bench or .v.
		if err := netio.WriteFile(*out, n); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
	} else if err := bench.Write(os.Stdout, n); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, n.ComputeStats())
}

// emitStreaming writes a capacity-tier synthetic host straight to the
// output as .bench text, without building the netlist in memory.
func emitStreaming(gates int, seed uint64, out string) error {
	if out != "" && strings.ToLower(filepath.Ext(out)) != ".bench" {
		return fmt.Errorf("-gates emits .bench text only (got %q)", out)
	}
	p := trust.SizedLargeParams(gates, seed)
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trust.EmitLarge(w, p); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: %d gates (%d PI, %d PO, %d FF, %d comb, %d levels)\n",
		p.Name, p.TotalGates(), p.PIs, p.POs, p.FFs, p.Comb, p.Levels)
	return nil
}

func generate(benchName, trojName string, scale float64, custom trust.Params) (*netlist.Netlist, error) {
	if benchName == "" {
		if trojName != "" {
			return nil, fmt.Errorf("-trojan requires -bench (suite Trojans are defined per benchmark)")
		}
		return trust.Generate(custom)
	}
	if trojName != "" {
		inst, err := trust.Build(trust.Case{Benchmark: benchName, Trojan: trojName}, scale)
		if err != nil {
			return nil, err
		}
		return inst.Infected, nil
	}
	for _, b := range trust.Suite(scale) {
		if b.Name == benchName {
			return trust.Generate(b.Params)
		}
	}
	return nil, fmt.Errorf("unknown benchmark %q (have: s35932, s38417, s38584)", benchName)
}
