// Benchgen emits the synthetic Trust-Hub-style benchmark netlists (or a
// custom-sized host circuit) in ISCAS .bench format.
//
// Usage:
//
//	benchgen -bench s35932 -scale 0.25 -o s35932.bench
//	benchgen -bench s38417 -trojan T100 -scale 0.25 -o s38417_t100.bench
//	benchgen -pis 8 -pos 8 -ffs 64 -comb 600 -levels 6 -seed 1 -o custom.bench
package main

import (
	"flag"
	"fmt"
	"os"

	"superpose/internal/bench"
	"superpose/internal/netio"
	"superpose/internal/netlist"
	"superpose/internal/trust"
)

func main() {
	var (
		benchName = flag.String("bench", "", "suite benchmark name (s35932, s38417, s38584); empty = custom params")
		trojName  = flag.String("trojan", "", "Trojan variant to insert (e.g. T100); empty = clean host")
		scale     = flag.Float64("scale", 0.25, "size scale for suite benchmarks (1.0 = published size)")
		out       = flag.String("o", "", "output file (default stdout)")

		pis    = flag.Int("pis", 8, "custom: primary inputs")
		pos    = flag.Int("pos", 8, "custom: primary outputs")
		ffs    = flag.Int("ffs", 64, "custom: flip-flops")
		comb   = flag.Int("comb", 600, "custom: combinational gates")
		levels = flag.Int("levels", 6, "custom: logic depth")
		seed   = flag.Uint64("seed", 1, "custom: generator seed")
	)
	flag.Parse()

	n, err := generate(*benchName, *trojName, *scale, trust.Params{
		Name: "custom", PIs: *pis, POs: *pos, FFs: *ffs, Comb: *comb, Levels: *levels, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}

	if *out != "" {
		// Format follows the extension: .bench or .v.
		if err := netio.WriteFile(*out, n); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
	} else if err := bench.Write(os.Stdout, n); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, n.ComputeStats())
}

func generate(benchName, trojName string, scale float64, custom trust.Params) (*netlist.Netlist, error) {
	if benchName == "" {
		if trojName != "" {
			return nil, fmt.Errorf("-trojan requires -bench (suite Trojans are defined per benchmark)")
		}
		return trust.Generate(custom)
	}
	if trojName != "" {
		inst, err := trust.Build(trust.Case{Benchmark: benchName, Trojan: trojName}, scale)
		if err != nil {
			return nil, err
		}
		return inst.Infected, nil
	}
	for _, b := range trust.Suite(scale) {
		if b.Name == benchName {
			return trust.Generate(b.Params)
		}
	}
	return nil, fmt.Errorf("unknown benchmark %q (have: s35932, s38417, s38584)", benchName)
}
