package main

import (
	"testing"

	"superpose/internal/trust"
)

func TestGenerateCustom(t *testing.T) {
	n, err := generate("", "", 1.0, trust.Params{
		Name: "t", PIs: 3, POs: 3, FFs: 8, Comb: 60, Levels: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.ComputeStats().FFs != 8 {
		t.Error("custom params ignored")
	}
}

func TestGenerateSuiteHost(t *testing.T) {
	n, err := generate("s35932", "", 0.03, trust.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "s35932" {
		t.Errorf("name = %s", n.Name)
	}
}

func TestGenerateInfected(t *testing.T) {
	n, err := generate("s38417", "T100", 0.03, trust.Params{})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := generate("s38417", "", 0.03, trust.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if n.NumGates() <= clean.NumGates() {
		t.Error("infected netlist must carry extra gates")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := generate("sBOGUS", "", 0.05, trust.Params{}); err == nil {
		t.Error("unknown benchmark must error")
	}
	if _, err := generate("", "T100", 0.05, trust.Params{}); err == nil {
		t.Error("-trojan without -bench must error")
	}
	if _, err := generate("s35932", "T999", 0.05, trust.Params{}); err == nil {
		t.Error("unknown trojan must error")
	}
}
