package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"superpose/internal/atpg"
	"superpose/internal/core"
	"superpose/internal/fusion"
	"superpose/internal/parallel"
	"superpose/internal/power"
	"superpose/internal/trust"
)

// fusionArm is one measured certification configuration: the mean
// wall-clock of certifying the same infected lot under one channel,
// plus the verdict it reached.
type fusionArm struct {
	Channel string `json:"channel"`
	// Seconds is the mean lot-certification wall-clock across reps.
	Seconds float64 `json:"seconds"`
	// OverheadVsPower is Seconds relative to the power-only arm.
	OverheadVsPower float64 `json:"overhead_vs_power"`
	Detected        int     `json:"detected"`
	Dies            int     `json:"dies"`
}

type fusionDocument struct {
	Date     string  `json:"date"`
	GoOS     string  `json:"goos"`
	GoArch   string  `json:"goarch"`
	NumCPU   int     `json:"num_cpu"`
	Case     string  `json:"case"`
	Scale    float64 `json:"scale"`
	Varsigma float64 `json:"varsigma"`
	Reps     int     `json:"reps"`
	// TrainSeconds is the one-time clean-lot calibration cost (the
	// service amortizes it through its artifact cache).
	TrainSeconds float64     `json:"train_seconds"`
	Threshold    float64     `json:"threshold"`
	Arms         []fusionArm `json:"arms"`
}

// runFusion measures the delay-channel overhead: the same infected lot
// certified power-only, delay-only and fused, reps times each with the
// arms interleaved so they see the same machine conditions. The fused
// calibration trains once on a clean control lot outside the timed
// region.
func runFusion(reps int) error {
	const (
		fusionScale = 0.04
		// ς = 0.08: the fused threshold doubles the worst clean
		// training score, and at wider spreads the infected/clean
		// separation narrows below that bound (see EXPERIMENTS.md).
		fusionVarsigma = 0.08
		lotDies        = 4
	)
	if reps < 1 {
		reps = 1
	}
	c := trust.Cases()[0]
	inst, err := trust.Build(c, fusionScale)
	if err != nil {
		return err
	}
	lib := power.SAED90Like()
	base, err := core.WithSharedSeeds(inst.Host, core.Config{
		NumChains:   4,
		Varsigma:    fusionVarsigma,
		ATPG:        atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120},
		MaxPairs:    6,
		Acquisition: core.RobustAcquisition(),
		Channel:     core.ChannelFused,
	})
	if err != nil {
		return err
	}
	lot := func(salt int) core.LotOptions {
		return core.LotOptions{
			Dies:      lotDies,
			Variation: power.ThreeSigmaIntra(fusionVarsigma),
			Seed:      parallel.Mix(99, salt),
			Workers:   1,
		}
	}

	t0 := time.Now()
	train, err := core.CertifyLot(inst.Host, lib, inst.Host, base, lot(1))
	if err != nil {
		return fmt.Errorf("fusion training lot: %w", err)
	}
	trainSeconds := time.Since(t0).Seconds()
	obs := make([]fusion.Observation, 0, len(train.Dies))
	for _, d := range train.Dies {
		obs = append(obs, fusion.Observation{Power: d.FinalMag, Delay: d.DelayMag})
	}
	cal := fusion.Train(obs, 0)

	fusedCfg := base
	fusedCfg.Fusion = &cal
	powerCfg := base
	powerCfg.Channel = core.ChannelPower
	delayCfg := base
	delayCfg.Channel = core.ChannelDelay

	arms := []struct {
		name string
		cfg  core.Config
	}{
		{"power", powerCfg},
		{"delay", delayCfg},
		{"fused", fusedCfg},
	}
	totals := make([]time.Duration, len(arms))
	results := make([]*core.LotReport, len(arms))
	for rep := 0; rep < reps; rep++ {
		for i, arm := range arms {
			t0 := time.Now()
			lr, err := core.CertifyLot(inst.Host, lib, inst.Infected, arm.cfg, lot(2))
			if err != nil {
				return fmt.Errorf("fusion %s lot: %w", arm.name, err)
			}
			totals[i] += time.Since(t0)
			results[i] = lr
		}
	}

	doc := fusionDocument{
		Date:         time.Now().UTC().Format(time.RFC3339),
		GoOS:         runtime.GOOS,
		GoArch:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		Case:         c.String(),
		Scale:        fusionScale,
		Varsigma:     fusionVarsigma,
		Reps:         reps,
		TrainSeconds: trainSeconds,
		Threshold:    cal.Threshold,
	}
	powerSeconds := totals[0].Seconds() / float64(reps)
	for i, arm := range arms {
		lr := results[i]
		var detected int
		switch arm.name {
		case "delay":
			detected = lr.DelayDetected
		case "fused":
			detected = lr.FusedDetected
		default:
			detected = lr.Detected
		}
		seconds := totals[i].Seconds() / float64(reps)
		doc.Arms = append(doc.Arms, fusionArm{
			Channel:         arm.name,
			Seconds:         seconds,
			OverheadVsPower: seconds / powerSeconds,
			Detected:        detected,
			Dies:            len(lr.Dies),
		})
		fmt.Fprintf(os.Stderr, "fusion: %-5s %7.3fs/lot  %.2fx vs power  detected %d/%d\n",
			arm.name, seconds, seconds/powerSeconds, detected, len(lr.Dies))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
