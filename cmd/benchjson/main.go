// Benchjson converts `go test -bench` text output on stdin into a JSON
// document on stdout, so benchmark results can be archived as machine-
// readable artifacts (see the Makefile's bench-parallel target, which
// records the parallel-engine speedup curve in BENCH_parallel.json).
//
//	go test -run '^$' -bench CertifyLotParallel . | benchjson > BENCH_parallel.json
//
// With -scale it instead measures the capacity-tier scale curve itself:
// for each point (10⁴, 10⁵, 10⁶ gates certified; 10⁷ parse-and-levelize
// only) it re-executes itself as a child process that generates, parses
// and certifies a synthetic netlist of that size, and records the
// child's wall-clock phase timings together with its peak RSS (from the
// parent's wait rusage). -max-gates and -certify-max-gates bound the
// curve for CI budgets:
//
//	benchjson -scale > BENCH_scale.json
//	benchjson -scale -max-gates 100000 > BENCH_scale.json   # CI smoke
//
// With -fusion it measures the delay-channel overhead instead: the
// same infected lot certified power-only, delay-only and fused
// (interleaved reps, shared machine conditions), recorded together
// with the one-time calibration training cost:
//
//	benchjson -fusion > BENCH_fusion.json
//
// Each benchmark line
//
//	BenchmarkFoo/sub-8   5   123456 ns/op   2.00 speedup
//
// becomes {"name": "Foo/sub", "procs": 8, "iterations": 5,
// "ns_per_op": 123456, "metrics": {"speedup": 2}}.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type document struct {
	Date       string      `json:"date"`
	GoOS       string      `json:"goos"`
	GoArch     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	var (
		scale      = flag.Bool("scale", false, "measure the capacity-tier scale curve instead of converting stdin")
		maxGates   = flag.Int("max-gates", 10_000_000, "scale: largest point to run")
		certifyMax = flag.Int("certify-max-gates", 1_000_000, "scale: largest point to certify (larger points parse+levelize only)")

		fusionBench = flag.Bool("fusion", false, "measure the delay-channel overhead (power vs delay vs fused certify) instead of converting stdin")
		fusionReps  = flag.Int("fusion-reps", 3, "fusion: interleaved lot certifications per arm")

		scaleChild   = flag.Bool("scale-child", false, "internal: run one scale point in-process")
		childGates   = flag.Int("gates", 0, "internal: gate count for -scale-child")
		childCertify = flag.Bool("certify", false, "internal: certify in -scale-child")
	)
	flag.Parse()
	switch {
	case *scaleChild:
		if err := runScaleChild(*childGates, *childCertify); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	case *scale:
		if err := runScale(*maxGates, *certifyMax); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	case *fusionBench:
		if err := runFusion(*fusionReps); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	doc := document{
		Date:   time.Now().UTC().Format(time.RFC3339),
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine decodes one `Benchmark... N value unit [value unit]...` line.
func parseLine(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchmark{}, false
	}
	b := benchmark{Name: strings.TrimPrefix(fields[0], "Benchmark")}
	// A trailing -N on the name is the GOMAXPROCS suffix.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iter, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b.Iterations = iter
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		if fields[i+1] == "ns/op" {
			b.NsPerOp = val
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[fields[i+1]] = val
	}
	return b, true
}
