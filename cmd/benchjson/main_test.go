package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkCertifyLotParallel/workers=4-8   \t 3\t 237634786 ns/op\t 0.9305 speedup\t 4.000 workers")
	if !ok {
		t.Fatal("bench line not recognized")
	}
	if b.Name != "CertifyLotParallel/workers=4" || b.Procs != 8 {
		t.Errorf("name/procs: %q %d", b.Name, b.Procs)
	}
	if b.Iterations != 3 || b.NsPerOp != 237634786 {
		t.Errorf("iterations/ns: %d %g", b.Iterations, b.NsPerOp)
	}
	if b.Metrics["speedup"] != 0.9305 || b.Metrics["workers"] != 4 {
		t.Errorf("metrics: %v", b.Metrics)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tsuperpose\t1.234s",
		"BenchmarkBroken notanumber",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("non-bench line %q parsed as benchmark", line)
		}
	}
}
