package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"superpose/internal/bench"
	"superpose/internal/core"
	"superpose/internal/power"
	"superpose/internal/scan"
	"superpose/internal/sim"
	"superpose/internal/stats"
	"superpose/internal/trust"
)

// scalePoint is one row of the capacity-tier scale curve. The timings
// come from the child process; the peak RSS comes from the parent's
// wait4 rusage of that child, so it covers the entire pipeline
// (generation, streaming parse, CSR compile, certification) with no
// in-process sampling error.
type scalePoint struct {
	Gates     int  `json:"gates"`
	Certified bool `json:"certified"`
	// BenchBytes is the size of the emitted .bench text.
	BenchBytes int64 `json:"bench_bytes"`
	// EmitSeconds: streaming generation straight to disk (O(levels) scratch).
	EmitSeconds float64 `json:"emit_seconds"`
	// ParseSeconds: streaming parse + arena build + levelization.
	ParseSeconds float64 `json:"parse_seconds"`
	// SoASeconds: the CSR structure-of-arrays compile.
	SoASeconds float64 `json:"soa_seconds"`
	// CertifySeconds: the bounded detect flow (2 random seeds, 1 adaptive
	// step, 1 strategic round) on the PPSFP engine. Zero when not certified.
	CertifySeconds float64 `json:"certify_seconds,omitempty"`
	// CSRBytes is the raw footprint of the SoA/CSR arrays — the yardstick
	// the peak-RSS acceptance bound is measured against.
	CSRBytes int64 `json:"csr_bytes"`
	// PeakRSSBytes is the child's ru_maxrss (whole-pipeline peak).
	PeakRSSBytes int64   `json:"peak_rss_bytes"`
	FinalSRPD    float64 `json:"final_srpd,omitempty"`
}

type scaleDocument struct {
	Date   string       `json:"date"`
	GoOS   string       `json:"goos"`
	GoArch string       `json:"goarch"`
	NumCPU int          `json:"num_cpu"`
	Points []scalePoint `json:"points"`
}

// runScale drives the scale curve: one child process per point (so each
// point's peak RSS is isolated), certification up to certifyMax gates,
// parse-and-levelize only above it.
func runScale(maxGates, certifyMax int) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	doc := scaleDocument{
		Date:   time.Now().UTC().Format(time.RFC3339),
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}
	for _, gates := range []int{10_000, 100_000, 1_000_000, 10_000_000} {
		if gates > maxGates {
			continue
		}
		certify := gates <= certifyMax
		args := []string{"-scale-child", "-gates", strconv.Itoa(gates)}
		if certify {
			args = append(args, "-certify")
		}
		cmd := exec.Command(exe, args...)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("scale point %d: %w", gates, err)
		}
		var pt scalePoint
		if err := json.Unmarshal(out.Bytes(), &pt); err != nil {
			return fmt.Errorf("scale point %d: bad child output: %w", gates, err)
		}
		if ru, ok := cmd.ProcessState.SysUsage().(*syscall.Rusage); ok {
			// Linux reports ru_maxrss in KiB.
			pt.PeakRSSBytes = ru.Maxrss * 1024
		}
		doc.Points = append(doc.Points, pt)
		fmt.Fprintf(os.Stderr,
			"scale: %8d gates: emit %6.2fs  parse %6.2fs  soa %5.2fs  certify %7.2fs  peak RSS %5d MiB\n",
			pt.Gates, pt.EmitSeconds, pt.ParseSeconds, pt.SoASeconds,
			pt.CertifySeconds, pt.PeakRSSBytes>>20)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// runScaleChild is one measured point, executed in its own process.
// Timings go to stdout as JSON; the parent stamps in this process's
// peak RSS from its exit rusage.
func runScaleChild(gates int, certify bool) error {
	p := trust.SizedLargeParams(gates, 1)
	f, err := os.CreateTemp("", "scale-*.bench")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	defer f.Close()

	t0 := time.Now()
	if err := trust.EmitLarge(f, p); err != nil {
		return err
	}
	pt := scalePoint{Gates: p.TotalGates(), Certified: certify}
	pt.EmitSeconds = time.Since(t0).Seconds()
	if st, err := f.Stat(); err == nil {
		pt.BenchBytes = st.Size()
	}

	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	t0 = time.Now()
	n, err := bench.ParseStreamSized(f, p.Name, p.TotalGates())
	if err != nil {
		return err
	}
	pt.ParseSeconds = time.Since(t0).Seconds()

	t0 = time.Now()
	soa := n.SoA()
	pt.SoASeconds = time.Since(t0).Seconds()
	pt.CSRBytes = 4*int64(len(soa.Orig)+len(soa.Compact)+len(soa.FaninPtr)+
		len(soa.Fanin)+len(soa.FanoutPtr)+len(soa.Fanout)+len(soa.Level)) +
		int64(len(soa.Typ))

	if certify {
		lib := power.SAED90Like()
		chip := power.Manufacture(n, lib, power.ThreeSigmaIntra(0.15), 42)
		dev := core.NewDevice(chip, 4, scan.LOS)
		defer dev.Close()
		rng := stats.NewRNG(7)
		ch := scan.Configure(n, 4)
		cfg := core.Config{
			// The fast knobs: random seeds instead of ATPG, one adaptive
			// step, one strategic round — this measures the per-gate cost
			// of the measurement pipeline, not search depth.
			SeedPatterns: []*scan.Pattern{ch.RandomPattern(rng), ch.RandomPattern(rng)},
			MaxSeeds:     1,
			MaxPairs:     1,
			Adaptive:     core.AdaptiveOptions{MaxSteps: 1, Engine: sim.EnginePPSFP},
			Strategic:    core.StrategicOptions{MaxRounds: 1},
			Acquisition:  core.NaiveAcquisition(),
		}
		t0 = time.Now()
		rep, err := core.Detect(n, lib, dev, cfg)
		if err != nil {
			return err
		}
		pt.CertifySeconds = time.Since(t0).Seconds()
		pt.FinalSRPD = rep.FinalSRPD
	}
	return json.NewEncoder(os.Stdout).Encode(pt)
}
