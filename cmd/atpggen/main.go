// Atpggen generates Launch-on-Shift transition-delay test patterns for an
// ISCAS .bench netlist and writes them in the STIL-like pattern format.
//
// Usage:
//
//	atpggen -bench circuit.bench -chains 4 -o patterns.stil
package main

import (
	"flag"
	"fmt"
	"os"

	"superpose/internal/atpg"
	"superpose/internal/netio"
	"superpose/internal/scan"
	"superpose/internal/stil"
)

func main() {
	var (
		benchFile = flag.String("bench", "", "input netlist, .bench or .v (required)")
		chains    = flag.Int("chains", 4, "number of scan chains")
		out       = flag.String("o", "", "output pattern file (default stdout)")

		seed        = flag.Uint64("seed", 1, "random fill / random pattern seed")
		randomPats  = flag.Int("random", 64, "random patterns before deterministic generation")
		maxPatterns = flag.Int("max-patterns", 0, "pattern cap (0 = unlimited)")
		maxFaults   = flag.Int("max-faults", 0, "deterministic fault target cap (0 = all)")
		faultSample = flag.Int("fault-sample", 0, "evenly sample the fault list (0 = all)")
		backtracks  = flag.Int("backtracks", 256, "PODEM backtrack limit per fault")
		compact     = flag.Bool("compact", false, "reverse-order static compaction of the final set")
		ndetect     = flag.Int("ndetect", 1, "distinct detections required per fault")
	)
	flag.Parse()
	if *benchFile == "" {
		fmt.Fprintln(os.Stderr, "atpggen: -bench is required")
		flag.Usage()
		os.Exit(2)
	}

	n, err := netio.ReadFile(*benchFile)
	if err != nil {
		fail(err)
	}

	ch := scan.Configure(n, *chains)
	res, err := atpg.Generate(ch, atpg.Options{
		Seed:           *seed,
		RandomPatterns: *randomPats,
		MaxPatterns:    *maxPatterns,
		MaxFaults:      *maxFaults,
		FaultSample:    *faultSample,
		BacktrackLimit: *backtracks,
		NDetect:        *ndetect,
	})
	if err != nil {
		fail(err)
	}
	patterns := res.Patterns
	if *compact {
		patterns = atpg.Compact(ch, patterns)
		fmt.Fprintf(os.Stderr, "compaction: %d -> %d patterns\n", len(res.Patterns), len(patterns))
	}

	w := os.Stdout
	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer g.Close()
		w = g
	}
	if err := stil.Write(w, patterns); err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, res)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atpggen:", err)
	os.Exit(1)
}
