// Package superpose is a power side-channel hardware Trojan detection
// toolkit built around test pattern superposition, reproducing
// C. Nigh and A. Orailoglu, "Test Pattern Superposition to Detect Hardware
// Trojans", DATE 2020.
//
// The library spans the full flow a certification lab would run:
//
//   - gate-level netlists (ISCAS .bench format) with full-scan DFT,
//   - Launch-on-Shift transition-delay ATPG for seed patterns,
//   - a power model with inter-/intra-die process variation,
//   - the self-referencing detection pipeline: per-die calibration, the
//     adaptive transition flow, superposition (S-RPD) pair analysis and
//     the strategic modification suite,
//   - the Trust-Hub-style benchmark suite and the Table I / Table II
//     experiment harness.
//
// Quick start:
//
//	inst, _ := superpose.BuildBenchmark(superpose.Case{Benchmark: "s38417", Trojan: "T100"}, 0.05)
//	lib := superpose.StandardCellLibrary()
//	chip := superpose.Manufacture(inst.Infected, lib, superpose.ThreeSigmaIntra(0.15), 1)
//	dev := superpose.NewDevice(chip, 4, superpose.LOS)
//	report, _ := superpose.Detect(inst.Host, lib, dev, superpose.Config{})
//	fmt.Println(report.Summary())
package superpose

import (
	"context"
	"io"

	"superpose/internal/atpg"
	"superpose/internal/bench"
	"superpose/internal/core"
	"superpose/internal/delay"
	"superpose/internal/fusion"
	"superpose/internal/netio"
	"superpose/internal/netlist"
	"superpose/internal/parallel"
	"superpose/internal/power"
	"superpose/internal/scan"
	"superpose/internal/sim"
	"superpose/internal/stil"
	"superpose/internal/tester"
	"superpose/internal/timing"
	"superpose/internal/trojan"
	"superpose/internal/trust"
	"superpose/internal/verilog"
)

// Netlist and construction.
type (
	// Netlist is a frozen gate-level circuit.
	Netlist = netlist.Netlist
	// NetlistBuilder constructs netlists incrementally.
	NetlistBuilder = netlist.Builder
	// GateType enumerates cell types.
	GateType = netlist.GateType
)

// NewNetlistBuilder returns a builder for a netlist with the given name.
func NewNetlistBuilder(name string) *NetlistBuilder { return netlist.NewBuilder(name) }

// ParseBench reads an ISCAS .bench netlist.
func ParseBench(r io.Reader, name string) (*Netlist, error) { return bench.Parse(r, name) }

// WriteBench serializes a netlist in .bench format.
func WriteBench(w io.Writer, n *Netlist) error { return bench.Write(w, n) }

// ParseVerilog reads a gate-level structural Verilog module (the
// Trust-Hub distribution format).
func ParseVerilog(r io.Reader, name string) (*Netlist, error) { return verilog.Parse(r, name) }

// WriteVerilog serializes a netlist as a structural Verilog module.
func WriteVerilog(w io.Writer, n *Netlist) error { return verilog.Write(w, n) }

// Scan infrastructure.
type (
	// Chains is a scan-chain configuration.
	Chains = scan.Chains
	// Pattern is one LOS/LOC test pattern.
	Pattern = scan.Pattern
	// Mode selects LOS or LOC application.
	Mode = scan.Mode
)

// Pattern application modes.
const (
	LOS = scan.LOS
	LOC = scan.LOC
)

// EngineKind selects the simulation backend: the 64-patterns-per-word
// PPSFP engine over the structure-of-arrays netlist core (default), or
// the scalar reference paths it is proven bit-identical to.
type EngineKind = sim.EngineKind

// Simulation engine kinds.
const (
	EngineAuto   = sim.EngineAuto
	EnginePPSFP  = sim.EnginePPSFP
	EngineScalar = sim.EngineScalar
)

// ParseEngineKind converts a flag value ("auto", "ppsfp", "scalar") to an
// EngineKind.
func ParseEngineKind(s string) (EngineKind, bool) { return sim.ParseEngineKind(s) }

// ConfigureScan partitions a netlist's flip-flops into numChains chains.
func ConfigureScan(n *Netlist, numChains int) *Chains { return scan.Configure(n, numChains) }

// Power and process variation.
type (
	// CellLibrary holds per-cell switching energies.
	CellLibrary = power.Library
	// Chip is a manufactured die with fixed process variation.
	Chip = power.Chip
	// Variation parameterizes process noise.
	Variation = power.Variation
)

// StandardCellLibrary returns the SAED-90nm-like cell energy library.
func StandardCellLibrary() *CellLibrary { return power.SAED90Like() }

// AltCellLibrary returns the Nangate-45nm-like alternative energy library
// (the cross-library robustness ablation of EXPERIMENTS.md).
func AltCellLibrary() *CellLibrary { return power.Nangate45Like() }

// ThreeSigmaIntra builds a Variation from the paper's 3σ_intra convention.
func ThreeSigmaIntra(varsigma float64) Variation { return power.ThreeSigmaIntra(varsigma) }

// Manufacture creates one die of the physical netlist.
func Manufacture(physical *Netlist, lib *CellLibrary, v Variation, seed uint64) *Chip {
	return power.Manufacture(physical, lib, v, seed)
}

// Trojans and benchmarks.
type (
	// TrojanSpec describes a trigger/payload Trojan.
	TrojanSpec = trojan.Spec
	// TrojanInstance is an inserted Trojan with ground truth.
	TrojanInstance = trojan.Instance
	// RareNet is a trigger-tap candidate.
	RareNet = trojan.RareNet
	// Case names a benchmark-Trojan pair.
	Case = trust.Case
	// BenchmarkParams sizes a synthetic host circuit.
	BenchmarkParams = trust.Params
)

// InsertTrojan builds the infected netlist for a spec.
func InsertTrojan(host *Netlist, spec TrojanSpec) (*TrojanInstance, error) {
	return trojan.Insert(host, spec)
}

// FindRareNets runs the rare-net trigger analysis.
func FindRareNets(n *Netlist, numPatterns int, seed uint64, maxProb float64) []RareNet {
	return trojan.FindRareNets(n, numPatterns, seed, maxProb)
}

// TapAncestors marks the combinational fan-in cone of the named tap nets;
// a payload victim inside the cone would create a combinational loop.
func TapAncestors(n *Netlist, taps []string) ([]bool, error) {
	return trojan.TapAncestors(n, taps)
}

// GenerateBenchmarkHost builds a synthetic full-scan circuit.
func GenerateBenchmarkHost(p BenchmarkParams) (*Netlist, error) { return trust.Generate(p) }

// BuildBenchmark materializes one Trust-Hub-style evaluation case.
func BuildBenchmark(c Case, scale float64) (*TrojanInstance, error) { return trust.Build(c, scale) }

// BenchmarkCases lists the five Table I cases.
func BenchmarkCases() []Case { return trust.Cases() }

// ATPG.
type (
	// ATPGOptions tunes LOS TDF test generation.
	ATPGOptions = atpg.Options
	// ATPGResult reports a generation run.
	ATPGResult = atpg.Result
)

// GenerateTests runs the LOS transition-delay ATPG.
func GenerateTests(ch *Chains, opt ATPGOptions) (*ATPGResult, error) { return atpg.Generate(ch, opt) }

// CompactTests drops patterns whose fault detections are subsumed by the
// rest of the set (reverse-order static compaction).
func CompactTests(ch *Chains, patterns []*Pattern) []*Pattern {
	return atpg.Compact(ch, patterns)
}

// Fault diagnosis.
type (
	// Fault is a transition-delay fault.
	Fault = atpg.Fault
	// FaultDictionary maps faults to detecting patterns for diagnosis.
	FaultDictionary = atpg.Dictionary
	// DiagnosisCandidate is one ranked diagnosis hypothesis.
	DiagnosisCandidate = atpg.Candidate
)

// TransitionFaults builds the collapsed transition fault list of a netlist.
func TransitionFaults(n *Netlist) []Fault {
	reps, _ := atpg.Collapse(n, atpg.FaultList(n))
	return reps
}

// BuildFaultDictionary fault-simulates every (fault, pattern) pair.
func BuildFaultDictionary(ch *Chains, faults []Fault, patterns []*Pattern) *FaultDictionary {
	return atpg.BuildDictionary(ch, faults, patterns)
}

// Detection pipeline.
type (
	// Device is the IC-under-certification on the tester.
	Device = core.Device
	// Evaluator is the defender's measurement workbench.
	Evaluator = core.Evaluator
	// Config drives the Detect pipeline.
	Config = core.Config
	// Report is a certification outcome.
	Report = core.Report
	// PairAnalysis is a superposition view of a pattern pair.
	PairAnalysis = core.PairAnalysis
	// AdaptiveOptions tunes the adaptive flow.
	AdaptiveOptions = core.AdaptiveOptions
	// StrategicOptions tunes the strategic modification search.
	StrategicOptions = core.StrategicOptions
)

// NewDevice mounts a manufactured chip for measurement.
func NewDevice(chip *Chip, numChains int, mode Mode) *Device {
	return core.NewDevice(chip, numChains, mode)
}

// NewEvaluator assembles the defender's workbench.
func NewEvaluator(golden *Netlist, lib *CellLibrary, dev *Device, numChains int, mode Mode) *Evaluator {
	return core.NewEvaluator(golden, lib, dev, numChains, mode)
}

// Detect runs the full superposition detection pipeline on one device.
func Detect(golden *Netlist, lib *CellLibrary, dev *Device, cfg Config) (*Report, error) {
	return core.Detect(golden, lib, dev, cfg)
}

// DetectContext is Detect under a cancellation context: the pipeline
// checks ctx at every phase boundary and inside the adaptive climb, and
// a cancelled run returns ctx's error with no report.
func DetectContext(ctx context.Context, golden *Netlist, lib *CellLibrary, dev *Device, cfg Config) (*Report, error) {
	return core.DetectContext(ctx, golden, lib, dev, cfg)
}

// Progress reporting. Long entry points (Detect, CertifyLot and the
// experiment runners) accept a ProgressFunc via Config.Progress /
// LotOptions.Progress and call it at each phase boundary — the
// certification service forwards these to its SSE event streams.
type (
	// Progress is one pipeline progress event.
	Progress = core.Progress
	// ProgressFunc receives progress events; it must be cheap and is
	// called from the goroutine running the pipeline (lot certification
	// calls it from concurrent per-die workers).
	ProgressFunc = core.ProgressFunc
	// Stage names a pipeline phase in a Progress event.
	Stage = core.Stage
)

// Pipeline stages, in flow order.
const (
	StageSeeds     = core.StageSeeds
	StageCalibrate = core.StageCalibrate
	StageAdaptive  = core.StageAdaptive
	StagePairs     = core.StagePairs
	StageConfirm   = core.StageConfirm
	StageDie       = core.StageDie
)

// Lot certification.
type (
	// LotOptions describes a manufacturing lot to certify.
	LotOptions = core.LotOptions
	// LotReport aggregates per-die certification outcomes.
	LotReport = core.LotReport
)

// Tester fault model and measurement acquisition.
type (
	// TesterConfig parameterizes the realistic tester fault model.
	TesterConfig = tester.Config
	// FaultModel is a seeded stream of measurement faults.
	FaultModel = tester.FaultModel
	// AcquisitionPolicy drives the robust measurement-acquisition layer.
	AcquisitionPolicy = core.AcquisitionPolicy
	// AcquisitionStats counts the acquisition layer's work.
	AcquisitionStats = core.AcquisitionStats
	// Aggregation selects how repeated samples collapse into a reading.
	Aggregation = core.Aggregation
)

// Sample aggregation strategies.
const (
	AggMean        = core.AggMean
	AggMedian      = core.AggMedian
	AggTrimmedMean = core.AggTrimmedMean
)

// NewFaultModel builds a seeded, bit-reproducible tester fault model.
func NewFaultModel(cfg TesterConfig) *FaultModel { return tester.New(cfg) }

// TesterPreset returns a named fault-model configuration (see
// TesterPresetNames) with the given realization seed.
func TesterPreset(name string, seed uint64) (TesterConfig, error) { return tester.Preset(name, seed) }

// TesterPresetNames lists the available fault-model presets.
func TesterPresetNames() []string { return tester.PresetNames() }

// NaiveAcquisition is the single-shot, trust-everything policy.
func NaiveAcquisition() AcquisitionPolicy { return core.NaiveAcquisition() }

// RobustAcquisition is the repeat/reject/retry policy that restores
// clean-tester verdicts under the fault model.
func RobustAcquisition() AcquisitionPolicy { return core.RobustAcquisition() }

// Measurement channels and side-channel fusion. The power channel is
// the paper's verdict; the delay channel measures sensitized path
// delays over the same LOS launches; the fused channel combines both
// through a calibration learned on clean-control lots.
type (
	// Channel selects which side channel(s) drive the verdict.
	Channel = core.Channel
	// DelayChip is a die's manufactured timing realization, mounted on
	// a Device via SetDelayChip when the channel uses delay.
	DelayChip = delay.Chip
	// DelayLibrary holds per-cell nominal propagation delays.
	DelayLibrary = timing.Library
	// FusionObservation pairs one die's per-channel scores.
	FusionObservation = fusion.Observation
	// FusionCalibration is the learned fused operating point.
	FusionCalibration = fusion.Calibration
)

// Measurement channels.
const (
	ChannelPower = core.ChannelPower
	ChannelDelay = core.ChannelDelay
	ChannelFused = core.ChannelFused
)

// ParseChannel converts a flag value ("power", "delay", "fused") to a
// Channel.
func ParseChannel(s string) (Channel, error) { return core.ParseChannel(s) }

// StandardDelayLibrary returns the SAED-90nm-like cell delay library.
func StandardDelayLibrary() *DelayLibrary { return timing.SAED90LikeDelays() }

// ManufactureDelay creates one die's timing realization of the physical
// netlist; its process draw is decorrelated from the power draw of the
// same seed.
func ManufactureDelay(physical *Netlist, lib *DelayLibrary, v Variation, seed uint64) *DelayChip {
	return delay.Manufacture(physical, lib, v, seed)
}

// TrainFusion learns the fused operating point from clean-control
// observations; margin <= 0 uses the default.
func TrainFusion(clean []FusionObservation, margin float64) FusionCalibration {
	return fusion.Train(clean, margin)
}

// CertifyLot manufactures and certifies a lot of dies of the physical
// netlist against the golden reference.
func CertifyLot(golden *Netlist, lib *CellLibrary, physical *Netlist, cfg Config, lot LotOptions) (*LotReport, error) {
	return core.CertifyLot(golden, lib, physical, cfg, lot)
}

// CertifyLotContext is CertifyLot under a cancellation context: a
// cancelled lot stops dispatching dies, drains in-flight ones, and
// returns ctx's error with no report.
func CertifyLotContext(ctx context.Context, golden *Netlist, lib *CellLibrary, physical *Netlist, cfg Config, lot LotOptions) (*LotReport, error) {
	return core.CertifyLotContext(ctx, golden, lib, physical, cfg, lot)
}

// WithSharedSeeds generates ATPG seed patterns once for reuse across a
// lot's dies.
func WithSharedSeeds(golden *Netlist, cfg Config) (Config, error) {
	return core.WithSharedSeeds(golden, cfg)
}

// Parallel execution. CertifyLot, the experiment tables and the ATPG
// fault simulation fan out across a bounded worker pool
// (LotOptions.Workers / ExperimentConfig.Workers / ATPGOptions.Workers):
// 0 means one worker per CPU, 1 the exact legacy serial path, and every
// count produces bit-identical results — per-item seeds derive from the
// item index alone, never from scheduling order.

// DefaultWorkers is the worker count a Workers value of 0 resolves to
// (one per CPU).
func DefaultWorkers() int { return parallel.DefaultWorkers() }

// DeriveSeed deterministically derives an independent per-item seed from
// a base seed and an item index (a splitmix64 mix), the facility the
// parallel engine uses to keep fanned-out randomness scheduling-free.
func DeriveSeed(base uint64, index int) uint64 { return parallel.Mix(base, index) }

// Metrics.

// RPD computes the Relative Power Difference (Eq. 1).
func RPD(observed, nominal float64) float64 { return core.RPD(observed, nominal) }

// SRPD computes the Super-RPD of a pattern pair (Eq. 2).
func SRPD(obsA, obsB, nomA, nomB, nomAUnique, nomBUnique float64) float64 {
	return core.SRPD(obsA, obsB, nomA, nomB, nomAUnique, nomBUnique)
}

// DetectionProbability evaluates the Eq. 3 bound.
func DetectionProbability(srpd, varsigma float64) float64 {
	return core.DetectionProbability(srpd, varsigma)
}

// Experiments.
type (
	// ExperimentConfig parameterizes the evaluation reproduction.
	ExperimentConfig = core.ExperimentConfig
	// TableIRow is one row of Table I.
	TableIRow = core.TableIRow
	// TableIIRow is one row of Table II.
	TableIIRow = core.TableIIRow
	// RobustnessRow is one regime x policy row of the robustness table.
	RobustnessRow = core.RobustnessRow
	// SigmaSweepRow is one variation magnitude of the measured σ-sweep.
	SigmaSweepRow = core.SigmaSweepRow
	// FusionRow is one tester-preset row of the fusion ROC table.
	FusionRow = core.FusionRow
	// ROCPoint is one operating point of a ROC curve.
	ROCPoint = core.ROCPoint
)

// RunTableI reproduces Table I (all five benchmark cases).
func RunTableI(cfg ExperimentConfig) ([]TableIRow, error) { return core.RunTableI(cfg) }

// RunTableIContext is RunTableI under a cancellation context.
func RunTableIContext(ctx context.Context, cfg ExperimentConfig) ([]TableIRow, error) {
	return core.RunTableIContext(ctx, cfg)
}

// RunTableICase reproduces one Table I row.
func RunTableICase(c Case, cfg ExperimentConfig) (TableIRow, error) {
	return core.RunTableICase(c, cfg)
}

// RunTableICaseContext is RunTableICase under a cancellation context.
func RunTableICaseContext(ctx context.Context, c Case, cfg ExperimentConfig) (TableIRow, error) {
	return core.RunTableICaseContext(ctx, c, cfg)
}

// RunTableII reproduces Table II from Table I rows.
func RunTableII(rows []TableIRow) []TableIIRow { return core.RunTableII(rows) }

// RunRobustnessTable sweeps tester fault regimes x acquisition policies
// over the benchmark suite plus clean controls.
func RunRobustnessTable(cfg ExperimentConfig) ([]RobustnessRow, error) {
	return core.RunRobustnessTable(cfg)
}

// RunRobustnessTableContext is RunRobustnessTable under a cancellation
// context.
func RunRobustnessTableContext(ctx context.Context, cfg ExperimentConfig) ([]RobustnessRow, error) {
	return core.RunRobustnessTableContext(ctx, cfg)
}

// RunRobustnessRow runs one fault regime under one acquisition policy.
func RunRobustnessRow(regime, policy string, p AcquisitionPolicy, cfg ExperimentConfig) (RobustnessRow, error) {
	return core.RunRobustnessRow(regime, policy, p, cfg)
}

// RunRobustnessRowContext is RunRobustnessRow under a cancellation
// context.
func RunRobustnessRowContext(ctx context.Context, regime, policy string, p AcquisitionPolicy, cfg ExperimentConfig) (RobustnessRow, error) {
	return core.RunRobustnessRowContext(ctx, regime, policy, p, cfg)
}

// RunSigmaSweep hunts a case's Trojan on dies manufactured at each
// variation magnitude (the Table II axis run for real), fanning dies out
// across cfg.Workers. A nil varsigmas uses the Table II magnitudes.
func RunSigmaSweep(c Case, cfg ExperimentConfig, varsigmas []float64, dies int) ([]SigmaSweepRow, error) {
	return core.RunSigmaSweep(c, cfg, varsigmas, dies)
}

// RunSigmaSweepContext is RunSigmaSweep under a cancellation context.
func RunSigmaSweepContext(ctx context.Context, c Case, cfg ExperimentConfig, varsigmas []float64, dies int) ([]SigmaSweepRow, error) {
	return core.RunSigmaSweepContext(ctx, c, cfg, varsigmas, dies)
}

// RunFusionTable sweeps tester fault presets over the power, delay and
// fused channels, training a fresh calibration per preset and reporting
// per-channel ROC curves.
func RunFusionTable(cfg ExperimentConfig) ([]FusionRow, error) { return core.RunFusionTable(cfg) }

// RunFusionTableContext is RunFusionTable under a cancellation context.
func RunFusionTableContext(ctx context.Context, cfg ExperimentConfig) ([]FusionRow, error) {
	return core.RunFusionTableContext(ctx, cfg)
}

// ROCFromScores builds a ROC curve from infected and clean score
// populations; NaN (unstable) scores stay in the denominators.
func ROCFromScores(infected, clean []float64) []ROCPoint {
	return core.ROCFromScores(infected, clean)
}

// AUC integrates a ROC curve by the trapezoid rule.
func AUC(points []ROCPoint) float64 { return core.AUC(points) }

// Pattern persistence.

// WritePatterns serializes patterns in the STIL-like format.
func WritePatterns(w io.Writer, pats []*Pattern) error { return stil.Write(w, pats) }

// ReadPatterns parses a pattern file.
func ReadPatterns(r io.Reader) ([]*Pattern, error) { return stil.Read(r) }

// Report persistence. Reports round-trip through JSON bit-identically —
// unstable (NaN) readings and infinities are carried as null and signed
// "Inf" strings on the wire, the encoding the superposed service also
// speaks.

// WriteReport serializes a certification report as indented JSON.
func WriteReport(w io.Writer, rep *Report) error { return netio.EncodeReport(w, rep) }

// ReadReport parses a JSON certification report.
func ReadReport(r io.Reader) (*Report, error) { return netio.DecodeReport(r) }

// WriteLotReport serializes a lot report as indented JSON.
func WriteLotReport(w io.Writer, lr *LotReport) error { return netio.EncodeLotReport(w, lr) }

// ReadLotReport parses a JSON lot report.
func ReadLotReport(r io.Reader) (*LotReport, error) { return netio.DecodeLotReport(r) }

// WriteROC serializes fusion-table rows (with their ROC curves) as
// indented JSON.
func WriteROC(w io.Writer, rows []FusionRow) error { return netio.EncodeROC(w, rows) }

// ReadROC parses a JSON fusion-table document.
func ReadROC(r io.Reader) ([]FusionRow, error) { return netio.DecodeROC(r) }
