package timing

import (
	"sort"

	"superpose/internal/netlist"
	"superpose/internal/scratch"
)

// Delays exposes the model's per-gate nominal delays (indexed by gate
// ID). The slice is owned by the model; callers must not mutate it.
func (m *Model) Delays() []float64 { return m.delay }

// Delays exposes the die's true per-gate delays (indexed by gate ID of
// the chip's netlist). The slice is owned by the chip; callers must not
// mutate it. EVALUATION AND MEASUREMENT-MODEL USE: a real tester sees
// only path arrivals, never per-gate delays — internal/core's delay
// measurement path funnels these through a PathWalker to produce the
// tester-visible observable.
func (c *Chip) Delays() []float64 { return c.delays }

// Netlist returns the netlist the chip was manufactured over.
func (c *Chip) Netlist() *netlist.Netlist { return c.n }

// PathWalker extracts per-pattern sensitized-path delays: the worst-case
// arrival among the gates one launch actually toggles, which is what a
// transition-delay test measures (the capture edge races the slowest
// sensitized path, not the static critical path). Gates that do not
// toggle contribute nothing — their outputs hold steady through the
// launch — so the walk runs over the toggle set only.
//
// The walker is iterative and pooled: its O(gates) arrival array and
// epoch-guard array come from internal/scratch and are reset in O(1) per
// call by bumping an epoch counter, so million-gate netlists pay neither
// recursion depth nor per-pattern clearing. One walker serves any number
// of PathDelay calls over the same netlist; it is not safe for
// concurrent use (pool one per goroutine, like the simulation engines).
type PathWalker struct {
	n       *netlist.Netlist
	arrival []float64 // per gate: arrival this epoch (valid iff seen matches)
	seen    []uint32  // epoch guard: arrival[id] is live iff seen[id] == epoch
	epoch   uint32
	order   []int // scratch: toggle set sorted into propagation order
}

// NewPathWalker builds a walker over n using pooled storage.
func NewPathWalker(n *netlist.Netlist) *PathWalker {
	return &PathWalker{
		n:       n,
		arrival: scratch.Float64s(n.NumGates()),
		seen:    scratch.Uint32s(n.NumGates()),
	}
}

// Release returns the walker's pooled storage. The walker must not be
// used afterwards; Release is idempotent.
func (w *PathWalker) Release() {
	if w.arrival != nil {
		scratch.PutFloat64s(w.arrival)
		w.arrival = nil
	}
	if w.seen != nil {
		scratch.PutUint32s(w.seen)
		w.seen = nil
	}
	if w.order != nil {
		scratch.PutInts(w.order)
		w.order = nil
	}
}

// PathDelay returns the worst-case arrival over the toggled subgraph:
// each toggled source launches at its own delay, each toggled
// combinational gate adds its delay to the latest arrival among its
// *toggled* fanins (an untoggled fanin holds steady and launches no
// transition into the gate). delays is indexed by gate ID — a Model's
// nominal delays for the defender's expectation, a Chip's true delays
// for the die's physical reality. toggles is not mutated.
//
// The result over the full gate set equals the global worst arrival of
// Analyze; over a pattern's toggle set it is the tester-visible
// transition-delay observable of that launch.
func (w *PathWalker) PathDelay(delays []float64, toggles []int) float64 {
	if len(toggles) == 0 {
		return 0
	}
	w.epoch++
	if w.epoch == 0 { // wrapped: every stale mark would read as live
		clear(w.seen)
		w.epoch = 1
	}

	// Propagation order: gate IDs are assigned in stream order, which the
	// builders do not promise is topological, so sort the toggle set by
	// levelized depth (ties by ID for determinism). Within a level no gate
	// reads another, so the order within ties is immaterial to the result.
	if cap(w.order) < len(toggles) {
		if w.order != nil {
			scratch.PutInts(w.order)
		}
		w.order = scratch.Ints(len(toggles))
	}
	order := append(w.order[:0], toggles...)
	sort.Slice(order, func(i, j int) bool {
		li, lj := w.n.Level(order[i]), w.n.Level(order[j])
		if li != lj {
			return li < lj
		}
		return order[i] < order[j]
	})

	worst := 0.0
	for _, id := range order {
		g := &w.n.Gates[id]
		best := 0.0
		if !g.Type.IsSource() {
			// Sources launch at their own delay (clk-to-Q, 0 for PIs):
			// a DFF's D-pin fanin is next-state logic, not part of the
			// launch path through the cell.
			for _, f := range g.Fanin {
				if w.seen[f] == w.epoch && w.arrival[f] > best {
					best = w.arrival[f]
				}
			}
		}
		a := best + delays[id]
		w.arrival[id] = a
		w.seen[id] = w.epoch
		if a > worst {
			worst = a
		}
	}
	return worst
}
