// Package timing provides static timing analysis over the gate-level
// netlist and a path-delay-fingerprint detector in the spirit of Jin &
// Makris (the paper's [1]) — the delay side of the side-channel family the
// paper's related work surveys. It serves as a comparison baseline: delay
// fingerprinting sees a Trojan only through the timing shifts its gates
// and loads induce on measured paths, while the power superposition method
// sees its switching directly.
//
// The model is deliberately simple and mirrors the power substrate: a
// per-cell nominal delay library, per-die Gaussian variation on every
// gate's delay, and an additional capacitive penalty on nets that fan out
// to many readers (which is how a Trojan's trigger taps load their hosts).
package timing

import (
	"fmt"

	"superpose/internal/netlist"
	"superpose/internal/stats"
)

// Library maps gate types to nominal propagation delays (arbitrary
// consistent units, think ps).
type Library struct {
	name  string
	delay map[netlist.GateType]float64
	// loadPenalty is the extra delay a driver pays per reader beyond the
	// first — the lever through which invisible Trojan taps become
	// visible to delay analysis.
	loadPenalty float64
}

// SAED90LikeDelays returns a delay library with relative magnitudes
// matching the power library's cells.
func SAED90LikeDelays() *Library {
	return &Library{
		name: "saed90-like-delay",
		delay: map[netlist.GateType]float64{
			netlist.Input: 0,
			netlist.DFF:   120, // clk-to-Q
			netlist.Buf:   35,
			netlist.Not:   25,
			netlist.And:   55,
			netlist.Nand:  40,
			netlist.Or:    60,
			netlist.Nor:   45,
			netlist.Xor:   85,
			netlist.Xnor:  90,
		},
		loadPenalty: 6,
	}
}

// Name returns the library name.
func (l *Library) Name() string { return l.name }

// Delay returns the nominal propagation delay of one gate instance given
// its fanout count.
func (l *Library) Delay(typ netlist.GateType, fanout int) float64 {
	d := l.delay[typ]
	if extra := fanout - 1; extra > 0 {
		d += float64(extra) * l.loadPenalty
	}
	return d
}

// Model is the defender's pre-silicon timing expectation: nominal
// per-gate delays over the golden netlist.
type Model struct {
	n     *netlist.Netlist
	delay []float64
}

// NewModel builds the nominal delay model of n under lib.
func NewModel(n *netlist.Netlist, lib *Library) *Model {
	m := &Model{n: n, delay: make([]float64, n.NumGates())}
	for id, g := range n.Gates {
		m.delay[id] = lib.Delay(g.Type, len(n.Fanouts(id)))
	}
	return m
}

// DelayOf returns the nominal delay of gate id.
func (m *Model) DelayOf(id int) float64 { return m.delay[id] }

// STA holds arrival times from a static timing analysis pass.
type STA struct {
	n       *netlist.Netlist
	Arrival []float64 // per net: worst-case arrival at the net's output
}

// Analyze runs topological worst-case arrival propagation: sources launch
// at their own delay (clk-to-Q for cells, 0 for PIs), every combinational
// gate adds its delay to the latest fanin arrival.
func Analyze(n *netlist.Netlist, delays []float64) *STA {
	s := &STA{n: n, Arrival: make([]float64, n.NumGates())}
	for _, pi := range n.PIs {
		s.Arrival[pi] = delays[pi]
	}
	for _, ff := range n.FFs {
		s.Arrival[ff] = delays[ff]
	}
	for _, id := range n.TopoOrder() {
		worst := 0.0
		for _, f := range n.Gates[id].Fanin {
			if s.Arrival[f] > worst {
				worst = s.Arrival[f]
			}
		}
		s.Arrival[id] = worst + delays[id]
	}
	return s
}

// CriticalPath returns the gate IDs of the worst path ending at net `end`,
// from source to end.
func (s *STA) CriticalPath(end int) []int {
	var rev []int
	id := end
	for {
		rev = append(rev, id)
		g := s.n.Gates[id]
		if g.Type.IsSource() {
			break
		}
		worst, worstID := -1.0, -1
		for _, f := range g.Fanin {
			if s.Arrival[f] > worst {
				worst, worstID = s.Arrival[f], f
			}
		}
		if worstID < 0 {
			break
		}
		id = worstID
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ObservationArrivals returns the arrival times at the observation points
// (primary outputs then flip-flop D pins), the measurable quantities of a
// delay-test fingerprint.
func (s *STA) ObservationArrivals() []float64 {
	var out []float64
	for _, po := range s.n.POs {
		out = append(out, s.Arrival[po])
	}
	for _, ff := range s.n.FFs {
		out = append(out, s.Arrival[s.n.Gates[ff].Fanin[0]])
	}
	return out
}

// Chip is one manufactured die's timing reality: per-gate delays with
// process variation, over the physical (possibly infected) netlist.
type Chip struct {
	n      *netlist.Netlist
	delays []float64
	inter  float64
}

// Manufacture draws a die. Variation semantics match the power model:
// one inter-die scale plus independent per-gate intra-die factors.
func Manufacture(n *netlist.Netlist, lib *Library, sigmaInter, sigmaIntra float64, seed uint64) *Chip {
	rng := stats.NewRNG(seed ^ 0x7137)
	inter := 1 + sigmaInter*rng.Norm()
	if inter < 0.05 {
		inter = 0.05
	}
	c := &Chip{n: n, delays: make([]float64, n.NumGates()), inter: inter}
	for id, g := range n.Gates {
		intra := 1 + sigmaIntra*rng.Norm()
		if intra < 0.05 {
			intra = 0.05
		}
		c.delays[id] = lib.Delay(g.Type, len(n.Fanouts(id))) * inter * intra
	}
	return c
}

// Measure runs STA over the die's true delays: the tester's view of the
// chip's path timing (delay testing measures arrival times at observation
// points; per-gate delays are not directly visible).
func (c *Chip) Measure() []float64 {
	return Analyze(c.n, c.delays).ObservationArrivals()
}

// FingerprintResult is the outcome of a delay-fingerprint comparison.
type FingerprintResult struct {
	// MaxResidual is the largest calibrated relative deviation of an
	// observation arrival from its nominal expectation.
	MaxResidual float64
	// Residuals holds the per-observation relative deviations.
	Residuals []float64
	// Scale is the calibrated inter-die factor.
	Scale float64
	// Detected is true when MaxResidual exceeds the threshold.
	Detected bool
}

// Fingerprint compares a die's measured observation arrivals against the
// golden model's expectations, after calibrating out the global (inter-
// die) delay scale with the median ratio — the delay analogue of the
// power flow's self-referencing calibration. A residual beyond
// `threshold` (relative) flags the die.
//
// The nominal expectations must come from a Model over the GOLDEN
// netlist; the measurement comes from the physical die. Observation
// points are index-aligned because Trojan insertion preserves host PO/FF
// identities.
func Fingerprint(golden *netlist.Netlist, m *Model, measured []float64, threshold float64) (*FingerprintResult, error) {
	nominal := Analyze(golden, m.delay).ObservationArrivals()
	if len(nominal) != len(measured) {
		return nil, fmt.Errorf("timing: %d nominal vs %d measured observation points", len(nominal), len(measured))
	}
	var ratios []float64
	for i := range nominal {
		if nominal[i] > 0 {
			ratios = append(ratios, measured[i]/nominal[i])
		}
	}
	if len(ratios) == 0 {
		return nil, fmt.Errorf("timing: no usable observation points")
	}
	scale := median(ratios)
	res := &FingerprintResult{Scale: scale}
	for i := range nominal {
		if nominal[i] <= 0 {
			res.Residuals = append(res.Residuals, 0)
			continue
		}
		r := measured[i]/(nominal[i]*scale) - 1
		if r < 0 {
			r = -r
		}
		res.Residuals = append(res.Residuals, r)
		if r > res.MaxResidual {
			res.MaxResidual = r
		}
	}
	res.Detected = res.MaxResidual > threshold
	return res, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ { // insertion sort; observation lists are short
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
