package timing

import (
	"fmt"
	"math"
	"testing"

	"superpose/internal/netlist"
	"superpose/internal/trust"
)

// deepChain mirrors internal/sim/deepchain_test.go: an alternating
// NOT/BUF chain through the streaming builder — a depth hazard for any
// recursive walk.
func deepChain(t testing.TB, depth int) *netlist.Netlist {
	t.Helper()
	b := netlist.NewStreamBuilder("deeptiming", depth+4)
	in := b.InternString("a")
	if err := b.AddInput(in); err != nil {
		t.Fatal(err)
	}
	prev := in
	for i := 0; i < depth; i++ {
		id := b.InternString(fmt.Sprintf("c%d", i))
		typ := netlist.Not
		if i%2 == 1 {
			typ = netlist.Buf
		}
		if err := b.AddGate(id, typ, []int32{prev}); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	b.MarkOutput([]byte(fmt.Sprintf("c%d", depth-1)))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// allGates returns every gate ID — the "everything toggled" stimulus
// under which PathDelay must reproduce static analysis exactly.
func allGates(n *netlist.Netlist) []int {
	ids := make([]int, n.NumGates())
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func worstArrival(s *STA) float64 {
	worst := 0.0
	for _, a := range s.Arrival {
		if a > worst {
			worst = a
		}
	}
	return worst
}

// TestDeepChainPathDelay drives the 50k-deep chain through the walker:
// the full-toggle path delay must equal the STA's worst arrival (the sum
// of every gate delay down the chain), with no stack-depth hazard.
func TestDeepChainPathDelay(t *testing.T) {
	const depth = 50000
	n := deepChain(t, depth)
	m := NewModel(n, SAED90LikeDelays())

	w := NewPathWalker(n)
	defer w.Release()
	got := w.PathDelay(m.Delays(), allGates(n))
	want := worstArrival(Analyze(n, m.Delays()))
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("full-toggle path delay %v, want STA worst arrival %v", got, want)
	}

	// A prefix of the chain is a shorter sensitized path: exactly the
	// prefix's delay sum, unaffected by the untoggled remainder.
	prefix := allGates(n)[:depth/2]
	gotHalf := w.PathDelay(m.Delays(), prefix)
	if gotHalf >= got {
		t.Fatalf("half-chain path delay %v must be shorter than full %v", gotHalf, got)
	}
	var want2 float64
	for _, id := range prefix {
		want2 += m.DelayOf(id)
	}
	if math.Abs(gotHalf-want2) > 1e-6 {
		t.Fatalf("half-chain path delay %v, want %v", gotHalf, want2)
	}
}

// TestPathDelayMatchesSTAOnBenchmark checks walker/STA agreement on a
// real benchmark circuit, and that the walk is insensitive to the order
// the toggle set is presented in.
func TestPathDelayMatchesSTAOnBenchmark(t *testing.T) {
	inst, err := trust.Build(trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	n := inst.Host
	m := NewModel(n, SAED90LikeDelays())
	w := NewPathWalker(n)
	defer w.Release()

	toggles := allGates(n)
	want := worstArrival(Analyze(n, m.Delays()))
	if got := w.PathDelay(m.Delays(), toggles); math.Abs(got-want) > 1e-6 {
		t.Fatalf("full-toggle path delay %v, want %v", got, want)
	}

	// Reversed presentation order: identical result (the walker sorts
	// into propagation order itself).
	rev := make([]int, len(toggles))
	for i, id := range toggles {
		rev[len(toggles)-1-i] = id
	}
	if got := w.PathDelay(m.Delays(), rev); math.Abs(got-want) > 1e-6 {
		t.Fatalf("reversed-order path delay %v, want %v", got, want)
	}
	for i, id := range rev { // input order must not be mutated
		if id != toggles[len(toggles)-1-i] {
			t.Fatal("PathDelay mutated the toggle slice")
		}
	}
}

// TestPathDelayDisjointSegments: two toggled islands do not see each
// other — an untoggled gate between them blocks arrival propagation.
func TestPathDelayDisjointSegments(t *testing.T) {
	n := deepChain(t, 64)
	m := NewModel(n, SAED90LikeDelays())
	w := NewPathWalker(n)
	defer w.Release()

	// Gate IDs along the chain are 0 (input), 1..64. Toggle two islands
	// separated by an untoggled gate: {1..10} and {12..40}. The second
	// island restarts from zero arrival at gate 12, so the walk's result
	// is the longer island's own delay sum, not the concatenation.
	var islandA, islandB []int
	for id := 1; id <= 10; id++ {
		islandA = append(islandA, id)
	}
	for id := 12; id <= 40; id++ {
		islandB = append(islandB, id)
	}
	sum := func(ids []int) float64 {
		var s float64
		for _, id := range ids {
			s += m.DelayOf(id)
		}
		return s
	}
	got := w.PathDelay(m.Delays(), append(append([]int{}, islandA...), islandB...))
	want := math.Max(sum(islandA), sum(islandB))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("disjoint islands: got %v, want max(%v, %v)", got, sum(islandA), sum(islandB))
	}
}

// TestPathDelayEpochReuse: results must not bleed between calls — a gate
// seen in a previous walk is stale in the next, even across thousands of
// reuses of the same pooled walker.
func TestPathDelayEpochReuse(t *testing.T) {
	n := deepChain(t, 32)
	m := NewModel(n, SAED90LikeDelays())
	w := NewPathWalker(n)
	defer w.Release()

	full := w.PathDelay(m.Delays(), allGates(n))
	single := []int{16}
	for i := 0; i < 5000; i++ {
		if got := w.PathDelay(m.Delays(), single); got != m.DelayOf(16) {
			t.Fatalf("iteration %d: single-gate walk %v, want %v (stale arrival leaked)",
				i, got, m.DelayOf(16))
		}
	}
	if got := w.PathDelay(m.Delays(), allGates(n)); got != full {
		t.Fatalf("full walk after reuse %v, want %v", got, full)
	}
	if w.PathDelay(m.Delays(), nil) != 0 {
		t.Fatal("empty toggle set must have zero path delay")
	}
}
