package timing

import (
	"math"
	"testing"

	"superpose/internal/netlist"
	"superpose/internal/trojan"
	"superpose/internal/trust"
)

// buildPathCircuit: pi -> b1 -> b2 -> b3 -> PO, plus a short side path.
func buildPathCircuit(t testing.TB) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("paths")
	if _, err := b.AddInput("pi"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddDFF("q", "d"); err != nil {
		t.Fatal(err)
	}
	chain := []string{"pi", "b1", "b2", "b3"}
	for i := 1; i < len(chain); i++ {
		if _, err := b.AddGate(chain[i], netlist.Buf, chain[i-1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.AddGate("short", netlist.Not, "q"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("d", netlist.And, "b3", "short"); err != nil {
		t.Fatal(err)
	}
	b.MarkOutput("b3")
	b.MarkOutput("short")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSTAArrivals(t *testing.T) {
	n := buildPathCircuit(t)
	lib := SAED90LikeDelays()
	m := NewModel(n, lib)
	sta := Analyze(n, m.delay)

	id := func(name string) int {
		g, ok := n.GateID(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		return g
	}
	// b1,b2 each have 1 reader; b3 has 2 readers (PO listing is not a
	// reader; d reads b3). Fanouts: b1->b2, b2->b3, b3->d.
	buf := lib.Delay(netlist.Buf, 1)
	if got := sta.Arrival[id("b1")]; math.Abs(got-buf) > 1e-9 {
		t.Errorf("arrival(b1) = %v, want %v", got, buf)
	}
	if got := sta.Arrival[id("b3")]; math.Abs(got-3*buf) > 1e-9 {
		t.Errorf("arrival(b3) = %v, want %v", got, 3*buf)
	}
	// d = AND(b3, short): worst fanin is b3's 3-buf path vs DFF+NOT
	// (the DFF q drives only `short`, so its fanout is 1).
	dffNot := lib.Delay(netlist.DFF, 1) + lib.Delay(netlist.Not, 1)
	worst := math.Max(3*buf, dffNot)
	want := worst + lib.Delay(netlist.And, 1)
	if got := sta.Arrival[id("d")]; math.Abs(got-want) > 1e-9 {
		t.Errorf("arrival(d) = %v, want %v", got, want)
	}

	// Critical path to d runs through the worst branch.
	path := sta.CriticalPath(id("d"))
	if path[len(path)-1] != id("d") {
		t.Error("critical path must end at the target")
	}
	if !n.Gates[path[0]].Type.IsSource() {
		t.Error("critical path must start at a source")
	}
	// Arrivals strictly increase along the path.
	for i := 1; i < len(path); i++ {
		if sta.Arrival[path[i]] <= sta.Arrival[path[i-1]] {
			t.Error("arrivals must increase along the critical path")
		}
	}
}

func TestLoadPenalty(t *testing.T) {
	lib := SAED90LikeDelays()
	if lib.Delay(netlist.Nand, 3) <= lib.Delay(netlist.Nand, 1) {
		t.Error("fanout load must add delay")
	}
	if lib.Name() == "" {
		t.Error("library name")
	}
}

func TestObservationArrivalsShape(t *testing.T) {
	n := buildPathCircuit(t)
	m := NewModel(n, SAED90LikeDelays())
	obs := Analyze(n, m.delay).ObservationArrivals()
	if len(obs) != len(n.POs)+len(n.FFs) {
		t.Fatalf("observations = %d", len(obs))
	}
}

func TestFingerprintCleanDiePasses(t *testing.T) {
	n := buildPathCircuit(t)
	lib := SAED90LikeDelays()
	m := NewModel(n, lib)
	for seed := uint64(0); seed < 20; seed++ {
		chip := Manufacture(n, lib, 0.15, 0.03, seed)
		res, err := Fingerprint(n, m, chip.Measure(), 0.15)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected {
			t.Errorf("seed %d: clean die flagged (max residual %v)", seed, res.MaxResidual)
		}
		// Calibration recovers the inter-die scale to within intra noise.
		if math.Abs(res.Scale-chip.inter) > 0.12 {
			t.Errorf("seed %d: scale %v vs true %v", seed, res.Scale, chip.inter)
		}
	}
}

func TestFingerprintCatchesCriticalPathPayload(t *testing.T) {
	// A payload in series on the WORST path into an observation point
	// shifts that arrival by a full XOR delay — the case delay
	// fingerprinting was designed for.
	host := buildPathCircuit(t)
	inst, err := trojan.Insert(host, trojan.Spec{
		Name:            "onpath",
		TriggerNets:     []string{"short"},
		TriggerPolarity: []bool{true},
		VictimNet:       "b3", // b3 feeds d... and d's worst fanin becomes b3+XOR
	})
	if err != nil {
		t.Fatal(err)
	}
	lib := SAED90LikeDelays()
	m := NewModel(host, lib)
	detected := 0
	const dies = 10
	for seed := uint64(0); seed < dies; seed++ {
		chip := Manufacture(inst.Infected, lib, 0.15, 0.03, seed)
		res, err := Fingerprint(host, m, chip.Measure(), 0.15)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected {
			detected++
		}
	}
	if detected < dies/2 {
		t.Errorf("critical-path payload caught on only %d/%d dies", detected, dies)
	}
}

// TestFingerprintMissesBenchmarkTrojans documents the comparison that
// motivates the paper: on the benchmark Trojans — whose payloads sit on
// busy but non-critical nets — the delay fingerprint's residual is
// indistinguishable from a clean die's process variation, while the power
// superposition pipeline detects every one of these cases
// (TestAllCasesSmallScale). This negative result is the baseline's
// expected behaviour, not a bug.
func TestFingerprintMissesBenchmarkTrojans(t *testing.T) {
	inst, err := trust.Build(trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	lib := SAED90LikeDelays()
	m := NewModel(inst.Host, lib)
	var worstInfected, worstClean float64
	const dies = 10
	for seed := uint64(0); seed < dies; seed++ {
		ri, err := Fingerprint(inst.Host, m, Manufacture(inst.Infected, lib, 0.15, 0.03, seed).Measure(), 0.15)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := Fingerprint(inst.Host, m, Manufacture(inst.Host, lib, 0.15, 0.03, seed).Measure(), 0.15)
		if err != nil {
			t.Fatal(err)
		}
		if ri.MaxResidual > worstInfected {
			worstInfected = ri.MaxResidual
		}
		if rc.MaxResidual > worstClean {
			worstClean = rc.MaxResidual
		}
	}
	t.Logf("max residual across %d dies: infected %.4f vs clean %.4f", dies, worstInfected, worstClean)
	// The infected residual must NOT stand clear of the clean one: if this
	// starts failing, the benchmark Trojans have become delay-visible and
	// the comparison narrative in EXPERIMENTS.md needs revisiting.
	if worstInfected > 2*worstClean {
		t.Errorf("benchmark Trojan unexpectedly delay-visible: %.4f vs clean %.4f",
			worstInfected, worstClean)
	}
}

func TestFingerprintErrors(t *testing.T) {
	n := buildPathCircuit(t)
	m := NewModel(n, SAED90LikeDelays())
	if _, err := Fingerprint(n, m, []float64{1}, 0.1); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestMedian(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
}

// TestTapLoadVisibility quantifies the subtler case: trigger taps load
// their host nets (one extra reader each), adding only a load penalty per
// tap — a far smaller delay signature than a series payload.
func TestTapLoadVisibility(t *testing.T) {
	host := buildPathCircuit(t)
	inst, err := trojan.Insert(host, trojan.Spec{
		Name:            "tap",
		TriggerNets:     []string{"b1", "b2"},
		TriggerPolarity: []bool{true, true},
		VictimNet:       "short",
	})
	if err != nil {
		t.Fatal(err)
	}
	lib := SAED90LikeDelays()
	mGold := NewModel(host, lib)
	mInf := NewModel(inst.Infected, lib)
	b1, _ := host.GateID("b1")
	// The tap adds one reader to b1: its effective delay grows by exactly
	// the load penalty in the infected model.
	if mInf.DelayOf(b1) <= mGold.DelayOf(b1) {
		t.Error("tap load must increase the tapped net's delay")
	}
}

func TestSTAMonotoneUnderDelayIncrease(t *testing.T) {
	// Property: increasing any single gate's delay can only increase (or
	// leave unchanged) every arrival time.
	n := buildPathCircuit(t)
	lib := SAED90LikeDelays()
	m := NewModel(n, lib)
	base := Analyze(n, m.delay).ObservationArrivals()
	for id := range n.Gates {
		if n.Gates[id].Type == netlist.Input {
			continue
		}
		bumped := append([]float64(nil), m.delay...)
		bumped[id] += 10
		got := Analyze(n, bumped).ObservationArrivals()
		for i := range base {
			if got[i] < base[i]-1e-9 {
				t.Fatalf("bumping gate %s decreased arrival %d: %v -> %v",
					n.NameOf(id), i, base[i], got[i])
			}
		}
	}
}
