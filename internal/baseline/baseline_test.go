package baseline

import (
	"testing"

	"superpose/internal/atpg"
	"superpose/internal/core"
	"superpose/internal/power"
	"superpose/internal/scan"
	"superpose/internal/trust"
)

func workbench(t testing.TB) (*core.Evaluator, *power.Library) {
	t.Helper()
	inst, err := trust.Build(trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	chip := power.Manufacture(inst.Infected, lib, power.ThreeSigmaIntra(0.15), 42)
	dev := core.NewDevice(chip, 4, scan.LOS)
	ev := core.NewEvaluator(inst.Host, lib, dev, 4, scan.LOS)
	return ev, lib
}

func TestRandomSearchFindsWeakSignalOnly(t *testing.T) {
	ev, _ := workbench(t)
	res := RandomSearch(ev, 128, 3)
	if res.Patterns != 128 {
		t.Fatalf("patterns = %d", res.Patterns)
	}
	if res.BestRPD <= 0 {
		t.Fatal("random search found no signal at all")
	}
	// The paper's framing: random patterns leave the Trojan buried. The
	// best random RPD should stay an order of magnitude below the
	// superposition levels (~0.1+) the pipeline reaches on this testbench.
	if res.BestRPD > 0.05 {
		t.Errorf("random BestRPD = %v, suspiciously strong", res.BestRPD)
	}
}

func TestRegionSearchShape(t *testing.T) {
	ev, _ := workbench(t)
	res := RegionSearch(ev, 16, 3)
	if res.Patterns != 16*ev.Chains().NumChains() {
		t.Fatalf("patterns = %d", res.Patterns)
	}
	if res.BestRPD <= 0 {
		t.Fatal("region search found no signal")
	}
}

func TestRegionPatternsConfineActivity(t *testing.T) {
	// Structural check: a region pattern launches transitions in exactly
	// one chain.
	ev, _ := workbench(t)
	ch := ev.Chains()
	// Reconstruct what RegionSearch builds and verify the confinement
	// property through the public TransitionAt predicate.
	res := RegionSearch(ev, 1, 9)
	_ = res
	// RegionSearch doesn't expose its patterns; verify the invariant on a
	// hand-built equivalent instead.
	p := ch.NewPattern()
	for j := range p.Scan[1] {
		p.Scan[1][j] = j%3 == 0
	}
	for c := range p.Scan {
		for j := range p.Scan[c] {
			if c != 1 && p.TransitionAt(c, j) {
				t.Fatalf("transition outside region at chain %d", c)
			}
		}
	}
}

func TestBaselinesBelowPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline comparison")
	}
	inst, err := trust.Build(trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	chip := power.Manufacture(inst.Infected, lib, power.ThreeSigmaIntra(0.15), 42)
	dev := core.NewDevice(chip, 4, scan.LOS)

	rep, err := core.Detect(inst.Host, lib, dev, core.Config{
		NumChains: 4, Varsigma: 0.10,
		ATPG: atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120},
	})
	if err != nil {
		t.Fatal(err)
	}

	ev := core.NewEvaluator(inst.Host, lib, dev, 4, scan.LOS)
	rnd := RandomSearch(ev, 256, 5)
	reg := RegionSearch(ev, 64, 5)

	pipeline := rep.FinalSRPD
	if pipeline < 0 {
		pipeline = -pipeline
	}
	t.Logf("pipeline S-RPD=%.4f; random best RPD=%.4f pair=%.4f; region best RPD=%.4f pair=%.4f",
		pipeline, rnd.BestRPD, rnd.BestPairSRPD, reg.BestRPD, reg.BestPairSRPD)

	// The paper's comparison: superposition exceeds what random-pattern
	// methods reach by a wide margin.
	if pipeline < 3*rnd.BestRPD {
		t.Errorf("pipeline %.4f not well above random RPD %.4f", pipeline, rnd.BestRPD)
	}
	if pipeline < 3*reg.BestRPD {
		t.Errorf("pipeline %.4f not well above region RPD %.4f", pipeline, reg.BestRPD)
	}
}
