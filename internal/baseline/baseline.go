// Package baseline implements the comparison points the paper positions
// itself against (§V-C): plain random transition patterns — "other recent
// test pattern-based techniques boast improvements of at most an order of
// magnitude over random test patterns" — and a region-confined scheme in
// the spirit of Banga & Hsiao's per-region activity isolation [16], which
// limits launch activity to one scan chain at a time.
//
// Both baselines consume the same Evaluator as the superposition pipeline,
// so their achieved signal magnitudes are directly comparable with the
// Table I stages.
package baseline

import (
	"superpose/internal/core"
	"superpose/internal/scan"
	"superpose/internal/stats"
)

// Result summarizes a baseline search.
type Result struct {
	// BestRPD is the strongest single-pattern suspicious signal found.
	BestRPD float64
	// BestPairSRPD is the strongest |S-RPD| over adjacent pattern pairs of
	// the search sequence (the superposition opportunity a non-adaptive
	// method would stumble upon).
	BestPairSRPD float64
	// Patterns is the number of patterns measured.
	Patterns int
}

// RandomSearch measures n uniformly random LOS patterns and keeps the best
// single-pattern RPD and best adjacent-pair |S-RPD|. The evaluator is
// calibrated on the pattern set first, as any power-based method must be
// to mean anything in the presence of inter-die variation.
func RandomSearch(ev *core.Evaluator, n int, seed uint64) Result {
	rng := stats.NewRNG(seed)
	pats := make([]*scan.Pattern, n)
	for i := range pats {
		pats[i] = ev.Chains().RandomPattern(rng)
	}
	ev.Calibrate(pats)
	return evaluate(ev, pats)
}

// RegionSearch measures perRegion random patterns per scan chain, each
// confining its launch transitions to that single chain (all other chains
// are loaded with constant fill, so they launch nothing). Primary inputs
// stay random: region isolation concerns launch activity, not
// sensitization.
func RegionSearch(ev *core.Evaluator, perRegion int, seed uint64) Result {
	rng := stats.NewRNG(seed)
	ch := ev.Chains()
	var pats []*scan.Pattern
	for region := 0; region < ch.NumChains(); region++ {
		for i := 0; i < perRegion; i++ {
			p := ch.NewPattern()
			for c := range p.Scan {
				if c == region {
					for j := range p.Scan[c] {
						p.Scan[c][j] = rng.Bool()
					}
					continue
				}
				fill := rng.Bool() // constant per chain: zero launches
				for j := range p.Scan[c] {
					p.Scan[c][j] = fill
				}
			}
			for j := range p.PI {
				p.PI[j] = rng.Bool()
			}
			pats = append(pats, p)
		}
	}
	ev.Calibrate(pats)
	return evaluate(ev, pats)
}

// evaluate measures the pattern sequence and extracts the result metrics.
func evaluate(ev *core.Evaluator, pats []*scan.Pattern) Result {
	res := Result{Patterns: len(pats)}
	for start := 0; start < len(pats); start += 64 {
		end := start + 64
		if end > len(pats) {
			end = len(pats)
		}
		for _, rd := range ev.MeasureBatch(pats[start:end]) {
			if r := abs(rd.RPD); r > res.BestRPD {
				res.BestRPD = r
			}
		}
	}
	// Adjacent pairs of the sequence, batched.
	var pairs [][2]*scan.Pattern
	for i := 1; i < len(pats); i++ {
		pairs = append(pairs, [2]*scan.Pattern{pats[i-1], pats[i]})
	}
	if len(pairs) > 0 {
		for _, pa := range ev.AnalyzePairs(pairs) {
			if s := abs(pa.SRPD); s > res.BestPairSRPD {
				res.BestPairSRPD = s
			}
		}
	}
	return res
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
