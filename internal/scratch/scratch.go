// Package scratch pools the O(gates) slices the simulation and sweep
// layers acquire per construction — lane-word frames, epoch guards,
// membership bitmaps. At published circuit sizes these allocations are
// noise; at 10⁵–10⁷ gates a per-die Sweeper or DeltaProp that mallocs
// five multi-megabyte arrays per lot keeps the garbage collector busy
// and the per-lot setup cost growing with gate count. Pooling by exact
// size class (netlists of the same size share; a certify service mostly
// re-sees the same designs) makes steady-state setup allocation-free.
//
// Every getter returns a zeroed slice, so pooled reuse is
// indistinguishable from make(). Putting a slice hands ownership to the
// pool: the caller must not retain any reference, including subslices.
package scratch

import (
	"sync"

	"superpose/internal/logic"
)

// slices pools []T by exact capacity class. The pool stores *[]T so
// Put/Get avoid boxing allocations.
type slices[T any] struct {
	classes sync.Map // int (capacity) -> *sync.Pool
}

func (p *slices[T]) get(n int) []T {
	if c, ok := p.classes.Load(n); ok {
		if v, ok := c.(*sync.Pool).Get().(*[]T); ok {
			s := (*v)[:n]
			clear(s)
			return s
		}
	}
	return make([]T, n)
}

func (p *slices[T]) put(s []T) {
	c := cap(s)
	if c == 0 {
		return
	}
	s = s[:c]
	cl, _ := p.classes.LoadOrStore(c, &sync.Pool{})
	cl.(*sync.Pool).Put(&s)
}

var (
	wordPool    slices[logic.Word]
	uint32Pool  slices[uint32]
	uint64Pool  slices[uint64]
	boolPool    slices[bool]
	float64Pool slices[float64]
	intPool     slices[int]
)

// Words returns a zeroed []logic.Word of length n.
func Words(n int) []logic.Word { return wordPool.get(n) }

// PutWords returns a slice obtained from Words (or compatible) to the pool.
func PutWords(s []logic.Word) { wordPool.put(s) }

// Uint32s returns a zeroed []uint32 of length n.
func Uint32s(n int) []uint32 { return uint32Pool.get(n) }

// PutUint32s returns a slice to the pool.
func PutUint32s(s []uint32) { uint32Pool.put(s) }

// Uint64s returns a zeroed []uint64 of length n.
func Uint64s(n int) []uint64 { return uint64Pool.get(n) }

// PutUint64s returns a slice to the pool.
func PutUint64s(s []uint64) { uint64Pool.put(s) }

// Bools returns a zeroed []bool of length n.
func Bools(n int) []bool { return boolPool.get(n) }

// PutBools returns a slice to the pool.
func PutBools(s []bool) { boolPool.put(s) }

// Float64s returns a zeroed []float64 of length n.
func Float64s(n int) []float64 { return float64Pool.get(n) }

// PutFloat64s returns a slice to the pool.
func PutFloat64s(s []float64) { float64Pool.put(s) }

// Ints returns a zeroed []int of length n.
func Ints(n int) []int { return intPool.get(n) }

// PutInts returns a slice to the pool.
func PutInts(s []int) { intPool.put(s) }
