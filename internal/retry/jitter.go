package retry

import (
	"sync"
	"time"

	"superpose/internal/stats"
)

// Jitter produces decorrelated Retry-After hints. Handing every
// rejected client the same fixed hint synchronizes their comebacks —
// a recovering server is then hit by the whole backlog at once. Each
// Around call advances one shared seeded RNG, so concurrent rejections
// receive different hints and the stampede spreads out.
//
// Like every stochastic component of the toolchain the RNG is seeded:
// a Jitter built from the same seed hands out the same hint sequence,
// so tests of the rejection path stay reproducible.
type Jitter struct {
	mu  sync.Mutex
	rng *stats.RNG
}

// NewJitter returns a seeded jitter source.
func NewJitter(seed uint64) *Jitter {
	return &Jitter{rng: stats.NewRNG(seed ^ 0x117E12A57E12)}
}

// Around returns a duration drawn uniformly from [d, 2d): never less
// than the caller's minimum wait (a breaker cooldown, a quota refill),
// spread across a full extra interval beyond it. A non-positive d is
// treated as one second.
func (j *Jitter) Around(d time.Duration) time.Duration {
	if d <= 0 {
		d = time.Second
	}
	j.mu.Lock()
	f := j.rng.Float64()
	j.mu.Unlock()
	return d + time.Duration(f*float64(d))
}
