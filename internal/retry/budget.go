package retry

import "sync"

// Budget is a token bucket capping how much retry work the service may
// spend: every retry withdraws one token, every success deposits
// Replenish tokens (up to the capacity). When failures outpace
// successes the bucket empties and retries are denied — the fleet fails
// fast instead of amplifying an outage with retry traffic.
type Budget struct {
	mu        sync.Mutex
	tokens    float64
	capacity  float64
	replenish float64
}

// NewBudget returns a full bucket. capacity <= 0 defaults to 16 tokens;
// replenish <= 0 defaults to 0.5 tokens per success.
func NewBudget(capacity, replenish float64) *Budget {
	if capacity <= 0 {
		capacity = 16
	}
	if replenish <= 0 {
		replenish = 0.5
	}
	return &Budget{tokens: capacity, capacity: capacity, replenish: replenish}
}

// Withdraw takes one token for a retry, reporting false (and taking
// nothing) when the bucket cannot cover it.
func (b *Budget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Deposit credits a success back into the bucket.
func (b *Budget) Deposit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.replenish
	if b.tokens > b.capacity {
		b.tokens = b.capacity
	}
}

// Remaining returns the current token count (for stats).
func (b *Budget) Remaining() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
