package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffBoundsAndDeterminism(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond, Seed: 9}
	a, b := p.Backoff(), p.Backoff()
	prev := time.Duration(0)
	for i := 0; i < 20; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("seeded backoff diverged at step %d: %v vs %v", i, da, db)
		}
		if da < p.BaseDelay || da > p.MaxDelay {
			t.Fatalf("delay %v outside [%v, %v]", da, p.BaseDelay, p.MaxDelay)
		}
		if prev > 0 && da > 3*prev {
			t.Fatalf("delay %v exceeds 3x previous %v", da, prev)
		}
		prev = da
	}
	// A different seed produces a different sequence.
	c := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond, Seed: 10}.Backoff()
	same := true
	aa := p.Backoff()
	for i := 0; i < 8; i++ {
		if aa.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter")
	}
}

func TestSleepContextAware(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	start := time.Now()
	if err := Sleep(ctx, 5*time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep returned %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Error("Sleep did not abort on cancellation")
	}
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Errorf("plain sleep returned %v", err)
	}
}

func TestDoRetriesTransient(t *testing.T) {
	transientErr := errors.New("wobble")
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		func(err error) bool { return errors.Is(err, transientErr) },
		func(context.Context) error {
			calls++
			if calls < 3 {
				return transientErr
			}
			return nil
		})
	if err != nil || calls != 3 {
		t.Errorf("Do: err=%v calls=%d, want success on call 3", err, calls)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	perm := errors.New("hard")
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 5, BaseDelay: time.Millisecond},
		func(error) bool { return false },
		func(context.Context) error { calls++; return perm })
	if !errors.Is(err, perm) || calls != 1 {
		t.Errorf("Do: err=%v calls=%d, want immediate permanent failure", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		nil, func(context.Context) error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 3 {
		t.Errorf("Do: err=%v calls=%d, want 3 attempts then the last error", err, calls)
	}
}

func TestBudget(t *testing.T) {
	b := NewBudget(2, 1)
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("full budget denied a retry")
	}
	if b.Withdraw() {
		t.Fatal("empty budget granted a retry")
	}
	b.Deposit()
	if !b.Withdraw() {
		t.Fatal("replenished budget denied a retry")
	}
	// Deposits cap at capacity.
	for i := 0; i < 10; i++ {
		b.Deposit()
	}
	if got := b.Remaining(); got != 2 {
		t.Errorf("Remaining after overfill = %v, want capacity 2", got)
	}
}

// fakeClock drives a breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown, probeEvery time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return NewBreaker(BreakerOptions{
		Threshold: threshold, Cooldown: cooldown, ProbeEvery: probeEvery, Now: clk.now,
	}), clk
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute, 10*time.Second)
	for i := 0; i < 2; i++ {
		b.Failure()
		if st := b.State(); st != BreakerClosed {
			t.Fatalf("state after %d failures = %s", i+1, st)
		}
		if !b.Allow() {
			t.Fatal("closed breaker refused traffic")
		}
	}
	b.Failure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after threshold = %s, want open", st)
	}
	if b.Allow() {
		t.Error("open breaker admitted traffic")
	}
	if ra := b.RetryAfter(); ra <= 0 || ra > time.Minute {
		t.Errorf("RetryAfter = %v", ra)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute, 10*time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if st := b.State(); st != BreakerClosed {
		t.Errorf("interleaved successes still tripped the breaker: %s", st)
	}
	if b.ConsecutiveFailures() != 2 {
		t.Errorf("streak = %d, want 2", b.ConsecutiveFailures())
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	b, clk := newTestBreaker(2, time.Minute, 10*time.Second)
	b.Failure()
	b.Failure() // trip
	clk.advance(time.Minute)
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %s, want half-open", st)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the first probe")
	}
	// Probe rate limit: a second probe inside ProbeEvery is refused.
	if b.Allow() {
		t.Fatal("half-open breaker admitted two probes in one interval")
	}
	clk.advance(10 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker refused a probe after the interval")
	}
	b.Success()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after probe success = %s, want closed", st)
	}
	if !b.Allow() {
		t.Error("recovered breaker refused traffic")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(2, time.Minute, 10*time.Second)
	b.Failure()
	b.Failure()
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Failure() // probe failed: cooldown restarts
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %s, want open", st)
	}
	clk.advance(30 * time.Second)
	if b.Allow() {
		t.Error("re-opened breaker admitted traffic mid-cooldown")
	}
	clk.advance(30 * time.Second)
	if !b.Allow() {
		t.Error("re-opened breaker never recovered to probing")
	}
}
