package retry

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState string

const (
	// BreakerClosed: traffic flows, failures are counted.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: traffic is refused until the cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: the cooldown elapsed; probe traffic trickles
	// through, one probe per ProbeEvery, until a success closes the
	// breaker or a failure re-opens it.
	BreakerHalfOpen BreakerState = "half-open"
)

// BreakerOptions configures a Breaker.
type BreakerOptions struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// (default 5).
	Threshold int
	// Cooldown is how long a tripped breaker refuses all traffic before
	// probing resumes (default 30s).
	Cooldown time.Duration
	// ProbeEvery rate-limits half-open probes (default Cooldown/4): at
	// most one probe is admitted per interval, so a probe whose outcome
	// never arrives (a cancelled job) cannot wedge the breaker.
	ProbeEvery time.Duration
	// Now is the clock (default time.Now) — injectable for tests.
	Now func() time.Time
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Threshold <= 0 {
		o.Threshold = 5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 30 * time.Second
	}
	if o.ProbeEvery <= 0 {
		o.ProbeEvery = o.Cooldown / 4
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Breaker is a consecutive-failure circuit breaker. It is deliberately
// time-based rather than in-flight-count-based in its half-open state:
// probes are admitted at most once per ProbeEvery, so forgotten
// outcomes (cancelled probes) delay recovery by one interval instead of
// deadlocking it. Safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	opts      BreakerOptions
	consec    int       // consecutive failures while closed
	tripped   bool      // open or half-open
	openedAt  time.Time // when the breaker last tripped
	lastProbe time.Time // last admitted half-open probe
}

// NewBreaker returns a closed breaker.
func NewBreaker(opts BreakerOptions) *Breaker {
	return &Breaker{opts: opts.withDefaults()}
}

// Allow reports whether a unit of work may proceed. Closed: always.
// Open: never, until the cooldown elapses. Half-open: one probe per
// ProbeEvery interval.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.tripped {
		return true
	}
	now := b.opts.Now()
	if now.Sub(b.openedAt) < b.opts.Cooldown {
		return false
	}
	if b.lastProbe.IsZero() || now.Sub(b.lastProbe) >= b.opts.ProbeEvery {
		b.lastProbe = now
		return true
	}
	return false
}

// Success records a completed unit of work; in half-open it closes the
// breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec = 0
	b.tripped = false
	b.lastProbe = time.Time{}
}

// Failure records a failed unit of work: it trips the breaker at the
// threshold, and re-opens (restarting the cooldown) when a half-open
// probe fails.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tripped {
		// A probe (or a straggler from before the trip) failed: restart
		// the cooldown.
		b.openedAt = b.opts.Now()
		b.lastProbe = time.Time{}
		return
	}
	b.consec++
	if b.consec >= b.opts.Threshold {
		b.tripped = true
		b.openedAt = b.opts.Now()
		b.lastProbe = time.Time{}
	}
}

// State returns the breaker's position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.tripped {
		return BreakerClosed
	}
	if b.opts.Now().Sub(b.openedAt) < b.opts.Cooldown {
		return BreakerOpen
	}
	return BreakerHalfOpen
}

// RetryAfter returns how long a refused caller should wait before
// trying again: the remaining cooldown when open, the probe interval
// when half-open, zero when closed.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.tripped {
		return 0
	}
	if rem := b.opts.Cooldown - b.opts.Now().Sub(b.openedAt); rem > 0 {
		return rem
	}
	return b.opts.ProbeEvery
}

// ConsecutiveFailures returns the closed-state failure streak (for
// stats).
func (b *Breaker) ConsecutiveFailures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consec
}
