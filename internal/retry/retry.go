// Package retry is the service's failure-handling toolkit: exponential
// backoff with decorrelated jitter, a token-bucket retry budget that
// caps how much of the fleet's work may be retries, and a circuit
// breaker (see breaker.go) that sheds load when a dependency — here, a
// tester profile — fails persistently.
//
// Like every stochastic component of the toolchain the jitter is
// seeded: a Backoff built from the same Policy produces the same delay
// sequence, so chaos tests are reproducible.
package retry

import (
	"context"
	"time"

	"superpose/internal/stats"
)

// Policy shapes a retry loop.
type Policy struct {
	// MaxAttempts is the total number of attempts, including the first
	// (default 3; 1 disables retries).
	MaxAttempts int
	// BaseDelay is the first backoff delay (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps every delay (default 2s).
	MaxDelay time.Duration
	// Seed selects the jitter realization.
	Seed uint64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// Backoff produces the policy's delay sequence: decorrelated jitter
// (Brooker), where each delay is drawn uniformly from [BaseDelay,
// 3·previous] and capped at MaxDelay. The expectation grows
// geometrically like plain exponential backoff, but concurrent
// retriers decorrelate instead of thundering in lockstep.
type Backoff struct {
	p    Policy
	prev time.Duration
	rng  *stats.RNG
}

// Backoff returns a fresh, seeded delay sequence for one retry loop.
func (p Policy) Backoff() *Backoff {
	p = p.withDefaults()
	return &Backoff{p: p, rng: stats.NewRNG(p.Seed ^ 0xBACC0FF5EED)}
}

// Next returns the next delay of the sequence.
func (b *Backoff) Next() time.Duration {
	lo := b.p.BaseDelay
	hi := 3 * b.prev
	if hi < lo {
		hi = lo
	}
	d := lo + time.Duration(b.rng.Float64()*float64(hi-lo))
	if d > b.p.MaxDelay {
		d = b.p.MaxDelay
	}
	b.prev = d
	return d
}

// Sleep waits for d or until ctx is done, returning ctx's error in the
// latter case — the context-aware pause between attempts.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs op up to MaxAttempts times, backing off between attempts.
// transient reports whether an error is worth retrying; a nil predicate
// retries everything. Do returns nil on the first success, the last
// error when attempts or the context run out, and stops immediately on
// a non-transient error.
func Do(ctx context.Context, p Policy, transient func(error) bool, op func(context.Context) error) error {
	p = p.withDefaults()
	bo := p.Backoff()
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = op(ctx); err == nil {
			return nil
		}
		if transient != nil && !transient(err) {
			return err
		}
		if attempt >= p.MaxAttempts {
			return err
		}
		if serr := Sleep(ctx, bo.Next()); serr != nil {
			return err
		}
	}
}
