// Package cluster layers a coordinator/worker split over the
// certification service, scaling the superposed daemon horizontally
// while keeping PR-5's bit-identity and crash-recovery guarantees.
//
// Topology: one coordinator owns the public /v1 API, the job registry,
// the durability journal, admission (per-tenant token-bucket quotas
// with fair-share over the queue) and routing; N workers each run a
// full service.Server (queue, artifact cache, core flow) and register
// with the coordinator. A worker holds a time-based lease renewed by
// heartbeats; a lease that lapses declares the worker dead and every
// job assigned to it is handed off — re-enqueued onto a surviving
// worker under the crash-recovery contract (the flow is deterministic,
// so the re-run's report is bit-identical to what the dead worker
// would have produced).
//
// Routing is content-hash affinity (rendezvous hashing of the job's
// artifact-cache key over worker addresses), so repeat submissions of
// one design land on the worker already holding its netlist and ATPG
// artifacts; work-stealing overrides affinity when the backlog skews.
// All inter-node traffic is stdlib HTTP/JSON. The coordinator journals
// every assignment, steal, handoff and completion in an internal/
// journal log, which a restarted coordinator replays to re-attach to
// (or reclaim finished results from) workers that kept running through
// the outage — exactly-once results over at-least-once attempts.
package cluster

// RegisterRequest is the body of POST /cluster/v1/register: the base
// URL the worker serves its /v1 job API on, as reachable from the
// coordinator.
type RegisterRequest struct {
	Addr string `json:"addr"`
}

// RegisterResponse grants a lease.
type RegisterResponse struct {
	WorkerID string  `json:"worker_id"`
	LeaseID  string  `json:"lease_id"`
	TTLSec   float64 `json:"ttl_sec"`
}

// HeartbeatRequest is the body of POST /cluster/v1/heartbeat.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	LeaseID  string `json:"lease_id"`
}

// HeartbeatResponse acknowledges a renewal.
type HeartbeatResponse struct {
	TTLSec float64 `json:"ttl_sec"`
}

// WorkerView is one row of GET /cluster/v1/workers — the operator's
// (and the chaos harness's) view of the fleet.
type WorkerView struct {
	ID                string  `json:"id"`
	Addr              string  `json:"addr"`
	InFlight          int     `json:"in_flight"`
	LeaseRemainingSec float64 `json:"lease_remaining_sec"`
}
