package cluster

import (
	"fmt"
	"testing"
	"time"
)

func TestPickAffinityIsStable(t *testing.T) {
	lt := newLeaseTable(time.Minute, nil)
	for i := 0; i < 4; i++ {
		lt.register(fmt.Sprintf("http://10.0.0.%d:8418", i))
	}
	// The same content key routes to the same worker every time (cache
	// affinity), and different keys spread across the fleet.
	seen := map[string]bool{}
	for _, key := range []string{"k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8"} {
		first, _ := lt.pick(key, 0, false)
		lt.release(first)
		for i := 0; i < 10; i++ {
			again, stolen := lt.pick(key, 0, false)
			lt.release(again)
			if again != first || stolen {
				t.Fatalf("key %q moved from %s to %s (stolen=%v)", key, first.id, again.id, stolen)
			}
		}
		seen[first.id] = true
	}
	if len(seen) < 2 {
		t.Fatalf("8 keys all routed to %d worker(s); want spread", len(seen))
	}
}

func TestPickAffinitySurvivesReregistration(t *testing.T) {
	lt := newLeaseTable(time.Minute, nil)
	lt.register("http://a:1")
	lt.register("http://b:1")
	w, _ := lt.pick("design-x", 0, false)
	lt.release(w)
	// The affinity worker reboots: same address, new lease. The key
	// must still route to that address (its cache shard survived on
	// disk even though the process didn't).
	lt.register(w.addr)
	again, _ := lt.pick("design-x", 0, false)
	if again.addr != w.addr {
		t.Fatalf("key moved from %s to %s across re-registration", w.addr, again.addr)
	}
}

func TestPickStealsFromSkewedWorker(t *testing.T) {
	lt := newLeaseTable(time.Minute, nil)
	lt.register("http://a:1")
	lt.register("http://b:1")
	aff, _ := lt.pick("hot-key", 0, false) // inflight 1 on the affinity worker
	// Load the affinity worker past the margin.
	aff2, _ := lt.pick("hot-key", 0, false)
	if aff2 != aff {
		t.Fatalf("affinity moved without stealing enabled")
	}
	// Skew is now 2; margin 2 lets the idle worker steal.
	stolenTo, stolen := lt.pick("hot-key", 2, true)
	if !stolen || stolenTo == aff {
		t.Fatalf("pick = (%s, stolen=%v), want a steal to the idle worker", stolenTo.id, stolen)
	}
	// Margin higher than the skew: no steal.
	lt.release(stolenTo)
	same, stolen := lt.pick("hot-key", 3, true)
	if stolen || same != aff {
		t.Fatalf("pick = (%s, stolen=%v), want the affinity worker unstolen", same.id, stolen)
	}
}

func TestExpireClosesDeadChannel(t *testing.T) {
	clk := newFakeClock()
	lt := newLeaseTable(50*time.Millisecond, clk.Now)
	w, _ := lt.register("http://a:1")
	if gone := lt.expire(); len(gone) != 0 {
		t.Fatalf("fresh lease expired: %v", gone)
	}
	clk.Advance(time.Second)
	gone := lt.expire()
	if len(gone) != 1 || gone[0] != w {
		t.Fatalf("expire returned %v, want the lapsed worker", gone)
	}
	select {
	case <-w.Dead():
	default:
		t.Fatal("dead channel not closed on expiry")
	}
	if _, err := lt.heartbeat(w.id, w.leaseID); err != ErrUnknownWorker {
		t.Fatalf("heartbeat after expiry: %v, want ErrUnknownWorker", err)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	clk := newFakeClock()
	lt := newLeaseTable(50*time.Millisecond, clk.Now)
	w, _ := lt.register("http://a:1")
	for i := 0; i < 5; i++ {
		clk.Advance(30 * time.Millisecond)
		if _, err := lt.heartbeat(w.id, w.leaseID); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
		if gone := lt.expire(); len(gone) != 0 {
			t.Fatalf("renewed lease expired at beat %d", i)
		}
	}
}

func TestRegisterSupersedesSameAddr(t *testing.T) {
	lt := newLeaseTable(time.Minute, nil)
	old, superseded := lt.register("http://a:1")
	if superseded != nil {
		t.Fatalf("first registration superseded %v", superseded)
	}
	fresh, superseded := lt.register("http://a:1")
	if superseded != old {
		t.Fatalf("superseded = %v, want the first lease", superseded)
	}
	select {
	case <-old.Dead():
	default:
		t.Fatal("superseded lease's dead channel not closed")
	}
	if _, err := lt.heartbeat(old.id, old.leaseID); err == nil {
		t.Fatal("stale heartbeat accepted")
	}
	if _, err := lt.heartbeat(fresh.id, fresh.leaseID); err != nil {
		t.Fatalf("fresh heartbeat rejected: %v", err)
	}
}

func TestTenantQuotaRefills(t *testing.T) {
	clk := newFakeClock()
	q := newTenantQuotas(2, 2, clk.Now) // 2/s, burst 2
	for i := 0; i < 2; i++ {
		if _, ok := q.admit("acme"); !ok {
			t.Fatalf("burst admit %d refused", i)
		}
	}
	wait, ok := q.admit("acme")
	if ok {
		t.Fatal("admit beyond burst accepted")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("wait hint = %v, want (0, 1s] at 2 tokens/s", wait)
	}
	// Tenants are isolated: another tenant's bucket is untouched.
	if _, ok := q.admit("other"); !ok {
		t.Fatal("second tenant throttled by the first's spend")
	}
	// Time refills the bucket.
	clk.Advance(time.Second)
	if _, ok := q.admit("acme"); !ok {
		t.Fatal("refilled bucket still refusing")
	}
}

func TestJitterRetryAfterBounds(t *testing.T) {
	clk := newFakeClock()
	q := newTenantQuotas(0.5, 1, clk.Now)
	q.admit("t")
	wait, ok := q.admit("t")
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if wait != 2*time.Second {
		t.Fatalf("wait = %v, want 2s (one token at 0.5/s)", wait)
	}
}
