package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"sync"
	"time"

	"superpose/internal/failpoint"
	"superpose/internal/journal"
	"superpose/internal/retry"
)

// HA journal replication. The primary does not copy segment files —
// compaction rewrites those underneath a byte-level tail. Instead a
// repHub retains the LOGICAL record history of each journal ("service"
// jobs, "cluster" assignments), seeded from replay at startup and fed
// by the journal taps on every durable append. A follower on the
// standby tails a stream over HTTP — each record framed exactly like an
// on-disk segment record (journal.WriteFrame) — and appends it to its
// own local journal, so a promotion is nothing but a normal journal
// replay of the local copy. Replay is last-record-wins, which makes the
// scheme immune to duplicate history across reconnects and compactions.
//
// Offsets are only meaningful within one HISTORY of a stream: the hub
// renumbers whenever the primary's journal is rebuilt (boot, promotion,
// snapshot rebase), so every stream carries a history tag
// "<lease-epoch>.<generation>". The follower persists the tag beside
// its local journal and sends it back on reconnect; a mismatch means
// its saved offset counts records of a dead timeline, so the primary
// answers 409 and the follower wipes its copy and re-tails from zero.
// Without the tag, a primary that restarted twice (any restart after a
// compaction) would hand the follower a shrunken stream and from(n)
// would silently skip every record below the stale offset.

// AckRequest is the body of POST /ha/v1/replicate/ack: how many records
// of a stream the standby has made durable locally. It doubles as the
// standby's liveness signal for ha_peer_lag_records.
type AckRequest struct {
	Stream string `json:"stream"`
	Count  int    `json:"count"`
}

// repHub retains the logical record history per stream and tracks what
// the peer has acknowledged. Acknowledged records are trimmed; a
// follower asking for a trimmed offset is re-seeded from a snapshot of
// the coordinator's materialized state (serveStream's rebase hook).
type repHub struct {
	mu      sync.Mutex
	base    string // history base: the lease epoch this hub serves under
	streams map[string]*repStream
	acked   map[string]int
}

type repStream struct {
	mu    sync.Mutex
	recs  [][]byte
	start int // logical offset of recs[0]; everything below is trimmed
	gen   int // bumped on every rebase: invalidates follower offsets
	wait  chan struct{} // closed and replaced on every publish
}

func newRepHub() *repHub {
	return &repHub{streams: make(map[string]*repStream), acked: make(map[string]int)}
}

// setBase stamps the history base (the lease epoch). Every Acquire
// bumps the epoch, so every primary boot or promotion starts a fresh
// history and stale follower offsets are rejected, not misapplied.
func (h *repHub) setBase(epoch uint64) {
	h.mu.Lock()
	h.base = strconv.FormatUint(epoch, 10)
	h.mu.Unlock()
}

// stream returns (creating) the named stream.
func (h *repHub) stream(name string) *repStream {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.streams[name]
	if !ok {
		st = &repStream{wait: make(chan struct{})}
		h.streams[name] = st
	}
	return st
}

// historyOf returns the stream's current history tag, "<epoch>.<gen>".
func (h *repHub) historyOf(name string) string {
	st := h.stream(name)
	h.mu.Lock()
	base := h.base
	h.mu.Unlock()
	st.mu.Lock()
	gen := st.gen
	st.mu.Unlock()
	return base + "." + strconv.Itoa(gen)
}

// publish appends one record to a stream and wakes blocked senders.
func (h *repHub) publish(name string, payload []byte) {
	st := h.stream(name)
	rec := make([]byte, len(payload))
	copy(rec, payload)
	st.mu.Lock()
	st.recs = append(st.recs, rec)
	close(st.wait)
	st.wait = make(chan struct{})
	st.mu.Unlock()
}

// from snapshots a stream's records at logical offsets >= n, plus the
// publish-wakeup channel and the generation the snapshot belongs to.
// ok is false when n predates the retained window (trimmed): the caller
// must rebase the stream before serving.
func (st *repStream) from(n int) (recs [][]byte, wait <-chan struct{}, gen int, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if n < st.start {
		return nil, st.wait, st.gen, false
	}
	if i := n - st.start; i < len(st.recs) {
		recs = st.recs[i:len(st.recs):len(st.recs)]
	}
	return recs, st.wait, st.gen, true
}

// rebase replaces a stream's retained window with a snapshot of the
// journal's compacted logical state, renumbered from zero under a new
// generation. Any connection serving the old generation drops (the
// follower reconnects, sees the history change, and wipes).
func (h *repHub) rebase(name string, records [][]byte) {
	st := h.stream(name)
	recs := make([][]byte, len(records))
	for i, r := range records {
		rec := make([]byte, len(r))
		copy(rec, r)
		recs[i] = rec
	}
	st.mu.Lock()
	st.recs = recs
	st.start = 0
	st.gen++
	close(st.wait)
	st.wait = make(chan struct{})
	st.mu.Unlock()
	h.mu.Lock()
	h.acked[name] = 0
	h.mu.Unlock()
}

// ack records the peer's durable count for a stream (monotone) and
// trims the retained window up to it — acknowledged records are durable
// on the standby and never re-sent, so holding them is pure leak.
func (h *repHub) ack(name string, count int) {
	h.mu.Lock()
	if count > h.acked[name] {
		h.acked[name] = count
	}
	h.mu.Unlock()
	st := h.stream(name)
	st.mu.Lock()
	if drop := count - st.start; drop > 0 {
		if drop > len(st.recs) {
			drop = len(st.recs)
		}
		// Fresh slice: release the trimmed records' backing array.
		st.recs = append([][]byte(nil), st.recs[drop:]...)
		st.start += drop
	}
	st.mu.Unlock()
}

// lag sums, across streams, how many published records the peer has
// not yet acknowledged.
func (h *repHub) lag() int {
	h.mu.Lock()
	streams := make(map[string]*repStream, len(h.streams))
	acked := make(map[string]int, len(h.acked))
	for k, v := range h.streams {
		streams[k] = v
	}
	for k, v := range h.acked {
		acked[k] = v
	}
	h.mu.Unlock()
	total := 0
	for name, st := range streams {
		st.mu.Lock()
		n := st.start + len(st.recs)
		st.mu.Unlock()
		if d := n - acked[name]; d > 0 {
			total += d
		}
	}
	return total
}

// reset drops all retained history and acks (demotion wipes the local
// journals; the hub must not resurrect the discarded timeline).
func (h *repHub) reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, st := range h.streams {
		st.mu.Lock()
		st.recs = nil
		close(st.wait)
		st.wait = make(chan struct{})
		st.mu.Unlock()
	}
	h.streams = make(map[string]*repStream)
	h.acked = make(map[string]int)
}

// serveStream writes a stream to one follower connection: a frame per
// record from the requested offset, heartbeat frames when idle, until
// the connection dies, stop closes, or the stream is rebased under the
// connection. The follower's history tag is validated first — a
// mismatch (or an untagged resume above zero) gets 409 so the follower
// wipes and restarts; a fresh follower below the trimmed window
// triggers rebase (snapshot re-seed). The send failpoint drops the
// connection mid-stream (partition chaos).
func (h *repHub) serveStream(w http.ResponseWriter, r *http.Request, heartbeat time.Duration, stop <-chan struct{}, rebase func(stream string) bool) {
	name := r.URL.Query().Get("stream")
	if name == "" {
		httpError(w, http.StatusBadRequest, "replicate: stream parameter required")
		return
	}
	from, _ := strconv.Atoi(r.URL.Query().Get("from"))
	if from < 0 {
		from = 0
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "replicate: streaming unsupported")
		return
	}

	hist := r.URL.Query().Get("history")
	cur := h.historyOf(name)
	if hist != "" && hist != cur {
		httpError(w, http.StatusConflict,
			fmt.Sprintf("replicate: stream %s history is %s, follower has %s", name, cur, hist))
		return
	}
	if hist == "" && from > 0 {
		// Records of unknown provenance: the offset cannot be trusted.
		httpError(w, http.StatusConflict,
			fmt.Sprintf("replicate: stream %s resume at %d without a history tag", name, from))
		return
	}

	st := h.stream(name)
	if _, _, _, ok := st.from(from); !ok {
		// The follower (necessarily fresh: hist=="" ⇒ from==0) predates
		// the retained window. Re-seed the stream from a snapshot.
		if rebase == nil || !rebase(name) {
			httpError(w, http.StatusServiceUnavailable, "replicate: stream snapshot unavailable")
			return
		}
		cur = h.historyOf(name)
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Ha-History", cur)
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	n := from
	genAt := -1
	for {
		recs, wait, gen, ok := st.from(n)
		if !ok || (genAt >= 0 && gen != genAt) {
			return // rebased under us: the follower must resync
		}
		genAt = gen
		for _, rec := range recs {
			if err := failpoint.Inject("cluster/ha/replicate/send"); err != nil {
				return // connection drops; the follower reconnects from its count
			}
			if err := journal.WriteFrame(w, rec); err != nil {
				return
			}
			n++
		}
		flusher.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-stop:
			return
		case <-wait:
		case <-time.After(heartbeat):
			if err := journal.WriteFrame(w, nil); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// follower tails one stream of the peer's journal into a local journal
// directory. It reconnects with decorrelated-jitter backoff, resumes
// from its local record count (the stream offset), and acknowledges
// durable progress back to the primary. The stream's history tag is
// persisted beside the journal; when the primary reports a different
// history (409), the local copy counts records of a dead timeline and
// is wiped before re-tailing from zero.
type follower struct {
	name   string // stream name: "service" or "cluster"
	peer   string // primary's base URL
	dir    string // local journal directory
	nosync bool
	client *http.Client
	logf   func(format string, args ...any)
	stall  time.Duration // watchdog: max quiet time before reconnecting

	mu    sync.Mutex
	count int // records durable locally == stream offset
}

// offset returns how many records the follower has made durable.
func (f *follower) offset() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count
}

// historyPath is where the follower persists the stream's history tag.
// It lives inside the journal directory (segment scanning ignores it)
// so the demote-path RemoveAll wipes both together.
func (f *follower) historyPath() string {
	return f.dir + "/rep-history"
}

func (f *follower) storedHistory() string {
	data, err := os.ReadFile(f.historyPath())
	if err != nil {
		return ""
	}
	return string(bytes.TrimSpace(data))
}

// resetLocal discards the local journal copy and history tag: the
// primary's stream history no longer matches what these records were
// counted against.
func (f *follower) resetLocal(jnl *journal.Journal) error {
	jnl.Close()
	if err := os.RemoveAll(f.dir); err != nil {
		return err
	}
	f.mu.Lock()
	f.count = 0
	f.mu.Unlock()
	return nil
}

// run tails the stream until ctx dies. The local journal is opened per
// connection attempt so a torn tail from a crashed standby is truncated
// by the normal journal replay path before the resume offset is
// computed.
func (f *follower) run(ctx context.Context) {
	backoff := retry.Policy{BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Seed: 0x0F011073}.Backoff()
	for ctx.Err() == nil {
		err := f.tail(ctx)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			f.logf("ha follower %s: %v (reconnecting)", f.name, err)
		}
		retry.Sleep(ctx, backoff.Next())
	}
}

// tail opens the local journal, connects at the resume offset and
// appends frames until the stream breaks.
func (f *follower) tail(ctx context.Context) error {
	jnl, records, err := journal.Open(f.dir, journal.Options{NoSync: f.nosync})
	if err != nil {
		return err
	}
	defer jnl.Close()
	f.mu.Lock()
	f.count = len(records)
	from := f.count
	f.mu.Unlock()
	stored := f.storedHistory()

	// The stream context is cancelled by a stall watchdog when neither a
	// record nor a heartbeat frame arrives for several heartbeat
	// intervals — a half-open connection must not wedge replication.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stall := f.stall
	if stall <= 0 {
		stall = 5 * time.Second
	}
	watchdog := time.AfterFunc(stall, cancel)
	defer watchdog.Stop()

	target := fmt.Sprintf("%s/ha/v1/replicate?stream=%s&from=%d", f.peer, f.name, from)
	if stored != "" {
		target += "&history=" + url.QueryEscape(stored)
	}
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, target, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusConflict {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		if err := f.resetLocal(jnl); err != nil {
			return fmt.Errorf("replicate %s: reset after history change: %w", f.name, err)
		}
		return fmt.Errorf("replicate %s: %s (local copy wiped, re-tailing from zero)",
			f.name, bytes.TrimSpace(msg))
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("replicate %s: HTTP %d: %s", f.name, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if hdr := resp.Header.Get("X-Ha-History"); hdr != "" {
		if stored == "" {
			if err := os.WriteFile(f.historyPath(), []byte(hdr), 0o644); err != nil {
				return fmt.Errorf("replicate %s: persist history tag: %w", f.name, err)
			}
		} else if hdr != stored {
			// Cannot happen (a mismatch gets 409), but if it ever does the
			// local copy must not absorb records from a foreign timeline.
			if err := f.resetLocal(jnl); err != nil {
				return err
			}
			return fmt.Errorf("replicate %s: history drifted %s -> %s mid-handshake", f.name, stored, hdr)
		}
	}

	for {
		payload, err := journal.ReadFrame(resp.Body)
		if err != nil {
			if err == io.EOF && ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("replicate %s: %w", f.name, err)
		}
		watchdog.Reset(stall)
		if payload == nil {
			f.sendAck(ctx) // heartbeat: ack as standby liveness
			continue
		}
		if err := failpoint.Inject("cluster/ha/replicate/recv"); err != nil {
			return fmt.Errorf("replicate %s: %w", f.name, err)
		}
		if err := jnl.Append(payload); err != nil {
			return fmt.Errorf("replicate %s: local append: %w", f.name, err)
		}
		f.mu.Lock()
		f.count++
		n := f.count
		f.mu.Unlock()
		if n%16 == 0 {
			f.sendAck(ctx)
		}
	}
}

// sendAck posts the follower's durable count to the primary,
// best-effort — lag accounting, not correctness.
func (f *follower) sendAck(ctx context.Context) {
	body, err := json.Marshal(AckRequest{Stream: f.name, Count: f.offset()})
	if err != nil {
		return
	}
	actx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost,
		f.peer+"/ha/v1/replicate/ack", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := f.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

var errNotPrimary = errors.New("cluster: not the primary")
