package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"superpose/internal/failpoint"
	"superpose/internal/journal"
	"superpose/internal/retry"
)

// HA journal replication. The primary does not copy segment files —
// compaction rewrites those underneath a byte-level tail. Instead a
// repHub retains the LOGICAL record history of each journal ("service"
// jobs, "cluster" assignments), seeded from replay at startup and fed
// by the journal taps on every durable append. A follower on the
// standby tails a stream over HTTP — each record framed exactly like an
// on-disk segment record (journal.WriteFrame) — and appends it to its
// own local journal, so a promotion is nothing but a normal journal
// replay of the local copy. Replay is last-record-wins, which makes the
// scheme immune to duplicate history across reconnects and compactions.

// AckRequest is the body of POST /ha/v1/replicate/ack: how many records
// of a stream the standby has made durable locally. It doubles as the
// standby's liveness signal for ha_peer_lag_records.
type AckRequest struct {
	Stream string `json:"stream"`
	Count  int    `json:"count"`
}

// repHub retains the logical record history per stream and tracks what
// the peer has acknowledged.
type repHub struct {
	mu      sync.Mutex
	streams map[string]*repStream
	acked   map[string]int
}

type repStream struct {
	mu   sync.Mutex
	recs [][]byte
	wait chan struct{} // closed and replaced on every publish
}

func newRepHub() *repHub {
	return &repHub{streams: make(map[string]*repStream), acked: make(map[string]int)}
}

// stream returns (creating) the named stream.
func (h *repHub) stream(name string) *repStream {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.streams[name]
	if !ok {
		st = &repStream{wait: make(chan struct{})}
		h.streams[name] = st
	}
	return st
}

// publish appends one record to a stream and wakes blocked senders.
func (h *repHub) publish(name string, payload []byte) {
	st := h.stream(name)
	rec := make([]byte, len(payload))
	copy(rec, payload)
	st.mu.Lock()
	st.recs = append(st.recs, rec)
	close(st.wait)
	st.wait = make(chan struct{})
	st.mu.Unlock()
}

// from snapshots a stream's records after offset n, plus the channel
// that signals the next publish.
func (st *repStream) from(n int) ([][]byte, <-chan struct{}) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out [][]byte
	if n < len(st.recs) {
		out = st.recs[n:len(st.recs):len(st.recs)]
	}
	return out, st.wait
}

// ack records the peer's durable count for a stream (monotone).
func (h *repHub) ack(name string, count int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if count > h.acked[name] {
		h.acked[name] = count
	}
}

// lag sums, across streams, how many published records the peer has
// not yet acknowledged.
func (h *repHub) lag() int {
	h.mu.Lock()
	streams := make(map[string]*repStream, len(h.streams))
	acked := make(map[string]int, len(h.acked))
	for k, v := range h.streams {
		streams[k] = v
	}
	for k, v := range h.acked {
		acked[k] = v
	}
	h.mu.Unlock()
	total := 0
	for name, st := range streams {
		st.mu.Lock()
		n := len(st.recs)
		st.mu.Unlock()
		if d := n - acked[name]; d > 0 {
			total += d
		}
	}
	return total
}

// reset drops all retained history and acks (demotion wipes the local
// journals; the hub must not resurrect the discarded timeline).
func (h *repHub) reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, st := range h.streams {
		st.mu.Lock()
		st.recs = nil
		close(st.wait)
		st.wait = make(chan struct{})
		st.mu.Unlock()
	}
	h.streams = make(map[string]*repStream)
	h.acked = make(map[string]int)
}

// serveStream writes a stream to one follower connection: a frame per
// record from the requested offset, heartbeat frames when idle, until
// the connection dies or stop closes. The send failpoint drops the
// connection mid-stream (partition chaos).
func (h *repHub) serveStream(w http.ResponseWriter, r *http.Request, heartbeat time.Duration, stop <-chan struct{}) {
	name := r.URL.Query().Get("stream")
	if name == "" {
		httpError(w, http.StatusBadRequest, "replicate: stream parameter required")
		return
	}
	from, _ := strconv.Atoi(r.URL.Query().Get("from"))
	if from < 0 {
		from = 0
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "replicate: streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	st := h.stream(name)
	n := from
	for {
		recs, wait := st.from(n)
		for _, rec := range recs {
			if err := failpoint.Inject("cluster/ha/replicate/send"); err != nil {
				return // connection drops; the follower reconnects from its count
			}
			if err := journal.WriteFrame(w, rec); err != nil {
				return
			}
			n++
		}
		flusher.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-stop:
			return
		case <-wait:
		case <-time.After(heartbeat):
			if err := journal.WriteFrame(w, nil); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// follower tails one stream of the peer's journal into a local journal
// directory. It reconnects with decorrelated-jitter backoff, resumes
// from its local record count (the stream offset), and acknowledges
// durable progress back to the primary.
type follower struct {
	name   string // stream name: "service" or "cluster"
	peer   string // primary's base URL
	dir    string // local journal directory
	nosync bool
	client *http.Client
	logf   func(format string, args ...any)
	stall  time.Duration // watchdog: max quiet time before reconnecting

	mu    sync.Mutex
	count int // records durable locally == stream offset
}

// offset returns how many records the follower has made durable.
func (f *follower) offset() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count
}

// run tails the stream until ctx dies. The local journal is opened per
// connection attempt so a torn tail from a crashed standby is truncated
// by the normal journal replay path before the resume offset is
// computed.
func (f *follower) run(ctx context.Context) {
	backoff := retry.Policy{BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Seed: 0x0F011073}.Backoff()
	for ctx.Err() == nil {
		err := f.tail(ctx)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			f.logf("ha follower %s: %v (reconnecting)", f.name, err)
		}
		retry.Sleep(ctx, backoff.Next())
	}
}

// tail opens the local journal, connects at the resume offset and
// appends frames until the stream breaks.
func (f *follower) tail(ctx context.Context) error {
	jnl, records, err := journal.Open(f.dir, journal.Options{NoSync: f.nosync})
	if err != nil {
		return err
	}
	defer jnl.Close()
	f.mu.Lock()
	f.count = len(records)
	from := f.count
	f.mu.Unlock()

	// The stream context is cancelled by a stall watchdog when neither a
	// record nor a heartbeat frame arrives for several heartbeat
	// intervals — a half-open connection must not wedge replication.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stall := f.stall
	if stall <= 0 {
		stall = 5 * time.Second
	}
	watchdog := time.AfterFunc(stall, cancel)
	defer watchdog.Stop()

	req, err := http.NewRequestWithContext(sctx, http.MethodGet,
		fmt.Sprintf("%s/ha/v1/replicate?stream=%s&from=%d", f.peer, f.name, from), nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("replicate %s: HTTP %d: %s", f.name, resp.StatusCode, bytes.TrimSpace(msg))
	}

	for {
		payload, err := journal.ReadFrame(resp.Body)
		if err != nil {
			if err == io.EOF && ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("replicate %s: %w", f.name, err)
		}
		watchdog.Reset(stall)
		if payload == nil {
			f.sendAck(ctx) // heartbeat: ack as standby liveness
			continue
		}
		if err := failpoint.Inject("cluster/ha/replicate/recv"); err != nil {
			return fmt.Errorf("replicate %s: %w", f.name, err)
		}
		if err := jnl.Append(payload); err != nil {
			return fmt.Errorf("replicate %s: local append: %w", f.name, err)
		}
		f.mu.Lock()
		f.count++
		n := f.count
		f.mu.Unlock()
		if n%16 == 0 {
			f.sendAck(ctx)
		}
	}
}

// sendAck posts the follower's durable count to the primary,
// best-effort — lag accounting, not correctness.
func (f *follower) sendAck(ctx context.Context) {
	body, err := json.Marshal(AckRequest{Stream: f.name, Count: f.offset()})
	if err != nil {
		return
	}
	actx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost,
		f.peer+"/ha/v1/replicate/ack", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := f.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

var errNotPrimary = errors.New("cluster: not the primary")
