package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"superpose/internal/service"
)

// fakeClock drives lease expiry deterministically: the expiry sweeper
// still ticks on real time, but whether a lease has lapsed is decided
// against this clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// startWorker boots a runner-backed worker service on an httptest
// listener. The runner replaces the real certification flow, so
// cluster mechanics are tested without burning CPU on ATPG.
func startWorker(t *testing.T, runner func(ctx context.Context, j *service.Job) error) (*service.Server, *httptest.Server) {
	t.Helper()
	svc, err := service.New(service.Options{QueueSize: 8, Workers: 2, Runner: runner})
	if err != nil {
		t.Fatalf("worker service: %v", err)
	}
	svc.Start()
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		dctx, cancel := context.WithCancel(context.Background())
		cancel() // cancelled budget: drain immediately, aborting in-flight jobs
		svc.Drain(dctx)
	})
	return svc, ts
}

// startCoordinator boots a coordinator on an httptest listener.
func startCoordinator(t *testing.T, opts Options) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	c.Start()
	ts := httptest.NewServer(c)
	t.Cleanup(func() {
		ts.Close()
		dctx, cancel := context.WithCancel(context.Background())
		cancel()
		c.Drain(dctx)
	})
	return c, ts
}

// registerWorker joins a worker to the coordinator over the real HTTP
// endpoint (no agent loop: tests heartbeat explicitly for determinism).
func registerWorker(t *testing.T, coordURL string, addr string) RegisterResponse {
	t.Helper()
	body, _ := json.Marshal(RegisterRequest{Addr: addr})
	resp, err := http.Post(coordURL+"/cluster/v1/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: HTTP %d", resp.StatusCode)
	}
	var lease RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatalf("register decode: %v", err)
	}
	return lease
}

func submitSpec(t *testing.T, coordURL string, spec string) (service.Status, *http.Response) {
	t.Helper()
	resp, err := http.Post(coordURL+"/v1/jobs", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var st service.Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("submit decode: %v", err)
		}
	}
	resp.Body.Close()
	return st, resp
}

func getStatus(t *testing.T, base, id string) service.Status {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	return st
}

func waitState(t *testing.T, base, id string, want service.State, within time.Duration) service.Status {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		st := getStatus(t, base, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %q (error %q), want %q", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func serverStats(t *testing.T, base string) service.Stats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	return st
}

const testSpec = `{"kind":"detect","case":"s35932-T200"}`

// waitWorkerCounter polls a worker's /v1/stats until the selected
// counter reaches 1 — how tests observe the worker-side job outcome
// without knowing its worker-local job ID.
func waitWorkerCounter(t *testing.T, workerURL, what string, sel func(service.Stats) uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for sel(serverStats(t, workerURL)) < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("worker-side job never %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClusterDispatchCompletes is the happy path: one worker, one job,
// dispatched over HTTP and adopted back.
func TestClusterDispatchCompletes(t *testing.T) {
	var runs atomic.Int64
	_, worker := startWorker(t, func(ctx context.Context, j *service.Job) error {
		runs.Add(1)
		return nil
	})
	_, coord := startCoordinator(t, Options{
		Service:      service.Options{QueueSize: 16, Workers: 2},
		LeaseTTL:     time.Minute,
		PollInterval: 2 * time.Millisecond,
	})
	registerWorker(t, coord.URL, worker.URL)

	st, resp := submitSpec(t, coord.URL, testSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitState(t, coord.URL, st.ID, service.StateDone, 5*time.Second)
	if got := runs.Load(); got != 1 {
		t.Fatalf("worker ran job %d times, want 1", got)
	}
	stats := serverStats(t, coord.URL)
	if stats.Cluster["dispatches"] != 1 || stats.Cluster["workers_live"] != 1 {
		t.Fatalf("cluster stats = %v, want 1 dispatch on 1 live worker", stats.Cluster)
	}
}

// TestWorkerLostHandoff kills a worker's lease mid-job and requires the
// coordinator to hand the job to a survivor — exactly one completion,
// exactly one handoff journaled.
func TestWorkerLostHandoff(t *testing.T) {
	clk := newFakeClock()
	const ttl = 50 * time.Millisecond

	// The victim's runner parks until its context dies (the job never
	// finishes there); the survivor's completes immediately.
	victimStarted := make(chan struct{}, 1)
	var victimRuns, survivorRuns atomic.Int64
	_, victim := startWorker(t, func(ctx context.Context, j *service.Job) error {
		victimRuns.Add(1)
		select {
		case victimStarted <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return ctx.Err()
	})

	c, coord := startCoordinator(t, Options{
		Service:      service.Options{QueueSize: 16, Workers: 2},
		LeaseTTL:     ttl,
		PollInterval: 2 * time.Millisecond,
		Now:          clk.Now,
	})
	registerWorker(t, coord.URL, victim.URL)

	st, _ := submitSpec(t, coord.URL, testSpec)
	<-victimStarted

	// The survivor joins "after the outage": registering at the
	// advanced clock keeps its lease live while the victim's lapses on
	// the next sweep.
	_, survivor := startWorker(t, func(ctx context.Context, j *service.Job) error {
		survivorRuns.Add(1)
		return nil
	})
	clk.Advance(10 * ttl)
	registerWorker(t, coord.URL, survivor.URL)

	waitState(t, coord.URL, st.ID, service.StateDone, 5*time.Second)
	if v, s := victimRuns.Load(), survivorRuns.Load(); v != 1 || s != 1 {
		t.Fatalf("victim ran %d, survivor ran %d; want 1 and 1", v, s)
	}
	stats := serverStats(t, coord.URL)
	if stats.Cluster["handoffs"] != 1 {
		t.Fatalf("handoffs = %d, want 1", stats.Cluster["handoffs"])
	}
	if stats.Cluster["leases_expired"] < 1 {
		t.Fatalf("leases_expired = %d, want >= 1", stats.Cluster["leases_expired"])
	}
	if stats.Cluster["duplicate_results"] != 0 {
		t.Fatalf("duplicate_results = %d, want 0", stats.Cluster["duplicate_results"])
	}
	c.amu.Lock()
	completed := len(c.completed)
	c.amu.Unlock()
	if completed != 1 {
		t.Fatalf("completed jobs = %d, want exactly 1", completed)
	}
}

// TestLateHeartbeatFinishedJob is the lease-expiry edge case: the
// worker finishes the job but its heartbeat arrives too late to save
// the lease. The completed report must be adopted (exactly-once
// result), not discarded, and the job must not run anywhere else.
func TestLateHeartbeatFinishedJob(t *testing.T) {
	clk := newFakeClock()
	const ttl = 50 * time.Millisecond

	release := make(chan struct{})
	started := make(chan struct{}, 1)
	var runs atomic.Int64
	_, worker := startWorker(t, func(ctx context.Context, j *service.Job) error {
		runs.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return nil
	})

	// PollInterval is huge: the coordinator can only learn the outcome
	// through the grace poll its dead-lease path performs.
	_, coord := startCoordinator(t, Options{
		Service:      service.Options{QueueSize: 16, Workers: 2},
		LeaseTTL:     ttl,
		PollInterval: time.Hour,
		Now:          clk.Now,
	})
	registerWorker(t, coord.URL, worker.URL)

	st, _ := submitSpec(t, coord.URL, testSpec)
	<-started

	// The worker finishes...
	close(release)
	waitWorkerCounter(t, worker.URL, "completed", func(s service.Stats) uint64 { return s.JobsCompleted })
	// ...and only then does its lease lapse (the heartbeat that would
	// have saved it never lands).
	clk.Advance(10 * ttl)

	got := waitState(t, coord.URL, st.ID, service.StateDone, 5*time.Second)
	if got.State != service.StateDone {
		t.Fatalf("job state = %q, want done", got.State)
	}
	if runs.Load() != 1 {
		t.Fatalf("job ran %d times, want exactly 1 (no double execution)", runs.Load())
	}
	stats := serverStats(t, coord.URL)
	if stats.Cluster["grace_poll_adopted"] != 1 {
		t.Fatalf("grace_poll_adopted = %d, want 1", stats.Cluster["grace_poll_adopted"])
	}
	if stats.Cluster["handoffs"] != 0 {
		t.Fatalf("handoffs = %d, want 0 (result was adopted, not re-run)", stats.Cluster["handoffs"])
	}
}

// TestCancelPropagates: cancelling the coordinator job aborts the
// worker-side job too.
func TestCancelPropagates(t *testing.T) {
	started := make(chan struct{}, 1)
	_, worker := startWorker(t, func(ctx context.Context, j *service.Job) error {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return ctx.Err()
	})
	_, coord := startCoordinator(t, Options{
		Service:      service.Options{QueueSize: 16, Workers: 2},
		LeaseTTL:     time.Minute,
		PollInterval: 2 * time.Millisecond,
	})
	registerWorker(t, coord.URL, worker.URL)

	st, _ := submitSpec(t, coord.URL, testSpec)
	<-started

	req, _ := http.NewRequest(http.MethodDelete, coord.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	resp.Body.Close()

	waitState(t, coord.URL, st.ID, service.StateCancelled, 5*time.Second)
	waitWorkerCounter(t, worker.URL, "cancelled", func(s service.Stats) uint64 { return s.JobsCancelled })
}

// TestTenantQuotaThrottles: draining a tenant's token bucket turns
// into a 429 with a jittered Retry-After and a throttle counter tick.
func TestTenantQuotaThrottles(t *testing.T) {
	_, worker := startWorker(t, func(ctx context.Context, j *service.Job) error { return nil })
	_, coord := startCoordinator(t, Options{
		Service:      service.Options{QueueSize: 16, Workers: 2},
		LeaseTTL:     time.Minute,
		PollInterval: 2 * time.Millisecond,
		TenantRate:   0.0001, // effectively no refill within the test
		TenantBurst:  2,
	})
	registerWorker(t, coord.URL, worker.URL)

	spec := `{"kind":"detect","case":"s35932-T200","tenant":"acme"}`
	for i := 0; i < 2; i++ {
		_, resp := submitSpec(t, coord.URL, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d, want 202", i, resp.StatusCode)
		}
	}
	_, resp := submitSpec(t, coord.URL, spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("throttled submit: HTTP %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	stats := serverStats(t, coord.URL)
	if stats.JobsThrottled != 1 {
		t.Fatalf("jobs_throttled = %d, want 1", stats.JobsThrottled)
	}
}

// TestFairShareUnderContention: once the queue is half full, one
// tenant cannot take more than its share of the remaining slots while
// another tenant still gets in.
func TestFairShareUnderContention(t *testing.T) {
	// No workers registered: submissions pile up in the queue.
	_, coord := startCoordinator(t, Options{
		Service:      service.Options{QueueSize: 8, Workers: 1},
		LeaseTTL:     time.Minute,
		PollInterval: 2 * time.Millisecond,
		TenantRate:   1000, // quota never binds; fair share does
		TenantBurst:  1000,
	})

	hoarder := `{"kind":"detect","case":"s35932-T200","tenant":"hog"}`
	var throttled bool
	for i := 0; i < 8; i++ {
		_, resp := submitSpec(t, coord.URL, hoarder)
		if resp.StatusCode == http.StatusTooManyRequests {
			throttled = true
			break
		}
	}
	if !throttled {
		t.Fatal("hoarding tenant was never fair-share throttled")
	}
	// A second tenant still gets a slot.
	_, resp := submitSpec(t, coord.URL, `{"kind":"detect","case":"s35932-T200","tenant":"small"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant: HTTP %d, want 202", resp.StatusCode)
	}
	stats := serverStats(t, coord.URL)
	if stats.TenantQueueDepth["hog"] == 0 || stats.TenantQueueDepth["small"] != 1 {
		t.Fatalf("tenant depths = %v, want hog > 0 and small == 1", stats.TenantQueueDepth)
	}
}

// TestReadyReportsNoWorkers: a coordinator with zero live workers is
// alive but not ready, and says why.
func TestReadyReportsNoWorkers(t *testing.T) {
	_, coord := startCoordinator(t, Options{
		Service:  service.Options{QueueSize: 4, Workers: 1},
		LeaseTTL: time.Minute,
	})
	resp, err := http.Get(coord.URL + "/healthz/ready")
	if err != nil {
		t.Fatalf("ready: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ready: HTTP %d, want 503", resp.StatusCode)
	}
	var body struct {
		Reasons []string `json:"reasons"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("ready decode: %v", err)
	}
	found := false
	for _, r := range body.Reasons {
		if r == "no live cluster workers registered" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ready reasons = %v, want the no-workers reason", body.Reasons)
	}
}

// TestHeartbeatLifecycle exercises the membership protocol end to end:
// renewals succeed, stale leases 409, unknown workers 404.
func TestHeartbeatLifecycle(t *testing.T) {
	_, coord := startCoordinator(t, Options{
		Service:  service.Options{QueueSize: 4, Workers: 1},
		LeaseTTL: time.Minute,
	})
	lease := registerWorker(t, coord.URL, "http://127.0.0.1:1")

	beat := func(workerID, leaseID string) int {
		body, _ := json.Marshal(HeartbeatRequest{WorkerID: workerID, LeaseID: leaseID})
		resp, err := http.Post(coord.URL+"/cluster/v1/heartbeat", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := beat(lease.WorkerID, lease.LeaseID); code != http.StatusOK {
		t.Fatalf("heartbeat: HTTP %d, want 200", code)
	}
	if code := beat("w-999", "lease-999"); code != http.StatusNotFound {
		t.Fatalf("unknown worker heartbeat: HTTP %d, want 404", code)
	}
	// Re-registering at the same address supersedes the old lease.
	lease2 := registerWorker(t, coord.URL, "http://127.0.0.1:1")
	if code := beat(lease2.WorkerID, lease2.LeaseID); code != http.StatusOK {
		t.Fatalf("new lease heartbeat: HTTP %d, want 200", code)
	}
	if code := beat(lease.WorkerID, lease.LeaseID); code != http.StatusNotFound && code != http.StatusConflict {
		t.Fatalf("stale lease heartbeat: HTTP %d, want 404 or 409", code)
	}
}

// TestAgentReregistersAfterLeaseLoss runs the real agent loop against
// a coordinator whose lease it loses, and requires it to rejoin.
func TestAgentReregistersAfterLeaseLoss(t *testing.T) {
	c, coord := startCoordinator(t, Options{
		Service:  service.Options{QueueSize: 4, Workers: 1},
		LeaseTTL: 30 * time.Millisecond,
	})
	agent := NewAgent(AgentOptions{
		Coordinator: coord.URL,
		Addr:        "http://127.0.0.1:1",
		Logf:        t.Logf,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); agent.Run(ctx) }()

	waitLive := func(want int, msg string) {
		deadline := time.Now().Add(5 * time.Second)
		for len(c.leases.live()) != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: live workers = %d, want %d", msg, len(c.leases.live()), want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitLive(1, "initial registration")

	// Yank the lease out from under the agent; the next beat 404s and
	// the agent must re-register on its own.
	first := c.leases.live()[0].id
	c.leases.drop(first)
	deadline := time.Now().Add(5 * time.Second)
	for {
		live := c.leases.live()
		if len(live) == 1 && live[0].id != first {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("agent never re-registered after losing its lease")
		}
		time.Sleep(2 * time.Millisecond)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("agent did not exit on context cancel")
	}
	waitLive(0, "deregister on shutdown")
}

// TestCoordinatorRestartReclaimsResult: a coordinator that crashes
// while a worker runs a job must, on restart, collect that worker's
// finished result instead of re-running the job.
func TestCoordinatorRestartReclaimsResult(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	var runs atomic.Int64
	_, worker := startWorker(t, func(ctx context.Context, j *service.Job) error {
		runs.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})

	// Hour-scale lease and poll intervals: after assigning the job the
	// first coordinator writes nothing more, so abandoning it models a
	// kill -9 (journals end at submit/start/assign, no finish record —
	// which a drain would wrongly write).
	opts := Options{
		Service:      service.Options{QueueSize: 16, Workers: 2, DataDir: dir, NoSync: true},
		LeaseTTL:     time.Hour,
		PollInterval: time.Hour,
	}
	c1, err := New(opts)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	c1.Start()
	ts1 := httptest.NewServer(c1)
	registerWorker(t, ts1.URL, worker.URL)

	st, resp := submitSpec(t, ts1.URL, testSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	<-started

	// "Crash": close the listener and abandon the coordinator without
	// draining. Its goroutines idle until the test exits.
	ts1.Close()

	// The worker finishes while the coordinator is down.
	close(release)
	waitWorkerCounter(t, worker.URL, "completed", func(s service.Stats) uint64 { return s.JobsCompleted })

	// Restart: the service journal re-enqueues the job, the cluster
	// journal points at the worker, and the result comes home.
	_, ts2 := startCoordinator(t, opts)
	registerWorker(t, ts2.URL, worker.URL)
	got := waitState(t, ts2.URL, st.ID, service.StateDone, 10*time.Second)
	if got.State != service.StateDone {
		t.Fatalf("job state after restart = %q, want done", got.State)
	}
	if runs.Load() != 1 {
		t.Fatalf("job ran %d times across the restart, want exactly 1", runs.Load())
	}
	stats := serverStats(t, ts2.URL)
	if stats.Cluster["results_reclaimed"] != 1 {
		t.Fatalf("results_reclaimed = %d, want 1", stats.Cluster["results_reclaimed"])
	}
}

// TestClusterFusedSpecPassthrough: a fused-channel spec survives the
// coordinator → worker dispatch intact — the worker-side runner sees
// the channel field, so a remote fused certification trains and
// applies its calibration exactly like a local one.
func TestClusterFusedSpecPassthrough(t *testing.T) {
	gotChannel := make(chan string, 1)
	_, worker := startWorker(t, func(ctx context.Context, j *service.Job) error {
		gotChannel <- j.Spec.Channel
		return nil
	})
	_, coord := startCoordinator(t, Options{
		Service:      service.Options{QueueSize: 16, Workers: 2},
		LeaseTTL:     time.Minute,
		PollInterval: 2 * time.Millisecond,
	})
	registerWorker(t, coord.URL, worker.URL)

	st, resp := submitSpec(t, coord.URL, `{"kind":"detect","case":"s35932-T200","channel":"fused"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitState(t, coord.URL, st.ID, service.StateDone, 5*time.Second)
	select {
	case ch := <-gotChannel:
		if ch != "fused" {
			t.Fatalf("worker saw channel %q, want fused", ch)
		}
	default:
		t.Fatal("worker runner never observed the spec")
	}

	// An invalid channel is rejected at submission, before dispatch.
	_, resp = submitSpec(t, coord.URL, `{"kind":"detect","case":"s35932-T200","channel":"thermal"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid channel: HTTP %d, want 400", resp.StatusCode)
	}
}
