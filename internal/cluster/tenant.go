package cluster

import (
	"sync"
	"time"
)

// tenantQuotas is the per-tenant admission throttle: one token bucket
// per tenant, refilled continuously at Rate tokens per second up to a
// Burst ceiling. A submission costs one token; a tenant that empties
// its bucket is told how long until the next token accrues, so the
// HTTP layer can answer 429 with an honest (then jittered) Retry-After
// instead of a guess.
type tenantQuotas struct {
	mu    sync.Mutex
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time
	by    map[string]*tenantBucket
}

type tenantBucket struct {
	tokens float64
	last   time.Time
}

func newTenantQuotas(rate, burst float64, now func() time.Time) *tenantQuotas {
	if now == nil {
		now = time.Now
	}
	return &tenantQuotas{rate: rate, burst: burst, now: now, by: make(map[string]*tenantBucket)}
}

// admit spends one token from the tenant's bucket. When the bucket
// cannot cover it, admit reports false and how long until it could.
func (q *tenantQuotas) admit(tenant string) (wait time.Duration, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b, exists := q.by[tenant]
	if !exists {
		b = &tenantBucket{tokens: q.burst, last: now}
		q.by[tenant] = b
	}
	b.tokens += q.rate * now.Sub(b.last).Seconds()
	if b.tokens > q.burst {
		b.tokens = q.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	deficit := 1 - b.tokens
	return time.Duration(deficit / q.rate * float64(time.Second)), false
}
