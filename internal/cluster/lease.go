package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// ErrUnknownWorker is a heartbeat for a worker the coordinator does
// not know — never registered, or already expired. The agent's move
// is to re-register.
var ErrUnknownWorker = errors.New("cluster: unknown worker")

// ErrLeaseSuperseded is a heartbeat carrying a stale lease ID: the
// worker re-registered (or was re-registered at the same address) and
// an older incarnation is still beating. The stale beat must not keep
// the old lease alive.
var ErrLeaseSuperseded = errors.New("cluster: lease superseded")

// workerNode is the coordinator's view of one registered worker. The
// identity fields are immutable after registration; expiry and the
// in-flight count are guarded by the owning leaseTable's mutex.
type workerNode struct {
	id      string
	addr    string // base URL the worker serves its /v1 API on
	leaseID string

	expires  time.Time
	inflight int
	dead     chan struct{} // closed when the lease expires or is superseded
}

// Dead is closed when the worker's lease expires or is superseded —
// the signal a dispatcher waiting on this worker hands its job off.
func (w *workerNode) Dead() <-chan struct{} { return w.dead }

// leaseTable is the coordinator's worker registry: who is alive (a
// lease renewed by heartbeats within TTL), how loaded they are, and
// which worker a content key routes to. Affinity hashes over worker
// addresses (stable across re-registration) so a rebooted worker gets
// its artifact-cache shard back.
type leaseTable struct {
	mu        sync.Mutex
	ttl       time.Duration
	now       func() time.Time
	byID      map[string]*workerNode
	nextID    uint64
	nextLease uint64
	changed   chan struct{} // closed+replaced on registration (wakes pick waiters)
}

func newLeaseTable(ttl time.Duration, now func() time.Time) *leaseTable {
	if now == nil {
		now = time.Now
	}
	return &leaseTable{
		ttl:     ttl,
		now:     now,
		byID:    make(map[string]*workerNode),
		changed: make(chan struct{}),
	}
}

// register grants a fresh lease to the worker at addr. A worker
// already registered at that address is superseded: its lease dies
// (dispatchers waiting on it hand off) and the returned node replaces
// it — the crash-reboot-reregister cycle without waiting out the TTL.
func (t *leaseTable) register(addr string) (node, superseded *workerNode) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, w := range t.byID {
		if w.addr == addr {
			superseded = w
			break
		}
	}
	if superseded != nil {
		delete(t.byID, superseded.id)
		close(superseded.dead)
	}
	t.nextID++
	t.nextLease++
	node = &workerNode{
		id:      fmt.Sprintf("w-%d", t.nextID),
		addr:    addr,
		leaseID: fmt.Sprintf("lease-%d", t.nextLease),
		expires: t.now().Add(t.ttl),
		dead:    make(chan struct{}),
	}
	t.byID[node.id] = node
	close(t.changed)
	t.changed = make(chan struct{})
	return node, superseded
}

// heartbeat renews a worker's lease, returning the TTL the agent
// should beat within.
func (t *leaseTable) heartbeat(workerID, leaseID string) (time.Duration, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	w, ok := t.byID[workerID]
	if !ok {
		return 0, ErrUnknownWorker
	}
	if w.leaseID != leaseID {
		return 0, ErrLeaseSuperseded
	}
	w.expires = t.now().Add(t.ttl)
	return t.ttl, nil
}

// expire removes every worker whose lease has lapsed, closing their
// dead channels, and returns them — the coordinator journals the
// expiries and the dispatchers waiting on them hand off.
func (t *leaseTable) expire() []*workerNode {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var gone []*workerNode
	for id, w := range t.byID {
		if w.expires.Before(now) {
			delete(t.byID, id)
			close(w.dead)
			gone = append(gone, w)
		}
	}
	return gone
}

// drop deregisters a worker immediately (clean scale-in): its lease
// dies as if it had expired.
func (t *leaseTable) drop(workerID string) *workerNode {
	t.mu.Lock()
	defer t.mu.Unlock()
	w, ok := t.byID[workerID]
	if !ok {
		return nil
	}
	delete(t.byID, workerID)
	close(w.dead)
	return w
}

// live snapshots the registered workers, sorted by ID for stable
// iteration.
func (t *leaseTable) live() []*workerNode {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*workerNode, 0, len(t.byID))
	for _, w := range t.byID {
		out = append(out, w)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].id < out[k].id })
	return out
}

// findAddr returns the live worker registered at addr, if any.
func (t *leaseTable) findAddr(addr string) *workerNode {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, w := range t.byID {
		if w.addr == addr {
			return w
		}
	}
	return nil
}

// waitCh returns a channel closed at the next registration — what a
// dispatcher with no live workers blocks on.
func (t *leaseTable) waitCh() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.changed
}

// release returns a dispatch slot taken by pick.
func (t *leaseTable) release(w *workerNode) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if w.inflight > 0 {
		w.inflight--
	}
}

// pick routes a content key to a worker and takes an in-flight slot on
// it, atomically (so concurrent dispatchers observe each other's
// load). The affinity worker — highest rendezvous hash of key and
// worker address — wins unless its in-flight backlog exceeds the
// least-loaded worker's by at least stealMargin and stealing is
// allowed, in which case the least-loaded worker steals the job.
// Returns (nil, false) when no worker is live.
func (t *leaseTable) pick(key string, stealMargin int, allowSteal bool) (node *workerNode, stolen bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.byID) == 0 {
		return nil, false
	}
	var affinity, idlest *workerNode
	var best uint64
	for _, w := range t.byID {
		h := rendezvous(key, w.addr)
		if affinity == nil || h > best || (h == best && w.addr < affinity.addr) {
			affinity, best = w, h
		}
		if idlest == nil || w.inflight < idlest.inflight ||
			(w.inflight == idlest.inflight && w.addr < idlest.addr) {
			idlest = w
		}
	}
	node = affinity
	if allowSteal && stealMargin > 0 && idlest != affinity &&
		affinity.inflight-idlest.inflight >= stealMargin {
		node, stolen = idlest, true
	}
	node.inflight++
	return node, stolen
}

// rendezvous is the highest-random-weight hash: every (key, worker)
// pair gets an independent score, so when a worker joins or leaves
// only the keys it wins (or held) move — the rest of the cache
// sharding stays put.
func rendezvous(key, addr string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{'|'})
	h.Write([]byte(addr))
	return h.Sum64()
}
