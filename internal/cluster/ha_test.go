package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"superpose/internal/core"
	"superpose/internal/failpoint"
	"superpose/internal/journal"
	"superpose/internal/service"
)

// waitCond polls until cond holds or the deadline passes.
func waitCond(t *testing.T, within time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// haPair boots a primary+standby pair over one temp tree and returns
// both nodes with their listeners. The worker-lease TTL is hour-scale so
// only the HA lease (ttl) drives the failover clock.
func haPair(t *testing.T, ttl time.Duration) (p, s *HANode, tsP, tsS *httptest.Server) {
	t.Helper()
	root := t.TempDir()
	lease := filepath.Join(root, "primary.lease")
	mk := func(sub string, standby bool, peer string) (*HANode, *httptest.Server) {
		n, err := NewHANode(HAOptions{
			Coordinator: Options{
				Service:      service.Options{QueueSize: 16, Workers: 2, DataDir: filepath.Join(root, sub), NoSync: true},
				LeaseTTL:     time.Hour,
				PollInterval: 2 * time.Millisecond,
			},
			Standby:   standby,
			Peer:      peer,
			LeasePath: lease,
			LeaseTTL:  ttl,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatalf("NewHANode(%s): %v", sub, err)
		}
		n.Start()
		ts := httptest.NewServer(n)
		t.Cleanup(func() {
			ts.Close()
			dctx, cancel := context.WithCancel(context.Background())
			cancel()
			n.Drain(dctx)
		})
		return n, ts
	}
	p, tsP = mk("a", false, "")
	s, tsS = mk("b", true, tsP.URL)
	return p, s, tsP, tsS
}

// crashHANode models a SIGKILL in-process: background loops stop dead
// (no lease release, no drain) and the listener closes. The lease stays
// owned, so the peer must earn the takeover through the silence window.
func crashHANode(n *HANode, ts *httptest.Server) {
	n.stopOnce.Do(func() { close(n.stop) })
	ts.Close()
}

func haStat(t *testing.T, base, key string) any {
	t.Helper()
	st := serverStats(t, base)
	if st.HA == nil {
		t.Fatalf("/v1/stats carries no ha object")
	}
	return st.HA[key]
}

// TestHAStandbyHonestReadiness: a standby is alive but refuses work
// honestly — ready 503 naming the role, submissions 503 with a
// Retry-After, stats exposing the ha object rather than erroring.
func TestHAStandbyHonestReadiness(t *testing.T) {
	root := t.TempDir()
	s, err := NewHANode(HAOptions{
		Coordinator: Options{
			Service:  service.Options{QueueSize: 4, Workers: 1, DataDir: filepath.Join(root, "b"), NoSync: true},
			LeaseTTL: time.Hour,
		},
		Standby:   true,
		Peer:      "http://127.0.0.1:1", // unreachable: followers just retry
		LeasePath: filepath.Join(root, "primary.lease"),
		LeaseTTL:  time.Hour, // never promotes during the test
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("NewHANode: %v", err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz/live")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live on standby: HTTP %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz/ready")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Reasons []string `json:"reasons"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ready on standby: HTTP %d, want 503", resp.StatusCode)
	}
	if len(ready.Reasons) != 1 || ready.Reasons[0] != "standby" {
		t.Fatalf("ready reasons = %v, want [standby]", ready.Reasons)
	}

	_, resp2 := submitSpec(t, ts.URL, testSpec)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit on standby: HTTP %d, want 503", resp2.StatusCode)
	}
	if ra, err := strconv.Atoi(resp2.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("submit Retry-After = %q, want integer >= 1", resp2.Header.Get("Retry-After"))
	}

	if role := haStat(t, ts.URL, "ha_role"); role != "standby" {
		t.Fatalf("stats ha_role = %v, want standby", role)
	}
}

// TestHAFailoverExactlyOnce is the tentpole invariant in-process: kill
// the primary (no drain, no lease release) while a worker runs a job;
// the standby must promote within the lease window, reclaim the live
// job by its journaled token, and finish it — the worker having run it
// exactly once.
func TestHAFailoverExactlyOnce(t *testing.T) {
	const ttl = 150 * time.Millisecond
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	var runs atomic.Int64
	_, worker := startWorker(t, func(ctx context.Context, j *service.Job) error {
		runs.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
			j.SetResult(&core.Report{Detected: true}, nil)
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})

	p, s, tsP, tsS := haPair(t, ttl)
	if p.Role() != HAPrimary || s.Role() != HAStandby {
		t.Fatalf("roles = %s/%s, want primary/standby", p.Role(), s.Role())
	}
	registerWorker(t, tsP.URL, worker.URL)

	st, resp := submitSpec(t, tsP.URL, testSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	<-started

	// The standby must have a durable copy of the assignment before the
	// crash — wait for replication to drain.
	waitCond(t, 5*time.Second, "replication catch-up", func() bool {
		lag, _ := haStat(t, tsP.URL, "ha_peer_lag_records").(float64)
		return lag == 0
	})

	crashHANode(p, tsP)

	waitCond(t, 10*time.Second, "standby promotion", func() bool { return s.Role() == HAPrimary })
	if got := s.Failovers(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}

	// The worker rejoins the survivor (in production the agent rotates
	// here) and only then finishes the job — reclaim must wait for the
	// re-registration, not kill the live run.
	registerWorker(t, tsS.URL, worker.URL)
	close(release)

	got := waitState(t, tsS.URL, st.ID, service.StateDone, 10*time.Second)
	if got.Report == nil {
		t.Fatalf("failed-over job carries no report")
	}
	if runs.Load() != 1 {
		t.Fatalf("worker ran the job %d times across the failover, want exactly 1", runs.Load())
	}
	stats := serverStats(t, tsS.URL)
	if stats.Cluster["results_reclaimed"] != 1 {
		t.Fatalf("results_reclaimed = %d, want 1", stats.Cluster["results_reclaimed"])
	}
	if stats.Cluster["duplicate_results"] != 0 {
		t.Fatalf("duplicate_results = %d, want 0", stats.Cluster["duplicate_results"])
	}
	if role := haStat(t, tsS.URL, "ha_role"); role != "primary" {
		t.Fatalf("survivor ha_role = %v, want primary", role)
	}
}

// sseRead consumes a job's SSE stream until pred says stop (or the
// stream ends), returning the (id, event) pairs seen.
func sseRead(t *testing.T, base, id, lastEventID string, pred func(service.Event) bool) []struct {
	id uint64
	ev service.Event
} {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	var out []struct {
		id uint64
		ev service.Event
	}
	var curID uint64
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			curID = n
		case strings.HasPrefix(line, "data: "):
			var ev service.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE payload %q: %v", line, err)
			}
			out = append(out, struct {
				id uint64
				ev service.Event
			}{curID, ev})
			if pred(ev) {
				return out
			}
		}
	}
	return out
}

// TestHASSEContinuityAcrossFailover: an SSE client that watched the job
// on the old primary reconnects to the promoted standby with its
// Last-Event-ID and sees a continuation — strictly increasing ids,
// exactly one terminal result — because the restored job's sequence
// floor keeps every post-failover event above anything the dead
// incarnation emitted.
func TestHASSEContinuityAcrossFailover(t *testing.T) {
	const ttl = 150 * time.Millisecond
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	_, worker := startWorker(t, func(ctx context.Context, j *service.Job) error {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})

	p, s, tsP, tsS := haPair(t, ttl)
	registerWorker(t, tsP.URL, worker.URL)
	st, _ := submitSpec(t, tsP.URL, testSpec)
	<-started

	// Watch the job on the doomed primary up to its first event.
	pre := sseRead(t, tsP.URL, st.ID, "", func(service.Event) bool { return true })
	if len(pre) == 0 {
		t.Fatal("no events from the primary before the crash")
	}
	lastSeen := pre[len(pre)-1].id

	waitCond(t, 5*time.Second, "replication catch-up", func() bool {
		lag, _ := haStat(t, tsP.URL, "ha_peer_lag_records").(float64)
		return lag == 0
	})
	crashHANode(p, tsP)
	waitCond(t, 10*time.Second, "standby promotion", func() bool { return s.Role() == HAPrimary })
	registerWorker(t, tsS.URL, worker.URL)
	close(release)
	waitState(t, tsS.URL, st.ID, service.StateDone, 10*time.Second)

	// Reconnect where we left off. The promoted incarnation must resume
	// the stream above our cursor and deliver exactly one result.
	post := sseRead(t, tsS.URL, st.ID, strconv.FormatUint(lastSeen, 10),
		func(ev service.Event) bool { return ev.Type == "result" })
	if len(post) == 0 {
		t.Fatal("no events after reconnecting to the promoted standby")
	}
	prev := lastSeen
	results := 0
	for _, e := range post {
		if e.id <= prev {
			t.Fatalf("event id %d not above previous %d (ids must stay monotone across failover)", e.id, prev)
		}
		prev = e.id
		if e.ev.Type == "result" {
			results++
			if e.ev.State != service.StateDone {
				t.Fatalf("result state = %q, want done", e.ev.State)
			}
		}
	}
	if results != 1 {
		t.Fatalf("saw %d result events after failover, want exactly 1", results)
	}
}

// TestHAReplicationChaosCatchup: armed send/recv failpoints repeatedly
// sever the replication stream; the follower must reconnect from its
// durable offset and still drain the lag to zero, after which an
// orderly handover (lease released) promotes the standby with the full
// history — finished jobs stay queryable with their reports.
func TestHAReplicationChaosCatchup(t *testing.T) {
	if err := failpoint.Enable("cluster/ha/replicate/send", "2*error(stream severed)"); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("cluster/ha/replicate/recv", "1*error(recv chaos)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisableAll)

	_, worker := startWorker(t, func(ctx context.Context, j *service.Job) error {
		j.SetResult(&core.Report{Detected: true}, nil)
		return nil
	})
	p, s, tsP, tsS := haPair(t, 150*time.Millisecond)
	registerWorker(t, tsP.URL, worker.URL)

	var ids []string
	for i := 0; i < 3; i++ {
		st, resp := submitSpec(t, tsP.URL, testSpec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
		waitState(t, tsP.URL, st.ID, service.StateDone, 10*time.Second)
	}

	waitCond(t, 10*time.Second, "replication catch-up through chaos", func() bool {
		lag, _ := haStat(t, tsP.URL, "ha_peer_lag_records").(float64)
		return lag == 0
	})

	// Orderly handover: drain releases the lease, the standby sees a
	// vacant lease and takes over without waiting out the silence window.
	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := p.Drain(dctx); err != nil {
		t.Fatalf("primary drain: %v", err)
	}
	cancel()
	tsP.Close()

	waitCond(t, 10*time.Second, "standby promotion after release", func() bool { return s.Role() == HAPrimary })
	for _, id := range ids {
		got := getStatus(t, tsS.URL, id)
		if got.State != service.StateDone || got.Report == nil {
			t.Fatalf("job %s on promoted standby = %q (report %v), want done with report", id, got.State, got.Report != nil)
		}
	}
}

// TestHAPromotionChaosAborted: an armed promotion failpoint kills the
// first takeover attempt; the watch loop must fall back to observing
// and succeed on a later tick rather than wedging or double-counting.
func TestHAPromotionChaosAborted(t *testing.T) {
	if err := failpoint.Enable("cluster/ha/promote", "1*error(promotion chaos)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisableAll)

	root := t.TempDir()
	s, err := NewHANode(HAOptions{
		Coordinator: Options{
			Service:  service.Options{QueueSize: 4, Workers: 1, DataDir: filepath.Join(root, "b"), NoSync: true},
			LeaseTTL: time.Hour,
		},
		Standby:   true,
		Peer:      "http://127.0.0.1:1",
		LeasePath: filepath.Join(root, "primary.lease"), // vacant: immediately stealable
		LeaseTTL:  90 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("NewHANode: %v", err)
	}
	s.Start()
	t.Cleanup(func() {
		dctx, cancel := context.WithCancel(context.Background())
		cancel()
		s.Drain(dctx)
	})

	waitCond(t, 10*time.Second, "promotion after aborted attempt", func() bool { return s.Role() == HAPrimary })
	if got := s.Failovers(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
}

// readClusterRecords parses every record of an on-disk cluster journal
// directly from its segment files — the frame codec doubles as the
// forensic reader, so tests can assert on durable state mid-flight
// without opening the (live) journal.
func readClusterRecords(t *testing.T, dir string) []clusterRecord {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	var out []clusterRecord
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		rd := bytes.NewReader(data)
		for {
			payload, err := journal.ReadFrame(rd)
			if err != nil {
				if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
					break // a live tail can be mid-write; stop at the tear
				}
				t.Fatalf("read %s: %v", name, err)
			}
			if payload == nil {
				continue
			}
			var rec clusterRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				t.Fatalf("decode %s: %v", name, err)
			}
			out = append(out, rec)
		}
	}
	return out
}

// TestHADispatchIntentPrecedesRPC pins the fsync-ordering bugfix: by
// the time the dispatch RPC reaches the worker, an assign INTENT
// (token set, worker job still unknown) must already be durable in the
// coordinator's cluster journal — otherwise a crash inside the RPC
// window orphans the worker-side run with no record to reclaim it by.
func TestHADispatchIntentPrecedesRPC(t *testing.T) {
	dir := t.TempDir()

	svc, err := service.New(service.Options{QueueSize: 8, Workers: 2,
		Runner: func(ctx context.Context, j *service.Job) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	intentErr := make(chan error, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			body, _ := io.ReadAll(r.Body)
			r.Body = io.NopCloser(bytes.NewReader(body))
			var spec service.JobSpec
			if err := json.Unmarshal(body, &spec); err != nil {
				intentErr <- err
			} else {
				intentErr <- checkIntentOnDisk(t, dir+"/cluster", spec.SubmitToken)
			}
		}
		svc.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		ts.Close()
		dctx, cancel := context.WithCancel(context.Background())
		cancel()
		svc.Drain(dctx)
	})

	_, coord := startCoordinator(t, Options{
		Service:      service.Options{QueueSize: 16, Workers: 2, DataDir: dir, NoSync: true},
		LeaseTTL:     time.Hour,
		PollInterval: 2 * time.Millisecond,
	})
	registerWorker(t, coord.URL, ts.URL)

	st, resp := submitSpec(t, coord.URL, testSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitState(t, coord.URL, st.ID, service.StateDone, 10*time.Second)

	select {
	case err := <-intentErr:
		if err != nil {
			t.Fatalf("durable-intent check at RPC time: %v", err)
		}
	default:
		t.Fatal("worker never observed the dispatch RPC")
	}

	// And the confirm record followed: the final journal state pairs the
	// intent with a worker-job-bearing assign for the same token.
	recs := readClusterRecords(t, dir+"/cluster")
	var intent, confirm bool
	for _, rec := range recs {
		if rec.Type == "assign" && rec.Job == st.ID && rec.Token != "" {
			if rec.WorkerJob == "" {
				intent = true
			} else if intent {
				confirm = true
			}
		}
	}
	if !intent || !confirm {
		t.Fatalf("journal order: intent=%v confirm=%v, want intent then confirm", intent, confirm)
	}
}

// checkIntentOnDisk scans a cluster journal for an intent assign
// carrying the token, from inside the worker's RPC handler.
func checkIntentOnDisk(t *testing.T, dir, token string) error {
	if token == "" {
		return errors.New("dispatch RPC carried no submit token")
	}
	for _, rec := range readClusterRecords(t, dir) {
		if rec.Type == "assign" && rec.Token == token && rec.WorkerJob == "" {
			return nil
		}
	}
	return errors.New("no durable intent record for token " + token + " at RPC time")
}
