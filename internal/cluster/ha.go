package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"superpose/internal/failpoint"
	"superpose/internal/retry"
	"superpose/internal/service"
)

// HARole is a node's position in the HA pair.
type HARole string

const (
	// HAPrimary holds the lease and serves the full coordinator API.
	HAPrimary HARole = "primary"
	// HAStandby tails the primary's journals and watches the lease.
	HAStandby HARole = "standby"
	// HAPromoting has decided to take over and is acquiring the lease.
	HAPromoting HARole = "promoting"
	// HAReplaying holds the lease and is rebuilding the coordinator
	// from its local journal copy.
	HAReplaying HARole = "replaying"
	// HADemoted lost the lease and is fencing/draining before
	// rejoining as standby.
	HADemoted HARole = "demoted"
)

// HAOptions configures one node of an HA coordinator pair.
type HAOptions struct {
	// Coordinator is the base configuration the node builds its
	// Coordinator from whenever it is (or becomes) primary.
	// Service.DataDir is required: the standby's journal copies, and
	// the promoted coordinator's replay, live there.
	Coordinator Options

	// Standby starts the node as the watching standby; otherwise it
	// acquires the lease at boot and serves as primary.
	Standby bool

	// Peer is the other coordinator's base URL — what the standby
	// tails, and what a demoted primary re-follows.
	Peer string

	// LeasePath is the shared primary-lease file (see halease.go).
	LeasePath string
	// LeaseTTL is the primary lease TTL (default: Coordinator.LeaseTTL,
	// i.e. the worker-lease TTL — one failover clock for the cluster).
	LeaseTTL time.Duration

	// Client is the HTTP client for replication and acks (default
	// http.DefaultClient).
	Client *http.Client
	// Now is the local clock (default time.Now); skew tests inject
	// offset clocks per node.
	Now func() time.Time
	// Logf, when set, receives role transitions and failover events.
	Logf func(format string, args ...any)
}

// HANode is one coordinator of an HA pair: a role state machine
// (standby → promoting → replaying → primary; primary → demoted →
// standby) around an embedded Coordinator that exists only while the
// node holds the primary lease. It implements the same Handler/Start/
// Drain surface as Coordinator, so cmd/superposed serves either.
type HANode struct {
	opts  HAOptions
	mux   *http.ServeMux
	hub   *repHub
	lease *haLease
	jit   *retry.Jitter
	now   func() time.Time
	logf  func(format string, args ...any)

	mu        sync.Mutex
	role      HARole
	coord     *Coordinator
	followCtx context.CancelFunc
	followWg  *sync.WaitGroup
	epoch     uint64

	failovers atomic.Uint64
	demotions atomic.Uint64
	peerAcked atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewHANode assembles one node of the pair. The designated primary
// acquires the lease and builds its coordinator before returning (so a
// listener that follows serves a working cluster API immediately); a
// standby returns in watching state and Start launches the followers.
func NewHANode(opts HAOptions) (*HANode, error) {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = opts.Coordinator.withDefaults().LeaseTTL
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	h := &HANode{
		opts: opts,
		mux:  http.NewServeMux(),
		hub:  newRepHub(),
		jit:  retry.NewJitter(0x4AFA170B),
		now:  opts.Now,
		logf: opts.Logf,
		stop: make(chan struct{}),
	}
	h.lease = openHALease(opts.LeasePath, h.ownerName(), opts.LeaseTTL, opts.Now)
	h.mux.HandleFunc("GET /ha/v1/replicate", h.handleReplicate)
	h.mux.HandleFunc("POST /ha/v1/replicate/ack", h.handleAck)
	h.mux.HandleFunc("GET /ha/v1/role", h.handleRole)

	if opts.Standby {
		h.role = HAStandby
		return h, nil
	}
	// Boot-time deference: a designated primary that crashed and was
	// auto-restarted must NOT steal the lease back from a peer that
	// promoted during the outage — the epoch bump would fence the new
	// primary, which demotes and wipes the only complete history of the
	// work it acknowledged. If the peer is actively primary (or taking
	// over), or the lease is held by someone else, join as standby; this
	// node's pre-crash journals are a stale timeline either way.
	if h.peerIsActive() || h.leaseHeldElsewhere() {
		h.logf("ha: peer is the active primary; deferring and joining as standby")
		h.wipeLocalJournals()
		h.role = HAStandby
		return h, nil
	}
	epoch, err := h.lease.Acquire()
	if err != nil {
		return nil, err
	}
	h.epoch = epoch
	h.hub.setBase(epoch)
	coord, err := h.buildCoordinator()
	if err != nil {
		return nil, err
	}
	h.coord = coord
	h.role = HAPrimary
	return h, nil
}

// peerIsActive probes the peer's /ha/v1/role: true when the peer is
// serving (or in the middle of taking over) as primary. Probe failures
// read as inactive — a dead peer must not block the boot.
func (h *HANode) peerIsActive() bool {
	if h.opts.Peer == "" {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.opts.Peer+"/ha/v1/role", nil)
	if err != nil {
		return false
	}
	resp, err := h.opts.Client.Do(req)
	if err != nil {
		return false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	var body struct {
		Role string `json:"role"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body); err != nil {
		return false
	}
	switch HARole(body.Role) {
	case HAPrimary, HAPromoting, HAReplaying:
		return true
	}
	return false
}

// leaseHeldElsewhere reports whether the lease file names a different
// owner — a second line of defence for when the promoted peer is
// momentarily unreachable at probe time.
func (h *HANode) leaseHeldElsewhere() bool {
	st, err := h.lease.Observe()
	if err != nil {
		return false
	}
	return st.Owner != "" && st.Owner != h.ownerName()
}

// wipeLocalJournals discards the node's journal copies — used when the
// local history is a dead timeline (demotion, boot-time deference).
func (h *HANode) wipeLocalJournals() {
	os.RemoveAll(h.opts.Coordinator.Service.DataDir + "/journal")
	os.RemoveAll(h.opts.Coordinator.Service.DataDir + "/cluster")
}

// ownerName derives the lease owner identity from the role the node
// was launched in — stable across its restarts, distinct from the peer.
func (h *HANode) ownerName() string {
	host, _ := os.Hostname()
	kind := "primary"
	if h.opts.Standby {
		kind = "standby"
	}
	return kind + "@" + host + ":" + h.opts.Coordinator.Service.DataDir
}

// Role returns the node's current role.
func (h *HANode) Role() HARole {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.role
}

// Coordinator returns the embedded coordinator while primary (nil
// otherwise) — for tests and stats.
func (h *HANode) Coordinator() *Coordinator {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.coord
}

// Failovers returns how many times this node promoted itself.
func (h *HANode) Failovers() uint64 { return h.failovers.Load() }

// buildCoordinator constructs the coordinator over the node's DataDir
// with the HA hooks chained in: journal taps feed the replication hub
// (seeded by the replayed history), admission is fenced by role, and
// /v1/stats gains the ha object.
func (h *HANode) buildCoordinator() (*Coordinator, error) {
	opts := h.opts.Coordinator
	opts.Service.JournalTap = func(rec []byte) { h.hub.publish("service", rec) }
	opts.ClusterJournalTap = func(rec []byte) { h.hub.publish("cluster", rec) }
	opts.Admit = func(service.JobSpec) error {
		if role := h.Role(); role != HAPrimary {
			return &service.UnavailableError{Reason: string(role), RetryAfter: h.jit.Around(h.opts.LeaseTTL / 2)}
		}
		return nil
	}
	opts.ExtraStats = func(st *service.Stats) { st.HA = h.haStats() }
	return New(opts)
}

// haStats builds the /v1/stats "ha" object.
func (h *HANode) haStats() map[string]any {
	return map[string]any{
		"ha_role":             string(h.Role()),
		"ha_peer":             h.opts.Peer,
		"ha_peer_lag_records": h.hub.lag(),
		"failovers_total":     h.failovers.Load(),
		"demotions_total":     h.demotions.Load(),
		"lease_epoch":         h.currentEpoch(),
	}
}

func (h *HANode) currentEpoch() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.epoch
}

// Start launches the node's background machinery: the coordinator and
// lease-renewal loop on a primary, the followers and lease watch on a
// standby.
func (h *HANode) Start() {
	h.mu.Lock()
	role := h.role
	coord := h.coord
	h.mu.Unlock()
	if role == HAPrimary {
		coord.Start()
		h.wg.Add(1)
		go h.renewLoop()
		return
	}
	h.startFollowers()
	h.wg.Add(1)
	go h.watchLoop()
}

// Drain shuts the node down: followers stop, the coordinator (if
// primary) drains, and the lease is released so the peer can take over
// without waiting out the silence window.
func (h *HANode) Drain(ctx context.Context) error {
	h.stopOnce.Do(func() { close(h.stop) })
	h.stopFollowers()
	h.mu.Lock()
	coord := h.coord
	h.coord = nil
	h.mu.Unlock()
	var err error
	if coord != nil {
		err = coord.Drain(ctx)
	}
	h.lease.Release()
	h.wg.Wait()
	return err
}

// ServeHTTP routes by role: replication endpoints are always the
// node's own; everything else is the coordinator's while primary, and
// an honest 503 (Retry-After, role reason) while not — a failover is a
// bounded stall for clients, never a connection refused.
func (h *HANode) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/ha/v1/") {
		h.mux.ServeHTTP(w, r)
		return
	}
	h.mu.Lock()
	role, coord := h.role, h.coord
	h.mu.Unlock()
	if role == HAPrimary && coord != nil {
		coord.ServeHTTP(w, r)
		return
	}
	h.serveNotPrimary(w, r, role)
}

// serveNotPrimary answers for a node that cannot serve the cluster
// API: health probes report honestly, stats expose the ha object, and
// everything else is 503 + jittered Retry-After.
func (h *HANode) serveNotPrimary(w http.ResponseWriter, r *http.Request, role HARole) {
	switch {
	case r.URL.Path == "/healthz" || r.URL.Path == "/healthz/live":
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "ha_role": string(role)})
	case r.URL.Path == "/healthz/ready":
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":  "not_ready",
			"reasons": []string{string(role)},
		})
	case r.URL.Path == "/v1/stats":
		writeJSON(w, http.StatusOK, service.Stats{HA: h.haStats()})
	default:
		w.Header().Set("Retry-After", retryAfterSecs(h.jit.Around(h.opts.LeaseTTL/2)))
		httpError(w, http.StatusServiceUnavailable,
			errNotPrimary.Error()+" (role "+string(role)+")")
	}
}

// retryAfterSecs mirrors the service's Retry-After rendering: whole
// seconds, at least 1.
func retryAfterSecs(d time.Duration) string {
	secs := int(d / time.Second)
	if d%time.Second != 0 {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// handleReplicate streams a journal to the peer's follower. Only a
// primary has an authoritative history to offer.
func (h *HANode) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if h.Role() != HAPrimary {
		httpError(w, http.StatusServiceUnavailable, errNotPrimary.Error())
		return
	}
	h.hub.serveStream(w, r, h.opts.LeaseTTL/3, h.stop, h.rebaseStream)
}

// rebaseStream re-seeds a stream from the coordinator's materialized
// state — compaction has trimmed history a fresh follower needs. The
// snapshot is taken under the journal append lock, so every tap
// published after the rebase strictly follows the snapshot records.
func (h *HANode) rebaseStream(name string) bool {
	h.mu.Lock()
	coord := h.coord
	h.mu.Unlock()
	if coord == nil {
		return false
	}
	switch name {
	case "service":
		coord.Service().SnapshotUnderJournalLock(func(records [][]byte) {
			h.hub.rebase(name, records)
		})
	case "cluster":
		coord.SnapshotClusterUnderJournalLock(func(records [][]byte) {
			h.hub.rebase(name, records)
		})
	default:
		return false
	}
	return true
}

// handleAck records the peer's durable replication progress.
func (h *HANode) handleAck(w http.ResponseWriter, r *http.Request) {
	var req AckRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Stream == "" {
		httpError(w, http.StatusBadRequest, "ack: stream and count required")
		return
	}
	h.hub.ack(req.Stream, req.Count)
	h.peerAcked.Add(1)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleRole reports the node's role — the discovery probe clients and
// scripts use to find the current primary.
func (h *HANode) handleRole(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"role":  string(h.Role()),
		"epoch": h.currentEpoch(),
	})
}

// startFollowers launches one follower per replicated stream.
func (h *HANode) startFollowers() {
	ctx, cancel := context.WithCancel(context.Background())
	wg := &sync.WaitGroup{}
	h.mu.Lock()
	h.followCtx = cancel
	h.followWg = wg
	h.mu.Unlock()
	stall := 3 * h.opts.LeaseTTL
	if stall < 5*time.Second {
		stall = 5 * time.Second
	}
	for _, stream := range []struct{ name, dir string }{
		{"service", h.opts.Coordinator.Service.DataDir + "/journal"},
		{"cluster", h.opts.Coordinator.Service.DataDir + "/cluster"},
	} {
		f := &follower{
			name:   stream.name,
			peer:   h.opts.Peer,
			dir:    stream.dir,
			nosync: h.opts.Coordinator.Service.NoSync,
			client: h.opts.Client,
			logf:   h.logf,
			stall:  stall,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.run(ctx)
		}()
	}
}

// stopFollowers cancels and waits out the followers; their journals
// are closed, leaving the directories free for coordinator replay.
func (h *HANode) stopFollowers() {
	h.mu.Lock()
	cancel, wg := h.followCtx, h.followWg
	h.followCtx, h.followWg = nil, nil
	h.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if wg != nil {
		wg.Wait()
	}
}

// watchLoop is the standby's lease watch: observe at TTL/3, promote
// after a full TTL of silence on the LOCAL clock (see halease.go for
// why this is skew-immune).
func (h *HANode) watchLoop() {
	defer h.wg.Done()
	interval := h.opts.LeaseTTL / 3
	if interval < 2*time.Millisecond {
		interval = 2 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var watch leaseWatch
	for {
		select {
		case <-h.stop:
			return
		case <-tick.C:
			st, err := h.lease.Observe()
			if err != nil {
				continue
			}
			if silent := watch.update(st, h.now()); silent < h.opts.LeaseTTL {
				continue
			}
			// Promotion chaos window: an armed error aborts this attempt
			// (the watch keeps observing); a sleep stretches the takeover.
			if err := failpoint.Inject("cluster/ha/promote"); err != nil {
				h.logf("ha: promotion aborted by chaos: %v", err)
				watch = leaseWatch{}
				continue
			}
			if h.promote() {
				return // renewLoop owns the node now
			}
			watch = leaseWatch{}
		}
	}
}

// promote drives standby → promoting → replaying → primary. A false
// return means the takeover failed (lease contention, replay error) and
// the node fell back to watching.
func (h *HANode) promote() bool {
	h.setRole(HAPromoting)
	h.logf("ha: promoting (lease silent for a full TTL)")
	h.stopFollowers()

	epoch, err := h.lease.Acquire()
	if err != nil {
		h.logf("ha: lease acquire failed: %v", err)
		h.setRole(HAStandby)
		h.startFollowers()
		return false
	}

	h.setRole(HAReplaying)
	h.hub.reset()
	h.hub.setBase(epoch)
	coord, err := h.buildCoordinator()
	if err != nil {
		// Replay failed (corrupt copy?): release and fall back — the
		// peer (or an operator) gets another shot.
		h.logf("ha: replay failed: %v", err)
		h.lease.Release()
		h.setRole(HAStandby)
		h.startFollowers()
		return false
	}
	coord.Start()

	h.mu.Lock()
	h.coord = coord
	h.epoch = epoch
	h.role = HAPrimary
	h.mu.Unlock()
	h.failovers.Add(1)
	h.logf("ha: promoted to primary (epoch %d)", epoch)

	h.wg.Add(1)
	go h.renewLoop()
	return true
}

// renewLoop keeps the primary lease fresh at TTL/3. The node
// self-fences — demotes — as soon as the lease is seen held elsewhere,
// or after TTL/2 on the local clock without a successful renewal
// (guaranteeing the fence lands before a standby's TTL silence
// threshold can, regardless of clock offset).
func (h *HANode) renewLoop() {
	defer h.wg.Done()
	interval := h.opts.LeaseTTL / 3
	if interval < 2*time.Millisecond {
		interval = 2 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	lastOK := h.now()
	for {
		select {
		case <-h.stop:
			return
		case <-tick.C:
			err := h.lease.Renew()
			if err == nil {
				lastOK = h.now()
				continue
			}
			if errors.Is(err, ErrHALeaseLost) {
				h.logf("ha: lease lost: %v", err)
				h.demote()
				return
			}
			if h.now().Sub(lastOK) > h.opts.LeaseTTL/2 {
				h.logf("ha: no successful lease renewal for TTL/2 (%v); self-fencing", err)
				h.demote()
				return
			}
			h.logf("ha: lease renewal failed (%v); retrying", err)
		}
	}
}

// demote fences a deposed primary: the role flips first (every
// endpoint 503s and the Admit hook refuses from that instant), the
// coordinator drains, the node's journals — now a divergent timeline —
// are wiped, and the node rejoins as a standby tailing the peer.
func (h *HANode) demote() {
	h.mu.Lock()
	coord := h.coord
	h.coord = nil
	h.role = HADemoted
	h.epoch = 0
	h.mu.Unlock()
	h.demotions.Add(1)

	if coord != nil {
		dctx, cancel := context.WithTimeout(context.Background(), h.opts.LeaseTTL)
		coord.Drain(dctx)
		cancel()
	}
	// The deposed timeline may contain records the new primary never
	// saw; a follower resumes by record COUNT, so the local copy must
	// be a strict prefix of the peer's history — wipe and re-tail from
	// zero.
	h.wipeLocalJournals()
	h.hub.reset()

	select {
	case <-h.stop:
		return
	default:
	}
	h.setRole(HAStandby)
	h.logf("ha: rejoined as standby")
	h.startFollowers()
	h.wg.Add(1)
	go h.watchLoop()
}

func (h *HANode) setRole(role HARole) {
	h.mu.Lock()
	h.role = role
	h.mu.Unlock()
}
