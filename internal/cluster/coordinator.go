package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"superpose/internal/core"
	"superpose/internal/failpoint"
	"superpose/internal/journal"
	"superpose/internal/retry"
	"superpose/internal/service"
)

// Options configures a Coordinator.
type Options struct {
	// Service configures the embedded service.Server that owns the
	// public /v1 API, the queue, the job registry and the durability
	// journal. Its Workers field is the number of concurrent dispatches
	// (default 8 — dispatching is cheap waiting, not computation); its
	// Runner, Admit, ExtraStats and ExtraReady hooks are owned by the
	// coordinator and overwritten.
	Service service.Options

	// LeaseTTL is how long a worker's lease lasts without a heartbeat
	// (default 10s). Agents beat at TTL/3.
	LeaseTTL time.Duration
	// PollInterval is how often a dispatcher polls its worker for job
	// status (default 100ms).
	PollInterval time.Duration
	// StealMargin is the in-flight skew (affinity worker minus the
	// least-loaded worker) at which a job is stolen from its affinity
	// shard (default 2; 0 disables stealing).
	StealMargin int

	// TenantRate and TenantBurst shape each tenant's admission token
	// bucket (defaults 8 jobs/s, burst 16).
	TenantRate  float64
	TenantBurst float64

	// Now is the clock (default time.Now) — injectable for lease tests.
	Now func() time.Time

	// ClusterJournalTap, when non-nil, observes every cluster-journal
	// record: replayed history during New (in order), then each record
	// durably appended afterwards. The HA replication hub hangs off
	// this, mirroring service.Options.JournalTap for the job journal.
	ClusterJournalTap func(payload []byte)

	// Admit, ExtraStats and ExtraReady chain with the coordinator's own
	// hooks (which own the underlying service.Options fields): Admit
	// runs BEFORE quota admission — the HA layer fences submissions on
	// a non-primary node here; ExtraStats and ExtraReady run after the
	// coordinator's, decorating what it produced.
	Admit      func(spec service.JobSpec) error
	ExtraStats func(*service.Stats)
	ExtraReady func() []string
}

func (o Options) withDefaults() Options {
	if o.Service.Workers <= 0 {
		o.Service.Workers = 8
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 100 * time.Millisecond
	}
	if o.StealMargin < 0 {
		o.StealMargin = 0
	}
	if o.TenantRate <= 0 {
		o.TenantRate = 8
	}
	if o.TenantBurst <= 0 {
		o.TenantBurst = 16
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// clusterCounters is the coordinator's instrumentation, exported into
// /v1/stats under the "cluster" object.
type clusterCounters struct {
	leasesGranted     atomic.Uint64
	leasesExpired     atomic.Uint64
	heartbeats        atomic.Uint64
	dispatches        atomic.Uint64
	handoffs          atomic.Uint64
	steals            atomic.Uint64
	resultsReclaimed  atomic.Uint64
	duplicateResults  atomic.Uint64
	journalErrors     atomic.Uint64
	deregistrations   atomic.Uint64
	dispatchRejected  atomic.Uint64 // worker refused a submission (429/503/error)
	gracePollAdopted  atomic.Uint64 // late-heartbeat worker had finished; result kept
	progressForwarded atomic.Uint64
}

// clusterRecord is one entry of the coordinator's cluster journal —
// the durable assignment history behind orphan handoff and restart
// reclaim.
type clusterRecord struct {
	Type      string `json:"type"` // register|assign|steal|handoff|complete|expire
	Job       string `json:"job,omitempty"`
	Worker    string `json:"worker,omitempty"`
	Addr      string `json:"addr,omitempty"`
	WorkerJob string `json:"worker_job,omitempty"`
	// Token and Try fence dispatch idempotency: an assign record with a
	// Token but no WorkerJob is a durable INTENT written before the
	// dispatch RPC — after a crash in that window, reclaim re-sends the
	// submit with the same token and the worker dedupes. Try is the
	// placement counter the token derives from; replay restores it so a
	// restarted coordinator never reuses a token.
	Token string `json:"token,omitempty"`
	Try   int    `json:"try,omitempty"`
}

// Coordinator is the cluster's head node: it embeds a service.Server
// for everything client-facing and replaces its executor with a
// dispatch-to-worker path governed by leases.
type Coordinator struct {
	opts   Options
	svc    *service.Server
	mux    *http.ServeMux
	leases *leaseTable
	quotas *tenantQuotas
	jitter *retry.Jitter
	client *http.Client

	counters clusterCounters

	// Cluster journal (nil when the service journal is off too).
	jnl *journal.Journal
	jmu sync.Mutex

	// Assignment history: lastAssign is the journal's materialized
	// view for restart reclaim; completed guards exactly-once results.
	amu        sync.Mutex
	lastAssign map[string]clusterRecord
	completed  map[string]bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// New assembles a coordinator. With Service.DataDir set, both the
// service journal (jobs) and the cluster journal (assignments) live
// under it, and New replays the cluster journal so jobs the service
// journal re-enqueues can be reclaimed from workers that survived a
// coordinator restart.
func New(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:       opts,
		mux:        http.NewServeMux(),
		leases:     newLeaseTable(opts.LeaseTTL, opts.Now),
		quotas:     newTenantQuotas(opts.TenantRate, opts.TenantBurst, opts.Now),
		jitter:     retry.NewJitter(0xC00D1417),
		client:     &http.Client{},
		lastAssign: make(map[string]clusterRecord),
		completed:  make(map[string]bool),
		stop:       make(chan struct{}),
	}
	if opts.Service.DataDir != "" {
		jnl, records, err := journal.Open(opts.Service.DataDir+"/cluster",
			journal.Options{NoSync: opts.Service.NoSync})
		if err != nil {
			return nil, fmt.Errorf("cluster: open journal: %w", err)
		}
		c.jnl = jnl
		if opts.ClusterJournalTap != nil {
			for _, rec := range records {
				opts.ClusterJournalTap(rec)
			}
		}
		c.replay(records)
	}

	svcOpts := opts.Service
	svcOpts.Runner = c.dispatch
	svcOpts.Admit = c.admit
	svcOpts.ExtraStats = c.extraStats
	svcOpts.ExtraReady = c.extraReady
	if opts.Admit != nil {
		svcOpts.Admit = func(spec service.JobSpec) error {
			if err := opts.Admit(spec); err != nil {
				return err
			}
			return c.admit(spec)
		}
	}
	if opts.ExtraStats != nil {
		svcOpts.ExtraStats = func(st *service.Stats) {
			c.extraStats(st)
			opts.ExtraStats(st)
		}
	}
	if opts.ExtraReady != nil {
		svcOpts.ExtraReady = func() []string {
			return append(c.extraReady(), opts.ExtraReady()...)
		}
	}
	svc, err := service.New(svcOpts)
	if err != nil {
		if c.jnl != nil {
			c.jnl.Close()
		}
		return nil, err
	}
	c.svc = svc

	c.mux.Handle("/", svc)
	c.mux.HandleFunc("POST /cluster/v1/register", c.handleRegister)
	c.mux.HandleFunc("POST /cluster/v1/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /cluster/v1/deregister", c.handleDeregister)
	c.mux.HandleFunc("GET /cluster/v1/workers", c.handleWorkers)
	return c, nil
}

// replay folds the cluster journal into the assignment history: the
// last assign per job wins, a complete retires the job for good.
func (c *Coordinator) replay(records [][]byte) {
	for _, payload := range records {
		var rec clusterRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			c.counters.journalErrors.Add(1)
			continue
		}
		switch rec.Type {
		case "assign":
			if rec.Job != "" {
				c.lastAssign[rec.Job] = rec
			}
		case "handoff", "expire":
			// The assignment died with the worker; nothing to reclaim.
			if rec.Job != "" {
				delete(c.lastAssign, rec.Job)
			}
		case "complete":
			if rec.Job != "" {
				c.completed[rec.Job] = true
				delete(c.lastAssign, rec.Job)
			}
		}
	}
}

// Start launches the embedded service's worker pool (each worker is a
// dispatcher here) and the lease-expiry sweeper.
func (c *Coordinator) Start() {
	c.svc.Start()
	c.wg.Add(1)
	go c.expiryLoop()
}

// Drain shuts the coordinator down: the service drains (dispatchers
// get cancelled, which best-effort-cancels their worker jobs), then
// the sweeper stops and the cluster journal closes.
func (c *Coordinator) Drain(ctx context.Context) error {
	err := c.svc.Drain(ctx)
	close(c.stop)
	c.wg.Wait()
	if c.jnl != nil {
		c.jmu.Lock()
		c.jnl.Close()
		c.jmu.Unlock()
	}
	return err
}

// Service exposes the embedded service.Server (for stats and tests).
func (c *Coordinator) Service() *service.Server { return c.svc }

// ServeHTTP implements http.Handler: the service /v1 API plus the
// /cluster/v1 membership endpoints.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// expiryLoop sweeps lapsed leases. Every expired worker is journaled;
// its dead channel (closed by the table) makes the dispatchers waiting
// on it hand their jobs off.
func (c *Coordinator) expiryLoop() {
	defer c.wg.Done()
	interval := c.opts.LeaseTTL / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			for _, w := range c.leases.expire() {
				c.counters.leasesExpired.Add(1)
				c.journalRec(clusterRecord{Type: "expire", Worker: w.id, Addr: w.addr})
			}
		}
	}
}

// admit is the service's admission hook: fair share first (no tenant
// may hoard a contended queue), then the tenant's token bucket. Both
// rejections carry jittered Retry-After hints.
func (c *Coordinator) admit(spec service.JobSpec) error {
	depths := c.svc.TenantDepths()
	total := 0
	for _, d := range depths {
		total += d
	}
	queueSize := c.opts.Service.QueueSize
	if queueSize <= 0 {
		queueSize = 16
	}
	if total*2 >= queueSize {
		// Divide by active+1, not active: even a lone tenant leaves
		// room for a newcomer on a contended queue.
		active := len(depths)
		if active < 1 {
			active = 1
		}
		share := queueSize / (active + 1)
		if share < 1 {
			share = 1
		}
		if depths[spec.Tenant] >= share {
			return &service.ThrottleError{
				Tenant:     spec.Tenant,
				Reason:     "fair-share",
				RetryAfter: c.jitter.Around(time.Second),
			}
		}
	}
	if wait, ok := c.quotas.admit(spec.Tenant); !ok {
		return &service.ThrottleError{
			Tenant:     spec.Tenant,
			Reason:     "quota",
			RetryAfter: c.jitter.Around(wait),
		}
	}
	return nil
}

// extraStats decorates /v1/stats with the cluster counters.
func (c *Coordinator) extraStats(st *service.Stats) {
	st.Cluster = map[string]uint64{
		"workers_live":       uint64(len(c.leases.live())),
		"leases_granted":     c.counters.leasesGranted.Load(),
		"leases_expired":     c.counters.leasesExpired.Load(),
		"heartbeats":         c.counters.heartbeats.Load(),
		"dispatches":         c.counters.dispatches.Load(),
		"handoffs":           c.counters.handoffs.Load(),
		"steals":             c.counters.steals.Load(),
		"results_reclaimed":  c.counters.resultsReclaimed.Load(),
		"duplicate_results":  c.counters.duplicateResults.Load(),
		"grace_poll_adopted": c.counters.gracePollAdopted.Load(),
		"deregistrations":    c.counters.deregistrations.Load(),
		"dispatch_rejected":  c.counters.dispatchRejected.Load(),
		"journal_errors":     c.counters.journalErrors.Load(),
	}
}

// extraReady contributes the cluster's not-ready reasons: a
// coordinator with no live workers is alive but cannot place work.
func (c *Coordinator) extraReady() []string {
	if len(c.leases.live()) == 0 {
		return []string{"no live cluster workers registered"}
	}
	return nil
}

// journalRec appends one cluster-journal record. Failures are counted
// and returned; most callers tolerate a lost record (availability over
// durability), but the assign-intent path must abort dispatch when the
// record that fences exactly-once cannot be made durable. A failed
// append is never tapped, so the replication stream stays aligned with
// what is actually on disk.
func (c *Coordinator) journalRec(rec clusterRecord) error {
	if c.jnl == nil {
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		c.counters.journalErrors.Add(1)
		return err
	}
	c.jmu.Lock()
	defer c.jmu.Unlock()
	if err := c.jnl.Append(payload); err != nil {
		c.counters.journalErrors.Add(1)
		return err
	}
	if c.opts.ClusterJournalTap != nil {
		// Under jmu: the tap observes records in durable append order.
		c.opts.ClusterJournalTap(payload)
	}
	return nil
}

// journalComplete retires a job exactly once. The false return flags a
// duplicate result (a second worker finishing a handed-off job after
// the first's result was adopted) — counted and discarded.
func (c *Coordinator) journalComplete(jobID, workerID string) bool {
	c.amu.Lock()
	if c.completed[jobID] {
		c.amu.Unlock()
		c.counters.duplicateResults.Add(1)
		return false
	}
	c.completed[jobID] = true
	delete(c.lastAssign, jobID)
	c.amu.Unlock()
	c.journalRec(clusterRecord{Type: "complete", Job: jobID, Worker: workerID})
	return true
}

// SnapshotClusterUnderJournalLock rebuilds the cluster journal's
// logical state — one assign record per reclaimable assignment, one
// complete per retired job — and hands it to fn while holding the
// journal append lock, so every record tapped after fn returns strictly
// follows the snapshot. The HA hub rebases a fresh follower's stream
// from it when the record history before the follower's offset has been
// trimmed.
func (c *Coordinator) SnapshotClusterUnderJournalLock(fn func(records [][]byte)) {
	c.jmu.Lock()
	defer c.jmu.Unlock()
	fn(c.clusterSnapshot())
}

// clusterSnapshot marshals the materialized assignment view in a
// deterministic (sorted) order. Replaying it yields the same
// lastAssign/completed state as replaying the full record history.
func (c *Coordinator) clusterSnapshot() [][]byte {
	c.amu.Lock()
	defer c.amu.Unlock()
	var records [][]byte
	appendRec := func(rec clusterRecord) {
		payload, err := json.Marshal(rec)
		if err != nil {
			c.counters.journalErrors.Add(1)
			return
		}
		records = append(records, payload)
	}
	for _, id := range sortedKeys(c.lastAssign) {
		appendRec(c.lastAssign[id])
	}
	for _, id := range sortedKeys(c.completed) {
		appendRec(clusterRecord{Type: "complete", Job: id})
	}
	return records
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// reclaimFor hands out (once) the job's pre-restart assignment.
func (c *Coordinator) reclaimFor(jobID string) (clusterRecord, bool) {
	c.amu.Lock()
	defer c.amu.Unlock()
	rec, ok := c.lastAssign[jobID]
	if ok {
		delete(c.lastAssign, jobID)
	}
	return rec, ok
}

// recordAssign journals an assignment and updates the materialized
// view. With workerJob == "" it is the durable intent written BEFORE
// the dispatch RPC; the confirming record (same token, worker-side ID
// filled in) follows once the worker accepts. journalRec fsyncs before
// returning, so the intent is on disk before the RPC leaves — and the
// journal append comes first, so a failed append leaves no in-memory
// assignment that disk does not back.
func (c *Coordinator) recordAssign(jobID string, w *workerNode, workerJob, token string, try int) error {
	rec := clusterRecord{Type: "assign", Job: jobID, Worker: w.id, Addr: w.addr,
		WorkerJob: workerJob, Token: token, Try: try}
	if err := c.journalRec(rec); err != nil {
		return err
	}
	c.amu.Lock()
	c.lastAssign[jobID] = rec
	c.amu.Unlock()
	return nil
}

// ---------------------------------------------------------------------
// Membership endpoints
// ---------------------------------------------------------------------

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	if err := failpoint.Inject("cluster/lease/grant"); err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Addr == "" {
		httpError(w, http.StatusBadRequest, "register: non-empty addr required")
		return
	}
	node, superseded := c.leases.register(req.Addr)
	c.counters.leasesGranted.Add(1)
	if superseded != nil {
		// The old incarnation's dispatchers hand off via its dead
		// channel; nothing else to do here.
		c.journalRec(clusterRecord{Type: "expire", Worker: superseded.id, Addr: superseded.addr})
	}
	c.journalRec(clusterRecord{Type: "register", Worker: node.id, Addr: node.addr})
	writeJSON(w, http.StatusOK, RegisterResponse{
		WorkerID: node.id,
		LeaseID:  node.leaseID,
		TTLSec:   c.opts.LeaseTTL.Seconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if err := failpoint.Inject("cluster/lease/renew"); err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "heartbeat: malformed body")
		return
	}
	ttl, err := c.leases.heartbeat(req.WorkerID, req.LeaseID)
	switch {
	case errors.Is(err, ErrUnknownWorker):
		httpError(w, http.StatusNotFound, err.Error())
		return
	case errors.Is(err, ErrLeaseSuperseded):
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	c.counters.heartbeats.Add(1)
	writeJSON(w, http.StatusOK, HeartbeatResponse{TTLSec: ttl.Seconds()})
}

func (c *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "deregister: malformed body")
		return
	}
	if node := c.leases.drop(req.WorkerID); node != nil {
		c.counters.deregistrations.Add(1)
		c.journalRec(clusterRecord{Type: "expire", Worker: node.id, Addr: node.addr})
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "bye"})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	now := c.opts.Now()
	var views []WorkerView
	for _, n := range c.leases.live() {
		c.leases.mu.Lock()
		inflight, expires := n.inflight, n.expires
		c.leases.mu.Unlock()
		views = append(views, WorkerView{
			ID:                n.id,
			Addr:              n.addr,
			InFlight:          inflight,
			LeaseRemainingSec: expires.Sub(now).Seconds(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"workers": views})
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

// errWorkerLost is the dispatcher's internal signal that its worker's
// lease died (or the worker stopped answering) mid-job — the job hands
// off to another worker.
var errWorkerLost = errors.New("cluster: worker lost mid-job")

// dispatch is the service Runner hook: it drives one coordinator job
// to completion by placing it on a worker and adopting the result,
// handing off (re-placing) as many times as worker deaths demand. The
// handoff loop lives here rather than in the service retry loop so a
// worker crash never burns one of the job's failure attempts.
func (c *Coordinator) dispatch(ctx context.Context, j *service.Job) error {
	c.counters.dispatches.Add(1)
	key := j.Spec.ContentKey()
	try := 0

	// A restarted coordinator may find the job still running on (or
	// already finished by) a worker that survived the outage — or an
	// assign intent whose dispatch RPC it is not sure arrived.
	if rec, ok := c.reclaimFor(j.ID); ok {
		try = rec.Try
		if rec.WorkerJob != "" || (rec.Token != "" && rec.Addr != "") {
			done, err := c.tryReclaim(ctx, j, rec)
			if done {
				return err
			}
		}
	}

	for {
		node, stole := c.pickWorker(ctx, key)
		if node == nil {
			return ctx.Err()
		}
		if stole {
			c.counters.steals.Add(1)
			c.journalRec(clusterRecord{Type: "steal", Job: j.ID, Worker: node.id})
		}
		// Exactly-once fence, in order: (1) the assign intent with its
		// idempotency token goes durably to the cluster journal, (2) the
		// dispatch RPC carries the token, (3) the confirming record adds
		// the worker-side job ID. A crash after (2) leaves the intent on
		// disk, and recovery re-sends the same token — the worker dedupes
		// instead of double-running. When the intent itself cannot be made
		// durable, the RPC must not leave: a crash inside that window
		// would orphan a worker-side run with no record to reclaim it by.
		try++
		token := fmt.Sprintf("%s#%d", j.ID, try)
		if err := c.recordAssign(j.ID, node, "", token, try); err != nil {
			c.leases.release(node)
			return fmt.Errorf("cluster: assign intent not durable, refusing to dispatch: %w", err)
		}
		spec := j.Spec
		spec.SubmitToken = token
		workerJob, err := c.submitTo(ctx, node, spec)
		if err != nil {
			c.leases.release(node)
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// The worker refused (full queue, drain, chaos) or died at
			// submission: brief pause, then place elsewhere.
			c.counters.dispatchRejected.Add(1)
			if retry.Sleep(ctx, c.opts.PollInterval) != nil {
				return ctx.Err()
			}
			continue
		}
		// Chaos window: an armed sleep here stretches the gap between the
		// accepted dispatch and its confirming record — the kill-primary
		// regression SIGKILLs inside it. An error spec only widens the
		// window too (the confirm below still runs). A failed confirm
		// append is tolerable — the durable intent already fences the
		// token, so recovery re-resolves the assignment — and the job is
		// live on the worker, so aborting here would only orphan it.
		_ = failpoint.Inject("cluster/assign/confirm")
		_ = c.recordAssign(j.ID, node, workerJob, token, try)

		err = c.await(ctx, j, node, workerJob)
		c.leases.release(node)
		switch {
		case errors.Is(err, errWorkerLost):
			c.counters.handoffs.Add(1)
			c.journalRec(clusterRecord{Type: "handoff", Job: j.ID, Worker: node.id})
			// The handoff failpoint lets the chaos harness stretch or
			// perturb the re-placement window.
			if ferr := failpoint.Inject("cluster/handoff"); ferr != nil {
				if retry.Sleep(ctx, c.opts.PollInterval) != nil {
					return ctx.Err()
				}
			}
			continue
		case err == nil:
			c.journalComplete(j.ID, node.id)
			return nil
		default:
			return err
		}
	}
}

// pickWorker blocks until a live worker exists (or ctx dies), then
// routes by affinity/steal. The steal failpoint disables stealing
// while armed, so chaos runs can force skewed routing.
func (c *Coordinator) pickWorker(ctx context.Context, key string) (*workerNode, bool) {
	for {
		allowSteal := failpoint.Inject("cluster/steal") == nil
		node, stole := c.leases.pick(key, c.opts.StealMargin, allowSteal)
		if node != nil {
			return node, stole
		}
		wake := c.leases.waitCh()
		select {
		case <-ctx.Done():
			return nil, false
		case <-wake:
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// submitTo places a job spec on a worker, returning the worker-side
// job ID. It runs on its own bounded context, NOT the job's: the
// worker may start executing before the 202 is read, so cancelling the
// request mid-flight would orphan a running worker-side job whose ID
// the coordinator never learned. Letting the submission resolve means
// a concurrent cancel is handled by await's ctx.Done path, which knows
// the ID and aborts the job remotely.
func (c *Coordinator) submitTo(ctx context.Context, node *workerNode, spec service.JobSpec) (string, error) {
	if err := failpoint.Inject("cluster/dispatch/submit"); err != nil {
		return "", err
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodPost, node.addr+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return "", err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", fmt.Errorf("cluster: worker %s refused job: HTTP %d: %s", node.id, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", fmt.Errorf("cluster: worker %s: malformed submit response: %w", node.id, err)
	}
	return st.ID, nil
}

// await polls the worker for the job until it reaches a terminal
// state, forwarding progress to the coordinator job's subscribers.
// When the worker's lease dies mid-wait, one grace poll decides the
// edge case of a worker that finished but heartbeated late: a terminal
// result found there is adopted (exactly-once result), anything else
// is a handoff.
func (c *Coordinator) await(ctx context.Context, j *service.Job, node *workerNode, workerJob string) error {
	tick := time.NewTicker(c.opts.PollInterval)
	defer tick.Stop()
	var lastProgress core.Progress
	failures := 0
	for {
		select {
		case <-ctx.Done():
			// Cancellation or deadline on the coordinator: abort the
			// worker-side job so it stops burning cycles.
			c.cancelOn(node.addr, workerJob)
			return ctx.Err()

		case <-node.Dead():
			if st, err := c.pollOnce(ctx, node.addr, workerJob); err == nil && st.State.Terminal() {
				c.counters.gracePollAdopted.Add(1)
				return c.adopt(ctx, j, st)
			}
			return errWorkerLost

		case <-tick.C:
			st, err := c.pollOnce(ctx, node.addr, workerJob)
			if err != nil {
				if ctx.Err() != nil {
					// Cancelled between the select and the poll: same
					// exit as the ctx.Done case.
					c.cancelOn(node.addr, workerJob)
					return ctx.Err()
				}
				// Don't wait out the full lease TTL on a connection
				// that is actively refusing: three straight poll
				// failures declare the worker lost.
				if failures++; failures >= 3 {
					return errWorkerLost
				}
				continue
			}
			failures = 0
			if st.Progress != nil && *st.Progress != lastProgress {
				lastProgress = *st.Progress
				c.counters.progressForwarded.Add(1)
				j.PublishProgress(lastProgress)
			}
			if st.State.Terminal() {
				return c.adopt(ctx, j, st)
			}
		}
	}
}

// pollOnce fetches one worker-side job status.
func (c *Coordinator) pollOnce(ctx context.Context, addr, workerJob string) (service.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/jobs/"+workerJob, nil)
	if err != nil {
		return service.Status{}, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return service.Status{}, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return service.Status{}, fmt.Errorf("cluster: poll %s: HTTP %d", workerJob, resp.StatusCode)
	}
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.Status{}, err
	}
	return st, nil
}

// cancelOn best-effort aborts a worker-side job (fresh context: the
// caller's is already dead).
func (c *Coordinator) cancelOn(addr, workerJob string) {
	cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodDelete, addr+"/v1/jobs/"+workerJob, nil)
	if err != nil {
		return
	}
	if resp, err := c.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// adopt maps a worker-side terminal status onto the coordinator job.
// The reports round-trip bit-for-bit (core/wire.go), so the artifact
// the coordinator serves is byte-identical to the worker's.
func (c *Coordinator) adopt(ctx context.Context, j *service.Job, st service.Status) error {
	switch st.State {
	case service.StateDone:
		j.SetResult(st.Report, st.LotReport)
		j.SetCacheHit(st.CacheHit)
		return nil
	case service.StateFailed:
		return fmt.Errorf("cluster: worker job failed: %s", st.Error)
	case service.StateDeadline:
		// Propagate as a deadline so the service classifies the
		// coordinator job "deadline" too.
		return fmt.Errorf("cluster: worker job hit its deadline (%s): %w", st.Error, context.DeadlineExceeded)
	case service.StateCancelled:
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("cluster: worker job cancelled remotely: %s", st.Error)
	default:
		return fmt.Errorf("cluster: worker job in unexpected terminal state %q", st.State)
	}
}

// tryReclaim resolves a pre-restart assignment. done=true means the
// job needs no fresh dispatch: its result was adopted (reclaimed or
// re-attached), or it failed remotely. done=false falls through to a
// normal dispatch — after best-effort cancelling the old worker-side
// job so a zombie cannot produce a duplicate execution.
func (c *Coordinator) tryReclaim(ctx context.Context, j *service.Job, rec clusterRecord) (done bool, err error) {
	if rec.WorkerJob == "" {
		// An intent without a confirmed worker-side ID: the coordinator
		// died between the dispatch RPC and its confirming record. The
		// token resolves the ambiguity — re-send the submit with the SAME
		// token to the recorded worker: it dedupes onto the in-flight job
		// if the RPC had arrived, or starts the job if it never did.
		node := c.waitAddr(ctx, rec.Addr)
		if node == nil {
			return false, nil // worker gone for good: fresh dispatch
		}
		spec := j.Spec
		spec.SubmitToken = rec.Token
		workerJob, serr := c.submitTo(ctx, node, spec)
		if serr != nil {
			c.leases.release(node)
			return false, nil
		}
		// Confirm failure tolerated: the original intent is already
		// durable under the same token.
		_ = c.recordAssign(j.ID, node, workerJob, rec.Token, rec.Try)
		err = c.await(ctx, j, node, workerJob)
		c.leases.release(node)
		if errors.Is(err, errWorkerLost) {
			c.counters.handoffs.Add(1)
			c.journalRec(clusterRecord{Type: "handoff", Job: j.ID, Worker: node.id})
			return false, nil
		}
		if err == nil {
			c.counters.resultsReclaimed.Add(1)
			c.journalComplete(j.ID, node.id)
		}
		return true, err
	}

	st, perr := c.pollOnce(ctx, rec.Addr, rec.WorkerJob)
	if perr != nil {
		// The old worker is unreachable (or forgot the job): normal
		// dispatch, nothing to cancel.
		return false, nil
	}
	if st.State.Terminal() {
		c.counters.resultsReclaimed.Add(1)
		err = c.adopt(ctx, j, st)
		c.journalComplete(j.ID, rec.Worker)
		return true, err
	}
	// Still running over there. If the worker re-registers (a promoted
	// standby's workers rotate over within a heartbeat interval — wait
	// for them rather than killing live work), re-attach and await its
	// result; otherwise cancel the zombie and start fresh.
	if node := c.waitAddr(ctx, rec.Addr); node != nil {
		_ = c.recordAssign(j.ID, node, rec.WorkerJob, rec.Token, rec.Try)
		err = c.await(ctx, j, node, rec.WorkerJob)
		c.leases.release(node)
		if errors.Is(err, errWorkerLost) {
			c.counters.handoffs.Add(1)
			c.journalRec(clusterRecord{Type: "handoff", Job: j.ID, Worker: node.id})
			return false, nil
		}
		if err == nil {
			c.counters.resultsReclaimed.Add(1)
			c.journalComplete(j.ID, node.id)
		}
		return true, err
	}
	c.cancelOn(rec.Addr, rec.WorkerJob)
	return false, nil
}

// waitAddr returns the live member at addr, waiting up to one lease
// TTL for it to (re-)register — after a failover, surviving workers
// rotate to the promoted coordinator within a heartbeat interval, and
// reclaim must not mistake that gap for a dead worker. The returned
// node has its inflight count raised; callers release it.
func (c *Coordinator) waitAddr(ctx context.Context, addr string) *workerNode {
	deadline := time.NewTimer(c.opts.LeaseTTL)
	defer deadline.Stop()
	for {
		if node := c.leases.findAddr(addr); node != nil {
			c.leases.mu.Lock()
			node.inflight++
			c.leases.mu.Unlock()
			return node
		}
		wake := c.leases.waitCh()
		select {
		case <-ctx.Done():
			return nil
		case <-deadline.C:
			return nil
		case <-wake:
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
