package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"superpose/internal/failpoint"
	"superpose/internal/retry"
)

// AgentOptions configures a worker-side membership agent.
type AgentOptions struct {
	// Coordinator is the coordinator's base URL. With an HA pair, list
	// every coordinator in Coordinators instead; the agent discovers
	// whichever is primary and rotates on failover.
	Coordinator string
	// Coordinators is the multi-coordinator discovery list. The agent
	// registers with the first member that accepts (a standby answers
	// 503 and is skipped), and rotates to the next on lease loss or
	// coordinator silence. Coordinator, when set too, is prepended.
	Coordinators []string
	// Addr is this worker's base URL as reachable from the coordinator
	// — what gets registered.
	Addr string
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Logf, when set, receives membership events (register, lease loss).
	Logf func(format string, args ...any)
}

// Agent keeps one worker registered with the coordinator: register for
// a lease, heartbeat within the TTL, re-register whenever the lease is
// lost (coordinator restart, expiry during a network partition,
// supersession). Run blocks until ctx is done, then deregisters
// best-effort so the coordinator reroutes immediately instead of
// waiting out the TTL.
type Agent struct {
	opts  AgentOptions
	bases []string // discovery list, in rotation order
	cur   int      // index of the coordinator currently registered with
}

func NewAgent(opts AgentOptions) *Agent {
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	var bases []string
	if opts.Coordinator != "" {
		bases = append(bases, opts.Coordinator)
	}
	for _, b := range opts.Coordinators {
		if b != "" && b != opts.Coordinator {
			bases = append(bases, b)
		}
	}
	return &Agent{opts: opts, bases: bases}
}

// Run drives the register/heartbeat loop until ctx is cancelled. With
// a multi-coordinator list, registration rotates through it under
// decorrelated-jitter backoff until a primary accepts — so a failover
// costs the worker one discovery sweep, not its membership.
func (a *Agent) Run(ctx context.Context) {
	backoff := retry.Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second, Seed: 0xA6E17BEA7}.Backoff()
	for ctx.Err() == nil {
		lease, err := a.register(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			a.opts.Logf("cluster agent: register: %v (retrying)", err)
			retry.Sleep(ctx, backoff.Next())
			continue
		}
		a.opts.Logf("cluster agent: registered with %s as %s (lease %s, ttl %.1fs)",
			a.base(), lease.WorkerID, lease.LeaseID, lease.TTLSec)
		a.beat(ctx, lease)
		// beat only returns when the lease is lost or ctx died; the
		// loop re-registers (fresh lease) or exits.
	}
}

// base is the coordinator the agent currently targets.
func (a *Agent) base() string { return a.bases[a.cur%len(a.bases)] }

// rotate advances to the next coordinator of the discovery list.
func (a *Agent) rotate(why string) {
	if len(a.bases) < 2 {
		return
	}
	a.cur = (a.cur + 1) % len(a.bases)
	a.opts.Logf("cluster agent: rotating to coordinator %s (%s)", a.base(), why)
}

// register acquires a lease from the current coordinator, rotating on
// refusal so the next attempt lands on the peer.
func (a *Agent) register(ctx context.Context) (RegisterResponse, error) {
	var lease RegisterResponse
	err := a.post(ctx, "/cluster/v1/register", RegisterRequest{Addr: a.opts.Addr}, &lease)
	if err != nil {
		a.rotate(err.Error())
	}
	return lease, err
}

// beat renews the lease at TTL/3 until it is lost. The heartbeat
// failpoint drops beats (simulating a stalled agent); transient network
// errors are retried on the next tick. Three things abandon the lease:
// an authoritative rejection (unknown worker, superseded lease), a 503
// (the coordinator demoted — a standby cannot hold our lease), and a
// full TTL without a successful beat (the coordinator is gone; by now
// its lease table has expired us anyway, so rotate and re-register
// rather than beating a dead address forever).
func (a *Agent) beat(ctx context.Context, lease RegisterResponse) {
	ttl := time.Duration(lease.TTLSec * float64(time.Second))
	interval := ttl / 3
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	lastOK := time.Now()
	for {
		select {
		case <-ctx.Done():
			a.deregister(lease)
			return
		case <-tick.C:
			if failpoint.Inject("cluster/agent/heartbeat") != nil {
				continue // beat swallowed by chaos
			}
			var ack HeartbeatResponse
			err := a.post(ctx, "/cluster/v1/heartbeat",
				HeartbeatRequest{WorkerID: lease.WorkerID, LeaseID: lease.LeaseID}, &ack)
			if err == nil {
				lastOK = time.Now()
				continue
			}
			if ctx.Err() != nil {
				a.deregister(lease)
				return
			}
			var se *statusError
			switch {
			case errors.As(err, &se) && (se.code == http.StatusNotFound || se.code == http.StatusConflict):
				a.opts.Logf("cluster agent: lease %s rejected (%v); re-registering", lease.LeaseID, err)
				return
			case errors.As(err, &se) && se.code == http.StatusServiceUnavailable:
				a.opts.Logf("cluster agent: coordinator not serving (%v); re-registering", err)
				a.rotate("coordinator unavailable")
				return
			case time.Since(lastOK) > ttl:
				a.opts.Logf("cluster agent: no successful beat for a full TTL (%v); re-registering", err)
				a.rotate("coordinator silent")
				return
			default:
				a.opts.Logf("cluster agent: heartbeat: %v (will retry)", err)
			}
		}
	}
}

// deregister releases the lease best-effort (fresh context; ctx is
// usually already dead here).
func (a *Agent) deregister(lease RegisterResponse) {
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	a.post(dctx, "/cluster/v1/deregister",
		HeartbeatRequest{WorkerID: lease.WorkerID, LeaseID: lease.LeaseID}, nil)
}

// statusError is a non-2xx coordinator response.
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.code, e.body)
}

// post sends one JSON request to the coordinator and decodes the reply.
func (a *Agent) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.base()+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &statusError{code: resp.StatusCode, body: string(bytes.TrimSpace(msg))}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
