package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"superpose/internal/failpoint"
	"superpose/internal/retry"
)

// AgentOptions configures a worker-side membership agent.
type AgentOptions struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Addr is this worker's base URL as reachable from the coordinator
	// — what gets registered.
	Addr string
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Logf, when set, receives membership events (register, lease loss).
	Logf func(format string, args ...any)
}

// Agent keeps one worker registered with the coordinator: register for
// a lease, heartbeat within the TTL, re-register whenever the lease is
// lost (coordinator restart, expiry during a network partition,
// supersession). Run blocks until ctx is done, then deregisters
// best-effort so the coordinator reroutes immediately instead of
// waiting out the TTL.
type Agent struct {
	opts AgentOptions
}

func NewAgent(opts AgentOptions) *Agent {
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	return &Agent{opts: opts}
}

// Run drives the register/heartbeat loop until ctx is cancelled.
func (a *Agent) Run(ctx context.Context) {
	for ctx.Err() == nil {
		lease, err := a.register(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			a.opts.Logf("cluster agent: register: %v (retrying)", err)
			retry.Sleep(ctx, 200*time.Millisecond)
			continue
		}
		a.opts.Logf("cluster agent: registered as %s (lease %s, ttl %.1fs)",
			lease.WorkerID, lease.LeaseID, lease.TTLSec)
		a.beat(ctx, lease)
		// beat only returns when the lease is lost or ctx died; the
		// loop re-registers (fresh lease) or exits.
	}
}

// register acquires a lease.
func (a *Agent) register(ctx context.Context) (RegisterResponse, error) {
	var lease RegisterResponse
	err := a.post(ctx, "/cluster/v1/register", RegisterRequest{Addr: a.opts.Addr}, &lease)
	return lease, err
}

// beat renews the lease at TTL/3 until it is lost. The heartbeat
// failpoint drops beats (simulating a stalled agent); network errors
// are retried on the next tick — only an authoritative rejection
// (unknown worker, superseded lease) abandons the lease.
func (a *Agent) beat(ctx context.Context, lease RegisterResponse) {
	ttl := time.Duration(lease.TTLSec * float64(time.Second))
	interval := ttl / 3
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			a.deregister(lease)
			return
		case <-tick.C:
			if failpoint.Inject("cluster/agent/heartbeat") != nil {
				continue // beat swallowed by chaos
			}
			var ack HeartbeatResponse
			err := a.post(ctx, "/cluster/v1/heartbeat",
				HeartbeatRequest{WorkerID: lease.WorkerID, LeaseID: lease.LeaseID}, &ack)
			if err == nil {
				continue
			}
			if ctx.Err() != nil {
				a.deregister(lease)
				return
			}
			var se *statusError
			if errors.As(err, &se) && (se.code == http.StatusNotFound || se.code == http.StatusConflict) {
				a.opts.Logf("cluster agent: lease %s rejected (%v); re-registering", lease.LeaseID, err)
				return
			}
			a.opts.Logf("cluster agent: heartbeat: %v (will retry)", err)
		}
	}
}

// deregister releases the lease best-effort (fresh context; ctx is
// usually already dead here).
func (a *Agent) deregister(lease RegisterResponse) {
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	a.post(dctx, "/cluster/v1/deregister",
		HeartbeatRequest{WorkerID: lease.WorkerID, LeaseID: lease.LeaseID}, nil)
}

// statusError is a non-2xx coordinator response.
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.code, e.body)
}

// post sends one JSON request to the coordinator and decodes the reply.
func (a *Agent) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.opts.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &statusError{code: resp.StatusCode, body: string(bytes.TrimSpace(msg))}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
