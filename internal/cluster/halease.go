package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"syscall"
	"time"

	"superpose/internal/failpoint"
)

// The HA primary lease is a single JSON file on storage both
// coordinators can reach. It deliberately carries NO timestamps — only
// an owner, an epoch (bumped per takeover) and a nonce (bumped per
// renewal). Liveness is judged by each node against its OWN clock:
//
//   - the primary renews at TTL/3 and self-fences (stops admitting,
//     demotes) once TTL/2 passes on its clock without a successful
//     renewal;
//   - the standby steals only after watching the nonce stay unchanged
//     for a full TTL on its clock.
//
// Because both rules compare local durations and monotone counters,
// never wall-clock timestamps, arbitrary clock OFFSET between the nodes
// cannot open a dual-primary window: the fencing deadline (TTL/2) beats
// the steal deadline (TTL) as long as clock RATES are sane.
//
// ErrHALeaseLost is what Renew returns when another node took the
// lease: the caller must stop serving as primary immediately.
var ErrHALeaseLost = errors.New("cluster: ha lease lost to another coordinator")

// haLeaseState is the lease file's contents.
type haLeaseState struct {
	Owner string `json:"owner"`
	Epoch uint64 `json:"epoch"`
	Nonce uint64 `json:"nonce"`
}

// haLease is one node's handle on the shared lease file.
type haLease struct {
	path  string
	owner string
	ttl   time.Duration
	now   func() time.Time

	mu    sync.Mutex
	epoch uint64 // the epoch we acquired under (0 = not holding)
}

func openHALease(path, owner string, ttl time.Duration, now func() time.Time) *haLease {
	if now == nil {
		now = time.Now
	}
	return &haLease{path: path, owner: owner, ttl: ttl, now: now}
}

// withLock serializes read-modify-write cycles on the lease file via a
// kernel flock on a sibling .lock file. flock is atomic (no
// check-then-act window two nodes could race through) and is released
// by the kernel when the holder's process dies, so a crashed holder
// never wedges the pair and no stale-lock breaking — with its inherent
// remove/recreate races — is needed at all. The lock file itself is
// never removed; it is an empty rendezvous point.
func (l *haLease) withLock(fn func() error) error {
	f, err := os.OpenFile(l.path+".lock", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	// Non-blocking acquire with bounded retries: the critical section is
	// microseconds, so contention clears almost immediately, and a bound
	// keeps a pathological holder from wedging the caller forever.
	for tries := 0; ; tries++ {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
		if err == nil {
			break
		}
		if err != syscall.EWOULDBLOCK && err != syscall.EAGAIN {
			return fmt.Errorf("cluster: ha lease lock %s: %w", l.path+".lock", err)
		}
		if tries > 2000 {
			return fmt.Errorf("cluster: ha lease lock %s wedged", l.path+".lock")
		}
		time.Sleep(2 * time.Millisecond)
	}
	defer syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	return fn()
}

// read decodes the lease file; a missing file is a zero state.
func (l *haLease) read() (haLeaseState, error) {
	data, err := os.ReadFile(l.path)
	if os.IsNotExist(err) {
		return haLeaseState{}, nil
	}
	if err != nil {
		return haLeaseState{}, err
	}
	var st haLeaseState
	if err := json.Unmarshal(data, &st); err != nil {
		// A torn write cannot happen (rename is atomic) but a corrupt
		// file must not wedge the cluster forever: treat it as vacant.
		return haLeaseState{}, nil
	}
	return st, nil
}

// write replaces the lease file atomically (temp + rename). One shared
// temp name is safe: writers already serialize on the lock file.
func (l *haLease) write(st haLeaseState) error {
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tmp := l.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, l.path)
}

// Acquire takes the lease unconditionally: the designated primary at
// boot, or a standby that has watched a full TTL of silence. The epoch
// bump fences the previous holder — its next Renew sees a foreign epoch
// and fails.
func (l *haLease) Acquire() (uint64, error) {
	if err := failpoint.Inject("cluster/ha/lease/acquire"); err != nil {
		return 0, err
	}
	var epoch uint64
	err := l.withLock(func() error {
		st, err := l.read()
		if err != nil {
			return err
		}
		st.Owner = l.owner
		st.Epoch++
		st.Nonce++
		epoch = st.Epoch
		return l.write(st)
	})
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	l.epoch = epoch
	l.mu.Unlock()
	return epoch, nil
}

// Renew bumps the nonce, proving liveness to the watching standby. It
// fails with ErrHALeaseLost when another node holds the lease — the
// caller self-fences.
func (l *haLease) Renew() error {
	if err := failpoint.Inject("cluster/ha/lease/renew"); err != nil {
		return err
	}
	l.mu.Lock()
	epoch := l.epoch
	l.mu.Unlock()
	if epoch == 0 {
		return ErrHALeaseLost
	}
	return l.withLock(func() error {
		st, err := l.read()
		if err != nil {
			return err
		}
		if st.Owner != l.owner || st.Epoch != epoch {
			return ErrHALeaseLost
		}
		st.Nonce++
		return l.write(st)
	})
}

// Release drops the lease if we still hold it (orderly shutdown): the
// owner is cleared so a standby can take over without waiting out the
// silence window.
func (l *haLease) Release() error {
	l.mu.Lock()
	epoch := l.epoch
	l.epoch = 0
	l.mu.Unlock()
	if epoch == 0 {
		return nil
	}
	return l.withLock(func() error {
		st, err := l.read()
		if err != nil {
			return err
		}
		if st.Owner != l.owner || st.Epoch != epoch {
			return nil // someone else already took it
		}
		st.Owner = ""
		st.Nonce++
		return l.write(st)
	})
}

// Observe reads the current lease state (the standby's watch).
func (l *haLease) Observe() (haLeaseState, error) {
	return l.read()
}

// Holding reports whether this handle believes it owns the lease.
// Renew/Acquire results are authoritative; this is for stats.
func (l *haLease) Holding() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch != 0
}

// leaseWatch is the standby's silence detector: it remembers the last
// (epoch, nonce) observed and when — on the LOCAL clock — it last
// changed. Vacant ownership counts as silence from the start.
type leaseWatch struct {
	last     haLeaseState
	lastMove time.Time
	primed   bool
}

// update folds one observation in and reports how long the lease has
// been silent on the local clock. A vacant lease (orderly release, or
// never held) reports as indefinitely silent — no takeover wait.
func (w *leaseWatch) update(st haLeaseState, now time.Time) time.Duration {
	if st.Owner == "" {
		w.primed = true
		w.last = st
		w.lastMove = now
		return 24 * time.Hour
	}
	if !w.primed || st.Epoch != w.last.Epoch || st.Nonce != w.last.Nonce {
		w.primed = true
		w.last = st
		w.lastMove = now
		return 0
	}
	return now.Sub(w.lastMove)
}
