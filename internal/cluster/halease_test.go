package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// skewClock is a fake clock offset from a shared base — the HA skew
// matrix gives each node its own offset and advances them in lockstep,
// modeling real time passing under arbitrary wall-clock disagreement.
type skewClock struct {
	base *fakeClock
	off  time.Duration
}

func (c skewClock) Now() time.Time { return c.base.Now().Add(c.off) }

// TestHALeaseFencing is the core epoch protocol: a takeover bumps the
// epoch, and the deposed holder's next renewal fails — it can never
// believe it is primary after the steal.
func TestHALeaseFencing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "primary.lease")
	const ttl = time.Second
	a := openHALease(path, "node-a", ttl, nil)
	b := openHALease(path, "node-b", ttl, nil)

	epochA, err := a.Acquire()
	if err != nil {
		t.Fatalf("a.Acquire: %v", err)
	}
	if epochA != 1 {
		t.Fatalf("first epoch = %d, want 1", epochA)
	}
	if err := a.Renew(); err != nil {
		t.Fatalf("a.Renew while holding: %v", err)
	}

	epochB, err := b.Acquire()
	if err != nil {
		t.Fatalf("b.Acquire: %v", err)
	}
	if epochB != epochA+1 {
		t.Fatalf("takeover epoch = %d, want %d", epochB, epochA+1)
	}
	if err := a.Renew(); !errors.Is(err, ErrHALeaseLost) {
		t.Fatalf("deposed a.Renew = %v, want ErrHALeaseLost", err)
	}
	if err := b.Renew(); err != nil {
		t.Fatalf("b.Renew: %v", err)
	}

	// Orderly release vacates the lease; the watch treats vacancy as
	// indefinitely silent, so a successor steals without waiting.
	if err := b.Release(); err != nil {
		t.Fatalf("b.Release: %v", err)
	}
	st, err := b.Observe()
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if st.Owner != "" {
		t.Fatalf("owner after release = %q, want vacant", st.Owner)
	}
	var w leaseWatch
	if silent := w.update(st, time.Now()); silent < ttl {
		t.Fatalf("vacant lease reported silent %v, want >= TTL (immediate steal)", silent)
	}
}

// TestHALeaseSkewMatrix proves the no-dual-primary and no-premature-
// steal invariants under every combination of ±TTL/2 wall-clock offset
// between the two nodes. The protocol never compares the nodes' clocks
// — the primary renews and the standby measures silence each against
// its OWN clock — so offset must be entirely invisible: a renewing
// primary is never stolen from, and a silent one always is, after
// exactly a full TTL of standby-local time.
func TestHALeaseSkewMatrix(t *testing.T) {
	const ttl = 900 * time.Millisecond
	offsets := []time.Duration{-ttl / 2, 0, ttl / 2}
	for _, pOff := range offsets {
		for _, sOff := range offsets {
			t.Run(fmt.Sprintf("primary%+v_standby%+v", pOff, sOff), func(t *testing.T) {
				base := newFakeClock()
				pClk := skewClock{base: base, off: pOff}
				sClk := skewClock{base: base, off: sOff}
				path := filepath.Join(t.TempDir(), "primary.lease")
				primary := openHALease(path, "primary", ttl, pClk.Now)
				standby := openHALease(path, "standby", ttl, sClk.Now)

				if _, err := primary.Acquire(); err != nil {
					t.Fatalf("Acquire: %v", err)
				}

				// Phase 1: a live primary renewing at TTL/3. The standby
				// observes between renewals and must never accumulate a
				// full TTL of silence, whatever the offsets.
				var watch leaseWatch
				observe := func() time.Duration {
					st, err := standby.Observe()
					if err != nil {
						t.Fatalf("Observe: %v", err)
					}
					return watch.update(st, sClk.Now())
				}
				observe() // prime the watch
				for i := 0; i < 9; i++ {
					base.Advance(ttl / 3)
					if silent := observe(); silent >= ttl {
						t.Fatalf("step %d: standby saw %v of silence from a renewing primary (premature steal)", i, silent)
					}
					if err := primary.Renew(); err != nil {
						t.Fatalf("step %d: Renew: %v", i, err)
					}
				}

				// Phase 2: the primary goes silent (crash). The standby
				// keeps observing at TTL/3 on its own clock and must cross
				// the steal threshold after ~one TTL — not sooner.
				steps := 0
				for observe() < ttl {
					base.Advance(ttl / 3)
					steps++
					if steps > 6 {
						t.Fatalf("standby never reached the steal threshold after %d observation intervals", steps)
					}
				}
				if steps < 3 {
					t.Fatalf("standby crossed the steal threshold after only %d intervals (%v), want a full TTL", steps, time.Duration(steps)*ttl/3)
				}

				// Phase 3: the steal fences the (hypothetically revived)
				// primary — its renewal must fail, so no dual-primary
				// window exists at any offset combination.
				if _, err := standby.Acquire(); err != nil {
					t.Fatalf("standby Acquire: %v", err)
				}
				if err := primary.Renew(); !errors.Is(err, ErrHALeaseLost) {
					t.Fatalf("revived primary Renew = %v, want ErrHALeaseLost", err)
				}
			})
		}
	}
}

// TestHALeaseCorruptFileTreatedVacant: a scribbled lease file must not
// wedge the pair forever — it reads as vacant and the next Acquire
// rewrites it.
func TestHALeaseCorruptFileTreatedVacant(t *testing.T) {
	path := filepath.Join(t.TempDir(), "primary.lease")
	l := openHALease(path, "node-a", time.Second, nil)
	if _, err := l.Acquire(); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := l.Observe()
	if err != nil {
		t.Fatalf("Observe on corrupt file: %v", err)
	}
	if st.Owner != "" || st.Epoch != 0 {
		t.Fatalf("corrupt lease read as %+v, want vacant zero state", st)
	}
	if _, err := l.Acquire(); err != nil {
		t.Fatalf("Acquire over corrupt file: %v", err)
	}
	if err := l.Renew(); err != nil {
		t.Fatalf("Renew after re-acquire: %v", err)
	}
}
