package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"superpose/internal/core"
	"superpose/internal/failpoint"
	"superpose/internal/journal"
	"superpose/internal/service"
)

// registerWorkerFresh registers a worker over a dedicated, non-pooled
// connection and retries transient dial/conn errors. The shared
// http.DefaultClient keep-alive pool is useless right after a primary
// restart on a reused address: it can hand out a socket the dead
// incarnation already closed, and POSTs are not replayed automatically.
func registerWorkerFresh(t *testing.T, coordURL string, addr string) {
	t.Helper()
	body, _ := json.Marshal(RegisterRequest{Addr: addr})
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	defer client.CloseIdleConnections()
	var lastErr error
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Post(coordURL+"/cluster/v1/register", "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
			lastErr = errors.New("HTTP " + strconv.Itoa(resp.StatusCode))
		} else {
			lastErr = err
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("register after restart: %v", lastErr)
}

// TestHALeaseLockMutualExclusion hammers the lease's flock-based
// critical section from many goroutines across two independent handles:
// a read-modify-write counter must never lose an increment. (flock is
// per open file description, so two handles — or two processes —
// exclude each other; the old Stat-and-break scheme could race two
// breakers into the section concurrently.)
func TestHALeaseLockMutualExclusion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "primary.lease")
	a := openHALease(path, "a", time.Second, nil)
	b := openHALease(path, "b", time.Second, nil)
	ctr := filepath.Join(dir, "counter")
	if err := os.WriteFile(ctr, []byte("0"), 0o644); err != nil {
		t.Fatal(err)
	}

	const goroutines, rounds = 8, 25
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		l := a
		if i%2 == 1 {
			l = b
		}
		wg.Add(1)
		go func(l *haLease) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := l.withLock(func() error {
					data, err := os.ReadFile(ctr)
					if err != nil {
						return err
					}
					n, err := strconv.Atoi(strings.TrimSpace(string(data)))
					if err != nil {
						return err
					}
					return os.WriteFile(ctr, []byte(strconv.Itoa(n+1)), 0o644)
				}); err != nil {
					t.Errorf("withLock: %v", err)
					return
				}
			}
		}(l)
	}
	wg.Wait()

	data, err := os.ReadFile(ctr)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := strconv.Atoi(strings.TrimSpace(string(data))); got != goroutines*rounds {
		t.Fatalf("counter = %d after %d locked increments — lost updates mean the lock is not mutually exclusive", got, goroutines*rounds)
	}
}

// TestRepHubTrimsAckedRecords: acknowledged records leave the hub's
// retained window (no unbounded growth), offsets stay logical across
// the trim, and an offset below the window is reported as trimmed
// rather than silently served from the wrong position.
func TestRepHubTrimsAckedRecords(t *testing.T) {
	h := newRepHub()
	h.setBase(1)
	for i := 0; i < 100; i++ {
		h.publish("service", []byte(strconv.Itoa(i)))
	}
	h.ack("service", 100)
	if lag := h.lag(); lag != 0 {
		t.Fatalf("lag after full ack = %d, want 0", lag)
	}
	st := h.stream("service")
	st.mu.Lock()
	retained, start := len(st.recs), st.start
	st.mu.Unlock()
	if retained != 0 || start != 100 {
		t.Fatalf("after ack(100): retained=%d start=%d, want 0 and 100", retained, start)
	}

	h.publish("service", []byte("fresh"))
	recs, _, _, ok := st.from(100)
	if !ok || len(recs) != 1 || string(recs[0]) != "fresh" {
		t.Fatalf("from(100) after trim = (%d recs, ok=%v), want the single post-trim record", len(recs), ok)
	}
	if _, _, _, ok := st.from(50); ok {
		t.Fatal("from(50) reported ok for a trimmed offset — must demand a rebase instead")
	}

	h.rebase("service", [][]byte{[]byte("snap")})
	recs, _, gen, ok := st.from(0)
	if !ok || len(recs) != 1 || string(recs[0]) != "snap" || gen != 1 {
		t.Fatalf("after rebase: recs=%d gen=%d ok=%v, want the snapshot at offset 0 under gen 1", len(recs), gen, ok)
	}
	if hist := h.historyOf("service"); hist != "1.1" {
		t.Fatalf("history after rebase = %q, want 1.1", hist)
	}
}

// TestHAAssignIntentJournalFailureBlocksDispatch: when the durable
// assign intent cannot be written, the dispatch RPC must never leave
// the coordinator — otherwise a crash between RPC and record reopens
// the double-run window the intent exists to close.
func TestHAAssignIntentJournalFailureBlocksDispatch(t *testing.T) {
	var rpcs atomic.Int64
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			rpcs.Add(1)
		}
		httpError(w, http.StatusInternalServerError, "unexpected RPC")
	}))
	defer fake.Close()

	_, coord := startCoordinator(t, Options{
		Service:      service.Options{QueueSize: 8, Workers: 2, MaxAttempts: 1, DataDir: t.TempDir(), NoSync: true},
		LeaseTTL:     time.Hour,
		PollInterval: 2 * time.Millisecond,
	})
	registerWorker(t, coord.URL, fake.URL)

	// Arm after registration so only the assign intent (and harmless
	// service-journal appends, which are counted-not-escalated) fail.
	if err := failpoint.Enable("journal/append", "error(disk gone)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisableAll)

	st, resp := submitSpec(t, coord.URL, testSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	got := waitState(t, coord.URL, st.ID, service.StateFailed, 10*time.Second)
	if !strings.Contains(got.Error, "intent not durable") {
		t.Fatalf("job error = %q, want the assign-intent refusal", got.Error)
	}
	if n := rpcs.Load(); n != 0 {
		t.Fatalf("worker saw %d dispatch RPCs despite the intent never becoming durable, want 0", n)
	}
	stats := serverStats(t, coord.URL)
	if stats.Cluster["journal_errors"] == 0 {
		t.Fatal("cluster journal_errors = 0, want the failed intent append counted")
	}
}

// TestHARestartedPrimaryDefersToPromotedStandby: a designated primary
// that crashes and is auto-restarted while the standby has promoted
// must join as standby instead of re-acquiring the lease — stealing it
// back would fence the promoted node and wipe the only complete history
// of work acknowledged during the outage.
func TestHARestartedPrimaryDefersToPromotedStandby(t *testing.T) {
	const ttl = 150 * time.Millisecond
	root := t.TempDir()
	lease := filepath.Join(root, "primary.lease")
	mkOpts := func(sub string, standby bool, peer string) HAOptions {
		return HAOptions{
			Coordinator: Options{
				Service:      service.Options{QueueSize: 16, Workers: 2, DataDir: filepath.Join(root, sub), NoSync: true},
				LeaseTTL:     time.Hour,
				PollInterval: 2 * time.Millisecond,
			},
			Standby:   standby,
			Peer:      peer,
			LeasePath: lease,
			LeaseTTL:  ttl,
			Logf:      t.Logf,
		}
	}
	boot := func(opts HAOptions) (*HANode, *httptest.Server) {
		n, err := NewHANode(opts)
		if err != nil {
			t.Fatalf("NewHANode: %v", err)
		}
		n.Start()
		ts := httptest.NewServer(n)
		t.Cleanup(func() {
			ts.Close()
			dctx, cancel := context.WithCancel(context.Background())
			cancel()
			n.Drain(dctx)
		})
		return n, ts
	}

	p, tsP := boot(mkOpts("a", false, ""))
	s, tsS := boot(mkOpts("b", true, tsP.URL))

	crashHANode(p, tsP)
	waitCond(t, 10*time.Second, "standby promotion", func() bool { return s.Role() == HAPrimary })
	epoch := s.currentEpoch()

	// systemd restarts the old primary with its usual flags — designated
	// primary, same data dir — while the promoted peer is serving.
	p2, err := NewHANode(mkOpts("a", false, tsS.URL))
	if err != nil {
		t.Fatalf("restarted primary: %v", err)
	}
	if got := p2.Role(); got != HAStandby {
		t.Fatalf("restarted primary role = %s, want standby (deference to the promoted peer)", got)
	}
	p2.Start()
	t.Cleanup(func() {
		dctx, cancel := context.WithCancel(context.Background())
		cancel()
		p2.Drain(dctx)
	})

	// Several TTLs later the promoted node must still be the primary on
	// the same epoch — nothing stole the lease back.
	time.Sleep(3 * ttl)
	if got := s.Role(); got != HAPrimary {
		t.Fatalf("promoted standby role = %s after old primary restarted, want primary", got)
	}
	if got := s.currentEpoch(); got != epoch {
		t.Fatalf("lease epoch moved %d -> %d: the restarted primary stole the lease", epoch, got)
	}
}

// readServiceFinishIDs reads a service journal's segment files directly
// and returns the IDs of jobs with a done finish record.
func readServiceFinishIDs(t *testing.T, dir string) map[string]bool {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	// Mirrors the service journal record's wire shape (the fields this
	// assertion needs).
	type svcRecord struct {
		Type  string `json:"type"`
		ID    string `json:"id"`
		State string `json:"state"`
	}
	out := make(map[string]bool)
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		rd := bytes.NewReader(data)
		for {
			payload, err := journal.ReadFrame(rd)
			if err != nil {
				if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
					break
				}
				t.Fatalf("read %s: %v", name, err)
			}
			if payload == nil {
				continue
			}
			var rec svcRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				t.Fatalf("decode %s: %v", name, err)
			}
			if rec.Type == "finish" && rec.State == "done" {
				out[rec.ID] = true
			}
		}
	}
	return out
}

// TestHAFollowerResyncAcrossPrimaryRestarts reproduces the reviewed
// divergence: every primary boot replays then COMPACTS its journal, so
// after a second boot the on-disk record count is smaller than what the
// previous incarnation's hub served — a follower resuming by raw count
// would silently skip records. With history-tagged streams the follower
// must instead wipe, resync, and end up holding the finish record of
// every job across all boots.
func TestHAFollowerResyncAcrossPrimaryRestarts(t *testing.T) {
	const ttl = 5 * time.Second // long: restart gaps never trip the standby's silence window
	root := t.TempDir()
	lease := filepath.Join(root, "primary.lease")

	_, worker := startWorker(t, func(ctx context.Context, j *service.Job) error {
		j.SetResult(&core.Report{Detected: true}, nil)
		return nil
	})

	// The primary must come back on the SAME address each boot so the
	// standby's followers reconnect to it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	primaryAddr := ln.Addr().String()
	primaryURL := "http://" + primaryAddr

	mkPrimary := func(ln net.Listener) (*HANode, *httptest.Server) {
		n, err := NewHANode(HAOptions{
			Coordinator: Options{
				Service:      service.Options{QueueSize: 16, Workers: 2, DataDir: filepath.Join(root, "a"), NoSync: true},
				LeaseTTL:     time.Hour,
				PollInterval: 2 * time.Millisecond,
			},
			LeasePath: lease,
			LeaseTTL:  ttl,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatalf("NewHANode(primary): %v", err)
		}
		n.Start()
		ts := httptest.NewUnstartedServer(n)
		ts.Listener.Close()
		ts.Listener = ln
		ts.Start()
		return n, ts
	}
	p, tsP := mkPrimary(ln)

	s, err := NewHANode(HAOptions{
		Coordinator: Options{
			Service:      service.Options{QueueSize: 16, Workers: 2, DataDir: filepath.Join(root, "b"), NoSync: true},
			LeaseTTL:     time.Hour,
			PollInterval: 2 * time.Millisecond,
		},
		Standby:   true,
		Peer:      primaryURL,
		LeasePath: lease,
		LeaseTTL:  ttl,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("NewHANode(standby): %v", err)
	}
	s.Start()
	t.Cleanup(func() {
		dctx, cancel := context.WithCancel(context.Background())
		cancel()
		s.Drain(dctx)
	})

	var ids []string
	submitAndFinish := func(n int) {
		for i := 0; i < n; i++ {
			st, resp := submitSpec(t, primaryURL, testSpec)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit: HTTP %d", resp.StatusCode)
			}
			ids = append(ids, st.ID)
			waitState(t, primaryURL, st.ID, service.StateDone, 10*time.Second)
		}
	}
	waitLagZero := func() {
		waitCond(t, 10*time.Second, "replication catch-up", func() bool {
			lag, _ := haStat(t, primaryURL, "ha_peer_lag_records").(float64)
			return lag == 0
		})
	}

	registerWorker(t, primaryURL, worker.URL)
	submitAndFinish(2)
	waitLagZero()

	for boot := 0; boot < 2; boot++ {
		crashHANode(p, tsP)
		ln, err := net.Listen("tcp", primaryAddr)
		if err != nil {
			t.Fatalf("re-listen boot %d: %v", boot+2, err)
		}
		p, tsP = mkPrimary(ln)
		// The new incarnation is on the same address. The shared keep-alive
		// pool may still hold (or asynchronously regain, via the standby's
		// reconnecting follower) sockets to the dead incarnation, and POSTs
		// are not auto-retried on a stale conn — so register over a fresh
		// non-pooled connection, with a short retry, then flush the pool
		// for the helpers that follow.
		registerWorkerFresh(t, primaryURL, worker.URL)
		http.DefaultTransport.(*http.Transport).CloseIdleConnections()
		submitAndFinish(1)
		waitLagZero()
	}
	// Drain before closing the listener: the standby's follower streams
	// are long-lived requests that only end once h.stop closes, and
	// httptest's Close waits for in-flight handlers.
	t.Cleanup(func() {
		dctx, cancel := context.WithCancel(context.Background())
		cancel()
		p.Drain(dctx)
		tsP.Close()
	})

	got := readServiceFinishIDs(t, filepath.Join(root, "b", "journal"))
	for _, id := range ids {
		if !got[id] {
			t.Fatalf("standby journal copy is missing the finish record for %s across restarts (has %v)", id, got)
		}
	}
}

// TestHAFreshStandbyResyncAfterTrim: once the original standby has
// acknowledged everything (and the hub trimmed its window), a BRAND-NEW
// standby joining from offset zero must be re-seeded via snapshot
// rebase — and a later orderly handover must leave it serving every
// finished job with its report.
func TestHAFreshStandbyResyncAfterTrim(t *testing.T) {
	const ttl = 150 * time.Millisecond
	root := t.TempDir()
	lease := filepath.Join(root, "primary.lease")
	mk := func(sub string, standby bool, peer string) (*HANode, *httptest.Server) {
		n, err := NewHANode(HAOptions{
			Coordinator: Options{
				Service:      service.Options{QueueSize: 16, Workers: 2, DataDir: filepath.Join(root, sub), NoSync: true},
				LeaseTTL:     time.Hour,
				PollInterval: 2 * time.Millisecond,
			},
			Standby:   standby,
			Peer:      peer,
			LeasePath: lease,
			LeaseTTL:  ttl,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatalf("NewHANode(%s): %v", sub, err)
		}
		n.Start()
		ts := httptest.NewServer(n)
		t.Cleanup(func() {
			ts.Close()
			dctx, cancel := context.WithCancel(context.Background())
			cancel()
			n.Drain(dctx)
		})
		return n, ts
	}
	_, worker := startWorker(t, func(ctx context.Context, j *service.Job) error {
		j.SetResult(&core.Report{Detected: true}, nil)
		return nil
	})
	p, tsP := mk("a", false, "")
	s1, _ := mk("b", true, tsP.URL)
	registerWorker(t, tsP.URL, worker.URL)

	var ids []string
	for i := 0; i < 2; i++ {
		st, resp := submitSpec(t, tsP.URL, testSpec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
		waitState(t, tsP.URL, st.ID, service.StateDone, 10*time.Second)
	}
	waitCond(t, 10*time.Second, "replication catch-up", func() bool {
		lag, _ := haStat(t, tsP.URL, "ha_peer_lag_records").(float64)
		return lag == 0
	})
	// Full ack means the hub trimmed the acknowledged prefix.
	waitCond(t, 10*time.Second, "hub trim after full ack", func() bool {
		st := p.hub.stream("service")
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.start > 0 && len(st.recs) == 0
	})

	// The original standby leaves; a fresh one (empty data dir) joins.
	dctx, cancel := context.WithCancel(context.Background())
	cancel()
	s1.Drain(dctx)
	s2, tsS2 := mk("c", true, tsP.URL)

	waitCond(t, 10*time.Second, "fresh standby resync via snapshot rebase", func() bool {
		lag, _ := haStat(t, tsP.URL, "ha_peer_lag_records").(float64)
		return lag == 0
	})

	// Orderly handover: the release lets the fresh standby take over
	// immediately, and it must serve the full (snapshot-derived) history.
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := p.Drain(hctx); err != nil {
		t.Fatalf("primary drain: %v", err)
	}
	hcancel()
	tsP.Close()
	waitCond(t, 10*time.Second, "fresh standby promotion", func() bool { return s2.Role() == HAPrimary })
	for _, id := range ids {
		got := getStatus(t, tsS2.URL, id)
		if got.State != service.StateDone || got.Report == nil {
			t.Fatalf("job %s on promoted fresh standby = %q (report %v), want done with report", id, got.State, got.Report != nil)
		}
	}
}
