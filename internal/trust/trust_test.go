package trust

import (
	"testing"

	"superpose/internal/netlist"
	"superpose/internal/scan"
	"superpose/internal/sim"
	"superpose/internal/stats"
)

func TestGenerateSmall(t *testing.T) {
	n, err := Generate(Params{Name: "g1", PIs: 4, POs: 6, FFs: 12, Comb: 120, Levels: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := n.ComputeStats()
	if s.PIs != 4 || s.FFs != 12 || s.POs != 6 {
		t.Errorf("stats = %+v", s)
	}
	// Comb gates = requested + FF D-pin buffers.
	if s.Combinational != 120+12 {
		t.Errorf("comb = %d, want 132", s.Combinational)
	}
	if s.Depth < 3 {
		t.Errorf("depth = %d, too shallow", s.Depth)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Name: "g", PIs: 3, POs: 3, FFs: 8, Comb: 60, Levels: 4, Seed: 7}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumGates() != b.NumGates() {
		t.Fatal("gate counts differ")
	}
	for id := range a.Gates {
		if a.Gates[id].Type != b.Gates[id].Type || len(a.Gates[id].Fanin) != len(b.Gates[id].Fanin) {
			t.Fatal("same params+seed must reproduce the circuit")
		}
		for k := range a.Gates[id].Fanin {
			if a.Gates[id].Fanin[k] != b.Gates[id].Fanin[k] {
				t.Fatal("fanin wiring differs")
			}
		}
	}
	c, err := Generate(Params{Name: "g", PIs: 3, POs: 3, FFs: 8, Comb: 60, Levels: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for id := range a.Gates {
		if a.Gates[id].Type != c.Gates[id].Type {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ (type sequence identical)")
	}
}

func TestGenerateSimulates(t *testing.T) {
	n, err := Generate(Params{Name: "gsim", PIs: 5, POs: 5, FFs: 16, Comb: 200, Levels: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The circuit must be simulatable and non-constant on its outputs.
	probs := sim.SignalProbabilities(n, 64*16, 11)
	nonConst := 0
	for _, po := range n.POs {
		if probs[po] > 0 && probs[po] < 1 {
			nonConst++
		}
	}
	if nonConst == 0 {
		t.Error("all primary outputs constant — generator produced dead logic")
	}
}

func TestGenerateLaunchActivity(t *testing.T) {
	// A random LOS pattern must create combinational activity, not just
	// scan-cell toggles: the generated cloud must respond to cell changes.
	n, err := Generate(Params{Name: "glaunch", PIs: 4, POs: 4, FFs: 20, Comb: 200, Levels: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ch := scan.Configure(n, 2)
	e := scan.NewEngine(ch)
	rng := stats.NewRNG(13)
	p := ch.RandomPattern(rng)
	e.Launch([]*scan.Pattern{p}, scan.LOS)
	total := e.ToggleCount(0)
	cells := 0
	for _, id := range e.Toggles(0) {
		if n.Gates[id].Type == netlist.DFF {
			cells++
		}
	}
	if total <= cells {
		t.Errorf("no combinational activity: %d toggles, %d are cells", total, cells)
	}
}

func TestGenerateRejectsImpossible(t *testing.T) {
	if _, err := Generate(Params{Name: "bad", PIs: 1, POs: 1, FFs: 1, Comb: 1, Levels: 5}); err == nil {
		t.Error("expected error for Comb < Levels")
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite(1.0)
	if len(suite) != 3 {
		t.Fatalf("suite = %d benchmarks", len(suite))
	}
	trojans := 0
	for _, b := range suite {
		trojans += len(b.Trojans)
	}
	if trojans != 5 {
		t.Errorf("suite has %d trojan variants, want 5", trojans)
	}
	if len(Cases()) != 5 {
		t.Error("Cases must list 5 entries")
	}
	if Cases()[0].String() != "s35932-T200" {
		t.Errorf("first case = %s", Cases()[0])
	}
	if len(Names()) != 5 {
		t.Error("Names must list 5 entries")
	}
}

func TestBuildCaseSmallScale(t *testing.T) {
	// Scale 0.02 keeps the test fast while exercising the whole pipeline.
	inst, err := Build(Case{"s38417", "T100"}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Host == nil || inst.Infected == nil {
		t.Fatal("incomplete instance")
	}
	if len(inst.TrojanGates) < 3 {
		t.Errorf("trojan gates = %d, want >= 3 (3 taps)", len(inst.TrojanGates))
	}
	// Host IDs preserved.
	for id := 0; id < inst.Host.NumGates(); id++ {
		if inst.Host.NameOf(id) != inst.Infected.NameOf(id) {
			t.Fatal("host IDs not preserved in infected netlist")
		}
	}
}

func TestBuildUnknownCase(t *testing.T) {
	if _, err := Build(Case{"s99999", "T100"}, 0.05); err == nil {
		t.Error("unknown benchmark must error")
	}
	if _, err := Build(Case{"s35932", "T777"}, 0.05); err == nil {
		t.Error("unknown trojan must error")
	}
}

func TestScaledParams(t *testing.T) {
	p := Params{PIs: 100, POs: 100, FFs: 100, Comb: 1000, Levels: 5, Scale: 0.1}.scaled()
	if p.PIs != 10 || p.Comb != 100 {
		t.Errorf("scaled = %+v", p)
	}
	// Scale never drops a dimension to zero.
	q := Params{PIs: 3, POs: 3, FFs: 3, Comb: 30, Levels: 3, Scale: 0.01}.scaled()
	if q.PIs < 1 || q.POs < 1 || q.FFs < 1 || q.Comb < 1 {
		t.Errorf("zero dimension after scaling: %+v", q)
	}
}

func TestTriggerIsRarelyActive(t *testing.T) {
	// The defining Trojan property: under random stimuli the trigger
	// almost never fires.
	inst, err := Build(Case{"s38417", "T200"}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	probs := sim.SignalProbabilities(inst.Infected, 64*64, 77)
	if p := probs[inst.TriggerOut]; p > 0.05 {
		t.Errorf("trigger fires with probability %v — not a stealthy Trojan", p)
	}
}

func TestAllCasesBuildAtTestScale(t *testing.T) {
	// Every Table I case must materialize cleanly at a reduced scale.
	for _, c := range Cases() {
		inst, err := Build(c, 0.05)
		if err != nil {
			t.Errorf("%s: %v", c, err)
			continue
		}
		hostStats := inst.Host.ComputeStats()
		if hostStats.FFs < 10 {
			t.Errorf("%s: host too small: %v", c, hostStats)
		}
		if len(inst.TrojanGates) == 0 {
			t.Errorf("%s: no trojan gates", c)
		}
	}
}

// TestSuiteDeterminismPinned pins the exact structure of the generated
// suite: a change to the generator's algorithm or seeds silently changes
// every published number in EXPERIMENTS.md, so it must fail a test first.
func TestSuiteDeterminismPinned(t *testing.T) {
	// Structural fingerprint: FNV-1a over the gate list of each host.
	fingerprint := func(c Case) uint64 {
		inst, err := Build(c, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		h := uint64(1469598103934665603)
		mix := func(v uint64) {
			h ^= v
			h *= 1099511628211
		}
		for id, g := range inst.Infected.Gates {
			mix(uint64(id))
			mix(uint64(g.Type))
			for _, f := range g.Fanin {
				mix(uint64(f))
			}
		}
		return h
	}
	pinned := map[string]uint64{}
	for _, c := range Cases() {
		pinned[c.String()] = fingerprint(c)
	}
	// Regenerate: identical.
	for _, c := range Cases() {
		if got := fingerprint(c); got != pinned[c.String()] {
			t.Errorf("%s: generation not deterministic", c)
		}
	}
}

func TestGateMixRoughlyMatchesWeights(t *testing.T) {
	// The generator's type distribution should track the declared mix
	// within sampling tolerance: NAND-dominant, XOR-class rare.
	n, err := Generate(Params{Name: "mix", PIs: 8, POs: 8, FFs: 40, Comb: 4000, Levels: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := n.ComputeStats()
	frac := func(t netlist.GateType) float64 {
		return float64(s.ByType[t]) / 4000
	}
	if frac(netlist.Nand) < 0.15 || frac(netlist.Nand) > 0.33 {
		t.Errorf("NAND fraction = %.3f", frac(netlist.Nand))
	}
	if frac(netlist.Xor)+frac(netlist.Xnor) > 0.15 {
		t.Errorf("XOR-class fraction = %.3f too high", frac(netlist.Xor)+frac(netlist.Xnor))
	}
	// BUFs include the FF D-pin drivers; subtract those.
	bufFrac := float64(s.ByType[netlist.Buf]-40) / 4000
	if bufFrac > 0.10 {
		t.Errorf("BUF fraction = %.3f too high", bufFrac)
	}
}
