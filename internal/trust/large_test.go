package trust

import (
	"bytes"
	"reflect"
	"testing"

	"superpose/internal/bench"
	"superpose/internal/netlist"
)

// The capacity-tier generator must agree with itself across its two
// consumers: text emission re-parsed through the streaming parser and
// direct StreamBuilder construction produce bit-identical netlists,
// IDs included.
func TestLargeRoundTripBitIdentical(t *testing.T) {
	p := SizedLargeParams(20000, 0xfeed)
	var buf bytes.Buffer
	if err := EmitLarge(&buf, p); err != nil {
		t.Fatal(err)
	}
	parsed, err := bench.ParseStream(bytes.NewReader(buf.Bytes()), p.Name)
	if err != nil {
		t.Fatal(err)
	}
	built, err := GenerateLarge(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed.Gates, built.Gates) {
		t.Fatal("gate arrays differ between parsed and built netlists")
	}
	if !reflect.DeepEqual(parsed.Names, built.Names) {
		t.Fatal("name arrays differ")
	}
	if !reflect.DeepEqual(parsed.PIs, built.PIs) || !reflect.DeepEqual(parsed.POs, built.POs) ||
		!reflect.DeepEqual(parsed.FFs, built.FFs) {
		t.Fatal("PI/PO/FF orders differ")
	}
	if !reflect.DeepEqual(parsed.TopoOrder(), built.TopoOrder()) {
		t.Fatal("topological orders differ")
	}

	// And the legacy parser agrees with the streaming one on the text.
	legacy, err := bench.Parse(bytes.NewReader(buf.Bytes()), p.Name)
	if err != nil {
		t.Fatal(err)
	}
	if d := netlist.Diff(parsed, legacy); d != "" {
		t.Fatalf("streaming and legacy parses of the emitted text differ: %s", d)
	}
}

// Determinism: the same params generate the same netlist.
func TestLargeDeterministic(t *testing.T) {
	p := SizedLargeParams(5000, 7)
	a, err := GenerateLarge(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateLarge(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Gates, b.Gates) || !reflect.DeepEqual(a.Names, b.Names) {
		t.Fatal("generation is not deterministic")
	}
}

// Generator realism: at 10⁵ gates the shape statistics must land in the
// configured bands — logic depth near the Levels target, ISCAS-like
// mean fanin, and a fanout distribution with a busy-but-bounded tail.
func TestLargeRealismBands(t *testing.T) {
	if testing.Short() {
		t.Skip("10^5-gate generation in -short mode")
	}
	const gates = 100000
	p := SizedLargeParams(gates, 0xabc)
	n, err := GenerateLarge(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.NumGates(); got != p.TotalGates() || got < gates-2 || got > gates+2 {
		t.Fatalf("total gates = %d, want %d (target %d)", got, p.TotalGates(), gates)
	}
	if got, want := len(n.FFs), p.FFs; got != want {
		t.Fatalf("FFs = %d, want %d", got, want)
	}
	ffFrac := float64(len(n.FFs)) / float64(n.NumGates())
	if ffFrac < 0.05 || ffFrac > 0.10 {
		t.Errorf("FF fraction %.3f outside the ISCAS-like [0.05, 0.10] band", ffFrac)
	}

	// Depth: every rank must be populated; the D-pin buffers add one.
	if d := n.Depth(); d < p.Levels || d > p.Levels+1 {
		t.Errorf("depth = %d, want within [%d, %d]", d, p.Levels, p.Levels+1)
	}
	if p.Levels < 14 || p.Levels > 20 {
		t.Errorf("levels target %d at 10^5 gates outside the realistic [14, 20] band", p.Levels)
	}

	// Mean combinational fanin in the 2..4-input cell mix band.
	faninSum, combGates := 0, 0
	for _, g := range n.Gates {
		if g.Type.IsSource() {
			continue
		}
		faninSum += len(g.Fanin)
		combGates++
	}
	meanFanin := float64(faninSum) / float64(combGates)
	if meanFanin < 1.8 || meanFanin > 3.2 {
		t.Errorf("mean fanin %.2f outside [1.8, 3.2]", meanFanin)
	}

	// Fanout: heavy-hitter sources exist (shared locals) but no net
	// should drive an implausible fraction of the netlist.
	maxFanout := 0
	for id := 0; id < n.NumGates(); id++ {
		if fo := len(n.Fanouts(id)); fo > maxFanout {
			maxFanout = fo
		}
	}
	if maxFanout < 8 {
		t.Errorf("max fanout %d suspiciously uniform", maxFanout)
	}
	if maxFanout > n.NumGates()/10 {
		t.Errorf("max fanout %d exceeds 10%% of the netlist", maxFanout)
	}

	// The host must be usable by the detection flow: scan cells and POs.
	if len(n.POs) != p.POs {
		t.Errorf("POs = %d, want %d", len(n.POs), p.POs)
	}
	if got := len(n.PIs) + len(n.FFs); got != p.PIs+p.FFs {
		t.Errorf("sources = %d, want %d", got, p.PIs+p.FFs)
	}
}

func TestSizedLargeParamsScaling(t *testing.T) {
	for _, tc := range []struct {
		gates      int
		minL, maxL int
	}{
		{10000, 12, 12},
		{100000, 16, 16},
		{1000000, 20, 20},
		{10000000, 24, 24},
	} {
		p := SizedLargeParams(tc.gates, 1)
		if p.Levels < tc.minL || p.Levels > tc.maxL {
			t.Errorf("gates=%d: levels=%d, want [%d,%d]", tc.gates, p.Levels, tc.minL, tc.maxL)
		}
		if p.TotalGates() != tc.gates {
			t.Errorf("gates=%d: TotalGates=%d", tc.gates, p.TotalGates())
		}
		if err := p.validate(); err != nil {
			t.Errorf("gates=%d: %v", tc.gates, err)
		}
	}
}
