// Package trust provides the benchmark suite of the paper's evaluation:
// the five ISCAS gate-level combinational Trojan benchmarks of Trust-Hub
// (s35932-T200/T300, s38417-T100/T200, s38584-T100).
//
// The original netlists are not redistributable, so the hosts here are
// deterministic synthetic circuits matched to the published scale of the
// real designs (flip-flop, primary-input/output and gate counts, shallow
// ISCAS-like logic depth) and the Trojans follow the Trust-Hub structure:
// an AND-tree trigger over rare-valued internal nets plus an XOR payload.
// DESIGN.md §2 documents why this substitution preserves the behaviour the
// method depends on. Every construction is seeded and reproducible.
package trust

import (
	"fmt"
	"sort"

	"superpose/internal/netlist"
	"superpose/internal/stats"
	"superpose/internal/trojan"
)

// Params describes a synthetic full-scan host circuit.
type Params struct {
	Name   string
	PIs    int
	POs    int
	FFs    int
	Comb   int // combinational gate count
	Levels int // logic depth target
	Seed   uint64
	// Scale multiplies PIs/POs/FFs/Comb; 0 means 1.0. Use small scales for
	// fast tests, 1.0 for the published-size experiments.
	Scale float64
}

func (p Params) scaled() Params {
	s := p.Scale
	if s == 0 {
		s = 1
	}
	scale := func(v int) int {
		w := int(float64(v) * s)
		if w < 1 {
			w = 1
		}
		return w
	}
	p.PIs, p.POs, p.FFs, p.Comb = scale(p.PIs), scale(p.POs), scale(p.FFs), scale(p.Comb)
	if p.Levels < 2 {
		p.Levels = 2
	}
	return p
}

// gate mix loosely matched to the ISCAS-89 circuits: NAND/NOR-dominant
// with a sprinkling of wide AND/OR, inverters and a little XOR.
var mix = []struct {
	typ    netlist.GateType
	weight int
	fanin  int // 0: choose 2..4
}{
	{netlist.Nand, 24, 0},
	{netlist.Nor, 18, 0},
	{netlist.And, 16, 0},
	{netlist.Or, 14, 0},
	{netlist.Not, 16, 1},
	{netlist.Buf, 4, 1},
	{netlist.Xor, 5, 2},
	{netlist.Xnor, 3, 2},
}

var mixTotal = func() int {
	t := 0
	for _, m := range mix {
		t += m.weight
	}
	return t
}()

// Generate builds a deterministic synthetic full-scan circuit.
//
// Gates are laid out in Levels ranks. Each gate draws its fanins from the
// immediately preceding ranks (with a small long-range fraction), giving
// the shallow, locally connected structure of the ISCAS scan designs.
// Flip-flop D pins and primary outputs are driven from the last ranks.
func Generate(p Params) (*netlist.Netlist, error) {
	p = p.scaled()
	if p.Comb < p.Levels {
		return nil, fmt.Errorf("trust: %q: %d gates cannot fill %d levels", p.Name, p.Comb, p.Levels)
	}
	rng := stats.NewRNG(p.Seed)
	b := netlist.NewBuilder(p.Name)

	var sources []string // PI and FF output names
	for i := 0; i < p.PIs; i++ {
		name := fmt.Sprintf("pi%d", i)
		if _, err := b.AddInput(name); err != nil {
			return nil, err
		}
		sources = append(sources, name)
	}
	dPin := func(i int) string { return fmt.Sprintf("d%d", i) }
	for i := 0; i < p.FFs; i++ {
		name := fmt.Sprintf("ff%d", i)
		if _, err := b.AddDFF(name, dPin(i)); err != nil {
			return nil, err
		}
		sources = append(sources, name)
	}

	// Rank sizes: spread Comb gates evenly, leaving the remainder on the
	// earliest ranks (wider near the inputs, like the real circuits).
	rankSize := make([]int, p.Levels)
	for i := range rankSize {
		rankSize[i] = p.Comb / p.Levels
	}
	for i := 0; i < p.Comb%p.Levels; i++ {
		rankSize[i]++
	}

	ranks := make([][]string, p.Levels)
	gateNum := 0
	for lvl := 0; lvl < p.Levels; lvl++ {
		// Candidate fanin pool: previous two ranks plus the sources, with
		// sources dominating early and fading later.
		for g := 0; g < rankSize[lvl]; g++ {
			m := pickMix(rng)
			nin := m.fanin
			if nin == 0 {
				nin = 2 + rng.Intn(3) // 2..4
			}
			fanins := make([]string, 0, nin)
			used := make(map[string]bool, nin)
			for len(fanins) < nin {
				f := pickFanin(rng, sources, ranks, lvl)
				if used[f] {
					// Duplicate fanins are legal but uninteresting; retry a
					// few times, then accept to guarantee termination.
					f = pickFanin(rng, sources, ranks, lvl)
					if used[f] {
						continue
					}
				}
				used[f] = true
				fanins = append(fanins, f)
			}
			name := fmt.Sprintf("n%d_%d", lvl, gateNum)
			gateNum++
			if _, err := b.AddGate(name, m.typ, fanins...); err != nil {
				return nil, err
			}
			ranks[lvl] = append(ranks[lvl], name)
		}
	}

	// Drive the D pins from the last third of the ranks.
	late := lateGates(ranks)
	for i := 0; i < p.FFs; i++ {
		src := late[rng.Intn(len(late))]
		if _, err := b.AddGate(dPin(i), netlist.Buf, src); err != nil {
			return nil, err
		}
	}
	// Primary outputs from late gates too.
	for i := 0; i < p.POs; i++ {
		b.MarkOutput(late[rng.Intn(len(late))])
	}

	return b.Build()
}

func pickMix(rng *stats.RNG) struct {
	typ    netlist.GateType
	weight int
	fanin  int
} {
	r := rng.Intn(mixTotal)
	for _, m := range mix {
		if r < m.weight {
			return m
		}
		r -= m.weight
	}
	return mix[0]
}

// pickFanin selects a fanin net for a gate at rank lvl: mostly the
// previous rank, sometimes two back, sometimes a source — matching the
// local-cloud structure between scan cells that Figure 1 of the paper
// sketches.
func pickFanin(rng *stats.RNG, sources []string, ranks [][]string, lvl int) string {
	roll := rng.Intn(100)
	switch {
	case lvl == 0 || roll < 15+60/(lvl+1): // rank 0 and a fading fraction: sources
		return sources[rng.Intn(len(sources))]
	case lvl >= 2 && roll >= 85 && len(ranks[lvl-2]) > 0:
		return ranks[lvl-2][rng.Intn(len(ranks[lvl-2]))]
	default:
		prev := ranks[lvl-1]
		if len(prev) == 0 {
			return sources[rng.Intn(len(sources))]
		}
		return prev[rng.Intn(len(prev))]
	}
}

func lateGates(ranks [][]string) []string {
	start := (2 * len(ranks)) / 3
	var out []string
	for _, r := range ranks[start:] {
		out = append(out, r...)
	}
	if len(out) == 0 {
		for _, r := range ranks {
			out = append(out, r...)
		}
	}
	return out
}

// Benchmark is one suite entry: a host plus its Trojan variants.
type Benchmark struct {
	Name    string
	Params  Params
	Trojans map[string]TrojanParams
}

// TrojanParams sizes a Trust-Hub-style Trojan: the trigger tap count and
// tree arity set the Trojan gate count, matching the published variants'
// approximate footprints.
type TrojanParams struct {
	Taps      int
	TreeArity int
	// Payloads is the number of victim nets corrupted (default 1; the
	// larger Trust-Hub variants tap several).
	Payloads int
	// RareProbCap bounds the tap signal probability; taps come from the
	// rarest nets below the cap.
	RareProbCap float64
	Seed        uint64
}

// Suite returns the five-benchmark evaluation suite at the given scale
// (1.0 = published size; small values for fast tests). Host parameters
// follow the real circuits' published statistics: s35932 (1728 FFs, 35
// PIs, 320 POs, ~16k gates), s38417 (1636 FFs, 28 PIs, 106 POs, ~22k
// gates), s38584 (1426 FFs, 38 PIs, 304 POs, ~19k gates).
func Suite(scale float64) []Benchmark {
	return []Benchmark{
		{
			Name:   "s35932",
			Params: Params{Name: "s35932", PIs: 35, POs: 320, FFs: 1728, Comb: 16065, Levels: 10, Seed: 0x35932, Scale: scale},
			Trojans: map[string]TrojanParams{
				// T200: compact comparator trigger (~12 Trojan gates).
				"T200": {Taps: 8, TreeArity: 2, RareProbCap: 0.2, Seed: 0x200},
				// T300: wider trigger, two payload bits (~28 Trojan gates).
				"T300": {Taps: 16, TreeArity: 2, Payloads: 2, RareProbCap: 0.25, Seed: 0x300},
			},
		},
		{
			Name:   "s38417",
			Params: Params{Name: "s38417", PIs: 28, POs: 106, FFs: 1636, Comb: 22179, Levels: 12, Seed: 0x38417, Scale: scale},
			Trojans: map[string]TrojanParams{
				// T100: the smallest Trojan of the suite (~4 gates).
				"T100": {Taps: 3, TreeArity: 2, RareProbCap: 0.15, Seed: 0x100},
				// T200: mid-size (~8 gates).
				"T200": {Taps: 6, TreeArity: 2, RareProbCap: 0.2, Seed: 0x201},
			},
		},
		{
			Name:   "s38584",
			Params: Params{Name: "s38584", PIs: 38, POs: 304, FFs: 1426, Comb: 19253, Levels: 11, Seed: 0x38584, Scale: scale},
			Trojans: map[string]TrojanParams{
				// T100: mid-size (~7 gates).
				"T100": {Taps: 5, TreeArity: 2, RareProbCap: 0.2, Seed: 0x101},
			},
		},
	}
}

// Case identifies one benchmark-Trojan pair, e.g. "s35932-T200".
type Case struct {
	Benchmark string
	Trojan    string
}

// String renders the Trust-Hub style name.
func (c Case) String() string { return c.Benchmark + "-" + c.Trojan }

// Cases lists the five evaluation cases in the paper's Table I order.
func Cases() []Case {
	return []Case{
		{"s35932", "T200"},
		{"s35932", "T300"},
		{"s38417", "T100"},
		{"s38417", "T200"},
		{"s38584", "T100"},
	}
}

// Build materializes one case at the given scale: generates the host,
// performs rare-net analysis, and inserts the Trojan.
func Build(c Case, scale float64) (*trojan.Instance, error) {
	var bm *Benchmark
	for _, b := range Suite(scale) {
		if b.Name == c.Benchmark {
			bm = &b
			break
		}
	}
	if bm == nil {
		return nil, fmt.Errorf("trust: unknown benchmark %q", c.Benchmark)
	}
	tp, ok := bm.Trojans[c.Trojan]
	if !ok {
		return nil, fmt.Errorf("trust: unknown trojan %q for %q", c.Trojan, c.Benchmark)
	}
	host, err := Generate(bm.Params)
	if err != nil {
		return nil, err
	}
	return insertTrojan(host, c.String(), tp)
}

// insertTrojan performs the rare-net analysis and insertion for one case.
func insertTrojan(host *netlist.Netlist, name string, tp TrojanParams) (*trojan.Instance, error) {
	rare := trojan.FindRareNets(host, 64*64, tp.Seed, tp.RareProbCap)
	if len(rare) < tp.Taps+1 {
		// Loosen the cap rather than fail: small scaled-down hosts have
		// fewer deep cones and thus fewer very rare nets.
		rare = trojan.FindRareNets(host, 64*64, tp.Seed, 0.5)
	}
	if len(rare) < tp.Taps+1 {
		return nil, fmt.Errorf("trust: %s: only %d rare nets for %d taps", name, len(rare), tp.Taps)
	}
	// Tentative taps: the tp.Taps rarest nets (victim filtering below may
	// not remove taps, so collect them first).
	var taps []string
	for _, r := range rare {
		if len(taps) == tp.Taps {
			break
		}
		taps = append(taps, r.Name)
	}
	if len(taps) < tp.Taps {
		return nil, fmt.Errorf("trust: %s: only %d rare nets for %d taps", name, len(taps), tp.Taps)
	}

	// Victims: active nets OUTSIDE the combinational fan-in cone of the
	// taps (a victim inside it would loop the payload back into the
	// trigger). Prefer the most active (least rare) candidates — the
	// Trust-Hub payloads sit on busy paths.
	anc, err := trojan.TapAncestors(host, taps)
	if err != nil {
		return nil, err
	}
	wantVictims := tp.Payloads
	if wantVictims < 1 {
		wantVictims = 1
	}
	var victims []string
	for i := len(rare) - 1; i >= 0 && len(victims) < wantVictims; i-- {
		if !anc[rare[i].ID] {
			victims = append(victims, rare[i].Name)
		}
	}
	if len(victims) < wantVictims {
		// Fall back to any non-ancestor combinational nets.
		taken := make(map[string]bool, len(victims))
		for _, v := range victims {
			taken[v] = true
		}
		for id := host.NumGates() - 1; id >= 0 && len(victims) < wantVictims; id-- {
			if !anc[id] && !host.Gates[id].Type.IsSource() && !taken[host.NameOf(id)] {
				victims = append(victims, host.NameOf(id))
			}
		}
	}
	if len(victims) < wantVictims {
		return nil, fmt.Errorf("trust: %s: only %d cycle-free victims for %d payloads",
			name, len(victims), wantVictims)
	}

	spec, err := trojan.BuildSpec(name, rare, tp.Taps, victims[0])
	if err != nil {
		return nil, err
	}
	spec.ExtraVictims = victims[1:]
	spec.TreeArity = tp.TreeArity
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return trojan.Insert(host, spec)
}

// Names returns the case names in Table I order (for CLI help).
func Names() []string {
	var out []string
	for _, c := range Cases() {
		out = append(out, c.String())
	}
	sort.Strings(out)
	return out
}
