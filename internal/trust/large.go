package trust

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"superpose/internal/netlist"
	"superpose/internal/stats"
)

// LargeParams sizes a synthetic SoC-partition-scale host circuit for the
// capacity tier (10⁵–10⁷ gates). It mirrors Params but drives the
// streaming generator: gate names are pure functions of (rank, ordinal),
// so the netlist can be emitted as text — or interned straight into a
// StreamBuilder — without ever materializing rank name lists or maps.
// Generation scratch is O(levels), independent of gate count.
type LargeParams struct {
	Name   string
	PIs    int
	POs    int
	FFs    int
	Comb   int // combinational rank gates (excluding the FF D-pin buffers)
	Levels int
	Seed   uint64
}

// TotalGates returns the total gate/net count of the generated netlist:
// sources, rank gates and the per-FF D-pin buffers.
func (p LargeParams) TotalGates() int { return p.PIs + 2*p.FFs + p.Comb }

// SizedLargeParams derives realistic-shape parameters for a target total
// gate count: ~7% flip-flops (the ISCAS-89/Trust-Hub ratio), a few
// hundred ports, and logic depth growing with size the way synthesized
// partitions do (≈12 levels at 10⁴ gates, +4 per decade).
func SizedLargeParams(gates int, seed uint64) LargeParams {
	if gates < 1000 {
		gates = 1000
	}
	ffs := gates * 7 / 100
	pis := 32 + gates/2000
	if pis > 512 {
		pis = 512
	}
	pos := 32 + gates/4000
	if pos > 1024 {
		pos = 1024
	}
	levels := 12
	for g := gates; g > 10000; g /= 10 {
		levels += 4
	}
	return LargeParams{
		Name:   fmt.Sprintf("synth%d", gates),
		PIs:    pis,
		POs:    pos,
		FFs:    ffs,
		Comb:   gates - pis - 2*ffs,
		Levels: levels,
		Seed:   seed,
	}
}

func (p LargeParams) validate() error {
	if p.PIs < 1 || p.FFs < 1 || p.POs < 1 {
		return fmt.Errorf("trust: %q: need at least one PI, PO and FF", p.Name)
	}
	if p.Levels < 2 {
		return fmt.Errorf("trust: %q: need at least 2 levels", p.Name)
	}
	if p.Comb < p.Levels {
		return fmt.Errorf("trust: %q: %d gates cannot fill %d levels", p.Name, p.Comb, p.Levels)
	}
	return nil
}

// largeEmitter receives the generation event stream. Name slices are
// only valid for the duration of the call.
type largeEmitter interface {
	input(name []byte) error
	dff(q, d []byte) error
	gate(name []byte, typ netlist.GateType, fanins [][]byte) error
	output(name []byte) error
}

// emitLarge drives one deterministic generation pass. Both the text
// writer and the in-memory builder consume this same stream (inputs,
// flip-flops, rank gates, D-pin buffers, then outputs), interning names
// in identical order — which is what makes EmitLarge → ParseStream and
// GenerateLarge produce bit-identical netlists, IDs included.
func emitLarge(p LargeParams, em largeEmitter) error {
	if err := p.validate(); err != nil {
		return err
	}
	rng := stats.NewRNG(p.Seed)

	// Rank sizes and cumulative gate-number offsets: spread Comb gates
	// evenly, remainder on the earliest ranks (wider near the inputs).
	rankSize := make([]int, p.Levels)
	for i := range rankSize {
		rankSize[i] = p.Comb / p.Levels
	}
	for i := 0; i < p.Comb%p.Levels; i++ {
		rankSize[i]++
	}
	off := make([]int, p.Levels+1)
	for i, sz := range rankSize {
		off[i+1] = off[i] + sz
	}

	var nb nameScratch
	for i := 0; i < p.PIs; i++ {
		if err := em.input(nb.pi(i)); err != nil {
			return err
		}
	}
	for i := 0; i < p.FFs; i++ {
		// q and d go through distinct scratch buffers (def and slot 0).
		if err := em.dff(nb.ff(i), nb.faninD(0, i)); err != nil {
			return err
		}
	}

	// Rank gates. A fanin is identified by a compact key — sources first,
	// then global gate ordinals — so duplicate suppression needs no map.
	nSources := p.PIs + p.FFs
	var keys [4]int
	var fanins [4][]byte
	faninName := func(slot, key int) []byte {
		switch {
		case key < p.PIs:
			return nb.faninPI(slot, key)
		case key < nSources:
			return nb.faninFF(slot, key-p.PIs)
		default:
			gn := key - nSources
			lvl := rankOf(off, gn)
			return nb.faninGate(slot, lvl, gn)
		}
	}
	pick := func(lvl int) int {
		roll := rng.Intn(100)
		switch {
		case lvl == 0 || roll < 15+60/(lvl+1):
			return rng.Intn(nSources)
		case lvl >= 2 && roll >= 85 && rankSize[lvl-2] > 0:
			return nSources + off[lvl-2] + rng.Intn(rankSize[lvl-2])
		default:
			if rankSize[lvl-1] == 0 {
				return rng.Intn(nSources)
			}
			return nSources + off[lvl-1] + rng.Intn(rankSize[lvl-1])
		}
	}
	gateNum := 0
	for lvl := 0; lvl < p.Levels; lvl++ {
		for g := 0; g < rankSize[lvl]; g++ {
			m := pickMix(rng)
			nin := m.fanin
			if nin == 0 {
				nin = 2 + rng.Intn(3) // 2..4
			}
			cnt := 0
			for cnt < nin {
				k := pick(lvl)
				if containsKey(keys[:cnt], k) {
					// Duplicates are legal but uninteresting; retry once,
					// then skip to guarantee termination.
					k = pick(lvl)
					if containsKey(keys[:cnt], k) {
						continue
					}
				}
				keys[cnt] = k
				fanins[cnt] = faninName(cnt, k)
				cnt++
			}
			if err := em.gate(nb.gate(lvl, gateNum), m.typ, fanins[:cnt]); err != nil {
				return err
			}
			gateNum++
		}
	}

	// D pins and primary outputs draw from the last third of the ranks,
	// which in gate-ordinal space is simply [off[start], Comb).
	lateStart := off[(2*p.Levels)/3]
	lateName := func(slot int) []byte {
		gn := lateStart + rng.Intn(p.Comb-lateStart)
		return nb.faninGate(slot, rankOf(off, gn), gn)
	}
	for i := 0; i < p.FFs; i++ {
		fanins[0] = lateName(0)
		if err := em.gate(nb.d(i), netlist.Buf, fanins[:1]); err != nil {
			return err
		}
	}
	for i := 0; i < p.POs; i++ {
		if err := em.output(lateName(0)); err != nil {
			return err
		}
	}
	return nil
}

// rankOf finds the rank whose half-open ordinal range contains gn.
func rankOf(off []int, gn int) int {
	lo, hi := 0, len(off)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if off[mid] <= gn {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func containsKey(keys []int, k int) bool {
	for _, have := range keys {
		if have == k {
			return true
		}
	}
	return false
}

// nameScratch formats the deterministic net names (pi/ff/d/n{lvl}_{gn})
// into reusable buffers: one for the defined net, one per fanin slot.
type nameScratch struct {
	def  []byte
	slot [4][]byte
}

func (s *nameScratch) pi(i int) []byte {
	s.def = strconv.AppendInt(append(s.def[:0], 'p', 'i'), int64(i), 10)
	return s.def
}

func (s *nameScratch) ff(i int) []byte {
	s.def = strconv.AppendInt(append(s.def[:0], 'f', 'f'), int64(i), 10)
	return s.def
}

func (s *nameScratch) d(i int) []byte {
	s.def = strconv.AppendInt(append(s.def[:0], 'd'), int64(i), 10)
	return s.def
}

func (s *nameScratch) gate(lvl, gn int) []byte {
	s.def = appendGateName(s.def[:0], lvl, gn)
	return s.def
}

func (s *nameScratch) faninPI(slot, i int) []byte {
	s.slot[slot] = strconv.AppendInt(append(s.slot[slot][:0], 'p', 'i'), int64(i), 10)
	return s.slot[slot]
}

func (s *nameScratch) faninFF(slot, i int) []byte {
	s.slot[slot] = strconv.AppendInt(append(s.slot[slot][:0], 'f', 'f'), int64(i), 10)
	return s.slot[slot]
}

func (s *nameScratch) faninD(slot, i int) []byte {
	s.slot[slot] = strconv.AppendInt(append(s.slot[slot][:0], 'd'), int64(i), 10)
	return s.slot[slot]
}

func (s *nameScratch) faninGate(slot, lvl, gn int) []byte {
	s.slot[slot] = appendGateName(s.slot[slot][:0], lvl, gn)
	return s.slot[slot]
}

func appendGateName(dst []byte, lvl, gn int) []byte {
	dst = append(dst, 'n')
	dst = strconv.AppendInt(dst, int64(lvl), 10)
	dst = append(dst, '_')
	return strconv.AppendInt(dst, int64(gn), 10)
}

// textEmitter streams .bench lines; memory use is the bufio window.
type textEmitter struct {
	w *bufio.Writer
}

func (e *textEmitter) input(name []byte) error {
	e.w.WriteString("INPUT(")
	e.w.Write(name)
	_, err := e.w.WriteString(")\n")
	return err
}

func (e *textEmitter) output(name []byte) error {
	e.w.WriteString("OUTPUT(")
	e.w.Write(name)
	_, err := e.w.WriteString(")\n")
	return err
}

func (e *textEmitter) dff(q, d []byte) error {
	e.w.Write(q)
	e.w.WriteString(" = DFF(")
	e.w.Write(d)
	_, err := e.w.WriteString(")\n")
	return err
}

func (e *textEmitter) gate(name []byte, typ netlist.GateType, fanins [][]byte) error {
	e.w.Write(name)
	e.w.WriteString(" = ")
	e.w.WriteString(typ.String())
	e.w.WriteByte('(')
	for i, f := range fanins {
		if i > 0 {
			e.w.WriteString(", ")
		}
		e.w.Write(f)
	}
	_, err := e.w.WriteString(")\n")
	return err
}

// builderEmitter interns the event stream straight into a StreamBuilder.
type builderEmitter struct {
	b *netlist.StreamBuilder

	ids []int32
}

func (e *builderEmitter) input(name []byte) error {
	return e.b.AddInput(e.b.Intern(name))
}

func (e *builderEmitter) output(name []byte) error {
	e.b.MarkOutput(name)
	return nil
}

func (e *builderEmitter) dff(q, d []byte) error {
	id := e.b.Intern(q)
	return e.b.AddDFF(id, e.b.Intern(d))
}

func (e *builderEmitter) gate(name []byte, typ netlist.GateType, fanins [][]byte) error {
	id := e.b.Intern(name)
	e.ids = e.ids[:0]
	for _, f := range fanins {
		e.ids = append(e.ids, e.b.Intern(f))
	}
	return e.b.AddGate(id, typ, e.ids)
}

// EmitLarge streams the generated netlist as .bench text to w. Memory
// use is O(levels): gate names are derived, never stored, so a 10⁷-gate
// netlist emits through a fixed-size buffer.
func EmitLarge(w io.Writer, p LargeParams) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# %s: %d gates (%d comb), %d PI, %d PO, %d FF, %d levels, seed %#x\n",
		p.Name, p.TotalGates(), p.Comb+p.FFs, p.PIs, p.POs, p.FFs, p.Levels, p.Seed)
	if err := emitLarge(p, &textEmitter{w: bw}); err != nil {
		return err
	}
	return bw.Flush()
}

// GenerateLarge builds the generated netlist in memory through the
// arena StreamBuilder — bit-identical (IDs included) to writing
// EmitLarge text and reading it back with bench.ParseStream.
func GenerateLarge(p LargeParams) (*netlist.Netlist, error) {
	b := netlist.NewStreamBuilder(p.Name, p.TotalGates())
	if err := emitLarge(p, &builderEmitter{b: b}); err != nil {
		return nil, err
	}
	return b.Build()
}
