package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntn(t *testing.T) {
	r := NewRNG(7)
	seen := make([]bool, 10)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("value %d never produced", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		ss += x * x
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestForkDecorrelated(t *testing.T) {
	r := NewRNG(5)
	f := r.Fork()
	equal := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == f.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Errorf("forked stream matched parent %d times", equal)
	}
}

func TestPhiKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.841344746},
		{2, 0.977249868},
		{3, 0.998650102},
		{-1, 0.158655254},
		{1.632, 0.948656}, // the s38417-T100 @ 25% row of Table II
		{2.04, 0.979325},  // the s38417-T100 @ 20% row of Table II
	}
	for _, c := range cases {
		if got := Phi(c.x); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("Phi(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestPhiInvRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 6) // limit to ±6 sigma
		if math.IsNaN(x) {
			return true
		}
		p := Phi(x)
		back := PhiInv(p)
		return math.Abs(back-x) < 1e-6 || p == 1 // Phi saturates near 1 beyond ~5.6σ in float64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !math.IsInf(PhiInv(0), -1) || !math.IsInf(PhiInv(1), 1) {
		t.Error("PhiInv must saturate at the boundaries")
	}
}

func TestPhiMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return Phi(a) <= Phi(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-2.13809) > 1e-4 {
		t.Errorf("Std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}

	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 || empty.Std != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
	one := Summarize([]float64{3})
	if one.Std != 0 || one.Mean != 3 || one.Min != 3 || one.Max != 3 {
		t.Errorf("singleton summary = %+v", one)
	}
}

func TestBoolBalanced(t *testing.T) {
	r := NewRNG(123)
	trues := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < n/2-300 || trues > n/2+300 {
		t.Errorf("Bool produced %d trues of %d", trues, n)
	}
}

func TestMedianAndMAD(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("empty median should be NaN")
	}
	med, mad := MAD([]float64{1, 1, 1, 1, 9})
	if med != 1 || mad != 0 {
		t.Errorf("MAD of majority-identical sample = (%v, %v), want (1, 0)", med, mad)
	}
	med, mad = MAD([]float64{1, 2, 3, 4, 5})
	if med != 3 || mad != 1 {
		t.Errorf("MAD = (%v, %v), want (3, 1)", med, mad)
	}
}

func TestRejectOutliersMAD(t *testing.T) {
	// A 10× spike among consistent readings must be rejected; the order
	// of survivors is preserved.
	kept := RejectOutliersMAD([]float64{1.01, 0.99, 10.0, 1.0, 1.02}, 4)
	want := []float64{1.01, 0.99, 1.0, 1.02}
	if len(kept) != len(want) {
		t.Fatalf("kept %v", kept)
	}
	for i := range want {
		if kept[i] != want[i] {
			t.Fatalf("kept %v, want %v", kept, want)
		}
	}
	// Zero MAD (stuck tester): only the latched value survives.
	kept = RejectOutliersMAD([]float64{5, 5, 5, 7}, 4)
	if len(kept) != 3 || kept[0] != 5 {
		t.Errorf("stuck-sample rejection kept %v", kept)
	}
	// Tiny samples pass through untouched.
	if got := RejectOutliersMAD([]float64{1, 100}, 4); len(got) != 2 {
		t.Errorf("pair should pass through, got %v", got)
	}
}

func TestTrimmedMean(t *testing.T) {
	// Interquartile mean of 1..8 with 25% trim: mean of 3..6.
	xs := []float64{8, 1, 7, 2, 6, 3, 5, 4}
	if m := TrimmedMean(xs, 0.25); m != 4.5 {
		t.Errorf("trimmed mean = %v, want 4.5", m)
	}
	// A trim that would empty the sample falls back to the median.
	if m := TrimmedMean([]float64{1, 9}, 0.5); m != 5 {
		t.Errorf("fallback = %v, want 5", m)
	}
	if !math.IsNaN(TrimmedMean(nil, 0.25)) {
		t.Error("empty trimmed mean should be NaN")
	}
}
