// Package stats provides the deterministic random number generation and
// Gaussian mathematics used by the process-variation model and the
// detection-probability computations (Eq. 3 / Table II of the paper).
package stats

import (
	"math"
	"sort"
)

// RNG is a small, fast, deterministic generator (splitmix64). Every
// stochastic component of the toolchain takes an explicit seed so that
// experiments are exactly reproducible.
type RNG struct {
	state uint64
	// Box-Muller spare value cache.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Norm returns a standard-normal sample (Box-Muller, with caching of the
// second value of each pair).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			f := math.Sqrt(-2 * math.Log(s) / s)
			r.spare = v * f
			r.hasSpare = true
			return u * f
		}
	}
}

// Fork returns an independent generator derived from r's stream, so that
// substreams (per-chip, per-gate) stay decorrelated and reproducible.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1342543de82ef95)
}

// Phi is the standard normal cumulative distribution function.
func Phi(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// PhiInv is the standard normal quantile function (Acklam's rational
// approximation, |relative error| < 1.15e-9), used for confidence bounds.
func PhiInv(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// Median returns the sample median (mean of the central pair for even
// sizes). It returns NaN for an empty sample. The input is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 0 {
		return (s[mid-1] + s[mid]) / 2
	}
	return s[mid]
}

// MAD returns the sample median and the median absolute deviation around
// it — the robust location/scale pair used for outlier rejection in the
// measurement-acquisition layer. Zero MAD means at least half the sample
// is identical to the median.
func MAD(xs []float64) (med, mad float64) {
	med = Median(xs)
	if len(xs) == 0 {
		return med, math.NaN()
	}
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return med, Median(devs)
}

// RejectOutliersMAD returns the samples within k MADs of the median, in
// input order. With zero MAD (a majority-identical sample) only samples
// equal to the median survive — the correct verdict when a stuck tester
// repeats one value. Samples the filter would empty out entirely are
// impossible: the median itself always survives.
func RejectOutliersMAD(xs []float64, k float64) []float64 {
	if len(xs) < 3 {
		return xs
	}
	med, mad := MAD(xs)
	kept := make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.Abs(x-med) <= k*mad {
			kept = append(kept, x)
		}
	}
	return kept
}

// TrimmedMean returns the mean of the sample with the lowest and highest
// frac fraction of values removed (frac in [0, 0.5); 0.25 gives the
// interquartile mean). Small samples that would trim away everything fall
// back to the median.
func TrimmedMean(xs []float64, frac float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	cut := int(frac * float64(len(s)))
	if 2*cut >= len(s) {
		return Median(s)
	}
	var sum float64
	trimmed := s[cut : len(s)-cut]
	for _, x := range trimmed {
		sum += x
	}
	return sum / float64(len(trimmed))
}

// Summary holds basic sample statistics.
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Summarize computes sample statistics (Std is the sample standard
// deviation with Bessel's correction; zero for N < 2).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) >= 2 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}
