package power

import (
	"math"
	"testing"

	"superpose/internal/logic"
	"superpose/internal/stats"
)

// randomSparse draws a random dense mask array plus its sparse (ids,
// masks) encoding: ids ascending over every gate with a nonzero word,
// occasionally including zero-mask entries (the encoding permits them;
// pricing must skip them without touching the sums).
func randomSparse(rng *stats.RNG, numGates int) (dense []logic.Word, ids []int, masks []logic.Word) {
	dense = make([]logic.Word, numGates)
	for id := range dense {
		switch rng.Uint64() % 4 {
		case 0:
			dense[id] = logic.Word(rng.Uint64())
		case 1:
			dense[id] = 1 << (rng.Uint64() % 64)
		}
		if dense[id] != 0 || rng.Uint64()%8 == 0 {
			ids = append(ids, id)
			masks = append(masks, dense[id])
		}
	}
	return dense, ids, masks
}

// TestSparsePricingBitIdentical is the floating-point contract of the
// sweep engine: sparse pricing of a toggle encoding must produce
// bit-for-bit the sums dense pricing produces, because both add the
// same energies in the same ascending-gate-ID order.
func TestSparsePricingBitIdentical(t *testing.T) {
	n := buildTiny(t)
	lib := SAED90Like()
	m := NewModel(n, lib)
	rng := stats.NewRNG(0x9a75e)
	var dst []float64
	for trial := 0; trial < 50; trial++ {
		numLanes := 1 + int(rng.Uint64()%64)
		dense, ids, masks := randomSparse(rng, n.NumGates())
		want := m.NominalLanes(dense, numLanes)
		dst = m.NominalLanesSparse(ids, masks, numLanes, dst)
		if len(dst) != numLanes {
			t.Fatalf("trial %d: %d lanes, want %d", trial, len(dst), numLanes)
		}
		for lane := range want {
			if math.Float64bits(dst[lane]) != math.Float64bits(want[lane]) {
				t.Fatalf("trial %d lane %d: sparse %v != dense %v", trial, lane, dst[lane], want[lane])
			}
		}
	}
	// nil dst allocates; an oversized dst is truncated and reused.
	out := m.NominalLanesSparse(nil, nil, 3, nil)
	if len(out) != 3 || out[0] != 0 || out[1] != 0 || out[2] != 0 {
		t.Errorf("empty encoding priced %v", out)
	}
	big := make([]float64, 64)
	for i := range big {
		big[i] = math.NaN() // must be zeroed, not accumulated into
	}
	out = m.NominalLanesSparse(nil, nil, 2, big)
	if len(out) != 2 || out[0] != 0 || out[1] != 0 {
		t.Errorf("reused dst not zeroed: %v", out)
	}
}

// TestMeasureLanesSparseNoiseParity pins the RNG-stream contract: a
// sparse measurement must draw exactly numLanes noise values in lane
// order, so sweep readings consume the chip's noise stream identically
// to dense readings of the same toggles.
func TestMeasureLanesSparseNoiseParity(t *testing.T) {
	n := buildTiny(t)
	lib := SAED90Like()
	rng := stats.NewRNG(0xd01)
	for trial := 0; trial < 20; trial++ {
		seed := rng.Uint64()
		numLanes := 1 + int(rng.Uint64()%64)
		dense, ids, masks := randomSparse(rng, n.NumGates())

		chipA := Manufacture(n, lib, ThreeSigmaIntra(0.1), seed)
		chipA.SetMeasurementNoise(0.05)
		chipB := Manufacture(n, lib, ThreeSigmaIntra(0.1), seed)
		chipB.SetMeasurementNoise(0.05)

		want := chipA.MeasureLanes(dense, numLanes)
		got := chipB.MeasureLanesSparse(ids, masks, numLanes, nil)
		for lane := range want {
			if math.Float64bits(got[lane]) != math.Float64bits(want[lane]) {
				t.Fatalf("trial %d lane %d: sparse %v != dense %v", trial, lane, got[lane], want[lane])
			}
		}
		// Both streams must now be in the same position: a further
		// identical measurement still agrees.
		w2 := chipA.MeasureLanes(dense, numLanes)
		g2 := chipB.MeasureLanesSparse(ids, masks, numLanes, nil)
		for lane := range w2 {
			if math.Float64bits(g2[lane]) != math.Float64bits(w2[lane]) {
				t.Fatalf("trial %d: noise streams diverged after one measurement", trial)
			}
		}
	}
}
