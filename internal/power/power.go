// Package power models the dynamic-power side channel: a per-cell
// switching-energy library (the stand-in for the Synopsys SAED 90nm data
// the paper uses), the nominal pre-silicon power expectation, and
// manufactured chip instances carrying inter- and intra-die process
// variation — the noise the superposition method is designed to cancel.
package power

import (
	"fmt"
	"math/bits"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/stats"
)

// Library maps gate types to nominal per-switch dynamic energy, in
// arbitrary consistent units (think femtojoules per output toggle). Only
// relative magnitudes matter to the RPD/S-RPD metrics.
type Library struct {
	name   string
	energy map[netlist.GateType]float64
	perIn  map[netlist.GateType]float64 // additional energy per fanin beyond 2
}

// SAED90Like returns a library with relative magnitudes modeled on a 90nm
// standard-cell library: inverters cheapest, NAND/NOR close, AND/OR (with
// their internal output inverters) above those, XOR-class cells the most
// expensive combinational cells, and flip-flops dominating. This is the
// documented substitution for the SAED EDK90 data (DESIGN.md §2).
func SAED90Like() *Library {
	return &Library{
		name: "saed90-like",
		energy: map[netlist.GateType]float64{
			netlist.Input: 0, // PI pads; held static during launch
			netlist.DFF:   4.2,
			netlist.Buf:   0.9,
			netlist.Not:   0.7,
			netlist.And:   1.35,
			netlist.Nand:  1.00,
			netlist.Or:    1.40,
			netlist.Nor:   1.10,
			netlist.Xor:   1.95,
			netlist.Xnor:  2.05,
		},
		perIn: map[netlist.GateType]float64{
			netlist.And: 0.18, netlist.Nand: 0.15,
			netlist.Or: 0.19, netlist.Nor: 0.16,
			netlist.Xor: 0.55, netlist.Xnor: 0.55,
		},
	}
}

// Nangate45Like returns an alternative library with relative magnitudes
// modeled on a 45nm open cell library: tighter spread between simple
// gates, relatively cheaper flip-flops than the 90nm set. Running the
// experiments under both libraries checks that the method's results do
// not hinge on one particular energy table (the cross-library robustness
// ablation in EXPERIMENTS.md).
func Nangate45Like() *Library {
	return &Library{
		name: "nangate45-like",
		energy: map[netlist.GateType]float64{
			netlist.Input: 0,
			netlist.DFF:   2.6,
			netlist.Buf:   0.55,
			netlist.Not:   0.40,
			netlist.And:   0.85,
			netlist.Nand:  0.65,
			netlist.Or:    0.90,
			netlist.Nor:   0.70,
			netlist.Xor:   1.30,
			netlist.Xnor:  1.35,
		},
		perIn: map[netlist.GateType]float64{
			netlist.And: 0.12, netlist.Nand: 0.10,
			netlist.Or: 0.13, netlist.Nor: 0.11,
			netlist.Xor: 0.35, netlist.Xnor: 0.35,
		},
	}
}

// Name returns the library name.
func (l *Library) Name() string { return l.name }

// Energy returns the switching energy of a gate instance: the base energy
// of its type plus the per-extra-fanin adder for wide gates.
func (l *Library) Energy(typ netlist.GateType, fanin int) float64 {
	e := l.energy[typ]
	if extra := fanin - 2; extra > 0 {
		e += float64(extra) * l.perIn[typ]
	}
	return e
}

// Model is the defender's pre-silicon power expectation for one netlist:
// nominal per-gate energies with no process variation.
type Model struct {
	n       *netlist.Netlist
	nominal []float64
}

// NewModel builds the nominal model of n under lib.
func NewModel(n *netlist.Netlist, lib *Library) *Model {
	m := &Model{n: n, nominal: make([]float64, n.NumGates())}
	for id, g := range n.Gates {
		m.nominal[id] = lib.Energy(g.Type, len(g.Fanin))
	}
	return m
}

// Netlist returns the modeled netlist.
func (m *Model) Netlist() *netlist.Netlist { return m.n }

// NominalOf returns the nominal switching energy of gate id.
func (m *Model) NominalOf(id int) float64 { return m.nominal[id] }

// Nominal returns the total nominal switching energy of a toggle set —
// the PN term of Eq. 1.
func (m *Model) Nominal(toggles []int) float64 {
	var p float64
	for _, id := range toggles {
		p += m.nominal[id]
	}
	return p
}

// NominalLanes prices per-lane toggle masks in a single pass over the
// gates: out[lane] = Σ energies of gates whose mask has the lane bit set.
// masks is indexed by gate ID (typically frame1 XOR frame2 words). The
// result slice has numLanes entries.
func (m *Model) NominalLanes(masks []logic.Word, numLanes int) []float64 {
	return priceLanes(m.nominal, masks, numLanes)
}

// NominalLanesSparse prices a sparse per-lane toggle representation:
// ids lists, in ascending gate-ID order, every gate whose lane mask may
// be nonzero; masks[k] is the lane mask of ids[k]. Because the additions
// happen in the same ascending-ID order as NominalLanes performs them
// over a dense mask array, the result is bit-identical to dense pricing
// of the same toggles — the floating-point contract the single-flip
// sweep engine relies on. dst is reused when large enough (zeroed
// first); pass nil to allocate.
func (m *Model) NominalLanesSparse(ids []int, masks []logic.Word, numLanes int, dst []float64) []float64 {
	return priceLanesSparse(m.nominal, ids, masks, numLanes, dst)
}

// NominalSumSquares returns the sum of squared nominal energies of a
// toggle set. Under independent per-gate variation of relative magnitude
// σ, the standard deviation of the set's observed power is σ·√(Σe²) —
// the scale against which a differential residual is judged significant.
func (m *Model) NominalSumSquares(toggles []int) float64 {
	var p float64
	for _, id := range toggles {
		p += m.nominal[id] * m.nominal[id]
	}
	return p
}

// Variation parameterizes the manufacturing-process noise. Both sigmas are
// relative (fraction of nominal energy): SigmaIntra=0.0833 means the
// per-gate 3σ spread is 25%, the most extreme case of Table II.
type Variation struct {
	SigmaInter float64 // whole-chip energy scaling spread
	SigmaIntra float64 // independent per-gate spread
}

// ThreeSigmaIntra builds a Variation from the paper's "3σ_intra = ς"
// convention, with inter-die 3σ three times larger (inter-die variation is
// typically the larger component; the method is insensitive to it by
// construction, which the tests verify).
func ThreeSigmaIntra(varsigma float64) Variation {
	return Variation{SigmaInter: varsigma, SigmaIntra: varsigma / 3}
}

// Chip is one manufactured IC: the physical netlist (possibly carrying a
// Trojan the defender cannot see) with fixed per-gate process-variation
// factors and an optional measurement-noise level.
type Chip struct {
	n          *netlist.Netlist
	effective  []float64 // per-gate energy after PV
	interScale float64
	noiseSigma float64 // relative measurement noise per reading
	noiseRNG   *stats.RNG
}

// Manufacture creates a chip instance of n (the *physical* netlist — use
// the Trojan-inserted netlist to model an attacked part). The library
// provides nominal energies; v and seed determine this die's variation
// draw. Factors are clamped to stay positive under extreme sigmas.
func Manufacture(n *netlist.Netlist, lib *Library, v Variation, seed uint64) *Chip {
	rng := stats.NewRNG(seed)
	inter := 1 + v.SigmaInter*rng.Norm()
	if inter < 0.05 {
		inter = 0.05
	}
	c := &Chip{
		n:          n,
		effective:  make([]float64, n.NumGates()),
		interScale: inter,
		noiseRNG:   rng.Fork(),
	}
	for id, g := range n.Gates {
		intra := 1 + v.SigmaIntra*rng.Norm()
		if intra < 0.05 {
			intra = 0.05
		}
		c.effective[id] = lib.Energy(g.Type, len(g.Fanin)) * inter * intra
	}
	return c
}

// SetMeasurementNoise enables additive Gaussian noise on every Measure
// reading, with standard deviation sigma·reading. Zero (the default)
// disables it.
func (c *Chip) SetMeasurementNoise(sigma float64) {
	if sigma < 0 {
		panic(fmt.Sprintf("power: negative measurement noise %v", sigma))
	}
	c.noiseSigma = sigma
}

// NoiseSigma returns the configured relative measurement-noise level
// (zero when disabled). The acquisition layer uses it to skip redundant
// repeat measurements on a noiseless chip.
func (c *Chip) NoiseSigma() float64 { return c.noiseSigma }

// Netlist returns the chip's physical netlist.
func (c *Chip) Netlist() *netlist.Netlist { return c.n }

// InterScale returns this die's inter-die energy scale factor (for tests
// and diagnostics; a real defender cannot observe it directly).
func (c *Chip) InterScale() float64 { return c.interScale }

// EffectiveOf returns the post-variation energy of gate id (diagnostics).
func (c *Chip) EffectiveOf(id int) float64 { return c.effective[id] }

// Measure returns the observed switching power of a toggle set on this
// die — the PO term of Eq. 1. The toggle set must use this chip's
// netlist's gate IDs.
func (c *Chip) Measure(toggles []int) float64 {
	var p float64
	for _, id := range toggles {
		p += c.effective[id]
	}
	if c.noiseSigma > 0 {
		p += p * c.noiseSigma * c.noiseRNG.Norm()
	}
	return p
}

// MeasureLanes prices per-lane toggle masks in a single pass over the
// gates (see Model.NominalLanes); each lane's reading gets its own
// measurement-noise draw when noise is enabled.
func (c *Chip) MeasureLanes(masks []logic.Word, numLanes int) []float64 {
	out := priceLanes(c.effective, masks, numLanes)
	if c.noiseSigma > 0 {
		for i := range out {
			out[i] += out[i] * c.noiseSigma * c.noiseRNG.Norm()
		}
	}
	return out
}

// MeasureLanesSparse prices a sparse toggle representation on this die
// (see Model.NominalLanesSparse for the encoding and the bit-identity
// contract). Exactly numLanes measurement-noise draws are taken, in lane
// order, just as MeasureLanes does — so a sweep-path reading consumes
// the chip's noise stream identically to the dense path.
func (c *Chip) MeasureLanesSparse(ids []int, masks []logic.Word, numLanes int, dst []float64) []float64 {
	out := priceLanesSparse(c.effective, ids, masks, numLanes, dst)
	if c.noiseSigma > 0 {
		for i := range out {
			out[i] += out[i] * c.noiseSigma * c.noiseRNG.Norm()
		}
	}
	return out
}

// priceLanes accumulates per-lane energy sums by iterating only the set
// bits of each gate's lane mask.
func priceLanes(energy []float64, masks []logic.Word, numLanes int) []float64 {
	out := make([]float64, numLanes)
	var laneMask logic.Word = ^logic.Word(0)
	if numLanes < 64 {
		laneMask = logic.Word(1)<<uint(numLanes) - 1
	}
	for id, m := range masks {
		m &= laneMask
		if m == 0 {
			continue
		}
		e := energy[id]
		if m == laneMask {
			// Toggles on every lane — common for activity the whole batch
			// shares. Each lane is an independent accumulator, so adding e
			// to all of them in index order carries the same rounding as
			// the bit-iteration below.
			for i := range out {
				out[i] += e
			}
			continue
		}
		for m != 0 {
			lane := bits.TrailingZeros64(uint64(m))
			out[lane] += e
			m &= m - 1
		}
	}
	return out
}

// priceLanesSparse is priceLanes over a sparse (ids, masks) toggle
// encoding: it touches only the listed gates instead of scanning the
// whole netlist, but performs the per-lane additions in the identical
// ascending-gate-ID order, so the sums carry the same rounding.
func priceLanesSparse(energy []float64, ids []int, masks []logic.Word, numLanes int, dst []float64) []float64 {
	if cap(dst) < numLanes {
		dst = make([]float64, numLanes)
	}
	dst = dst[:numLanes]
	for i := range dst {
		dst[i] = 0
	}
	var laneMask logic.Word = ^logic.Word(0)
	if numLanes < 64 {
		laneMask = logic.Word(1)<<uint(numLanes) - 1
	}
	for k, id := range ids {
		m := masks[k] & laneMask
		if m == 0 {
			continue
		}
		e := energy[id]
		if m == laneMask {
			// All-lane entries dominate sweep encodings (every base toggle
			// outside the flip cones); adding to the independent per-lane
			// accumulators in index order keeps the rounding identical.
			for i := range dst {
				dst[i] += e
			}
			continue
		}
		for m != 0 {
			lane := bits.TrailingZeros64(uint64(m))
			dst[lane] += e
			m &= m - 1
		}
	}
	return dst
}
