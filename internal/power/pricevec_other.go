//go:build !amd64

package power

import "superpose/internal/logic"

// No vectorized pricing kernel on this architecture; the Vec entry
// points are the scalar loop.
var haveVectorPricing = false

func priceLanesSparseVec(energy []float64, ids []int, masks []logic.Word, numLanes int, dst []float64) []float64 {
	return priceLanesSparse(energy, ids, masks, numLanes, dst)
}
