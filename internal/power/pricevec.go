package power

import "superpose/internal/logic"

// Vectorized sparse pricing: the PPSFP configuration's kernel for the
// sweep hot path. On amd64 with AVX-512F the (ids, masks) encoding is
// priced by priceSparseZMM, which keeps all 64 lane accumulators in
// eight ZMM registers and applies each entry's energy with a per-lane
// write mask. Every lane is an independent accumulator folding the same
// ascending-gate-ID addition sequence as the scalar loop, so the result
// is bit-identical to priceLanesSparse — the IEEE-754 contract the
// engine-equivalence suites pin. Everywhere else (or when the CPU lacks
// AVX-512F) the Vec entry points fall through to the scalar loop.
//
// The scalar entry points (NominalLanesSparse, MeasureLanesSparse) stay
// untouched: they are the frozen reference path; the engine selector
// decides per call site which kernel a stack runs on.

// VectorPricing reports whether the vectorized sparse pricing kernel is
// available on this machine (amd64 with OS-enabled AVX-512F).
func VectorPricing() bool { return haveVectorPricing }

// NominalLanesSparseVec is NominalLanesSparse through the vectorized
// kernel when available; the results are bit-identical either way.
func (m *Model) NominalLanesSparseVec(ids []int, masks []logic.Word, numLanes int, dst []float64) []float64 {
	return priceLanesSparseVec(m.nominal, ids, masks, numLanes, dst)
}

// MeasureLanesSparseVec is MeasureLanesSparse through the vectorized
// kernel when available. Measurement-noise draws happen after the sums,
// in lane order — exactly numLanes draws, as every pricing path takes —
// so the chip's noise stream advances identically to the scalar path.
func (c *Chip) MeasureLanesSparseVec(ids []int, masks []logic.Word, numLanes int, dst []float64) []float64 {
	out := priceLanesSparseVec(c.effective, ids, masks, numLanes, dst)
	if c.noiseSigma > 0 {
		for i := range out {
			out[i] += out[i] * c.noiseSigma * c.noiseRNG.Norm()
		}
	}
	return out
}
