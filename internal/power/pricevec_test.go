package power

import (
	"math"
	"testing"

	"superpose/internal/logic"
	"superpose/internal/stats"
)

// TestVectorPricingBitIdentity hammers the vectorized sparse kernel
// against the scalar reference over random encodings: dense and sparse
// masks, all-lanes entries, zero entries, every partial-lane count and
// the ragged 1-entry edge. Every lane must match by IEEE-754 bit
// pattern. On machines without AVX-512F the Vec path IS the scalar
// loop, so the test degenerates to a tautology rather than skipping —
// keeping the call sites covered everywhere.
func TestVectorPricingBitIdentity(t *testing.T) {
	t.Logf("vector pricing available: %v", VectorPricing())
	rng := stats.NewRNG(97)

	energy := make([]float64, 3000)
	for i := range energy {
		energy[i] = 0.4 + 4.5*rng.Float64()
	}

	shapes := []struct {
		entries  int
		numLanes int
		allFrac  float64 // fraction of entries with an all-lanes mask
		zeroFrac float64 // fraction with a zero mask
	}{
		{0, 64, 0, 0},
		{1, 1, 0, 0},
		{1, 64, 1, 0},
		{7, 3, 0.5, 0.2},
		{100, 64, 0.8, 0.05},
		{100, 63, 0.8, 0.05},
		{100, 1, 0.3, 0.3},
		{5500, 64, 0.9, 0.01},
		{5500, 17, 0.9, 0.01},
	}
	for _, sh := range shapes {
		for trial := 0; trial < 4; trial++ {
			ids := make([]int, sh.entries)
			masks := make([]logic.Word, sh.entries)
			id := 0
			for k := range ids {
				id += 1 + rng.Intn(3)
				ids[k] = id % len(energy)
				switch r := rng.Float64(); {
				case r < sh.zeroFrac:
					masks[k] = 0
				case r < sh.zeroFrac+sh.allFrac:
					masks[k] = ^logic.Word(0)
				default:
					masks[k] = logic.Word(rng.Uint64())
				}
			}
			want := priceLanesSparse(energy, ids, masks, sh.numLanes, nil)
			got := priceLanesSparseVec(energy, ids, masks, sh.numLanes, nil)
			if len(got) != len(want) {
				t.Fatalf("%+v trial %d: %d lanes, want %d", sh, trial, len(got), len(want))
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%+v trial %d lane %d: vec %x, scalar %x",
						sh, trial, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
			// Reuse path: a dirty oversized dst must be re-zeroed.
			dirty := make([]float64, 64)
			for i := range dirty {
				dirty[i] = math.Inf(1)
			}
			got2 := priceLanesSparseVec(energy, ids, masks, sh.numLanes, dirty)
			for i := range want {
				if math.Float64bits(got2[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%+v trial %d lane %d (dst reuse): vec %x, scalar %x",
						sh, trial, i, math.Float64bits(got2[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
}

// TestMeasureLanesSparseVecNoiseStream pins the noise-stream contract:
// the Vec measure path must consume exactly numLanes draws in lane
// order, leaving the chip's RNG in the same state as the scalar path —
// so mixing kernels across a die's lifetime can never skew readings.
func TestMeasureLanesSparseVecNoiseStream(t *testing.T) {
	lib := SAED90Like()
	n := buildTiny(t)
	rng := stats.NewRNG(11)

	mkChip := func() *Chip {
		c := Manufacture(n, lib, ThreeSigmaIntra(0.12), 77)
		c.SetMeasurementNoise(0.02)
		return c
	}
	scalar, vec := mkChip(), mkChip()

	var ids []int
	var masks []logic.Word
	for id := 0; id < n.NumGates(); id += 2 {
		ids = append(ids, id)
		masks = append(masks, logic.Word(rng.Uint64()))
	}
	for round := 0; round < 3; round++ {
		lanes := []int{64, 5, 64}[round]
		want := scalar.MeasureLanesSparse(ids, masks, lanes, nil)
		got := vec.MeasureLanesSparseVec(ids, masks, lanes, nil)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("round %d lane %d: vec %x, scalar %x",
					round, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}
