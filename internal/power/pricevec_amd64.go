package power

import "superpose/internal/logic"

// haveVectorPricing is set once at init when the CPU and OS support the
// AVX-512F kernel (CPUID feature bit plus XCR0 opmask/ZMM state enabled).
var haveVectorPricing = detectAVX512F()

func detectAVX512F() bool {
	maxLeaf, _, _, _ := cpuidLeaf(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidLeaf(1, 0)
	const osxsave = 1 << 27
	if ecx1&osxsave == 0 {
		return false
	}
	// XCR0 must enable x87/SSE/AVX state plus the AVX-512 opmask and
	// ZMM register state, or the kernel would fault on ZMM use.
	xcr0, _ := xgetbv0()
	const avx512State = 0xE6
	if xcr0&avx512State != avx512State {
		return false
	}
	_, ebx7, _, _ := cpuidLeaf(7, 0)
	const avx512f = 1 << 16
	return ebx7&avx512f != 0
}

// priceLanesSparseVec prices the sparse encoding through the ZMM kernel,
// falling back to the scalar loop when AVX-512F is unavailable. The
// kernel always accumulates all 64 lanes (masked off by laneMask beyond
// numLanes, so the dead lanes stay zero) into a stack frame; only the
// first numLanes are copied out.
func priceLanesSparseVec(energy []float64, ids []int, masks []logic.Word, numLanes int, dst []float64) []float64 {
	if !haveVectorPricing || len(ids) == 0 {
		return priceLanesSparse(energy, ids, masks, numLanes, dst)
	}
	if cap(dst) < numLanes {
		dst = make([]float64, numLanes)
	}
	dst = dst[:numLanes]
	var laneMask uint64 = ^uint64(0)
	if numLanes < 64 {
		laneMask = 1<<uint(numLanes) - 1
	}
	var acc [64]float64
	priceSparseZMM(&energy[0], &ids[0], &masks[0], len(ids), laneMask, &acc[0])
	copy(dst, acc[:numLanes])
	return dst
}

// priceSparseZMM accumulates, for each of the 64 lanes, the sum of
// energy[ids[k]] over every k whose masks[k] has that lane's bit set
// (after ANDing laneMask), in ascending k order per lane, and stores the
// 64 lane sums at out. Implemented in pricevec_amd64.s; requires
// AVX-512F.
//
//go:noescape
func priceSparseZMM(energy *float64, ids *int, masks *logic.Word, n int, laneMask uint64, out *float64)

// cpuidLeaf executes CPUID with the given EAX/ECX inputs.
//
//go:noescape
func cpuidLeaf(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0 (requires OSXSAVE, checked by the caller).
//
//go:noescape
func xgetbv0() (eax, edx uint32)
