// AVX-512F sparse pricing kernel. All 64 lane accumulators live in
// Z0..Z7 (lane i is element i%8 of Z(i/8)); each sparse entry broadcasts
// its gate energy into Z8 and applies it to the accumulators under the
// entry's 64-bit lane mask, eight lanes at a time via the K1 opmask.
// Per lane this folds the identical ascending-entry addition sequence as
// the scalar loop in priceLanesSparse, so the sums are bit-identical.

#include "textflag.h"

// func priceSparseZMM(energy *float64, ids *int, masks *logic.Word, n int, laneMask uint64, out *float64)
TEXT ·priceSparseZMM(SB), NOSPLIT, $0-48
	MOVQ energy+0(FP), SI
	MOVQ ids+8(FP), DI
	MOVQ masks+16(FP), DX
	MOVQ n+24(FP), CX
	MOVQ laneMask+32(FP), R10
	MOVQ out+40(FP), BX

	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7

	XORQ R11, R11 // entry index k
loop:
	CMPQ R11, CX
	JGE  done
	MOVQ (DX)(R11*8), R9 // lane mask
	ANDQ R10, R9
	JZ   next
	MOVQ (DI)(R11*8), R8          // gate id
	VBROADCASTSD (SI)(R8*8), Z8   // energy[id] in every element

	// Entries toggling every live lane skip the mask plumbing; dead
	// lanes beyond laneMask pick up junk sums that are never stored
	// back (the Go wrapper copies only numLanes lanes out).
	CMPQ R9, R10
	JE   all

	KMOVW R9, K1
	VADDPD Z8, Z0, K1, Z0
	SHRQ $8, R9
	KMOVW R9, K1
	VADDPD Z8, Z1, K1, Z1
	SHRQ $8, R9
	KMOVW R9, K1
	VADDPD Z8, Z2, K1, Z2
	SHRQ $8, R9
	KMOVW R9, K1
	VADDPD Z8, Z3, K1, Z3
	SHRQ $8, R9
	KMOVW R9, K1
	VADDPD Z8, Z4, K1, Z4
	SHRQ $8, R9
	KMOVW R9, K1
	VADDPD Z8, Z5, K1, Z5
	SHRQ $8, R9
	KMOVW R9, K1
	VADDPD Z8, Z6, K1, Z6
	SHRQ $8, R9
	KMOVW R9, K1
	VADDPD Z8, Z7, K1, Z7
	JMP  next

all:
	VADDPD Z8, Z0, Z0
	VADDPD Z8, Z1, Z1
	VADDPD Z8, Z2, Z2
	VADDPD Z8, Z3, Z3
	VADDPD Z8, Z4, Z4
	VADDPD Z8, Z5, Z5
	VADDPD Z8, Z6, Z6
	VADDPD Z8, Z7, Z7

next:
	INCQ R11
	JMP  loop

done:
	VMOVUPD Z0, (BX)
	VMOVUPD Z1, 64(BX)
	VMOVUPD Z2, 128(BX)
	VMOVUPD Z3, 192(BX)
	VMOVUPD Z4, 256(BX)
	VMOVUPD Z5, 320(BX)
	VMOVUPD Z6, 384(BX)
	VMOVUPD Z7, 448(BX)
	VZEROUPPER
	RET

// func cpuidLeaf(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidLeaf(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
