package power

import (
	"math"
	"testing"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/stats"
)

func buildTiny(t testing.TB) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("tiny")
	for _, in := range []string{"a", "b", "c", "d"} {
		if _, err := b.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	adds := []struct {
		name string
		typ  netlist.GateType
		in   []string
	}{
		{"n1", netlist.Nand, []string{"a", "b"}},
		{"n2", netlist.Nor, []string{"c", "d"}},
		{"n3", netlist.Xor, []string{"n1", "n2"}},
		{"w4", netlist.And, []string{"a", "b", "c", "d"}}, // 4-input
	}
	for _, g := range adds {
		if _, err := b.AddGate(g.name, g.typ, g.in...); err != nil {
			t.Fatal(err)
		}
	}
	b.MarkOutput("n3")
	b.MarkOutput("w4")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestLibraryRelativeOrder(t *testing.T) {
	lib := SAED90Like()
	e := func(typ netlist.GateType) float64 { return lib.Energy(typ, 2) }
	if !(e(netlist.Not) < e(netlist.Nand) && e(netlist.Nand) < e(netlist.And) &&
		e(netlist.And) < e(netlist.Xor) && e(netlist.Xor) < e(netlist.DFF)) {
		t.Error("library ordering must be INV < NAND < AND < XOR < DFF")
	}
	if lib.Energy(netlist.Input, 0) != 0 {
		t.Error("PI energy must be 0")
	}
	if lib.Name() == "" {
		t.Error("library must have a name")
	}
}

func TestWideGateEnergy(t *testing.T) {
	lib := SAED90Like()
	e2 := lib.Energy(netlist.And, 2)
	e4 := lib.Energy(netlist.And, 4)
	if e4 <= e2 {
		t.Errorf("4-input AND (%v) must cost more than 2-input (%v)", e4, e2)
	}
	if got, want := e4-e2, 2*0.18; math.Abs(got-want) > 1e-12 {
		t.Errorf("fanin adder = %v, want %v", got, want)
	}
	// Unary gates ignore the adder.
	if lib.Energy(netlist.Not, 1) != lib.Energy(netlist.Not, 5) {
		t.Error("NOT energy must not depend on fanin count")
	}
}

func TestModelNominal(t *testing.T) {
	n := buildTiny(t)
	lib := SAED90Like()
	m := NewModel(n, lib)
	n1, _ := n.GateID("n1")
	n3, _ := n.GateID("n3")
	if m.NominalOf(n1) != lib.Energy(netlist.Nand, 2) {
		t.Error("NominalOf mismatch")
	}
	want := m.NominalOf(n1) + m.NominalOf(n3)
	if got := m.Nominal([]int{n1, n3}); math.Abs(got-want) > 1e-12 {
		t.Errorf("Nominal = %v, want %v", got, want)
	}
	if m.Nominal(nil) != 0 {
		t.Error("empty toggle set must be 0")
	}
	if m.Netlist() != n {
		t.Error("Netlist accessor")
	}
}

func TestManufactureDeterministic(t *testing.T) {
	n := buildTiny(t)
	lib := SAED90Like()
	v := ThreeSigmaIntra(0.15)
	c1 := Manufacture(n, lib, v, 42)
	c2 := Manufacture(n, lib, v, 42)
	for id := 0; id < n.NumGates(); id++ {
		if c1.EffectiveOf(id) != c2.EffectiveOf(id) {
			t.Fatal("same seed must give identical dies")
		}
	}
	c3 := Manufacture(n, lib, v, 43)
	diff := false
	for id := 0; id < n.NumGates(); id++ {
		if c1.EffectiveOf(id) != c3.EffectiveOf(id) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds must give different dies")
	}
}

func TestVariationStatistics(t *testing.T) {
	// Across many dies, a gate's effective energy should have mean ≈
	// nominal and relative spread ≈ sqrt(σ_inter² + σ_intra²).
	n := buildTiny(t)
	lib := SAED90Like()
	v := ThreeSigmaIntra(0.24) // σ_inter = 0.24, σ_intra = 0.08
	m := NewModel(n, lib)
	n3, _ := n.GateID("n3")

	const dies = 4000
	vals := make([]float64, dies)
	for i := 0; i < dies; i++ {
		c := Manufacture(n, lib, v, uint64(1000+i))
		vals[i] = c.EffectiveOf(n3)
	}
	s := stats.Summarize(vals)
	nom := m.NominalOf(n3)
	if math.Abs(s.Mean/nom-1) > 0.02 {
		t.Errorf("mean effective/nominal = %v, want ~1", s.Mean/nom)
	}
	wantStd := math.Sqrt(v.SigmaInter*v.SigmaInter+v.SigmaIntra*v.SigmaIntra) * nom
	if math.Abs(s.Std/wantStd-1) > 0.10 {
		t.Errorf("std = %v, want ~%v", s.Std, wantStd)
	}
}

func TestIntraDieIndependence(t *testing.T) {
	// Within one die, two same-type gates should generally differ
	// (independent intra-die draws) even though inter-die scale is shared.
	n := buildTiny(t)
	lib := SAED90Like()
	c := Manufacture(n, lib, ThreeSigmaIntra(0.3), 7)
	n1, _ := n.GateID("n1")
	n2, _ := n.GateID("n2")
	r1 := c.EffectiveOf(n1) / lib.Energy(netlist.Nand, 2)
	r2 := c.EffectiveOf(n2) / lib.Energy(netlist.Nor, 2)
	if r1 == r2 {
		t.Error("intra-die factors must be independent per gate")
	}
}

func TestZeroVariationIsNominal(t *testing.T) {
	n := buildTiny(t)
	lib := SAED90Like()
	m := NewModel(n, lib)
	c := Manufacture(n, lib, Variation{}, 5)
	for id := 0; id < n.NumGates(); id++ {
		if math.Abs(c.EffectiveOf(id)-m.NominalOf(id)) > 1e-12 {
			t.Fatalf("gate %d: effective %v != nominal %v", id, c.EffectiveOf(id), m.NominalOf(id))
		}
	}
	n1, _ := n.GateID("n1")
	n3, _ := n.GateID("n3")
	toggles := []int{n1, n3}
	if math.Abs(c.Measure(toggles)-m.Nominal(toggles)) > 1e-12 {
		t.Error("zero-variation measurement must equal nominal")
	}
}

func TestMeasurementNoise(t *testing.T) {
	n := buildTiny(t)
	lib := SAED90Like()
	c := Manufacture(n, lib, Variation{}, 5)
	n3, _ := n.GateID("n3")
	toggles := []int{n3}
	base := c.Measure(toggles)

	c.SetMeasurementNoise(0.05)
	var differs bool
	for i := 0; i < 10; i++ {
		if c.Measure(toggles) != base {
			differs = true
		}
	}
	if !differs {
		t.Error("measurement noise must perturb readings")
	}

	defer func() {
		if recover() == nil {
			t.Error("negative noise must panic")
		}
	}()
	c.SetMeasurementNoise(-1)
}

func TestFactorClamping(t *testing.T) {
	// Absurd sigma must not produce negative energies.
	n := buildTiny(t)
	lib := SAED90Like()
	for seed := uint64(0); seed < 50; seed++ {
		c := Manufacture(n, lib, Variation{SigmaInter: 5, SigmaIntra: 5}, seed)
		for id := 0; id < n.NumGates(); id++ {
			if n.Gates[id].Type == netlist.Input {
				continue
			}
			if c.EffectiveOf(id) < 0 {
				t.Fatalf("seed %d gate %d: negative energy %v", seed, id, c.EffectiveOf(id))
			}
		}
	}
}

func TestThreeSigmaIntraConvention(t *testing.T) {
	v := ThreeSigmaIntra(0.25)
	if math.Abs(v.SigmaIntra-0.25/3) > 1e-12 {
		t.Errorf("SigmaIntra = %v", v.SigmaIntra)
	}
	if v.SigmaInter != 0.25 {
		t.Errorf("SigmaInter = %v", v.SigmaInter)
	}
}

func TestLanePricingMatchesPerLaneSets(t *testing.T) {
	n := buildTiny(t)
	lib := SAED90Like()
	m := NewModel(n, lib)
	c := Manufacture(n, lib, ThreeSigmaIntra(0.2), 9)
	rng := stats.NewRNG(4)

	masks := make([]logic.Word, n.NumGates())
	for id := range masks {
		masks[id] = logic.Word(rng.Uint64())
	}
	const lanes = 37 // non-multiple of 8, exercises the lane clamp
	nomLanes := m.NominalLanes(masks, lanes)
	obsLanes := c.MeasureLanes(masks, lanes)
	if len(nomLanes) != lanes || len(obsLanes) != lanes {
		t.Fatal("lane count")
	}
	for lane := 0; lane < lanes; lane++ {
		var toggles []int
		for id := range masks {
			if masks[id]&(1<<uint(lane)) != 0 {
				toggles = append(toggles, id)
			}
		}
		if want := m.Nominal(toggles); math.Abs(nomLanes[lane]-want) > 1e-9 {
			t.Fatalf("lane %d nominal: %v != %v", lane, nomLanes[lane], want)
		}
		if want := c.Measure(toggles); math.Abs(obsLanes[lane]-want) > 1e-9 {
			t.Fatalf("lane %d observed: %v != %v", lane, obsLanes[lane], want)
		}
	}
	// Lanes beyond numLanes are ignored even when masks set them.
	empty := m.NominalLanes(masks, 1)
	if len(empty) != 1 {
		t.Fatal("clamp")
	}
}

func TestMeasureLanesNoise(t *testing.T) {
	n := buildTiny(t)
	lib := SAED90Like()
	c := Manufacture(n, lib, Variation{}, 9)
	c.SetMeasurementNoise(0.05)
	masks := make([]logic.Word, n.NumGates())
	for id := range masks {
		masks[id] = 1
	}
	a := c.MeasureLanes(masks, 1)[0]
	b := c.MeasureLanes(masks, 1)[0]
	if a == b {
		t.Error("noise must vary between readings")
	}
}

func TestNangateLibraryOrdering(t *testing.T) {
	lib := Nangate45Like()
	e := func(typ netlist.GateType) float64 { return lib.Energy(typ, 2) }
	if !(e(netlist.Not) < e(netlist.Nand) && e(netlist.Nand) < e(netlist.And) &&
		e(netlist.And) < e(netlist.Xor) && e(netlist.Xor) < e(netlist.DFF)) {
		t.Error("library ordering must be INV < NAND < AND < XOR < DFF")
	}
	if lib.Name() != "nangate45-like" {
		t.Error("name")
	}
	// Distinct from the 90nm set.
	if lib.Energy(netlist.DFF, 1) == SAED90Like().Energy(netlist.DFF, 1) {
		t.Error("libraries must differ")
	}
}

func TestMeasurementNoiseSigmaStatistics(t *testing.T) {
	// The empirical relative sigma of repeated readings must match the
	// configured sigma, and averaging k readings must shrink it by ~√k.
	n := buildTiny(t)
	lib := SAED90Like()
	const sigma = 0.05
	c := Manufacture(n, lib, Variation{}, 99)
	c.SetMeasurementNoise(sigma)
	if got := c.NoiseSigma(); got != sigma {
		t.Fatalf("NoiseSigma = %v, want %v", got, sigma)
	}

	toggles := []int{4, 5, 6, 7} // the four combinational gates
	clean := Manufacture(n, lib, Variation{}, 99).Measure(toggles)

	const trials = 4000
	empirical := func(k int) float64 {
		var ss float64
		for i := 0; i < trials; i++ {
			var sum float64
			for r := 0; r < k; r++ {
				sum += c.Measure(toggles)
			}
			d := sum/float64(k) - clean
			ss += d * d
		}
		return math.Sqrt(ss/trials) / clean
	}

	s1 := empirical(1)
	if s1 < sigma*0.95 || s1 > sigma*1.05 {
		t.Errorf("empirical sigma %.5f, configured %.5f", s1, sigma)
	}
	const k = 9
	sk := empirical(k)
	shrink := s1 / sk
	want := math.Sqrt(k)
	if shrink < want*0.9 || shrink > want*1.1 {
		t.Errorf("averaging %d repeats shrank sigma by %.2f×, want ≈ %.2f×", k, shrink, want)
	}
}

func TestNoiseSigmaDefaultZero(t *testing.T) {
	c := Manufacture(buildTiny(t), SAED90Like(), Variation{}, 1)
	if c.NoiseSigma() != 0 {
		t.Error("noise must default to disabled")
	}
}
