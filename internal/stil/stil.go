// Package stil reads and writes test patterns in a minimal STIL-like text
// format, playing the role of the STIL files the paper's custom scripts
// manipulate between the ATPG and analysis stages (§V-B).
//
// The format is line-oriented and self-describing:
//
//	STILLITE 1;
//	Shape { chains 2; lengths 8 8; pis 4; }
//	Pattern 0 { scan "01001100|11100011"; pi "1010"; }
//	Pattern 1 { scan "00001100|11100000"; pi "0110"; }
//
// It intentionally covers only what the toolchain needs: pattern shape
// validation and lossless round-tripping of scan/PI bits.
package stil

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"superpose/internal/scan"
)

// Write serializes patterns. All patterns must share the same shape.
func Write(w io.Writer, pats []*scan.Pattern) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "STILLITE 1;")
	if len(pats) == 0 {
		fmt.Fprintln(bw, "Shape { chains 0; lengths ; pis 0; }")
		return bw.Flush()
	}
	first := pats[0]
	lengths := make([]string, len(first.Scan))
	for i, c := range first.Scan {
		lengths[i] = strconv.Itoa(len(c))
	}
	fmt.Fprintf(bw, "Shape { chains %d; lengths %s; pis %d; }\n",
		len(first.Scan), strings.Join(lengths, " "), len(first.PI))
	for i, p := range pats {
		if err := checkShape(first, p); err != nil {
			return fmt.Errorf("stil: pattern %d: %w", i, err)
		}
		var chains []string
		for _, c := range p.Scan {
			chains = append(chains, bitString(c))
		}
		fmt.Fprintf(bw, "Pattern %d { scan \"%s\"; pi \"%s\"; }\n",
			i, strings.Join(chains, "|"), bitString(p.PI))
	}
	return bw.Flush()
}

func checkShape(ref, p *scan.Pattern) error {
	if len(p.Scan) != len(ref.Scan) || len(p.PI) != len(ref.PI) {
		return fmt.Errorf("shape mismatch")
	}
	for i := range p.Scan {
		if len(p.Scan[i]) != len(ref.Scan[i]) {
			return fmt.Errorf("chain %d length mismatch", i)
		}
	}
	return nil
}

func bitString(bits []bool) string {
	var b strings.Builder
	for _, v := range bits {
		if v {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func parseBits(s string) ([]bool, error) {
	out := make([]bool, len(s))
	for i, c := range s {
		switch c {
		case '0':
			out[i] = false
		case '1':
			out[i] = true
		default:
			return nil, fmt.Errorf("invalid bit %q", c)
		}
	}
	return out, nil
}

// Read parses a pattern file written by Write.
func Read(r io.Reader) ([]*scan.Pattern, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineno := 0

	var (
		sawHeader bool
		sawShape  bool
		chains    int
		lengths   []int
		pis       int
		pats      []*scan.Pattern
	)
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "STILLITE"):
			if !strings.HasSuffix(line, "1;") {
				return nil, fmt.Errorf("stil:%d: unsupported version %q", lineno, line)
			}
			sawHeader = true

		case strings.HasPrefix(line, "Shape"):
			if !sawHeader {
				return nil, fmt.Errorf("stil:%d: Shape before header", lineno)
			}
			var err error
			chains, lengths, pis, err = parseShape(line)
			if err != nil {
				return nil, fmt.Errorf("stil:%d: %w", lineno, err)
			}
			sawShape = true

		case strings.HasPrefix(line, "Pattern"):
			if !sawShape {
				return nil, fmt.Errorf("stil:%d: Pattern before Shape", lineno)
			}
			p, err := parsePattern(line, chains, lengths, pis)
			if err != nil {
				return nil, fmt.Errorf("stil:%d: %w", lineno, err)
			}
			pats = append(pats, p)

		default:
			return nil, fmt.Errorf("stil:%d: unrecognized line %q", lineno, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("stil: missing header")
	}
	return pats, nil
}

func field(line, key string) (string, error) {
	i := strings.Index(line, key+" ")
	if i < 0 {
		return "", fmt.Errorf("missing field %q", key)
	}
	rest := line[i+len(key)+1:]
	j := strings.IndexByte(rest, ';')
	if j < 0 {
		return "", fmt.Errorf("unterminated field %q", key)
	}
	return strings.TrimSpace(rest[:j]), nil
}

func parseShape(line string) (chains int, lengths []int, pis int, err error) {
	cs, err := field(line, "chains")
	if err != nil {
		return 0, nil, 0, err
	}
	if chains, err = strconv.Atoi(cs); err != nil {
		return 0, nil, 0, fmt.Errorf("chains: %w", err)
	}
	ls, err := field(line, "lengths")
	if err != nil {
		return 0, nil, 0, err
	}
	for _, tok := range strings.Fields(ls) {
		l, err := strconv.Atoi(tok)
		if err != nil {
			return 0, nil, 0, fmt.Errorf("lengths: %w", err)
		}
		lengths = append(lengths, l)
	}
	if len(lengths) != chains {
		return 0, nil, 0, fmt.Errorf("%d lengths for %d chains", len(lengths), chains)
	}
	ps, err := field(line, "pis")
	if err != nil {
		return 0, nil, 0, err
	}
	if pis, err = strconv.Atoi(ps); err != nil {
		return 0, nil, 0, fmt.Errorf("pis: %w", err)
	}
	return chains, lengths, pis, nil
}

func parsePattern(line string, chains int, lengths []int, pis int) (*scan.Pattern, error) {
	scanField, err := quoted(line, "scan")
	if err != nil {
		return nil, err
	}
	piField, err := quoted(line, "pi")
	if err != nil {
		return nil, err
	}
	parts := []string{}
	if scanField != "" {
		parts = strings.Split(scanField, "|")
	}
	if len(parts) != chains {
		return nil, fmt.Errorf("%d chains in pattern, want %d", len(parts), chains)
	}
	p := &scan.Pattern{Scan: make([][]bool, chains)}
	for i, part := range parts {
		if len(part) != lengths[i] {
			return nil, fmt.Errorf("chain %d has %d bits, want %d", i, len(part), lengths[i])
		}
		bits, err := parseBits(part)
		if err != nil {
			return nil, err
		}
		p.Scan[i] = bits
	}
	if len(piField) != pis {
		return nil, fmt.Errorf("%d PI bits, want %d", len(piField), pis)
	}
	p.PI, err = parseBits(piField)
	if err != nil {
		return nil, err
	}
	return p, nil
}

func quoted(line, key string) (string, error) {
	i := strings.Index(line, key+" \"")
	if i < 0 {
		return "", fmt.Errorf("missing field %q", key)
	}
	rest := line[i+len(key)+2:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", fmt.Errorf("unterminated field %q", key)
	}
	return rest[:j], nil
}
