package stil

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"superpose/internal/scan"
	"superpose/internal/stats"
)

func makePattern(chains []int, pis int, rng *stats.RNG) *scan.Pattern {
	p := &scan.Pattern{Scan: make([][]bool, len(chains)), PI: make([]bool, pis)}
	for i, l := range chains {
		p.Scan[i] = make([]bool, l)
		for j := range p.Scan[i] {
			p.Scan[i][j] = rng.Bool()
		}
	}
	for i := range p.PI {
		p.PI[i] = rng.Bool()
	}
	return p
}

func TestRoundTrip(t *testing.T) {
	rng := stats.NewRNG(1)
	var pats []*scan.Pattern
	for i := 0; i < 10; i++ {
		pats = append(pats, makePattern([]int{8, 5}, 4, rng))
	}
	var buf bytes.Buffer
	if err := Write(&buf, pats); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if len(back) != len(pats) {
		t.Fatalf("count %d != %d", len(back), len(pats))
	}
	for i := range pats {
		if !pats[i].Equal(back[i]) {
			t.Fatalf("pattern %d mismatch", i)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := stats.NewRNG(2)
	f := func(l1raw, l2raw, pisraw uint8) bool {
		chains := []int{int(l1raw%12) + 1, int(l2raw%12) + 1}
		pis := int(pisraw % 8)
		pats := []*scan.Pattern{makePattern(chains, pis, rng), makePattern(chains, pis, rng)}
		var buf bytes.Buffer
		if err := Write(&buf, pats); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return len(back) == 2 && pats[0].Equal(back[0]) && pats[1].Equal(back[1])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyPatternSet(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Errorf("got %d patterns", len(back))
	}
}

func TestShapeMismatchRejectedOnWrite(t *testing.T) {
	rng := stats.NewRNG(3)
	pats := []*scan.Pattern{
		makePattern([]int{4}, 2, rng),
		makePattern([]int{5}, 2, rng),
	}
	var buf bytes.Buffer
	if err := Write(&buf, pats); err == nil {
		t.Error("shape mismatch must be rejected")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"no header":        "Shape { chains 0; lengths ; pis 0; }\n",
		"bad version":      "STILLITE 2;\n",
		"pattern early":    "STILLITE 1;\nPattern 0 { scan \"\"; pi \"\"; }\n",
		"garbage line":     "STILLITE 1;\nfrobnicate;\n",
		"bad bit":          "STILLITE 1;\nShape { chains 1; lengths 2; pis 0; }\nPattern 0 { scan \"0X\"; pi \"\"; }\n",
		"chain mismatch":   "STILLITE 1;\nShape { chains 2; lengths 2 2; pis 0; }\nPattern 0 { scan \"00\"; pi \"\"; }\n",
		"length mismatch":  "STILLITE 1;\nShape { chains 1; lengths 3; pis 0; }\nPattern 0 { scan \"00\"; pi \"\"; }\n",
		"pi mismatch":      "STILLITE 1;\nShape { chains 1; lengths 2; pis 2; }\nPattern 0 { scan \"00\"; pi \"0\"; }\n",
		"lengths mismatch": "STILLITE 1;\nShape { chains 2; lengths 2; pis 0; }\n",
		"missing scan":     "STILLITE 1;\nShape { chains 1; lengths 2; pis 0; }\nPattern 0 { pi \"\"; }\n",
		"bad chains num":   "STILLITE 1;\nShape { chains x; lengths ; pis 0; }\n",
	}
	for label, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", label)
		}
	}
}

func TestMissingHeaderEmptyFile(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty file must error")
	}
}
