package stil

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the pattern parser with arbitrary input: no panics,
// and accepted inputs must round-trip.
func FuzzRead(f *testing.F) {
	f.Add("STILLITE 1;\nShape { chains 1; lengths 3; pis 2; }\nPattern 0 { scan \"010\"; pi \"11\"; }\n")
	f.Add("STILLITE 1;\nShape { chains 0; lengths ; pis 0; }\n")
	f.Add("STILLITE 1;\nShape { chains 2; lengths 2 2; pis 0; }\nPattern 0 { scan \"00|11\"; pi \"\"; }\n")
	f.Fuzz(func(t *testing.T, src string) {
		pats, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, pats); err != nil {
			t.Fatalf("accepted patterns failed to serialize: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(pats) {
			t.Fatalf("round trip changed count %d -> %d", len(pats), len(back))
		}
		for i := range pats {
			if !pats[i].Equal(back[i]) {
				t.Fatal("round trip changed a pattern")
			}
		}
	})
}
