package sim

import (
	"math"
	"testing"
	"testing/quick"

	"superpose/internal/logic"
	"superpose/internal/netlist"
)

// buildGateZoo returns a netlist exercising every gate type:
//
//	and=AND(a,b) nand=NAND(a,b) or=OR(a,b) nor=NOR(a,b)
//	xor=XOR(a,b) xnor=XNOR(a,b) not=NOT(a) buf=BUF(b)
//	and3=AND(a,b,c)
func buildGateZoo(t testing.TB) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("zoo")
	for _, in := range []string{"a", "b", "c"} {
		if _, err := b.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	gates := []struct {
		name string
		typ  netlist.GateType
		in   []string
	}{
		{"g_and", netlist.And, []string{"a", "b"}},
		{"g_nand", netlist.Nand, []string{"a", "b"}},
		{"g_or", netlist.Or, []string{"a", "b"}},
		{"g_nor", netlist.Nor, []string{"a", "b"}},
		{"g_xor", netlist.Xor, []string{"a", "b"}},
		{"g_xnor", netlist.Xnor, []string{"a", "b"}},
		{"g_not", netlist.Not, []string{"a"}},
		{"g_buf", netlist.Buf, []string{"b"}},
		{"g_and3", netlist.And, []string{"a", "b", "c"}},
	}
	for _, g := range gates {
		if _, err := b.AddGate(g.name, g.typ, g.in...); err != nil {
			t.Fatal(err)
		}
		b.MarkOutput(g.name)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestGateFunctions(t *testing.T) {
	n := buildGateZoo(t)
	s := New(n)
	src := s.SourceWords()
	a, _ := n.GateID("a")
	b, _ := n.GateID("b")
	c, _ := n.GateID("c")

	// Lanes 0..7 enumerate all (a,b,c) combinations.
	var wa, wb, wc logic.Word
	for lane := uint(0); lane < 8; lane++ {
		if lane&1 != 0 {
			wa |= 1 << lane
		}
		if lane&2 != 0 {
			wb |= 1 << lane
		}
		if lane&4 != 0 {
			wc |= 1 << lane
		}
	}
	src[a], src[b], src[c] = wa, wb, wc
	vals := s.Run(src)

	check := func(name string, f func(a, b, c bool) bool) {
		t.Helper()
		id, ok := n.GateID(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		for lane := uint(0); lane < 8; lane++ {
			av, bv, cv := lane&1 != 0, lane&2 != 0, lane&4 != 0
			want := f(av, bv, cv)
			got := vals[id]&(1<<lane) != 0
			if got != want {
				t.Errorf("%s(a=%v,b=%v,c=%v) = %v, want %v", name, av, bv, cv, got, want)
			}
		}
	}
	check("g_and", func(a, b, _ bool) bool { return a && b })
	check("g_nand", func(a, b, _ bool) bool { return !(a && b) })
	check("g_or", func(a, b, _ bool) bool { return a || b })
	check("g_nor", func(a, b, _ bool) bool { return !(a || b) })
	check("g_xor", func(a, b, _ bool) bool { return a != b })
	check("g_xnor", func(a, b, _ bool) bool { return a == b })
	check("g_not", func(a, _, _ bool) bool { return !a })
	check("g_buf", func(_, b, _ bool) bool { return b })
	check("g_and3", func(a, b, c bool) bool { return a && b && c })
}

// TestParallelLanesIndependent verifies that the 64 lanes of a word never
// interfere: simulating patterns together equals simulating them one at a
// time.
func TestParallelLanesIndependent(t *testing.T) {
	n := buildGateZoo(t)
	s := New(n)
	f := func(wa, wb, wc uint64) bool {
		src := s.SourceWords()
		a, _ := n.GateID("a")
		b, _ := n.GateID("b")
		c, _ := n.GateID("c")
		src[a], src[b], src[c] = logic.Word(wa), logic.Word(wb), logic.Word(wc)
		batch := append([]logic.Word(nil), s.Run(src)...)

		single := New(n)
		ssrc := single.SourceWords()
		for lane := uint(0); lane < 64; lane++ {
			var va, vb, vc logic.Word
			if wa&(1<<lane) != 0 {
				va = logic.AllOne
			}
			if wb&(1<<lane) != 0 {
				vb = logic.AllOne
			}
			if wc&(1<<lane) != 0 {
				vc = logic.AllOne
			}
			ssrc[a], ssrc[b], ssrc[c] = va, vb, vc
			sv := single.Run(ssrc)
			for id := range sv {
				want := sv[id]&1 != 0
				got := batch[id]&(1<<lane) != 0
				if want != got {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestToggleSetAndCount(t *testing.T) {
	n := buildGateZoo(t)
	s := New(n)
	src := s.SourceWords()
	a, _ := n.GateID("a")
	b, _ := n.GateID("b")

	// Frame 1: a=0 b=0; frame 2: a=1 b=0 (lane 0).
	frame1 := append([]logic.Word(nil), s.Run(src)...)
	src[a] = 1
	frame2 := append([]logic.Word(nil), s.Run(src)...)

	toggles := ToggleSet(frame1, frame2, 0)
	want := map[string]bool{
		"a": true, "g_or": true, "g_nor": true,
		"g_xor": true, "g_xnor": true, "g_not": true,
		// g_and stays 0 (b=0), g_nand stays 1 (b=0 controls),
		// g_buf follows b, g_and3 stays 0.
	}
	got := make(map[string]bool)
	for _, id := range toggles {
		got[n.NameOf(id)] = true
	}
	for name := range want {
		if !got[name] {
			t.Errorf("expected %s to toggle", name)
		}
	}
	for name := range got {
		if !want[name] {
			t.Errorf("unexpected toggle on %s", name)
		}
	}
	if c := CountToggles(frame1, frame2, 0); c != len(toggles) {
		t.Errorf("CountToggles = %d, want %d", c, len(toggles))
	}
	_ = b

	mask := ToggleMask(frame1, frame2, nil)
	for _, id := range toggles {
		if mask[id]&1 == 0 {
			t.Errorf("ToggleMask missing toggle for %s", n.NameOf(id))
		}
	}
}

func TestSignalProbabilities(t *testing.T) {
	// p(and)=1/4, p(or)=3/4, p(xor)=1/2 under random inputs.
	n := buildGateZoo(t)
	probs := SignalProbabilities(n, 64*256, 7)
	check := func(name string, want, tol float64) {
		t.Helper()
		id, _ := n.GateID(name)
		if math.Abs(probs[id]-want) > tol {
			t.Errorf("p(%s) = %v, want %v±%v", name, probs[id], want, tol)
		}
	}
	check("g_and", 0.25, 0.02)
	check("g_or", 0.75, 0.02)
	check("g_xor", 0.50, 0.02)
	check("g_and3", 0.125, 0.02)
	check("a", 0.5, 0.02)
}

func TestSignalProbabilitiesDeterministic(t *testing.T) {
	n := buildGateZoo(t)
	p1 := SignalProbabilities(n, 128, 99)
	p2 := SignalProbabilities(n, 128, 99)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed must give identical probabilities")
		}
	}
}

func TestSignalProbabilitiesDefaultPatterns(t *testing.T) {
	n := buildGateZoo(t)
	p := SignalProbabilities(n, 0, 3) // 0 rounds up to one word
	if len(p) != n.NumGates() {
		t.Fatalf("len = %d", len(p))
	}
}

func TestSnapshotIsolation(t *testing.T) {
	n := buildGateZoo(t)
	s := New(n)
	src := s.SourceWords()
	a, _ := n.GateID("a")
	src[a] = logic.AllOne
	s.Run(src)
	snap := s.Snapshot()
	src[a] = 0
	s.Run(src)
	if snap[a] != logic.AllOne {
		t.Error("Snapshot must not alias live values")
	}
}

func BenchmarkRunZoo(b *testing.B) {
	n := buildGateZoo(b)
	s := New(n)
	src := s.SourceWords()
	a, _ := n.GateID("a")
	src[a] = 0xdeadbeef
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(src)
	}
}

func TestRunForcedOverridesNet(t *testing.T) {
	n := buildGateZoo(t)
	s := New(n)
	src := s.SourceWords()
	a, _ := n.GateID("a")
	b, _ := n.GateID("b")
	src[a], src[b] = logic.AllOne, logic.AllOne

	// Force the AND gate to 0 and check the forced net holds the value
	// while unrelated gates evaluate normally.
	gAnd, _ := n.GateID("g_and")
	vals := s.RunForced(src, gAnd, logic.AllZero)
	if vals[gAnd] != logic.AllZero {
		t.Error("forced net must hold the forced value")
	}
	gOr, _ := n.GateID("g_or")
	if vals[gOr] != logic.AllOne {
		t.Error("unrelated gates must evaluate normally")
	}

	// Forcing a source works too.
	vals = s.RunForced(src, a, logic.AllZero)
	if vals[a] != logic.AllZero {
		t.Error("forced source must hold the forced value")
	}
	gNot, _ := n.GateID("g_not")
	if vals[gNot] != logic.AllOne {
		t.Error("NOT of forced-0 source must be 1")
	}
}

func TestRunForcedPropagates(t *testing.T) {
	// d = NOT(m), m = AND(a,b): forcing m flips d regardless of sources.
	b := netlist.NewBuilder("chain2")
	if _, err := b.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddInput("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("m", netlist.And, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("d", netlist.Not, "m"); err != nil {
		t.Fatal(err)
	}
	b.MarkOutput("d")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(n)
	src := s.SourceWords()
	m, _ := n.GateID("m")
	d, _ := n.GateID("d")
	vals := s.RunForced(src, m, logic.AllOne)
	if vals[d] != logic.AllZero {
		t.Error("fault effect must propagate downstream of the forced net")
	}
}

func TestToggleSetsAllMatchesPerLane(t *testing.T) {
	n := buildGateZoo(t)
	s := New(n)
	src := s.SourceWords()
	a, _ := n.GateID("a")
	b, _ := n.GateID("b")
	src[a] = 0x5a5a5a5a5a5a5a5a
	src[b] = 0x00ff00ff00ff00ff
	f1 := append([]logic.Word(nil), s.Run(src)...)
	src[a] = ^src[a]
	f2 := append([]logic.Word(nil), s.Run(src)...)

	for _, lanes := range []int{1, 7, 64} {
		sets := ToggleSetsAll(f1, f2, lanes)
		if len(sets) != lanes {
			t.Fatalf("lanes = %d", len(sets))
		}
		for lane := 0; lane < lanes; lane++ {
			want := ToggleSet(f1, f2, uint(lane))
			if len(sets[lane]) != len(want) {
				t.Fatalf("lane %d: %v != %v", lane, sets[lane], want)
			}
			for i := range want {
				if sets[lane][i] != want[i] {
					t.Fatalf("lane %d: %v != %v", lane, sets[lane], want)
				}
			}
		}
	}
}
