package sim_test

import (
	"fmt"
	"testing"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/sim"
	"superpose/internal/stats"
)

// fuzzNetlist deterministically decodes a byte stream into a random
// netlist: a handful of PIs and DFFs, then a gate list whose types and
// fanins are drawn from the bytes. Every byte stream decodes to some
// valid netlist (draws are taken modulo the legal range), so the fuzzer
// explores structure — fanout shapes, reconvergence, gate mixes, DFF
// D-pin placement — rather than parser error paths.
func fuzzNetlist(data []byte) (*netlist.Netlist, error) {
	next := func() int {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return int(b)
	}

	b := netlist.NewBuilder("fuzz")
	numPIs := 1 + next()%4
	var nets []string
	for i := 0; i < numPIs; i++ {
		name := fmt.Sprintf("pi%d", i)
		if _, err := b.AddInput(name); err != nil {
			return nil, err
		}
		nets = append(nets, name)
	}

	types := []netlist.GateType{
		netlist.And, netlist.Nand, netlist.Or, netlist.Nor,
		netlist.Xor, netlist.Xnor, netlist.Not, netlist.Buf,
	}
	numGates := 1 + next()%64
	for i := 0; i < numGates; i++ {
		typ := types[next()%len(types)]
		arity := 1
		if typ != netlist.Not && typ != netlist.Buf {
			arity = 2 + next()%3
		}
		fanin := make([]string, arity)
		for j := range fanin {
			fanin[j] = nets[next()%len(nets)]
		}
		name := fmt.Sprintf("g%d", i)
		if _, err := b.AddGate(name, typ, fanin...); err != nil {
			return nil, err
		}
		nets = append(nets, name)
	}

	// A few DFFs whose D pins tap arbitrary nets, plus outputs, so the
	// SoA compile sees source readers (frame boundaries) and POs.
	numFFs := next() % 4
	for i := 0; i < numFFs; i++ {
		if _, err := b.AddDFF(fmt.Sprintf("ff%d", i), nets[next()%len(nets)]); err != nil {
			return nil, err
		}
	}
	for i := 0; i < 1+next()%3; i++ {
		b.MarkOutput(nets[len(nets)-1-next()%len(nets)])
	}
	return b.Build()
}

// FuzzSoA drives random netlist structures through the SoA compile and
// the PPSFP engine, holding Simulator.Run as the oracle: every net of
// every decoded circuit must evaluate bit-identically, and the fault
// propagator must agree with RunForced on a sampled fault site.
func FuzzSoA(f *testing.F) {
	f.Add([]byte{3, 10, 0, 1, 2, 4, 1, 0, 7, 3, 2, 2, 1})
	f.Add([]byte{1, 63, 6, 1, 0, 5, 2, 2, 0, 1, 3, 0, 0, 2, 9, 8})
	f.Add([]byte{4, 32, 2, 250, 17, 99, 5, 1, 1, 1, 1, 7})

	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := fuzzNetlist(data)
		if err != nil {
			t.Fatalf("fuzzNetlist must always decode a valid netlist: %v", err)
		}

		s := sim.New(n)
		pp := sim.NewPPSFP(n)
		obs := obsNets(n)
		fp := sim.NewFaultProp(n, obs)

		// Seed the stimulus from the structure bytes so every corpus
		// entry is fully reproducible.
		var h uint64 = 1469598103934665603
		for _, c := range data {
			h = (h ^ uint64(c)) * 1099511628211
		}
		rng := stats.NewRNG(h)
		src := s.SourceWords()
		dst := make([]logic.Word, n.NumGates())

		for round := 0; round < 2; round++ {
			randomSources(n, rng, src)
			want := s.Run(src)
			pp.RunInto(src, dst)
			for id := range want {
				if dst[id] != want[id] {
					t.Fatalf("net %d (%s): PPSFP %016x, scalar %016x",
						id, n.NameOf(id), dst[id], want[id])
				}
			}

			base := append([]logic.Word(nil), want...)
			fp.SetBase(base)
			for trial := 0; trial < 4; trial++ {
				net := rng.Intn(n.NumGates())
				forced := logic.Word(rng.Uint64())
				launch := logic.Word(rng.Uint64())
				faulty := s.RunForced(src, net, forced)
				var oracle logic.Word
				for _, o := range obs {
					oracle |= base[o] ^ faulty[o]
				}
				oracle &= launch
				if got := fp.Propagate(net, forced, launch); got != oracle {
					t.Fatalf("fault at net %d forced %016x: prop %016x, oracle %016x",
						net, forced, got, oracle)
				}
			}
		}
	})
}
