package sim_test

import (
	"testing"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/sim"
	"superpose/internal/stats"
	"superpose/internal/trust"
)

// TestEvalOrderedMatchesRun pins the incremental core of the sweep
// engine: re-evaluating the fanout cone of a perturbed source, in
// (level, id) order, must land on exactly the words a full Run over the
// perturbed sources produces — for every net, including those outside
// the cone (which must stay untouched).
func TestEvalOrderedMatchesRun(t *testing.T) {
	n, err := trust.Generate(trust.Params{
		Name: "evalord", PIs: 5, POs: 4, FFs: 14, Comb: 110, Levels: 5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(12)
	s := sim.New(n)
	walker := netlist.NewConeWalker(n)
	sources := make([]logic.Word, n.NumGates())
	for trial := 0; trial < 20; trial++ {
		for _, id := range n.PIs {
			sources[id] = logic.Word(rng.Uint64())
		}
		for _, id := range n.FFs {
			sources[id] = logic.Word(rng.Uint64())
		}
		base := append([]logic.Word(nil), s.Run(sources)...)

		// Perturb one or two sources.
		var roots []int
		roots = append(roots, n.PIs[int(rng.Uint64()%uint64(len(n.PIs)))])
		if rng.Uint64()%2 == 0 {
			roots = append(roots, n.FFs[int(rng.Uint64()%uint64(len(n.FFs)))])
		}
		values := append([]logic.Word(nil), base...)
		for _, r := range roots {
			sources[r] = ^sources[r]
			values[r] = sources[r]
		}
		sim.EvalOrdered(n, walker.Walk(roots), values)

		want := s.Run(sources)
		for id := range want {
			if values[id] != want[id] {
				t.Fatalf("trial %d: net %s = %064b, want %064b",
					trial, n.NameOf(id), values[id], want[id])
			}
		}
	}
}
