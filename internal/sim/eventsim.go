package sim

import (
	"fmt"

	"superpose/internal/logic"
	"superpose/internal/netlist"
)

// EventSimulator is a unit-delay event-driven simulator for a single
// pattern at a time. Unlike the zero-delay levelized Simulator, it counts
// every output event a gate produces during the settling of a launch —
// including glitches (hazards), which the zero-delay model collapses into
// at most one toggle per gate.
//
// The detection methodology itself uses the zero-delay model (consistent
// with the paper's gate-activity accounting); this simulator exists to
// quantify the glitch power the simplification ignores (see the
// BenchmarkAblationGlitch harness and EXPERIMENTS.md).
type EventSimulator struct {
	n      *netlist.Netlist
	value  []bool
	events []int // per-gate event count of the last Settle
	// scheduling scratch
	inQueue []bool
	queue   []int
	next    []int
}

// NewEventSimulator returns an event-driven simulator for n.
func NewEventSimulator(n *netlist.Netlist) *EventSimulator {
	return &EventSimulator{
		n:       n,
		value:   make([]bool, n.NumGates()),
		events:  make([]int, n.NumGates()),
		inQueue: make([]bool, n.NumGates()),
	}
}

// evalBool computes gate id over the current boolean values.
func (e *EventSimulator) evalBool(id int) bool {
	g := &e.n.Gates[id]
	switch g.Type {
	case netlist.Buf:
		return e.value[g.Fanin[0]]
	case netlist.Not:
		return !e.value[g.Fanin[0]]
	case netlist.And, netlist.Nand:
		v := true
		for _, f := range g.Fanin {
			v = v && e.value[f]
		}
		if g.Type == netlist.Nand {
			v = !v
		}
		return v
	case netlist.Or, netlist.Nor:
		v := false
		for _, f := range g.Fanin {
			v = v || e.value[f]
		}
		if g.Type == netlist.Nor {
			v = !v
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := false
		for _, f := range g.Fanin {
			v = v != e.value[f]
		}
		if g.Type == netlist.Xnor {
			v = !v
		}
		return v
	default:
		panic("sim: source gate evaluated")
	}
}

// Initialize settles the circuit from a source assignment with no event
// counting (the pre-launch steady state). sources[id] lane 0 is used.
func (e *EventSimulator) Initialize(sources []logic.Word) {
	for _, pi := range e.n.PIs {
		e.value[pi] = sources[pi]&1 != 0
	}
	for _, ff := range e.n.FFs {
		e.value[ff] = sources[ff]&1 != 0
	}
	for _, id := range e.n.TopoOrder() {
		e.value[id] = e.evalBool(id)
	}
	for i := range e.events {
		e.events[i] = 0
	}
}

// Settle applies new source values (the launch) and propagates events
// under a unit gate delay until quiescence, counting every output change
// of every gate — launches, functional toggles and glitches alike. It
// returns the total event count. Per-gate counts are available through
// Events.
//
// A circuit that has not settled after the wave bound (far beyond any
// combinational depth) is oscillating — possible when a user netlist
// carries a zero-latency feedback structure — and is reported as an
// error rather than a crash.
func (e *EventSimulator) Settle(sources []logic.Word) (int, error) {
	n := e.n
	for i := range e.events {
		e.events[i] = 0
	}
	// Time step 0: source changes.
	e.queue = e.queue[:0]
	schedule := func(id int, into *[]int) {
		if !e.inQueue[id] {
			e.inQueue[id] = true
			*into = append(*into, id)
		}
	}
	applySource := func(id int, v bool) {
		if e.value[id] != v {
			e.value[id] = v
			e.events[id]++
			for _, fo := range n.Fanouts(id) {
				if !n.Gates[fo].Type.IsSource() {
					schedule(fo, &e.queue)
				}
			}
		}
	}
	for _, pi := range n.PIs {
		applySource(pi, sources[pi]&1 != 0)
	}
	for _, ff := range n.FFs {
		applySource(ff, sources[ff]&1 != 0)
	}

	total := 0
	for id := range e.events {
		total += e.events[id]
	}

	// Unit-delay waves: all gates scheduled at time t evaluate against the
	// values of time t, producing events at t+1.
	const maxWaves = 1 << 16 // combinational circuits settle in <= depth waves
	for wave := 0; len(e.queue) > 0; wave++ {
		if wave > maxWaves {
			return total, fmt.Errorf("sim: event simulation did not settle after %d waves (oscillation?)", maxWaves)
		}
		e.next = e.next[:0]
		// Evaluate all queued gates against current values first, then
		// commit, so gates within one wave see a consistent snapshot.
		type change struct {
			id int
			v  bool
		}
		var changes []change
		for _, id := range e.queue {
			e.inQueue[id] = false
			if v := e.evalBool(id); v != e.value[id] {
				changes = append(changes, change{id, v})
			}
		}
		e.queue = e.queue[:0]
		for _, c := range changes {
			e.value[c.id] = c.v
			e.events[c.id]++
			total++
			for _, fo := range n.Fanouts(c.id) {
				if !n.Gates[fo].Type.IsSource() {
					schedule(fo, &e.next)
				}
			}
		}
		e.queue, e.next = e.next, e.queue
	}
	return total, nil
}

// Events returns the per-gate event counts of the last Settle. The slice
// is owned by the simulator.
func (e *EventSimulator) Events() []int { return e.events }

// Value returns the settled boolean value of net id.
func (e *EventSimulator) Value(id int) bool { return e.value[id] }

// GlitchReport compares the unit-delay event activity of a launch with the
// zero-delay toggle model.
type GlitchReport struct {
	ZeroDelayToggles int // gates that differ between initial and settled state
	UnitDelayEvents  int // all events, including glitches
	GlitchEvents     int // events beyond the zero-delay count
}

// AnalyzeLaunch runs a two-frame launch through the event simulator and
// reports the glitch activity. src1 and src2 are the frame source
// assignments (lane 0).
func (e *EventSimulator) AnalyzeLaunch(src1, src2 []logic.Word) (GlitchReport, error) {
	e.Initialize(src1)
	initial := append([]bool(nil), e.value...)
	events, err := e.Settle(src2)
	if err != nil {
		return GlitchReport{}, err
	}
	zero := 0
	for id, v := range e.value {
		if v != initial[id] {
			zero++
		}
	}
	return GlitchReport{
		ZeroDelayToggles: zero,
		UnitDelayEvents:  events,
		GlitchEvents:     events - zero,
	}, nil
}
