// Package sim provides levelized, 64-way pattern-parallel two-valued logic
// simulation of full-scan netlists, plus the derived analyses the
// superposition flow needs: toggle sets between two evaluations (the launch
// activity of a transition test) and Monte-Carlo signal probabilities (the
// rare-net analysis behind Trojan trigger selection).
package sim

import (
	"fmt"
	"math/bits"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/scratch"
	"superpose/internal/stats"
)

// Simulator evaluates the combinational logic of one netlist. A Simulator
// holds per-net value storage and is not safe for concurrent use; create
// one per goroutine (construction is cheap).
type Simulator struct {
	n      *netlist.Netlist
	values []logic.Word
}

// New returns a Simulator for n. The per-net value array comes from a
// shared size-class pool; Release returns it when the simulator is done.
func New(n *netlist.Netlist) *Simulator {
	return &Simulator{n: n, values: scratch.Words(n.NumGates())}
}

// Release returns the simulator's pooled value array. The Simulator
// must not be used afterwards.
func (s *Simulator) Release() {
	if s.values == nil {
		return
	}
	scratch.PutWords(s.values)
	s.values = nil
}

// Netlist returns the simulated netlist.
func (s *Simulator) Netlist() *netlist.Netlist { return s.n }

// Run evaluates the combinational logic for up to 64 patterns at once.
// sources maps each primary input and flip-flop gate ID to its word; all
// other entries are ignored. The returned slice holds one word per net and
// is owned by the Simulator: it is valid until the next Run.
func (s *Simulator) Run(sources []logic.Word) []logic.Word {
	n := s.n
	for _, pi := range n.PIs {
		s.values[pi] = sources[pi]
	}
	for _, ff := range n.FFs {
		s.values[ff] = sources[ff]
	}
	for _, id := range n.TopoOrder() {
		s.values[id] = evalGate(n, id, s.values)
	}
	return s.values
}

// evalGate computes the word of combinational gate id from the values of
// its fanins in the given value array.
func evalGate(n *netlist.Netlist, id int, values []logic.Word) logic.Word {
	g := &n.Gates[id]
	switch g.Type {
	case netlist.Buf:
		return values[g.Fanin[0]]
	case netlist.Not:
		return ^values[g.Fanin[0]]
	case netlist.And, netlist.Nand:
		w := logic.AllOne
		for _, f := range g.Fanin {
			w &= values[f]
		}
		if g.Type == netlist.Nand {
			w = ^w
		}
		return w
	case netlist.Or, netlist.Nor:
		w := logic.AllZero
		for _, f := range g.Fanin {
			w |= values[f]
		}
		if g.Type == netlist.Nor {
			w = ^w
		}
		return w
	case netlist.Xor, netlist.Xnor:
		w := logic.AllZero
		for _, f := range g.Fanin {
			w ^= values[f]
		}
		if g.Type == netlist.Xnor {
			w = ^w
		}
		return w
	default:
		panic(fmt.Sprintf("sim: unexpected gate type %v in topo order", g.Type))
	}
}

// EvalOrdered re-evaluates the listed combinational gates, in the given
// topological (e.g. levelized) order, reading and writing the value array
// in place. It is the incremental core of the single-flip sweep engine:
// callers re-evaluate only the fanout cone of a handful of changed
// sources and leave every other net's word untouched, so the cost is
// O(|cone|) instead of O(|netlist|).
func EvalOrdered(n *netlist.Netlist, order []int, values []logic.Word) {
	for _, id := range order {
		values[id] = evalGate(n, id, values)
	}
}

// Program is a compiled evaluation sequence: one fixed (levelized) gate
// order flattened into an instruction stream with inline fanin indices.
// Evaluating through a Program is semantically identical to EvalOrdered
// over the same order; it exists because the sweep engine re-evaluates
// the same union cones hundreds of times per climb, where the per-gate
// overhead of the generic path (gate-record load, fanin slice traversal,
// call dispatch) dominates. Two-input gates — the bulk of a mapped
// netlist — execute as single inline operations; wider gates read their
// fanins from a shared side table.
type Program struct {
	ops []progOp
	ext []int32
}

type progOp struct {
	id, f0, f1 int32 // target; inline fanins, or ext offset/length
	op         uint8
}

const (
	opBuf uint8 = iota
	opNot
	opAnd2
	opNand2
	opOr2
	opNor2
	opXor2
	opXnor2
	opAndN // f0 = ext offset, f1 = fanin count
	opNandN
	opOrN
	opNorN
	opXorN
	opXnorN
)

// CompileOrdered flattens the listed combinational gates, in the given
// topological order, into a Program. It panics on a source gate, exactly
// as evaluating one would.
func CompileOrdered(n *netlist.Netlist, order []int) *Program {
	p := &Program{ops: make([]progOp, 0, len(order))}
	var scratch []int32
	for _, id := range order {
		g := &n.Gates[id]
		scratch = scratch[:0]
		for _, f := range g.Fanin {
			scratch = append(scratch, int32(f))
		}
		p.push(int32(id), g.Type, scratch)
	}
	return p
}

// push appends one gate to the compiled stream. The target and fanin
// indices address whatever value array the Program will run over — the
// original gate-ID space for CompileOrdered, the compact SoA space for
// the PPSFP engine's whole-netlist program.
func (p *Program) push(id int32, typ netlist.GateType, fanin []int32) {
	o := progOp{id: id}
	var two, wide uint8
	switch typ {
	case netlist.Buf:
		o.op, o.f0 = opBuf, fanin[0]
		p.ops = append(p.ops, o)
		return
	case netlist.Not:
		o.op, o.f0 = opNot, fanin[0]
		p.ops = append(p.ops, o)
		return
	case netlist.And:
		two, wide = opAnd2, opAndN
	case netlist.Nand:
		two, wide = opNand2, opNandN
	case netlist.Or:
		two, wide = opOr2, opOrN
	case netlist.Nor:
		two, wide = opNor2, opNorN
	case netlist.Xor:
		two, wide = opXor2, opXorN
	case netlist.Xnor:
		two, wide = opXnor2, opXnorN
	default:
		panic(fmt.Sprintf("sim: unexpected gate type %v in compiled order", typ))
	}
	if len(fanin) == 2 {
		o.op, o.f0, o.f1 = two, fanin[0], fanin[1]
	} else {
		o.op, o.f0, o.f1 = wide, int32(len(p.ext)), int32(len(fanin))
		p.ext = append(p.ext, fanin...)
	}
	p.ops = append(p.ops, o)
}

// Run evaluates the compiled sequence over the value array in place —
// bit-identical to EvalOrdered over the order the Program was compiled
// from.
func (p *Program) Run(values []logic.Word) {
	ext := p.ext
	for i := range p.ops {
		o := &p.ops[i]
		switch o.op {
		case opAnd2:
			values[o.id] = values[o.f0] & values[o.f1]
		case opNand2:
			values[o.id] = ^(values[o.f0] & values[o.f1])
		case opOr2:
			values[o.id] = values[o.f0] | values[o.f1]
		case opNor2:
			values[o.id] = ^(values[o.f0] | values[o.f1])
		case opXor2:
			values[o.id] = values[o.f0] ^ values[o.f1]
		case opXnor2:
			values[o.id] = ^(values[o.f0] ^ values[o.f1])
		case opBuf:
			values[o.id] = values[o.f0]
		case opNot:
			values[o.id] = ^values[o.f0]
		default:
			w := logic.AllZero
			neg := false
			switch o.op {
			case opNandN:
				neg = true
				fallthrough
			case opAndN:
				w = logic.AllOne
				for _, f := range ext[o.f0 : o.f0+o.f1] {
					w &= values[f]
				}
			case opNorN:
				neg = true
				fallthrough
			case opOrN:
				for _, f := range ext[o.f0 : o.f0+o.f1] {
					w |= values[f]
				}
			case opXnorN:
				neg = true
				fallthrough
			case opXorN:
				for _, f := range ext[o.f0 : o.f0+o.f1] {
					w ^= values[f]
				}
			}
			if neg {
				w = ^w
			}
			values[o.id] = w
		}
	}
}

// RunPair evaluates the compiled sequence over two value arrays at once
// — bit-identical to running each array separately. The sweep engine
// uses it for the two frames of a launch-off-shift chunk, whose frames
// are independent (frame-2 sources are the loaded scan state, never a
// frame-1 response): pairing gives the core two independent dependency
// chains per instruction, hiding the load latency that dominates a
// single-frame pass, and streams the instruction words once instead of
// twice. Evaluating a gate in a frame where no perturbed source reaches
// it rewrites the value already there, so running the merged cone of
// both frames is exact.
func (p *Program) RunPair(a, b []logic.Word) {
	ext := p.ext
	for i := range p.ops {
		o := &p.ops[i]
		switch o.op {
		case opAnd2:
			a[o.id] = a[o.f0] & a[o.f1]
			b[o.id] = b[o.f0] & b[o.f1]
		case opNand2:
			a[o.id] = ^(a[o.f0] & a[o.f1])
			b[o.id] = ^(b[o.f0] & b[o.f1])
		case opOr2:
			a[o.id] = a[o.f0] | a[o.f1]
			b[o.id] = b[o.f0] | b[o.f1]
		case opNor2:
			a[o.id] = ^(a[o.f0] | a[o.f1])
			b[o.id] = ^(b[o.f0] | b[o.f1])
		case opXor2:
			a[o.id] = a[o.f0] ^ a[o.f1]
			b[o.id] = b[o.f0] ^ b[o.f1]
		case opXnor2:
			a[o.id] = ^(a[o.f0] ^ a[o.f1])
			b[o.id] = ^(b[o.f0] ^ b[o.f1])
		case opBuf:
			a[o.id] = a[o.f0]
			b[o.id] = b[o.f0]
		case opNot:
			a[o.id] = ^a[o.f0]
			b[o.id] = ^b[o.f0]
		default:
			wa, wb := logic.AllZero, logic.AllZero
			neg := false
			switch o.op {
			case opNandN:
				neg = true
				fallthrough
			case opAndN:
				wa, wb = logic.AllOne, logic.AllOne
				for _, f := range ext[o.f0 : o.f0+o.f1] {
					wa &= a[f]
					wb &= b[f]
				}
			case opNorN:
				neg = true
				fallthrough
			case opOrN:
				for _, f := range ext[o.f0 : o.f0+o.f1] {
					wa |= a[f]
					wb |= b[f]
				}
			case opXnorN:
				neg = true
				fallthrough
			case opXorN:
				for _, f := range ext[o.f0 : o.f0+o.f1] {
					wa ^= a[f]
					wb ^= b[f]
				}
			}
			if neg {
				wa, wb = ^wa, ^wb
			}
			a[o.id] = wa
			b[o.id] = wb
		}
	}
}

// RunForced evaluates like Run but forces net `forced` to the word `val`
// regardless of its driver — the faulty-machine evaluation used by fault
// simulation (a transition fault behaves as the net stuck at its initial
// value in the launch-to-capture frame). Forcing works for source and
// combinational nets alike.
func (s *Simulator) RunForced(sources []logic.Word, forced int, val logic.Word) []logic.Word {
	n := s.n
	for _, pi := range n.PIs {
		s.values[pi] = sources[pi]
	}
	for _, ff := range n.FFs {
		s.values[ff] = sources[ff]
	}
	if n.Gates[forced].Type.IsSource() {
		s.values[forced] = val
	}
	for _, id := range n.TopoOrder() {
		if id == forced {
			s.values[id] = val
			continue
		}
		s.values[id] = evalGate(n, id, s.values)
	}
	return s.values
}

// Snapshot copies the current value array (e.g. to keep a launch frame
// while simulating the capture frame).
func (s *Simulator) Snapshot() []logic.Word {
	return append([]logic.Word(nil), s.values...)
}

// SourceWords allocates a source array sized for the netlist.
func (s *Simulator) SourceWords() []logic.Word {
	return make([]logic.Word, s.n.NumGates())
}

// ToggleSet returns the IDs of all gates (including scan cells and primary
// inputs) whose value differs between the two evaluations a and b at
// pattern lane `bit`. This is the switching-activity set of a launch.
func ToggleSet(a, b []logic.Word, bit uint) []int {
	mask := logic.Word(1) << bit
	n := 0
	for id := range a {
		if (a[id]^b[id])&mask != 0 {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	for id := range a {
		if (a[id]^b[id])&mask != 0 {
			out = append(out, id)
		}
	}
	return out
}

// ToggleMask returns, per net, the lanes in which the two evaluations
// differ.
func ToggleMask(a, b []logic.Word, dst []logic.Word) []logic.Word {
	if dst == nil {
		dst = make([]logic.Word, len(a))
	}
	for id := range a {
		dst[id] = a[id] ^ b[id]
	}
	return dst
}

// ToggleSetsAll extracts the toggle sets of the first numLanes lanes in a
// single pass over the nets (O(nets + total toggles), against O(nets ×
// lanes) for per-lane ToggleSet calls).
func ToggleSetsAll(a, b []logic.Word, numLanes int) [][]int {
	out, _ := ToggleSetsAllBuf(a, b, numLanes, nil)
	return out
}

// ToggleSetsAllBuf is ToggleSetsAll with a caller-owned backing array:
// the per-lane sets are carved out of buf (grown only when too small),
// so a steady caller — the strategic climb analyses pairs once per
// candidate modification — churns no per-call garbage. The returned
// buffer must be threaded back into the next call; the sets alias it
// and are valid only until then.
func ToggleSetsAllBuf(a, b []logic.Word, numLanes int, buf []int) ([][]int, []int) {
	out := make([][]int, numLanes)
	laneMask := logic.Word(1)<<uint(numLanes) - 1
	if numLanes >= 64 {
		laneMask = ^logic.Word(0)
	}
	// Count first, then carve one exactly-sized backing array into the
	// per-lane sets: two passes over the nets instead of dozens of
	// append-grown reallocations across the lanes. The three-index
	// slices cap each lane's region so a caller's append cannot clobber
	// its neighbour.
	var counts [64]int
	total := 0
	for id := range a {
		m := (a[id] ^ b[id]) & laneMask
		for m != 0 {
			lane := bits.TrailingZeros64(uint64(m))
			counts[lane]++
			total++
			m &= m - 1
		}
	}
	if cap(buf) < total {
		buf = make([]int, total)
	}
	buf = buf[:total]
	off := 0
	nl := numLanes
	if nl > 64 {
		nl = 64
	}
	for lane := 0; lane < nl; lane++ {
		end := off + counts[lane]
		out[lane] = buf[off:off:end]
		off = end
	}
	for id := range a {
		m := (a[id] ^ b[id]) & laneMask
		for m != 0 {
			lane := bits.TrailingZeros64(uint64(m))
			out[lane] = append(out[lane], id)
			m &= m - 1
		}
	}
	return out, buf
}

// CountToggles returns the number of toggling nets at pattern lane bit.
func CountToggles(a, b []logic.Word, bit uint) int {
	mask := logic.Word(1) << bit
	c := 0
	for id := range a {
		if (a[id]^b[id])&mask != 0 {
			c++
		}
	}
	return c
}

// SignalProbabilities estimates, for every net, the probability that the
// net evaluates to 1 under uniformly random primary-input and scan-cell
// values. numPatterns is rounded up to a multiple of 64. The result feeds
// the rare-net analysis used for Trojan trigger placement.
func SignalProbabilities(n *netlist.Netlist, numPatterns int, seed uint64) []float64 {
	if numPatterns <= 0 {
		numPatterns = 64
	}
	words := (numPatterns + 63) / 64
	rng := stats.NewRNG(seed)
	s := New(n)
	sources := s.SourceWords()
	ones := make([]int, n.NumGates())
	for w := 0; w < words; w++ {
		for _, pi := range n.PIs {
			sources[pi] = logic.Word(rng.Uint64())
		}
		for _, ff := range n.FFs {
			sources[ff] = logic.Word(rng.Uint64())
		}
		vals := s.Run(sources)
		for id, v := range vals {
			ones[id] += popcount(v)
		}
	}
	total := float64(words * 64)
	probs := make([]float64, n.NumGates())
	for id, c := range ones {
		probs[id] = float64(c) / total
	}
	return probs
}

func popcount(w logic.Word) int { return bits.OnesCount64(uint64(w)) }
