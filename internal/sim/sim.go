// Package sim provides levelized, 64-way pattern-parallel two-valued logic
// simulation of full-scan netlists, plus the derived analyses the
// superposition flow needs: toggle sets between two evaluations (the launch
// activity of a transition test) and Monte-Carlo signal probabilities (the
// rare-net analysis behind Trojan trigger selection).
package sim

import (
	"fmt"
	"math/bits"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/stats"
)

// Simulator evaluates the combinational logic of one netlist. A Simulator
// holds per-net value storage and is not safe for concurrent use; create
// one per goroutine (construction is cheap).
type Simulator struct {
	n      *netlist.Netlist
	values []logic.Word
}

// New returns a Simulator for n.
func New(n *netlist.Netlist) *Simulator {
	return &Simulator{n: n, values: make([]logic.Word, n.NumGates())}
}

// Netlist returns the simulated netlist.
func (s *Simulator) Netlist() *netlist.Netlist { return s.n }

// Run evaluates the combinational logic for up to 64 patterns at once.
// sources maps each primary input and flip-flop gate ID to its word; all
// other entries are ignored. The returned slice holds one word per net and
// is owned by the Simulator: it is valid until the next Run.
func (s *Simulator) Run(sources []logic.Word) []logic.Word {
	n := s.n
	for _, pi := range n.PIs {
		s.values[pi] = sources[pi]
	}
	for _, ff := range n.FFs {
		s.values[ff] = sources[ff]
	}
	for _, id := range n.TopoOrder() {
		s.values[id] = s.eval(id)
	}
	return s.values
}

// eval computes the word of combinational gate id from the current values
// of its fanins.
func (s *Simulator) eval(id int) logic.Word {
	g := &s.n.Gates[id]
	switch g.Type {
	case netlist.Buf:
		return s.values[g.Fanin[0]]
	case netlist.Not:
		return ^s.values[g.Fanin[0]]
	case netlist.And, netlist.Nand:
		w := logic.AllOne
		for _, f := range g.Fanin {
			w &= s.values[f]
		}
		if g.Type == netlist.Nand {
			w = ^w
		}
		return w
	case netlist.Or, netlist.Nor:
		w := logic.AllZero
		for _, f := range g.Fanin {
			w |= s.values[f]
		}
		if g.Type == netlist.Nor {
			w = ^w
		}
		return w
	case netlist.Xor, netlist.Xnor:
		w := logic.AllZero
		for _, f := range g.Fanin {
			w ^= s.values[f]
		}
		if g.Type == netlist.Xnor {
			w = ^w
		}
		return w
	default:
		panic(fmt.Sprintf("sim: unexpected gate type %v in topo order", g.Type))
	}
}

// RunForced evaluates like Run but forces net `forced` to the word `val`
// regardless of its driver — the faulty-machine evaluation used by fault
// simulation (a transition fault behaves as the net stuck at its initial
// value in the launch-to-capture frame). Forcing works for source and
// combinational nets alike.
func (s *Simulator) RunForced(sources []logic.Word, forced int, val logic.Word) []logic.Word {
	n := s.n
	for _, pi := range n.PIs {
		s.values[pi] = sources[pi]
	}
	for _, ff := range n.FFs {
		s.values[ff] = sources[ff]
	}
	if n.Gates[forced].Type.IsSource() {
		s.values[forced] = val
	}
	for _, id := range n.TopoOrder() {
		if id == forced {
			s.values[id] = val
			continue
		}
		s.values[id] = s.eval(id)
	}
	return s.values
}

// Snapshot copies the current value array (e.g. to keep a launch frame
// while simulating the capture frame).
func (s *Simulator) Snapshot() []logic.Word {
	return append([]logic.Word(nil), s.values...)
}

// SourceWords allocates a source array sized for the netlist.
func (s *Simulator) SourceWords() []logic.Word {
	return make([]logic.Word, s.n.NumGates())
}

// ToggleSet returns the IDs of all gates (including scan cells and primary
// inputs) whose value differs between the two evaluations a and b at
// pattern lane `bit`. This is the switching-activity set of a launch.
func ToggleSet(a, b []logic.Word, bit uint) []int {
	mask := logic.Word(1) << bit
	var out []int
	for id := range a {
		if (a[id]^b[id])&mask != 0 {
			out = append(out, id)
		}
	}
	return out
}

// ToggleMask returns, per net, the lanes in which the two evaluations
// differ.
func ToggleMask(a, b []logic.Word, dst []logic.Word) []logic.Word {
	if dst == nil {
		dst = make([]logic.Word, len(a))
	}
	for id := range a {
		dst[id] = a[id] ^ b[id]
	}
	return dst
}

// ToggleSetsAll extracts the toggle sets of the first numLanes lanes in a
// single pass over the nets (O(nets + total toggles), against O(nets ×
// lanes) for per-lane ToggleSet calls).
func ToggleSetsAll(a, b []logic.Word, numLanes int) [][]int {
	out := make([][]int, numLanes)
	laneMask := logic.Word(1)<<uint(numLanes) - 1
	if numLanes >= 64 {
		laneMask = ^logic.Word(0)
	}
	for id := range a {
		m := (a[id] ^ b[id]) & laneMask
		for m != 0 {
			lane := bits.TrailingZeros64(uint64(m))
			out[lane] = append(out[lane], id)
			m &= m - 1
		}
	}
	return out
}

// CountToggles returns the number of toggling nets at pattern lane bit.
func CountToggles(a, b []logic.Word, bit uint) int {
	mask := logic.Word(1) << bit
	c := 0
	for id := range a {
		if (a[id]^b[id])&mask != 0 {
			c++
		}
	}
	return c
}

// SignalProbabilities estimates, for every net, the probability that the
// net evaluates to 1 under uniformly random primary-input and scan-cell
// values. numPatterns is rounded up to a multiple of 64. The result feeds
// the rare-net analysis used for Trojan trigger placement.
func SignalProbabilities(n *netlist.Netlist, numPatterns int, seed uint64) []float64 {
	if numPatterns <= 0 {
		numPatterns = 64
	}
	words := (numPatterns + 63) / 64
	rng := stats.NewRNG(seed)
	s := New(n)
	sources := s.SourceWords()
	ones := make([]int, n.NumGates())
	for w := 0; w < words; w++ {
		for _, pi := range n.PIs {
			sources[pi] = logic.Word(rng.Uint64())
		}
		for _, ff := range n.FFs {
			sources[ff] = logic.Word(rng.Uint64())
		}
		vals := s.Run(sources)
		for id, v := range vals {
			ones[id] += popcount(v)
		}
	}
	total := float64(words * 64)
	probs := make([]float64, n.NumGates())
	for id, c := range ones {
		probs[id] = float64(c) / total
	}
	return probs
}

func popcount(w logic.Word) int { return bits.OnesCount64(uint64(w)) }
