package sim_test

import (
	"testing"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/sim"
	"superpose/internal/stats"
	"superpose/internal/trust"
)

// gateZoo returns a single-level netlist exercising every gate type.
func gateZoo(t testing.TB) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("zoo")
	for _, in := range []string{"a", "b", "c"} {
		if _, err := b.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	gates := []struct {
		name string
		typ  netlist.GateType
		in   []string
	}{
		{"g_and", netlist.And, []string{"a", "b"}},
		{"g_nand", netlist.Nand, []string{"a", "b"}},
		{"g_or", netlist.Or, []string{"a", "b"}},
		{"g_nor", netlist.Nor, []string{"a", "b"}},
		{"g_xor", netlist.Xor, []string{"a", "b"}},
		{"g_xnor", netlist.Xnor, []string{"a", "b"}},
		{"g_not", netlist.Not, []string{"a"}},
		{"g_buf", netlist.Buf, []string{"b"}},
		{"g_and3", netlist.And, []string{"a", "b", "c"}},
	}
	for _, g := range gates {
		if _, err := b.AddGate(g.name, g.typ, g.in...); err != nil {
			t.Fatal(err)
		}
		b.MarkOutput(g.name)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// randomSources fills a source array with random 64-lane words on the
// netlist's PI and FF nets.
func randomSources(n *netlist.Netlist, rng *stats.RNG, dst []logic.Word) []logic.Word {
	for _, id := range n.PIs {
		dst[id] = logic.Word(rng.Uint64())
	}
	for _, id := range n.FFs {
		dst[id] = logic.Word(rng.Uint64())
	}
	return dst
}

// obsNets returns the observation points the fault simulator uses:
// primary outputs plus every flip-flop D-pin net, deduplicated.
func obsNets(n *netlist.Netlist) []int {
	seen := make(map[int]bool)
	var obs []int
	add := func(id int) {
		if !seen[id] {
			seen[id] = true
			obs = append(obs, id)
		}
	}
	for _, po := range n.POs {
		add(po)
	}
	for _, ff := range n.FFs {
		add(n.Gates[ff].Fanin[0])
	}
	return obs
}

func ppsfpTestNetlist(t testing.TB, seed uint64) *netlist.Netlist {
	t.Helper()
	n, err := trust.Generate(trust.Params{
		Name: "ppsfp", PIs: 6, POs: 6, FFs: 24, Comb: 300, Levels: 6, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestPPSFPRunIntoMatchesRun requires RunInto to be bit-identical to
// Simulator.Run over random 64-lane source words, on both the gate zoo
// (every gate type) and generated multi-level circuits.
func TestPPSFPRunIntoMatchesRun(t *testing.T) {
	nets := []*netlist.Netlist{gateZoo(t)}
	for seed := uint64(1); seed <= 3; seed++ {
		nets = append(nets, ppsfpTestNetlist(t, seed))
	}
	for _, n := range nets {
		s := sim.New(n)
		pp := sim.NewPPSFP(n)
		rng := stats.NewRNG(99)
		src := s.SourceWords()
		dst := make([]logic.Word, n.NumGates())
		for round := 0; round < 8; round++ {
			randomSources(n, rng, src)
			want := s.Run(src)
			pp.RunInto(src, dst)
			for id := range want {
				if dst[id] != want[id] {
					t.Fatalf("%s round %d: net %d (%s): PPSFP %016x, scalar %016x",
						n.Name, round, id, n.NameOf(id), dst[id], want[id])
				}
			}
		}
	}
}

// TestFaultPropMatchesRunForced cross-checks the event-driven fault
// propagator against full faulty-machine re-simulation: for every net
// and both forced polarities, the observation-point deviation restricted
// to the launch word must match the scalar diff computation exactly.
func TestFaultPropMatchesRunForced(t *testing.T) {
	for seed := uint64(1); seed <= 2; seed++ {
		n := ppsfpTestNetlist(t, seed)
		s := sim.New(n)
		obs := obsNets(n)
		fp := sim.NewFaultProp(n, obs)
		rng := stats.NewRNG(7 * seed)
		src := s.SourceWords()

		for round := 0; round < 3; round++ {
			randomSources(n, rng, src)
			base := append([]logic.Word(nil), s.Run(src)...)
			fp.SetBase(base)

			for net := 0; net < n.NumGates(); net++ {
				for _, forced := range []logic.Word{logic.AllZero, logic.AllOne, logic.Word(rng.Uint64())} {
					launch := logic.Word(rng.Uint64())

					faulty := s.RunForced(src, net, forced)
					var want logic.Word
					for _, o := range obs {
						want |= base[o] ^ faulty[o]
					}
					want &= launch

					got := fp.Propagate(net, forced, launch)
					if got != want {
						t.Fatalf("%s round %d net %d (%s) forced %016x launch %016x: prop %016x, oracle %016x",
							n.Name, round, net, n.NameOf(net), forced, launch, got, want)
					}
				}
			}
		}
	}
}

// TestFaultPropEarlyExitLanes checks the all-launch-lanes-covered early
// exit against the oracle on narrow launch words (single lanes), where
// the exit fires most often.
func TestFaultPropEarlyExitLanes(t *testing.T) {
	n := ppsfpTestNetlist(t, 5)
	s := sim.New(n)
	obs := obsNets(n)
	fp := sim.NewFaultProp(n, obs)
	rng := stats.NewRNG(11)
	src := randomSources(n, rng, s.SourceWords())
	base := append([]logic.Word(nil), s.Run(src)...)
	fp.SetBase(base)

	for net := 0; net < n.NumGates(); net += 3 {
		for lane := uint(0); lane < 64; lane += 17 {
			launch := logic.Word(1) << lane
			forced := logic.AllOne
			faulty := s.RunForced(src, net, forced)
			var want logic.Word
			for _, o := range obs {
				want |= base[o] ^ faulty[o]
			}
			want &= launch
			if got := fp.Propagate(net, forced, launch); got != want {
				t.Fatalf("net %d lane %d: prop %016x, oracle %016x", net, lane, got, want)
			}
		}
	}
}

// TestEngineKindRoundTrip pins the flag vocabulary: every kind parses
// back from its String, and the aliases map where they should.
func TestEngineKindRoundTrip(t *testing.T) {
	for _, k := range []sim.EngineKind{sim.EngineAuto, sim.EnginePPSFP, sim.EngineScalar} {
		got, ok := sim.ParseEngineKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseEngineKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if k, ok := sim.ParseEngineKind("legacy"); !ok || k != sim.EngineScalar {
		t.Errorf(`ParseEngineKind("legacy") = %v, %v, want scalar`, k, ok)
	}
	if k, ok := sim.ParseEngineKind(""); !ok || k != sim.EngineAuto {
		t.Errorf(`ParseEngineKind("") = %v, %v, want auto`, k, ok)
	}
	if _, ok := sim.ParseEngineKind("warp"); ok {
		t.Error(`ParseEngineKind("warp") accepted`)
	}
	if sim.EngineAuto.Resolve() != sim.EnginePPSFP {
		t.Error("EngineAuto must resolve to PPSFP")
	}
	if sim.EngineScalar.Resolve() != sim.EngineScalar {
		t.Error("EngineScalar must resolve to itself")
	}
}
