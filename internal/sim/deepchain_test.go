package sim_test

import (
	"fmt"
	"testing"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/sim"
)

// deepChain builds a 50k-deep alternating NOT/BUF chain through the
// streaming builder: a depth hazard for any recursive walk in the
// build, levelization or simulation pipeline.
func deepChain(t testing.TB, depth int) (*netlist.Netlist, int, int) {
	t.Helper()
	b := netlist.NewStreamBuilder("deepsim", depth+4)
	in := b.InternString("a")
	if err := b.AddInput(in); err != nil {
		t.Fatal(err)
	}
	prev := in
	inversions := 0
	for i := 0; i < depth; i++ {
		id := b.InternString(fmt.Sprintf("c%d", i))
		typ := netlist.Not
		if i%2 == 1 {
			typ = netlist.Buf
		} else {
			inversions++
		}
		if err := b.AddGate(id, typ, []int32{prev}); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	b.MarkOutput([]byte(fmt.Sprintf("c%d", depth-1)))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n, int(in), inversions
}

// TestDeepChainSimulate drives the 50k-deep chain end to end through
// both simulation backends: the scalar per-gate Simulator and the
// compiled PPSFP engine must agree with the parity of the chain's
// inverters on every lane, without any stack-depth hazard.
func TestDeepChainSimulate(t *testing.T) {
	const depth = 50000
	n, in, inversions := deepChain(t, depth)
	out := n.NumGates() - 1

	s := sim.New(n)
	defer s.Release()
	sources := s.SourceWords()
	const stim = logic.Word(0xA5A5_5A5A_0F0F_F0F0)
	sources[in] = stim
	want := stim
	if inversions%2 == 1 {
		want = ^stim
	}
	vals := s.Run(sources)
	if vals[out] != want {
		t.Fatalf("scalar chain output %016x, want %016x", vals[out], want)
	}

	pp := sim.NewPPSFP(n)
	defer pp.Release()
	dst := make([]logic.Word, n.NumGates())
	pp.RunInto(sources, dst)
	for id := range dst {
		if dst[id] != vals[id] {
			t.Fatalf("PPSFP diverges from scalar at gate %d", id)
		}
	}

	// Delta propagation down the full chain: flipping the input lane-0
	// bit must deviate every gate of the chain.
	dp := sim.NewDeltaProp(n)
	defer dp.Release()
	dp.SetBase(vals)
	dp.Begin()
	dp.SeedXOR(in, 1)
	dp.Run()
	if got := dp.DeltaOf(out); got != 1 {
		t.Fatalf("delta at chain output = %x, want 1", got)
	}
	if got := dp.AppendDiverged(nil); len(got) != depth+1 {
		t.Fatalf("diverged %d gates, want %d", len(got), depth+1)
	}
}
