package sim

import (
	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/scratch"
)

// DeltaProp is multi-seed event-driven divergence propagation over the
// SoA netlist core: given one frame's fault-free base words (all 64
// lanes of a broadcast base pattern), it computes how a set of source
// perturbations — e.g. a sweep chunk's one-flip-per-lane XOR seeds —
// deviates the frame, by propagating only actual word changes through
// the fanout structure. It is the generalization of FaultProp from one
// forced site to many seeded sources, keeping the full deviated state
// queryable instead of reducing to an observation mask.
//
// The payoff is the same as fault propagation's: logic masking kills
// most divergence within a few levels, so the touched set is typically
// a small fraction of the union structural cone of 64 spread flips
// (which can cover half the netlist). Gates the deviation never reaches
// keep their base words by construction, so the result is bit-identical
// to re-evaluating the union cone in full — two-valued logic has one
// answer; only the work changes.
//
// Unlike FaultProp's epoch-marked overlay, val is a full materialized
// copy of base: Begin un-does the previous propagation's touched entries
// (a short list), which keeps the hot eval loop free of per-fanin mark
// checks — it reads val directly, exactly like a compiled Program over
// its value array.
//
// A DeltaProp owns its state and is not safe for concurrent use.
type DeltaProp struct {
	soa  *netlist.SoA
	base []logic.Word // compact-indexed frame base values
	val  []logic.Word // == base except at the live propagation's touched set

	sched   []uint32 // epoch guard for bucket membership
	epoch   uint32
	buckets [][]int32 // per-level worklists, drained low to high

	touched []int32 // compact IDs whose val may deviate this propagation
}

// NewDeltaProp builds a propagator for n. The O(gates) working arrays
// come from shared size-class pools; Release returns them when the
// propagator is done, so per-lot construction churn stays flat.
func NewDeltaProp(n *netlist.Netlist) *DeltaProp {
	s := n.SoA()
	return &DeltaProp{
		soa:     s,
		base:    scratch.Words(s.NumGates),
		val:     scratch.Words(s.NumGates),
		sched:   scratch.Uint32s(s.NumGates),
		buckets: make([][]int32, s.MaxLevel+1),
	}
}

// Release returns the propagator's pooled working arrays. The DeltaProp
// must not be used afterwards.
func (dp *DeltaProp) Release() {
	if dp.base == nil {
		return
	}
	scratch.PutWords(dp.base)
	scratch.PutWords(dp.val)
	scratch.PutUint32s(dp.sched)
	dp.base, dp.val, dp.sched = nil, nil, nil
}

// SetBase loads the frame's fault-free values (original-indexed, one
// word per net) that subsequent propagations deviate from.
func (dp *DeltaProp) SetBase(values []logic.Word) {
	for c, id := range dp.soa.Orig {
		w := values[id]
		dp.base[c] = w
		dp.val[c] = w
	}
	dp.touched = dp.touched[:0] // val == base everywhere again
}

// Begin starts a new propagation: it rolls the previous one's touched
// entries back to base, then seeds accumulate via SeedXOR until Run
// drains the deviation.
func (dp *DeltaProp) Begin() {
	for _, c := range dp.touched {
		dp.val[c] = dp.base[c]
	}
	dp.touched = dp.touched[:0]
	dp.epoch++
	if dp.epoch == 0 { // uint32 wraparound: restart the scheduling guard
		clear(dp.sched)
		dp.epoch = 1
	}
}

// SeedXOR XORs delta into source net's word (original ID). Seeds are
// cumulative — two seeds on the same net compose exactly like two XORs
// into a working array — and a zero net deviation (delta folding back
// to base) propagates nothing.
func (dp *DeltaProp) SeedXOR(net int, delta logic.Word) {
	if delta == 0 {
		return
	}
	c := dp.soa.Compact[net]
	if dp.val[c] == dp.base[c] {
		dp.touched = append(dp.touched, c)
	}
	dp.val[c] ^= delta
}

// Run propagates the seeded deviation to fixpoint: level-bucketed
// worklists, evaluating a gate only when a fanin's word actually
// changed, dropping branches the logic masks off.
func (dp *DeltaProp) Run() {
	s := dp.soa
	epoch := dp.epoch
	lo, hi := s.MaxLevel+1, 0
	schedule := func(c int32) {
		for _, g := range s.FanoutOf(c) {
			if dp.sched[g] != epoch {
				dp.sched[g] = epoch
				l := int(s.Level[g])
				dp.buckets[l] = append(dp.buckets[l], g)
				if l < lo {
					lo = l
				}
				if l > hi {
					hi = l
				}
			}
		}
	}
	// touched holds exactly the seeds at this point; seeds whose deltas
	// folded back to zero wake nothing.
	for _, c := range dp.touched {
		if dp.val[c] != dp.base[c] {
			schedule(c)
		}
	}
	for l := lo; l <= hi; l++ {
		// A gate's fanouts sit at strictly higher levels, so the bucket
		// being drained never grows under its own iteration.
		for _, g := range dp.buckets[l] {
			nv := dp.eval(g)
			// val[g] is still base[g] here: fanout CSR edges never lead to
			// source gates, so an evaluated gate is never a seed, and the
			// epoch guard admits each gate to its level bucket only once.
			if nv == dp.base[g] {
				continue // deviation masked off at this gate
			}
			dp.val[g] = nv
			dp.touched = append(dp.touched, g)
			schedule(g)
		}
		dp.buckets[l] = dp.buckets[l][:0]
	}
}

// Value returns net's current word (original ID): the base word moved
// by however much of the seeded deviation reached it.
func (dp *DeltaProp) Value(net int) logic.Word {
	return dp.val[dp.soa.Compact[net]]
}

// DeltaOf returns net's deviation word value^base (original ID); zero
// when the propagation never reached it.
func (dp *DeltaProp) DeltaOf(net int) logic.Word {
	c := dp.soa.Compact[net]
	return dp.val[c] ^ dp.base[c]
}

// DeltaAt is DeltaOf in the compact index space — for callers merging
// several propagators over the same SoA, which resolve the compact
// index once via Compact.
func (dp *DeltaProp) DeltaAt(c int32) logic.Word {
	return dp.val[c] ^ dp.base[c]
}

// Compact translates an original net ID into the propagator's compact
// index space (shared by every DeltaProp over the same netlist).
func (dp *DeltaProp) Compact(net int) int32 {
	return dp.soa.Compact[net]
}

// AppendDiverged appends the original IDs of every net whose word
// deviates from base after Run — seeds whose deltas folded back to zero
// excluded — in no particular order.
func (dp *DeltaProp) AppendDiverged(ids []int32) []int32 {
	for _, c := range dp.touched {
		if dp.val[c] != dp.base[c] {
			ids = append(ids, dp.soa.Orig[c])
		}
	}
	return ids
}

// eval recomputes compact gate g directly over val — the same word
// algebra as evalGate, over the SoA layout.
func (dp *DeltaProp) eval(g int32) logic.Word {
	s := dp.soa
	val := dp.val
	fanin := s.FaninOf(g)
	switch s.Typ[g] {
	case netlist.Buf:
		return val[fanin[0]]
	case netlist.Not:
		return ^val[fanin[0]]
	case netlist.And, netlist.Nand:
		w := logic.AllOne
		for _, f := range fanin {
			w &= val[f]
		}
		if s.Typ[g] == netlist.Nand {
			w = ^w
		}
		return w
	case netlist.Or, netlist.Nor:
		w := logic.AllZero
		for _, f := range fanin {
			w |= val[f]
		}
		if s.Typ[g] == netlist.Nor {
			w = ^w
		}
		return w
	case netlist.Xor, netlist.Xnor:
		w := logic.AllZero
		for _, f := range fanin {
			w ^= val[f]
		}
		if s.Typ[g] == netlist.Xnor {
			w = ^w
		}
		return w
	default:
		panic("sim: DeltaProp.eval on a source gate")
	}
}
