package sim

import (
	"strings"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/scratch"
)

// EngineKind selects the simulation backend of the launch machinery:
// the 64-patterns-per-word PPSFP engine over the structure-of-arrays
// netlist core, or the scalar reference paths it was proven against.
// The two are bit-identical — two-valued logic simulation has exactly
// one answer — so the selector only ever changes cost, never results;
// the scalar kind exists as the oracle the equivalence and exhaustive
// suites run the PPSFP engine against.
type EngineKind uint8

const (
	// EngineAuto resolves to the default engine (PPSFP).
	EngineAuto EngineKind = iota
	// EnginePPSFP is the compiled structure-of-arrays engine: full
	// launches run an instruction stream over a compact value plane,
	// and fault simulation propagates each fault event-driven through
	// its fanout cone instead of re-simulating the whole netlist.
	EnginePPSFP
	// EngineScalar is the original per-gate reference implementation.
	EngineScalar
)

// Resolve maps EngineAuto to the concrete default kind.
func (k EngineKind) Resolve() EngineKind {
	if k == EngineAuto {
		return EnginePPSFP
	}
	return k
}

// String names the kind ("auto", "ppsfp", "scalar").
func (k EngineKind) String() string {
	switch k {
	case EngineAuto:
		return "auto"
	case EnginePPSFP:
		return "ppsfp"
	case EngineScalar:
		return "scalar"
	default:
		return "EngineKind(?)"
	}
}

// ParseEngineKind converts a flag value to an EngineKind.
func ParseEngineKind(s string) (EngineKind, bool) {
	switch strings.ToLower(s) {
	case "", "auto":
		return EngineAuto, true
	case "ppsfp":
		return EnginePPSFP, true
	case "scalar", "legacy":
		return EngineScalar, true
	}
	return EngineAuto, false
}

// PPSFP is the 64-patterns-per-word batch launcher over the
// structure-of-arrays netlist core: the whole combinational netlist
// compiled once into a Program whose instructions address a dense,
// levelized compact value plane. One RunInto evaluates 64 independent
// patterns per logic.Word pass — bit-identical to Simulator.Run over
// the same sources, without the per-gate record loads, fanin slice
// traversals and dispatch of the generic path.
//
// A PPSFP owns its value plane and is not safe for concurrent use;
// create one per goroutine (the compiled program and SoA layout are
// shared per netlist, so construction is cheap after the first).
type PPSFP struct {
	soa   *netlist.SoA
	prog  *Program
	plane []logic.Word // compact-indexed values
}

// NewPPSFP builds the engine for n, compiling the netlist's SoA layout
// on first use.
func NewPPSFP(n *netlist.Netlist) *PPSFP {
	s := n.SoA()
	p := &PPSFP{
		soa:   s,
		plane: scratch.Words(s.NumGates),
	}
	p.prog = &Program{ops: make([]progOp, 0, s.NumGates-s.NumSources)}
	for c := int32(s.NumSources); c < int32(s.NumGates); c++ {
		p.prog.push(c, s.Typ[c], s.FaninOf(c))
	}
	return p
}

// Release returns the engine's pooled value plane. The PPSFP must not
// be used afterwards.
func (p *PPSFP) Release() {
	if p.plane == nil {
		return
	}
	scratch.PutWords(p.plane)
	p.plane = nil
}

// RunInto evaluates up to 64 patterns at once: sources maps each
// primary input and flip-flop gate ID (original IDs) to its word, dst
// receives one word per net. It is bit-identical to
// copy(dst, Simulator.Run(sources)): the compact program evaluates the
// same gates, in the same levelized order, with the same word algebra —
// only the memory layout differs. dst must hold NumGates words.
func (p *PPSFP) RunInto(sources, dst []logic.Word) {
	s := p.soa
	plane := p.plane
	for c, id := range s.Orig[:s.NumSources] {
		plane[c] = sources[id]
	}
	p.prog.Run(plane)
	for id, c := range s.Compact {
		dst[id] = plane[c]
	}
}

// FaultProp is the single-fault propagation half of PPSFP fault
// simulation: given the fault-free capture frame of a 64-pattern batch,
// it computes one fault's faulty-machine deviation by propagating the
// forced value event-driven through the fanout cone — level-bucketed
// worklists over the SoA layout — instead of re-simulating the whole
// netlist. Gates the fault effect never reaches keep their fault-free
// words by construction, so the detection mask is bit-identical to the
// full RunForced evaluation the scalar path performs.
//
// A FaultProp owns its overlay state and is not safe for concurrent
// use; fault-simulation workers each hold their own.
type FaultProp struct {
	soa   *netlist.SoA
	isObs []bool // compact-indexed observation points (POs + FF D pins)

	base []logic.Word // compact fault-free capture-frame values

	// Epoch-marked overlay: val[c] is live iff mark[c] == epoch, so
	// propagations never clear state. sched guards bucket membership
	// the same way.
	val     []logic.Word
	mark    []uint32
	sched   []uint32
	epoch   uint32
	buckets [][]int32 // per-level worklists, drained low to high
}

// NewFaultProp builds a propagator for n. obs lists the observation
// nets (original gate IDs — primary outputs and scan-cell D pins) a
// fault must reach to be detected.
func NewFaultProp(n *netlist.Netlist, obs []int) *FaultProp {
	s := n.SoA()
	fp := &FaultProp{
		soa:     s,
		isObs:   make([]bool, s.NumGates),
		base:    make([]logic.Word, s.NumGates),
		val:     make([]logic.Word, s.NumGates),
		mark:    make([]uint32, s.NumGates),
		sched:   make([]uint32, s.NumGates),
		buckets: make([][]int32, s.MaxLevel+1),
	}
	for _, o := range obs {
		fp.isObs[s.Compact[o]] = true
	}
	return fp
}

// SetBase loads the fault-free capture-frame values (original-indexed,
// one word per net — e.g. the good-machine frame 2 of a batch launch)
// the subsequent Propagate calls deviate from.
func (fp *FaultProp) SetBase(values []logic.Word) {
	for c, id := range fp.soa.Orig {
		fp.base[c] = values[id]
	}
}

// Propagate forces net (original ID) to the word forced and returns the
// lanes — restricted to launch — on which the deviation reaches an
// observation point: exactly detectOne's diff&launch over a full
// faulty-machine re-simulation, including its early exit once every
// launch lane has detected.
func (fp *FaultProp) Propagate(net int, forced, launch logic.Word) logic.Word {
	s := fp.soa
	site := s.Compact[net]
	delta := fp.base[site] ^ forced
	if delta == 0 {
		// The forced value equals the fault-free one on every lane: the
		// faulty machine is the good machine.
		return 0
	}
	fp.epoch++
	if fp.epoch == 0 { // uint32 wraparound: restart the marking scheme
		clear(fp.mark)
		clear(fp.sched)
		fp.epoch = 1
	}
	epoch := fp.epoch
	fp.val[site] = forced
	fp.mark[site] = epoch

	var diff logic.Word
	if fp.isObs[site] {
		diff = delta
		if diff&launch == launch {
			return launch
		}
	}

	lo, hi := s.MaxLevel+1, 0
	for _, g := range s.FanoutOf(site) {
		if fp.sched[g] != epoch {
			fp.sched[g] = epoch
			l := int(s.Level[g])
			fp.buckets[l] = append(fp.buckets[l], g)
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
	}
	for l := lo; l <= hi; l++ {
		// A gate's fanouts sit at strictly higher levels, so the bucket
		// being drained never grows under its own iteration.
		for _, g := range fp.buckets[l] {
			nv := fp.eval(g, epoch)
			if nv == fp.base[g] {
				continue // deviation masked off at this gate
			}
			fp.val[g] = nv
			fp.mark[g] = epoch
			if fp.isObs[g] {
				diff |= nv ^ fp.base[g]
				if diff&launch == launch {
					for k := l; k <= hi; k++ {
						fp.buckets[k] = fp.buckets[k][:0]
					}
					return launch
				}
			}
			for _, fo := range s.FanoutOf(g) {
				if fp.sched[fo] != epoch {
					fp.sched[fo] = epoch
					fl := int(s.Level[fo])
					fp.buckets[fl] = append(fp.buckets[fl], fo)
					if fl > hi {
						hi = fl
					}
				}
			}
		}
		fp.buckets[l] = fp.buckets[l][:0]
	}
	return diff & launch
}

// eval recomputes compact gate g, reading overlay values where the
// current propagation marked them and fault-free base values elsewhere
// — the same word algebra as evalGate, over the SoA layout.
func (fp *FaultProp) eval(g int32, epoch uint32) logic.Word {
	s := fp.soa
	read := func(f int32) logic.Word {
		if fp.mark[f] == epoch {
			return fp.val[f]
		}
		return fp.base[f]
	}
	fanin := s.FaninOf(g)
	switch s.Typ[g] {
	case netlist.Buf:
		return read(fanin[0])
	case netlist.Not:
		return ^read(fanin[0])
	case netlist.And, netlist.Nand:
		w := logic.AllOne
		for _, f := range fanin {
			w &= read(f)
		}
		if s.Typ[g] == netlist.Nand {
			w = ^w
		}
		return w
	case netlist.Or, netlist.Nor:
		w := logic.AllZero
		for _, f := range fanin {
			w |= read(f)
		}
		if s.Typ[g] == netlist.Nor {
			w = ^w
		}
		return w
	case netlist.Xor, netlist.Xnor:
		w := logic.AllZero
		for _, f := range fanin {
			w ^= read(f)
		}
		if s.Typ[g] == netlist.Xnor {
			w = ^w
		}
		return w
	default:
		panic("sim: FaultProp.eval on a source gate")
	}
}
