package sim

import (
	"testing"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/stats"
)

// buildHazard constructs the classic static-1 hazard circuit:
//
//	y = OR(a, na), na = NOT(a)
//
// Under unit delay, a 0->1 transition on `a` makes y glitch 1->0->1 (the
// OR sees a=1 only after na has already fallen... actually the inverter
// lags: when a rises, the OR momentarily sees a=1,na=1 (no glitch on
// rise); when a falls, the OR sees a=0,na=0 for one unit — a 1->0->1
// glitch). The zero-delay model sees no toggle at all (y is constant 1).
func buildHazard(t testing.TB) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("hazard")
	if _, err := b.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("na", netlist.Not, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("y", netlist.Or, "a", "na"); err != nil {
		t.Fatal(err)
	}
	b.MarkOutput("y")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestEventSimStaticHazard(t *testing.T) {
	n := buildHazard(t)
	e := NewEventSimulator(n)
	a, _ := n.GateID("a")
	y, _ := n.GateID("y")
	na, _ := n.GateID("na")

	src := make([]logic.Word, n.NumGates())
	// Falling input: a 1 -> 0. na lags by one unit, so the OR sees (0,0)
	// for one wave: a 1->0->1 glitch on y.
	src[a] = 1
	e.Initialize(src)
	if !e.Value(y) {
		t.Fatal("y must be 1 initially")
	}
	src[a] = 0
	rep, err := e.AnalyzeLaunch(mkSrc(n, a, 1), mkSrc(n, a, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Zero delay: y unchanged, na toggles, a toggles -> 2 toggles.
	if rep.ZeroDelayToggles != 2 {
		t.Errorf("zero-delay toggles = %d, want 2 (a, na)", rep.ZeroDelayToggles)
	}
	// Unit delay: a(1) + na(1) + y glitch(2 events) = 4.
	if rep.UnitDelayEvents != 4 {
		t.Errorf("unit-delay events = %d, want 4", rep.UnitDelayEvents)
	}
	if rep.GlitchEvents != 2 {
		t.Errorf("glitch events = %d, want 2", rep.GlitchEvents)
	}
	_ = na
}

func TestEventSimNoGlitchOnRise(t *testing.T) {
	// Rising input on the hazard circuit: the OR sees a=1 before na falls,
	// so y holds 1 throughout — no glitch, only a and na toggle.
	n := buildHazard(t)
	e := NewEventSimulator(n)
	a, _ := n.GateID("a")
	rep, err := e.AnalyzeLaunch(mkSrc(n, a, 0), mkSrc(n, a, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GlitchEvents != 0 {
		t.Errorf("glitch events = %d, want 0 on rising edge", rep.GlitchEvents)
	}
	if rep.ZeroDelayToggles != 2 || rep.UnitDelayEvents != 2 {
		t.Errorf("toggles = %d/%d, want 2/2", rep.ZeroDelayToggles, rep.UnitDelayEvents)
	}
}

func mkSrc(n *netlist.Netlist, id int, v logic.Word) []logic.Word {
	src := make([]logic.Word, n.NumGates())
	src[id] = v
	return src
}

// TestEventSimAgreesWithZeroDelayOnSettledState: after settling, the
// event simulator's values must equal the levelized simulator's.
func TestEventSimAgreesWithZeroDelayOnSettledState(t *testing.T) {
	n := buildGateZoo(t)
	e := NewEventSimulator(n)
	s := New(n)
	rng := stats.NewRNG(31)

	for trial := 0; trial < 50; trial++ {
		src1 := s.SourceWords()
		src2 := s.SourceWords()
		for _, pi := range n.PIs {
			if rng.Bool() {
				src1[pi] = 1
			}
			if rng.Bool() {
				src2[pi] = 1
			}
		}
		e.Initialize(src1)
		if _, err := e.Settle(src2); err != nil {
			t.Fatal(err)
		}
		vals := s.Run(src2)
		for id := range vals {
			want := vals[id]&1 != 0
			if e.Value(id) != want {
				t.Fatalf("trial %d: net %s settled to %v, levelized says %v",
					trial, n.NameOf(id), e.Value(id), want)
			}
		}
	}
}

// TestEventSimEventParity: every gate's event count must have the parity
// of its net value change (even events iff the value returned to start).
func TestEventSimEventParity(t *testing.T) {
	n := buildGateZoo(t)
	e := NewEventSimulator(n)
	rng := stats.NewRNG(7)
	s := New(n)
	for trial := 0; trial < 50; trial++ {
		src1 := s.SourceWords()
		src2 := s.SourceWords()
		for _, pi := range n.PIs {
			if rng.Bool() {
				src1[pi] = 1
			}
			if rng.Bool() {
				src2[pi] = 1
			}
		}
		e.Initialize(src1)
		before := append([]bool(nil), e.value...)
		if _, err := e.Settle(src2); err != nil {
			t.Fatal(err)
		}
		for id, ev := range e.Events() {
			changed := e.value[id] != before[id]
			if (ev%2 == 1) != changed {
				t.Fatalf("net %s: %d events but changed=%v", n.NameOf(id), ev, changed)
			}
		}
	}
}

func TestEventSimGlitchesOnRealCircuit(t *testing.T) {
	// On a multi-level circuit with reconvergence, unit-delay events must
	// be >= zero-delay toggles; equality would mean no hazards anywhere,
	// which XOR-rich reconvergent logic makes very unlikely over many
	// trials.
	b := netlist.NewBuilder("reconv")
	if _, err := b.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddInput("bb"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("n1", netlist.Not, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("n2", netlist.And, "a", "bb"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("n3", netlist.Xor, "n1", "n2"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("n4", netlist.Or, "n3", "a"); err != nil {
		t.Fatal(err)
	}
	b.MarkOutput("n4")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	e := NewEventSimulator(n)
	a, _ := n.GateID("a")
	bb, _ := n.GateID("bb")
	glitchSeen := false
	for v1 := 0; v1 < 4; v1++ {
		for v2 := 0; v2 < 4; v2++ {
			src1 := make([]logic.Word, n.NumGates())
			src2 := make([]logic.Word, n.NumGates())
			src1[a] = logic.Word(v1 & 1)
			src1[bb] = logic.Word(v1 >> 1)
			src2[a] = logic.Word(v2 & 1)
			src2[bb] = logic.Word(v2 >> 1)
			rep, err := e.AnalyzeLaunch(src1, src2)
			if err != nil {
				t.Fatal(err)
			}
			if rep.UnitDelayEvents < rep.ZeroDelayToggles {
				t.Fatalf("unit-delay events %d < zero-delay toggles %d",
					rep.UnitDelayEvents, rep.ZeroDelayToggles)
			}
			if rep.GlitchEvents > 0 {
				glitchSeen = true
			}
		}
	}
	if !glitchSeen {
		t.Error("expected at least one hazard in reconvergent logic")
	}
}
