package sim

import (
	"superpose/internal/logic"
	"superpose/internal/netlist"
)

// SeqSimulator runs multi-cycle functional simulation of a full-scan
// netlist: each Clock call evaluates the combinational logic under the
// current state and primary inputs, then loads every flip-flop from its D
// pin. 64 independent sequences run in parallel (one per lane).
//
// The launch-based packages (scan, atpg) treat the flip-flops as test
// points; this simulator exercises the circuit as the mission mode would,
// which is how a Trojan's functional payload corruption actually
// manifests in the field.
type SeqSimulator struct {
	n     *netlist.Netlist
	sim   *Simulator
	src   []logic.Word
	state []logic.Word // per-FF (indexed by gate ID)
	vals  []logic.Word // last evaluation
}

// NewSeq returns a sequential simulator with all-zero initial state.
func NewSeq(n *netlist.Netlist) *SeqSimulator {
	s := New(n)
	return &SeqSimulator{
		n:     n,
		sim:   s,
		src:   s.SourceWords(),
		state: make([]logic.Word, n.NumGates()),
	}
}

// Reset clears the flip-flop state to all zeros.
func (s *SeqSimulator) Reset() {
	for i := range s.state {
		s.state[i] = 0
	}
	s.vals = nil
}

// LoadState sets the state of flip-flop gate id (all lanes).
func (s *SeqSimulator) LoadState(id int, w logic.Word) {
	s.state[id] = w
}

// State returns the current value word of flip-flop gate id.
func (s *SeqSimulator) State(id int) logic.Word { return s.state[id] }

// Clock applies one cycle: primary inputs take pi (indexed like
// Netlist.PIs), the combinational logic settles, outputs become visible
// through Values, and every flip-flop captures its D pin. It returns the
// primary-output words of the cycle, in Netlist.POs order.
func (s *SeqSimulator) Clock(pi []logic.Word) []logic.Word {
	n := s.n
	for i, id := range n.PIs {
		if i < len(pi) {
			s.src[id] = pi[i]
		} else {
			s.src[id] = 0
		}
	}
	for _, ff := range n.FFs {
		s.src[ff] = s.state[ff]
	}
	s.vals = s.sim.Run(s.src)
	out := make([]logic.Word, len(n.POs))
	for i, po := range n.POs {
		out[i] = s.vals[po]
	}
	for _, ff := range n.FFs {
		s.state[ff] = s.vals[n.Gates[ff].Fanin[0]]
	}
	return out
}

// Value returns net id's word from the last Clock evaluation.
func (s *SeqSimulator) Value(id int) logic.Word {
	if s.vals == nil {
		return 0
	}
	return s.vals[id]
}
