package sim

import (
	"testing"

	"superpose/internal/logic"
	"superpose/internal/netlist"
)

// buildCounter makes a 3-bit ripple-ish counter with an enable input:
//
//	b0' = b0 XOR en
//	b1' = b1 XOR (b0 AND en)
//	b2' = b2 XOR (b1 AND b0 AND en)
func buildCounter(t testing.TB) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("ctr")
	if _, err := b.AddInput("en"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		name := []string{"b0", "b1", "b2"}[i]
		if _, err := b.AddDFF(name, "d_"+name); err != nil {
			t.Fatal(err)
		}
	}
	mustGate := func(name string, typ netlist.GateType, in ...string) {
		t.Helper()
		if _, err := b.AddGate(name, typ, in...); err != nil {
			t.Fatal(err)
		}
	}
	mustGate("c0", netlist.And, "b0", "en")
	mustGate("c1", netlist.And, "b1", "c0")
	mustGate("d_b0", netlist.Xor, "b0", "en")
	mustGate("d_b1", netlist.Xor, "b1", "c0")
	mustGate("d_b2", netlist.Xor, "b2", "c1")
	b.MarkOutput("b2")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSequentialCounter(t *testing.T) {
	n := buildCounter(t)
	s := NewSeq(n)
	ids := make([]int, 3)
	for i, name := range []string{"b0", "b1", "b2"} {
		ids[i], _ = n.GateID(name)
	}
	read := func() int {
		v := 0
		for i, id := range ids {
			if s.State(id)&1 != 0 {
				v |= 1 << i
			}
		}
		return v
	}

	// Count 10 enabled cycles: state must run 1,2,...,10 mod 8.
	for cycle := 1; cycle <= 10; cycle++ {
		s.Clock([]logic.Word{logic.AllOne})
		if got, want := read(), cycle%8; got != want {
			t.Fatalf("cycle %d: state %d, want %d", cycle, got, want)
		}
	}
	// Disabled cycles hold state.
	before := read()
	for i := 0; i < 3; i++ {
		s.Clock([]logic.Word{0})
	}
	if read() != before {
		t.Error("disabled counter must hold")
	}
	// Reset clears.
	s.Reset()
	if read() != 0 {
		t.Error("reset must clear state")
	}
}

func TestSequentialLanesIndependent(t *testing.T) {
	// Lane 0 counts (en=1), lane 1 holds (en=0).
	n := buildCounter(t)
	s := NewSeq(n)
	b0, _ := n.GateID("b0")
	for i := 0; i < 3; i++ {
		s.Clock([]logic.Word{1}) // en set only in lane 0
	}
	if s.State(b0)&1 != 1 { // 3 mod 2
		t.Error("lane 0 must count")
	}
	if s.State(b0)&2 != 0 {
		t.Error("lane 1 must hold zero")
	}
}

func TestLoadStateAndValue(t *testing.T) {
	n := buildCounter(t)
	s := NewSeq(n)
	b2, _ := n.GateID("b2")
	s.LoadState(b2, logic.AllOne)
	if s.Value(b2) != 0 {
		t.Error("Value before any Clock must be 0")
	}
	out := s.Clock([]logic.Word{0})
	// b2 is the PO; with state loaded it reads 1 everywhere.
	if out[0] != logic.AllOne {
		t.Error("PO must reflect loaded state")
	}
	if s.Value(b2) != logic.AllOne {
		t.Error("Value must reflect the last evaluation")
	}
}

// TestSequentialTrojanPayloadFires demonstrates the functional threat: a
// dormant Trojan leaves mission-mode behaviour untouched cycle after
// cycle, until the trigger state arrives and the payload corrupts a PO.
func TestSequentialTrojanPayloadFires(t *testing.T) {
	n := buildCounter(t)
	// Hand-insert a trigger on (b0 AND b1 AND b2) == 7 corrupting b2's
	// next state: build the infected circuit from scratch.
	b := netlist.NewBuilder("ctr_troj")
	if _, err := b.AddInput("en"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"b0", "b1", "b2"} {
		if _, err := b.AddDFF(name, "dt_"+name); err != nil {
			t.Fatal(err)
		}
	}
	mustGate := func(name string, typ netlist.GateType, in ...string) {
		t.Helper()
		if _, err := b.AddGate(name, typ, in...); err != nil {
			t.Fatal(err)
		}
	}
	mustGate("c0", netlist.And, "b0", "en")
	mustGate("c1", netlist.And, "b1", "c0")
	mustGate("d_b0", netlist.Xor, "b0", "en")
	mustGate("d_b1", netlist.Xor, "b1", "c0")
	mustGate("d_b2", netlist.Xor, "b2", "c1")
	mustGate("trig", netlist.And, "b0", "b1", "b2")
	mustGate("dt_b0", netlist.Buf, "d_b0")
	mustGate("dt_b1", netlist.Buf, "d_b1")
	mustGate("dt_b2", netlist.Xor, "d_b2", "trig") // payload
	b.MarkOutput("b2")
	inf, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	good := NewSeq(n)
	bad := NewSeq(inf)
	diverged := -1
	for cycle := 1; cycle <= 16; cycle++ {
		og := good.Clock([]logic.Word{logic.AllOne})
		ob := bad.Clock([]logic.Word{logic.AllOne})
		if og[0]&1 != ob[0]&1 {
			diverged = cycle
			break
		}
	}
	// State 7 is reached after cycle 7; the trigger fires during cycle 8's
	// evaluation, the corrupted b2 loads at that cycle's clock edge, and
	// the PO (the flip-flop output) first shows it on cycle 9.
	if diverged != 9 {
		t.Errorf("divergence at cycle %d, want 9", diverged)
	}
}
