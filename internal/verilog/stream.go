package verilog

import (
	"bytes"
	"fmt"
	"io"
	"unicode"
	"unicode/utf8"

	"superpose/internal/netlist"
	"superpose/internal/textio"
)

// ParseStream reads a structural Verilog module through the streaming
// ingestion path: the lexer tokenizes one line at a time from a fixed
// bufio window instead of materializing the whole file's token slice,
// and net names intern straight into a netlist.StreamBuilder. The
// accepted language and the resulting netlist are identical to Parse
// (the fuzz target holds the two paths to agreement); peak memory drops
// from O(file) to the symbol table plus arenas.
func ParseStream(r io.Reader, name string) (*netlist.Netlist, error) {
	return ParseStreamSized(r, name, 0)
}

// ParseStreamSized is ParseStream with a pre-sizing hint for the
// expected number of nets (see netlist.NewStreamBuilder).
func ParseStreamSized(r io.Reader, name string, sizeHint int) (*netlist.Netlist, error) {
	p := &streamParser{
		lx: newLexer(r),
		b:  netlist.NewStreamBuilder(name, sizeHint),
	}
	if err := p.parseModule(); err != nil {
		return nil, fmt.Errorf("verilog %s: %w", name, err)
	}
	return p.b.Build()
}

// lexer yields the same token stream tokenize() produces — identifiers
// and single-rune punctuation, comments stripped, invalid UTF-8 folded
// to U+FFFD — but holds only the current line.
type lexer struct {
	lines  *textio.Lines
	inBlk  bool
	eof    bool
	lineno int

	clean, spare []byte // comment-splice scratch (ping-pong)
	tokBuf       []byte // current line's token bytes
	spans        []tokSpan
	idx          int
}

type tokSpan struct {
	start, end int32
	line       int32
}

type streamTok struct {
	text []byte // valid only until the next lexer call
	line int
}

func newLexer(r io.Reader) *lexer {
	// The 64 MiB cap mirrors the legacy tokenizer's Scanner buffer.
	return &lexer{lines: textio.NewLines(r, 64*1024*1024)}
}

func (l *lexer) peek() (streamTok, bool, error) {
	for l.idx >= len(l.spans) {
		if l.eof {
			return streamTok{}, false, nil
		}
		if err := l.advanceLine(); err != nil {
			return streamTok{}, false, err
		}
	}
	s := l.spans[l.idx]
	return streamTok{l.tokBuf[s.start:s.end], int(s.line)}, true, nil
}

func (l *lexer) next() (streamTok, error) {
	t, ok, err := l.peek()
	if err != nil {
		return streamTok{}, err
	}
	if !ok {
		return streamTok{}, fmt.Errorf("unexpected end of file")
	}
	l.idx++
	return t, nil
}

func (l *lexer) expect(text string) error {
	t, err := l.next()
	if err != nil {
		return err
	}
	if string(t.text) != text {
		return fmt.Errorf("line %d: expected %q, got %q", t.line, text, t.text)
	}
	return nil
}

// advanceLine loads and tokenizes the next source line.
func (l *lexer) advanceLine() error {
	line, err := l.lines.Next()
	if err == io.EOF {
		l.eof = true
		l.spans = l.spans[:0]
		l.idx = 0
		return nil
	}
	if err != nil {
		return err
	}
	l.lineno++

	// Comment handling replicates the legacy per-line transformation
	// exactly, quirks included: "//" strips before inline "/*...*/"
	// splicing, and an unterminated "/*" swallows the rest of the line.
	if l.inBlk {
		if i := bytes.Index(line, []byte("*/")); i >= 0 {
			line = line[i+2:]
			l.inBlk = false
		} else {
			l.spans = l.spans[:0]
			l.idx = 0
			return nil
		}
	}
	if i := bytes.Index(line, []byte("//")); i >= 0 {
		line = line[:i]
	}
	for {
		i := bytes.Index(line, []byte("/*"))
		if i < 0 {
			break
		}
		j := bytes.Index(line[i+2:], []byte("*/"))
		if j < 0 {
			line = line[:i]
			l.inBlk = true
			break
		}
		// Splice the comment out with a separating space, into the spare
		// buffer (line may alias the other scratch buffer).
		buf := append(l.spare[:0], line[:i]...)
		buf = append(buf, ' ')
		buf = append(buf, line[i+2+j+2:]...)
		l.spare, l.clean = l.clean, buf
		line = buf
	}

	l.tokBuf = l.tokBuf[:0]
	l.spans = l.spans[:0]
	l.idx = 0
	start := 0
	flush := func() {
		if len(l.tokBuf) > start {
			l.spans = append(l.spans, tokSpan{int32(start), int32(len(l.tokBuf)), int32(l.lineno)})
		}
		start = len(l.tokBuf)
	}
	for i := 0; i < len(line); {
		r, sz := utf8.DecodeRune(line[i:])
		i += sz
		switch {
		case r == '(' || r == ')' || r == ',' || r == ';' || r == '.':
			flush()
			l.tokBuf = utf8.AppendRune(l.tokBuf, r)
			flush()
		case r == ' ' || r == '\t' || r == '\r':
			flush()
		default:
			l.tokBuf = utf8.AppendRune(l.tokBuf, r)
		}
	}
	flush()
	return nil
}

type streamParser struct {
	lx *lexer
	b  *netlist.StreamBuilder

	outputs []string // PO names in declaration order, marked at endmodule

	// Per-instance scratch, reset per instantiation.
	kind         []byte  // lowered cell kind
	arena        []byte  // copied net-name tokens (lexer slices die across lines)
	ids          []int32 // fanin scratch handed to AddGate (copied there)
	ports        [][2]int32
	qSpan, dSpan [2]int32
	hasQ, hasD   bool
	namedCount   int
}

func (p *streamParser) parseModule() error {
	if err := p.lx.expect("module"); err != nil {
		return err
	}
	if _, err := p.lx.next(); err != nil { // module name
		return err
	}
	// Port list (names only; directions come from the declarations).
	if err := p.lx.expect("("); err != nil {
		return err
	}
	for {
		t, err := p.lx.next()
		if err != nil {
			return err
		}
		if string(t.text) == ")" {
			break
		}
	}
	if err := p.lx.expect(";"); err != nil {
		return err
	}

	for {
		t, ok, err := p.lx.peek()
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("missing endmodule")
		}
		switch string(t.text) {
		case "endmodule":
			p.lx.idx++
			for _, o := range p.outputs {
				p.b.MarkOutput([]byte(o))
			}
			return nil
		case "input":
			p.lx.idx++
			if err := p.nameList(func(tok []byte) error {
				if ignoredTok(tok) {
					return nil
				}
				return p.b.AddInput(p.b.Intern(tok))
			}); err != nil {
				return err
			}
		case "output":
			p.lx.idx++
			if err := p.nameList(func(tok []byte) error {
				p.outputs = append(p.outputs, string(tok))
				return nil
			}); err != nil {
				return err
			}
		case "wire":
			p.lx.idx++
			if err := p.nameList(nil); err != nil {
				return err
			}
		default:
			if err := p.parseInstance(); err != nil {
				return err
			}
		}
	}
}

// nameList parses "a, b, c ;", invoking fn on each name in order.
func (p *streamParser) nameList(fn func([]byte) error) error {
	for {
		t, err := p.lx.next()
		if err != nil {
			return err
		}
		switch string(t.text) {
		case ";":
			return nil
		case ",":
		case "(", ")", ".":
			return fmt.Errorf("line %d: unexpected %q in declaration", t.line, t.text)
		default:
			if fn != nil {
				if err := fn(t.text); err != nil {
					return err
				}
			}
		}
	}
}

func (p *streamParser) addPort(tok []byte) [2]int32 {
	start := int32(len(p.arena))
	p.arena = append(p.arena, tok...)
	return [2]int32{start, int32(len(p.arena))}
}

func (p *streamParser) portBytes(s [2]int32) []byte { return p.arena[s[0]:s[1]] }

// parseInstance parses one gate or flip-flop instantiation.
func (p *streamParser) parseInstance() error {
	kindTok, err := p.lx.next()
	if err != nil {
		return err
	}
	kindLine := kindTok.line
	p.kind = lowerAppend(p.kind[:0], kindTok.text)

	// Instance label (optional for primitives, common in netlists).
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	if string(t.text) != "(" {
		if err := p.lx.expect("("); err != nil {
			return err
		}
	}

	p.arena = p.arena[:0]
	p.ports = p.ports[:0]
	p.hasQ, p.hasD = false, false
	p.namedCount = 0
	for {
		t, err := p.lx.next()
		if err != nil {
			return err
		}
		switch string(t.text) {
		case ")":
			if err := p.lx.expect(";"); err != nil {
				return err
			}
			return p.buildInstance(kindLine)
		case ",":
		case ".":
			port, err := p.lx.next()
			if err != nil {
				return err
			}
			isQ := upperEq(port.text, "Q")
			isD := upperEq(port.text, "D")
			if err := p.lx.expect("("); err != nil {
				return err
			}
			net, err := p.lx.next()
			if err != nil {
				return err
			}
			if err := p.lx.expect(")"); err != nil {
				return err
			}
			p.namedCount++
			if isQ { // last named .Q wins, like the legacy map
				p.qSpan, p.hasQ = p.addPort(net.text), true
			}
			if isD {
				p.dSpan, p.hasD = p.addPort(net.text), true
			}
		default:
			p.ports = append(p.ports, p.addPort(t.text))
		}
	}
}

func (p *streamParser) buildInstance(line int) error {
	if typ, ok := gateTypes[string(p.kind)]; ok {
		if p.namedCount > 0 {
			return fmt.Errorf("line %d: named ports on primitive %q not supported", line, p.kind)
		}
		if len(p.ports) < 2 {
			return fmt.Errorf("line %d: %q needs an output and at least one input", line, p.kind)
		}
		outID := p.b.Intern(p.portBytes(p.ports[0]))
		p.ids = p.ids[:0]
		for _, s := range p.ports[1:] {
			p.ids = append(p.ids, p.b.Intern(p.portBytes(s)))
		}
		return p.b.AddGate(outID, typ, p.ids)
	}

	// Flip-flop (any kind containing "dff" or the Trust-Hub "fd"-style
	// cells): named .Q/.D or positional (Q, D); clock/reset ports ignored.
	if bytes.Contains(p.kind, []byte("dff")) || bytes.HasPrefix(p.kind, []byte("fd")) {
		var q, d []byte
		if p.namedCount > 0 {
			if p.hasQ {
				q = p.portBytes(p.qSpan)
			}
			if p.hasD {
				d = p.portBytes(p.dSpan)
			}
		} else {
			var nets [][2]int32
			for _, s := range p.ports {
				if !ignoredTok(p.portBytes(s)) {
					nets = append(nets, s)
				}
			}
			if len(nets) >= 2 {
				q, d = p.portBytes(nets[0]), p.portBytes(nets[1])
			}
		}
		if len(q) == 0 || len(d) == 0 {
			return fmt.Errorf("line %d: flip-flop %q needs Q and D ports", line, p.kind)
		}
		qID := p.b.Intern(q)
		return p.b.AddDFF(qID, p.b.Intern(d))
	}
	return fmt.Errorf("line %d: unknown cell %q", line, p.kind)
}

// ignoredTok is ignoredNet over a byte token, upper-casing rune-wise
// the way strings.ToUpper would.
func ignoredTok(tok []byte) bool {
	var up [16]byte
	n := 0
	for i := 0; i < len(tok); {
		r, sz := utf8.DecodeRune(tok[i:])
		i += sz
		u := unicode.ToUpper(r)
		if u >= utf8.RuneSelf || n == len(up) {
			return false // non-ASCII or longer than any ignored name
		}
		up[n] = byte(u)
		n++
	}
	switch string(up[:n]) {
	case "CK", "CLK", "CLOCK", "GN", "SE", "SCAN_EN", "RESET", "RST", "TEST_SE":
		return true
	}
	return false
}

// upperEq reports whether strings.ToUpper(tok) equals the ASCII literal.
func upperEq(tok []byte, lit string) bool {
	j := 0
	for i := 0; i < len(tok); {
		r, sz := utf8.DecodeRune(tok[i:])
		i += sz
		if j >= len(lit) || unicode.ToUpper(r) != rune(lit[j]) {
			return false
		}
		j++
	}
	return j == len(lit)
}

// lowerAppend appends strings.ToLower(src) to dst, rune by rune.
func lowerAppend(dst, src []byte) []byte {
	for i := 0; i < len(src); {
		r, sz := utf8.DecodeRune(src[i:])
		i += sz
		dst = utf8.AppendRune(dst, unicode.ToLower(r))
	}
	return dst
}
