package verilog

import (
	"bytes"
	"strings"
	"testing"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/sim"
	"superpose/internal/trust"
)

const miniSrc = `
// A miniature Trust-Hub-style netlist.
module mini(a, b, clk, z);
  input a, b, clk;
  output z;
  wire w1, w2, q;
  nand g1 (w1, a, b);
  not  g2 (w2, w1);
  dff  r1 (.CK(clk), .Q(q), .D(w2));
  /* block comment
     spanning lines */
  buf  g3 (z, q);
endmodule
`

func TestParseMini(t *testing.T) {
	n, err := Parse(strings.NewReader(miniSrc), "mini")
	if err != nil {
		t.Fatal(err)
	}
	s := n.ComputeStats()
	if s.PIs != 2 { // clk excluded
		t.Errorf("PIs = %d, want 2", s.PIs)
	}
	if s.FFs != 1 || s.POs != 1 {
		t.Errorf("FFs/POs = %d/%d", s.FFs, s.POs)
	}
	w1, ok := n.GateID("w1")
	if !ok || n.Gates[w1].Type != netlist.Nand {
		t.Error("nand gate missing")
	}
	q, _ := n.GateID("q")
	if n.Gates[q].Type != netlist.DFF {
		t.Error("dff missing")
	}
	w2, _ := n.GateID("w2")
	if n.Gates[q].Fanin[0] != w2 {
		t.Error("dff D pin wrong")
	}
}

func TestParsePositionalDFFAndUnnamedGates(t *testing.T) {
	src := `
module m(a, z);
  input a;
  output z;
  wire d, q;
  not (d, q);
  dff r (q, d);
  buf (z, q);
endmodule
`
	// "not (d, q)" has no instance label — legal Verilog for primitives.
	n, err := Parse(strings.NewReader(src), "m")
	if err != nil {
		t.Fatal(err)
	}
	q, _ := n.GateID("q")
	if n.Gates[q].Type != netlist.DFF {
		t.Fatal("positional dff not recognized")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing endmodule": "module m(a);\ninput a;\n",
		"unknown cell":      "module m(a);\ninput a;\nfrob g1 (a, a);\nendmodule\n",
		"double drive":      "module m(a, z);\ninput a;\noutput z;\nwire w;\nnot g1 (w, a);\nnot g2 (w, a);\nbuf g3 (z, w);\nendmodule\n",
		"no ports on dff":   "module m(a);\ninput a;\ndff r ();\nendmodule\n",
		"one-term gate":     "module m(a);\ninput a;\nnot g1 (a);\nendmodule\n",
		"named primitive":   "module m(a, z);\ninput a;\noutput z;\nnot g1 (.O(z), .I(a));\nendmodule\n",
		"undriven output":   "module m(a, z);\ninput a;\noutput z;\nendmodule\n",
	}
	for label, src := range cases {
		if _, err := Parse(strings.NewReader(src), label); err == nil {
			t.Errorf("%s: expected error", label)
		}
	}
}

func TestRoundTripThroughVerilog(t *testing.T) {
	host, err := trust.Generate(trust.Params{
		Name: "vrt", PIs: 4, POs: 5, FFs: 12, Comb: 120, Levels: 5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, host); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()), "vrt")
	if err != nil {
		t.Fatalf("%v\nsource:\n%s", err, buf.String())
	}
	if back.NumGates() != host.NumGates() {
		t.Fatalf("gate count %d != %d", back.NumGates(), host.NumGates())
	}
	// Behavioural equivalence under identical stimuli.
	sa, sb := sim.New(host), sim.New(back)
	srcA, srcB := sa.SourceWords(), sb.SourceWords()
	seed := uint64(99)
	for _, id := range append(append([]int{}, host.PIs...), host.FFs...) {
		seed = seed*6364136223846793005 + 1442695040888963407
		srcA[id] = logic.Word(seed)
		idB, ok := back.GateID(host.NameOf(id))
		if !ok {
			t.Fatalf("net %s missing after round trip", host.NameOf(id))
		}
		srcB[idB] = logic.Word(seed)
	}
	va, vb := sa.Run(srcA), sb.Run(srcB)
	for id := range va {
		idB, ok := back.GateID(host.NameOf(id))
		if !ok || va[id] != vb[idB] {
			t.Fatalf("net %s differs after round trip", host.NameOf(id))
		}
	}
}

func TestWriteMentionsEveryGateKind(t *testing.T) {
	b := netlist.NewBuilder("kinds")
	ins := []string{"a", "b"}
	for _, in := range ins {
		if _, err := b.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	kinds := []struct {
		name string
		typ  netlist.GateType
	}{
		{"k_and", netlist.And}, {"k_nand", netlist.Nand},
		{"k_or", netlist.Or}, {"k_nor", netlist.Nor},
		{"k_xor", netlist.Xor}, {"k_xnor", netlist.Xnor},
	}
	for _, k := range kinds {
		if _, err := b.AddGate(k.name, k.typ, "a", "b"); err != nil {
			t.Fatal(err)
		}
		b.MarkOutput(k.name)
	}
	if _, err := b.AddGate("k_not", netlist.Not, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("k_buf", netlist.Buf, "b"); err != nil {
		t.Fatal(err)
	}
	b.MarkOutput("k_not")
	b.MarkOutput("k_buf")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, kw := range []string{"and ", "nand ", "or ", "nor ", "xor ", "xnor ", "not ", "buf "} {
		if !strings.Contains(out, kw) {
			t.Errorf("output missing %q:\n%s", kw, out)
		}
	}
	if _, err := Parse(strings.NewReader(out), "kinds"); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a.b[3]"); got != "a_b_3_" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitize("3x"); got != "_x" {
		t.Errorf("leading digit: %q", got)
	}
}
