// Package verilog reads and writes gate-level structural Verilog, the
// format the Trust-Hub benchmarks are actually distributed in. Only the
// structural subset the benchmarks use is supported:
//
//	module top(a, b, z);
//	  input a, b;
//	  output z;
//	  wire w1, w2;
//	  nand g1 (w1, a, b);      // output first, like the primitives
//	  not  g2 (w2, w1);
//	  dff  r1 (.CK(clk), .Q(q), .D(w2));   // or positional: dff r1 (q, w2);
//	  buf  g3 (z, q);
//	endmodule
//
// Primitive gates follow the Verilog convention (output terminal first).
// Flip-flops accept either the named-port form used by Trust-Hub netlists
// (.Q/.D, with clock and reset ports ignored) or a positional (Q, D)
// form. Clock and scan-enable nets are recognized by the port names CK,
// CLK, GN, SE, RESET and excluded from the logical netlist — the scan
// view models them implicitly.
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"superpose/internal/netlist"
)

// Parse reads a structural Verilog module into a netlist.
func Parse(r io.Reader, name string) (*netlist.Netlist, error) {
	toks, err := tokenize(r)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, b: netlist.NewBuilder(name)}
	if err := p.parseModule(); err != nil {
		return nil, fmt.Errorf("verilog %s: %w", name, err)
	}
	return p.b.Build()
}

type parser struct {
	toks []token
	pos  int
	b    *netlist.Builder

	moduleName string
	outputs    []string
	inputs     map[string]bool
	declared   map[string]bool
}

type token struct {
	text string
	line int
}

// tokenize splits the source into identifiers and punctuation, dropping
// comments.
func tokenize(r io.Reader) ([]token, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var toks []token
	lineno := 0
	inBlockComment := false
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if inBlockComment {
			if i := strings.Index(line, "*/"); i >= 0 {
				line = line[i+2:]
				inBlockComment = false
			} else {
				continue
			}
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		for {
			i := strings.Index(line, "/*")
			if i < 0 {
				break
			}
			j := strings.Index(line[i+2:], "*/")
			if j < 0 {
				line = line[:i]
				inBlockComment = true
				break
			}
			line = line[:i] + " " + line[i+2+j+2:]
		}
		cur := strings.Builder{}
		flush := func() {
			if cur.Len() > 0 {
				toks = append(toks, token{cur.String(), lineno})
				cur.Reset()
			}
		}
		for _, c := range line {
			switch {
			case c == '(' || c == ')' || c == ',' || c == ';' || c == '.':
				flush()
				toks = append(toks, token{string(c), lineno})
			case c == ' ' || c == '\t' || c == '\r':
				flush()
			default:
				cur.WriteRune(c)
			}
		}
		flush()
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return toks, nil
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, error) {
	t, ok := p.peek()
	if !ok {
		return token{}, fmt.Errorf("unexpected end of file")
	}
	p.pos++
	return t, nil
}

func (p *parser) expect(text string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.text != text {
		return fmt.Errorf("line %d: expected %q, got %q", t.line, text, t.text)
	}
	return nil
}

// ignoredNet reports clock/control nets excluded from the logic netlist.
func ignoredNet(name string) bool {
	switch strings.ToUpper(name) {
	case "CK", "CLK", "CLOCK", "GN", "SE", "SCAN_EN", "RESET", "RST", "TEST_SE":
		return true
	}
	return false
}

var gateTypes = map[string]netlist.GateType{
	"and": netlist.And, "nand": netlist.Nand,
	"or": netlist.Or, "nor": netlist.Nor,
	"xor": netlist.Xor, "xnor": netlist.Xnor,
	"not": netlist.Not, "inv": netlist.Not,
	"buf": netlist.Buf, "buff": netlist.Buf,
}

func (p *parser) parseModule() error {
	p.inputs = make(map[string]bool)
	p.declared = make(map[string]bool)
	if err := p.expect("module"); err != nil {
		return err
	}
	t, err := p.next()
	if err != nil {
		return err
	}
	p.moduleName = t.text
	// Port list (names only; directions come from the declarations).
	if err := p.expect("("); err != nil {
		return err
	}
	for {
		t, err := p.next()
		if err != nil {
			return err
		}
		if t.text == ")" {
			break
		}
		// names and commas; nothing to record
	}
	if err := p.expect(";"); err != nil {
		return err
	}

	for {
		t, ok := p.peek()
		if !ok {
			return fmt.Errorf("missing endmodule")
		}
		switch t.text {
		case "endmodule":
			p.pos++
			for _, o := range p.outputs {
				p.b.MarkOutput(o)
			}
			return nil
		case "input":
			p.pos++
			names, err := p.nameList()
			if err != nil {
				return err
			}
			for _, n := range names {
				if ignoredNet(n) {
					continue
				}
				p.inputs[n] = true
				if _, err := p.b.AddInput(n); err != nil {
					return err
				}
			}
		case "output":
			p.pos++
			names, err := p.nameList()
			if err != nil {
				return err
			}
			p.outputs = append(p.outputs, names...)
		case "wire":
			p.pos++
			if _, err := p.nameList(); err != nil {
				return err
			}
		default:
			if err := p.parseInstance(); err != nil {
				return err
			}
		}
	}
}

// nameList parses "a, b, c ;".
func (p *parser) nameList() ([]string, error) {
	var names []string
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		switch t.text {
		case ";":
			return names, nil
		case ",":
		case "(", ")", ".":
			return nil, fmt.Errorf("line %d: unexpected %q in declaration", t.line, t.text)
		default:
			names = append(names, t.text)
		}
	}
}

// parseInstance parses one gate or flip-flop instantiation.
func (p *parser) parseInstance() error {
	kind, err := p.next()
	if err != nil {
		return err
	}
	kindName := strings.ToLower(kind.text)

	// Instance label (optional for primitives, common in netlists).
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.text != "(" {
		// t was the instance name; the next token must open the ports.
		if err := p.expect("("); err != nil {
			return err
		}
	}

	// Port list: either positional or named (.PORT(net)).
	var positional []string
	named := map[string]string{}
	for {
		t, err := p.next()
		if err != nil {
			return err
		}
		switch t.text {
		case ")":
			if err := p.expect(";"); err != nil {
				return err
			}
			return p.buildInstance(kind.line, kindName, positional, named)
		case ",":
		case ".":
			port, err := p.next()
			if err != nil {
				return err
			}
			if err := p.expect("("); err != nil {
				return err
			}
			net, err := p.next()
			if err != nil {
				return err
			}
			if err := p.expect(")"); err != nil {
				return err
			}
			named[strings.ToUpper(port.text)] = net.text
		default:
			positional = append(positional, t.text)
		}
	}
}

func (p *parser) buildInstance(line int, kind string, positional []string, named map[string]string) error {
	if typ, ok := gateTypes[kind]; ok {
		if len(named) > 0 {
			return fmt.Errorf("line %d: named ports on primitive %q not supported", line, kind)
		}
		if len(positional) < 2 {
			return fmt.Errorf("line %d: %q needs an output and at least one input", line, kind)
		}
		out, ins := positional[0], positional[1:]
		if p.declared[out] {
			return fmt.Errorf("line %d: net %q driven twice", line, out)
		}
		p.declared[out] = true
		_, err := p.b.AddGate(out, typ, ins...)
		return err
	}

	// Flip-flop (any kind containing "dff" or the Trust-Hub "fd"-style
	// cells): named .Q/.D or positional (Q, D); clock/reset ports ignored.
	if strings.Contains(kind, "dff") || strings.HasPrefix(kind, "fd") {
		var q, d string
		if len(named) > 0 {
			q, d = named["Q"], named["D"]
		} else {
			var nets []string
			for _, n := range positional {
				if !ignoredNet(n) {
					nets = append(nets, n)
				}
			}
			if len(nets) >= 2 {
				q, d = nets[0], nets[1]
			}
		}
		if q == "" || d == "" {
			return fmt.Errorf("line %d: flip-flop %q needs Q and D ports", line, kind)
		}
		if p.declared[q] {
			return fmt.Errorf("line %d: net %q driven twice", line, q)
		}
		p.declared[q] = true
		_, err := p.b.AddDFF(q, d)
		return err
	}
	return fmt.Errorf("line %d: unknown cell %q", line, kind)
}

// Write serializes a netlist as a structural Verilog module.
func Write(w io.Writer, n *netlist.Netlist) error {
	bw := bufio.NewWriter(w)
	moduleName := sanitize(n.Name)
	if moduleName == "" {
		moduleName = "top"
	}

	var ports []string
	for _, pi := range n.PIs {
		ports = append(ports, sanitize(n.NameOf(pi)))
	}
	for _, po := range n.POs {
		ports = append(ports, sanitize(n.NameOf(po)))
	}
	fmt.Fprintf(bw, "// %s\n", n.ComputeStats())
	fmt.Fprintf(bw, "module %s(%s);\n", moduleName, strings.Join(ports, ", "))

	for _, pi := range n.PIs {
		fmt.Fprintf(bw, "  input %s;\n", sanitize(n.NameOf(pi)))
	}
	for _, po := range n.POs {
		fmt.Fprintf(bw, "  output %s;\n", sanitize(n.NameOf(po)))
	}
	// Wires: every non-PI net that is not already an output port name.
	isPO := make(map[string]bool, len(n.POs))
	for _, po := range n.POs {
		isPO[sanitize(n.NameOf(po))] = true
	}
	for id, g := range n.Gates {
		if g.Type == netlist.Input {
			continue
		}
		name := sanitize(n.NameOf(id))
		if !isPO[name] {
			fmt.Fprintf(bw, "  wire %s;\n", name)
		}
	}

	gi := 0
	for _, ff := range n.FFs {
		fmt.Fprintf(bw, "  dff r%d (.Q(%s), .D(%s));\n",
			gi, sanitize(n.NameOf(ff)), sanitize(n.NameOf(n.Gates[ff].Fanin[0])))
		gi++
	}
	for _, id := range n.TopoOrder() {
		g := n.Gates[id]
		var kind string
		for k, t := range gateTypes {
			if t == g.Type && k != "inv" && k != "buff" {
				kind = k
				break
			}
		}
		terms := []string{sanitize(n.NameOf(id))}
		for _, f := range g.Fanin {
			terms = append(terms, sanitize(n.NameOf(f)))
		}
		fmt.Fprintf(bw, "  %s g%d (%s);\n", kind, gi, strings.Join(terms, ", "))
		gi++
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// sanitize maps net names to Verilog-identifier-safe ones.
func sanitize(name string) string {
	var b strings.Builder
	for i, c := range name {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
