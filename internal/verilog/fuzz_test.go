package verilog

import (
	"bytes"
	"strings"
	"testing"

	"superpose/internal/netlist"
)

// FuzzParse exercises both structural Verilog parsers with arbitrary
// input: no panics, the streaming parser must agree with the legacy one
// gate-for-gate (or both must reject), and accepted modules must
// survive a Write/Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(miniSrc)
	f.Add("module m(a);\ninput a;\nendmodule\n")
	f.Add("module m(a, z);\ninput a;\noutput z;\nnot g (z, a);\nendmodule\n")
	f.Add("module m(); endmodule")
	f.Add("module m(q);\ninput d; output q;\ndff r (.CK(ck), .Q(q), .D(d));\nendmodule\n")
	f.Add("module m(z); /* c */ input a; // x\noutput z;\nbuf g (z, a);\nendmodule\n")
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(strings.NewReader(src), "fuzz")
		sn, serr := ParseStream(strings.NewReader(src), "fuzz")
		if (err == nil) != (serr == nil) {
			t.Fatalf("parser disagreement: legacy err %v, streaming err %v\n%s", err, serr, src)
		}
		if err != nil {
			return
		}
		if d := netlist.Diff(n, sn); d != "" {
			t.Fatalf("streaming parse differs from legacy: %s\n%s", d, src)
		}
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			t.Fatalf("accepted module failed to serialize: %v", err)
		}
		m, err := Parse(&buf, "fuzz2")
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, buf.String())
		}
		if m.NumGates() != n.NumGates() {
			t.Fatalf("round trip changed gate count %d -> %d", n.NumGates(), m.NumGates())
		}
	})
}
