package verilog

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse exercises the structural Verilog parser with arbitrary input:
// no panics, and accepted modules must survive a Write/Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(miniSrc)
	f.Add("module m(a);\ninput a;\nendmodule\n")
	f.Add("module m(a, z);\ninput a;\noutput z;\nnot g (z, a);\nendmodule\n")
	f.Add("module m(); endmodule")
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(strings.NewReader(src), "fuzz")
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			t.Fatalf("accepted module failed to serialize: %v", err)
		}
		m, err := Parse(&buf, "fuzz2")
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, buf.String())
		}
		if m.NumGates() != n.NumGates() {
			t.Fatalf("round trip changed gate count %d -> %d", n.NumGates(), m.NumGates())
		}
	})
}
