package atpg

import (
	"testing"

	"superpose/internal/scan"
	"superpose/internal/stats"
)

// coverageOf fault-simulates a pattern set against the full collapsed
// fault list and returns the detected-fault count.
func coverageOf(t *testing.T, ch *scan.Chains, pats []*scan.Pattern) int {
	t.Helper()
	n := ch.Netlist()
	reps, _ := Collapse(n, FaultList(n))
	fsim := NewFaultSimulator(ch)
	detected := make([]bool, len(reps))
	for start := 0; start < len(pats); start += 64 {
		end := start + 64
		if end > len(pats) {
			end = len(pats)
		}
		det := fsim.DetectBatch(pats[start:end], reps)
		for i, mask := range det {
			if mask != 0 {
				detected[i] = true
			}
		}
	}
	c := 0
	for _, d := range detected {
		if d {
			c++
		}
	}
	return c
}

func TestCompactPreservesCoverage(t *testing.T) {
	n := parseS27(t)
	ch := scan.Configure(n, 1)
	res, err := Generate(ch, Options{Seed: 1, RandomPatterns: 64})
	if err != nil {
		t.Fatal(err)
	}
	before := coverageOf(t, ch, res.Patterns)
	compacted := Compact(ch, res.Patterns)
	after := coverageOf(t, ch, compacted)
	if after != before {
		t.Fatalf("compaction changed coverage: %d -> %d", before, after)
	}
	if len(compacted) > len(res.Patterns) {
		t.Fatal("compaction grew the pattern set")
	}
	t.Logf("compaction: %d -> %d patterns at coverage %d", len(res.Patterns), len(compacted), after)
}

func TestCompactDropsRedundantPatterns(t *testing.T) {
	// Duplicating every pattern must compact back: the duplicates detect
	// nothing new.
	n := parseS27(t)
	ch := scan.Configure(n, 1)
	res, err := Generate(ch, Options{Seed: 2, RandomPatterns: 16})
	if err != nil {
		t.Fatal(err)
	}
	doubled := append(append([]*scan.Pattern{}, res.Patterns...), res.Patterns...)
	compacted := Compact(ch, doubled)
	if len(compacted) > len(res.Patterns) {
		t.Errorf("compacted %d patterns from %d originals", len(compacted), len(res.Patterns))
	}
	if coverageOf(t, ch, compacted) != coverageOf(t, ch, doubled) {
		t.Error("coverage lost")
	}
}

func TestCompactKeepsUsefulPatterns(t *testing.T) {
	// Patterns that detect nothing at all must all be dropped.
	n := parseS27(t)
	ch := scan.Configure(n, 1)
	empty := []*scan.Pattern{ch.NewPattern(), ch.NewPattern()}
	if got := Compact(ch, empty); len(got) != 0 {
		t.Errorf("all-zero patterns kept: %d", len(got))
	}
	// Tiny sets pass through.
	rng := stats.NewRNG(1)
	one := []*scan.Pattern{ch.RandomPattern(rng)}
	if got := Compact(ch, one); len(got) != 1 {
		t.Errorf("singleton handling: %d", len(got))
	}
}
