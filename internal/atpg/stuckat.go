package atpg

import (
	"fmt"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/scan"
	"superpose/internal/stats"
)

// StuckFault is a single stuck-at fault.
type StuckFault struct {
	Net     int
	StuckAt bool // the faulty value
}

// String renders the fault as "net/sa0".
func (f StuckFault) String() string {
	if f.StuckAt {
		return fmt.Sprintf("%d/sa1", f.Net)
	}
	return fmt.Sprintf("%d/sa0", f.Net)
}

// StuckFaultList builds the full stuck-at fault list: both polarities on
// every net (including primary inputs — unlike transition faults, static
// values are controllable on PIs).
func StuckFaultList(n *netlist.Netlist) []StuckFault {
	var out []StuckFault
	for id := range n.Gates {
		out = append(out, StuckFault{Net: id, StuckAt: false}, StuckFault{Net: id, StuckAt: true})
	}
	return out
}

// StuckAtTest generates a single-frame test for one stuck-at fault using
// the same PODEM engine as the transition generator: the combinational
// circuit is evaluated once (both "frames" get identical sources under a
// static view), the site requires the value opposite the stuck one, and
// the effect must reach a primary output or a flip-flop D pin.
//
// The returned pattern's scan load is the test vector (applied statically,
// i.e. the capture-mode stimulus); random fill completes don't-cares.
// ok=false means untestable (redundant) within the backtrack limit;
// aborted=true means the limit was hit first.
func StuckAtTest(ch *scan.Chains, f StuckFault, backtrackLimit int, fillSeed uint64) (p *scan.Pattern, ok, aborted bool) {
	n := ch.Netlist()
	e := newExpansion(n, ch)
	// A stuck-at fault corresponds to a transition fault's second frame
	// alone. Reuse the two-frame PODEM with a fault whose frame-1 launch
	// condition is made vacuous by construction: slow-to-rise at net N
	// requires frame1=0 and frame2=1 with stuck-at-0 injection; for a
	// static sa0 test only the frame-2 part matters. We therefore run the
	// dedicated single-frame engine below instead of bending the TDF one.
	pd := newStuckPodem(e, f)
	g := pd.run(backtrackLimit)
	if !g.ok {
		return nil, false, g.aborted
	}
	rng := stats.NewRNG(fillSeed)
	return extractPattern(ch, e, pd.assign, rng), true, false
}

// stuckPodem is the single-frame variant of the PODEM engine.
type stuckPodem struct {
	*podem
}

func newStuckPodem(e *expansion, f StuckFault) *stuckPodem {
	// Map the stuck-at fault onto the transition engine's data: a sa0
	// fault behaves like slow-to-rise's frame 2 (good must be 1, faulty
	// stuck 0); sa1 like slow-to-fall's.
	dir := SlowToRise
	if f.StuckAt {
		dir = SlowToFall
	}
	p := newPodem(e, Fault{Net: f.Net, Dir: dir})
	return &stuckPodem{p}
}

// run executes the decision loop with single-frame semantics: frame 1 is
// forced identical to frame 2 (static test), which the base engine's
// launch check then accepts trivially.
func (p *stuckPodem) run(backtrackLimit int) genResult {
	type decision struct {
		variable int
		value    bool
		flipped  bool
	}
	var stack []decision
	backtracks := 0

	backtrack := func() int {
		for {
			if len(stack) == 0 {
				return 1
			}
			top := &stack[len(stack)-1]
			if !top.flipped {
				backtracks++
				if backtracks > backtrackLimit {
					return 2
				}
				top.flipped = true
				top.value = !top.value
				p.assign[top.variable] = logic.FromBit(top.value)
				return 0
			}
			p.assign[top.variable] = logic.X
			stack = stack[:len(stack)-1]
		}
	}

	for {
		p.simulateStatic()
		st := p.checkStatic()
		if st == statusSuccess {
			return genResult{ok: true}
		}
		conflict := st == statusConflict
		var variable int
		var value bool
		if !conflict {
			net, val, _, ok := p.objectiveStatic()
			if !ok {
				conflict = true
			} else {
				variable, value = p.backtrace(net, val, 2)
				if variable < 0 || p.assign[variable] != logic.X {
					conflict = true
				}
			}
		}
		if conflict {
			switch backtrack() {
			case 1:
				return genResult{}
			case 2:
				return genResult{aborted: true}
			}
			continue
		}
		stack = append(stack, decision{variable: variable, value: value})
		p.assign[variable] = logic.FromBit(value)
	}
}

// simulateStatic evaluates only the capture frame, with flip-flops taking
// their scan-bit variables directly (static application).
func (p *stuckPodem) simulateStatic() {
	n := p.e.n
	for _, pi := range n.PIs {
		v := p.assign[p.e.piVar[pi]]
		if pi == p.fault.Net {
			v = p.inject(v)
		}
		p.v2[pi] = v
	}
	for _, ff := range n.FFs {
		v := p.frameValue(ff, 2)
		if ff == p.fault.Net {
			v = p.inject(v)
		}
		p.v2[ff] = v
	}
	for _, id := range n.TopoOrder() {
		v := eval5(n, p.v2, id)
		if id == p.fault.Net {
			v = p.inject(v)
		}
		p.v2[id] = v
	}
}

// checkStatic is the base check without the frame-1 launch condition.
func (p *stuckPodem) checkStatic() status {
	if v := p.v2[p.fault.Net]; v.Known() && !v.IsD() {
		return statusConflict
	}
	for _, o := range p.e.obs {
		if p.v2[o].IsD() {
			return statusSuccess
		}
	}
	if !p.xPath() {
		return statusConflict
	}
	return statusOpen
}

// objectiveStatic is the base objective without the frame-1 goal.
func (p *stuckPodem) objectiveStatic() (net int, val bool, frame int, ok bool) {
	if p.v2[p.fault.Net] == logic.X {
		return p.fault.Net, p.fault.Dir.final(), 2, true
	}
	n := p.e.n
	for _, id := range n.TopoOrder() {
		if p.v2[id] != logic.X {
			continue
		}
		g := &n.Gates[id]
		hasD := false
		for _, f := range g.Fanin {
			if p.v2[f].IsD() {
				hasD = true
				break
			}
		}
		if !hasD {
			continue
		}
		for _, f := range g.Fanin {
			if p.v2[f] == logic.X {
				return f, nonControlling(g.Type), 2, true
			}
		}
	}
	return 0, false, 0, false
}
