package atpg

import (
	"testing"

	"superpose/internal/parallel"
	"superpose/internal/scan"
	"superpose/internal/stats"
	"superpose/internal/trust"
)

// TestDetectBatchWorkerEquivalence proves the sharded fault simulation
// bit-identical to the serial path: every fault's detection mask must
// match for Workers ∈ {1, 2, 8}, across batch sizes including partial
// final lanes.
func TestDetectBatchWorkerEquivalence(t *testing.T) {
	n := parseS27(t)
	ch := scan.Configure(n, 2)
	reps, _ := Collapse(n, FaultList(n))
	rng := stats.NewRNG(11)
	for _, size := range []int{1, 5, 64} {
		pats := make([]*scan.Pattern, size)
		for i := range pats {
			pats[i] = ch.RandomPattern(rng)
		}
		var ref []uint64
		for _, w := range []int{1, 2, 8} {
			fs := NewFaultSimulator(ch)
			fs.SetWorkers(w)
			det := fs.DetectBatch(pats, reps)
			masks := make([]uint64, len(det))
			for i, m := range det {
				masks[i] = uint64(m)
			}
			if w == 1 {
				ref = masks
				continue
			}
			if d := parallel.Diff(ref, masks); d != "" {
				t.Errorf("batch %d workers %d: %s", size, w, d)
			}
		}
	}
}

// TestGenerateWorkerEquivalence proves the full ATPG run — random phase,
// PODEM targeting, fault dropping, n-detect bookkeeping — produces an
// identical Result (patterns, coverage counters, per-pattern credits) at
// every worker count, on both a tiny netlist and a benchmark-suite host.
func TestGenerateWorkerEquivalence(t *testing.T) {
	run := func(t *testing.T, ch *scan.Chains, opt Options) {
		t.Helper()
		var ref *Result
		for _, w := range []int{1, 2, 8} {
			o := opt
			o.Workers = w
			res, err := Generate(ch, o)
			if err != nil {
				t.Fatalf("workers %d: %v", w, err)
			}
			if w == 1 {
				ref = res
				continue
			}
			if d := parallel.Diff(ref, res); d != "" {
				t.Errorf("workers %d: %s", w, d)
			}
		}
	}

	t.Run("s27", func(t *testing.T) {
		run(t, scan.Configure(parseS27(t), 2), Options{Seed: 3, NDetect: 2})
	})
	t.Run("benchmark-host", func(t *testing.T) {
		if testing.Short() {
			t.Skip("benchmark-scale ATPG run")
		}
		inst, err := trust.Build(trust.Cases()[0], 0.04)
		if err != nil {
			t.Fatal(err)
		}
		run(t, scan.Configure(inst.Host, 4),
			Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120})
	})
}
