package atpg

import (
	"testing"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/scan"
	"superpose/internal/sim"
)

// verifyStuckTest confirms by simulation that pattern p distinguishes the
// good circuit from the one with f injected, at some observation point.
func verifyStuckTest(t *testing.T, ch *scan.Chains, f StuckFault, p *scan.Pattern) bool {
	t.Helper()
	n := ch.Netlist()
	s := sim.New(n)
	src := make([]logic.Word, n.NumGates())
	for i, pi := range n.PIs {
		if p.PI[i] {
			src[pi] = 1
		}
	}
	for c := 0; c < ch.NumChains(); c++ {
		for j, ff := range ch.Chain(c) {
			if p.Scan[c][j] {
				src[ff] = 1
			}
		}
	}
	good := append([]logic.Word(nil), s.Run(src)...)
	var forced logic.Word
	if f.StuckAt {
		forced = logic.AllOne
	}
	faulty := s.RunForced(src, f.Net, forced)
	for _, po := range n.POs {
		if (good[po]^faulty[po])&1 != 0 {
			return true
		}
	}
	for _, ff := range n.FFs {
		d := n.Gates[ff].Fanin[0]
		if (good[d]^faulty[d])&1 != 0 {
			return true
		}
	}
	return false
}

func TestStuckAtOnS27(t *testing.T) {
	n := parseS27(t)
	ch := scan.Configure(n, 1)
	generated, verified := 0, 0
	for _, f := range StuckFaultList(n) {
		p, ok, aborted := StuckAtTest(ch, f, 1<<16, 5)
		if aborted {
			t.Errorf("fault %v aborted with a huge limit", f)
			continue
		}
		if !ok {
			continue // redundant fault
		}
		generated++
		if verifyStuckTest(t, ch, f, p) {
			verified++
		} else {
			t.Errorf("fault %v: generated test not confirmed by simulation", f)
		}
	}
	if generated == 0 {
		t.Fatal("no stuck-at tests generated")
	}
	if verified != generated {
		t.Errorf("verified %d of %d", verified, generated)
	}
	// s27's stuck-at faults are almost all testable statically; expect
	// the overwhelming majority to get tests (vs only 17/24 transition
	// faults under the LOS constraint).
	total := len(StuckFaultList(n))
	if generated < total*3/4 {
		t.Errorf("only %d/%d stuck-at faults testable", generated, total)
	}
	t.Logf("stuck-at: %d/%d faults testable, all verified", generated, total)
}

func TestStuckAtRedundantFault(t *testing.T) {
	// x = AND(a, NOT(a)) = const 0: sa0 on x is undetectable (no
	// difference ever), sa1 is testable (x would read 1).
	b := netlist.NewBuilder("red")
	if _, err := b.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("na", netlist.Not, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("x", netlist.And, "a", "na"); err != nil {
		t.Fatal(err)
	}
	b.MarkOutput("x")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ch := scan.Configure(n, 1)
	x, _ := n.GateID("x")

	if _, ok, _ := StuckAtTest(ch, StuckFault{Net: x, StuckAt: false}, 1<<12, 1); ok {
		t.Error("sa0 on a constant-0 net must be redundant")
	}
	p, ok, _ := StuckAtTest(ch, StuckFault{Net: x, StuckAt: true}, 1<<12, 1)
	if !ok {
		t.Fatal("sa1 on a constant-0 net must be testable")
	}
	if !verifyStuckTest(t, ch, StuckFault{Net: x, StuckAt: true}, p) {
		t.Error("sa1 test not confirmed")
	}
}

func TestStuckAtOnPrimaryInput(t *testing.T) {
	n := parseS27(t)
	ch := scan.Configure(n, 1)
	pi := n.PIs[0]
	p, ok, _ := StuckAtTest(ch, StuckFault{Net: pi, StuckAt: false}, 1<<12, 1)
	if !ok {
		t.Fatal("sa0 on a PI must be testable in s27")
	}
	if !verifyStuckTest(t, ch, StuckFault{Net: pi, StuckAt: false}, p) {
		t.Error("PI test not confirmed")
	}
}

func TestStuckFaultString(t *testing.T) {
	if (StuckFault{Net: 4, StuckAt: true}).String() != "4/sa1" {
		t.Error("sa1 name")
	}
	if (StuckFault{Net: 4}).String() != "4/sa0" {
		t.Error("sa0 name")
	}
	n := parseS27(t)
	if len(StuckFaultList(n)) != 2*n.NumGates() {
		t.Error("fault list size")
	}
}
