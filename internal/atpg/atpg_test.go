package atpg

import (
	"strings"
	"testing"

	"superpose/internal/bench"
	"superpose/internal/netlist"
	"superpose/internal/scan"
	"superpose/internal/stats"
)

const s27Src = `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
G17 = NOT(G11)
`

func parseS27(t testing.TB) *netlist.Netlist {
	t.Helper()
	n, err := bench.Parse(strings.NewReader(s27Src), "s27")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestFaultListExcludesPIs(t *testing.T) {
	n := parseS27(t)
	faults := FaultList(n)
	// 14 non-PI gates (3 FF + 10 comb + G17? G17 is comb) => gates=18 total,
	// 4 PIs excluded => 14 nets * 2 directions.
	if want := (n.NumGates() - len(n.PIs)) * 2; len(faults) != want {
		t.Errorf("fault list size = %d, want %d", len(faults), want)
	}
	for _, f := range faults {
		if n.Gates[f.Net].Type == netlist.Input {
			t.Errorf("PI fault %v in list", f)
		}
	}
}

func TestDirectionSemantics(t *testing.T) {
	if SlowToRise.initial() != false || SlowToRise.final() != true {
		t.Error("STR must be 0 -> 1")
	}
	if SlowToFall.initial() != true || SlowToFall.final() != false {
		t.Error("STF must be 1 -> 0")
	}
	if SlowToRise.String() != "STR" || SlowToFall.String() != "STF" {
		t.Error("direction names")
	}
	if s := (Fault{Net: 3, Dir: SlowToFall}).String(); s != "3/STF" {
		t.Errorf("Fault.String = %q", s)
	}
}

func TestCollapseBufNotChains(t *testing.T) {
	b := netlist.NewBuilder("chain")
	if _, err := b.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddInput("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("g", netlist.And, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("h", netlist.Buf, "g"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("i", netlist.Not, "h"); err != nil {
		t.Fatal(err)
	}
	b.MarkOutput("i")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, _ := n.GateID("g")
	h, _ := n.GateID("h")
	i, _ := n.GateID("i")

	reps, repOf := Collapse(n, FaultList(n))
	// All six faults collapse onto the two faults of g.
	if len(reps) != 2 {
		t.Fatalf("reps = %v, want 2 faults on g", reps)
	}
	if r := repOf[Fault{Net: h, Dir: SlowToRise}]; r != (Fault{Net: g, Dir: SlowToRise}) {
		t.Errorf("buf STR rep = %v", r)
	}
	if r := repOf[Fault{Net: i, Dir: SlowToRise}]; r != (Fault{Net: g, Dir: SlowToFall}) {
		t.Errorf("not STR rep = %v (must invert direction)", r)
	}
	if r := repOf[Fault{Net: i, Dir: SlowToFall}]; r != (Fault{Net: g, Dir: SlowToRise}) {
		t.Errorf("not STF rep = %v", r)
	}
}

func TestCollapseStopsAtPIs(t *testing.T) {
	b := netlist.NewBuilder("pibuf")
	if _, err := b.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("x", netlist.Not, "a"); err != nil {
		t.Fatal(err)
	}
	b.MarkOutput("x")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	reps, _ := Collapse(n, FaultList(n))
	x, _ := n.GateID("x")
	for _, r := range reps {
		if r.Net != x {
			t.Errorf("rep %v must stay on the NOT output, not the PI", r)
		}
	}
}

func TestGenerateS27(t *testing.T) {
	n := parseS27(t)
	ch := scan.Configure(n, 1)
	res, err := Generate(ch, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// TestPodemCompleteOnS27 establishes by brute force that exactly 17 of
	// the 24 collapsed faults are LOS-testable in this configuration; the
	// generator must find all of them and prove the rest untestable.
	if res.Detected != 17 || res.Untestable != 7 || res.Aborted != 0 {
		t.Errorf("detected/untestable/aborted = %d/%d/%d, want 17/7/0 (%s)",
			res.Detected, res.Untestable, res.Aborted, res)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns generated")
	}
	if len(res.PerPatternDetects) != len(res.Patterns) {
		t.Fatal("PerPatternDetects shape mismatch")
	}
	for i, d := range res.PerPatternDetects {
		if d <= 0 {
			t.Errorf("pattern %d kept but detects nothing", i)
		}
	}
	// Accounting adds up.
	if got := res.Detected + res.Untestable + res.Aborted + res.NotTargeted; got != res.TotalFaults {
		t.Errorf("accounting: %d+%d+%d+%d != %d", res.Detected, res.Untestable,
			res.Aborted, res.NotTargeted, res.TotalFaults)
	}
	if !strings.Contains(res.String(), "patterns") {
		t.Error("String output")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	n := parseS27(t)
	ch := scan.Configure(n, 1)
	r1, err := Generate(ch, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Generate(ch, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Patterns) != len(r2.Patterns) || r1.Detected != r2.Detected {
		t.Fatal("same seed must reproduce the run")
	}
	for i := range r1.Patterns {
		if !r1.Patterns[i].Equal(r2.Patterns[i]) {
			t.Fatal("pattern mismatch between identical runs")
		}
	}
}

func TestGeneratedPatternsAreValidLOS(t *testing.T) {
	n := parseS27(t)
	ch := scan.Configure(n, 2)
	res, err := Generate(ch, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if len(p.Scan) != ch.NumChains() {
			t.Fatal("pattern chain count mismatch")
		}
		for c := range p.Scan {
			if len(p.Scan[c]) != len(ch.Chain(c)) {
				t.Fatal("pattern chain length mismatch")
			}
		}
		if len(p.PI) != len(n.PIs) {
			t.Fatal("pattern PI length mismatch")
		}
	}
}

func TestUntestableFaultDetected(t *testing.T) {
	// x = AND(a, NOT(a)) is constant 0: slow-to-rise on x is untestable.
	b := netlist.NewBuilder("const")
	if _, err := b.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddDFF("q", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("na", netlist.Not, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("x", netlist.And, "a", "na"); err != nil {
		t.Fatal(err)
	}
	b.MarkOutput("x")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ch := scan.Configure(n, 1)
	res, err := Generate(ch, Options{Seed: 1, RandomPatterns: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Untestable == 0 {
		t.Errorf("expected untestable faults, got %s", res)
	}
}

func TestNoInputsError(t *testing.T) {
	// A netlist with no PIs and no FFs cannot be driven.
	b := netlist.NewBuilder("empty")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ch := scan.Configure(n, 1)
	if _, err := Generate(ch, Options{}); err == nil {
		t.Fatal("expected error for uncontrollable netlist")
	}
}

func TestFaultSimulatorDetectsKnownCase(t *testing.T) {
	// Shift circuit: ff -> obs(BUF) -> D pin. STR on ff needs scan bits
	// (prev,final) = (0,1) at the cell and is observed at the D pin.
	b := netlist.NewBuilder("one")
	if _, err := b.AddInput("pi"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddDFF("f0", "d0"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddDFF("f1", "d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("d0", netlist.Xor, "f0", "pi"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("d1", netlist.Xor, "f1", "d0"); err != nil {
		t.Fatal(err)
	}
	b.MarkOutput("d1")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ch := scan.Configure(n, 1)
	fs := NewFaultSimulator(ch)
	f1id, _ := n.GateID("f1")

	// Chain order is [f0, f1]. STR at f1 (index 1) needs bits (f0,f1)=(0,1).
	p := ch.NewPattern()
	p.Scan[0][0] = false
	p.Scan[0][1] = true
	if !fs.Detects(p, Fault{Net: f1id, Dir: SlowToRise}) {
		t.Error("STR at f1 must be detected by 01 load")
	}
	// Same pattern cannot detect STF at f1 (no 1->0 launch there).
	if fs.Detects(p, Fault{Net: f1id, Dir: SlowToFall}) {
		t.Error("STF at f1 must not be detected by 01 load")
	}
	// All-zero load launches nothing.
	q := ch.NewPattern()
	if fs.Detects(q, Fault{Net: f1id, Dir: SlowToRise}) {
		t.Error("no-launch pattern must not detect")
	}
}

func TestPodemAgreesWithFaultSim(t *testing.T) {
	// Cross-validation: every PODEM-generated test, before fill, already
	// guarantees detection; after fill the fault simulator must agree.
	n := parseS27(t)
	ch := scan.Configure(n, 1)
	e := newExpansion(n, ch)
	fsim := NewFaultSimulator(ch)
	rng := stats.NewRNG(17)

	reps, _ := Collapse(n, FaultList(n))
	generated, agreed := 0, 0
	for _, f := range reps {
		p := newPodem(e, f)
		g := p.run(256)
		if !g.ok {
			continue
		}
		generated++
		pat := extractPattern(ch, e, p.assign, rng)
		if fsim.Detects(pat, f) {
			agreed++
		} else {
			t.Errorf("fault %v: PODEM test not confirmed by fault simulation", f)
		}
	}
	if generated == 0 {
		t.Fatal("PODEM generated nothing on s27")
	}
	t.Logf("PODEM generated %d tests, %d confirmed", generated, agreed)
}

func TestMaxPatternsAndMaxFaults(t *testing.T) {
	n := parseS27(t)
	ch := scan.Configure(n, 1)
	res, err := Generate(ch, Options{Seed: 1, RandomPatterns: 1, MaxPatterns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) > 2 {
		t.Errorf("MaxPatterns violated: %d", len(res.Patterns))
	}
	res2, err := Generate(ch, Options{Seed: 1, RandomPatterns: 1, MaxFaults: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res2.NotTargeted == 0 {
		t.Error("MaxFaults must leave faults untargeted")
	}
}

func TestNDetectProducesMorePatterns(t *testing.T) {
	n := parseS27(t)
	ch := scan.Configure(n, 1)
	r1, err := Generate(ch, Options{Seed: 3, RandomPatterns: 8})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Generate(ch, Options{Seed: 3, RandomPatterns: 8, NDetect: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Patterns) <= len(r1.Patterns) {
		t.Errorf("n-detect 3 produced %d patterns vs %d for 1-detect",
			len(r3.Patterns), len(r1.Patterns))
	}
	if r3.Detected != r1.Detected {
		t.Errorf("once-detected coverage must match: %d vs %d", r3.Detected, r1.Detected)
	}
	if r3.NDetectSatisfied > r3.Detected {
		t.Error("satisfied count cannot exceed detected count")
	}
	// Verify the quota with an independent fault simulation: every
	// satisfied fault must indeed be caught by >= 3 distinct patterns.
	reps, _ := Collapse(n, FaultList(n))
	fsim := NewFaultSimulator(ch)
	counts := make([]int, len(reps))
	for start := 0; start < len(r3.Patterns); start += 64 {
		end := start + 64
		if end > len(r3.Patterns) {
			end = len(r3.Patterns)
		}
		det := fsim.DetectBatch(r3.Patterns[start:end], reps)
		for i, mask := range det {
			for m := mask; m != 0; m &= m - 1 {
				counts[i]++
			}
		}
	}
	satisfied := 0
	for _, c := range counts {
		if c >= 3 {
			satisfied++
		}
	}
	if satisfied < r3.NDetectSatisfied {
		t.Errorf("independent count %d < reported satisfied %d", satisfied, r3.NDetectSatisfied)
	}
}

func TestNDetectSingleEqualsDefault(t *testing.T) {
	n := parseS27(t)
	ch := scan.Configure(n, 1)
	a, err := Generate(ch, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(ch, Options{Seed: 5, NDetect: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Patterns) != len(b.Patterns) || a.Detected != b.Detected {
		t.Error("explicit NDetect=1 must equal the default")
	}
	if a.NDetectSatisfied != a.Detected {
		t.Error("with NDetect=1, satisfied must equal detected")
	}
}
