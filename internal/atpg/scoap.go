package atpg

import (
	"superpose/internal/netlist"
)

// Scoap holds the classic SCOAP testability measures of a netlist:
// CC0/CC1 (the number of input assignments needed to set a net to 0/1)
// computed over the combinational view, with scan cells and primary
// inputs as unit-cost control points. The PODEM backtrace uses them to
// choose the cheapest input to pursue, which shrinks the search compared
// to a first-X policy.
type Scoap struct {
	CC0, CC1 []int
}

// scoapCap bounds the measures to keep additions overflow-free on deep
// reconvergent circuits.
const scoapCap = 1 << 28

func capAdd(a, b int) int {
	s := a + b
	if s > scoapCap {
		return scoapCap
	}
	return s
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ComputeScoap calculates controllability for every net in one forward
// topological pass.
func ComputeScoap(n *netlist.Netlist) *Scoap {
	s := &Scoap{
		CC0: make([]int, n.NumGates()),
		CC1: make([]int, n.NumGates()),
	}
	for _, id := range append(append([]int{}, n.PIs...), n.FFs...) {
		s.CC0[id] = 1
		s.CC1[id] = 1
	}
	for _, id := range n.TopoOrder() {
		g := &n.Gates[id]
		switch g.Type {
		case netlist.Buf:
			s.CC0[id] = capAdd(s.CC0[g.Fanin[0]], 1)
			s.CC1[id] = capAdd(s.CC1[g.Fanin[0]], 1)
		case netlist.Not:
			s.CC0[id] = capAdd(s.CC1[g.Fanin[0]], 1)
			s.CC1[id] = capAdd(s.CC0[g.Fanin[0]], 1)
		case netlist.And, netlist.Nand:
			// AND core: 0 needs the cheapest 0; 1 needs all 1s.
			c0 := scoapCap
			c1 := 0
			for _, f := range g.Fanin {
				c0 = minInt(c0, s.CC0[f])
				c1 = capAdd(c1, s.CC1[f])
			}
			c0 = capAdd(c0, 1)
			c1 = capAdd(c1, 1)
			if g.Type == netlist.Nand {
				c0, c1 = c1, c0
			}
			s.CC0[id], s.CC1[id] = c0, c1
		case netlist.Or, netlist.Nor:
			c1 := scoapCap
			c0 := 0
			for _, f := range g.Fanin {
				c1 = minInt(c1, s.CC1[f])
				c0 = capAdd(c0, s.CC0[f])
			}
			c0 = capAdd(c0, 1)
			c1 = capAdd(c1, 1)
			if g.Type == netlist.Nor {
				c0, c1 = c1, c0
			}
			s.CC0[id], s.CC1[id] = c0, c1
		case netlist.Xor, netlist.Xnor:
			// Parity: cost of achieving even/odd parity over the fanins.
			// Computed incrementally: even/odd parity costs so far.
			even, odd := 0, scoapCap
			for _, f := range g.Fanin {
				ne := minInt(capAdd(even, s.CC0[f]), capAdd(odd, s.CC1[f]))
				no := minInt(capAdd(even, s.CC1[f]), capAdd(odd, s.CC0[f]))
				even, odd = ne, no
			}
			c0, c1 := capAdd(even, 1), capAdd(odd, 1)
			if g.Type == netlist.Xnor {
				c0, c1 = c1, c0
			}
			s.CC0[id], s.CC1[id] = c0, c1
		}
	}
	return s
}

// Cost returns the controllability cost of driving net id to val.
func (s *Scoap) Cost(id int, val bool) int {
	if val {
		return s.CC1[id]
	}
	return s.CC0[id]
}
