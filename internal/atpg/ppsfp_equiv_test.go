package atpg

import (
	"runtime"
	"testing"

	"superpose/internal/logic"
	"superpose/internal/scan"
	"superpose/internal/sim"
	"superpose/internal/stats"
	"superpose/internal/trust"
)

func engineEquivChains(t testing.TB, seed uint64) *scan.Chains {
	t.Helper()
	n, err := trust.Generate(trust.Params{
		Name: "engeq", PIs: 5, POs: 5, FFs: 20, Comb: 260, Levels: 5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scan.Configure(n, 2)
}

// TestDetectBatchEngineEquivalence requires the PPSFP cone propagator to
// report the exact detection word the scalar full-resimulation path does,
// for every collapsed fault, at the partial-lane batch sizes (1, 63, 64)
// and on the s27 benchmark plus generated circuits.
func TestDetectBatchEngineEquivalence(t *testing.T) {
	chains := []*scan.Chains{scan.Configure(parseS27(t), 1)}
	for seed := uint64(1); seed <= 2; seed++ {
		chains = append(chains, engineEquivChains(t, seed))
	}
	for _, ch := range chains {
		n := ch.Netlist()
		reps, _ := Collapse(n, FaultList(n))
		rng := stats.NewRNG(1234)

		scalar := NewFaultSimulator(ch)
		scalar.SetEngine(sim.EngineScalar)
		ppsfp := NewFaultSimulator(ch)
		ppsfp.SetEngine(sim.EnginePPSFP)
		if scalar.Engine() != sim.EngineScalar || ppsfp.Engine() != sim.EnginePPSFP {
			t.Fatalf("engines resolved to %v/%v", scalar.Engine(), ppsfp.Engine())
		}

		for _, count := range []int{1, 63, 64} {
			pats := make([]*scan.Pattern, count)
			for i := range pats {
				pats[i] = ch.RandomPattern(rng)
			}
			want := scalar.DetectBatch(pats, reps)
			got := ppsfp.DetectBatch(pats, reps)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s count %d fault %v: ppsfp %016x, scalar %016x",
						n.Name, count, reps[i], got[i], want[i])
				}
			}
			// A garbage lane beyond the batch would be a laneMask leak.
			if count < 64 {
				mask := (logic.Word(1) << uint(count)) - 1
				for i, w := range got {
					if w&^mask != 0 {
						t.Fatalf("%s count %d fault %v: detection word %016x leaks beyond lane %d",
							n.Name, count, reps[i], w, count)
					}
				}
			}
		}
	}
}

// TestDetectBatchEngineWorkerEquivalence shards the PPSFP fault loop
// across worker counts and requires bit-identical detection words — the
// per-fault propagations are independent given the shared good-machine
// frames, at any fan-out. (The name keeps it inside the CI race
// detector's equivalence run.)
func TestDetectBatchEngineWorkerEquivalence(t *testing.T) {
	ch := engineEquivChains(t, 9)
	n := ch.Netlist()
	reps, _ := Collapse(n, FaultList(n))
	rng := stats.NewRNG(55)
	pats := make([]*scan.Pattern, 64)
	for i := range pats {
		pats[i] = ch.RandomPattern(rng)
	}

	workerCounts := []int{1, 4, runtime.NumCPU()}
	for _, engine := range []sim.EngineKind{sim.EngineScalar, sim.EnginePPSFP} {
		var ref []logic.Word
		for _, w := range workerCounts {
			fs := NewFaultSimulator(ch)
			fs.SetEngine(engine)
			fs.SetWorkers(w)
			det := fs.DetectBatch(pats, reps)
			if ref == nil {
				ref = det
				continue
			}
			for i := range ref {
				if det[i] != ref[i] {
					t.Fatalf("%v workers %d fault %v: %016x, serial %016x",
						engine, w, reps[i], det[i], ref[i])
				}
			}
		}
	}
}

// TestGenerateEngineEquivalence runs full ATPG under both engines and
// requires identical results end to end: same patterns, same coverage,
// same per-pattern detection counts.
func TestGenerateEngineEquivalence(t *testing.T) {
	ch := engineEquivChains(t, 3)
	base := Options{Seed: 11, RandomPatterns: 32, BacktrackLimit: 256}

	optScalar := base
	optScalar.Engine = sim.EngineScalar
	want, err := Generate(ch, optScalar)
	if err != nil {
		t.Fatal(err)
	}

	optPP := base
	optPP.Engine = sim.EnginePPSFP
	got, err := Generate(ch, optPP)
	if err != nil {
		t.Fatal(err)
	}

	if got.TotalFaults != want.TotalFaults || got.Detected != want.Detected ||
		got.Untestable != want.Untestable || got.Aborted != want.Aborted ||
		got.NotTargeted != want.NotTargeted || got.NDetectSatisfied != want.NDetectSatisfied {
		t.Fatalf("summary diverged:\n ppsfp  %v\n scalar %v", got, want)
	}
	if len(got.Patterns) != len(want.Patterns) {
		t.Fatalf("%d patterns, scalar %d", len(got.Patterns), len(want.Patterns))
	}
	for i := range want.Patterns {
		if got.PerPatternDetects[i] != want.PerPatternDetects[i] {
			t.Fatalf("pattern %d detects %d, scalar %d", i, got.PerPatternDetects[i], want.PerPatternDetects[i])
		}
		a, b := got.Patterns[i], want.Patterns[i]
		for c := range a.Scan {
			for j := range a.Scan[c] {
				if a.Scan[c][j] != b.Scan[c][j] {
					t.Fatalf("pattern %d scan bit (%d,%d) diverged", i, c, j)
				}
			}
		}
		for j := range a.PI {
			if a.PI[j] != b.PI[j] {
				t.Fatalf("pattern %d PI %d diverged", i, j)
			}
		}
	}
}
