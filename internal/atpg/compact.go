package atpg

import (
	"superpose/internal/scan"
)

// Compact performs static test-set compaction by reverse-order fault
// simulation: patterns are re-fault-simulated from last to first against
// the full collapsed fault list, and a pattern is kept only if it detects
// at least one fault no later-kept pattern covers. Commercial flows run
// the same pass after generation; it typically removes the early random
// patterns that deterministic tests subsume.
//
// The returned patterns preserve their relative order. Coverage is
// unchanged by construction.
func Compact(ch *scan.Chains, patterns []*scan.Pattern) []*scan.Pattern {
	if len(patterns) <= 1 {
		return patterns
	}
	n := ch.Netlist()
	reps, _ := Collapse(n, FaultList(n))
	live := make([]bool, len(reps))
	for i := range live {
		live[i] = true
	}
	fsim := NewFaultSimulator(ch)

	keep := make([]bool, len(patterns))
	// liveFaults materializes the currently-undetected faults.
	liveFaults := func() ([]Fault, []int) {
		var fl []Fault
		var idx []int
		for i, f := range reps {
			if live[i] {
				fl = append(fl, f)
				idx = append(idx, i)
			}
		}
		return fl, idx
	}
	for pi := len(patterns) - 1; pi >= 0; pi-- {
		fl, idx := liveFaults()
		if len(fl) == 0 {
			break
		}
		det := fsim.DetectBatch([]*scan.Pattern{patterns[pi]}, fl)
		for fi, mask := range det {
			if mask&1 != 0 {
				live[idx[fi]] = false
				keep[pi] = true
			}
		}
	}
	var out []*scan.Pattern
	for i, p := range patterns {
		if keep[i] {
			out = append(out, p)
		}
	}
	return out
}
