package atpg

import (
	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/scan"
	"superpose/internal/sim"
)

// FaultSimulator evaluates which transition faults a batch of LOS patterns
// detects. It runs the good machine once per batch and one faulty capture
// frame per live fault (serial fault simulation, 64 patterns in parallel
// per run), which combined with fault dropping keeps total work modest.
type FaultSimulator struct {
	n   *netlist.Netlist
	ch  *scan.Chains
	eng *scan.Engine
	fs  *sim.Simulator // faulty-machine simulator
	obs []int
}

// NewFaultSimulator returns a simulator over the scan configuration.
func NewFaultSimulator(ch *scan.Chains) *FaultSimulator {
	n := ch.Netlist()
	e := newExpansion(n, ch)
	return &FaultSimulator{
		n:   n,
		ch:  ch,
		eng: scan.NewEngine(ch),
		fs:  sim.New(n),
		obs: e.obs,
	}
}

// DetectBatch simulates up to 64 patterns and reports, per fault in
// `faults`, the lanes on which the fault is detected (launched at the site
// and observed at a PO or scan-cell D pin).
func (fs *FaultSimulator) DetectBatch(pats []*scan.Pattern, faults []Fault) []logic.Word {
	f1, f2, err := fs.eng.Launch(pats, scan.LOS)
	if err != nil {
		// Callers chunk into 1..64-pattern batches by construction; an
		// oversized batch here is an internal invariant violation.
		panic(err.Error())
	}
	good1 := append([]logic.Word(nil), f1...)
	good2 := append([]logic.Word(nil), f2...)
	src2 := fs.eng.Frame2Sources()

	laneMask := logic.AllOne
	if len(pats) < 64 {
		laneMask = (logic.Word(1) << uint(len(pats))) - 1
	}

	out := make([]logic.Word, len(faults))
	for i, f := range faults {
		initial := logic.AllZero
		if f.Dir.initial() {
			initial = logic.AllOne
		}
		// Launch lanes: frame-1 site value equals the initial value.
		launch := ^(good1[f.Net] ^ initial) & laneMask
		if launch == 0 {
			continue
		}
		faulty2 := fs.fs.RunForced(src2, f.Net, initial)
		var diff logic.Word
		for _, o := range fs.obs {
			diff |= good2[o] ^ faulty2[o]
			if diff&launch == launch {
				break // all launch lanes already detect
			}
		}
		out[i] = diff & launch
	}
	return out
}

// Detects reports whether a single pattern detects the fault.
func (fs *FaultSimulator) Detects(p *scan.Pattern, f Fault) bool {
	res := fs.DetectBatch([]*scan.Pattern{p}, []Fault{f})
	return res[0]&1 != 0
}
