package atpg

import (
	"context"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/parallel"
	"superpose/internal/scan"
	"superpose/internal/sim"
)

// FaultSimulator evaluates which transition faults a batch of LOS patterns
// detects. It runs the good machine once per batch and one faulty capture
// frame per live fault (serial fault simulation, 64 patterns in parallel
// per run), which combined with fault dropping keeps total work modest.
// The per-fault faulty-machine evaluations are independent given the
// shared good-machine frames, so they shard across a pool of workers (see
// SetWorkers), each owning its own Simulator; the detection masks are
// bit-identical at every worker count.
//
// A FaultSimulator is not safe for concurrent use by multiple goroutines;
// the parallelism is internal.
type FaultSimulator struct {
	n       *netlist.Netlist
	ch      *scan.Chains
	eng     *scan.Engine
	obs     []int
	workers int
	engine  sim.EngineKind
	sims    []*sim.Simulator // scalar kind: one faulty-machine simulator per worker
	props   []*sim.FaultProp // PPSFP kind: one cone propagator per worker
}

// NewFaultSimulator returns a simulator over the scan configuration,
// using the default engine (PPSFP).
func NewFaultSimulator(ch *scan.Chains) *FaultSimulator {
	n := ch.Netlist()
	e := newExpansion(n, ch)
	return &FaultSimulator{
		n:      n,
		ch:     ch,
		eng:    scan.NewEngine(ch),
		obs:    e.obs,
		engine: sim.EngineAuto.Resolve(),
	}
}

// SetWorkers bounds the per-fault fan-out: 0 means one worker per CPU,
// 1 the exact legacy serial path.
func (fs *FaultSimulator) SetWorkers(w int) { fs.workers = w }

// SetEngine selects the faulty-machine evaluation backend: PPSFP
// propagates each fault event-driven through its fanout cone over the
// SoA netlist core, the scalar kind re-simulates the whole netlist per
// fault (the original reference path). Detection masks are bit-identical
// across kinds; the shared good-machine launch switches backend too.
func (fs *FaultSimulator) SetEngine(kind sim.EngineKind) {
	fs.engine = kind.Resolve()
	fs.eng.SetKind(kind)
}

// Engine returns the resolved faulty-machine backend.
func (fs *FaultSimulator) Engine() sim.EngineKind { return fs.engine }

// simulators returns at least w per-worker simulators, growing the pool
// lazily (construction is cheap; the value arrays dominate and are
// reused across batches).
func (fs *FaultSimulator) simulators(w int) []*sim.Simulator {
	for len(fs.sims) < w {
		fs.sims = append(fs.sims, sim.New(fs.n))
	}
	return fs.sims[:w]
}

// propagators returns at least w per-worker cone propagators, each
// loaded with the shared good-machine capture frame.
func (fs *FaultSimulator) propagators(w int, good2 []logic.Word) []*sim.FaultProp {
	for len(fs.props) < w {
		fs.props = append(fs.props, sim.NewFaultProp(fs.n, fs.obs))
	}
	props := fs.props[:w]
	for _, fp := range props {
		fp.SetBase(good2)
	}
	return props
}

// DetectBatch simulates up to 64 patterns and reports, per fault in
// `faults`, the lanes on which the fault is detected (launched at the site
// and observed at a PO or scan-cell D pin).
func (fs *FaultSimulator) DetectBatch(pats []*scan.Pattern, faults []Fault) []logic.Word {
	f1, f2, err := fs.eng.Launch(pats, scan.LOS)
	if err != nil {
		// Callers chunk into 1..64-pattern batches by construction; an
		// oversized batch here is an internal invariant violation.
		panic(err.Error())
	}
	good1 := append([]logic.Word(nil), f1...)
	good2 := append([]logic.Word(nil), f2...)

	laneMask := logic.AllOne
	if len(pats) < 64 {
		laneMask = (logic.Word(1) << uint(len(pats))) - 1
	}

	out := make([]logic.Word, len(faults))
	w := parallel.Normalize(fs.workers)
	if w > len(faults) {
		w = len(faults)
	}

	if fs.engine == sim.EnginePPSFP {
		// Event-driven cone propagation per fault, against the shared
		// good-machine capture frame — O(active cone) per fault instead
		// of a full-netlist re-simulation.
		props := fs.propagators(max(w, 1), good2)
		if w <= 1 {
			fp := props[0]
			for i, f := range faults {
				out[i] = detectOneProp(fp, f, good1, laneMask)
			}
			return out
		}
		if err := parallel.ForEach(context.Background(), w, w, func(shard int) error {
			fp := props[shard]
			lo := shard * len(faults) / w
			hi := (shard + 1) * len(faults) / w
			for i := lo; i < hi; i++ {
				out[i] = detectOneProp(fp, faults[i], good1, laneMask)
			}
			return nil
		}); err != nil {
			// The shard body never errors; only a contained panic lands here.
			panic(err.Error())
		}
		return out
	}

	src2 := fs.eng.Frame2Sources()
	if w <= 1 {
		s := fs.simulators(1)[0]
		for i, f := range faults {
			out[i] = fs.detectOne(s, f, good1, good2, src2, laneMask)
		}
		return out
	}
	// Contiguous shards, one worker and one private simulator each; every
	// fault writes only its own out slot, from shared read-only frames.
	sims := fs.simulators(w)
	if err := parallel.ForEach(context.Background(), w, w, func(shard int) error {
		s := sims[shard]
		lo := shard * len(faults) / w
		hi := (shard + 1) * len(faults) / w
		for i := lo; i < hi; i++ {
			out[i] = fs.detectOne(s, faults[i], good1, good2, src2, laneMask)
		}
		return nil
	}); err != nil {
		// The shard body never errors; only a contained panic lands here.
		panic(err.Error())
	}
	return out
}

// detectOneProp is detectOne through the PPSFP cone propagator: the
// launch-lane computation is shared, the faulty-machine deviation comes
// from event-driven propagation instead of RunForced. Bit-identical by
// construction — unreached observation nets contribute zero diff, and
// OR-accumulation is order-independent.
func detectOneProp(fp *sim.FaultProp, f Fault, good1 []logic.Word, laneMask logic.Word) logic.Word {
	initial := logic.AllZero
	if f.Dir.initial() {
		initial = logic.AllOne
	}
	launch := ^(good1[f.Net] ^ initial) & laneMask
	if launch == 0 {
		return 0
	}
	return fp.Propagate(f.Net, initial, launch)
}

// detectOne computes one fault's detection mask against the shared
// good-machine frames, using the caller-owned faulty-machine simulator.
func (fs *FaultSimulator) detectOne(s *sim.Simulator, f Fault,
	good1, good2, src2 []logic.Word, laneMask logic.Word) logic.Word {
	initial := logic.AllZero
	if f.Dir.initial() {
		initial = logic.AllOne
	}
	// Launch lanes: frame-1 site value equals the initial value.
	launch := ^(good1[f.Net] ^ initial) & laneMask
	if launch == 0 {
		return 0
	}
	faulty2 := s.RunForced(src2, f.Net, initial)
	var diff logic.Word
	for _, o := range fs.obs {
		diff |= good2[o] ^ faulty2[o]
		if diff&launch == launch {
			break // all launch lanes already detect
		}
	}
	return diff & launch
}

// Detects reports whether a single pattern detects the fault.
func (fs *FaultSimulator) Detects(p *scan.Pattern, f Fault) bool {
	res := fs.DetectBatch([]*scan.Pattern{p}, []Fault{f})
	return res[0]&1 != 0
}
