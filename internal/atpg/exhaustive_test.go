package atpg

import (
	"testing"

	"superpose/internal/scan"
)

// exhaustivePatterns enumerates every assignment of the scan bits and PIs
// for a configuration small enough to brute-force.
func exhaustivePatterns(t *testing.T, ch *scan.Chains) []*scan.Pattern {
	t.Helper()
	nScan := 0
	for i := 0; i < ch.NumChains(); i++ {
		nScan += len(ch.Chain(i))
	}
	nVars := nScan + len(ch.Netlist().PIs)
	if nVars > 16 {
		t.Fatalf("circuit too large for exhaustive enumeration (%d vars)", nVars)
	}
	var pats []*scan.Pattern
	for v := 0; v < 1<<nVars; v++ {
		p := ch.NewPattern()
		k := 0
		for c := 0; c < ch.NumChains(); c++ {
			for j := range p.Scan[c] {
				p.Scan[c][j] = v&(1<<k) != 0
				k++
			}
		}
		for i := range p.PI {
			p.PI[i] = v&(1<<k) != 0
			k++
		}
		pats = append(pats, p)
	}
	return pats
}

// TestPodemCompleteOnS27 cross-validates PODEM against brute force: a
// fault is LOS-testable iff some pattern in the exhaustive set detects it,
// and PODEM (with a generous backtrack limit) must agree exactly — no
// missed tests and no false "untestable" verdicts.
func TestPodemCompleteOnS27(t *testing.T) {
	n := parseS27(t)
	ch := scan.Configure(n, 1)
	pats := exhaustivePatterns(t, ch)
	fsim := NewFaultSimulator(ch)
	reps, _ := Collapse(n, FaultList(n))

	truth := make(map[Fault]bool, len(reps))
	for start := 0; start < len(pats); start += 64 {
		end := start + 64
		if end > len(pats) {
			end = len(pats)
		}
		det := fsim.DetectBatch(pats[start:end], reps)
		for i, mask := range det {
			if mask != 0 {
				truth[reps[i]] = true
			}
		}
	}

	e := newExpansion(n, ch)
	testable := 0
	for _, f := range reps {
		p := newPodem(e, f)
		g := p.run(1 << 20)
		if g.aborted {
			t.Errorf("fault %v: aborted with huge backtrack limit", f)
			continue
		}
		if g.ok != truth[f] {
			t.Errorf("fault %v: PODEM testable=%v, exhaustive says %v", f, g.ok, truth[f])
		}
		if truth[f] {
			testable++
		}
	}
	t.Logf("s27 under single-chain LOS: %d/%d collapsed faults testable", testable, len(reps))
	if testable == 0 {
		t.Fatal("expected some testable faults")
	}
}
