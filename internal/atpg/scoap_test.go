package atpg

import (
	"strings"
	"testing"

	"superpose/internal/bench"
	"superpose/internal/netlist"
)

func TestScoapBasics(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
g_and = AND(a, b)
g_or = OR(a, b)
g_not = NOT(a)
g_xor = XOR(a, b)
deep = AND(g_and, c)
z = BUF(deep)
`
	n, err := bench.Parse(strings.NewReader(src), "scoap")
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeScoap(n)
	id := func(name string) int {
		g, ok := n.GateID(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		return g
	}

	// Sources are unit cost.
	if s.CC0[id("a")] != 1 || s.CC1[id("a")] != 1 {
		t.Error("PI controllability must be 1")
	}
	// AND: CC1 = CC1(a)+CC1(b)+1 = 3; CC0 = min(CC0)+1 = 2.
	if s.CC1[id("g_and")] != 3 || s.CC0[id("g_and")] != 2 {
		t.Errorf("AND cc = (%d,%d)", s.CC0[id("g_and")], s.CC1[id("g_and")])
	}
	// OR: symmetric.
	if s.CC0[id("g_or")] != 3 || s.CC1[id("g_or")] != 2 {
		t.Errorf("OR cc = (%d,%d)", s.CC0[id("g_or")], s.CC1[id("g_or")])
	}
	// NOT swaps.
	if s.CC0[id("g_not")] != 2 || s.CC1[id("g_not")] != 2 {
		t.Errorf("NOT cc = (%d,%d)", s.CC0[id("g_not")], s.CC1[id("g_not")])
	}
	// XOR: 0 needs equal values (min(1+1,1+1)+1=3), 1 needs unequal (3).
	if s.CC0[id("g_xor")] != 3 || s.CC1[id("g_xor")] != 3 {
		t.Errorf("XOR cc = (%d,%d)", s.CC0[id("g_xor")], s.CC1[id("g_xor")])
	}
	// Depth accumulates: deep's CC1 = CC1(g_and)+CC1(c)+1 = 5.
	if s.CC1[id("deep")] != 5 {
		t.Errorf("deep CC1 = %d", s.CC1[id("deep")])
	}
	// Cost accessor.
	if s.Cost(id("deep"), true) != 5 || s.Cost(id("g_and"), false) != 2 {
		t.Error("Cost accessor")
	}
}

func TestScoapMonotoneWithDepth(t *testing.T) {
	// A chain of buffers must strictly increase controllability cost.
	b := netlist.NewBuilder("chain")
	if _, err := b.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	prev := "a"
	for i := 0; i < 10; i++ {
		name := "b" + string(rune('0'+i))
		if _, err := b.AddGate(name, netlist.Buf, prev); err != nil {
			t.Fatal(err)
		}
		prev = name
	}
	b.MarkOutput(prev)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeScoap(n)
	last := 0
	for _, id := range n.TopoOrder() {
		if s.CC1[id] <= last {
			t.Fatalf("CC1 not increasing along buffer chain: %d after %d", s.CC1[id], last)
		}
		last = s.CC1[id]
	}
}

func TestScoapCapsOnPathologicalDepth(t *testing.T) {
	// Wide AND pyramids blow up CC1 multiplicatively; the cap must hold.
	b := netlist.NewBuilder("pyramid")
	var layer []string
	for i := 0; i < 8; i++ {
		name := "i" + string(rune('0'+i))
		if _, err := b.AddInput(name); err != nil {
			t.Fatal(err)
		}
		layer = append(layer, name)
	}
	for l := 0; l < 40; l++ {
		name := "p" + string(rune('a'+l%26)) + string(rune('0'+l/26))
		if _, err := b.AddGate(name, netlist.And, layer[0], layer[1]); err != nil {
			t.Fatal(err)
		}
		layer = append(layer[2:], name, name)
	}
	b.MarkOutput(layer[len(layer)-1])
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeScoap(n)
	for id := range s.CC1 {
		if s.CC1[id] > scoapCap || s.CC0[id] > scoapCap || s.CC1[id] < 0 || s.CC0[id] < 0 {
			t.Fatalf("controllability out of range: (%d,%d)", s.CC0[id], s.CC1[id])
		}
	}
}
