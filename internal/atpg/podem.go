package atpg

import (
	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/scan"
)

// expansion maps the two-frame LOS circuit onto decision variables: one
// variable per scan-in bit (flattened chain-major) followed by one per
// primary input. Frame-1 state of chain cell j is scan bit j-1 (bit 0 for
// the scan-in cell, which therefore never launches); frame-2 state is scan
// bit j; primary inputs hold in both frames.
type expansion struct {
	n          *netlist.Netlist
	ch         *scan.Chains
	chainStart []int // variable index of each chain's bit 0
	numScan    int
	piVar      map[int]int // PI gate ID -> variable
	obs        []int       // observation nets: POs + FF D-pins (deduplicated)
	isObs      []bool      // per-net observation flag
	scoap      *Scoap      // controllability guidance for backtrace
}

func newExpansion(n *netlist.Netlist, ch *scan.Chains) *expansion {
	e := &expansion{n: n, ch: ch, piVar: make(map[int]int, len(n.PIs))}
	for i := 0; i < ch.NumChains(); i++ {
		e.chainStart = append(e.chainStart, e.numScan)
		e.numScan += len(ch.Chain(i))
	}
	for i, pi := range n.PIs {
		e.piVar[pi] = e.numScan + i
	}
	e.isObs = make([]bool, n.NumGates())
	add := func(id int) {
		if !e.isObs[id] {
			e.isObs[id] = true
			e.obs = append(e.obs, id)
		}
	}
	for _, po := range n.POs {
		add(po)
	}
	for _, ff := range n.FFs {
		add(n.Gates[ff].Fanin[0])
	}
	e.scoap = ComputeScoap(n)
	return e
}

// numVars returns the decision-variable count.
func (e *expansion) numVars() int { return e.numScan + len(e.n.PIs) }

// scanVar returns the variable holding scan bit (chain, idx).
func (e *expansion) scanVar(chain, idx int) int { return e.chainStart[chain] + idx }

// frameVar returns the variable feeding flip-flop ff in the given frame
// (1 or 2) under LOS, or -1 for a NoScan cell (uncontrollable: its state
// is frozen during test application).
func (e *expansion) frameVar(ff int, frame int) int {
	pos, ok := e.ch.Position(ff)
	if !ok {
		return -1
	}
	idx := pos.Index
	if frame == 1 && idx > 0 {
		idx--
	}
	return e.scanVar(pos.Chain, idx)
}

// frameValue resolves a flip-flop's five-valued source for a frame:
// the mapped scan-bit assignment, or constant 0 for frozen NoScan cells.
func (p *podem) frameValue(ff, frame int) logic.V {
	v := p.e.frameVar(ff, frame)
	if v < 0 {
		return logic.Zero
	}
	return p.assign[v]
}

// podem is the per-fault decision engine. It re-simulates both frames of
// the expanded circuit after every assignment; for the benchmark sizes in
// question full resimulation profiles well below the cost of maintaining
// incremental event queues, and it keeps the checker trivially correct.
type podem struct {
	e      *expansion
	fault  Fault
	assign []logic.V // per variable
	v1, v2 []logic.V // per net, frames 1 and 2

	// scratch for the X-path check
	mark []bool
}

func newPodem(e *expansion, f Fault) *podem {
	p := &podem{
		e:      e,
		fault:  f,
		assign: make([]logic.V, e.numVars()),
		v1:     make([]logic.V, e.n.NumGates()),
		v2:     make([]logic.V, e.n.NumGates()),
		mark:   make([]bool, e.n.NumGates()),
	}
	for i := range p.assign {
		p.assign[i] = logic.X
	}
	return p
}

// eval5 computes the five-valued output of gate id over the value slice.
func eval5(n *netlist.Netlist, vals []logic.V, id int) logic.V {
	g := &n.Gates[id]
	switch g.Type {
	case netlist.Buf:
		return vals[g.Fanin[0]]
	case netlist.Not:
		return vals[g.Fanin[0]].Not()
	case netlist.And, netlist.Nand:
		w := logic.One
		for _, f := range g.Fanin {
			w = logic.And5(w, vals[f])
		}
		if g.Type == netlist.Nand {
			w = w.Not()
		}
		return w
	case netlist.Or, netlist.Nor:
		w := logic.Zero
		for _, f := range g.Fanin {
			w = logic.Or5(w, vals[f])
		}
		if g.Type == netlist.Nor {
			w = w.Not()
		}
		return w
	case netlist.Xor, netlist.Xnor:
		w := logic.Zero
		for _, f := range g.Fanin {
			w = logic.Xor5(w, vals[f])
		}
		if g.Type == netlist.Xnor {
			w = w.Not()
		}
		return w
	default:
		panic("atpg: source gate in topo order")
	}
}

// inject maps the good-machine frame-2 value at the fault site to its
// five-valued faulty composite: the site behaves as stuck at the fault's
// initial value during the capture frame.
func (p *podem) inject(good logic.V) logic.V {
	switch good {
	case logic.One:
		if p.fault.Dir == SlowToRise {
			return logic.D // good 1, faulty stuck at 0
		}
		return logic.One
	case logic.Zero:
		if p.fault.Dir == SlowToFall {
			return logic.Dbar // good 0, faulty stuck at 1
		}
		return logic.Zero
	default:
		return logic.X
	}
}

// simulate evaluates both frames under the current assignment.
func (p *podem) simulate() {
	n := p.e.n
	// Frame 1: plain three-valued evaluation, no fault.
	for _, pi := range n.PIs {
		p.v1[pi] = p.assign[p.e.piVar[pi]]
	}
	for _, ff := range n.FFs {
		p.v1[ff] = p.frameValue(ff, 1)
	}
	for _, id := range n.TopoOrder() {
		p.v1[id] = eval5(n, p.v1, id)
	}

	// Frame 2: fault injected at the site.
	for _, pi := range n.PIs {
		p.v2[pi] = p.assign[p.e.piVar[pi]]
	}
	for _, ff := range n.FFs {
		v := p.frameValue(ff, 2)
		if ff == p.fault.Net {
			v = p.inject(v)
		}
		p.v2[ff] = v
	}
	for _, id := range n.TopoOrder() {
		v := eval5(n, p.v2, id)
		if id == p.fault.Net {
			v = p.inject(v)
		}
		p.v2[id] = v
	}
}

type status uint8

const (
	statusOpen status = iota
	statusSuccess
	statusConflict
)

// check classifies the current simulation state.
func (p *podem) check() status {
	initial := logic.FromBit(p.fault.Dir.initial())
	// Launch condition: frame-1 site value must be the initial value.
	if v := p.v1[p.fault.Net]; v.Known() && v != initial {
		return statusConflict
	}
	// Activation: frame-2 good value must be the final value; with the
	// injection applied, a wrong final value shows as the plain initial.
	if v := p.v2[p.fault.Net]; v.Known() && !v.IsD() {
		return statusConflict
	}
	// Success: a fault effect visible at an observation point.
	for _, o := range p.e.obs {
		if p.v2[o].IsD() {
			return statusSuccess
		}
	}
	if !p.xPath() {
		return statusConflict
	}
	return statusOpen
}

// xPath reports whether a fault effect can still reach an observation
// point: a forward path from a D-bearing net (or the not-yet-activated
// site) through X-valued nets to an observation net.
func (p *podem) xPath() bool {
	n := p.e.n
	for i := range p.mark {
		p.mark[i] = false
	}
	var queue []int
	push := func(id int) {
		if !p.mark[id] {
			p.mark[id] = true
			queue = append(queue, id)
		}
	}
	for id := range p.v2 {
		if p.v2[id].IsD() {
			push(id)
		}
	}
	if p.v2[p.fault.Net] == logic.X {
		push(p.fault.Net)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if p.e.isObs[id] {
			return true
		}
		for _, fo := range n.Fanouts(id) {
			if n.Gates[fo].Type.IsSource() {
				continue
			}
			if p.v2[fo] == logic.X {
				push(fo)
			}
		}
	}
	return false
}

// objective returns the next (net, value, frame) goal.
func (p *podem) objective() (net int, val bool, frame int, ok bool) {
	if p.v1[p.fault.Net] == logic.X {
		return p.fault.Net, p.fault.Dir.initial(), 1, true
	}
	if p.v2[p.fault.Net] == logic.X {
		return p.fault.Net, p.fault.Dir.final(), 2, true
	}
	// Propagate: find the first D-frontier gate in topological order and
	// ask for a non-controlling value on one of its X inputs.
	n := p.e.n
	for _, id := range n.TopoOrder() {
		if p.v2[id] != logic.X {
			continue
		}
		g := &n.Gates[id]
		hasD := false
		for _, f := range g.Fanin {
			if p.v2[f].IsD() {
				hasD = true
				break
			}
		}
		if !hasD {
			continue
		}
		for _, f := range g.Fanin {
			if p.v2[f] == logic.X {
				return f, nonControlling(g.Type), 2, true
			}
		}
	}
	return 0, false, 0, false
}

// nonControlling returns the value that lets a fault effect pass the gate.
func nonControlling(t netlist.GateType) bool {
	switch t {
	case netlist.And, netlist.Nand:
		return true
	default: // OR/NOR need 0; XOR-class passes with either, use 0
		return false
	}
}

// inverts reports whether the gate type complements its AND/OR/parity core.
func inverts(t netlist.GateType) bool {
	switch t {
	case netlist.Nand, netlist.Nor, netlist.Not, netlist.Xnor:
		return true
	default:
		return false
	}
}

// backtrace maps an objective to an unassigned decision variable and a
// trial value, walking backward through X-valued nets. It is heuristic:
// bad choices are corrected by backtracking.
func (p *podem) backtrace(net int, val bool, frame int) (variable int, value bool) {
	n := p.e.n
	vals := p.v1
	if frame == 2 {
		vals = p.v2
	}
	for {
		g := &n.Gates[net]
		switch g.Type {
		case netlist.Input:
			return p.e.piVar[net], val
		case netlist.DFF:
			return p.e.frameVar(net, frame), val
		}
		if inverts(g.Type) {
			val = !val
		}
		switch g.Type {
		case netlist.Buf, netlist.Not:
			net = g.Fanin[0]
			continue
		case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
			// After un-inversion val is the desired AND/OR core output and
			// also the value to request on the chosen input (AND core:
			// output 1 needs all inputs 1, output 0 needs one input 0).
			// Input choice follows SCOAP: when one controlling input
			// suffices, take the cheapest; when every input must hold the
			// non-controlling value, take the hardest first so infeasible
			// requirements fail early.
			coreAnd := g.Type == netlist.And || g.Type == netlist.Nand
			controllingNeed := (coreAnd && !val) || (!coreAnd && val)
			next := -1
			best := 0
			for _, f := range g.Fanin {
				if vals[f] != logic.X {
					continue
				}
				cost := p.e.scoap.Cost(f, val)
				better := next < 0 ||
					(controllingNeed && cost < best) ||
					(!controllingNeed && cost > best)
				if better {
					next, best = f, cost
				}
			}
			if next < 0 {
				// Shouldn't happen for an X-valued objective net; bail to
				// the first fanin to keep the walk total.
				next = g.Fanin[0]
			}
			net = next
		case netlist.Xor, netlist.Xnor:
			// Parity: choose the first X input; target value is the core
			// parity with all other X inputs assumed 0 and known inputs
			// folded in.
			next := -1
			parity := val
			for _, f := range g.Fanin {
				if vals[f] == logic.X {
					if next < 0 {
						next = f
					}
					continue
				}
				if bit, known := vals[f].Good(); known && bit {
					parity = !parity
				}
			}
			if next < 0 {
				next = g.Fanin[0]
			}
			val = parity
			net = next
		default:
			panic("atpg: unexpected gate type in backtrace")
		}
	}
}

// result of a generation attempt for one fault.
type genResult struct {
	ok      bool
	aborted bool // backtrack limit hit (fault may still be testable)
}

// run executes the PODEM decision loop. On success the assignment slice
// holds the care bits (X entries are don't-cares).
func (p *podem) run(backtrackLimit int) genResult {
	type decision struct {
		variable int
		value    bool
		flipped  bool
	}
	var stack []decision
	backtracks := 0

	// backtrack flips the deepest unflipped decision. Returns the loop
	// verdict: exhausted (untestable), aborted (limit), or keep going.
	const (
		keepGoing = iota
		exhausted
		limitHit
	)
	backtrack := func() int {
		for {
			if len(stack) == 0 {
				return exhausted
			}
			top := &stack[len(stack)-1]
			if !top.flipped {
				backtracks++
				if backtracks > backtrackLimit {
					return limitHit
				}
				top.flipped = true
				top.value = !top.value
				p.assign[top.variable] = logic.FromBit(top.value)
				return keepGoing
			}
			p.assign[top.variable] = logic.X
			stack = stack[:len(stack)-1]
		}
	}

	for {
		p.simulate()
		st := p.check()
		if st == statusSuccess {
			return genResult{ok: true}
		}

		conflict := st == statusConflict
		var variable int
		var value bool
		if !conflict {
			net, val, frame, ok := p.objective()
			if !ok {
				conflict = true // nothing left to try on this branch
			} else {
				variable, value = p.backtrace(net, val, frame)
				if variable < 0 || p.assign[variable] != logic.X {
					// The heuristic walk landed on an uncontrollable
					// (NoScan) cell or an assigned variable; treat the
					// branch as conflicting to force progress.
					conflict = true
				}
			}
		}
		if conflict {
			switch backtrack() {
			case exhausted:
				return genResult{}
			case limitHit:
				return genResult{aborted: true}
			}
			continue
		}
		stack = append(stack, decision{variable: variable, value: value})
		p.assign[variable] = logic.FromBit(value)
	}
}
