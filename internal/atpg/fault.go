// Package atpg implements Launch-on-Shift transition-delay-fault test
// generation: the stand-in for the commercial ATPG (Mentor Tessent) the
// paper uses to produce its seed patterns (§V-B).
//
// The generator is a PODEM over a virtual two-frame expansion of the
// full-scan circuit. Decision variables are the scan-in bits and the
// primary inputs; the LOS shift constraint (frame-1 state of cell j equals
// scan bit j-1) is built into the expansion, so every generated test is a
// legal LOS pattern by construction.
package atpg

import (
	"fmt"

	"superpose/internal/netlist"
)

// Direction is the transition polarity of a delay fault.
type Direction uint8

const (
	// SlowToRise: the net fails to complete a 0→1 transition in time.
	SlowToRise Direction = iota
	// SlowToFall: the net fails to complete a 1→0 transition in time.
	SlowToFall
)

// String names the direction in conventional notation.
func (d Direction) String() string {
	if d == SlowToRise {
		return "STR"
	}
	return "STF"
}

// initial returns the required frame-1 value at the fault site.
func (d Direction) initial() bool { return d == SlowToFall }

// final returns the required frame-2 (good-machine) value at the fault site.
func (d Direction) final() bool { return d == SlowToRise }

// Fault is one transition-delay fault.
type Fault struct {
	Net int // gate/net ID of the fault site
	Dir Direction
}

// String renders the fault as "net/STR".
func (f Fault) String() string { return fmt.Sprintf("%d/%s", f.Net, f.Dir) }

// FaultList builds the full transition fault list of a netlist: both
// directions on every combinational gate output and every flip-flop
// output. Primary-input nets are excluded — under LOS the primary inputs
// are held static across the launch, so no transition can originate there.
func FaultList(n *netlist.Netlist) []Fault {
	var out []Fault
	for id, g := range n.Gates {
		if g.Type == netlist.Input {
			continue
		}
		out = append(out, Fault{Net: id, Dir: SlowToRise}, Fault{Net: id, Dir: SlowToFall})
	}
	return out
}

// Collapse performs equivalence collapsing across BUF/NOT chains: a
// transition fault on a buffer output is indistinguishable from the
// same-direction fault on its input, and on an inverter output from the
// opposite-direction fault on its input. It returns the representative
// faults and a map from every fault to its representative.
func Collapse(n *netlist.Netlist, faults []Fault) (reps []Fault, repOf map[Fault]Fault) {
	repOf = make(map[Fault]Fault, len(faults))
	var canon func(f Fault) Fault
	canon = func(f Fault) Fault {
		if r, ok := repOf[f]; ok {
			return r
		}
		g := n.Gates[f.Net]
		var r Fault
		switch {
		case (g.Type == netlist.Buf || g.Type == netlist.Not) &&
			n.Gates[g.Fanin[0]].Type == netlist.Input:
			// Don't collapse onto a primary-input net: PI faults are not
			// in the LOS fault universe (PIs are static at launch).
			r = f
		case g.Type == netlist.Buf:
			r = canon(Fault{Net: g.Fanin[0], Dir: f.Dir})
		case g.Type == netlist.Not:
			opp := SlowToRise
			if f.Dir == SlowToRise {
				opp = SlowToFall
			}
			r = canon(Fault{Net: g.Fanin[0], Dir: opp})
		default:
			r = f
		}
		repOf[f] = r
		return r
	}
	seen := make(map[Fault]bool, len(faults))
	for _, f := range faults {
		r := canon(f)
		if !seen[r] {
			seen[r] = true
			reps = append(reps, r)
		}
	}
	return reps, repOf
}
