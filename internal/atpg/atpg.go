package atpg

import (
	"fmt"

	"superpose/internal/logic"
	"superpose/internal/scan"
	"superpose/internal/sim"
	"superpose/internal/stats"
)

// Options configures a test-generation run.
type Options struct {
	// BacktrackLimit bounds the PODEM search per fault; a fault whose
	// search exceeds it is counted as aborted. Default 256.
	BacktrackLimit int
	// RandomPatterns is the number of random LOS patterns fault-simulated
	// before deterministic generation starts (knocks out the easy faults
	// cheaply, as commercial flows do). Default 64. Random patterns that
	// detect nothing are discarded.
	RandomPatterns int
	// MaxPatterns caps the emitted pattern count (0 = unlimited).
	MaxPatterns int
	// MaxFaults caps how many collapsed faults are targeted
	// deterministically (0 = all). Faults beyond the cap still count in
	// coverage if random patterns or fault dropping catch them.
	MaxFaults int
	// FaultSample, when positive, restricts the whole run (simulation and
	// targeting) to an evenly spaced sample of the collapsed fault list.
	// Coverage is then reported over the sample. This is the scalability
	// knob for the large benchmark circuits, where the experiments need
	// seed patterns rather than full manufacturing-grade coverage.
	FaultSample int
	// Seed drives random fill and random-pattern generation.
	Seed uint64
	// NDetect, when above 1, keeps targeting each fault until it has been
	// detected by that many distinct patterns. N-detect sets increase the
	// chance of incidental Trojan activation, the reason side-channel
	// methods (the paper's [9]) favour them over single-detect sets.
	NDetect int
	// Workers bounds the fault-simulation fan-out (per-fault faulty-
	// machine evaluations shard across a pool of simulators; see
	// internal/parallel): 0 means one worker per CPU, 1 the exact legacy
	// serial path. Generation output is bit-identical at every worker
	// count — each fault's detection mask depends only on the shared
	// good-machine frames.
	Workers int
	// Engine selects the fault-simulation backend (default PPSFP: the
	// event-driven cone propagation over the SoA netlist core; scalar is
	// the full-resimulation reference path). Generated patterns and all
	// counters are bit-identical across engines.
	Engine sim.EngineKind
}

func (o Options) withDefaults() Options {
	if o.BacktrackLimit == 0 {
		o.BacktrackLimit = 256
	}
	if o.RandomPatterns == 0 {
		o.RandomPatterns = 64
	}
	if o.NDetect < 1 {
		o.NDetect = 1
	}
	return o
}

// Result is the outcome of a generation run.
type Result struct {
	Patterns []*scan.Pattern

	TotalFaults int // collapsed fault count
	Detected    int
	Untestable  int // proven untestable (search exhausted)
	Aborted     int // backtrack limit hit
	NotTargeted int // beyond MaxFaults and never detected

	// NDetectSatisfied counts faults detected by the full NDetect quota of
	// distinct patterns (equals Detected when NDetect == 1).
	NDetectSatisfied int

	// PerPatternDetects[i] is how many previously-undetected faults
	// pattern i detected when it was added.
	PerPatternDetects []int
}

// Coverage returns detected / total over the collapsed fault list.
func (r *Result) Coverage() float64 {
	if r.TotalFaults == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.TotalFaults)
}

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("atpg: %d patterns, %d/%d faults detected (%.1f%%), %d untestable, %d aborted, %d untargeted",
		len(r.Patterns), r.Detected, r.TotalFaults, 100*r.Coverage(), r.Untestable, r.Aborted, r.NotTargeted)
}

// Generate produces LOS transition-delay test patterns for the scan
// configuration's netlist.
func Generate(ch *scan.Chains, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	n := ch.Netlist()
	if len(n.FFs) == 0 && len(n.PIs) == 0 {
		return nil, fmt.Errorf("atpg: netlist %q has no controllable inputs", n.Name)
	}

	reps, _ := Collapse(n, FaultList(n))
	if opt.FaultSample > 0 && len(reps) > opt.FaultSample {
		sampled := make([]Fault, 0, opt.FaultSample)
		step := float64(len(reps)) / float64(opt.FaultSample)
		for i := 0; i < opt.FaultSample; i++ {
			sampled = append(sampled, reps[int(float64(i)*step)])
		}
		reps = sampled
	}

	// remaining[i] is the number of further distinct detections fault i
	// needs; 0 means done (satisfied, untestable or aborted).
	remaining := make([]int, len(reps))
	for i := range remaining {
		remaining[i] = opt.NDetect
	}
	everDetected := make([]bool, len(reps))
	liveCount := len(reps)
	closeFault := func(i int) {
		if remaining[i] > 0 {
			remaining[i] = 0
			liveCount--
		}
	}

	res := &Result{TotalFaults: len(reps)}
	fsim := NewFaultSimulator(ch)
	fsim.SetWorkers(opt.Workers)
	fsim.SetEngine(opt.Engine)
	rng := stats.NewRNG(opt.Seed)

	// liveList materializes the faults still needing detections.
	liveList := func() ([]Fault, []int) {
		var fl []Fault
		var idx []int
		for i, f := range reps {
			if remaining[i] > 0 {
				fl = append(fl, f)
				idx = append(idx, i)
			}
		}
		return fl, idx
	}

	// absorb fault-simulates a batch of candidate patterns and keeps those
	// that contribute a needed detection. Each detecting lane is a
	// distinct pattern, so one batch can retire several of a fault's
	// n-detect quota.
	absorb := func(batch []*scan.Pattern) {
		if len(batch) == 0 || liveCount == 0 {
			return
		}
		fl, idx := liveList()
		det := fsim.DetectBatch(batch, fl)
		perPattern := make([]int, len(batch))
		for fi, mask := range det {
			if mask == 0 {
				continue
			}
			i := idx[fi]
			if !everDetected[i] {
				everDetected[i] = true
				res.Detected++
			}
			for lane := 0; mask != 0 && remaining[i] > 0; lane++ {
				if mask&1 != 0 {
					perPattern[lane]++
					remaining[i]--
				}
				mask >>= 1
			}
			if remaining[i] == 0 {
				liveCount--
				res.NDetectSatisfied++
			}
		}
		for lane, p := range batch {
			if perPattern[lane] > 0 {
				res.Patterns = append(res.Patterns, p)
				res.PerPatternDetects = append(res.PerPatternDetects, perPattern[lane])
			}
		}
	}

	// Phase 1: random patterns.
	for done := 0; done < opt.RandomPatterns && liveCount > 0; {
		size := opt.RandomPatterns - done
		if size > 64 {
			size = 64
		}
		batch := make([]*scan.Pattern, size)
		for i := range batch {
			batch[i] = ch.RandomPattern(rng)
		}
		absorb(batch)
		done += size
		if opt.MaxPatterns > 0 && len(res.Patterns) >= opt.MaxPatterns {
			res.NotTargeted = liveCount
			return res, nil
		}
	}

	// Phase 2: deterministic PODEM passes. Each pass targets every fault
	// still owing detections; later passes reuse the same care bits with
	// fresh random fill, which is what makes the extra detections
	// distinct. Untestable/aborted verdicts close a fault permanently.
	e := newExpansion(n, ch)
	targeted := 0
	for pass := 0; pass < opt.NDetect && liveCount > 0; pass++ {
		progress := false
		for i, f := range reps {
			if remaining[i] <= 0 || liveCount == 0 {
				continue
			}
			if opt.MaxFaults > 0 && targeted >= opt.MaxFaults {
				break
			}
			if opt.MaxPatterns > 0 && len(res.Patterns) >= opt.MaxPatterns {
				break
			}
			targeted++

			p := newPodem(e, f)
			g := p.run(opt.BacktrackLimit)
			switch {
			case g.ok:
				before := remaining[i]
				pat := extractPattern(ch, e, p.assign, rng)
				absorb([]*scan.Pattern{pat})
				for retry := 0; retry < 4 && remaining[i] == before; retry++ {
					// Random fill spoiled the detection (possible when
					// fill interacts with multi-path propagation); retry
					// with a different fill before giving up.
					absorb([]*scan.Pattern{extractPattern(ch, e, p.assign, rng)})
				}
				if remaining[i] == before {
					res.Aborted++
					closeFault(i)
				} else {
					progress = true
				}
			case g.aborted:
				res.Aborted++
				closeFault(i)
			default:
				res.Untestable++
				closeFault(i)
			}
		}
		if !progress {
			break
		}
	}
	res.NotTargeted = 0
	for i := range reps {
		if remaining[i] > 0 && !everDetected[i] {
			res.NotTargeted++
		}
	}
	return res, nil
}

// extractPattern converts a PODEM assignment (care bits) into a concrete
// pattern, filling don't-cares randomly.
func extractPattern(ch *scan.Chains, e *expansion, assign []logic.V, rng *stats.RNG) *scan.Pattern {
	p := ch.NewPattern()
	for c := 0; c < ch.NumChains(); c++ {
		for j := range ch.Chain(c) {
			switch assign[e.scanVar(c, j)] {
			case logic.One:
				p.Scan[c][j] = true
			case logic.Zero:
				p.Scan[c][j] = false
			default:
				p.Scan[c][j] = rng.Bool()
			}
		}
	}
	n := ch.Netlist()
	for i, pi := range n.PIs {
		switch assign[e.piVar[pi]] {
		case logic.One:
			p.PI[i] = true
		case logic.Zero:
			p.PI[i] = false
		default:
			p.PI[i] = rng.Bool()
		}
	}
	return p
}
