package atpg

import (
	"testing"

	"superpose/internal/scan"
)

func buildDictFixture(t *testing.T) (*scan.Chains, []Fault, []*scan.Pattern, *Dictionary) {
	t.Helper()
	n := parseS27(t)
	ch := scan.Configure(n, 1)
	res, err := Generate(ch, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	reps, _ := Collapse(n, FaultList(n))
	d := BuildDictionary(ch, reps, res.Patterns)
	return ch, reps, res.Patterns, d
}

func TestDictionaryConsistentWithFaultSim(t *testing.T) {
	ch, reps, pats, d := buildDictFixture(t)
	fsim := NewFaultSimulator(ch)
	for fi, f := range reps {
		for pi, p := range pats {
			want := fsim.Detects(p, f)
			if got := d.Detects(fi, pi); got != want {
				t.Fatalf("fault %v pattern %d: dictionary %v, fault sim %v", f, pi, got, want)
			}
		}
	}
}

func TestDictionaryDetectionCounts(t *testing.T) {
	_, reps, pats, d := buildDictFixture(t)
	for fi := range reps {
		c := 0
		for pi := range pats {
			if d.Detects(fi, pi) {
				c++
			}
		}
		if d.DetectionCount(fi) != c {
			t.Fatalf("fault %d: count %d vs %d", fi, d.DetectionCount(fi), c)
		}
	}
}

func TestDiagnoseIdentifiesInjectedFault(t *testing.T) {
	// Simulate a die with each testable fault injected: its observed
	// failing-pattern signature must diagnose back to the fault itself
	// (distance 0 at rank 0) or to an indistinguishable equivalent.
	_, reps, pats, d := buildDictFixture(t)
	diagnosedExact := 0
	testable := 0
	for fi := range reps {
		if d.DetectionCount(fi) == 0 {
			continue // untestable: no signature to observe
		}
		testable++
		failing := make([]bool, len(pats))
		for pi := range pats {
			failing[pi] = d.Detects(fi, pi)
		}
		cands, err := d.Diagnose(failing)
		if err != nil {
			t.Fatal(err)
		}
		if cands[0].Distance != 0 {
			t.Fatalf("fault %v: best distance %d, want 0", reps[fi], cands[0].Distance)
		}
		// The injected fault must be among the distance-0 candidates.
		found := false
		for _, c := range cands {
			if c.Distance > 0 {
				break
			}
			if c.FaultIndex == fi {
				found = true
			}
		}
		if !found {
			t.Fatalf("fault %v not among exact-match candidates", reps[fi])
		}
		if cands[0].FaultIndex == fi {
			diagnosedExact++
		}
	}
	if testable == 0 {
		t.Fatal("no testable faults")
	}
	t.Logf("diagnosis: %d/%d faults uniquely ranked first", diagnosedExact, testable)
}

func TestDiagnoseNoisyObservation(t *testing.T) {
	// One flipped observation must still rank the true fault near the top
	// (distance 1).
	_, reps, pats, d := buildDictFixture(t)
	var fi int
	for i := range reps {
		if d.DetectionCount(i) >= 2 {
			fi = i
			break
		}
	}
	failing := make([]bool, len(pats))
	for pi := range pats {
		failing[pi] = d.Detects(fi, pi)
	}
	failing[0] = !failing[0] // tester noise
	cands, err := d.Diagnose(failing)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.FaultIndex == fi {
			if c.Distance != 1 {
				t.Errorf("noisy distance = %d, want 1", c.Distance)
			}
			return
		}
	}
	t.Fatal("true fault missing from candidates")
}

func TestDiagnoseShapeMismatch(t *testing.T) {
	_, _, _, d := buildDictFixture(t)
	if _, err := d.Diagnose([]bool{true}); err == nil {
		t.Error("length mismatch must error")
	}
}
