package atpg

import (
	"fmt"
	"math/bits"
	"sort"

	"superpose/internal/scan"
)

// Dictionary is a full-response fault dictionary: for every fault, the set
// of patterns that detect it. Fault dictionaries are the classic
// diagnosis structure — the paper's superposition idea traces back to
// Orailoglu's dictionary-based diagnosis work ([21], [22]) — and here they
// close the loop: once the certification flow flags a die, the dictionary
// localizes which logic the anomaly is consistent with.
type Dictionary struct {
	Faults   []Fault
	Patterns []*scan.Pattern
	// rows[fi] is a bitset over patterns (64 per word).
	rows [][]uint64
}

// BuildDictionary fault-simulates every (fault, pattern) combination.
func BuildDictionary(ch *scan.Chains, faults []Fault, patterns []*scan.Pattern) *Dictionary {
	d := &Dictionary{Faults: faults, Patterns: patterns}
	words := (len(patterns) + 63) / 64
	d.rows = make([][]uint64, len(faults))
	for i := range d.rows {
		d.rows[i] = make([]uint64, words)
	}
	fsim := NewFaultSimulator(ch)
	for start := 0; start < len(patterns); start += 64 {
		end := start + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		det := fsim.DetectBatch(patterns[start:end], faults)
		w := start / 64
		for fi, mask := range det {
			d.rows[fi][w] |= uint64(mask)
		}
	}
	return d
}

// Detects reports whether pattern pi detects fault fi.
func (d *Dictionary) Detects(fi, pi int) bool {
	return d.rows[fi][pi/64]&(1<<uint(pi%64)) != 0
}

// DetectionCount returns how many patterns detect fault fi.
func (d *Dictionary) DetectionCount(fi int) int {
	c := 0
	for _, w := range d.rows[fi] {
		c += bits.OnesCount64(w)
	}
	return c
}

// Candidate is one diagnosis hypothesis.
type Candidate struct {
	FaultIndex int
	Fault      Fault
	// Distance is the Hamming distance between the fault's dictionary
	// signature and the observed failing-pattern set (0 = exact match).
	Distance int
}

// Diagnose ranks the dictionary's faults by signature distance to an
// observed failing-pattern set (failing[pi] = pattern pi mismatched on
// the tester). Exact-match candidates come first; ties break on fault
// order for determinism.
func (d *Dictionary) Diagnose(failing []bool) ([]Candidate, error) {
	if len(failing) != len(d.Patterns) {
		return nil, fmt.Errorf("atpg: %d observations for %d patterns", len(failing), len(d.Patterns))
	}
	obs := make([]uint64, (len(failing)+63)/64)
	for pi, f := range failing {
		if f {
			obs[pi/64] |= 1 << uint(pi%64)
		}
	}
	out := make([]Candidate, len(d.Faults))
	for fi := range d.Faults {
		dist := 0
		for w := range obs {
			dist += bits.OnesCount64(d.rows[fi][w] ^ obs[w])
		}
		out[fi] = Candidate{FaultIndex: fi, Fault: d.Faults[fi], Distance: dist}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	return out, nil
}
