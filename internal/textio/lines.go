// Package textio provides the shared line reader for the streaming
// netlist parsers: bufio.Scanner semantics (lines without terminators,
// lone trailing '\r' dropped, a hard cap on line length) without
// Scanner's grow-by-copy token buffer — the fast path hands out slices
// of the bufio.Reader's own window, so a multi-gigabyte netlist streams
// through a fixed 64 KiB buffer.
package textio

import (
	"bufio"
	"errors"
	"io"
)

// ErrTooLong is returned when a single line exceeds the reader's limit,
// mirroring bufio.ErrTooLong for Scanner-based parsers.
var ErrTooLong = errors.New("textio: line too long")

// Lines yields the lines of an io.Reader one at a time.
type Lines struct {
	r     *bufio.Reader
	spill []byte // reused accumulator for lines longer than the window
	max   int
}

// NewLines returns a line reader over r that errors on lines longer
// than max bytes.
func NewLines(r io.Reader, max int) *Lines {
	return &Lines{r: bufio.NewReaderSize(r, 64*1024), max: max}
}

// Next returns the next line without its terminator ('\n' stripped, one
// trailing '\r' dropped — the bufio.ScanLines convention), io.EOF after
// the last line, or ErrTooLong. The returned slice is only valid until
// the following Next call.
func (l *Lines) Next() ([]byte, error) {
	chunk, err := l.r.ReadSlice('\n')
	if err == nil {
		return trimEOL(chunk), nil // whole line inside the window: no copy
	}
	l.spill = append(l.spill[:0], chunk...)
	for err == bufio.ErrBufferFull {
		if len(l.spill) > l.max {
			return nil, ErrTooLong
		}
		chunk, err = l.r.ReadSlice('\n')
		l.spill = append(l.spill, chunk...)
	}
	switch {
	case err == nil || (err == io.EOF && len(l.spill) > 0):
		if len(l.spill) > l.max {
			return nil, ErrTooLong
		}
		return trimEOL(l.spill), nil
	case err == io.EOF:
		return nil, io.EOF
	default:
		return nil, err
	}
}

func trimEOL(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line
}
