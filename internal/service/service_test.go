package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"superpose/internal/core"
)

func progressEvent(stage string, step, total int) core.Progress {
	return core.Progress{Stage: core.Stage(stage), Step: step, Total: total}
}

// newTestServer builds a started server whose jobs run hook instead of
// the real pipeline, wrapped in an httptest HTTP front end.
func newTestServer(t *testing.T, opts Options, hook func(ctx context.Context, j *Job) error) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.runHook = hook
	s.Start()
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, Status) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) (int, Status) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode status: %v", err)
		}
	}
	return resp.StatusCode, st
}

// waitState polls until the job reaches a terminal state.
func waitState(t *testing.T, ts *httptest.Server, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, st := getStatus(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d", id, code)
		}
		if st.State.Terminal() {
			if st.State != want {
				t.Fatalf("job %s finished %q (err %q), want %q", id, st.State, st.Error, want)
			}
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Status{}
}

const detectBody = `{"kind":"detect","case":"s35932-T200","scale":0.05}`

func TestSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Options{}, func(ctx context.Context, j *Job) error {
		j.PublishProgress(progressEvent("calibrate", 1, 1))
		return nil
	})
	resp, st := postJob(t, ts, detectBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if st.ID == "" || st.Kind != KindDetect {
		t.Fatalf("submit response %+v", st)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Errorf("Location = %q", loc)
	}
	final := waitState(t, ts, st.ID, StateDone)
	if final.Error != "" {
		t.Errorf("done job carries error %q", final.Error)
	}
}

func TestSubmitRejections(t *testing.T) {
	_, ts := newTestServer(t, Options{}, func(ctx context.Context, j *Job) error { return nil })
	for _, tc := range []struct {
		name, body string
	}{
		{"malformed json", `{"kind":`},
		{"unknown field", `{"kind":"detect","case":"s35932-T200","bogus":1}`},
		{"bad kind", `{"kind":"frobnicate","case":"s35932-T200"}`},
		{"no design", `{"kind":"detect"}`},
		{"both designs", `{"kind":"detect","case":"s35932-T200","bench":"INPUT(a)"}`},
		{"unknown case", `{"kind":"detect","case":"nope-T1"}`},
		{"bad scale", `{"kind":"detect","case":"s35932-T200","scale":7}`},
		{"infect with case", `{"kind":"detect","case":"s35932-T200","infect":2}`},
		{"bad tester", `{"kind":"detect","case":"s35932-T200","tester":"volcano"}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, _ := postJob(t, ts, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("HTTP %d, want 400", resp.StatusCode)
			}
		})
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, Options{}, func(ctx context.Context, j *Job) error { return nil })
	if code, _ := getStatus(t, ts, "job-999"); code != http.StatusNotFound {
		t.Errorf("GET missing job: HTTP %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE missing job: HTTP %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/job-999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("events of missing job: HTTP %d, want 404", resp.StatusCode)
	}
}

func TestQueueFull429(t *testing.T) {
	block := make(chan struct{})
	_, ts := newTestServer(t, Options{QueueSize: 2, Workers: 1}, func(ctx context.Context, j *Job) error {
		select {
		case <-block:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	// One job occupies the worker; two fill the queue. The exact moment
	// the worker picks up the first job races with the submissions, so
	// submit until the first rejection and verify it is a clean 429.
	var rejected *http.Response
	for i := 0; i < 5 && rejected == nil; i++ {
		resp, _ := postJob(t, ts, detectBody)
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected = resp
		} else if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
	}
	if rejected == nil {
		t.Fatal("queue of size 2 accepted 5 jobs with a blocked worker")
	}
	close(block)
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{}, 1)
	_, ts := newTestServer(t, Options{}, func(ctx context.Context, j *Job) error {
		started <- struct{}{}
		<-ctx.Done() // a well-behaved pipeline returns the context error
		return ctx.Err()
	})
	_, st := postJob(t, ts, detectBody)
	<-started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}
	final := waitState(t, ts, st.ID, StateCancelled)
	if !strings.Contains(final.Error, context.Canceled.Error()) {
		t.Errorf("cancelled job error = %q, want context.Canceled", final.Error)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, ts := newTestServer(t, Options{QueueSize: 4, Workers: 1}, func(ctx context.Context, j *Job) error {
		select {
		case <-block:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	_, first := postJob(t, ts, detectBody) // occupies the worker
	_, queued := postJob(t, ts, detectBody)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// A queued job cancels immediately — no worker involvement.
	if st := waitState(t, ts, queued.ID, StateCancelled); st.State != StateCancelled {
		t.Errorf("queued job state %q", st.State)
	}
	_ = first
}

func TestDrainCompletesBacklog(t *testing.T) {
	var ran int
	done := make(chan struct{}, 8)
	s, err := New(Options{QueueSize: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.runHook = func(ctx context.Context, j *Job) error {
		ran++
		done <- struct{}{}
		return nil
	}
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(JobSpec{Kind: KindDetect, Case: "s35932-T200"})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	s.Start() // start after submit so the backlog is genuinely queued
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, j := range jobs {
		if st := j.State(); st != StateDone {
			t.Errorf("job %s drained into state %q, want done", j.ID, st)
		}
	}
	if ran != 3 {
		t.Errorf("ran %d jobs, want 3", ran)
	}
	// Submissions after drain are refused.
	if _, err := s.Submit(JobSpec{Kind: KindDetect, Case: "s35932-T200"}); !errors.Is(err, ErrQueueClosed) {
		t.Errorf("post-drain submit error = %v, want ErrQueueClosed", err)
	}
}

func TestDrainDeadlineCancelsInFlight(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	s.runHook = func(ctx context.Context, j *Job) error {
		close(started)
		<-ctx.Done() // simulates a pipeline that only stops on cancellation
		return ctx.Err()
	}
	s.Start()
	j, err := s.Submit(JobSpec{Kind: KindDetect, Case: "s35932-T200"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain error = %v, want deadline exceeded", err)
	}
	if st := j.State(); st != StateCancelled {
		t.Errorf("in-flight job state after forced drain = %q, want cancelled", st)
	}
}

// TestEventsStream drives a scripted job and asserts the SSE wire
// format: a state snapshot, the published progress events in order, and
// a final result event.
func TestEventsStream(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestServer(t, Options{}, func(ctx context.Context, j *Job) error {
		<-release // hold until the subscriber is attached
		for i := 1; i <= 3; i++ {
			j.PublishProgress(progressEvent("adaptive", i, 3))
		}
		return nil
	})
	_, st := postJob(t, ts, detectBody)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	close(release)

	var events []Event
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events = append(events, ev)
		if ev.Type == "result" {
			break
		}
	}
	if len(events) < 2 {
		t.Fatalf("got %d events, want snapshot + progress + result", len(events))
	}
	last := events[len(events)-1]
	if last.Type != "result" || last.State != StateDone {
		t.Errorf("final event %+v, want done result", last)
	}
	var steps []int
	for _, ev := range events {
		if ev.Type == "progress" && ev.Progress != nil {
			steps = append(steps, ev.Progress.Step)
		}
	}
	for i := 1; i < len(steps); i++ {
		if steps[i] < steps[i-1] {
			t.Errorf("progress steps out of order: %v", steps)
		}
	}
	if len(steps) == 0 {
		t.Error("no progress events observed on the stream")
	}
}

func TestStatsAndHealth(t *testing.T) {
	s, ts := newTestServer(t, Options{}, func(ctx context.Context, j *Job) error { return nil })
	_, st := postJob(t, ts, detectBody)
	waitState(t, ts, st.ID, StateDone)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.JobsSubmitted != 1 || stats.JobsCompleted != 1 {
		t.Errorf("stats %+v, want 1 submitted / 1 completed", stats)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"status"`)) {
		t.Errorf("healthz: HTTP %d %s", resp.StatusCode, body)
	}
	_ = s
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(3)
	for i := 0; i < 3; i++ {
		if err := q.TryEnqueue(&Job{ID: fmt.Sprintf("job-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.TryEnqueue(&Job{ID: "job-overflow"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow error = %v", err)
	}
	if q.Depth() != 3 {
		t.Errorf("depth %d", q.Depth())
	}
	q.Close()
	if err := q.TryEnqueue(&Job{}); !errors.Is(err, ErrQueueClosed) {
		t.Errorf("closed error = %v", err)
	}
	var order []string
	for j := range q.Jobs() {
		order = append(order, j.ID)
	}
	if fmt.Sprint(order) != "[job-0 job-1 job-2]" {
		t.Errorf("drain order %v", order)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	builds := 0
	build := func() (any, error) { builds++; return 42, nil }
	if _, hit, _ := c.do("k", build); hit {
		t.Error("first lookup reported a hit")
	}
	if v, hit, _ := c.do("k", build); !hit || v.(int) != 42 {
		t.Errorf("second lookup: hit=%v v=%v", hit, v)
	}
	if builds != 1 {
		t.Errorf("built %d times", builds)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits %d misses %d", c.Hits(), c.Misses())
	}
	// Failed builds are not cached.
	boom := errors.New("boom")
	if _, _, err := c.do("bad", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, hit, err := c.do("bad", func() (any, error) { return "ok", nil }); err != nil || hit {
		t.Errorf("retry after failure: hit=%v err=%v", hit, err)
	}
}
