package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"superpose/internal/core"
	"superpose/internal/tester"
	"superpose/internal/trust"
)

// JobKind selects the pipeline a job runs.
type JobKind string

const (
	// KindDetect certifies a single die.
	KindDetect JobKind = "detect"
	// KindLot certifies a whole manufacturing lot.
	KindLot JobKind = "lot"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	// StateDeadline is a job killed by its own TimeoutSec budget —
	// distinct from cancelled (a client or drain decision) so callers can
	// tell "I asked for too little time" from "someone aborted me".
	StateDeadline State = "deadline"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StateDeadline
}

// JobSpec is the request body of POST /v1/jobs: which design to certify
// and under what flow configuration. Exactly one of Case (a built-in
// benchmark, e.g. "s35932-T200") or Bench (an inline ISCAS .bench
// netlist) selects the design.
type JobSpec struct {
	Kind JobKind `json:"kind"`

	// Design selection.
	Case   string `json:"case,omitempty"`
	Bench  string `json:"bench,omitempty"`
	Infect int    `json:"infect,omitempty"` // with Bench: auto-place a Trojan with this many taps
	Clean  bool   `json:"clean,omitempty"`  // manufacture a Trojan-free die

	// Flow configuration (zero means the service default).
	Scale      float64 `json:"scale,omitempty"`       // benchmark scale (default 0.05)
	Varsigma   float64 `json:"varsigma,omitempty"`    // intra-die 3σ and verdict bound (default 0.15)
	Chains     int     `json:"chains,omitempty"`      // scan chains (default 4)
	Seeds      int     `json:"seeds,omitempty"`       // adaptive runs from the top seeds (default 3)
	ChipSeed   uint64  `json:"chip_seed,omitempty"`   // die selection seed (default 1)
	Dies       int     `json:"dies,omitempty"`        // lot size, kind=lot only (default 5)
	Tester     string  `json:"tester,omitempty"`      // tester fault preset (default clean)
	TesterSeed uint64  `json:"tester_seed,omitempty"` // fault realization seed (default 1)
	Workers    int     `json:"workers,omitempty"`     // per-job fan-out (0 = one per CPU)
	// Channel selects the measurement channel: "power" (default),
	// "delay", or "fused". Delay-bearing channels manufacture a delay
	// die alongside each power die; "fused" additionally trains a
	// fusion calibration on a clean control lot of the same design
	// (cached — repeat fused submissions reuse it).
	Channel string `json:"channel,omitempty"`

	// TimeoutSec, when positive, caps the job's total run time (across
	// retries). A job that exceeds it finishes in state "deadline".
	TimeoutSec float64 `json:"timeout_sec,omitempty"`

	// Tenant attributes the job to a client for quota accounting and
	// the per-tenant queue depths in /v1/stats (default "default").
	Tenant string `json:"tenant,omitempty"`

	// SubmitToken, when set, makes the submission idempotent: a second
	// submit carrying the same token returns the job the first one
	// created instead of enqueueing a duplicate. The cluster coordinator
	// stamps dispatches with one so a re-sent RPC (after a crash or an
	// ambiguous timeout) cannot double-run a job. Tokens do not affect
	// the artifact-cache identity.
	SubmitToken string `json:"submit_token,omitempty"`
}

// withDefaults fills the service defaults into zero fields.
func (s JobSpec) withDefaults() JobSpec {
	if s.Scale == 0 {
		s.Scale = 0.05
	}
	if s.Varsigma == 0 {
		s.Varsigma = 0.15
	}
	if s.Chains == 0 {
		s.Chains = 4
	}
	if s.Seeds == 0 {
		s.Seeds = 3
	}
	if s.ChipSeed == 0 {
		s.ChipSeed = 1
	}
	if s.Dies == 0 {
		s.Dies = 5
	}
	if s.Tester == "" {
		s.Tester = "clean"
	}
	if s.TesterSeed == 0 {
		s.TesterSeed = 1
	}
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.Channel == "" {
		s.Channel = string(core.ChannelPower)
	}
	return s
}

// ContentKey is the content-addressed identity of the job's design —
// the artifact-cache instance key. The cluster coordinator routes by
// it so jobs sharing a design land on the worker already holding the
// cached netlist and ATPG artifacts.
func (s JobSpec) ContentKey() string {
	return instanceKey(s.withDefaults())
}

// Validate rejects specs the workers could not execute. It runs at
// submission time so the client gets a 400 rather than a failed job.
func (s JobSpec) Validate() error {
	switch s.Kind {
	case KindDetect, KindLot:
	default:
		return fmt.Errorf("unknown kind %q (want %q or %q)", s.Kind, KindDetect, KindLot)
	}
	if (s.Case == "") == (s.Bench == "") {
		return fmt.Errorf("exactly one of case or bench is required")
	}
	if s.Case != "" {
		found := false
		for _, n := range trust.Names() {
			if n == s.Case {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown case %q (available: %v)", s.Case, trust.Names())
		}
		if s.Infect != 0 {
			return fmt.Errorf("infect applies to inline bench jobs only")
		}
	}
	if s.Infect < 0 {
		return fmt.Errorf("infect must be >= 0, got %d", s.Infect)
	}
	if s.Scale < 0 || s.Scale > 1 {
		return fmt.Errorf("scale must be in (0, 1], got %g", s.Scale)
	}
	if s.Varsigma < 0 || s.Varsigma > 1 {
		return fmt.Errorf("varsigma must be in (0, 1], got %g", s.Varsigma)
	}
	if s.Chains < 0 || s.Seeds < 0 || s.Dies < 0 || s.Workers < 0 {
		return fmt.Errorf("chains, seeds, dies and workers must be >= 0")
	}
	if s.TimeoutSec < 0 {
		return fmt.Errorf("timeout_sec must be >= 0, got %g", s.TimeoutSec)
	}
	if len(s.Tenant) > 64 {
		return fmt.Errorf("tenant name exceeds 64 bytes")
	}
	if len(s.SubmitToken) > 128 {
		return fmt.Errorf("submit_token exceeds 128 bytes")
	}
	if s.Tester != "" {
		if _, err := tester.Preset(s.Tester, 1); err != nil {
			return err
		}
	}
	if _, err := core.ParseChannel(s.Channel); err != nil {
		return err
	}
	return nil
}

// Event is one SSE message on a job's event stream. Seq is the event's
// position in the job's stream, carried as the SSE id: field, so a
// client that reconnects with Last-Event-ID resumes from where its
// connection dropped (as far as the retained buffer reaches).
type Event struct {
	Seq      uint64         `json:"seq"`
	Type     string         `json:"type"` // "state", "progress", "retry" or "result"
	State    State          `json:"state"`
	Attempt  int            `json:"attempt,omitempty"` // "retry" events: the attempt that just failed
	Progress *core.Progress `json:"progress,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// retainedEvents bounds the per-job replay buffer behind Last-Event-ID
// resumption. A reconnecting client that fell further behind than this
// simply misses the oldest events — the terminal result is still always
// delivered.
const retainedEvents = 512

// Job is one submitted certification run.
type Job struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"spec"`

	// cancel aborts the job's run context; set at submission so queued
	// jobs are cancellable before a worker picks them up.
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     State
	progress  *core.Progress // latest progress event
	report    *core.Report
	lotReport *core.LotReport
	errMsg    string
	cacheHit  bool // any artifact lookup was served from the cache
	attempts  int  // execution attempts so far (survives recovery)
	created   time.Time
	finished  time.Time
	seq       uint64  // last assigned event sequence number
	events    []Event // retained tail of the event stream (replay buffer)
	subs      map[chan Event]struct{}
	done      chan struct{} // closed on reaching a terminal state
}

func newJob(id string, spec JobSpec, ctx context.Context, cancel context.CancelFunc) *Job {
	return &Job{
		ID:      id,
		Spec:    spec,
		ctx:     ctx,
		cancel:  cancel,
		state:   StateQueued,
		created: time.Now(),
		subs:    make(map[chan Event]struct{}),
		done:    make(chan struct{}),
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Cancel requests cancellation. A queued job transitions to cancelled
// immediately; a running job's context is cancelled and the worker
// finishes the transition when the flow unwinds.
func (j *Job) Cancel() {
	j.cancel()
	j.mu.Lock()
	if j.state == StateQueued {
		j.finishLocked(StateCancelled, context.Canceled)
	}
	j.mu.Unlock()
}

// start transitions queued → running; it reports false when the job was
// cancelled while queued (the worker then skips it).
func (j *Job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.broadcastLocked(Event{Type: "state", State: StateRunning})
	return true
}

// finish transitions to a terminal state and wakes all waiters.
func (j *Job) finish(state State, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finishLocked(state, err)
}

func (j *Job) finishLocked(state State, err error) {
	if j.state.Terminal() {
		return
	}
	j.state = state
	if err != nil {
		j.errMsg = err.Error()
	}
	j.finished = time.Now()
	j.broadcastLocked(Event{Type: "result", State: state, Error: j.errMsg})
	close(j.done)
}

// PublishProgress records and broadcasts a progress event. Lot jobs
// emit from concurrent per-die workers, and the cluster coordinator
// forwards a remote worker's progress through it, so this must be
// (and is) safe for concurrent use.
func (j *Job) PublishProgress(p core.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	cp := p
	j.progress = &cp
	j.broadcastLocked(Event{Type: "progress", State: j.state, Progress: &cp})
}

// subscribe registers an SSE listener. replay is what the handler must
// write before streaming live events: with resume=false, a snapshot
// event carrying the job's current state (so late subscribers are not
// blind until the next transition); with resume=true, every retained
// event after afterSeq — the Last-Event-ID contract. A slow listener
// loses intermediate events rather than blocking the flow — the final
// result is never lost because the SSE handler also watches Done.
func (j *Job) subscribe(afterSeq uint64, resume bool) (replay []Event, ch chan Event) {
	ch = make(chan Event, 64)
	j.mu.Lock()
	defer j.mu.Unlock()
	if resume {
		for _, ev := range j.events {
			if ev.Seq > afterSeq {
				replay = append(replay, ev)
			}
		}
	} else {
		replay = []Event{{Seq: j.seq, Type: "state", State: j.state, Progress: j.progress, Error: j.errMsg}}
	}
	if j.state.Terminal() {
		// Terminal already: make sure the result event is part of the
		// replay, since Done is closed and the handler drains then exits.
		// (A resumed subscriber may already have it in replay — only the
		// snapshot path needs the addition.)
		if !resume {
			replay = append(replay, Event{Seq: j.seq, Type: "result", State: j.state, Error: j.errMsg})
		}
		return replay, ch
	}
	j.subs[ch] = struct{}{}
	return replay, ch
}

func (j *Job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.subs, ch)
}

// broadcastLocked assigns the event its sequence number, retains it for
// Last-Event-ID replay, and fans it out to live subscribers.
func (j *Job) broadcastLocked(ev Event) {
	j.seq++
	ev.Seq = j.seq
	if len(j.events) >= retainedEvents {
		j.events = j.events[1:]
	}
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than stall the pipeline
		}
	}
}

// nextAttempt increments and returns the job's attempt counter — called
// by the worker at the top of each execution attempt.
func (j *Job) nextAttempt() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.attempts++
	return j.attempts
}

// lastSeq returns the sequence number of the newest broadcast event.
func (j *Job) lastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// finishedAt returns when the job reached a terminal state; ok is
// false while it has not.
func (j *Job) finishedAt() (at time.Time, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return time.Time{}, false
	}
	return j.finished, true
}

// Attempts returns how many execution attempts the job has consumed.
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// publishRetry broadcasts a "retry" event: attempt just failed with err
// and the job is about to back off and run again.
func (j *Job) publishRetry(attempt int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.broadcastLocked(Event{Type: "retry", State: j.state, Attempt: attempt, Error: err.Error()})
}

// Status is the wire view of a job (GET /v1/jobs/{id}).
type Status struct {
	ID        string          `json:"id"`
	Kind      JobKind         `json:"kind"`
	State     State           `json:"state"`
	Attempts  int             `json:"attempts,omitempty"`
	Progress  *core.Progress  `json:"progress,omitempty"`
	Error     string          `json:"error,omitempty"`
	CacheHit  bool            `json:"cache_hit"`
	Report    *core.Report    `json:"report,omitempty"`
	LotReport *core.LotReport `json:"lot_report,omitempty"`
}

// Status snapshots the job for the API.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:        j.ID,
		Kind:      j.Spec.Kind,
		State:     j.state,
		Attempts:  j.attempts,
		Progress:  j.progress,
		Error:     j.errMsg,
		CacheHit:  j.cacheHit,
		Report:    j.report,
		LotReport: j.lotReport,
	}
}

// restoredJob reconstructs a job from journal replay. Terminal jobs come
// back exactly as they finished (reports included); non-terminal jobs
// come back queued, with their attempt count preserved so recovery
// cannot retry past the configured budget.
func restoredJob(id string, spec JobSpec, ctx context.Context, cancel context.CancelFunc, st State, errMsg string, attempts int, cacheHit bool, rep *core.Report, lr *core.LotReport) *Job {
	j := newJob(id, spec, ctx, cancel)
	j.attempts = attempts
	j.cacheHit = cacheHit
	// Seq floor: restart the event stream well above anything the
	// previous incarnation can have issued, so a client reconnecting
	// with Last-Event-ID to a restarted (or failed-over) server sees
	// strictly increasing ids and never confuses old events for new.
	// Each incarnation consumes at least one attempt before the next
	// crash, and no attempt emits anywhere near 2^20 events, so the
	// floor is monotone across incarnations.
	j.seq = uint64(attempts) << 20
	if st.Terminal() {
		j.state = st
		j.errMsg = errMsg
		j.report = rep
		j.lotReport = lr
		j.finished = time.Now()
		close(j.done)
	}
	return j
}

// SetResult attaches the job's finished artifact — called by the
// built-in executor, and by a cluster coordinator adopting a report
// produced on a remote worker.
func (j *Job) SetResult(rep *core.Report, lr *core.LotReport) {
	j.mu.Lock()
	j.report = rep
	j.lotReport = lr
	j.mu.Unlock()
}

// SetCacheHit records that some artifact lookup for the job was served
// from a cache (local or a remote worker's).
func (j *Job) SetCacheHit(hit bool) {
	j.mu.Lock()
	j.cacheHit = j.cacheHit || hit
	j.mu.Unlock()
}
