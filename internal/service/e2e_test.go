package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"superpose/internal/atpg"
	"superpose/internal/bench"
	"superpose/internal/core"
	"superpose/internal/power"
	"superpose/internal/scan"
	"superpose/internal/trust"
)

// e2eBench serializes a generated circuit to .bench text — the inline
// design submitted over the wire AND parsed locally for the library-API
// comparison runs. Sized so one detect takes a few hundred ms: long
// enough that SSE subscribers attach before the flow ends and that a
// cancellation lands mid-run, short enough for the test budget.
func e2eBench(t *testing.T) string {
	t.Helper()
	n, err := trust.Generate(trust.Params{Name: "e2e", PIs: 8, POs: 8, FFs: 96, Comb: 2400, Levels: 7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bench.Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// e2eConfig reproduces the service's flow configuration for a library
// run: same knobs, same shared-seed resolution. A service job and this
// config must produce bit-identical reports.
func e2eConfig(t *testing.T, benchSrc string, workers int) (*core.Config, *power.Library, *core.Device) {
	t.Helper()
	host, err := bench.Parse(strings.NewReader(benchSrc), "user")
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	cfg := core.Config{
		NumChains:   4,
		MaxSeeds:    3,
		Varsigma:    0.15,
		ATPG:        atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120, Workers: workers},
		Acquisition: core.NaiveAcquisition(),
	}
	cfg, err = core.WithSharedSeeds(host, cfg)
	if err != nil {
		t.Fatal(err)
	}
	chip := power.Manufacture(host, lib, power.ThreeSigmaIntra(0.15), 1)
	dev := core.NewDevice(chip, cfg.NumChains, scan.LOS)
	return &cfg, lib, dev
}

func submitSpec(t *testing.T, ts *httptest.Server, spec JobSpec) Status {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, st := postJob(t, ts, string(body))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	return st
}

// collectSSE reads the job's event stream until the result event (or
// the stream ends) and returns everything observed.
func collectSSE(t *testing.T, ts *httptest.Server, id string, out *[]Event, mu *sync.Mutex) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Errorf("events: %v", err)
		return
	}
	defer resp.Body.Close()
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Errorf("bad SSE payload %q: %v", line, err)
			return
		}
		mu.Lock()
		*out = append(*out, ev)
		mu.Unlock()
		if ev.Type == "result" {
			return
		}
	}
}

// TestE2EDetect drives the whole stack over the wire: submit a detect
// job, stream its SSE progress, and verify the delivered report is
// bit-identical to a direct library-API run with shared seeds — then
// submit the identical spec again and verify the artifact cache served
// it (no second netlist build or ATPG run).
func TestE2EDetect(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline over HTTP")
	}
	benchSrc := e2eBench(t)
	s, ts := newTestServer(t, Options{Workers: 1}, nil) // nil hook: real pipeline

	spec := JobSpec{Kind: KindDetect, Bench: benchSrc, Clean: true, Workers: 2}

	// Submit twice back to back. With one worker, the second job queues
	// behind the first, so its SSE subscriber is guaranteed to attach
	// before the job starts — every progress event of the repeat run is
	// observed, with no startup race.
	st1 := submitSpec(t, ts, spec)
	st2 := submitSpec(t, ts, spec)
	var (
		events []Event
		evMu   sync.Mutex
		evDone = make(chan struct{})
	)
	go func() {
		defer close(evDone)
		collectSSE(t, ts, st2.ID, &events, &evMu)
	}()

	final1 := waitState(t, ts, st1.ID, StateDone)
	if final1.Report == nil {
		t.Fatal("done detect job carries no report")
	}
	if final1.CacheHit {
		t.Error("first submission reported a cache hit")
	}

	final2 := waitState(t, ts, st2.ID, StateDone)
	<-evDone

	// SSE progress: the repeat run's per-phase events, in stage order.
	evMu.Lock()
	var progress []Event
	for _, ev := range events {
		if ev.Type == "progress" && ev.Progress != nil {
			progress = append(progress, ev)
		}
	}
	evMu.Unlock()
	if len(progress) == 0 {
		t.Error("no SSE progress events observed")
	}
	valid := map[core.Stage]bool{core.StageSeeds: true, core.StageCalibrate: true,
		core.StageAdaptive: true, core.StagePairs: true, core.StageConfirm: true, core.StageDie: true}
	seen := map[core.Stage]bool{}
	for _, ev := range progress {
		if !valid[ev.Progress.Stage] {
			t.Errorf("unknown progress stage %q", ev.Progress.Stage)
		}
		seen[ev.Progress.Stage] = true
	}
	for _, must := range []core.Stage{core.StageCalibrate, core.StageAdaptive} {
		if !seen[must] {
			t.Errorf("stage %q never observed on the SSE stream", must)
		}
	}

	// Bit-identity against the library API.
	cfg, lib, dev := e2eConfig(t, benchSrc, 2)
	host := dev.PhysicalNetlist()
	want, err := core.Detect(host, lib, dev, *cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(final1.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("service report differs from library run:\nservice: %s\nlibrary: %s", gotJSON, wantJSON)
	}

	// The repeat submission was served from the cache: only the first job
	// built artifacts (one instance miss + one seed-set miss); the second
	// job's two lookups both hit, and it reports the hit.
	if !final2.CacheHit {
		t.Error("repeat submission did not report a cache hit")
	}
	if hits := s.Cache().Hits(); hits < 2 {
		t.Errorf("cache hits %d after repeat submission, want >= 2 (instance + seeds)", hits)
	}
	if misses := s.Cache().Misses(); misses != 2 {
		t.Errorf("misses %d after both jobs, want exactly 2 — the repeat submission rebuilt artifacts", misses)
	}
	got2, err := json.Marshal(final2.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, gotJSON) {
		t.Error("repeat submission's report differs from the first")
	}

	// The counter is also on the wire.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.CacheHits < 2 {
		t.Errorf("stats.CacheHits = %d, want >= 2", stats.CacheHits)
	}
}

// TestE2ELot submits a lot job and verifies per-die SSE progress plus
// bit-identity with the library lot API under shared seeds.
func TestE2ELot(t *testing.T) {
	if testing.Short() {
		t.Skip("full multi-die pipeline over HTTP")
	}
	benchSrc := e2eBench(t)
	_, ts := newTestServer(t, Options{}, nil)

	spec := JobSpec{Kind: KindLot, Bench: benchSrc, Clean: true, Dies: 2, Workers: 2}
	st := submitSpec(t, ts, spec)

	var (
		events []Event
		evMu   sync.Mutex
		evDone = make(chan struct{})
	)
	go func() {
		defer close(evDone)
		collectSSE(t, ts, st.ID, &events, &evMu)
	}()

	final := waitState(t, ts, st.ID, StateDone)
	<-evDone
	if final.LotReport == nil {
		t.Fatal("done lot job carries no lot report")
	}
	if len(final.LotReport.Dies) != 2 {
		t.Fatalf("lot report has %d dies, want 2", len(final.LotReport.Dies))
	}

	evMu.Lock()
	dieEvents := 0
	for _, ev := range events {
		if ev.Type == "progress" && ev.Progress != nil && ev.Progress.Stage == core.StageDie {
			dieEvents++
			if ev.Progress.Total != 2 {
				t.Errorf("die progress total %d, want 2", ev.Progress.Total)
			}
		}
	}
	evMu.Unlock()
	if dieEvents == 0 {
		t.Error("no per-die SSE progress observed")
	}

	// Library comparison.
	cfg, lib, dev := e2eConfig(t, benchSrc, 2)
	host := dev.PhysicalNetlist()
	want, err := core.CertifyLot(host, lib, host, *cfg, core.LotOptions{
		Dies:        2,
		Variation:   power.ThreeSigmaIntra(0.15),
		Seed:        1,
		Acquisition: cfg.Acquisition,
		Workers:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(final.LotReport)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("service lot report differs from library run:\nservice: %s\nlibrary: %s", gotJSON, wantJSON)
	}
}

// TestE2ECancelInFlight cancels a running lot mid-certification and
// requires the prompt context.Canceled outcome — not a full run to
// completion.
func TestE2ECancelInFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline over HTTP")
	}
	benchSrc := e2eBench(t)
	_, ts := newTestServer(t, Options{}, nil)

	// A fat lot: long enough that cancellation lands mid-flow.
	spec := JobSpec{Kind: KindLot, Bench: benchSrc, Clean: true, Dies: 16, Workers: 1}
	st := submitSpec(t, ts, spec)

	// Wait for the job to actually start.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		_, cur := getStatus(t, ts, st.ID)
		if cur.State == StateRunning {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished (%s) before it could be cancelled — fixture too small", cur.State)
		}
		time.Sleep(2 * time.Millisecond)
	}

	start := time.Now()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	final := waitState(t, ts, st.ID, StateCancelled)
	elapsed := time.Since(start)
	if !strings.Contains(final.Error, context.Canceled.Error()) {
		t.Errorf("cancelled job error = %q, want context.Canceled", final.Error)
	}
	// "Promptly": well under the time the remaining dies would need.
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	if final.LotReport != nil || final.Report != nil {
		t.Error("cancelled job must not deliver a report")
	}
}

// TestE2EFusedDetect drives a fused-channel job end to end: the worker
// trains the fusion calibration on a clean control lot (cached), the
// report carries the delay and fused verdicts, and a clean die is not
// flagged at the learned operating point. The repeat submission must
// reuse the cached calibration.
func TestE2EFusedDetect(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline over HTTP")
	}
	_, ts := newTestServer(t, Options{Workers: 1}, nil)

	// ς=0.08: at the tiny test scale the Trojan's relative signal is
	// modest, so the test runs at a variation where the learned margin
	// (2× the worst clean control) clearly separates.
	spec := JobSpec{Kind: KindDetect, Case: "s35932-T200", Scale: 0.04, Varsigma: 0.08, Channel: "fused", Workers: 2}
	st1 := submitSpec(t, ts, spec)
	final1 := waitState(t, ts, st1.ID, StateDone)
	if final1.Report == nil {
		t.Fatal("done fused job carries no report")
	}
	rep := final1.Report
	if rep.Channel != core.ChannelFused {
		t.Errorf("report channel %q, want fused", rep.Channel)
	}
	if rep.Delay == nil {
		t.Fatal("fused report carries no delay result")
	}
	if !rep.FusedDetected {
		t.Errorf("fused verdict missed the infected die: fused score %v", rep.FusedScore)
	}

	// Repeat submission: the calibration (and everything else) is cached.
	st2 := submitSpec(t, ts, spec)
	final2 := waitState(t, ts, st2.ID, StateDone)
	if !final2.CacheHit {
		t.Error("repeat fused submission trained a fresh calibration")
	}
	j1, err := json.Marshal(final1.Report)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(final2.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("repeat fused run differs:\nfirst:  %s\nsecond: %s", j1, j2)
	}

	// A clean die of the same design must pass at the learned point.
	clean := spec
	clean.Clean = true
	st3 := submitSpec(t, ts, clean)
	final3 := waitState(t, ts, st3.ID, StateDone)
	if final3.Report == nil {
		t.Fatal("done clean fused job carries no report")
	}
	if final3.Report.FusedDetected {
		t.Errorf("clean die flagged at the learned operating point: fused score %v", final3.Report.FusedScore)
	}
}
