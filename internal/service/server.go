// Package service is the certification daemon's engine: a bounded job
// queue, a worker pool driving the core detection flow under
// cancellable contexts, a content-hash artifact cache that lets repeat
// submissions skip netlist construction and ATPG, and the HTTP/JSON API
// (plus SSE progress streams) that cmd/superposed serves.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
)

// Options configures a Server.
type Options struct {
	// QueueSize bounds the pending-job backlog (default 16); submissions
	// beyond it are rejected with 429.
	QueueSize int
	// Workers is the number of jobs run concurrently (default 1: the
	// per-job fan-out already parallelizes across dies and faults, so
	// more job workers mainly help mixed small/large workloads).
	Workers int
}

// counters is the service's expvar-style instrumentation. It is a plain
// atomic struct rather than the expvar registry because the registry is
// process-global: registering twice panics, which would make every
// multi-server test (and any embedding application) fragile.
type counters struct {
	jobsSubmitted atomic.Uint64
	jobsCompleted atomic.Uint64
	jobsFailed    atomic.Uint64
	jobsCancelled atomic.Uint64
	jobsRejected  atomic.Uint64
	queueDepth    atomic.Int64
}

// Stats is the wire view of GET /v1/stats.
type Stats struct {
	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCancelled uint64 `json:"jobs_cancelled"`
	JobsRejected  uint64 `json:"jobs_rejected"`
	QueueDepth    int64  `json:"queue_depth"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	CacheEntries  int    `json:"cache_entries"`
}

// Server owns the queue, cache, worker pool and job registry, and
// implements http.Handler with the /v1 API.
type Server struct {
	opts     Options
	mux      *http.ServeMux
	queue    *Queue
	cache    *Cache
	counters counters

	baseCtx    context.Context
	cancelBase context.CancelFunc
	wg         sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	nextID uint64

	// runHook, when non-nil, replaces execute — the deterministic test
	// seam for queue/cancellation/drain behavior without real flow runs.
	runHook func(ctx context.Context, j *Job) error
}

// New assembles a server; call Start to launch the worker pool.
func New(opts Options) *Server {
	if opts.QueueSize <= 0 {
		opts.QueueSize = 16
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		mux:        http.NewServeMux(),
		queue:      NewQueue(opts.QueueSize),
		cache:      NewCache(),
		baseCtx:    ctx,
		cancelBase: cancel,
		jobs:       make(map[string]*Job),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// Start launches the worker pool.
func (s *Server) Start() {
	s.wg.Add(s.opts.Workers)
	for i := 0; i < s.opts.Workers; i++ {
		go s.workerLoop()
	}
}

// Drain shuts the service down gracefully: new submissions are rejected
// immediately, queued and running jobs are given until ctx expires to
// finish, then every remaining job's context is cancelled and Drain
// waits for the workers to unwind. The returned error is ctx's when the
// deadline forced cancellation, nil on a clean drain.
func (s *Server) Drain(ctx context.Context) error {
	s.queue.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancelBase()
		return nil
	case <-ctx.Done():
		// Deadline hit: abort every in-flight job and wait for the
		// workers to observe the cancellation.
		s.cancelBase()
		<-done
		return ctx.Err()
	}
}

// Cache exposes the artifact cache (for stats and tests).
func (s *Server) Cache() *Cache { return s.cache }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Job looks up a submitted job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Submit validates, registers and enqueues a job spec. It is the
// programmatic path behind POST /v1/jobs.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", errBadSpec, err)
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	j := newJob(id, spec, ctx, cancel)
	s.jobs[id] = j
	s.mu.Unlock()

	if err := s.queue.TryEnqueue(j); err != nil {
		cancel()
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		s.counters.jobsRejected.Add(1)
		return nil, err
	}
	s.counters.jobsSubmitted.Add(1)
	s.counters.queueDepth.Store(int64(s.queue.Depth()))
	return j, nil
}

var errBadSpec = fmt.Errorf("service: invalid job spec")

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("malformed job spec: %v", err))
		return
	}
	j, err := s.Submit(spec)
	switch {
	case err == nil:
	case errors.Is(err, errBadSpec):
		httpError(w, http.StatusBadRequest, err.Error())
		return
	case errors.Is(err, ErrQueueFull):
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrQueueClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sub := j.subscribe()
	defer j.unsubscribe(sub)
	writeEvents := func() bool {
		for {
			select {
			case ev := <-sub:
				if err := writeSSE(w, ev); err != nil {
					return false
				}
			default:
				flusher.Flush()
				return true
			}
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			// Drain whatever is buffered, then send the final snapshot —
			// even a subscriber that lost intermediate events always
			// observes the terminal state.
			writeEvents()
			st := j.Status()
			_ = writeSSE(w, Event{Type: "result", State: st.State, Error: st.Error})
			flusher.Flush()
			return
		case ev := <-sub:
			if err := writeSSE(w, ev); err != nil {
				return
			}
			if !writeEvents() {
				return
			}
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Stats{
		JobsSubmitted: s.counters.jobsSubmitted.Load(),
		JobsCompleted: s.counters.jobsCompleted.Load(),
		JobsFailed:    s.counters.jobsFailed.Load(),
		JobsCancelled: s.counters.jobsCancelled.Load(),
		JobsRejected:  s.counters.jobsRejected.Load(),
		QueueDepth:    int64(s.queue.Depth()),
		CacheHits:     s.cache.Hits(),
		CacheMisses:   s.cache.Misses(),
		CacheEntries:  s.cache.Len(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"queue_depth": s.queue.Depth(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeSSE(w http.ResponseWriter, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	return err
}
