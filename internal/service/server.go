// Package service is the certification daemon's engine: a bounded job
// queue, a worker pool driving the core detection flow under
// cancellable contexts, a content-hash artifact cache that lets repeat
// submissions skip netlist construction and ATPG, and the HTTP/JSON API
// (plus SSE progress streams) that cmd/superposed serves.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"superpose/internal/journal"
	"superpose/internal/retry"
)

// Options configures a Server.
type Options struct {
	// QueueSize bounds the pending-job backlog (default 16); submissions
	// beyond it are rejected with 429.
	QueueSize int
	// Workers is the number of jobs run concurrently (default 1: the
	// per-job fan-out already parallelizes across dies and faults, so
	// more job workers mainly help mixed small/large workloads).
	Workers int

	// DataDir, when non-empty, enables the crash-safe job journal under
	// DataDir/journal: every job state transition is logged, and a
	// restarted server replays the log — finished jobs come back with
	// their reports, unfinished ones go back into the queue.
	DataDir string
	// NoSync skips the journal's per-append fsync (tests; see journal.Options).
	NoSync bool

	// MaxAttempts caps execution attempts per job, counting the first
	// (default 3). Transient failures — unstable acquisition, injected
	// faults, recovered panics — are retried with backoff up to this cap.
	MaxAttempts int
	// RetryBase and RetryMax bound the decorrelated-jitter backoff
	// between attempts (defaults 50ms and 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetryBudget is the server-wide retry token bucket capacity (default
	// 16): when failures outpace successes the bucket empties and retries
	// are denied, so an outage is not amplified by retry traffic.
	RetryBudget float64

	// BreakerThreshold and BreakerCooldown configure the per-tester-
	// profile circuit breakers (defaults 5 consecutive failures, 30s
	// cooldown). A tripped profile sheds submissions with 503 +
	// Retry-After until a half-open probe succeeds.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Heartbeat is the SSE keep-alive comment interval (default 15s).
	Heartbeat time.Duration

	// Retain, when positive, bounds how long terminal jobs stay in the
	// registry: a sweeper evicts jobs (and their submit-token fences)
	// that finished longer than Retain ago, so a long-running server's
	// memory does not grow with lifetime job throughput. Zero keeps
	// everything forever (the default — correct for short-lived and
	// test servers). Because eviction drops the token fence, Retain
	// must sit far above any coordinator's redispatch/reclaim horizon.
	Retain time.Duration

	// Runner, when non-nil, replaces the built-in executor for every
	// job — the cluster coordinator injects its dispatch-to-worker path
	// here. The per-job retry/backoff/classification loop, journaling
	// and breakers still apply around it.
	Runner func(ctx context.Context, j *Job) error

	// Admit, when non-nil, is consulted after validation and before a
	// spec reaches the breaker and the queue — the hook point for
	// per-tenant quotas. A returned *ThrottleError maps to HTTP 429
	// with its jittered Retry-After hint; any other error aborts the
	// submission as a 500.
	Admit func(spec JobSpec) error

	// ExtraStats, when non-nil, decorates the /v1/stats payload before
	// it is written — the cluster layer adds lease/handoff/steal
	// counters here.
	ExtraStats func(*Stats)

	// ExtraReady, when non-nil, contributes additional not-ready
	// reasons to /healthz/ready — e.g. "no live workers" on a cluster
	// coordinator.
	ExtraReady func() []string

	// JournalTap, when non-nil, observes every journal record: once per
	// replayed record during New (in replay order, before the server
	// serves) and once per record durably appended afterwards, in append
	// order. The HA replication hub hangs off this to stream the
	// primary's logical history to a standby. Compaction rewrites are
	// not re-tapped — they carry no new state.
	JournalTap func(payload []byte)
}

func (o Options) withDefaults() Options {
	if o.QueueSize <= 0 {
		o.QueueSize = 16
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 2 * time.Second
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 16
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 30 * time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 15 * time.Second
	}
	return o
}

// counters is the service's expvar-style instrumentation. It is a plain
// atomic struct rather than the expvar registry because the registry is
// process-global: registering twice panics, which would make every
// multi-server test (and any embedding application) fragile.
type counters struct {
	jobsSubmitted     atomic.Uint64
	jobsCompleted     atomic.Uint64
	jobsFailed        atomic.Uint64
	jobsCancelled     atomic.Uint64
	jobsDeadline      atomic.Uint64
	jobsRejected      atomic.Uint64
	jobsShed          atomic.Uint64
	jobsThrottled     atomic.Uint64
	jobsRetried       atomic.Uint64
	jobsEvicted       atomic.Uint64
	journalErrors     atomic.Uint64
	recoveredQueued   atomic.Uint64
	recoveredRunning  atomic.Uint64
	recoveredTerminal atomic.Uint64
	queueDepth        atomic.Int64
}

// BreakerStatus is the wire view of one tester profile's circuit
// breaker in /v1/stats.
type BreakerStatus struct {
	State               retry.BreakerState `json:"state"`
	ConsecutiveFailures int                `json:"consecutive_failures"`
	RetryAfterSec       float64            `json:"retry_after_sec,omitempty"`
}

// Stats is the wire view of GET /v1/stats.
type Stats struct {
	JobsSubmitted     uint64                   `json:"jobs_submitted"`
	JobsCompleted     uint64                   `json:"jobs_completed"`
	JobsFailed        uint64                   `json:"jobs_failed"`
	JobsCancelled     uint64                   `json:"jobs_cancelled"`
	JobsDeadline      uint64                   `json:"jobs_deadline"`
	JobsRejected      uint64                   `json:"jobs_rejected"`
	JobsShed          uint64                   `json:"jobs_shed"`
	JobsThrottled     uint64                   `json:"jobs_throttled"`
	JobsRetried       uint64                   `json:"jobs_retried"`
	JobsEvicted       uint64                   `json:"jobs_evicted"`
	JournalErrors     uint64                   `json:"journal_errors"`
	RecoveredQueued   uint64                   `json:"recovered_queued"`
	RecoveredRunning  uint64                   `json:"recovered_running"`
	RecoveredTerminal uint64                   `json:"recovered_terminal"`
	QueueDepth        int64                    `json:"queue_depth"`
	TenantQueueDepth  map[string]int           `json:"tenant_queue_depth,omitempty"`
	RetryBudget       float64                  `json:"retry_budget"`
	CacheHits         uint64                   `json:"cache_hits"`
	CacheMisses       uint64                   `json:"cache_misses"`
	CacheEntries      int                      `json:"cache_entries"`
	Breakers          map[string]BreakerStatus `json:"breakers,omitempty"`
	// Cluster carries the coordinator's lease/handoff/steal counters
	// (via Options.ExtraStats); empty on a standalone or worker node.
	Cluster map[string]uint64 `json:"cluster,omitempty"`
	// HA carries the high-availability view (ha_role, peer lag,
	// failover counters) on nodes running under an HA pair; empty
	// elsewhere. Populated via Options.ExtraStats.
	HA map[string]any `json:"ha,omitempty"`
}

// Server owns the queue, cache, worker pool, job registry, durability
// journal and circuit breakers, and implements http.Handler with the
// /v1 API.
type Server struct {
	opts     Options
	mux      *http.ServeMux
	queue    *Queue
	cache    *Cache
	counters counters

	baseCtx    context.Context
	cancelBase context.CancelFunc
	wg         sync.WaitGroup

	// Retention sweeper shutdown (only armed when opts.Retain > 0).
	evictStop chan struct{}
	evictOnce sync.Once

	mu     sync.Mutex
	jobs   map[string]*Job
	tokens map[string]string // submit token → job ID (idempotent dispatch)
	nextID uint64

	// Per-tenant queued-job counts (accepted into the queue, not yet
	// picked up by a worker) and the Retry-After jitter source.
	tmu         sync.Mutex
	tenantDepth map[string]int
	jitter      *retry.Jitter

	// Durability (nil journal when DataDir is unset). jmu serializes
	// appends against compaction; journalDead simulates power loss in
	// crash tests (records stop cold, no orderly finish records).
	journal     *journal.Journal
	jmu         sync.Mutex
	journalDead atomic.Bool
	recovering  atomic.Bool
	reenqueue   []*Job // journal-recovered jobs awaiting re-enqueue (Start)

	// Resilience: the server-wide retry token bucket and the per-tester-
	// profile circuit breakers.
	retryBudget *retry.Budget
	bmu         sync.Mutex
	breakers    map[string]*retry.Breaker

	// runHook, when non-nil, replaces execute — the deterministic test
	// seam for queue/cancellation/drain behavior without real flow runs.
	runHook func(ctx context.Context, j *Job) error
}

// New assembles a server; call Start to launch the worker pool. With
// DataDir set, New replays the journal synchronously — the registry is
// fully restored on return — while re-enqueueing and compaction happen
// in the background after Start (the readiness endpoint reports
// not-ready until they complete).
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:        opts,
		mux:         http.NewServeMux(),
		queue:       NewQueue(opts.QueueSize),
		cache:       NewCache(),
		baseCtx:     ctx,
		cancelBase:  cancel,
		evictStop:   make(chan struct{}),
		jobs:        make(map[string]*Job),
		tokens:      make(map[string]string),
		tenantDepth: make(map[string]int),
		jitter:      retry.NewJitter(0x5E11A7E2),
		retryBudget: retry.NewBudget(opts.RetryBudget, 0),
		breakers:    make(map[string]*retry.Breaker),
	}
	if opts.DataDir != "" {
		if err := s.openJournal(opts.DataDir + "/journal"); err != nil {
			cancel()
			return nil, err
		}
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /healthz/live", s.handleHealth)
	s.mux.HandleFunc("GET /healthz/ready", s.handleReady)
	return s, nil
}

// Start launches the worker pool and, when a journal is wired, the
// recovery goroutine that re-enqueues interrupted jobs.
func (s *Server) Start() {
	s.wg.Add(s.opts.Workers)
	for i := 0; i < s.opts.Workers; i++ {
		go s.workerLoop()
	}
	if s.journal != nil {
		s.wg.Add(1)
		go s.finishRecovery()
	}
	if s.opts.Retain > 0 {
		s.wg.Add(1)
		go s.evictLoop()
	}
}

// evictLoop sweeps expired terminal jobs out of the registry (see
// Options.Retain).
func (s *Server) evictLoop() {
	defer s.wg.Done()
	interval := s.opts.Retain / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.evictStop:
			return
		case <-tick.C:
			s.evictExpired()
		}
	}
}

// evictExpired deletes jobs terminal for longer than Retain, together
// with their submit-token fence (the fence must not outlive the job:
// a token pointing at a deleted ID would make a re-sent dispatch 500
// instead of deduping — and once the retention horizon has passed, no
// legitimate re-send is coming).
func (s *Server) evictExpired() {
	cutoff := time.Now().Add(-s.opts.Retain)
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, j := range s.jobs {
		at, done := j.finishedAt()
		if !done || at.After(cutoff) {
			continue
		}
		delete(s.jobs, id)
		if tok := j.Spec.SubmitToken; tok != "" && s.tokens[tok] == id {
			delete(s.tokens, tok)
		}
		s.counters.jobsEvicted.Add(1)
	}
}

// breaker returns (creating on first use) the circuit breaker for a
// tester profile.
func (s *Server) breaker(profile string) *retry.Breaker {
	s.bmu.Lock()
	defer s.bmu.Unlock()
	b, ok := s.breakers[profile]
	if !ok {
		b = retry.NewBreaker(retry.BreakerOptions{
			Threshold: s.opts.BreakerThreshold,
			Cooldown:  s.opts.BreakerCooldown,
		})
		s.breakers[profile] = b
	}
	return b
}

// breakerSnapshot copies the breaker map for stats and readiness.
func (s *Server) breakerSnapshot() map[string]*retry.Breaker {
	s.bmu.Lock()
	defer s.bmu.Unlock()
	out := make(map[string]*retry.Breaker, len(s.breakers))
	for k, v := range s.breakers {
		out[k] = v
	}
	return out
}

// Drain shuts the service down gracefully: new submissions are rejected
// immediately, queued and running jobs are given until ctx expires to
// finish, then every remaining job's context is cancelled and Drain
// waits for the workers to unwind. The returned error is ctx's when the
// deadline forced cancellation, nil on a clean drain.
func (s *Server) Drain(ctx context.Context) error {
	s.evictOnce.Do(func() { close(s.evictStop) })
	s.queue.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
		s.cancelBase()
	case <-ctx.Done():
		// Deadline hit: abort every in-flight job and wait for the
		// workers to observe the cancellation.
		s.cancelBase()
		<-done
		err = ctx.Err()
	}
	if s.journal != nil && !s.journalDead.Load() {
		s.jmu.Lock()
		_ = s.journal.Close()
		s.jmu.Unlock()
	}
	return err
}

// Cache exposes the artifact cache (for stats and tests).
func (s *Server) Cache() *Cache { return s.cache }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Job looks up a submitted job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Submit validates, registers and enqueues a job spec. It is the
// programmatic path behind POST /v1/jobs. A submission against a tester
// profile whose circuit breaker is open is shed with a shedError (HTTP:
// 503 + Retry-After) instead of being queued to fail. A spec carrying a
// SubmitToken already registered here returns the existing job instead
// of enqueueing a duplicate — the at-most-once fence a coordinator
// relies on when it re-sends a dispatch it is not sure arrived.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", errBadSpec, err)
	}
	if spec.SubmitToken != "" {
		s.mu.Lock()
		id, ok := s.tokens[spec.SubmitToken]
		j := s.jobs[id]
		s.mu.Unlock()
		if ok && j != nil {
			return j, nil
		}
	}
	if s.opts.Admit != nil {
		if err := s.opts.Admit(spec); err != nil {
			var unavail *UnavailableError
			if errors.As(err, &unavail) {
				s.counters.jobsShed.Add(1)
			} else {
				s.counters.jobsThrottled.Add(1)
			}
			return nil, err
		}
	}
	if b := s.breaker(spec.Tester); !b.Allow() {
		s.counters.jobsShed.Add(1)
		return nil, &shedError{profile: spec.Tester, retryAfter: b.RetryAfter()}
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	s.mu.Lock()
	if spec.SubmitToken != "" {
		// Re-check under the lock: a concurrent duplicate may have won.
		if id, ok := s.tokens[spec.SubmitToken]; ok {
			if j := s.jobs[id]; j != nil {
				s.mu.Unlock()
				cancel()
				return j, nil
			}
		}
	}
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	j := newJob(id, spec, ctx, cancel)
	s.jobs[id] = j
	if spec.SubmitToken != "" {
		s.tokens[spec.SubmitToken] = id
	}
	s.mu.Unlock()

	if err := s.queue.TryEnqueue(j); err != nil {
		cancel()
		s.mu.Lock()
		delete(s.jobs, id)
		if spec.SubmitToken != "" {
			delete(s.tokens, spec.SubmitToken)
		}
		s.mu.Unlock()
		s.counters.jobsRejected.Add(1)
		return nil, err
	}
	s.counters.jobsSubmitted.Add(1)
	s.counters.queueDepth.Store(int64(s.queue.Depth()))
	s.tenantAdd(spec.Tenant, 1)
	s.journalSubmit(j)
	return j, nil
}

// tenantAdd adjusts a tenant's queued-job count.
func (s *Server) tenantAdd(tenant string, delta int) {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	s.tenantDepth[tenant] += delta
	if s.tenantDepth[tenant] <= 0 {
		delete(s.tenantDepth, tenant)
	}
}

// TenantDepths snapshots the per-tenant queued-job counts — what
// /v1/stats reports and what fair-share admission divides the queue by.
func (s *Server) TenantDepths() map[string]int {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	out := make(map[string]int, len(s.tenantDepth))
	for k, v := range s.tenantDepth {
		out[k] = v
	}
	return out
}

var errBadSpec = fmt.Errorf("service: invalid job spec")

// ThrottleError is a submission refused by the admission hook — a
// tenant over its quota or fair share. The HTTP layer maps it to 429
// with the (already jittered) Retry-After hint.
type ThrottleError struct {
	Tenant     string
	Reason     string // "quota" or "fair-share"
	RetryAfter time.Duration
}

func (e *ThrottleError) Error() string {
	return fmt.Sprintf("service: tenant %q throttled (%s), retry in %s",
		e.Tenant, e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// UnavailableError is a submission refused because this node cannot
// currently admit work at all — an HA standby, or a coordinator still
// replaying or promoting. The HTTP layer maps it to 503 with the
// (already jittered) Retry-After hint so clients back off and retry the
// failover instead of seeing a connection refused.
type UnavailableError struct {
	Reason     string // "standby", "replaying" or "promoting"
	RetryAfter time.Duration
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("service: node is %s and not admitting jobs, retry in %s",
		e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// shedError is a submission refused by an open circuit breaker.
type shedError struct {
	profile    string
	retryAfter time.Duration
}

func (e *shedError) Error() string {
	return fmt.Sprintf("service: tester profile %q is shedding load (circuit breaker open, retry in %s)",
		e.profile, e.retryAfter.Round(time.Millisecond))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("malformed job spec: %v", err))
		return
	}
	j, err := s.Submit(spec)
	var shed *shedError
	var throttled *ThrottleError
	var unavail *UnavailableError
	switch {
	case err == nil:
	case errors.Is(err, errBadSpec):
		httpError(w, http.StatusBadRequest, err.Error())
		return
	case errors.Is(err, ErrQueueFull):
		// The hint is jittered (decorrelated across rejections) so the
		// backlog does not come back in lockstep the moment the queue
		// frees up.
		w.Header().Set("Retry-After", retryAfterSecs(s.jitter.Around(time.Second)))
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.As(err, &throttled):
		w.Header().Set("Retry-After", retryAfterSecs(throttled.RetryAfter))
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.As(err, &unavail):
		w.Header().Set("Retry-After", retryAfterSecs(unavail.RetryAfter))
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.As(err, &shed):
		// Jitter around the breaker's cooldown: never earlier than the
		// breaker would admit, spread out beyond it.
		w.Header().Set("Retry-After", retryAfterSecs(s.jitter.Around(shed.retryAfter)))
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, ErrQueueClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.Cancel()
	s.journalCancel(j)
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// A reconnecting client presents the id of the last event it saw;
	// everything retained after it is replayed before live streaming.
	var afterSeq uint64
	resume := false
	if lastID := r.Header.Get("Last-Event-ID"); lastID != "" {
		if n, err := strconv.ParseUint(lastID, 10, 64); err == nil {
			afterSeq, resume = n, true
		}
	}
	replay, sub := j.subscribe(afterSeq, resume)
	defer j.unsubscribe(sub)
	for _, ev := range replay {
		if err := writeSSE(w, ev); err != nil {
			return
		}
	}
	flusher.Flush()

	heartbeat := time.NewTicker(s.opts.Heartbeat)
	defer heartbeat.Stop()
	writeEvents := func() bool {
		for {
			select {
			case ev := <-sub:
				if err := writeSSE(w, ev); err != nil {
					return false
				}
			default:
				flusher.Flush()
				return true
			}
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			// SSE comment line: keeps intermediaries from timing the
			// stream out during long quiet stretches of a big job.
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-j.Done():
			// Drain whatever is buffered, then send the final snapshot —
			// even a subscriber that lost intermediate events always
			// observes the terminal state.
			writeEvents()
			st := j.Status()
			_ = writeSSE(w, Event{Seq: j.lastSeq(), Type: "result", State: st.State, Error: st.Error})
			flusher.Flush()
			return
		case ev := <-sub:
			if err := writeSSE(w, ev); err != nil {
				return
			}
			if !writeEvents() {
				return
			}
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	breakers := make(map[string]BreakerStatus)
	for name, b := range s.breakerSnapshot() {
		breakers[name] = BreakerStatus{
			State:               b.State(),
			ConsecutiveFailures: b.ConsecutiveFailures(),
			RetryAfterSec:       b.RetryAfter().Seconds(),
		}
	}
	st := Stats{
		JobsSubmitted:     s.counters.jobsSubmitted.Load(),
		JobsCompleted:     s.counters.jobsCompleted.Load(),
		JobsFailed:        s.counters.jobsFailed.Load(),
		JobsCancelled:     s.counters.jobsCancelled.Load(),
		JobsDeadline:      s.counters.jobsDeadline.Load(),
		JobsRejected:      s.counters.jobsRejected.Load(),
		JobsShed:          s.counters.jobsShed.Load(),
		JobsThrottled:     s.counters.jobsThrottled.Load(),
		JobsRetried:       s.counters.jobsRetried.Load(),
		JobsEvicted:       s.counters.jobsEvicted.Load(),
		JournalErrors:     s.counters.journalErrors.Load(),
		RecoveredQueued:   s.counters.recoveredQueued.Load(),
		RecoveredRunning:  s.counters.recoveredRunning.Load(),
		RecoveredTerminal: s.counters.recoveredTerminal.Load(),
		QueueDepth:        int64(s.queue.Depth()),
		TenantQueueDepth:  s.TenantDepths(),
		RetryBudget:       s.retryBudget.Remaining(),
		CacheHits:         s.cache.Hits(),
		CacheMisses:       s.cache.Misses(),
		CacheEntries:      s.cache.Len(),
		Breakers:          breakers,
	}
	if s.opts.ExtraStats != nil {
		s.opts.ExtraStats(&st)
	}
	writeJSON(w, http.StatusOK, st)
}

// retryAfterSecs renders a Retry-After header value: whole seconds,
// at least 1.
func retryAfterSecs(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// handleHealth is the liveness probe (also served at /healthz/live): the
// process is up and the handler is reachable — nothing more.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"queue_depth": s.queue.Depth(),
	})
}

// handleReady is the readiness probe: 503 while journal recovery is
// still re-enqueueing interrupted jobs, and while any tester profile's
// circuit breaker is fully open (the service is alive but shedding).
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	if s.recovering.Load() {
		reasons = append(reasons, "journal recovery in progress")
	}
	for name, b := range s.breakerSnapshot() {
		if b.State() == retry.BreakerOpen {
			reasons = append(reasons, fmt.Sprintf("circuit breaker open for tester profile %q", name))
		}
	}
	if s.opts.ExtraReady != nil {
		reasons = append(reasons, s.opts.ExtraReady()...)
	}
	if len(reasons) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":  "not_ready",
			"reasons": reasons,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ready",
		"queue_depth": s.queue.Depth(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeSSE(w http.ResponseWriter, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}
