package service

import (
	"context"
	"testing"
	"time"
)

// TestRetentionEvictsTerminalJobsAndTokens: with Retain set, a job that
// has been terminal for longer than the horizon disappears from the
// registry together with its submit-token fence, and the eviction is
// counted. Without eviction both maps grow with lifetime throughput
// (the leak the Retain knob exists to bound).
func TestRetentionEvictsTerminalJobsAndTokens(t *testing.T) {
	s, _ := newTestServer(t, Options{QueueSize: 4, Workers: 1, Retain: 30 * time.Millisecond},
		func(ctx context.Context, j *Job) error { return nil })

	spec := quickSpec
	spec.SubmitToken = "retire-tok-1"
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job never finished")
	}

	gone := func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		_, jobThere := s.jobs[j.ID]
		_, tokThere := s.tokens["retire-tok-1"]
		return !jobThere && !tokThere
	}
	deadline := time.Now().Add(5 * time.Second)
	for !gone() {
		if time.Now().After(deadline) {
			s.mu.Lock()
			jobs, toks := len(s.jobs), len(s.tokens)
			s.mu.Unlock()
			t.Fatalf("terminal job not evicted after retention horizon (jobs=%d tokens=%d)", jobs, toks)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.counters.jobsEvicted.Load(); got < 1 {
		t.Fatalf("jobs_evicted = %d, want >= 1", got)
	}
}

// TestRetentionZeroKeepsJobs: the default (Retain 0) never evicts — a
// terminal job stays queryable indefinitely.
func TestRetentionZeroKeepsJobs(t *testing.T) {
	s, _ := newTestServer(t, Options{QueueSize: 4, Workers: 1},
		func(ctx context.Context, j *Job) error { return nil })
	j, err := s.Submit(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	time.Sleep(50 * time.Millisecond)
	if _, ok := s.Job(j.ID); !ok {
		t.Fatal("job evicted with Retain unset")
	}
}
