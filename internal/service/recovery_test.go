package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"superpose/internal/failpoint"
)

// newJournaledServer assembles (without starting) a server whose journal
// lives under dir. Lifecycle is the test's responsibility: crash() or
// drainServer(), never both.
func newJournaledServer(t *testing.T, dir string, opts Options, hook func(ctx context.Context, j *Job) error) *Server {
	t.Helper()
	opts.DataDir = dir
	opts.NoSync = true
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.runHook = hook
	return s
}

// crash simulates power loss: journaling stops cold FIRST — so the jobs
// the workers are about to unwind leave no orderly finish records, just
// like a killed process — then the queue closes, every context dies,
// the workers are joined, and the journal's file handle drops.
func crash(t *testing.T, s *Server) {
	t.Helper()
	s.journalDead.Store(true)
	s.queue.Close()
	s.cancelBase()
	s.wg.Wait()
	s.jmu.Lock()
	_ = s.journal.Close()
	s.jmu.Unlock()
}

func drainServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// waitRunning polls until the job leaves the queue (or fails the test if
// it reaches a terminal state first — the fixture was too small to crash
// mid-run).
func waitRunning(t *testing.T, j *Job) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		switch st := j.State(); {
		case st == StateRunning:
			return
		case st.Terminal():
			t.Fatalf("job %s finished (%s) before the crash landed", j.ID, st)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started", j.ID)
}

func waitTerminal(t *testing.T, j *Job, want State) Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s never reached a terminal state (now %s)", j.ID, j.State())
	}
	st := j.Status()
	if st.State != want {
		t.Fatalf("job %s finished %q (err %q), want %q", j.ID, st.State, st.Error, want)
	}
	return st
}

// blockingHook parks every job until its context dies — the stand-in for
// a long certification run that a crash interrupts.
func blockingHook(ctx context.Context, j *Job) error {
	<-ctx.Done()
	return ctx.Err()
}

var quickSpec = JobSpec{Kind: KindDetect, Case: "s35932-T200"}

// TestCrashRecoveryBitIdenticalReport is the acceptance test of the
// durability layer: SIGKILL-grade interruption mid-run, restart on the
// same data dir, and the recovered job's report is bit-identical to an
// uninterrupted control run. A third boot then proves the finished job
// is never executed again — it is served from the journal.
func TestCrashRecoveryBitIdenticalReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real pipeline three times")
	}
	benchSrc := e2eBench(t)
	spec := JobSpec{Kind: KindDetect, Bench: benchSrc, Clean: true, Workers: 2}

	// Control: the same spec, uninterrupted, on a journal-less server.
	ctrl, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	cj, err := ctrl.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := waitTerminal(t, cj, StateDone)
	if want.Report == nil {
		t.Fatal("control run delivered no report")
	}
	wantJSON, err := json.Marshal(want.Report)
	if err != nil {
		t.Fatal(err)
	}
	drainServer(t, ctrl)

	// Boot 1: journaled, crashed mid-run.
	dir := t.TempDir()
	s1 := newJournaledServer(t, dir, Options{}, nil)
	s1.Start()
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, j1)
	crash(t, s1)

	// Boot 2: the registry is restored synchronously by New — the job is
	// back, queued, with its pre-crash attempt on the books.
	s2 := newJournaledServer(t, dir, Options{}, nil)
	j2, ok := s2.Job(j1.ID)
	if !ok {
		t.Fatalf("job %s lost across the crash", j1.ID)
	}
	if st := j2.State(); st != StateQueued {
		t.Fatalf("recovered job state %q, want queued", st)
	}
	if got := j2.Attempts(); got != 1 {
		t.Errorf("recovered job carries %d attempts, want 1 (the interrupted run)", got)
	}
	if got := s2.counters.recoveredRunning.Load(); got != 1 {
		t.Errorf("recovered_running = %d, want 1", got)
	}
	s2.Start()
	got := waitTerminal(t, j2, StateDone)
	gotJSON, err := json.Marshal(got.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("recovered report differs from the uninterrupted control:\nrecovered: %s\ncontrol:   %s", gotJSON, wantJSON)
	}
	if got := j2.Attempts(); got != 2 {
		t.Errorf("recovered job finished with %d attempts, want 2", got)
	}
	if got := s2.counters.jobsCompleted.Load(); got != 1 {
		t.Errorf("boot 2 completed %d jobs, want exactly 1 — no duplicate execution", got)
	}
	drainServer(t, s2)

	// Boot 3: the job is terminal in the journal — it comes back done,
	// report intact, and nothing runs again.
	s3 := newJournaledServer(t, dir, Options{}, nil)
	j3, ok := s3.Job(j1.ID)
	if !ok {
		t.Fatalf("job %s lost after a graceful shutdown", j1.ID)
	}
	st3 := j3.Status()
	if st3.State != StateDone {
		t.Fatalf("job restored %q after graceful shutdown, want done", st3.State)
	}
	rep3, err := json.Marshal(st3.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep3, wantJSON) {
		t.Errorf("journal round-trip changed the report:\nrestored: %s\ncontrol:  %s", rep3, wantJSON)
	}
	if got := s3.counters.recoveredTerminal.Load(); got != 1 {
		t.Errorf("recovered_terminal = %d, want 1", got)
	}
	s3.Start()
	waitNotRecovering(t, s3)
	if got := s3.counters.jobsCompleted.Load(); got != 0 {
		t.Errorf("boot 3 executed %d jobs, want 0 — the finished job must be served, not re-run", got)
	}
	drainServer(t, s3)
}

func waitNotRecovering(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.recovering.Load() {
		if time.Now().After(deadline) {
			t.Fatal("recovery never completed")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCrashRecoverQueuedAndRunningJobs: a crash with one job mid-run and
// two still queued; the restart re-enqueues all three in submission
// order, finishes them, and allocates fresh IDs above the journal's
// floor (no reuse of a dead job's name).
func TestCrashRecoverQueuedAndRunningJobs(t *testing.T) {
	dir := t.TempDir()
	s1 := newJournaledServer(t, dir, Options{Workers: 1, QueueSize: 8}, blockingHook)
	s1.Start()
	j1, err := s1.Submit(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, j1)
	j2, err := s1.Submit(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	j3, err := s1.Submit(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	crash(t, s1)

	s2 := newJournaledServer(t, dir, Options{Workers: 1, QueueSize: 8},
		func(ctx context.Context, j *Job) error { return nil })
	if got := s2.counters.recoveredRunning.Load(); got != 1 {
		t.Errorf("recovered_running = %d, want 1", got)
	}
	if got := s2.counters.recoveredQueued.Load(); got != 2 {
		t.Errorf("recovered_queued = %d, want 2", got)
	}
	s2.Start()
	for _, id := range []string{j1.ID, j2.ID, j3.ID} {
		j, ok := s2.Job(id)
		if !ok {
			t.Fatalf("job %s lost across the crash", id)
		}
		waitTerminal(t, j, StateDone)
	}
	r1, _ := s2.Job(j1.ID)
	if got := r1.Attempts(); got != 2 {
		t.Errorf("interrupted job finished with %d attempts, want 2", got)
	}

	// The ID allocator resumed past the journal's floor.
	j4, err := s2.Submit(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	if j4.ID != "job-4" {
		t.Errorf("post-recovery submission got ID %q, want job-4", j4.ID)
	}
	waitTerminal(t, j4, StateDone)
	drainServer(t, s2)
}

// TestCrashRecoverCancelHonored: a cancellation whose finish record the
// crash beat to disk is still honored on restart — the job comes back
// cancelled, not re-run.
func TestCrashRecoverCancelHonored(t *testing.T) {
	dir := t.TempDir()
	s1 := newJournaledServer(t, dir, Options{Workers: 1}, blockingHook)
	s1.Start()
	j1, err := s1.Submit(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, j1)
	j2, err := s1.Submit(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	// What DELETE /v1/jobs/{id} does: cancel, then journal the request.
	// The queued job finishes cancelled in memory, but the worker (stuck
	// on j1) never writes its finish record — then the power dies.
	j2.Cancel()
	s1.journalCancel(j2)
	crash(t, s1)

	s2 := newJournaledServer(t, dir, Options{Workers: 1},
		func(ctx context.Context, j *Job) error { return nil })
	r2, ok := s2.Job(j2.ID)
	if !ok {
		t.Fatalf("cancelled job %s lost across the crash", j2.ID)
	}
	st := r2.Status()
	if st.State != StateCancelled {
		t.Fatalf("cancelled job restored as %q, want cancelled", st.State)
	}
	if got := s2.counters.recoveredTerminal.Load(); got != 1 {
		t.Errorf("recovered_terminal = %d, want 1", got)
	}
	s2.Start()
	r1, _ := s2.Job(j1.ID)
	waitTerminal(t, r1, StateDone)
	waitNotRecovering(t, s2)
	if got := s2.counters.jobsCompleted.Load(); got != 1 {
		t.Errorf("boot 2 completed %d jobs, want 1 — the cancelled job must not run", got)
	}
	drainServer(t, s2)
}

// TestCrashRecoverAttemptsExhausted: a job that crashes the server on
// every attempt must not crash-loop forever — once the journal shows
// MaxAttempts interrupted starts, the restart declares it failed.
func TestCrashRecoverAttemptsExhausted(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Workers: 1, MaxAttempts: 2}

	s1 := newJournaledServer(t, dir, opts, blockingHook)
	s1.Start()
	j1, err := s1.Submit(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, j1)
	crash(t, s1) // journal: submit, start(1)

	s2 := newJournaledServer(t, dir, opts, blockingHook)
	r2, ok := s2.Job(j1.ID)
	if !ok {
		t.Fatal("job lost after first crash")
	}
	s2.Start()
	waitRunning(t, r2)
	crash(t, s2) // journal: + start(2) — the budget is now spent

	s3 := newJournaledServer(t, dir, opts, blockingHook)
	r3, ok := s3.Job(j1.ID)
	if !ok {
		t.Fatal("job lost after second crash")
	}
	st := waitTerminal(t, r3, StateFailed) // terminal at restore; Done already closed
	if !strings.Contains(st.Error, "interrupted by crash on attempt 2/2") {
		t.Errorf("error %q does not attribute the crash-loop exhaustion", st.Error)
	}
	s3.Start()
	waitNotRecovering(t, s3)
	if got := s3.counters.jobsCompleted.Load(); got != 0 {
		t.Errorf("exhausted job still executed (%d completions)", got)
	}
	drainServer(t, s3)
}

// TestReadyDuringRecovery pins the liveness/readiness split across a
// restart: while journal replay is still re-enqueueing (stretched here
// by the "service/recovery" failpoint), /healthz/ready answers 503 and
// /healthz/live answers 200; once recovery completes, ready flips to
// 200 and the recovered job finishes.
func TestReadyDuringRecovery(t *testing.T) {
	dir := t.TempDir()
	s1 := newJournaledServer(t, dir, Options{Workers: 1}, blockingHook)
	s1.Start()
	j1, err := s1.Submit(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, j1)
	crash(t, s1)

	if err := failpoint.Enable("service/recovery", "sleep(300ms)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisableAll)

	s2 := newJournaledServer(t, dir, Options{Workers: 1},
		func(ctx context.Context, j *Job) error { return nil })
	ts := httptest.NewServer(s2)
	defer ts.Close()

	// Restored but not yet replaying: alive, not ready.
	if code := probeCode(t, ts, "/healthz/ready"); code != http.StatusServiceUnavailable {
		t.Errorf("ready before recovery: HTTP %d, want 503", code)
	}
	if code := probeCode(t, ts, "/healthz/live"); code != http.StatusOK {
		t.Errorf("live before recovery: HTTP %d, want 200", code)
	}
	resp, err := http.Get(ts.URL + "/healthz/ready")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if body.Status != "not_ready" || len(body.Reasons) == 0 || !strings.Contains(body.Reasons[0], "recovery") {
		t.Errorf("not-ready body %+v does not name recovery", body)
	}

	s2.Start()
	// Mid-window (the failpoint holds recovery open): still not ready.
	if code := probeCode(t, ts, "/healthz/ready"); code != http.StatusServiceUnavailable {
		t.Errorf("ready during stretched recovery: HTTP %d, want 503", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for probeCode(t, ts, "/healthz/ready") != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("readiness never recovered after replay")
		}
		time.Sleep(10 * time.Millisecond)
	}
	r1, _ := s2.Job(j1.ID)
	waitTerminal(t, r1, StateDone)
	drainServer(t, s2)
}
