package service

import (
	"errors"
	"fmt"
	"sync"

	"superpose/internal/failpoint"
)

// ErrQueueFull is returned when the bounded queue cannot accept another
// job; the HTTP layer maps it to 429 so clients back off.
var ErrQueueFull = errors.New("service: job queue full")

// ErrQueueClosed is returned once the server has begun draining; the
// HTTP layer maps it to 503.
var ErrQueueClosed = errors.New("service: job queue closed")

// Queue is a bounded FIFO of submitted jobs. Submission never blocks:
// a full queue rejects immediately (backpressure belongs at the edge,
// not inside the HTTP handler). Closing the queue starts the drain —
// workers consume the remaining backlog, then their range loop ends.
type Queue struct {
	mu     sync.Mutex
	ch     chan *Job
	closed bool
}

// NewQueue returns a queue holding at most size pending jobs.
func NewQueue(size int) *Queue {
	if size <= 0 {
		size = 16
	}
	return &Queue{ch: make(chan *Job, size)}
}

// TryEnqueue appends the job or reports why it cannot.
func (q *Queue) TryEnqueue(j *Job) error {
	// Chaos hook: an injected enqueue fault presents as a full queue, the
	// rejection clients already know how to back off from.
	if err := failpoint.Inject("service/queue/enqueue"); err != nil {
		return fmt.Errorf("%w (injected: %s)", ErrQueueFull, err)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	select {
	case q.ch <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// Jobs is the worker-side channel; it is closed (after the backlog
// drains) once Close has been called.
func (q *Queue) Jobs() <-chan *Job { return q.ch }

// Depth returns the number of queued jobs not yet picked up.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.ch)
}

// Close rejects all future submissions and lets workers drain the
// backlog. Safe to call more than once.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}
