package service

import (
	"context"
	"encoding/json"
	"fmt"

	"superpose/internal/core"
	"superpose/internal/failpoint"
	"superpose/internal/journal"
)

// journalRecord is one job state transition in the durability journal.
// The journal is a log of these, JSON-encoded, one per Append; replaying
// them in order reconstructs the job registry after a crash.
type journalRecord struct {
	Type      string          `json:"type"` // "submit", "start", "finish" or "cancel"
	ID        string          `json:"id"`
	Spec      *JobSpec        `json:"spec,omitempty"`    // submit
	Attempt   int             `json:"attempt,omitempty"` // start
	State     State           `json:"state,omitempty"`   // finish
	Error     string          `json:"error,omitempty"`
	CacheHit  bool            `json:"cache_hit,omitempty"`
	Report    json.RawMessage `json:"report,omitempty"`
	LotReport json.RawMessage `json:"lot_report,omitempty"`
}

// journalAppend writes one record, serialized against compaction. A
// journal failure is counted, not escalated: the service keeps running
// jobs when the disk misbehaves (availability over durability) — the
// operator sees journal_errors climbing in /v1/stats.
func (s *Server) journalAppend(rec journalRecord) {
	if s.journal == nil || s.journalDead.Load() {
		return
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		s.counters.journalErrors.Add(1)
		return
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if err := s.journal.Append(payload); err != nil {
		s.counters.journalErrors.Add(1)
		return
	}
	if s.opts.JournalTap != nil {
		// Under jmu: the tap observes records in durable append order.
		s.opts.JournalTap(payload)
	}
}

func (s *Server) journalSubmit(j *Job) {
	spec := j.Spec
	s.journalAppend(journalRecord{Type: "submit", ID: j.ID, Spec: &spec})
}

func (s *Server) journalStart(j *Job, attempt int) {
	s.journalAppend(journalRecord{Type: "start", ID: j.ID, Attempt: attempt})
}

func (s *Server) journalCancel(j *Job) {
	s.journalAppend(journalRecord{Type: "cancel", ID: j.ID})
}

func (s *Server) journalFinish(j *Job) {
	if s.journal == nil || s.journalDead.Load() {
		return
	}
	st := j.Status()
	rec := journalRecord{Type: "finish", ID: j.ID, Attempt: st.Attempts,
		State: st.State, Error: st.Error, CacheHit: st.CacheHit}
	// The reports round-trip bit-for-bit (core/wire.go), so a restart
	// serves the identical artifact it would have served uninterrupted.
	if st.Report != nil {
		if raw, err := json.Marshal(st.Report); err == nil {
			rec.Report = raw
		}
	}
	if st.LotReport != nil {
		if raw, err := json.Marshal(st.LotReport); err == nil {
			rec.LotReport = raw
		}
	}
	s.journalAppend(rec)
}

// recoveredJob is the journal's view of one job after replay.
type recoveredJob struct {
	id        string
	spec      JobSpec
	attempts  int
	started   bool // a start record was seen (crashed mid-run if non-terminal)
	cancelled bool // a cancel record was seen
	finish    *journalRecord
}

// decodeJournal folds replayed records into per-job recovery state,
// preserving submission order, and returns the highest job number seen
// (the restart's ID allocator floor). Records that fail to decode are
// counted and skipped — one bad record must not take down recovery.
func (s *Server) decodeJournal(records [][]byte) (order []string, byID map[string]*recoveredJob, maxID uint64) {
	byID = make(map[string]*recoveredJob)
	for _, payload := range records {
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil || rec.ID == "" {
			s.counters.journalErrors.Add(1)
			continue
		}
		var n uint64
		if _, err := fmt.Sscanf(rec.ID, "job-%d", &n); err == nil && n > maxID {
			maxID = n
		}
		r, ok := byID[rec.ID]
		if !ok {
			if rec.Type != "submit" || rec.Spec == nil {
				// A transition for a job whose submit record is gone
				// (pre-compaction damage); nothing to reconstruct.
				s.counters.journalErrors.Add(1)
				continue
			}
			r = &recoveredJob{id: rec.ID, spec: *rec.Spec}
			byID[rec.ID] = r
			order = append(order, rec.ID)
			continue
		}
		switch rec.Type {
		case "start":
			r.started = true
			if rec.Attempt > r.attempts {
				r.attempts = rec.Attempt
			}
		case "cancel":
			r.cancelled = true
		case "finish":
			rc := rec
			r.finish = &rc
			if rec.Attempt > r.attempts {
				r.attempts = rec.Attempt
			}
		}
	}
	return order, byID, maxID
}

// restore rebuilds the job registry from the decoded journal (called
// from New, under no locks — the server is not serving yet). Terminal
// jobs are registered as they finished; cancelled-but-unfinished jobs
// finish cancelled; the rest are queued for re-enqueue by Start's
// recovery goroutine.
func (s *Server) restore(order []string, byID map[string]*recoveredJob) {
	for _, id := range order {
		r := byID[id]
		if r.spec.SubmitToken != "" {
			// The token fence survives restarts: a coordinator re-sending
			// a pre-crash dispatch dedupes onto the recovered job.
			s.tokens[r.spec.SubmitToken] = id
		}
		switch {
		case r.finish != nil:
			var rep *core.Report
			var lr *core.LotReport
			if len(r.finish.Report) > 0 {
				rep = new(core.Report)
				if err := json.Unmarshal(r.finish.Report, rep); err != nil {
					s.counters.journalErrors.Add(1)
					rep = nil
				}
			}
			if len(r.finish.LotReport) > 0 {
				lr = new(core.LotReport)
				if err := json.Unmarshal(r.finish.LotReport, lr); err != nil {
					s.counters.journalErrors.Add(1)
					lr = nil
				}
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel() // terminal: nothing left to abort
			s.jobs[id] = restoredJob(id, r.spec, ctx, cancel, r.finish.State, r.finish.Error, r.attempts, r.finish.CacheHit, rep, lr)
			s.counters.recoveredTerminal.Add(1)

		case r.cancelled:
			// Cancellation was requested but the crash beat the finish
			// record: honor the request rather than re-running.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			s.jobs[id] = restoredJob(id, r.spec, ctx, cancel, StateCancelled, context.Canceled.Error(), r.attempts, false, nil, nil)
			s.counters.recoveredTerminal.Add(1)

		case r.started && r.attempts >= s.opts.MaxAttempts:
			// Crashed mid-run with the retry budget already spent.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			s.jobs[id] = restoredJob(id, r.spec, ctx, cancel, StateFailed,
				fmt.Sprintf("service: interrupted by crash on attempt %d/%d", r.attempts, s.opts.MaxAttempts),
				r.attempts, false, nil, nil)
			s.counters.recoveredRunning.Add(1)

		default:
			// Queued at crash time, or interrupted mid-run with attempts
			// to spare: back into the queue. The flow is deterministic,
			// so the re-run produces the bit-identical report the
			// uninterrupted run would have.
			ctx, cancel := context.WithCancel(s.baseCtx)
			j := restoredJob(id, r.spec, ctx, cancel, StateQueued, "", r.attempts, false, nil, nil)
			s.jobs[id] = j
			s.reenqueue = append(s.reenqueue, j)
			if r.started {
				s.counters.recoveredRunning.Add(1)
			} else {
				s.counters.recoveredQueued.Add(1)
			}
		}
	}
}

// finishRecovery runs in the background after Start: it re-enqueues the
// journal's unfinished jobs and compacts the journal down to the live
// registry. The server reports not-ready until it completes. The
// "service/recovery" failpoint stretches (or fails) the window for
// tests.
func (s *Server) finishRecovery() {
	defer s.wg.Done()
	defer s.recovering.Store(false)
	if err := failpoint.Inject("service/recovery"); err != nil {
		s.counters.journalErrors.Add(1)
	}
	for _, j := range s.reenqueue {
		s.tenantAdd(j.Spec.Tenant, 1)
		if err := s.queue.TryEnqueue(j); err != nil {
			s.tenantAdd(j.Spec.Tenant, -1)
			j.finish(StateFailed, fmt.Errorf("service: re-enqueue after recovery: %w", err))
			s.journalFinish(j)
			s.counters.jobsFailed.Add(1)
		}
	}
	s.reenqueue = nil
	s.compactJournal()
}

// compactJournal rewrites the journal to one submit (+start/finish)
// record set per registered job, dropping replayed history. It holds
// jmu across snapshot and Reset so a concurrent finish can never land
// in the doomed segments and be lost.
func (s *Server) compactJournal() {
	if s.journal == nil || s.journalDead.Load() {
		return
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if err := s.journal.Reset(s.compactRecords()); err != nil {
		s.counters.journalErrors.Add(1)
	}
}

// SnapshotUnderJournalLock builds the compacted logical record set and
// hands it to fn while holding the journal append lock, so every record
// the JournalTap observes after fn returns strictly follows the
// snapshot. The HA replication hub rebases a fresh follower's stream
// from it when the history before the follower's offset has been
// trimmed.
func (s *Server) SnapshotUnderJournalLock(fn func(records [][]byte)) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	fn(s.compactRecords())
}

// compactRecords marshals the registry's compact representation (the
// records compaction writes). The caller holds jmu.
func (s *Server) compactRecords() [][]byte {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	// Rebuild in job-number order so replay sees submissions in sequence.
	sortJobsByNumber(jobs)

	var records [][]byte
	appendRec := func(rec journalRecord) {
		payload, err := json.Marshal(rec)
		if err != nil {
			s.counters.journalErrors.Add(1)
			return
		}
		records = append(records, payload)
	}
	for _, j := range jobs {
		spec := j.Spec
		appendRec(journalRecord{Type: "submit", ID: j.ID, Spec: &spec})
		st := j.Status()
		if st.Attempts > 0 && !st.State.Terminal() {
			appendRec(journalRecord{Type: "start", ID: j.ID, Attempt: st.Attempts})
		}
		if st.State.Terminal() {
			rec := journalRecord{Type: "finish", ID: j.ID, Attempt: st.Attempts,
				State: st.State, Error: st.Error, CacheHit: st.CacheHit}
			if st.Report != nil {
				if raw, err := json.Marshal(st.Report); err == nil {
					rec.Report = raw
				}
			}
			if st.LotReport != nil {
				if raw, err := json.Marshal(st.LotReport); err == nil {
					rec.LotReport = raw
				}
			}
			appendRec(rec)
		}
	}
	return records
}

func sortJobsByNumber(jobs []*Job) {
	num := func(id string) uint64 {
		var n uint64
		fmt.Sscanf(id, "job-%d", &n)
		return n
	}
	for i := 1; i < len(jobs); i++ {
		for k := i; k > 0 && num(jobs[k].ID) < num(jobs[k-1].ID); k-- {
			jobs[k], jobs[k-1] = jobs[k-1], jobs[k]
		}
	}
}

// openJournal wires the durability layer during New: replay, registry
// restore, and ID-allocator floor.
func (s *Server) openJournal(dir string) error {
	jnl, records, err := journal.Open(dir, journal.Options{NoSync: s.opts.NoSync})
	if err != nil {
		return fmt.Errorf("service: open journal: %w", err)
	}
	s.journal = jnl
	if s.opts.JournalTap != nil {
		for _, rec := range records {
			s.opts.JournalTap(rec)
		}
	}
	order, byID, maxID := s.decodeJournal(records)
	s.nextID = maxID
	s.restore(order, byID)
	s.recovering.Store(true)
	return nil
}
