package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"superpose/internal/failpoint"
	"superpose/internal/retry"
)

// fastRetry keeps chaos tests quick: millisecond backoff instead of the
// production 50ms base.
func fastRetry(o Options) Options {
	o.RetryBase = time.Millisecond
	o.RetryMax = 5 * time.Millisecond
	return o
}

func getStats(t *testing.T, ts *httptest.Server) Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestRetryFailpointTransientError: an injected one-shot failure on the
// worker's run path is classified transient and retried — the job still
// completes, with the retry visible in its attempt count and the
// server-wide counters.
func TestRetryFailpointTransientError(t *testing.T) {
	if err := failpoint.Enable("service/worker/run", "1*error(transient chaos)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisableAll)

	_, ts := newTestServer(t, fastRetry(Options{}), func(ctx context.Context, j *Job) error {
		return nil
	})
	st := submitSpec(t, ts, JobSpec{Kind: KindDetect, Case: "s35932-T200"})
	final := waitState(t, ts, st.ID, StateDone)
	if final.Attempts != 2 {
		t.Errorf("job took %d attempts, want 2 (one injected failure, one clean run)", final.Attempts)
	}
	stats := getStats(t, ts)
	if stats.JobsRetried != 1 {
		t.Errorf("jobs_retried = %d, want 1", stats.JobsRetried)
	}
	if stats.JobsCompleted != 1 || stats.JobsFailed != 0 {
		t.Errorf("completed %d failed %d, want 1 and 0", stats.JobsCompleted, stats.JobsFailed)
	}
}

// TestRetryFailpointPanicRecovered: an injected panic on the run path
// must neither kill the worker goroutine nor doom the job — it is
// recovered, classified transient, and retried.
func TestRetryFailpointPanicRecovered(t *testing.T) {
	if err := failpoint.Enable("service/worker/run", "1*panic(chaos panic)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisableAll)

	_, ts := newTestServer(t, fastRetry(Options{}), func(ctx context.Context, j *Job) error {
		return nil
	})
	st := submitSpec(t, ts, JobSpec{Kind: KindDetect, Case: "s35932-T200"})
	final := waitState(t, ts, st.ID, StateDone)
	if final.Attempts != 2 {
		t.Errorf("job took %d attempts, want 2", final.Attempts)
	}

	// The worker survived the panic: a follow-up job on the same (sole)
	// worker still runs.
	st2 := submitSpec(t, ts, JobSpec{Kind: KindDetect, Case: "s35932-T200"})
	waitState(t, ts, st2.ID, StateDone)
}

// TestRetryFailpointAttemptsExhausted: a persistently-injected fault
// burns through MaxAttempts and the job fails with the exhaustion
// spelled out — it does not hang, and it does not retry forever.
func TestRetryFailpointAttemptsExhausted(t *testing.T) {
	if err := failpoint.Enable("service/worker/run", "error(persistent chaos)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisableAll)

	_, ts := newTestServer(t, fastRetry(Options{MaxAttempts: 3}), func(ctx context.Context, j *Job) error {
		return nil
	})
	st := submitSpec(t, ts, JobSpec{Kind: KindDetect, Case: "s35932-T200"})
	final := waitState(t, ts, st.ID, StateFailed)
	if final.Attempts != 3 {
		t.Errorf("job took %d attempts, want 3", final.Attempts)
	}
	if !strings.Contains(final.Error, "attempts exhausted") {
		t.Errorf("error %q does not report attempt exhaustion", final.Error)
	}
	stats := getStats(t, ts)
	if stats.JobsRetried != 2 {
		t.Errorf("jobs_retried = %d, want 2", stats.JobsRetried)
	}
}

// TestRetryBudgetExhausted: the server-wide token bucket caps retry
// amplification — once it empties, a transient failure fails fast
// instead of burning more attempts.
func TestRetryBudgetExhausted(t *testing.T) {
	if err := failpoint.Enable("service/worker/run", "error(persistent chaos)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisableAll)

	_, ts := newTestServer(t, fastRetry(Options{MaxAttempts: 5, RetryBudget: 1}), func(ctx context.Context, j *Job) error {
		return nil
	})
	st := submitSpec(t, ts, JobSpec{Kind: KindDetect, Case: "s35932-T200"})
	final := waitState(t, ts, st.ID, StateFailed)
	// Attempt 1 fails, the single token funds attempt 2, the empty
	// bucket denies attempt 3.
	if final.Attempts != 2 {
		t.Errorf("job took %d attempts, want 2 (budget of 1 funds one retry)", final.Attempts)
	}
	if !strings.Contains(final.Error, "retry budget exhausted") {
		t.Errorf("error %q does not report budget exhaustion", final.Error)
	}
	stats := getStats(t, ts)
	if stats.RetryBudget != 0 {
		t.Errorf("retry_budget = %g, want 0", stats.RetryBudget)
	}
}

// TestDeadlineExceededJob: a job's TimeoutSec expires mid-run and the
// job lands in the dedicated "deadline" state — distinct from cancelled
// and from failed — with the budget named in the error.
func TestDeadlineExceededJob(t *testing.T) {
	_, ts := newTestServer(t, Options{}, func(ctx context.Context, j *Job) error {
		<-ctx.Done() // a run that would outlive any budget
		return ctx.Err()
	})
	st := submitSpec(t, ts, JobSpec{Kind: KindDetect, Case: "s35932-T200", TimeoutSec: 0.05})
	final := waitState(t, ts, st.ID, StateDeadline)
	if !strings.Contains(final.Error, "timeout_sec=0.05s exceeded") {
		t.Errorf("error %q does not name the exceeded budget", final.Error)
	}
	stats := getStats(t, ts)
	if stats.JobsDeadline != 1 {
		t.Errorf("jobs_deadline = %d, want 1", stats.JobsDeadline)
	}
	if stats.JobsCancelled != 0 || stats.JobsFailed != 0 {
		t.Errorf("deadline miscounted: cancelled %d failed %d", stats.JobsCancelled, stats.JobsFailed)
	}
}

// TestBreakerShedsAndRecovers drives a tester profile's circuit breaker
// through its full arc: consecutive failures trip it, submissions
// against the profile are shed with 503 + Retry-After while other
// profiles flow normally, readiness reports the open breaker, and after
// the cooldown a successful half-open probe closes it again.
func TestBreakerShedsAndRecovers(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	hook := func(ctx context.Context, j *Job) error {
		if j.Spec.Tester == "spikes" && failing.Load() {
			return errors.New("tester frontend exploded") // permanent: no retries
		}
		return nil
	}
	_, ts := newTestServer(t, Options{BreakerThreshold: 2, BreakerCooldown: 80 * time.Millisecond}, hook)

	spec := JobSpec{Kind: KindDetect, Case: "s35932-T200", Tester: "spikes"}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Two consecutive failures trip the threshold-2 breaker.
	for i := 0; i < 2; i++ {
		st := submitSpec(t, ts, spec)
		waitState(t, ts, st.ID, StateFailed)
	}

	// The profile now sheds: 503 with a Retry-After hint, nothing queued.
	resp, _ := postJob(t, ts, string(body))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit against an open breaker: HTTP %d, want 503", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	stats := getStats(t, ts)
	if stats.JobsShed != 1 {
		t.Errorf("jobs_shed = %d, want 1", stats.JobsShed)
	}
	if br, ok := stats.Breakers["spikes"]; !ok || br.State != retry.BreakerOpen {
		t.Errorf("stats breaker for %q = %+v, want open", "spikes", stats.Breakers)
	}

	// Readiness reflects the open breaker; liveness does not.
	if code := probeCode(t, ts, "/healthz/ready"); code != http.StatusServiceUnavailable {
		t.Errorf("ready with an open breaker: HTTP %d, want 503", code)
	}
	if code := probeCode(t, ts, "/healthz/live"); code != http.StatusOK {
		t.Errorf("live with an open breaker: HTTP %d, want 200", code)
	}

	// Other profiles are unaffected by the tripped one.
	clean := submitSpec(t, ts, JobSpec{Kind: KindDetect, Case: "s35932-T200"})
	waitState(t, ts, clean.ID, StateDone)

	// Heal the backend; after the cooldown a half-open probe is admitted,
	// succeeds, and closes the breaker.
	failing.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		resp, st := postJob(t, ts, string(body))
		if resp.StatusCode == http.StatusAccepted {
			waitState(t, ts, st.ID, StateDone)
			recovered = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("breaker never admitted a probe after the backend healed")
	}
	stats = getStats(t, ts)
	if br := stats.Breakers["spikes"]; br.State != retry.BreakerClosed {
		t.Errorf("breaker after successful probe: %+v, want closed", br)
	}
	if code := probeCode(t, ts, "/healthz/ready"); code != http.StatusOK {
		t.Errorf("ready after recovery: HTTP %d, want 200", code)
	}
}

func probeCode(t *testing.T, ts *httptest.Server, path string) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestQueueEnqueueFailpointRejects: an injected enqueue fault presents
// as queue pressure (429) and loses nothing — the job is unregistered,
// the counters record a rejection, and the next submission sails.
func TestQueueEnqueueFailpointRejects(t *testing.T) {
	if err := failpoint.Enable("service/queue/enqueue", "1*error(enqueue chaos)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisableAll)

	s, ts := newTestServer(t, Options{}, func(ctx context.Context, j *Job) error {
		return nil
	})
	resp, _ := postJob(t, ts, detectBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("injected enqueue fault: HTTP %d, want 429", resp.StatusCode)
	}
	stats := getStats(t, ts)
	if stats.JobsRejected != 1 || stats.JobsSubmitted != 0 {
		t.Errorf("rejected %d submitted %d, want 1 and 0", stats.JobsRejected, stats.JobsSubmitted)
	}
	if _, ok := s.Job("job-1"); ok {
		t.Error("rejected job left registered")
	}

	// One-shot point has disarmed; the retry succeeds.
	_, st := postJob(t, ts, detectBody)
	waitState(t, ts, st.ID, StateDone)
}

// TestJournalAppendFailpointKeepsServing: a misbehaving disk must cost
// durability, not availability — jobs keep completing while
// journal_errors climbs in /v1/stats.
func TestJournalAppendFailpointKeepsServing(t *testing.T) {
	if err := failpoint.Enable("journal/append", "error(disk gone)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisableAll)

	_, ts := newTestServer(t, Options{DataDir: t.TempDir(), NoSync: true}, func(ctx context.Context, j *Job) error {
		return nil
	})
	st := submitSpec(t, ts, JobSpec{Kind: KindDetect, Case: "s35932-T200"})
	final := waitState(t, ts, st.ID, StateDone)
	if final.Error != "" {
		t.Errorf("journal failure leaked into the job: %q", final.Error)
	}
	stats := getStats(t, ts)
	if stats.JournalErrors == 0 {
		t.Error("journal_errors = 0 despite every append failing")
	}
}

// TestCacheSingleflightFailureNotPoisoned is the regression test for the
// singleflight failure path: with N concurrent getters and a first build
// that fails, exactly that builder's caller sees the error, the entry is
// evicted exactly once, and every waiter retries into the successful
// rebuild — nobody is served a stale error, nobody hangs.
func TestCacheSingleflightFailureNotPoisoned(t *testing.T) {
	c := NewCache()
	var calls atomic.Int64
	const getters = 8
	errs := make([]error, getters)
	vals := make([]*instance, getters)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < getters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			vals[i], _, errs[i] = c.Instance("design", func() (*instance, error) {
				if calls.Add(1) == 1 {
					time.Sleep(5 * time.Millisecond) // let waiters pile onto this entry
					return nil, errors.New("first build fails")
				}
				return &instance{}, nil
			})
		}(i)
	}
	close(start)
	wg.Wait()

	failures := 0
	for i, err := range errs {
		if err != nil {
			failures++
		} else if vals[i] == nil {
			t.Errorf("getter %d: nil value without an error", i)
		}
	}
	if failures != 1 {
		t.Errorf("%d getters saw the build error, want exactly 1 (the failed builder's caller)", failures)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("build ran %d times, want 2 (one failure, one successful rebuild)", n)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
	if c.Misses() != 2 || c.Hits() != getters-2 {
		t.Errorf("misses %d hits %d, want 2 and %d", c.Misses(), c.Hits(), getters-2)
	}

	// The failure was not cached: a fresh lookup is a clean hit.
	_, hit, err := c.Instance("design", func() (*instance, error) {
		t.Error("successful entry rebuilt")
		return nil, nil
	})
	if err != nil || !hit {
		t.Errorf("post-failure lookup: hit=%v err=%v, want cached success", hit, err)
	}
}

// TestCacheSingleflightPanicReleasesWaiters: a builder that panics (the
// "service/cache/build" failpoint's panic action) must evict its entry
// and release the waiters before the panic unwinds — a hung waiter here
// is a hung worker in production.
func TestCacheSingleflightPanicReleasesWaiters(t *testing.T) {
	if err := failpoint.Enable("service/cache/build", "1*panic(cache chaos)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisableAll)

	c := NewCache()
	const getters = 6
	var panics, successes atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < getters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(failpoint.PanicValue); !ok {
						t.Errorf("unexpected panic value %v", r)
					}
					panics.Add(1)
				}
			}()
			<-start
			if _, _, err := c.Instance("design", func() (*instance, error) {
				return &instance{}, nil
			}); err == nil {
				successes.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait() // completing at all proves no waiter hung

	if panics.Load() != 1 {
		t.Errorf("%d getters panicked, want exactly 1 (the one-shot failpoint)", panics.Load())
	}
	if successes.Load() != getters-1 {
		t.Errorf("%d getters succeeded, want %d", successes.Load(), getters-1)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}

// sseEvent is one parsed SSE frame: the id: field and the decoded data.
type sseEvent struct {
	id uint64
	ev Event
}

// readSSE consumes a job's event stream until the first "result" event,
// pairing each data frame with its id: field. extraHeader optionally
// sets Last-Event-ID for resume tests.
func readSSE(t *testing.T, ts *httptest.Server, id, lastEventID string) []sseEvent {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var out []sseEvent
	var curID uint64
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			curID = n
		case strings.HasPrefix(line, "data: "):
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE payload %q: %v", line, err)
			}
			out = append(out, sseEvent{id: curID, ev: ev})
			if ev.Type == "result" {
				return out
			}
		}
	}
	t.Fatalf("stream ended before a result event (%d events)", len(out))
	return nil
}

// TestSSEResumeFromLastEventID: a client reconnecting with Last-Event-ID
// receives exactly the retained events after that sequence number — no
// duplicates of what it already saw, nothing skipped — with the id:
// field of each frame matching the payload's seq.
func TestSSEResumeFromLastEventID(t *testing.T) {
	_, ts := newTestServer(t, Options{}, func(ctx context.Context, j *Job) error {
		for i := 1; i <= 3; i++ {
			j.PublishProgress(progressEvent("calibrate", i, 3))
		}
		return nil
	})
	st := submitSpec(t, ts, JobSpec{Kind: KindDetect, Case: "s35932-T200"})
	waitState(t, ts, st.ID, StateDone)

	// The finished job's stream: seq 1 = running, 2..4 = progress, 5 = result.
	// Resuming after seq 2 must replay exactly 3, 4, 5.
	events := readSSE(t, ts, st.ID, "2")
	if len(events) != 3 {
		t.Fatalf("resume after seq 2 replayed %d events, want 3: %+v", len(events), events)
	}
	for i, want := range []uint64{3, 4, 5} {
		if events[i].id != want || events[i].ev.Seq != want {
			t.Errorf("event %d: id %d seq %d, want %d", i, events[i].id, events[i].ev.Seq, want)
		}
	}
	if events[0].ev.Type != "progress" || events[0].ev.Progress == nil || events[0].ev.Progress.Step != 2 {
		t.Errorf("first resumed event = %+v, want progress step 2", events[0].ev)
	}
	if events[2].ev.Type != "result" || events[2].ev.State != StateDone {
		t.Errorf("last resumed event = %+v, want done result", events[2].ev)
	}

	// A resume from the last seen id replays only the result.
	tail := readSSE(t, ts, st.ID, "4")
	if len(tail) != 1 || tail[0].ev.Type != "result" {
		t.Errorf("resume after seq 4 = %+v, want just the result", tail)
	}
}

// TestSSEHeartbeatComments: a quiet stream carries periodic comment
// lines so intermediaries do not time it out, and the heartbeat does not
// disturb the event framing — the result still arrives intact.
func TestSSEHeartbeatComments(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestServer(t, Options{Heartbeat: 15 * time.Millisecond}, func(ctx context.Context, j *Job) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	st := submitSpec(t, ts, JobSpec{Kind: KindDetect, Case: "s35932-T200"})

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	heartbeats := 0
	sawResult := false
	released := false
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, ":") {
			heartbeats++
			if heartbeats >= 2 && !released {
				released = true
				close(release)
			}
			continue
		}
		if strings.HasPrefix(line, "data: ") {
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE payload after heartbeats %q: %v", line, err)
			}
			if ev.Type == "result" {
				sawResult = true
				break
			}
		}
	}
	if heartbeats < 2 {
		t.Errorf("saw %d heartbeat comments, want >= 2", heartbeats)
	}
	if !sawResult {
		t.Error("stream ended without the result event")
	}
}

// TestRetryAcquisitionFaultBitIdentical drives the real pipeline: a
// one-shot fault injected into the device's acquisition path aborts the
// first attempt, the worker classifies it transient and retries, and the
// clean re-run's report is bit-identical to an un-faulted control run —
// the chaos leaves no trace in the artifact.
func TestRetryAcquisitionFaultBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline over HTTP")
	}
	_, ts := newTestServer(t, fastRetry(Options{}), nil) // nil hook: real pipeline
	spec := JobSpec{Kind: KindDetect, Case: "s35932-T200", Scale: 0.02, Clean: true, Workers: 2}

	control := submitSpec(t, ts, spec)
	want := waitState(t, ts, control.ID, StateDone)
	wantJSON, err := json.Marshal(want.Report)
	if err != nil {
		t.Fatal(err)
	}

	if err := failpoint.Enable("core/acquire", "1*error(acquire chaos)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisableAll)

	faulted := submitSpec(t, ts, spec)
	got := waitState(t, ts, faulted.ID, StateDone)
	if got.Attempts != 2 {
		t.Errorf("faulted job took %d attempts, want 2", got.Attempts)
	}
	gotJSON, err := json.Marshal(got.Report)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("retried report differs from un-faulted control:\nretried: %s\ncontrol: %s", gotJSON, wantJSON)
	}
	if stats := getStats(t, ts); stats.JobsRetried != 1 {
		t.Errorf("jobs_retried = %d, want 1", stats.JobsRetried)
	}
}

// TestChaosFailpointMatrix sweeps the service's failpoints one at a time
// over a small job burst and requires the same liveness invariant from
// each: every job reaches a terminal state (no hung worker, no lost
// job), and the server drains cleanly afterwards.
func TestChaosFailpointMatrix(t *testing.T) {
	cases := []struct {
		name string
		spec string
	}{
		{"service/worker/run", "2*error(run chaos)"},
		{"service/worker/run", "1*panic(run chaos)"},
		{"service/cache/build", "1*error(cache chaos)"},
		{"journal/append", "each(2)*error(journal chaos)"},
		{"journal/fsync", "p(0.5,7)*error(fsync chaos)"},
		{"service/recovery", "1*error(recovery chaos)"},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s=%s", tc.name, tc.spec), func(t *testing.T) {
			if err := failpoint.Enable(tc.name, tc.spec); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(failpoint.DisableAll)

			_, ts := newTestServer(t, fastRetry(Options{Workers: 2, DataDir: t.TempDir(), NoSync: true}),
				func(ctx context.Context, j *Job) error { return nil })
			ids := make([]string, 0, 4)
			for i := 0; i < 4; i++ {
				st := submitSpec(t, ts, JobSpec{Kind: KindDetect, Case: "s35932-T200"})
				ids = append(ids, st.ID)
			}
			// Every job terminates — done after retries, or failed with an
			// attributed error. Nothing hangs, nothing vanishes.
			deadline := time.Now().Add(10 * time.Second)
			for _, id := range ids {
				for {
					if time.Now().After(deadline) {
						t.Fatalf("job %s never reached a terminal state", id)
					}
					code, st := getStatus(t, ts, id)
					if code != http.StatusOK {
						t.Fatalf("job %s lost: HTTP %d", id, code)
					}
					if st.State.Terminal() {
						if st.State == StateFailed && st.Error == "" {
							t.Errorf("job %s failed with no attributed error", id)
						}
						break
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
		})
	}
}
