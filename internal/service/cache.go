package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"superpose/internal/atpg"
	"superpose/internal/failpoint"
	"superpose/internal/fusion"
	"superpose/internal/netlist"
	"superpose/internal/scan"
	"superpose/internal/trojan"
)

// Cache is the service's content-addressed artifact store. Jobs that
// share inputs share the expensive intermediates — a parsed/built
// netlist instance and the ATPG seed pattern set — so a repeat
// submission skips netlist construction and ATPG entirely. Keys are
// derived from content (the benchmark case name and scale, or the
// sha-256 of an inline .bench source) plus every knob that shapes the
// artifact; worker counts are deliberately excluded because the flow is
// bit-identical at any parallelism.
//
// Cached artifacts are shared across concurrent jobs and MUST be
// treated as immutable — the same contract WithSharedSeeds already
// establishes for seed patterns fanned out across a lot's dies.
//
// The cache is unbounded: the artifact universe is small (a handful of
// benchmark circuits per service lifetime), so eviction would buy
// nothing but complexity.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheEntry struct {
	ready chan struct{} // closed once val/err are set
	val   any
	err   error
}

// NewCache returns an empty artifact cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// Hits returns the number of lookups served from the cache.
func (c *Cache) Hits() uint64 { return c.hits.Load() }

// Misses returns the number of lookups that had to build the artifact.
func (c *Cache) Misses() uint64 { return c.misses.Load() }

// Len returns the number of cached artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// do returns the artifact for key, building it at most once across
// concurrent callers (duplicate-suppression a la singleflight: late
// callers block on the first builder's ready channel). hit reports
// whether the artifact already existed.
//
// A failed build is not cached and must not poison its waiters: the
// builder evicts the entry exactly once (by identity, so it can never
// evict a successor's entry) and returns its own error, while every
// waiter that observed the failure loops and retries — becoming the
// next builder or waiting on one. Each caller builds at most once, so
// with N concurrent callers the loop terminates after at most N build
// completions.
func (c *Cache) do(key string, build func() (any, error)) (val any, hit bool, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.mu.Unlock()
			<-e.ready
			if e.err != nil {
				continue // the build we waited on failed; retry
			}
			c.hits.Add(1)
			return e.val, true, nil
		}
		e := &cacheEntry{ready: make(chan struct{})}
		c.entries[key] = e
		c.mu.Unlock()

		c.misses.Add(1)
		built := false
		evict := func() {
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
		}
		defer func() {
			if !built {
				// build panicked: evict and release the waiters (they
				// retry) before the panic continues unwinding.
				evict()
				close(e.ready)
			}
		}()
		if ferr := failpoint.Inject("service/cache/build"); ferr != nil {
			e.err = ferr
		} else {
			e.val, e.err = build()
		}
		built = true
		if e.err != nil {
			evict()
		}
		close(e.ready)
		return e.val, false, e.err
	}
}

// instance is a materialized design: the defender's golden view and the
// manufactured reality, plus ground truth when a Trojan was inserted.
type instance struct {
	golden   *netlist.Netlist
	physical *netlist.Netlist
	truth    *trojan.Instance // nil on a clean die
}

// Instance returns the materialized netlists for key.
func (c *Cache) Instance(key string, build func() (*instance, error)) (*instance, bool, error) {
	v, hit, err := c.do(key, func() (any, error) { return build() })
	if err != nil {
		return nil, false, err
	}
	return v.(*instance), hit, nil
}

// Seeds returns the ATPG seed pattern set for key.
func (c *Cache) Seeds(key string, build func() ([]*scan.Pattern, error)) ([]*scan.Pattern, bool, error) {
	v, hit, err := c.do(key, func() (any, error) { return build() })
	if err != nil {
		return nil, false, err
	}
	return v.([]*scan.Pattern), hit, nil
}

// Calibration returns the trained fusion operating point for key. The
// training lot is the most expensive artifact the service builds, so
// repeat fused submissions of the same design must share one
// calibration — which the fusion determinism contract permits: the
// trained threshold is bit-identical regardless of who trained it.
func (c *Cache) Calibration(key string, build func() (fusion.Calibration, error)) (fusion.Calibration, bool, error) {
	v, hit, err := c.do(key, func() (any, error) { return build() })
	if err != nil {
		return fusion.Calibration{}, false, err
	}
	return v.(fusion.Calibration), hit, nil
}

// instanceKey derives the cache key for a job's materialized design.
func instanceKey(spec JobSpec) string {
	if spec.Case != "" {
		return fmt.Sprintf("case:%s@%g|clean=%v", spec.Case, spec.Scale, spec.Clean)
	}
	sum := sha256.Sum256([]byte(spec.Bench))
	return fmt.Sprintf("bench:%s|infect=%d|clean=%v", hex.EncodeToString(sum[:]), spec.Infect, spec.Clean)
}

// seedsKey derives the cache key for a design's ATPG seed set: the
// instance key (seeds depend only on the golden netlist) plus the scan
// configuration and every ATPG knob that shapes the pattern set.
// Workers is omitted: generation is bit-identical at any count.
func seedsKey(ikey string, chains int, o atpg.Options) string {
	return fmt.Sprintf("%s|chains=%d|atpg=bt%d,r%d,mp%d,mf%d,fs%d,s%d,nd%d",
		ikey, chains, o.BacktrackLimit, o.RandomPatterns, o.MaxPatterns,
		o.MaxFaults, o.FaultSample, o.Seed, o.NDetect)
}

// calibrationKey derives the cache key for a design's fusion
// calibration: the seed-set key (the training lot reuses the shared
// seeds) plus every knob that shapes the clean training lot. Clean and
// infected submissions of the same design deliberately share a key —
// the calibration trains on the golden netlist either way.
func calibrationKey(skey string, spec JobSpec) string {
	return fmt.Sprintf("%s|cal=vs%g,t%s,ts%d,cs%d", skey, spec.Varsigma, spec.Tester, spec.TesterSeed, spec.ChipSeed)
}
