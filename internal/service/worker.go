package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"

	"superpose/internal/atpg"
	"superpose/internal/bench"
	"superpose/internal/core"
	"superpose/internal/power"
	"superpose/internal/scan"
	"superpose/internal/tester"
	"superpose/internal/trojan"
	"superpose/internal/trust"
)

// workerLoop consumes the queue until it is closed and drained. One
// goroutine per configured worker; each job runs under its own context
// (derived from the server's base context at submission time) so
// DELETE /v1/jobs/{id} aborts exactly that job mid-flow.
func (s *Server) workerLoop() {
	defer s.wg.Done()
	for j := range s.queue.Jobs() {
		s.counters.queueDepth.Store(int64(s.queue.Depth()))
		if j.ctx.Err() != nil {
			// Cancelled while queued; Cancel already finished the job.
			j.finish(StateCancelled, j.ctx.Err())
			s.counters.jobsCancelled.Add(1)
			continue
		}
		if !j.start() {
			s.counters.jobsCancelled.Add(1)
			continue
		}
		run := s.runHook
		if run == nil {
			run = s.execute
		}
		err := run(j.ctx, j)
		switch {
		case err == nil:
			j.finish(StateDone, nil)
			s.counters.jobsCompleted.Add(1)
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			j.finish(StateCancelled, err)
			s.counters.jobsCancelled.Add(1)
		default:
			j.finish(StateFailed, err)
			s.counters.jobsFailed.Add(1)
		}
	}
}

// execute runs one certification job end to end: materialize the design
// (cache), resolve the ATPG seed set (cache), then drive the core flow
// under the job's context with progress forwarded to subscribers.
func (s *Server) execute(ctx context.Context, j *Job) error {
	spec := j.Spec
	inst, hit, err := s.materialize(spec)
	if err != nil {
		return fmt.Errorf("materialize: %w", err)
	}
	j.setCacheHit(hit)

	cfg, faultCfg, workers, err := s.buildConfig(j, inst)
	if err != nil {
		return err
	}
	cfg.Progress = j.publishProgress

	lib := power.SAED90Like()
	switch spec.Kind {
	case KindLot:
		lr, err := core.CertifyLotContext(ctx, inst.golden, lib, inst.physical, cfg, core.LotOptions{
			Dies:        spec.Dies,
			Variation:   power.ThreeSigmaIntra(spec.Varsigma),
			Seed:        spec.ChipSeed,
			Tester:      faultCfg,
			Acquisition: cfg.Acquisition,
			Workers:     workers,
			Progress:    j.publishProgress,
		})
		if err != nil {
			return err
		}
		j.setResult(nil, lr)
		return nil

	case KindDetect:
		chip := power.Manufacture(inst.physical, lib, power.ThreeSigmaIntra(spec.Varsigma), spec.ChipSeed)
		dev := core.NewDevice(chip, cfg.NumChains, cfg.Mode)
		if faultCfg.Enabled() {
			dev.SetFaultModel(tester.New(faultCfg))
		}
		rep, err := core.DetectContext(ctx, inst.golden, lib, dev, cfg)
		if err != nil {
			return err
		}
		j.setResult(rep, nil)
		return nil

	default:
		return fmt.Errorf("unknown job kind %q", spec.Kind)
	}
}

// materialize resolves the job's design through the artifact cache.
func (s *Server) materialize(spec JobSpec) (*instance, bool, error) {
	return s.cache.Instance(instanceKey(spec), func() (*instance, error) {
		if spec.Case != "" {
			parts := strings.SplitN(spec.Case, "-", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("case %q: want <bench>-<trojan>", spec.Case)
			}
			ti, err := trust.Build(trust.Case{Benchmark: parts[0], Trojan: parts[1]}, spec.Scale)
			if err != nil {
				return nil, err
			}
			if spec.Clean {
				return &instance{golden: ti.Host, physical: ti.Host}, nil
			}
			return &instance{golden: ti.Host, physical: ti.Infected, truth: ti}, nil
		}
		host, err := bench.Parse(strings.NewReader(spec.Bench), "user")
		if err != nil {
			return nil, err
		}
		if spec.Clean || spec.Infect == 0 {
			return &instance{golden: host, physical: host}, nil
		}
		ti, err := trojan.AutoInsert(host, spec.Infect)
		if err != nil {
			return nil, err
		}
		return &instance{golden: host, physical: ti.Infected, truth: ti}, nil
	})
}

// buildConfig assembles the core flow configuration for a job and
// resolves its ATPG seed set through the cache, so every die and every
// repeat submission of the same design reuses one pattern set — which
// also makes a service run bit-identical to a library run that shares
// seeds via core.WithSharedSeeds.
func (s *Server) buildConfig(j *Job, inst *instance) (core.Config, tester.Config, int, error) {
	spec := j.Spec
	workers := spec.Workers
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	faultCfg, err := tester.Preset(spec.Tester, spec.TesterSeed)
	if err != nil {
		return core.Config{}, tester.Config{}, 0, err
	}
	acq := core.NaiveAcquisition()
	if faultCfg.Enabled() {
		acq = core.RobustAcquisition()
	}
	cfg := core.Config{
		NumChains:   spec.Chains,
		MaxSeeds:    spec.Seeds,
		Varsigma:    spec.Varsigma,
		ATPG:        atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120, Workers: workers},
		Acquisition: acq,
	}

	ikey := instanceKey(spec)
	seeds, hit, err := s.cache.Seeds(seedsKey(ikey, cfg.NumChains, cfg.ATPG), func() ([]*scan.Pattern, error) {
		ch := scan.Configure(inst.golden, cfg.NumChains)
		gen, err := atpg.Generate(ch, cfg.ATPG)
		if err != nil {
			return nil, err
		}
		return gen.Patterns, nil
	})
	if err != nil {
		return core.Config{}, tester.Config{}, 0, fmt.Errorf("seed generation: %w", err)
	}
	j.setCacheHit(hit)
	cfg.SeedPatterns = seeds
	return cfg, faultCfg, workers, nil
}
