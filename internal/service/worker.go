package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"time"

	"superpose/internal/atpg"
	"superpose/internal/bench"
	"superpose/internal/core"
	"superpose/internal/delay"
	"superpose/internal/failpoint"
	"superpose/internal/fusion"
	"superpose/internal/parallel"
	"superpose/internal/power"
	"superpose/internal/retry"
	"superpose/internal/scan"
	"superpose/internal/tester"
	"superpose/internal/timing"
	"superpose/internal/trojan"
	"superpose/internal/trust"
)

// workerLoop consumes the queue until it is closed and drained. One
// goroutine per configured worker; each job runs under its own context
// (derived from the server's base context at submission time) so
// DELETE /v1/jobs/{id} aborts exactly that job mid-flow.
func (s *Server) workerLoop() {
	defer s.wg.Done()
	for j := range s.queue.Jobs() {
		s.counters.queueDepth.Store(int64(s.queue.Depth()))
		s.tenantAdd(j.Spec.Tenant, -1)
		if j.ctx.Err() != nil {
			// Cancelled while queued; Cancel already finished the job.
			j.finish(StateCancelled, j.ctx.Err())
			s.journalFinish(j)
			s.counters.jobsCancelled.Add(1)
			continue
		}
		if !j.start() {
			s.journalFinish(j)
			s.counters.jobsCancelled.Add(1)
			continue
		}
		s.runJob(j)
	}
}

// errJobPanic wraps a panic recovered from a job run. Classified
// transient: a panicking worker must neither crash the pool nor doom a
// job that a clean re-run would complete (the flow itself is
// deterministic, but injected chaos and tester faults are not).
var errJobPanic = errors.New("service: job panicked")

// runJob drives one job to a terminal state: attempt, classify, retry
// transient failures with decorrelated-jitter backoff while attempts
// and the server-wide retry budget last, then finish and settle the
// books (counters, breaker, journal).
func (s *Server) runJob(j *Job) {
	run := s.runHook
	if run == nil {
		run = s.opts.Runner
	}
	if run == nil {
		run = s.execute
	}

	// The per-job deadline spans all attempts: TimeoutSec is a promise
	// about wall-clock time, not per-try patience.
	ctx := j.ctx
	if j.Spec.TimeoutSec > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(j.Spec.TimeoutSec*float64(time.Second)))
		defer cancel()
	}

	backoff := retry.Policy{
		MaxAttempts: s.opts.MaxAttempts,
		BaseDelay:   s.opts.RetryBase,
		MaxDelay:    s.opts.RetryMax,
		Seed:        jobSeed(j.ID),
	}.Backoff()

	var err error
	for {
		attempt := j.nextAttempt()
		s.journalStart(j, attempt)
		err = s.runSafe(ctx, run, j)
		if err == nil || ctx.Err() != nil || !transientErr(err) {
			break
		}
		if attempt >= s.opts.MaxAttempts {
			err = fmt.Errorf("service: %d attempts exhausted: %w", attempt, err)
			break
		}
		if !s.retryBudget.Withdraw() {
			err = fmt.Errorf("service: retry budget exhausted: %w", err)
			break
		}
		s.counters.jobsRetried.Add(1)
		j.publishRetry(attempt, err)
		if retry.Sleep(ctx, backoff.Next()) != nil {
			break // cancelled or deadlined during backoff; classify below
		}
	}

	br := s.breaker(j.Spec.Tester)
	switch {
	case err == nil:
		j.finish(StateDone, nil)
		s.counters.jobsCompleted.Add(1)
		s.retryBudget.Deposit()
		br.Success()
	case errors.Is(err, context.DeadlineExceeded) && j.ctx.Err() == nil:
		// The job's own TimeoutSec expired (the submission-scoped context
		// is still live) — reported distinctly from cancellation.
		j.finish(StateDeadline, fmt.Errorf("service: timeout_sec=%gs exceeded: %w", j.Spec.TimeoutSec, err))
		s.counters.jobsDeadline.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.finish(StateCancelled, err)
		s.counters.jobsCancelled.Add(1)
	default:
		j.finish(StateFailed, err)
		s.counters.jobsFailed.Add(1)
		br.Failure()
	}
	s.journalFinish(j)
}

// runSafe is one attempt with panic containment; the "service/worker/
// run" failpoint injects chaos between dequeue and execution.
func (s *Server) runSafe(ctx context.Context, run func(context.Context, *Job) error, j *Job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", errJobPanic, r)
		}
	}()
	if err := failpoint.Inject("service/worker/run"); err != nil {
		return err
	}
	return run(ctx, j)
}

// transientErr classifies a failed attempt: true means a clean re-run
// has a real chance (tester instability, injected chaos, a recovered
// panic anywhere in the fan-out); false means the failure is
// deterministic and retrying would just repeat it.
func transientErr(err error) bool {
	if errors.Is(err, core.ErrUnstable) || errors.Is(err, failpoint.ErrInjected) || errors.Is(err, errJobPanic) {
		return true
	}
	var pe *parallel.PanicError
	return errors.As(err, &pe)
}

// jobSeed derives the backoff jitter seed from the job ID: stable per
// job (deterministic tests) and distinct across jobs (no retry
// synchronization between concurrent workers).
func jobSeed(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64()
}

// execute runs one certification job end to end: materialize the design
// (cache), resolve the ATPG seed set (cache), then drive the core flow
// under the job's context with progress forwarded to subscribers.
func (s *Server) execute(ctx context.Context, j *Job) error {
	spec := j.Spec
	inst, hit, err := s.materialize(spec)
	if err != nil {
		return fmt.Errorf("materialize: %w", err)
	}
	j.SetCacheHit(hit)

	cfg, faultCfg, workers, err := s.buildConfig(j, inst)
	if err != nil {
		return err
	}
	cfg.Progress = j.PublishProgress

	lib := power.SAED90Like()
	if cfg.Channel == core.ChannelFused {
		cal, err := s.trainCalibration(ctx, j, inst, cfg, faultCfg, workers)
		if err != nil {
			return fmt.Errorf("fusion calibration: %w", err)
		}
		cfg.Fusion = &cal
	}
	switch spec.Kind {
	case KindLot:
		lr, err := core.CertifyLotContext(ctx, inst.golden, lib, inst.physical, cfg, core.LotOptions{
			Dies:        spec.Dies,
			Variation:   power.ThreeSigmaIntra(spec.Varsigma),
			Seed:        spec.ChipSeed,
			Tester:      faultCfg,
			Acquisition: cfg.Acquisition,
			Workers:     workers,
			Progress:    j.PublishProgress,
		})
		if err != nil {
			return err
		}
		j.SetResult(nil, lr)
		return nil

	case KindDetect:
		chip := power.Manufacture(inst.physical, lib, power.ThreeSigmaIntra(spec.Varsigma), spec.ChipSeed)
		dev := core.NewDevice(chip, cfg.NumChains, cfg.Mode)
		defer dev.Close()
		if cfg.Channel.UsesDelay() {
			dev.SetDelayChip(delay.Manufacture(inst.physical, timing.SAED90LikeDelays(),
				power.ThreeSigmaIntra(spec.Varsigma), spec.ChipSeed))
		}
		if faultCfg.Enabled() {
			dev.SetFaultModel(tester.New(faultCfg))
		}
		rep, err := core.DetectContext(ctx, inst.golden, lib, dev, cfg)
		if err != nil {
			return err
		}
		j.SetResult(rep, nil)
		return nil

	default:
		return fmt.Errorf("unknown job kind %q", spec.Kind)
	}
}

// calibrationDies sizes the clean control lot a fused job trains its
// calibration on.
const calibrationDies = 8

// trainCalibration resolves a fused job's learned operating point
// through the artifact cache: certify a clean control lot of the
// job's golden design under the job's tester preset, then train the
// fusion threshold on the per-die (power, delay) observations. The
// training lot's seeds are decorrelated from the job's own die so the
// evaluated die is held out of its calibration.
func (s *Server) trainCalibration(ctx context.Context, j *Job, inst *instance,
	cfg core.Config, faultCfg tester.Config, workers int) (fusion.Calibration, error) {
	spec := j.Spec
	key := calibrationKey(seedsKey(instanceKey(spec), cfg.NumChains, cfg.ATPG), spec)
	cal, hit, err := s.cache.Calibration(key, func() (fusion.Calibration, error) {
		tcfg := cfg
		tcfg.Fusion = nil
		tcfg.Progress = nil
		tc := faultCfg
		tc.Seed = parallel.Mix(spec.TesterSeed, 0x5EED)
		lr, err := core.CertifyLotContext(ctx, inst.golden, power.SAED90Like(), inst.golden, tcfg, core.LotOptions{
			Dies:        calibrationDies,
			Variation:   power.ThreeSigmaIntra(spec.Varsigma),
			Seed:        parallel.Mix(spec.ChipSeed, 0xCA1),
			Tester:      tc,
			Acquisition: tcfg.Acquisition,
			Workers:     workers,
		})
		if err != nil {
			return fusion.Calibration{}, err
		}
		obs := make([]fusion.Observation, 0, len(lr.Dies))
		for _, d := range lr.Dies {
			obs = append(obs, fusion.Observation{Power: d.FinalMag, Delay: d.DelayMag})
		}
		return fusion.Train(obs, 0), nil
	})
	j.SetCacheHit(hit)
	return cal, err
}

// materialize resolves the job's design through the artifact cache.
func (s *Server) materialize(spec JobSpec) (*instance, bool, error) {
	return s.cache.Instance(instanceKey(spec), func() (*instance, error) {
		if spec.Case != "" {
			parts := strings.SplitN(spec.Case, "-", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("case %q: want <bench>-<trojan>", spec.Case)
			}
			ti, err := trust.Build(trust.Case{Benchmark: parts[0], Trojan: parts[1]}, spec.Scale)
			if err != nil {
				return nil, err
			}
			if spec.Clean {
				return &instance{golden: ti.Host, physical: ti.Host}, nil
			}
			return &instance{golden: ti.Host, physical: ti.Infected, truth: ti}, nil
		}
		host, err := bench.Parse(strings.NewReader(spec.Bench), "user")
		if err != nil {
			return nil, err
		}
		if spec.Clean || spec.Infect == 0 {
			return &instance{golden: host, physical: host}, nil
		}
		ti, err := trojan.AutoInsert(host, spec.Infect)
		if err != nil {
			return nil, err
		}
		return &instance{golden: host, physical: ti.Infected, truth: ti}, nil
	})
}

// buildConfig assembles the core flow configuration for a job and
// resolves its ATPG seed set through the cache, so every die and every
// repeat submission of the same design reuses one pattern set — which
// also makes a service run bit-identical to a library run that shares
// seeds via core.WithSharedSeeds.
func (s *Server) buildConfig(j *Job, inst *instance) (core.Config, tester.Config, int, error) {
	spec := j.Spec
	workers := spec.Workers
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	faultCfg, err := tester.Preset(spec.Tester, spec.TesterSeed)
	if err != nil {
		return core.Config{}, tester.Config{}, 0, err
	}
	acq := core.NaiveAcquisition()
	if faultCfg.Enabled() {
		acq = core.RobustAcquisition()
	}
	channel, err := core.ParseChannel(spec.Channel)
	if err != nil {
		return core.Config{}, tester.Config{}, 0, err
	}
	cfg := core.Config{
		NumChains:   spec.Chains,
		MaxSeeds:    spec.Seeds,
		Varsigma:    spec.Varsigma,
		ATPG:        atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120, Workers: workers},
		Acquisition: acq,
		Channel:     channel,
	}

	ikey := instanceKey(spec)
	seeds, hit, err := s.cache.Seeds(seedsKey(ikey, cfg.NumChains, cfg.ATPG), func() ([]*scan.Pattern, error) {
		ch := scan.Configure(inst.golden, cfg.NumChains)
		gen, err := atpg.Generate(ch, cfg.ATPG)
		if err != nil {
			return nil, err
		}
		return gen.Patterns, nil
	})
	if err != nil {
		return core.Config{}, tester.Config{}, 0, fmt.Errorf("seed generation: %w", err)
	}
	j.SetCacheHit(hit)
	cfg.SeedPatterns = seeds
	return cfg, faultCfg, workers, nil
}
