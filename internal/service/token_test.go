package service

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
)

// TestSubmitTokenIdempotent: resubmitting with the same submit token
// returns the existing job instead of spawning a duplicate — the fence
// that lets a cluster coordinator resend a dispatch after a crash
// without running the job twice — and the mapping survives a restart
// via the journal.
func TestSubmitTokenIdempotent(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	s1 := newJournaledServer(t, dir, Options{Workers: 1}, func(ctx context.Context, j *Job) error {
		runs.Add(1)
		return nil
	})
	s1.Start()

	spec := quickSpec
	spec.SubmitToken = "dispatch-tok-1"
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s1.Submit(spec)
	if err != nil {
		t.Fatalf("token resubmit: %v", err)
	}
	if j2.ID != j1.ID {
		t.Fatalf("token resubmit created job %s, want existing %s", j2.ID, j1.ID)
	}
	waitTerminal(t, j1, StateDone)
	if got := runs.Load(); got != 1 {
		t.Fatalf("job ran %d times, want 1", got)
	}
	drainServer(t, s1)

	// Restart: the journal replays the token mapping, so a dispatcher
	// retrying across the restart still lands on the same job.
	s2 := newJournaledServer(t, dir, Options{Workers: 1}, func(ctx context.Context, j *Job) error {
		runs.Add(1)
		return nil
	})
	s2.Start()
	defer drainServer(t, s2)
	j3, err := s2.Submit(spec)
	if err != nil {
		t.Fatalf("token resubmit after restart: %v", err)
	}
	if j3.ID != j1.ID {
		t.Fatalf("post-restart token resubmit = %s, want %s", j3.ID, j1.ID)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("job ran %d times across the restart, want 1", got)
	}

	// A token is an opaque fence, not a payload: bound at 128 bytes.
	long := quickSpec
	long.SubmitToken = strings.Repeat("x", 129)
	if _, err := s2.Submit(long); err == nil {
		t.Fatal("oversized submit token accepted, want validation error")
	}
}
