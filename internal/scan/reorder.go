package scan

import (
	"sort"

	"superpose/internal/netlist"
)

// ReorderByConnectivity builds a scan configuration whose chains group
// structurally adjacent flip-flops, in the spirit of Salmani &
// Tehranipoor's layout-aware scan-cell reordering (the paper's [15]): when
// the cells of one chain sit in one logic region, per-region activation
// (one chain at a time) quiets the rest of the design more effectively.
//
// Connectivity is approximated structurally: two flip-flops are close when
// one's output cone feeds the other's D-cone within `radius` combinational
// levels. Chains are grown greedily from unvisited cells in declaration
// order, so the result is deterministic.
func ReorderByConnectivity(n *netlist.Netlist, numChains int, radius int) *Chains {
	ffs := n.ScanFFs()
	if len(ffs) == 0 || numChains < 1 {
		return Configure(n, numChains)
	}
	if numChains > len(ffs) {
		numChains = len(ffs)
	}
	if radius < 1 {
		radius = 2
	}

	// adjacency[i][j]: cells i and j share combinational structure.
	index := make(map[int]int, len(ffs)) // gate ID -> ffs index
	for i, ff := range ffs {
		index[ff] = i
	}
	adj := make([][]int, len(ffs))
	for i, ff := range ffs {
		// Forward cone of the cell's output, bounded by radius levels.
		reached := coneForward(n, ff, radius)
		seen := map[int]bool{}
		for _, id := range reached {
			// A reached gate feeding some cell's D pin links the cells.
			for _, fo := range n.Fanouts(id) {
				if n.Gates[fo].Type == netlist.DFF {
					if j, ok := index[fo]; ok && j != i && !seen[j] {
						seen[j] = true
						adj[i] = append(adj[i], j)
					}
				}
			}
		}
		sort.Ints(adj[i])
	}

	// Greedy chain growth: start at the first unvisited cell, repeatedly
	// append the lowest-numbered unvisited neighbour (BFS order), falling
	// back to the next unvisited cell when the frontier dries up.
	target := (len(ffs) + numChains - 1) / numChains
	visited := make([]bool, len(ffs))
	var chainsOut [][]int
	var current []int

	flush := func() {
		if len(current) > 0 {
			chainsOut = append(chainsOut, current)
			current = nil
		}
	}
	var queue []int
	push := func(i int) {
		if !visited[i] {
			visited[i] = true
			queue = append(queue, i)
		}
	}
	for next := 0; next < len(ffs); {
		if len(queue) == 0 {
			for next < len(ffs) && visited[next] {
				next++
			}
			if next == len(ffs) {
				break
			}
			push(next)
		}
		i := queue[0]
		queue = queue[1:]
		current = append(current, ffs[i])
		if len(current) == target {
			// Region full: release the queued-but-unplaced cells back to
			// the pool and start a fresh chain elsewhere.
			for _, k := range queue {
				visited[k] = false
			}
			queue = nil
			flush()
		}
		for _, j := range adj[i] {
			push(j)
		}
	}
	flush()

	// Assemble a Chains directly (Configure would re-partition by
	// declaration order).
	c := &Chains{n: n, pos: make(map[int]CellPos, len(ffs))}
	for ci, chain := range chainsOut {
		c.chains = append(c.chains, chain)
		for j, ff := range chain {
			c.pos[ff] = CellPos{Chain: ci, Index: j}
		}
	}
	return c
}

// coneForward collects gate IDs reachable from start within `levels`
// combinational steps (not crossing flip-flops).
func coneForward(n *netlist.Netlist, start, levels int) []int {
	type item struct{ id, depth int }
	var out []int
	seen := map[int]bool{start: true}
	queue := []item{{start, 0}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		out = append(out, it.id)
		if it.depth == levels {
			continue
		}
		for _, fo := range n.Fanouts(it.id) {
			if n.Gates[fo].Type.IsSource() || seen[fo] {
				continue
			}
			seen[fo] = true
			queue = append(queue, item{fo, it.depth + 1})
		}
	}
	return out
}
