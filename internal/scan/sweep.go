package scan

import (
	"fmt"
	"math/bits"
	"sort"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/scratch"
	"superpose/internal/sim"
)

// Flip addresses one stimulus bit of a pattern: a scan bit (Chain >= 0)
// or a primary input (Chain == PIFlip, Index = PI position).
type Flip struct {
	Chain, Index int
}

// PIFlip is the sentinel Chain value marking a primary-input flip.
const PIFlip = -1

// IsPI reports whether the flip addresses a primary input.
func (f Flip) IsPI() bool { return f.Chain == PIFlip }

// srcFlip is one precomputed source perturbation: XOR bit into the word
// of source gate `gate` to apply that lane's flip.
type srcFlip struct {
	gate int
	bit  logic.Word
}

// capture is one LOC frame-2 re-capture: scannable flip-flop ff takes
// its frame-2 source from the frame-1 value of its D pin.
type capture struct {
	ff, dpin int
}

// chunkPlan is the structural, base-independent precomputation of one
// sweep chunk (up to 64 flips, one per simulator lane). The per-lane
// source perturbations are computed at construction — O(lanes), no
// netlist walk — while the structural cone state splits into two
// lazily derived tiers: the LOC re-capture list (one cone walk, needed
// by every evaluation path) and the compiled union-cone programs
// (needed only by the scalar evaluation path and materialized on a
// chunk's first scalar use). The PPSFP configuration propagates word
// deviations directly (sim.DeltaProp), so under it a sweep over a
// million-gate netlist never compiles a single cone program. Because
// the adaptive flow sweeps the same stimulus bits every step, whatever
// tier a chunk does materialize is reused for the whole run.
type chunkPlan struct {
	flips    []Flip
	f1Srcs   []srcFlip // frame-1 source bits to XOR, per lane
	f2Srcs   []srcFlip // frame-2 source bits to XOR (LOS scan cells, PIs)
	laneMask logic.Word

	// Lazily derived: ensureCaptures fills captures (trivial for LOS);
	// ensureCompiled fills the rest.
	capsDone bool
	captures []capture // LOC only: FFs re-captured from the frame-1 cone
	compiled bool
	order1   []int // levelized frame-1 union-cone evaluation order
	order2   []int // levelized frame-2 union-cone evaluation order
	prog1    *sim.Program
	prog2    *sim.Program
	progF    *sim.Program // LOS only: fused dual-frame program over the merged cone
	affected []int        // ascending union of every gate whose word may deviate
}

// Sweeper is the single-flip sweep engine of the adaptive flow (§IV-B):
// it evaluates every pattern that differs from a base pattern in exactly
// one stimulus bit, without materializing those patterns. The base
// pattern's frames are simulated once per Rebase and broadcast across
// all 64 lanes; each chunk then XORs its flips into the affected source
// words and re-evaluates only the union fanout cone of the flipped bits
// — the LOS transparency rule (§IV-A) guarantees the perturbation is
// local, and the full-scan structure keeps cones shallow (they stop at
// flip-flop D pins).
//
// The output of a chunk is a sparse (ids, masks) toggle encoding whose
// pricing through power.NominalLanesSparse / power.MeasureLanesSparse is
// bit-identical to launching the 64 cloned patterns through Engine.Launch
// and pricing the dense toggle masks: gates outside the union cone keep
// the base pattern's toggle state on every lane, gates inside carry their
// exactly re-simulated lane words, and the encoding preserves the
// ascending-gate-ID addition order of the dense path.
//
// A Sweeper owns its buffers and is not safe for concurrent use.
type Sweeper struct {
	ch    *Chains
	mode  Mode
	eng   *Engine // base-frame simulation
	plans []chunkPlan

	// Per-base state (valid after Rebase).
	f1b, f2b    []logic.Word // broadcast base frame values
	v1, v2      []logic.Word // working arrays; equal broadcast base between runs
	baseToggles []int        // ascending gate IDs toggling under the base pattern
	based       bool

	// Sparse output buffers, valid until the next Run, and the all-ones
	// mask template bulk-copied for unaffected base toggles (restored to
	// all-ones after a partial-lane chunk).
	ids   []int
	masks []logic.Word
	fill  []logic.Word

	// Delta-propagation fast-path state (PPSFP kind): one propagator per
	// frame, lazily built; gen is the base generation (bumped by Rebase
	// and Advance) and dpGen tracks which generation the propagators'
	// base words were gathered from. div is the per-Run scratch of
	// diverged gate IDs.
	gen    uint64
	dpGen  uint64
	dp1    *sim.DeltaProp
	dp2    *sim.DeltaProp
	div    []int32
	divmap []uint64

	roots []int // scratch for lazy cone-walk root lists
}

// NewSweeper builds a sweep engine over the scan configuration for the
// given flip list, in order: flip i is lane i%64 of chunk i/64. Setup
// is O(flips) plus pooled per-net buffers — the structural cone state
// of each chunk is derived lazily on its first use (see chunkPlan) —
// so per-lot construction cost stays flat as netlists grow. The
// base-frame launches use the default simulation backend; see
// NewSweeperKind.
func NewSweeper(ch *Chains, mode Mode, flips []Flip) (*Sweeper, error) {
	return NewSweeperKind(ch, mode, flips, sim.EngineAuto)
}

// NewSweeperKind is NewSweeper with an explicit simulation backend for
// the base-frame launches (Rebase). The kind also selects the chunk
// evaluation path — compiled per-chunk cone programs for the scalar
// kind, delta propagation for PPSFP — but results are bit-identical
// either way.
func NewSweeperKind(ch *Chains, mode Mode, flips []Flip, kind sim.EngineKind) (*Sweeper, error) {
	n := ch.Netlist()
	for _, f := range flips {
		if f.IsPI() {
			if f.Index < 0 || f.Index >= len(n.PIs) {
				return nil, fmt.Errorf("scan: sweep flip PI %d out of range (%d PIs)", f.Index, len(n.PIs))
			}
			continue
		}
		if f.Chain < 0 || f.Chain >= ch.NumChains() {
			return nil, fmt.Errorf("scan: sweep flip chain %d out of range (%d chains)", f.Chain, ch.NumChains())
		}
		if f.Index < 0 || f.Index >= len(ch.Chain(f.Chain)) {
			return nil, fmt.Errorf("scan: sweep flip cell %d.%d out of range (chain length %d)",
				f.Chain, f.Index, len(ch.Chain(f.Chain)))
		}
	}
	s := &Sweeper{
		ch:   ch,
		mode: mode,
		eng:  NewEngineKind(ch, kind),
		f1b:  scratch.Words(n.NumGates()),
		f2b:  scratch.Words(n.NumGates()),
		v1:   scratch.Words(n.NumGates()),
		v2:   scratch.Words(n.NumGates()),
		fill: scratch.Words(n.NumGates()),
		gen:  1,
	}
	for i := range s.fill {
		s.fill[i] = ^logic.Word(0)
	}
	for start := 0; start < len(flips); start += 64 {
		end := min(start+64, len(flips))
		s.plans = append(s.plans, buildPlanSources(ch, mode, flips[start:end]))
	}
	return s, nil
}

// Close returns the sweeper's pooled buffers (per-net working arrays,
// delta propagators, the base-launch engine) to the shared pools. The
// Sweeper must not be used afterwards; Close is idempotent.
func (s *Sweeper) Close() {
	if s.f1b == nil {
		return
	}
	scratch.PutWords(s.f1b)
	scratch.PutWords(s.f2b)
	scratch.PutWords(s.v1)
	scratch.PutWords(s.v2)
	scratch.PutWords(s.fill)
	s.f1b, s.f2b, s.v1, s.v2, s.fill = nil, nil, nil, nil, nil
	if s.divmap != nil {
		scratch.PutUint64s(s.divmap)
		s.divmap = nil
	}
	if s.dp1 != nil {
		s.dp1.Release()
		s.dp2.Release()
		s.dp1, s.dp2 = nil, nil
	}
	s.eng.Close()
	s.based = false
}

// buildPlanSources computes the eager tier of one chunk: the per-lane
// source perturbations and the lane mask. No netlist walk happens here.
func buildPlanSources(ch *Chains, mode Mode, flips []Flip) chunkPlan {
	n := ch.Netlist()
	p := chunkPlan{
		flips:    append([]Flip(nil), flips...),
		laneMask: ^logic.Word(0),
		capsDone: mode == LOS, // LOS has no re-captures, nothing to derive
	}
	if len(flips) < 64 {
		p.laneMask = logic.Word(1)<<uint(len(flips)) - 1
	}

	for lane, f := range flips {
		bit := logic.Word(1) << uint(lane)
		if f.IsPI() {
			// PIs hold across both frames under either mode.
			id := n.PIs[f.Index]
			p.f1Srcs = append(p.f1Srcs, srcFlip{id, bit})
			p.f2Srcs = append(p.f2Srcs, srcFlip{id, bit})
			continue
		}
		chain := ch.Chain(f.Chain)
		switch mode {
		case LOS:
			// Frame 1 holds the one-shift-earlier state: bit j sources
			// cell j+1, and — pinned — cell 0 sources itself. Frame 2 is
			// the fully loaded state: bit j sources cell j.
			if f.Index == 0 {
				p.f1Srcs = append(p.f1Srcs, srcFlip{chain[0], bit})
			}
			if f.Index+1 < len(chain) {
				p.f1Srcs = append(p.f1Srcs, srcFlip{chain[f.Index+1], bit})
			}
			p.f2Srcs = append(p.f2Srcs, srcFlip{chain[f.Index], bit})
		case LOC:
			// Frame 1 is the loaded state; frame 2 re-captures from the
			// frame-1 responses, handled through p.captures (derived
			// lazily by ensureCaptures).
			p.f1Srcs = append(p.f1Srcs, srcFlip{chain[f.Index], bit})
		}
	}
	return p
}

// appendRoots appends the source gates of the given perturbations to
// roots and returns it.
func appendRoots(roots []int, srcs []srcFlip) []int {
	for _, sf := range srcs {
		roots = append(roots, sf.gate)
	}
	return roots
}

// scanCaptures fills p.captures from the walker's current Reached
// state, which must hold the chunk's frame-1 cone: every scannable
// flip-flop whose D pin the cone touches re-captures a perturbed value.
func (s *Sweeper) scanCaptures(p *chunkPlan, w *netlist.ConeWalker) {
	n := s.ch.Netlist()
	for _, ff := range n.FFs {
		if n.IsNoScan(ff) {
			continue
		}
		dpin := n.Gates[ff].Fanin[0]
		if w.Reached(dpin) {
			p.captures = append(p.captures, capture{ff, dpin})
		}
	}
	p.capsDone = true
}

// ensureCaptures derives the chunk's LOC re-capture list on first use —
// one frame-1 cone walk through a pooled walker, no program compiles.
// It is all the structural state the delta-propagation paths need.
func (s *Sweeper) ensureCaptures(p *chunkPlan) {
	if p.capsDone {
		return
	}
	n := s.ch.Netlist()
	w := n.AcquireConeWalker()
	s.roots = appendRoots(s.roots[:0], p.f1Srcs)
	w.Walk(s.roots)
	s.scanCaptures(p, w)
	w.Release()
}

// ensureCompiled derives the chunk's full structural tier on its first
// scalar-path use: the levelized union cones of both frames, their
// compiled programs, and the ascending affected-gate union. The walks
// and the union scratch run through pooled buffers, and the derivation
// order matches the former eager construction exactly, so the compiled
// artifacts are bit-identical to what it produced.
func (s *Sweeper) ensureCompiled(p *chunkPlan) {
	if p.compiled {
		return
	}
	n := s.ch.Netlist()
	w := n.AcquireConeWalker()

	roots := appendRoots(s.roots[:0], p.f1Srcs)
	n1 := len(roots)
	p.order1 = append([]int(nil), w.Walk(roots[:n1])...)
	if !p.capsDone {
		// The walker still holds the frame-1 cone: derive the LOC
		// re-capture list from the same walk.
		s.scanCaptures(p, w)
	}
	roots = appendRoots(roots, p.f2Srcs)
	for _, cp := range p.captures {
		roots = append(roots, cp.ff)
	}
	p.order2 = append([]int(nil), w.Walk(roots[n1:])...)
	// The cones are re-evaluated once per chunk per step; compiled
	// programs shed the generic per-gate dispatch overhead.
	p.prog1 = sim.CompileOrdered(n, p.order1)
	p.prog2 = sim.CompileOrdered(n, p.order2)
	if s.mode == LOS {
		// LOS frames are independent (no re-captures), so both can run
		// through one fused program over the merged cone: see RunPair.
		// Gates in only one frame's cone recompute their unchanged value
		// in the other — harmless, and the two frames' cones overlap
		// almost entirely (they seed from adjacent cells of the same
		// chains), so the merged order is barely longer than either.
		merged := w.Walk(roots)
		p.progF = sim.CompileOrdered(n, merged)
	}
	s.roots = roots[:0]
	w.Release()

	// Ascending union of everything the chunk can touch.
	inUnion := scratch.Bools(n.NumGates())
	add := func(id int) {
		if !inUnion[id] {
			inUnion[id] = true
			p.affected = append(p.affected, id)
		}
	}
	for _, sf := range p.f1Srcs {
		add(sf.gate)
	}
	for _, sf := range p.f2Srcs {
		add(sf.gate)
	}
	for _, c := range p.captures {
		add(c.ff)
	}
	for _, id := range p.order1 {
		add(id)
	}
	for _, id := range p.order2 {
		add(id)
	}
	scratch.PutBools(inUnion)
	sort.Ints(p.affected)
	p.compiled = true
}

// SetKind switches the base-launch simulation backend in place (see
// NewSweeperKind); the per-base state survives, results are identical.
func (s *Sweeper) SetKind(kind sim.EngineKind) { s.eng.SetKind(kind) }

// Kind returns the resolved base-launch simulation backend.
func (s *Sweeper) Kind() sim.EngineKind { return s.eng.Kind() }

// Chains returns the sweep's scan configuration.
func (s *Sweeper) Chains() *Chains { return s.ch }

// Mode returns the launch mode the sweep simulates.
func (s *Sweeper) Mode() Mode { return s.mode }

// NumChunks returns the number of 64-lane chunks.
func (s *Sweeper) NumChunks() int { return len(s.plans) }

// ChunkFlips returns the flips of chunk c, lane-ordered (owned by the
// Sweeper; do not modify).
func (s *Sweeper) ChunkFlips(c int) []Flip { return s.plans[c].flips }

// SetHiddenState pins the frozen value of a NoScan flip-flop during base
// pattern application (mirrors Engine.SetHiddenState; hidden cells are
// outside the scan chains, so flips never perturb them).
func (s *Sweeper) SetHiddenState(ff int, w logic.Word) { s.eng.SetHiddenState(ff, w) }

// Rebase simulates the two frames of a new base pattern and resets the
// working lane words to its broadcast values. Must be called before Run
// and after every change to the base pattern.
func (s *Sweeper) Rebase(base *Pattern) error {
	f1, f2, err := s.eng.Launch([]*Pattern{base}, s.mode)
	if err != nil {
		return err
	}
	s.baseToggles = s.baseToggles[:0]
	for id := range f1 {
		var w1, w2 logic.Word
		if f1[id]&1 != 0 {
			w1 = logic.AllOne
		}
		if f2[id]&1 != 0 {
			w2 = logic.AllOne
		}
		s.f1b[id], s.f2b[id] = w1, w2
		if w1 != w2 {
			s.baseToggles = append(s.baseToggles, id)
		}
	}
	copy(s.v1, s.f1b)
	copy(s.v2, s.f2b)
	s.based = true
	s.gen++ // cached delta-propagation bases are now stale
	return nil
}

// Advance incrementally rebases the sweeper onto the pattern that
// differs from the current base in exactly the given flip — the accepted
// step of the adaptive climb. Instead of a full two-frame launch, it
// applies the flip to every lane of the broadcast base, re-evaluates the
// flip's chunk cone, and rebuilds the base toggle list. Two-valued logic
// is exact and every gate the flip can change lies inside its chunk's
// union cone, so the resulting state is identical to a Rebase on the
// materialized pattern. The flip must be one the sweeper was built for.
func (s *Sweeper) Advance(f Flip) error {
	if !s.based {
		return fmt.Errorf("scan: Sweeper.Advance before Rebase")
	}
	var p *chunkPlan
	lane := -1
	for i := range s.plans {
		for l, pf := range s.plans[i].flips {
			if pf == f {
				p, lane = &s.plans[i], l
				break
			}
		}
		if p != nil {
			break
		}
	}
	if p == nil {
		return fmt.Errorf("scan: Sweeper.Advance: flip %v not in sweep", f)
	}
	if s.eng.Kind() == sim.EnginePPSFP {
		// Delta-propagation fast path: the accepted flip's deviation is
		// propagated from its sources and committed where it actually
		// diverged — no cone programs compiled, no structural-cone
		// evaluation. Two-valued logic is exact, so the resulting state
		// is identical to the compiled path below.
		s.advanceDelta(p, lane)
		return nil
	}
	s.ensureCompiled(p)

	// Reuse the plan's source analysis: the chosen lane's perturbations,
	// broadcast to every lane, turn the working arrays into the new base.
	bit := logic.Word(1) << uint(lane)
	for _, sf := range p.f1Srcs {
		if sf.bit == bit {
			s.v1[sf.gate] ^= ^logic.Word(0)
		}
	}
	for _, sf := range p.f2Srcs {
		if sf.bit == bit {
			s.v2[sf.gate] ^= ^logic.Word(0)
		}
	}
	if p.progF != nil {
		p.progF.RunPair(s.v1, s.v2)
	} else {
		p.prog1.Run(s.v1)
		for _, cp := range p.captures {
			// Re-captures outside the flip's own cone read an unchanged
			// frame-1 response and overwrite with the value already there.
			s.v2[cp.ff] = s.v1[cp.dpin]
		}
		p.prog2.Run(s.v2)
	}

	// Commit: inside the cone the working arrays now hold the new
	// broadcast base; outside they never left it.
	for _, sf := range p.f1Srcs {
		s.f1b[sf.gate] = s.v1[sf.gate]
	}
	for _, id := range p.order1 {
		s.f1b[id] = s.v1[id]
	}
	for _, sf := range p.f2Srcs {
		s.f2b[sf.gate] = s.v2[sf.gate]
	}
	for _, cp := range p.captures {
		s.f2b[cp.ff] = s.v2[cp.ff]
	}
	for _, id := range p.order2 {
		s.f2b[id] = s.v2[id]
	}
	s.baseToggles = s.baseToggles[:0]
	for id := range s.f1b {
		if s.f1b[id] != s.f2b[id] {
			s.baseToggles = append(s.baseToggles, id)
		}
	}
	s.gen++ // cached delta-propagation bases are now stale
	return nil
}

// ensureDeltaProps lazily builds the two per-frame delta propagators
// and refreshes their base words after a Rebase or Advance.
func (s *Sweeper) ensureDeltaProps() {
	if s.dp1 == nil {
		n := s.ch.Netlist()
		s.dp1 = sim.NewDeltaProp(n)
		s.dp2 = sim.NewDeltaProp(n)
		s.dpGen = 0 // force the first base gather
	}
	if s.dpGen != s.gen {
		s.dp1.SetBase(s.f1b)
		s.dp2.SetBase(s.f2b)
		s.dpGen = s.gen
	}
}

// advanceDelta is Advance's PPSFP-kind implementation: seed both
// frames' propagators with the accepted lane's source flips on every
// lane (the new base is broadcast, so the deviation word is all-ones),
// propagate, and commit exactly the diverged gates into the broadcast
// base and working arrays. Gates the deviation never reaches keep
// their old base words — which is precisely what re-evaluating their
// cones would have produced — so the committed state is bit-identical
// to the compiled path's.
func (s *Sweeper) advanceDelta(p *chunkPlan, lane int) {
	s.ensureCaptures(p)
	s.ensureDeltaProps()
	bit := logic.Word(1) << uint(lane)
	s.dp1.Begin()
	for _, sf := range p.f1Srcs {
		if sf.bit == bit {
			s.dp1.SeedXOR(sf.gate, ^logic.Word(0))
		}
	}
	s.dp1.Run()
	s.dp2.Begin()
	for _, sf := range p.f2Srcs {
		if sf.bit == bit {
			s.dp2.SeedXOR(sf.gate, ^logic.Word(0))
		}
	}
	for _, cp := range p.captures {
		// LOC re-capture: the cell's frame-2 deviation is however far
		// its D pin's frame-1 value moved from the base capture.
		s.dp2.SeedXOR(cp.ff, s.dp1.Value(cp.dpin)^s.f2b[cp.ff])
	}
	s.dp2.Run()

	// Commit: diverged gates take their propagated words in both the
	// broadcast base and the working arrays (which must equal it
	// between runs); everything else never left the old base.
	s.div = s.dp1.AppendDiverged(s.div[:0])
	for _, id := range s.div {
		w := s.dp1.Value(int(id))
		s.f1b[id] = w
		s.v1[id] = w
	}
	s.div = s.dp2.AppendDiverged(s.div[:0])
	for _, id := range s.div {
		w := s.dp2.Value(int(id))
		s.f2b[id] = w
		s.v2[id] = w
	}
	s.baseToggles = s.baseToggles[:0]
	for id := range s.f1b {
		if s.f1b[id] != s.f2b[id] {
			s.baseToggles = append(s.baseToggles, id)
		}
	}
	s.gen++ // the committed base invalidates the propagators' gathered words
}

// Run evaluates chunk c against the current base: it applies the lane
// flips to the affected source words, re-evaluates the union cone of
// both frames, and returns the chunk's toggle activity as a sparse
// (ids, masks) encoding — ids ascending, masks[k] the per-lane toggle
// word of ids[k] — covering every gate any lane toggles. The slices are
// owned by the Sweeper and valid until the next Run.
func (s *Sweeper) Run(c int) (ids []int, masks []logic.Word) {
	if !s.based {
		panic("scan: Sweeper.Run before Rebase")
	}
	if s.eng.Kind() == sim.EnginePPSFP {
		// The PPSFP configuration propagates only the actual word
		// deviations of the chunk's flips (sim.DeltaProp) instead of
		// re-evaluating the union structural cone — which, for 64 flips
		// spread across the chains, covers half the netlist while logic
		// masking confines true divergence to a few hundred gates. The
		// encodings are bit-identical to the global path below, which
		// stays as the scalar kind's reference (TestSweeperKindEquivalence
		// and the exhaustive suite pin the equivalence).
		return s.runDelta(c)
	}
	p := &s.plans[c]
	s.ensureCompiled(p)

	for _, sf := range p.f1Srcs {
		s.v1[sf.gate] ^= sf.bit
	}
	for _, sf := range p.f2Srcs {
		s.v2[sf.gate] ^= sf.bit
	}
	if p.progF != nil {
		p.progF.RunPair(s.v1, s.v2)
	} else {
		p.prog1.Run(s.v1)
		for _, cp := range p.captures {
			s.v2[cp.ff] = s.v1[cp.dpin]
		}
		p.prog2.Run(s.v2)
	}

	// Merge the chunk's affected gates with the base toggle set, in
	// ascending gate-ID order: unaffected base-toggled gates toggle on
	// every lane, affected gates carry their re-simulated lane words.
	// Base toggles far outnumber affected gates, so runs of them between
	// consecutive affected IDs are emitted as bulk copies from a
	// laneMask-filled template instead of element-wise appends. The same
	// pass restores the working arrays to broadcast base: every gate a
	// chunk can perturb is in p.affected, and its cache lines are already
	// hot here, so the fused writes replace a separate full-array memmove.
	ids, masks = s.ids[:0], s.masks[:0]
	aff, bt := p.affected, s.baseToggles
	fill := s.fill[:len(bt)]
	if p.laneMask != ^logic.Word(0) {
		for k := range fill {
			fill[k] = p.laneMask
		}
	}
	j := 0
	for _, id := range aff {
		k := j
		for k < len(bt) && bt[k] < id {
			k++
		}
		if k > j {
			ids = append(ids, bt[j:k]...)
			masks = append(masks, fill[:k-j]...)
			j = k
		}
		if j < len(bt) && bt[j] == id {
			j++
		}
		if m := (s.v1[id] ^ s.v2[id]) & p.laneMask; m != 0 {
			ids = append(ids, id)
			masks = append(masks, m)
		}
		s.v1[id] = s.f1b[id]
		s.v2[id] = s.f2b[id]
	}
	if j < len(bt) {
		ids = append(ids, bt[j:]...)
		masks = append(masks, fill[:len(bt)-j]...)
	}
	if p.laneMask != ^logic.Word(0) {
		for k := range fill {
			fill[k] = ^logic.Word(0)
		}
	}
	s.ids, s.masks = ids, masks
	return ids, masks
}

// runDelta is Run's PPSFP-kind fast path: seed each frame's delta
// propagator with the chunk's per-lane source XORs, propagate only the
// words that actually change, and emit the sparse encoding from the
// (typically small) diverged set — reading nothing and writing nothing
// through the global working arrays, which preserves the broadcast-base
// invariant Advance and the global path rely on.
func (s *Sweeper) runDelta(c int) (ids []int, masks []logic.Word) {
	p := &s.plans[c]
	s.ensureCaptures(p)
	s.ensureDeltaProps()
	s.dp1.Begin()
	for _, sf := range p.f1Srcs {
		s.dp1.SeedXOR(sf.gate, sf.bit)
	}
	s.dp1.Run()
	s.dp2.Begin()
	for _, sf := range p.f2Srcs {
		s.dp2.SeedXOR(sf.gate, sf.bit)
	}
	for _, cp := range p.captures {
		// LOC re-capture: the cell's frame-2 deviation is however far its
		// D pin's frame-1 value moved from the base capture (zero when the
		// frame-1 deviation never reached the pin — the base frames of a
		// real launch already satisfy f2b[ff] == frame1(dpin)).
		s.dp2.SeedXOR(cp.ff, s.dp1.Value(cp.dpin)^s.f2b[cp.ff])
	}
	s.dp2.Run()

	// Diverged-gate set of either frame, deduplicated and enumerated in
	// ascending ID order through a bitmap over original gate IDs — word
	// order plus trailing-zero extraction yields the sorted walk without
	// a comparison sort. The true divergence is typically a small
	// fraction of the union structural cone, which is what makes this
	// merge cheaper than walking p.affected in full.
	s.div = s.dp1.AppendDiverged(s.div[:0])
	s.div = s.dp2.AppendDiverged(s.div)
	if s.divmap == nil {
		s.divmap = scratch.Uint64s((s.ch.Netlist().NumGates() + 63) / 64)
	}
	for _, id := range s.div {
		s.divmap[uint32(id)>>6] |= 1 << (uint32(id) & 63)
	}

	// The merge mirrors the global path exactly — the same ascending-ID
	// interleave of base toggles and deviating gates, the same bulk
	// template copies — but walks the diverged set instead of the whole
	// structural cone: a gate neither frame's propagation reached kept
	// its base toggle state on every lane by construction, which is
	// precisely what re-evaluating its cone would have produced.
	ids, masks = s.ids[:0], s.masks[:0]
	bt := s.baseToggles
	fill := s.fill[:len(bt)]
	if p.laneMask != ^logic.Word(0) {
		for k := range fill {
			fill[k] = p.laneMask
		}
	}
	j := 0
	for w, dw := range s.divmap {
		if dw == 0 {
			continue
		}
		s.divmap[w] = 0
		for dw != 0 {
			id := w<<6 + bits.TrailingZeros64(dw)
			dw &= dw - 1
			k := j
			for k < len(bt) && bt[k] < id {
				k++
			}
			if k > j {
				ids = append(ids, bt[j:k]...)
				masks = append(masks, fill[:k-j]...)
				j = k
			}
			var btw logic.Word
			if j < len(bt) && bt[j] == id {
				btw = ^logic.Word(0)
				j++
			}
			c := s.dp1.Compact(id)
			if m := (btw ^ s.dp1.DeltaAt(c) ^ s.dp2.DeltaAt(c)) & p.laneMask; m != 0 {
				ids = append(ids, id)
				masks = append(masks, m)
			}
		}
	}
	if j < len(bt) {
		ids = append(ids, bt[j:]...)
		masks = append(masks, fill[:len(bt)-j]...)
	}
	if p.laneMask != ^logic.Word(0) {
		for k := range fill {
			fill[k] = ^logic.Word(0)
		}
	}
	s.ids, s.masks = ids, masks
	return ids, masks
}
