package scan

import (
	"strings"
	"testing"
	"testing/quick"

	"superpose/internal/netlist"
	"superpose/internal/stats"
)

// buildShiftCircuit makes a circuit with nFF flip-flops, one PI, and per-FF
// a BUF observer gate so every scan-cell toggle creates one combinational
// toggle:
//
//	INPUT(pi)
//	ffK = DFF(dK); obsK = BUF(ffK); dK = XOR(obsK, pi)
func buildShiftCircuit(t testing.TB, nFF int) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("shift")
	if _, err := b.AddInput("pi"); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < nFF; k++ {
		ff := name("ff", k)
		obs := name("obs", k)
		d := name("d", k)
		if _, err := b.AddDFF(ff, d); err != nil {
			t.Fatal(err)
		}
		if _, err := b.AddGate(obs, netlist.Buf, ff); err != nil {
			t.Fatal(err)
		}
		if _, err := b.AddGate(d, netlist.Xor, obs, "pi"); err != nil {
			t.Fatal(err)
		}
		b.MarkOutput(obs)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func name(prefix string, k int) string {
	return prefix + "_" + string(rune('a'+k%26)) + string(rune('0'+k/26))
}

func TestConfigurePartition(t *testing.T) {
	n := buildShiftCircuit(t, 10)
	for chains := 1; chains <= 12; chains++ {
		c := Configure(n, chains)
		wantChains := chains
		if wantChains > 10 {
			wantChains = 10
		}
		if c.NumChains() != wantChains {
			t.Errorf("Configure(%d): %d chains", chains, c.NumChains())
		}
		total := 0
		seen := make(map[int]bool)
		for i := 0; i < c.NumChains(); i++ {
			for j, ff := range c.Chain(i) {
				total++
				if seen[ff] {
					t.Fatalf("cell %d appears twice", ff)
				}
				seen[ff] = true
				pos, ok := c.Position(ff)
				if !ok || pos.Chain != i || pos.Index != j {
					t.Errorf("Position(%d) = %+v, want {%d %d}", ff, pos, i, j)
				}
			}
		}
		if total != 10 {
			t.Errorf("Configure(%d) covers %d cells", chains, total)
		}
		// Balanced: lengths differ by at most one.
		ls := c.Lengths()
		min, max := ls[0], ls[0]
		for _, l := range ls {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		if max-min > 1 {
			t.Errorf("Configure(%d): unbalanced lengths %v", chains, ls)
		}
	}
}

func TestConfigureClamps(t *testing.T) {
	n := buildShiftCircuit(t, 3)
	if c := Configure(n, 0); c.NumChains() != 1 {
		t.Error("numChains < 1 must clamp to 1")
	}
	if c := Configure(n, 100); c.NumChains() != 3 {
		t.Error("numChains > #FF must clamp")
	}
}

func TestPatternBasics(t *testing.T) {
	n := buildShiftCircuit(t, 6)
	c := Configure(n, 2)
	p := c.NewPattern()
	if p.TransitionCount() != 0 {
		t.Error("zero pattern has no transitions")
	}
	p.Scan[0] = []bool{false, true, true} // one transition at index 1
	p.Scan[1] = []bool{true, false, true} // transitions at 1 and 2
	if got := p.TransitionCount(); got != 3 {
		t.Errorf("TransitionCount = %d, want 3", got)
	}
	if p.TransitionAt(0, 0) {
		t.Error("cell 0 never launches")
	}
	if !p.TransitionAt(0, 1) || p.TransitionAt(0, 2) {
		t.Error("TransitionAt chain 0 wrong")
	}

	q := p.Clone()
	if !p.Equal(q) {
		t.Error("clone must be equal")
	}
	q.Scan[0][0] = true
	if p.Equal(q) {
		t.Error("modified clone must differ")
	}
	if p.Scan[0][0] {
		t.Error("Clone must not alias")
	}

	s := p.String()
	if !strings.Contains(s, "|") || !strings.Contains(s, "/") {
		t.Errorf("String = %q", s)
	}
}

func TestPatternEqualShapeMismatch(t *testing.T) {
	n := buildShiftCircuit(t, 4)
	c1 := Configure(n, 1)
	c2 := Configure(n, 2)
	if c1.NewPattern().Equal(c2.NewPattern()) {
		t.Error("different shapes must not be equal")
	}
}

func TestLOSLaunchActivityMatchesAdjacency(t *testing.T) {
	// Property: the scan cells toggling under LOS are exactly the cells at
	// adjacent opposite-bit positions (paper §IV-A transparency rule).
	n := buildShiftCircuit(t, 16)
	c := Configure(n, 2)
	e := NewEngine(c)
	rng := stats.NewRNG(11)

	for trial := 0; trial < 50; trial++ {
		p := c.RandomPattern(rng)
		e.Launch([]*Pattern{p}, LOS)
		toggled := make(map[int]bool)
		for _, id := range e.Toggles(0) {
			toggled[id] = true
		}
		for ci := 0; ci < c.NumChains(); ci++ {
			for j, ff := range c.Chain(ci) {
				want := p.TransitionAt(ci, j)
				if toggled[ff] != want {
					t.Fatalf("trial %d: cell chain %d idx %d toggle=%v want %v",
						trial, ci, j, toggled[ff], want)
				}
			}
		}
	}
}

func TestLOSObserverGatesFollowCells(t *testing.T) {
	n := buildShiftCircuit(t, 8)
	c := Configure(n, 1)
	e := NewEngine(c)
	p := c.NewPattern()
	p.Scan[0] = []bool{false, true, false, false, false, false, false, false}
	e.Launch([]*Pattern{p}, LOS)
	toggled := make(map[string]bool)
	for _, id := range e.Toggles(0) {
		toggled[n.NameOf(id)] = true
	}
	// Transitions at cells 1 and 2 (0→1 and 1→0); their BUF observers follow.
	for _, wantName := range []string{"ff_b0", "ff_c0", "obs_b0", "obs_c0"} {
		if !toggled[wantName] {
			t.Errorf("%s should toggle; toggles=%v", wantName, toggled)
		}
	}
	if toggled["ff_a0"] || toggled["obs_a0"] {
		t.Error("cell 0 must not toggle under LOS")
	}
	// d gates: d_k = XOR(obs_k, pi) toggles with obs_k.
	if !toggled["d_b0"] || !toggled["d_c0"] {
		t.Error("XOR D-gates must follow observers")
	}
	if got := e.ToggleCount(0); got != len(e.Toggles(0)) {
		t.Errorf("ToggleCount = %d", got)
	}
}

func TestLOCCaptureSemantics(t *testing.T) {
	// Under LOC, frame 2 FF values are the D-pin responses of frame 1.
	// In the shift circuit d_k = XOR(ff_k, pi), so with pi=1 every cell
	// inverts at capture and all cells toggle; with pi=0 none do.
	n := buildShiftCircuit(t, 5)
	c := Configure(n, 1)
	e := NewEngine(c)

	p := c.NewPattern()
	p.PI[0] = true
	e.Launch([]*Pattern{p}, LOC)
	count := 0
	for _, id := range e.Toggles(0) {
		if n.Gates[id].Type == netlist.DFF {
			count++
		}
	}
	if count != 5 {
		t.Errorf("LOC with pi=1: %d cells toggled, want 5", count)
	}

	p.PI[0] = false
	e.Launch([]*Pattern{p}, LOC)
	if got := e.ToggleCount(0); got != 0 {
		t.Errorf("LOC with pi=0: %d toggles, want 0", got)
	}
}

func TestBatchLanesMatchSingle(t *testing.T) {
	n := buildShiftCircuit(t, 12)
	c := Configure(n, 3)
	rng := stats.NewRNG(21)
	e := NewEngine(c)

	pats := make([]*Pattern, 64)
	for i := range pats {
		pats[i] = c.RandomPattern(rng)
	}
	e.Launch(pats, LOS)
	batchCounts := make([]int, 64)
	for i := range pats {
		batchCounts[i] = e.ToggleCount(uint(i))
	}

	single := NewEngine(c)
	for i, p := range pats {
		single.Launch([]*Pattern{p}, LOS)
		if got := single.ToggleCount(0); got != batchCounts[i] {
			t.Fatalf("lane %d: batch %d != single %d", i, batchCounts[i], got)
		}
	}
}

func TestLaunchErrorsAndStatePanics(t *testing.T) {
	n := buildShiftCircuit(t, 4)
	c := Configure(n, 1)
	e := NewEngine(c)
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	if _, _, err := e.Launch(nil, LOS); err == nil {
		t.Error("Launch(nil) should return an error")
	}
	mustPanic(func() { e.Toggles(0) })
	mustPanic(func() { e.ToggleCount(0) })
	pats := make([]*Pattern, 65)
	for i := range pats {
		pats[i] = c.NewPattern()
	}
	if _, _, err := e.Launch(pats, LOS); err == nil {
		t.Error("Launch with 65 patterns should return an error")
	}
}

func TestTransitionCountFlipProperty(t *testing.T) {
	// Property: flipping one interior bit changes the transition count by
	// -2, 0 or +2; flipping an end bit changes it by -1 or +1.
	n := buildShiftCircuit(t, 20)
	c := Configure(n, 1)
	rng := stats.NewRNG(5)
	f := func(idxRaw uint8) bool {
		p := c.RandomPattern(rng)
		before := p.TransitionCount()
		idx := int(idxRaw) % 20
		p.Scan[0][idx] = !p.Scan[0][idx]
		delta := p.TransitionCount() - before
		if idx == 0 || idx == 19 {
			return delta == -1 || delta == 1
		}
		return delta == -2 || delta == 0 || delta == 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModeString(t *testing.T) {
	if LOS.String() != "LOS" || LOC.String() != "LOC" {
		t.Error("mode names wrong")
	}
	if !strings.Contains(Mode(9).String(), "9") {
		t.Error("unknown mode must show number")
	}
}

func TestLOSSourcesMatchEngine(t *testing.T) {
	// The standalone source builder must agree with the Engine's toggles.
	n := buildShiftCircuit(t, 10)
	c := Configure(n, 2)
	e := NewEngine(c)
	rng := stats.NewRNG(77)
	for trial := 0; trial < 20; trial++ {
		p := c.RandomPattern(rng)
		f1, f2 := c.LOSSources(p)
		e.Launch([]*Pattern{p}, LOS)
		engineToggles := map[int]bool{}
		for _, id := range e.Toggles(0) {
			engineToggles[id] = true
		}
		// Simulate both frames independently and compare source-level
		// toggles of the scan cells.
		for _, ff := range n.FFs {
			want := engineToggles[ff]
			got := (f1[ff]^f2[ff])&1 != 0
			if got != want {
				t.Fatalf("trial %d: cell %s source toggle=%v engine=%v", trial, n.NameOf(ff), got, want)
			}
		}
	}
}

func TestFromOrderRoundTrip(t *testing.T) {
	// Property: rebuilding a configuration from its own Order yields the
	// same cell placement.
	n := buildShiftCircuit(t, 12)
	for _, chains := range []int{1, 3, 5} {
		c := Configure(n, chains)
		c2, err := FromOrder(n, c.Order())
		if err != nil {
			t.Fatal(err)
		}
		for _, ff := range n.FFs {
			p1, _ := c.Position(ff)
			p2, _ := c2.Position(ff)
			if p1 != p2 {
				t.Fatalf("cell %s moved: %+v vs %+v", n.NameOf(ff), p1, p2)
			}
		}
	}
	// Errors: bad IDs, duplicates, incomplete coverage.
	if _, err := FromOrder(n, [][]int{{0}}); err == nil {
		t.Error("non-FF gate must be rejected")
	}
	ff0 := n.FFs[0]
	if _, err := FromOrder(n, [][]int{{ff0, ff0}}); err == nil {
		t.Error("duplicate cell must be rejected")
	}
	if _, err := FromOrder(n, [][]int{{ff0}}); err == nil {
		t.Error("incomplete coverage must be rejected")
	}
}

func TestHiddenStatePinning(t *testing.T) {
	// A NoScan cell pinned to 1 must show as a constant 1 source in both
	// frames of every launch.
	b := netlist.NewBuilder("hid")
	if _, err := b.AddInput("pi"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddDFF("s0", "d0"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddNonScanDFF("h", "dh"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("d0", netlist.Xor, "s0", "h"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("dh", netlist.Xor, "h", "pi"); err != nil {
		t.Fatal(err)
	}
	b.MarkOutput("d0")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := Configure(n, 1)
	if c.NumChains() != 1 || len(c.Chain(0)) != 1 {
		t.Fatalf("scan config must hold only s0: %v", c.Lengths())
	}
	e := NewEngine(c)
	h, _ := n.GateID("h")
	d0, _ := n.GateID("d0")
	s0, _ := n.GateID("s0")

	p := c.NewPattern()
	p.Scan[0][0] = true
	f1, f2, err := e.Launch([]*Pattern{p}, LOS)
	if err != nil {
		t.Fatal(err)
	}
	// Default hidden state 0: d0 = XOR(s0, 0) = s0 in both frames.
	if f1[d0] != f1[s0] || f2[d0] != f2[s0] {
		t.Error("hidden state must default to 0")
	}
	e.SetHiddenState(h, 1)
	f1, f2, err = e.Launch([]*Pattern{p}, LOS)
	if err != nil {
		t.Fatal(err)
	}
	if f1[h]&1 != 1 || f2[h]&1 != 1 {
		t.Error("hidden state must pin across both frames")
	}
	if f1[d0] == f1[s0] {
		t.Error("pinned hidden 1 must invert d0")
	}
}
