package scan

import (
	"testing"

	"superpose/internal/netlist"
)

// buildRegions makes a circuit with two disjoint regions of 4 cells each:
// region A cells feed each other; region B likewise; no cross edges.
func buildRegions(t *testing.T) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("regions")
	if _, err := b.AddInput("pi"); err != nil {
		t.Fatal(err)
	}
	addRegion := func(prefix string) {
		cells := []string{prefix + "0", prefix + "1", prefix + "2", prefix + "3"}
		for i, c := range cells {
			if _, err := b.AddDFF(c, "d_"+c); err != nil {
				t.Fatal(err)
			}
			_ = i
		}
		// Each cell's D depends on the next cell in the region (a ring).
		for i, c := range cells {
			nxt := cells[(i+1)%len(cells)]
			if _, err := b.AddGate("d_"+c, netlist.Xor, nxt, "pi"); err != nil {
				t.Fatal(err)
			}
			b.MarkOutput("d_" + c)
		}
	}
	addRegion("a")
	addRegion("z")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestReorderGroupsRegions(t *testing.T) {
	n := buildRegions(t)
	c := ReorderByConnectivity(n, 2, 2)
	if c.NumChains() != 2 {
		t.Fatalf("chains = %d", c.NumChains())
	}
	// Every chain must be region-pure: all its cells share a name prefix.
	for i := 0; i < c.NumChains(); i++ {
		prefix := byte(0)
		for _, ff := range c.Chain(i) {
			name := n.NameOf(ff)
			if prefix == 0 {
				prefix = name[0]
			} else if name[0] != prefix {
				t.Errorf("chain %d mixes regions: %s", i, name)
			}
		}
	}
	// All cells covered exactly once.
	total := 0
	for i := 0; i < c.NumChains(); i++ {
		total += len(c.Chain(i))
	}
	if total != len(n.FFs) {
		t.Errorf("covered %d of %d cells", total, len(n.FFs))
	}
	for _, ff := range n.FFs {
		if _, ok := c.Position(ff); !ok {
			t.Errorf("cell %s unplaced", n.NameOf(ff))
		}
	}
}

func TestReorderDegenerateInputs(t *testing.T) {
	n := buildRegions(t)
	if c := ReorderByConnectivity(n, 0, 2); c.NumChains() != 1 {
		t.Error("numChains 0 must clamp")
	}
	if c := ReorderByConnectivity(n, 100, 0); c.NumChains() == 0 {
		t.Error("excess chains must clamp, radius 0 must default")
	}
	// Patterns built on a reordered config drive the engine fine.
	c := ReorderByConnectivity(n, 2, 2)
	e := NewEngine(c)
	p := c.NewPattern()
	p.Scan[0][1] = true
	e.Launch([]*Pattern{p}, LOS)
	if e.ToggleCount(0) == 0 {
		t.Error("launch produced no activity")
	}
}
