// Package scan models the design-for-test infrastructure the paper's
// methodology lives inside: scan chains over the circuit's flip-flops and
// the application of transition test patterns through them.
//
// The central property (paper §IV-A) is the Launch-on-Shift transparency
// rule: under LOS, the launch transition at a scan cell is determined
// purely by the two adjacent bits of the scan-in vector at that chain
// position — ...01... or ...10... launches a transition from that cell —
// so pattern modifications have directly predictable activity effects,
// which is exactly what the adaptive flow and the strategic modifications
// of §IV-D exploit.
package scan

import (
	"fmt"
	"strings"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/scratch"
	"superpose/internal/sim"
	"superpose/internal/stats"
)

// Mode selects the transition-test application technique.
type Mode uint8

const (
	// LOS (Launch-on-Shift) launches the transition with the final shift
	// clock: cell j moves from bit j-1's value to bit j's value.
	LOS Mode = iota
	// LOC (Launch-on-Capture) launches from the functional capture: the
	// loaded state propagates through the logic and the D-pin responses
	// form the second frame. Included for the ablation of §IV-A.
	LOC
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case LOS:
		return "LOS"
	case LOC:
		return "LOC"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Chains is a scan configuration: an ordered partition of the netlist's
// flip-flops into shift registers. Index 0 of a chain is the cell nearest
// scan-in.
type Chains struct {
	n      *netlist.Netlist
	chains [][]int // chain -> ordered FF gate IDs
	pos    map[int]CellPos
}

// CellPos locates a scan cell within the configuration.
type CellPos struct {
	Chain, Index int
}

// Configure partitions the netlist's scannable flip-flops, in declaration
// order, into numChains chains of near-equal length. NoScan-marked cells
// (hidden sequential-Trojan state) are excluded. numChains is clamped to
// [1, #FFs]; a netlist without flip-flops yields an empty configuration.
func Configure(n *netlist.Netlist, numChains int) *Chains {
	ffs := n.ScanFFs()
	if numChains < 1 {
		numChains = 1
	}
	if numChains > len(ffs) {
		numChains = len(ffs)
	}
	c := &Chains{n: n, pos: make(map[int]CellPos, len(ffs))}
	if len(ffs) == 0 {
		return c
	}
	base := len(ffs) / numChains
	extra := len(ffs) % numChains
	start := 0
	for i := 0; i < numChains; i++ {
		length := base
		if i < extra {
			length++
		}
		chain := ffs[start : start+length]
		c.chains = append(c.chains, chain)
		for j, ff := range chain {
			c.pos[ff] = CellPos{Chain: i, Index: j}
		}
		start += length
	}
	return c
}

// FromOrder builds a configuration over n with explicit per-chain cell ID
// lists (e.g. transplanting a reordered configuration from the golden
// netlist onto the physical one, whose flip-flop IDs coincide). Every
// flip-flop of n must appear exactly once.
func FromOrder(n *netlist.Netlist, chains [][]int) (*Chains, error) {
	c := &Chains{n: n, pos: make(map[int]CellPos)}
	for ci, chain := range chains {
		for j, ff := range chain {
			if ff < 0 || ff >= n.NumGates() || n.Gates[ff].Type != netlist.DFF {
				return nil, fmt.Errorf("scan: chain %d entry %d: gate %d is not a flip-flop", ci, j, ff)
			}
			if _, dup := c.pos[ff]; dup {
				return nil, fmt.Errorf("scan: cell %s appears twice", n.NameOf(ff))
			}
			c.pos[ff] = CellPos{Chain: ci, Index: j}
		}
		c.chains = append(c.chains, append([]int(nil), chain...))
	}
	if len(c.pos) != len(n.ScanFFs()) {
		return nil, fmt.Errorf("scan: order covers %d of %d cells", len(c.pos), len(n.ScanFFs()))
	}
	return c, nil
}

// Order returns a deep copy of the per-chain cell ID lists.
func (c *Chains) Order() [][]int {
	out := make([][]int, len(c.chains))
	for i, chain := range c.chains {
		out[i] = append([]int(nil), chain...)
	}
	return out
}

// Netlist returns the configured netlist.
func (c *Chains) Netlist() *netlist.Netlist { return c.n }

// NumChains returns the number of scan chains.
func (c *Chains) NumChains() int { return len(c.chains) }

// Chain returns the ordered cell IDs of chain i (owned by Chains).
func (c *Chains) Chain(i int) []int { return c.chains[i] }

// Position returns the chain position of a flip-flop gate ID.
func (c *Chains) Position(ff int) (CellPos, bool) {
	p, ok := c.pos[ff]
	return p, ok
}

// Lengths returns the per-chain cell counts.
func (c *Chains) Lengths() []int {
	out := make([]int, len(c.chains))
	for i, ch := range c.chains {
		out[i] = len(ch)
	}
	return out
}

// Pattern is one transition test: the scan-in vectors (bit j = final value
// of chain cell j after load) plus static primary-input values in netlist
// PI order. Under LOS the primary inputs hold across both frames.
type Pattern struct {
	Scan [][]bool `json:"scan"`
	PI   []bool   `json:"pi"`
}

// NewPattern allocates an all-zero pattern shaped for the configuration.
func (c *Chains) NewPattern() *Pattern {
	p := &Pattern{
		Scan: make([][]bool, len(c.chains)),
		PI:   make([]bool, len(c.n.PIs)),
	}
	for i, ch := range c.chains {
		p.Scan[i] = make([]bool, len(ch))
	}
	return p
}

// RandomPattern returns a uniformly random pattern.
func (c *Chains) RandomPattern(rng *stats.RNG) *Pattern {
	p := c.NewPattern()
	for i := range p.Scan {
		for j := range p.Scan[i] {
			p.Scan[i][j] = rng.Bool()
		}
	}
	for i := range p.PI {
		p.PI[i] = rng.Bool()
	}
	return p
}

// Clone deep-copies the pattern.
func (p *Pattern) Clone() *Pattern {
	q := &Pattern{
		Scan: make([][]bool, len(p.Scan)),
		PI:   append([]bool(nil), p.PI...),
	}
	for i, ch := range p.Scan {
		q.Scan[i] = append([]bool(nil), ch...)
	}
	return q
}

// Equal reports deep equality.
func (p *Pattern) Equal(q *Pattern) bool {
	if len(p.Scan) != len(q.Scan) || len(p.PI) != len(q.PI) {
		return false
	}
	for i := range p.PI {
		if p.PI[i] != q.PI[i] {
			return false
		}
	}
	for i := range p.Scan {
		if len(p.Scan[i]) != len(q.Scan[i]) {
			return false
		}
		for j := range p.Scan[i] {
			if p.Scan[i][j] != q.Scan[i][j] {
				return false
			}
		}
	}
	return true
}

// TransitionCount returns the number of LOS launch transitions: adjacent
// opposite-value bit pairs across all chains (paper §IV-A).
func (p *Pattern) TransitionCount() int {
	c := 0
	for _, chain := range p.Scan {
		for j := 1; j < len(chain); j++ {
			if chain[j] != chain[j-1] {
				c++
			}
		}
	}
	return c
}

// TransitionAt reports whether cell (chain, idx) launches a transition
// under LOS. Cell 0 of each chain never launches (its prior state is the
// scan-in pin history, pinned to its own value).
func (p *Pattern) TransitionAt(chain, idx int) bool {
	if idx == 0 {
		return false
	}
	return p.Scan[chain][idx] != p.Scan[chain][idx-1]
}

// String renders the pattern compactly: chains as 0/1 runs, then PIs.
func (p *Pattern) String() string {
	var b strings.Builder
	for i, chain := range p.Scan {
		if i > 0 {
			b.WriteByte('|')
		}
		for _, v := range chain {
			if v {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
	}
	b.WriteByte('/')
	for _, v := range p.PI {
		if v {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// LOSSources builds the two frame source assignments of a single pattern
// under LOS (lane 0 only): frame 1 holds the one-shift-earlier scan state,
// frame 2 the fully loaded state; primary inputs hold in both. Useful for
// feeding simulators other than the Engine's (e.g. the event-driven
// glitch analysis).
func (c *Chains) LOSSources(p *Pattern) (f1, f2 []logic.Word) {
	n := c.n
	f1 = make([]logic.Word, n.NumGates())
	f2 = make([]logic.Word, n.NumGates())
	for pi, id := range n.PIs {
		if p.PI[pi] {
			f1[id] = 1
			f2[id] = 1
		}
	}
	for ci, chain := range c.chains {
		bits := p.Scan[ci]
		for j, ff := range chain {
			prev := bits[0]
			if j > 0 {
				prev = bits[j-1]
			}
			if prev {
				f1[ff] = 1
			}
			if bits[j] {
				f2[ff] = 1
			}
		}
	}
	return f1, f2
}

// Engine applies patterns to a netlist and extracts launch activity. It
// owns a simulator and scratch buffers; not safe for concurrent use.
//
// The simulation backend is selectable (see sim.EngineKind): the
// default PPSFP engine evaluates full launches through a compiled
// instruction stream over the structure-of-arrays netlist core, the
// scalar kind through the original per-gate Simulator. The two are
// bit-identical, so the kind never changes any frame value, toggle set
// or downstream reading.
type Engine struct {
	ch     *Chains
	kind   sim.EngineKind
	sim    *sim.Simulator
	pp     *sim.PPSFP // non-nil iff the resolved kind is PPSFP
	src    []logic.Word
	f1     []logic.Word // frame-1 net values (copy)
	f2     []logic.Word // frame-2 net values (copy)
	hidden map[int]logic.Word
	valid  bool
}

// NewEngine returns an Engine over the configuration's netlist, using
// the default simulation backend (PPSFP).
func NewEngine(ch *Chains) *Engine { return NewEngineKind(ch, sim.EngineAuto) }

// NewEngineKind returns an Engine with an explicit simulation backend.
func NewEngineKind(ch *Chains, kind sim.EngineKind) *Engine {
	s := sim.New(ch.n)
	e := &Engine{
		ch:  ch,
		sim: s,
		src: scratch.Words(ch.n.NumGates()),
		f1:  scratch.Words(ch.n.NumGates()),
		f2:  scratch.Words(ch.n.NumGates()),
	}
	e.SetKind(kind)
	return e
}

// Close returns the engine's pooled per-net buffers (frames, sources,
// simulator state) to the shared pools. The Engine must not be used
// afterwards; Close is idempotent.
func (e *Engine) Close() {
	if e.f1 == nil {
		return
	}
	scratch.PutWords(e.src)
	scratch.PutWords(e.f1)
	scratch.PutWords(e.f2)
	e.src, e.f1, e.f2 = nil, nil, nil
	e.sim.Release()
	if e.pp != nil {
		e.pp.Release()
		e.pp = nil
	}
	e.valid = false
}

// SetKind switches the simulation backend in place. All other engine
// state (hidden-cell pins, the frames of the most recent Launch) is
// preserved; results are bit-identical across kinds either way.
func (e *Engine) SetKind(kind sim.EngineKind) {
	e.kind = kind.Resolve()
	if e.kind == sim.EnginePPSFP {
		if e.pp == nil {
			e.pp = sim.NewPPSFP(e.ch.n)
		}
	} else if e.pp != nil {
		e.pp.Release()
		e.pp = nil
	}
}

// Kind returns the resolved simulation backend.
func (e *Engine) Kind() sim.EngineKind { return e.kind }

// run evaluates the current source words into dst through the selected
// backend.
func (e *Engine) run(dst []logic.Word) {
	if e.pp != nil {
		e.pp.RunInto(e.src, dst)
		return
	}
	copy(dst, e.sim.Run(e.src))
}

// Chains returns the engine's scan configuration.
func (e *Engine) Chains() *Chains { return e.ch }

// SetHiddenState pins the frozen value of a NoScan flip-flop during test
// application (default all-zero). Hidden cells see no capture pulse in
// this regime, so their state is constant across both frames of every
// launch.
func (e *Engine) SetHiddenState(ff int, w logic.Word) {
	if e.hidden == nil {
		e.hidden = make(map[int]logic.Word)
	}
	e.hidden[ff] = w
}

// Launch simulates the two frames of up to 64 patterns at once (pattern i
// on lane i) under the given mode and returns the per-net frame values.
// The returned slices are owned by the engine and valid until the next
// Launch. Batches outside 1..64 patterns (the lane width of the
// bit-parallel simulator) are reported as an error; higher layers chunk
// arbitrary pattern counts for callers.
func (e *Engine) Launch(pats []*Pattern, mode Mode) (f1, f2 []logic.Word, err error) {
	if len(pats) == 0 || len(pats) > 64 {
		return nil, nil, fmt.Errorf("scan: Launch with %d patterns (want 1..64)", len(pats))
	}
	n := e.ch.n

	// Frame 1 sources.
	for i := range e.src {
		e.src[i] = 0
	}
	for ff, w := range e.hidden {
		e.src[ff] = w
	}
	for lane, p := range pats {
		bit := logic.Word(1) << uint(lane)
		for pi, id := range n.PIs {
			if p.PI[pi] {
				e.src[id] |= bit
			}
		}
		for ci, chain := range e.ch.chains {
			bits := p.Scan[ci]
			for j, ff := range chain {
				var v bool
				switch mode {
				case LOS:
					if j == 0 {
						v = bits[0] // pinned: no launch at the scan-in cell
					} else {
						v = bits[j-1]
					}
				case LOC:
					v = bits[j]
				}
				if v {
					e.src[ff] |= bit
				}
			}
		}
	}
	e.run(e.f1)

	// Frame 2 sources: PIs unchanged.
	switch mode {
	case LOS:
		for lane, p := range pats {
			bit := logic.Word(1) << uint(lane)
			for ci, chain := range e.ch.chains {
				bits := p.Scan[ci]
				for j, ff := range chain {
					if bits[j] {
						e.src[ff] |= bit
					} else {
						e.src[ff] &^= bit
					}
				}
			}
		}
	case LOC:
		// Capture: each scannable FF takes its D-pin response from frame 1.
		// Hidden (NoScan) cells hold — the capture pulse is what they
		// never see in this test regime.
		for _, ff := range n.FFs {
			if n.IsNoScan(ff) {
				continue
			}
			e.src[ff] = e.f1[n.Gates[ff].Fanin[0]]
		}
	}
	e.run(e.f2)

	e.valid = true
	return e.f1, e.f2, nil
}

// Frame2Sources returns a copy of the frame-2 source assignment of the
// most recent Launch (per-net words; only PI and FF entries meaningful).
// Fault simulation uses this to rerun the capture frame with a fault
// injected.
func (e *Engine) Frame2Sources() []logic.Word {
	if !e.valid {
		panic("scan: Frame2Sources before Launch")
	}
	return append([]logic.Word(nil), e.src...)
}

// ToggleMasks writes the per-net toggle lane masks (frame1 XOR frame2) of
// the most recent Launch into dst (allocated if nil) and returns it.
func (e *Engine) ToggleMasks(dst []logic.Word) []logic.Word {
	if !e.valid {
		panic("scan: ToggleMasks before Launch")
	}
	return sim.ToggleMask(e.f1, e.f2, dst)
}

// TogglesAll returns the toggle sets of the first numLanes lanes of the
// most recent Launch in one pass (cheaper than per-lane Toggles when most
// lanes are needed).
func (e *Engine) TogglesAll(numLanes int) [][]int {
	if !e.valid {
		panic("scan: TogglesAll before Launch")
	}
	return sim.ToggleSetsAll(e.f1, e.f2, numLanes)
}

// TogglesAllBuf is TogglesAll with a caller-owned backing array (see
// sim.ToggleSetsAllBuf): the returned sets alias buf and are valid only
// until the buffer is passed back in.
func (e *Engine) TogglesAllBuf(numLanes int, buf []int) ([][]int, []int) {
	if e.f1 == nil {
		panic("scan: TogglesAllBuf before Launch")
	}
	return sim.ToggleSetsAllBuf(e.f1, e.f2, numLanes, buf)
}

// Toggles returns the toggle set (gate IDs whose value changed between the
// frames) of pattern lane `lane` from the most recent Launch.
func (e *Engine) Toggles(lane uint) []int {
	if !e.valid {
		panic("scan: Toggles before Launch")
	}
	return sim.ToggleSet(e.f1, e.f2, lane)
}

// ToggleCount returns the number of toggling nets at lane `lane` from the
// most recent Launch.
func (e *Engine) ToggleCount(lane uint) int {
	if !e.valid {
		panic("scan: ToggleCount before Launch")
	}
	return sim.CountToggles(e.f1, e.f2, lane)
}
