package scan

import (
	"testing"

	"superpose/internal/logic"
	"superpose/internal/sim"
	"superpose/internal/stats"
	"superpose/internal/trust"
)

// The engine-kind equivalence suite: the PPSFP backend must produce the
// exact words the scalar backend does — launch frames, toggle masks,
// sweep encodings — at every pattern count, including the partial-lane
// edges (1, 63, 64 patterns and the ragged final sweep chunk). The
// scalar kind is the oracle; the laneMask discipline of Launch means a
// garbage lane would surface as a masks mismatch here.

func kindEquivNetlist(t testing.TB, seed uint64) *Chains {
	t.Helper()
	n, err := trust.Generate(trust.Params{
		Name: "kindeq", PIs: 4, POs: 4, FFs: 16, Comb: 200, Levels: 5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Configure(n, 3)
}

// TestEngineKindLaunchEquivalence compares full launches across kinds at
// the partial-lane pattern counts, in both LOS and LOC.
func TestEngineKindLaunchEquivalence(t *testing.T) {
	ch := kindEquivNetlist(t, 21)
	n := ch.Netlist()
	rng := stats.NewRNG(31)

	scalar := NewEngineKind(ch, sim.EngineScalar)
	ppsfp := NewEngineKind(ch, sim.EnginePPSFP)
	if scalar.Kind() != sim.EngineScalar || ppsfp.Kind() != sim.EnginePPSFP {
		t.Fatalf("kinds resolved to %v/%v", scalar.Kind(), ppsfp.Kind())
	}

	for _, mode := range []Mode{LOS, LOC} {
		for _, count := range []int{1, 2, 63, 64} {
			pats := make([]*Pattern, count)
			for i := range pats {
				pats[i] = ch.RandomPattern(rng)
			}
			sf1, sf2, err := scalar.Launch(pats, mode)
			if err != nil {
				t.Fatal(err)
			}
			wantF1 := append([]logic.Word(nil), sf1...)
			wantF2 := append([]logic.Word(nil), sf2...)
			wantMasks := scalar.ToggleMasks(nil)

			pf1, pf2, err := ppsfp.Launch(pats, mode)
			if err != nil {
				t.Fatal(err)
			}
			for id := range wantF1 {
				if pf1[id] != wantF1[id] || pf2[id] != wantF2[id] {
					t.Fatalf("%v count %d net %s: frames (%016x,%016x), scalar (%016x,%016x)",
						mode, count, n.NameOf(id), pf1[id], pf2[id], wantF1[id], wantF2[id])
				}
			}
			gotMasks := ppsfp.ToggleMasks(nil)
			for id := range wantMasks {
				if gotMasks[id] != wantMasks[id] {
					t.Fatalf("%v count %d net %s: toggle mask %016x, scalar %016x",
						mode, count, n.NameOf(id), gotMasks[id], wantMasks[id])
				}
			}
		}
	}
}

// TestEngineSetKindPreservesResults switches one engine between kinds
// mid-stream and requires the same launch both before and after — the
// selector must never carry state across kinds.
func TestEngineSetKindPreservesResults(t *testing.T) {
	ch := kindEquivNetlist(t, 22)
	rng := stats.NewRNG(5)
	eng := NewEngine(ch) // default kind: PPSFP
	if eng.Kind() != sim.EnginePPSFP {
		t.Fatalf("default kind %v, want ppsfp", eng.Kind())
	}

	pats := []*Pattern{ch.RandomPattern(rng), ch.RandomPattern(rng)}
	f1, f2, err := eng.Launch(pats, LOS)
	if err != nil {
		t.Fatal(err)
	}
	wantF1 := append([]logic.Word(nil), f1...)
	wantF2 := append([]logic.Word(nil), f2...)

	eng.SetKind(sim.EngineScalar)
	g1, g2, err := eng.Launch(pats, LOS)
	if err != nil {
		t.Fatal(err)
	}
	for id := range wantF1 {
		if g1[id] != wantF1[id] || g2[id] != wantF2[id] {
			t.Fatalf("net %d: scalar relaunch diverged after SetKind", id)
		}
	}

	eng.SetKind(sim.EngineAuto) // back to PPSFP
	h1, h2, err := eng.Launch(pats, LOS)
	if err != nil {
		t.Fatal(err)
	}
	for id := range wantF1 {
		if h1[id] != wantF1[id] || h2[id] != wantF2[id] {
			t.Fatalf("net %d: ppsfp relaunch diverged after SetKind round-trip", id)
		}
	}
}

// TestSweeperKindEquivalence runs the same sweep session — including the
// ragged final chunk and incremental Advance transitions — under both
// kinds and requires identical sparse toggle encodings.
func TestSweeperKindEquivalence(t *testing.T) {
	ch := kindEquivNetlist(t, 23)
	rng := stats.NewRNG(77)

	// Every stimulus bit plus one duplicate: the flip count is chosen to
	// leave a short final chunk (the 65-pattern shape of the edge suite).
	var flips []Flip
	for c := 0; c < ch.NumChains(); c++ {
		for j := range ch.Chain(c) {
			flips = append(flips, Flip{c, j})
		}
	}
	for i := range ch.Netlist().PIs {
		flips = append(flips, Flip{PIFlip, i})
	}
	for len(flips)%64 != 1 {
		flips = append(flips, flips[0])
	}

	for _, mode := range []Mode{LOS, LOC} {
		scalar, err := NewSweeperKind(ch, mode, flips, sim.EngineScalar)
		if err != nil {
			t.Fatal(err)
		}
		ppsfp, err := NewSweeperKind(ch, mode, flips, sim.EnginePPSFP)
		if err != nil {
			t.Fatal(err)
		}
		if last := scalar.ChunkFlips(scalar.NumChunks() - 1); len(last) != 1 {
			t.Fatalf("final chunk holds %d flips, want the 1-lane edge", len(last))
		}

		base := ch.RandomPattern(rng)
		baseP := base.Clone()
		if err := scalar.Rebase(base); err != nil {
			t.Fatal(err)
		}
		if err := ppsfp.Rebase(baseP); err != nil {
			t.Fatal(err)
		}

		compare := func(step string) {
			t.Helper()
			for c := 0; c < scalar.NumChunks(); c++ {
				sids, smasks := scalar.Run(c)
				pids, pmasks := ppsfp.Run(c)
				if len(sids) != len(pids) {
					t.Fatalf("%v %s chunk %d: %d ids vs %d", mode, step, c, len(pids), len(sids))
				}
				for i := range sids {
					if sids[i] != pids[i] || smasks[i] != pmasks[i] {
						t.Fatalf("%v %s chunk %d entry %d: (%d,%016x) vs scalar (%d,%016x)",
							mode, step, c, i, pids[i], pmasks[i], sids[i], smasks[i])
					}
				}
			}
		}
		compare("rebased")

		// Two accepted climb steps: Advance must stay equivalent too.
		for step := 0; step < 2; step++ {
			f := flips[rng.Intn(len(flips))]
			if err := scalar.Advance(f); err != nil {
				t.Fatal(err)
			}
			if err := ppsfp.Advance(f); err != nil {
				t.Fatal(err)
			}
			compare("advanced")
		}
	}
}
