package scan

import (
	"math"
	"testing"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/power"
	"superpose/internal/stats"
	"superpose/internal/trust"
)

// referenceToggles launches the materialized single-flip clones of base
// through the engine — the path the Sweeper replaces — and returns the
// dense toggle-mask array, truncated to the batch's lanes.
func referenceToggles(t *testing.T, eng *Engine, base *Pattern, flips []Flip, mode Mode) []logic.Word {
	t.Helper()
	clones := make([]*Pattern, len(flips))
	for i, f := range flips {
		q := base.Clone()
		if f.IsPI() {
			q.PI[f.Index] = !q.PI[f.Index]
		} else {
			q.Scan[f.Chain][f.Index] = !q.Scan[f.Chain][f.Index]
		}
		clones[i] = q
	}
	if _, _, err := eng.Launch(clones, mode); err != nil {
		t.Fatal(err)
	}
	masks := eng.ToggleMasks(nil)
	var laneMask logic.Word = ^logic.Word(0)
	if len(flips) < 64 {
		laneMask = logic.Word(1)<<uint(len(flips)) - 1
	}
	for id := range masks {
		masks[id] &= laneMask
	}
	return masks
}

// densify expands a sparse (ids, masks) encoding into a per-gate array.
func densify(numGates int, ids []int, masks []logic.Word) []logic.Word {
	out := make([]logic.Word, numGates)
	for k, id := range ids {
		out[id] = masks[k]
	}
	return out
}

// TestSweeperMatchesLaunch is the fuzz-style structural guard: random
// circuits, chain counts, modes and bases — every chunk's sparse toggle
// encoding must densify to exactly the engine's toggle masks over the
// materialized clones, and its sparse pricing must be bit-identical to
// dense pricing of those masks.
func TestSweeperMatchesLaunch(t *testing.T) {
	rng := stats.NewRNG(0x5eeb)
	lib := power.SAED90Like()
	for trial := 0; trial < 10; trial++ {
		n, err := trust.Generate(trust.Params{
			Name:   "sweep",
			PIs:    1 + int(rng.Uint64()%6),
			POs:    3,
			FFs:    4 + int(rng.Uint64()%20),
			Comb:   30 + int(rng.Uint64()%120),
			Levels: 3 + int(rng.Uint64()%4),
			Seed:   rng.Uint64(),
		})
		if err != nil {
			t.Fatal(err)
		}
		ch := Configure(n, 1+int(rng.Uint64()%4))
		eng := NewEngine(ch)
		model := power.NewModel(n, lib)
		for _, mode := range []Mode{LOS, LOC} {
			// Every stimulus bit once — plus duplicates, so a flip list
			// that revisits bits (and spans a ragged final chunk) works.
			var flips []Flip
			for c := 0; c < ch.NumChains(); c++ {
				for j := range ch.Chain(c) {
					flips = append(flips, Flip{c, j})
				}
			}
			for i := range n.PIs {
				flips = append(flips, Flip{PIFlip, i})
			}
			for k := 0; k < 5; k++ {
				flips = append(flips, flips[int(rng.Uint64()%uint64(len(flips)))])
			}

			s, err := NewSweeper(ch, mode, flips)
			if err != nil {
				t.Fatal(err)
			}
			for rebase := 0; rebase < 2; rebase++ {
				base := ch.RandomPattern(rng)
				if err := s.Rebase(base); err != nil {
					t.Fatal(err)
				}
				for c := 0; c < s.NumChunks(); c++ {
					chunk := s.ChunkFlips(c)
					ids, masks := s.Run(c)
					got := densify(n.NumGates(), ids, masks)
					want := referenceToggles(t, eng, base, chunk, mode)
					for id := range want {
						if got[id] != want[id] {
							t.Fatalf("trial %d %v chunk %d: gate %s toggles %064b, want %064b",
								trial, mode, c, n.NameOf(id), got[id], want[id])
						}
					}
					dense := model.NominalLanes(want, len(chunk))
					sparse := model.NominalLanesSparse(ids, masks, len(chunk), nil)
					for lane := range dense {
						if math.Float64bits(dense[lane]) != math.Float64bits(sparse[lane]) {
							t.Fatalf("trial %d %v chunk %d lane %d: sparse price %v != dense %v",
								trial, mode, c, lane, sparse[lane], dense[lane])
						}
					}
				}
				// Re-running a chunk against the same base must be
				// idempotent: Run restores its working state.
				if s.NumChunks() > 0 {
					ids, masks := s.Run(0)
					again := densify(n.NumGates(), ids, masks)
					want := referenceToggles(t, eng, base, s.ChunkFlips(0), mode)
					for id := range want {
						if again[id] != want[id] {
							t.Fatalf("trial %d %v: chunk 0 re-run deviates at gate %s", trial, mode, n.NameOf(id))
						}
					}
				}
			}
		}
	}
}

// TestSweeperAdvanceMatchesRebase pins the incremental rebase: a chain
// of accepted flips advanced one at a time must leave the sweeper in
// exactly the state a full Rebase on the materialized pattern produces —
// every chunk's sparse encoding identical, across modes and circuits.
func TestSweeperAdvanceMatchesRebase(t *testing.T) {
	rng := stats.NewRNG(0xadace)
	for trial := 0; trial < 6; trial++ {
		n, err := trust.Generate(trust.Params{
			Name:   "adv",
			PIs:    1 + int(rng.Uint64()%5),
			POs:    3,
			FFs:    4 + int(rng.Uint64()%16),
			Comb:   30 + int(rng.Uint64()%100),
			Levels: 3 + int(rng.Uint64()%4),
			Seed:   rng.Uint64(),
		})
		if err != nil {
			t.Fatal(err)
		}
		ch := Configure(n, 1+int(rng.Uint64()%3))
		for _, mode := range []Mode{LOS, LOC} {
			var flips []Flip
			for c := 0; c < ch.NumChains(); c++ {
				for j := range ch.Chain(c) {
					flips = append(flips, Flip{c, j})
				}
			}
			for i := range n.PIs {
				flips = append(flips, Flip{PIFlip, i})
			}
			inc, err := NewSweeper(ch, mode, flips)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := NewSweeper(ch, mode, flips)
			if err != nil {
				t.Fatal(err)
			}
			base := ch.RandomPattern(rng)
			if err := inc.Rebase(base); err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 4; step++ {
				f := flips[int(rng.Uint64()%uint64(len(flips)))]
				if err := inc.Advance(f); err != nil {
					t.Fatal(err)
				}
				base = base.Clone()
				if f.IsPI() {
					base.PI[f.Index] = !base.PI[f.Index]
				} else {
					base.Scan[f.Chain][f.Index] = !base.Scan[f.Chain][f.Index]
				}
				if err := ref.Rebase(base); err != nil {
					t.Fatal(err)
				}
				for c := 0; c < inc.NumChunks(); c++ {
					ids, masks := inc.Run(c)
					got := densify(n.NumGates(), ids, masks)
					wids, wmasks := ref.Run(c)
					want := densify(n.NumGates(), wids, wmasks)
					for id := range want {
						if got[id] != want[id] {
							t.Fatalf("trial %d %v step %d chunk %d: gate %s toggles %064b, want %064b",
								trial, mode, step, c, n.NameOf(id), got[id], want[id])
						}
					}
				}
			}
		}
	}
	// Misuse guards.
	n, err := trust.Generate(trust.Params{Name: "advg", PIs: 2, POs: 2, FFs: 4, Comb: 20, Levels: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ch := Configure(n, 1)
	s, err := NewSweeper(ch, LOS, []Flip{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(Flip{0, 0}); err == nil {
		t.Error("Advance before Rebase must error")
	}
	if err := s.Rebase(ch.RandomPattern(stats.NewRNG(1))); err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(Flip{0, 3}); err == nil {
		t.Error("Advance on a flip outside the sweep must error")
	}
}

// TestSweeperHiddenState pins NoScan handling: a hidden cell holds its
// pinned value through both frames, flips never perturb it, and under
// LOC it must not re-capture even when a flip cone reaches its D pin.
func TestSweeperHiddenState(t *testing.T) {
	b := netlist.NewBuilder("hid")
	mustAdd := func(_ int, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(b.AddInput("pi"))
	mustAdd(b.AddDFF("s0", "d0"))
	mustAdd(b.AddDFF("s1", "d1"))
	mustAdd(b.AddNonScanDFF("h", "dh"))
	mustAdd(b.AddGate("d0", netlist.Xor, "s0", "h"))
	mustAdd(b.AddGate("d1", netlist.Xor, "s1", "pi"))
	mustAdd(b.AddGate("dh", netlist.Xor, "s0", "pi")) // flip cones reach h's D pin
	b.MarkOutput("d0")
	b.MarkOutput("d1")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ch := Configure(n, 1)
	h, _ := n.GateID("h")
	flips := []Flip{{0, 0}, {0, 1}, {PIFlip, 0}}
	for _, mode := range []Mode{LOS, LOC} {
		for _, hidden := range []logic.Word{0, logic.AllOne} {
			eng := NewEngine(ch)
			eng.SetHiddenState(h, hidden)
			s, err := NewSweeper(ch, mode, flips)
			if err != nil {
				t.Fatal(err)
			}
			s.SetHiddenState(h, hidden)
			base := ch.RandomPattern(stats.NewRNG(3))
			if err := s.Rebase(base); err != nil {
				t.Fatal(err)
			}
			ids, masks := s.Run(0)
			got := densify(n.NumGates(), ids, masks)
			want := referenceToggles(t, eng, base, flips, mode)
			for id := range want {
				if got[id] != want[id] {
					t.Fatalf("%v hidden=%v: gate %s toggles %b, want %b",
						mode, hidden&1, n.NameOf(id), got[id], want[id])
				}
			}
			if got[h] != 0 {
				t.Errorf("%v: hidden cell toggled under a sweep", mode)
			}
		}
	}
}

// TestNewSweeperValidation rejects out-of-range flips.
func TestNewSweeperValidation(t *testing.T) {
	n, err := trust.Generate(trust.Params{Name: "val", PIs: 2, POs: 2, FFs: 4, Comb: 20, Levels: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch := Configure(n, 2)
	cases := [][]Flip{
		{{Chain: 9, Index: 0}},
		{{Chain: -3, Index: 0}},
		{{Chain: 0, Index: 99}},
		{{Chain: 0, Index: -1}},
		{{Chain: PIFlip, Index: 2}},
		{{Chain: PIFlip, Index: -1}},
	}
	for _, fl := range cases {
		if _, err := NewSweeper(ch, LOS, fl); err == nil {
			t.Errorf("flips %v accepted", fl)
		}
	}
	s, err := NewSweeper(ch, LOS, nil)
	if err != nil {
		t.Fatalf("empty flip list must be valid: %v", err)
	}
	if s.NumChunks() != 0 {
		t.Errorf("empty sweep has %d chunks", s.NumChunks())
	}
}

// TestSweeperRunBeforeRebasePanics pins the misuse guard.
func TestSweeperRunBeforeRebasePanics(t *testing.T) {
	n, err := trust.Generate(trust.Params{Name: "panic", PIs: 2, POs: 2, FFs: 4, Comb: 20, Levels: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ch := Configure(n, 1)
	s, err := NewSweeper(ch, LOS, []Flip{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Run before Rebase must panic")
		}
	}()
	s.Run(0)
}
