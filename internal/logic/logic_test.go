package logic

import (
	"testing"
	"testing/quick"
)

func TestStringNames(t *testing.T) {
	cases := map[V]string{Zero: "0", One: "1", X: "X", D: "D", Dbar: "D'"}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("V(%d).String() = %q, want %q", v, got, want)
		}
	}
	if got := V(99).String(); got != "V(99)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestNotInvolution(t *testing.T) {
	for v := V(0); v < nV; v++ {
		if v.Not().Not() != v {
			t.Errorf("Not(Not(%v)) = %v", v, v.Not().Not())
		}
	}
}

func TestNotSwapsD(t *testing.T) {
	if D.Not() != Dbar || Dbar.Not() != D {
		t.Error("Not must swap D and D'")
	}
	if Zero.Not() != One || One.Not() != Zero {
		t.Error("Not must swap 0 and 1")
	}
	if X.Not() != X {
		t.Error("Not(X) must be X")
	}
}

func TestComponents(t *testing.T) {
	type want struct {
		g, f   bool
		gk, fk bool
	}
	cases := map[V]want{
		Zero: {false, false, true, true},
		One:  {true, true, true, true},
		D:    {true, false, true, true},
		Dbar: {false, true, true, true},
		X:    {false, false, false, false},
	}
	for v, w := range cases {
		g, gk := v.Good()
		f, fk := v.Faulty()
		if g != w.g || gk != w.gk || f != w.f || fk != w.fk {
			t.Errorf("%v components: good=(%v,%v) faulty=(%v,%v)", v, g, gk, f, fk)
		}
	}
}

// ref2 converts a five-valued value to its two-valued (good, faulty) pair
// for exhaustive reference checking; only called for known values.
func ref2(v V) (g, f bool) {
	g, _ = v.Good()
	f, _ = v.Faulty()
	return g, f
}

func TestFiveValuedExhaustiveAgainstTwoValued(t *testing.T) {
	known := []V{Zero, One, D, Dbar}
	for _, a := range known {
		for _, b := range known {
			ag, af := ref2(a)
			bg, bf := ref2(b)

			if got := And5(a, b); got != compose(ag && bg, af && bf, true, true) {
				t.Errorf("And5(%v,%v) = %v", a, b, got)
			}
			if got := Or5(a, b); got != compose(ag || bg, af || bf, true, true) {
				t.Errorf("Or5(%v,%v) = %v", a, b, got)
			}
			if got := Xor5(a, b); got != compose(ag != bg, af != bf, true, true) {
				t.Errorf("Xor5(%v,%v) = %v", a, b, got)
			}
		}
	}
}

func TestFiveValuedControllingValues(t *testing.T) {
	// A controlling 0 dominates X for AND; a controlling 1 dominates X for OR.
	if And5(Zero, X) != Zero || And5(X, Zero) != Zero {
		t.Error("AND with controlling 0 and X must be 0")
	}
	if Or5(One, X) != One || Or5(X, One) != One {
		t.Error("OR with controlling 1 and X must be 1")
	}
	// Non-controlling value with X stays X.
	if And5(One, X) != X || Or5(Zero, X) != X {
		t.Error("non-controlling with X must stay X")
	}
	// XOR with any X side is X.
	for v := V(0); v < nV; v++ {
		if Xor5(v, X) != X || Xor5(X, v) != X {
			t.Errorf("Xor5 with X operand must be X (got %v,%v)", Xor5(v, X), Xor5(X, v))
		}
	}
	// D interacting with controlling values.
	if And5(D, Zero) != Zero {
		t.Error("And5(D,0) must be 0")
	}
	if And5(D, One) != D {
		t.Error("And5(D,1) must be D")
	}
	if And5(D, Dbar) != Zero {
		t.Error("And5(D,D') must be 0 (good 1&0=0, faulty 0&1=0)")
	}
	if Or5(D, Dbar) != One {
		t.Error("Or5(D,D') must be 1")
	}
	if Xor5(D, Dbar) != One {
		t.Error("Xor5(D,D') must be 1 (1^0=1, 0^1=1)")
	}
	if Xor5(D, D) != Zero {
		t.Error("Xor5(D,D) must be 0")
	}
}

func TestCommutativity(t *testing.T) {
	for a := V(0); a < nV; a++ {
		for b := V(0); b < nV; b++ {
			if And5(a, b) != And5(b, a) {
				t.Errorf("And5 not commutative at (%v,%v)", a, b)
			}
			if Or5(a, b) != Or5(b, a) {
				t.Errorf("Or5 not commutative at (%v,%v)", a, b)
			}
			if Xor5(a, b) != Xor5(b, a) {
				t.Errorf("Xor5 not commutative at (%v,%v)", a, b)
			}
		}
	}
}

func TestAssociativityProperty(t *testing.T) {
	// Associativity holds on fully known values. It deliberately does NOT
	// hold with X operands: the flat five-valued encoding collapses
	// partially known values (e.g. good-known/faulty-unknown) to X, so
	// And5(And5(X,D'),D) = X while And5(X,And5(D',D)) = 0. That pessimism
	// is safe for PODEM (X may only ever be refined toward a known value).
	vals := []V{Zero, One, D, Dbar}
	f := func(ai, bi, ci uint8) bool {
		a, b, c := vals[ai%4], vals[bi%4], vals[ci%4]
		return And5(And5(a, b), c) == And5(a, And5(b, c)) &&
			Or5(Or5(a, b), c) == Or5(a, Or5(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXPessimismDocumented(t *testing.T) {
	// The flat encoding loses the good-circuit 0 of And5(X, Dbar); the
	// result is X rather than a "good=0, faulty=?" hybrid. This test pins
	// the behaviour so a future encoding change is a conscious decision.
	if got := And5(X, Dbar); got != X {
		t.Errorf("And5(X,D') = %v, want X (pessimistic)", got)
	}
	if got := And5(And5(X, Dbar), D); got != X {
		t.Errorf("pessimistic chain = %v, want X", got)
	}
	if got := And5(X, And5(Dbar, D)); got != Zero {
		t.Errorf("And5(X, And5(D',D)) = %v, want 0", got)
	}
}

func TestDeMorganProperty(t *testing.T) {
	vals := []V{Zero, One, X, D, Dbar}
	f := func(ai, bi uint8) bool {
		a, b := vals[ai%5], vals[bi%5]
		return And5(a, b).Not() == Or5(a.Not(), b.Not())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsDAndKnown(t *testing.T) {
	if !D.IsD() || !Dbar.IsD() {
		t.Error("D and D' must report IsD")
	}
	if Zero.IsD() || One.IsD() || X.IsD() {
		t.Error("0/1/X must not report IsD")
	}
	if X.Known() {
		t.Error("X must not be Known")
	}
	for _, v := range []V{Zero, One, D, Dbar} {
		if !v.Known() {
			t.Errorf("%v must be Known", v)
		}
	}
}

func TestFromBit(t *testing.T) {
	if FromBit(true) != One || FromBit(false) != Zero {
		t.Error("FromBit mapping wrong")
	}
}

func TestXorIdentities(t *testing.T) {
	// a ^ 0 == a, a ^ 1 == Not(a), a ^ a == 0 for known a.
	for _, a := range []V{Zero, One, D, Dbar} {
		if Xor5(a, Zero) != a {
			t.Errorf("Xor5(%v,0) = %v", a, Xor5(a, Zero))
		}
		if Xor5(a, One) != a.Not() {
			t.Errorf("Xor5(%v,1) = %v", a, Xor5(a, One))
		}
		if Xor5(a, a) != Zero {
			t.Errorf("Xor5(%v,%v) = %v", a, a, Xor5(a, a))
		}
	}
}
