// Package logic provides the logic-value domains used throughout the
// superposition toolchain: plain two-valued logic packed 64 patterns to a
// word for pattern-parallel simulation, and the five-valued D-algebra
// (0, 1, X, D, D̄) used by the PODEM test generator.
package logic

import "fmt"

// Word is a 64-way pattern-parallel two-valued logic word: bit i of the
// word holds the value of the signal under pattern i.
type Word uint64

// AllZero and AllOne are the constant words.
const (
	AllZero Word = 0
	AllOne  Word = ^Word(0)
)

// V is a five-valued logic value from the D-algebra.
//
// The encoding uses two two-valued components: the value in the good
// (fault-free) circuit and the value in the faulty circuit. D means
// good=1/faulty=0, Dbar means good=0/faulty=1, X means unknown in both.
type V uint8

// The five logic values. The numeric encoding packs (good, faulty) pairs:
// bit 0 = good value set, bit 1 = good value, bit 2 = faulty value set,
// bit 3 = faulty value. We instead use a compact enum and table-driven
// evaluation, which profiles faster for PODEM's implication step.
const (
	Zero V = iota // 0 in both good and faulty circuit
	One           // 1 in both good and faulty circuit
	X             // unknown
	D             // 1 in good circuit, 0 in faulty circuit
	Dbar          // 0 in good circuit, 1 in faulty circuit
	nV            // number of values (table dimension)
)

// String returns the conventional D-algebra notation.
func (v V) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case X:
		return "X"
	case D:
		return "D"
	case Dbar:
		return "D'"
	default:
		return fmt.Sprintf("V(%d)", uint8(v))
	}
}

// Known reports whether v is a fully determined value (not X).
func (v V) Known() bool { return v != X }

// Good returns the good-circuit two-valued component and whether it is known.
func (v V) Good() (bit bool, known bool) {
	switch v {
	case Zero, Dbar:
		return false, true
	case One, D:
		return true, true
	default:
		return false, false
	}
}

// Faulty returns the faulty-circuit two-valued component and whether it is known.
func (v V) Faulty() (bit bool, known bool) {
	switch v {
	case Zero, D:
		return false, true
	case One, Dbar:
		return true, true
	default:
		return false, false
	}
}

// Not returns the five-valued complement.
func (v V) Not() V {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	case D:
		return Dbar
	case Dbar:
		return D
	default:
		return X
	}
}

// IsD reports whether v carries a fault effect (D or D̄).
func (v V) IsD() bool { return v == D || v == Dbar }

// FromBit converts a two-valued bit to a five-valued constant.
func FromBit(b bool) V {
	if b {
		return One
	}
	return Zero
}

// compose builds a five-valued value from (good, faulty) components where
// each component may be unknown. If either side is unknown the result is X:
// the D-algebra does not represent partially-known values.
func compose(g, f bool, gk, fk bool) V {
	if !gk || !fk {
		return X
	}
	switch {
	case g && f:
		return One
	case !g && !f:
		return Zero
	case g && !f:
		return D
	default:
		return Dbar
	}
}

// and5/or5/xor5 are the five-valued primitive tables, computed once at init.
var and5, or5, xor5 [nV][nV]V

func init() {
	for a := V(0); a < nV; a++ {
		for b := V(0); b < nV; b++ {
			ag, agk := a.Good()
			af, afk := a.Faulty()
			bg, bgk := b.Good()
			bf, bfk := b.Faulty()

			// AND: a controlling 0 on either side forces 0 even if the
			// other side is X, separately in the good and faulty circuit.
			gOK := (agk && !ag) || (bgk && !bg) || (agk && bgk)
			fOK := (afk && !af) || (bfk && !bf) || (afk && bfk)
			and5[a][b] = compose(ag && bg, af && bf, gOK, fOK)

			// OR: controlling 1.
			gOK = (agk && ag) || (bgk && bg) || (agk && bgk)
			fOK = (afk && af) || (bfk && bf) || (afk && bfk)
			or5[a][b] = compose(ag || bg, af || bf, gOK, fOK)

			// XOR has no controlling value: both inputs must be known.
			xor5[a][b] = compose(ag != bg, af != bf, agk && bgk, afk && bfk)
		}
	}
	// Note on controlling values with an X side: compose receives the
	// unknown component as false, which is already the correct result for
	// AND controlled by 0 and (via the || in g/f) for OR controlled by 1.
	// Covered by TestFiveValuedControllingValues.
}

// And5 returns the five-valued AND of a and b.
func And5(a, b V) V { return and5[a][b] }

// Or5 returns the five-valued OR of a and b.
func Or5(a, b V) V { return or5[a][b] }

// Xor5 returns the five-valued XOR of a and b.
func Xor5(a, b V) V { return xor5[a][b] }
