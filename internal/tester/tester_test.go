package tester

import (
	"math"
	"testing"
)

func applyStream(f *FaultModel, n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = f.Apply(v)
	}
	return out
}

func TestZeroConfigIsIdentity(t *testing.T) {
	f := New(Config{})
	for i, v := range applyStream(f, 1000, 3.25) {
		if v != 3.25 {
			t.Fatalf("reading %d: ideal tester changed %v", i, v)
		}
	}
	if f.Stats().Readings != 1000 {
		t.Errorf("Readings = %d", f.Stats().Readings)
	}
	if (Config{}).Enabled() {
		t.Error("zero Config reports Enabled")
	}
}

func TestBitReproducible(t *testing.T) {
	cfg, err := Preset("combined", 42)
	if err != nil {
		t.Fatal(err)
	}
	a := applyStream(New(cfg), 5000, 1.0)
	b := applyStream(New(cfg), 5000, 1.0)
	for i := range a {
		an, bn := math.IsNaN(a[i]), math.IsNaN(b[i])
		if an != bn || (!an && a[i] != b[i]) {
			t.Fatalf("reading %d: %v != %v (same seed)", i, a[i], b[i])
		}
	}
	// A different seed must give a different realization.
	cfg.Seed = 43
	c := applyStream(New(cfg), 5000, 1.0)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical fault streams")
	}
}

func TestSpikeAndDropRates(t *testing.T) {
	f := New(Config{Seed: 7, SpikeRate: 0.02, SpikeMag: 10, DropRate: 0.01})
	const n = 50000
	spikes, drops := 0, 0
	for i := 0; i < n; i++ {
		v := f.Apply(1.0)
		switch {
		case math.IsNaN(v):
			drops++
		case v >= 10: // spikes are at least SpikeMag×
			spikes++
		case v != 1.0:
			t.Fatalf("reading %d: unexpected value %v", i, v)
		}
	}
	if got := float64(spikes) / n; got < 0.015 || got > 0.025 {
		t.Errorf("spike rate %.4f, want ≈ 0.02", got)
	}
	if got := float64(drops) / n; got < 0.006 || got > 0.014 {
		t.Errorf("drop rate %.4f, want ≈ 0.01", got)
	}
	st := f.Stats()
	if int(st.Spiked) != spikes || int(st.Dropped) != drops {
		t.Errorf("stats (%d, %d) disagree with observed (%d, %d)",
			st.Spiked, st.Dropped, spikes, drops)
	}
}

func TestDriftRampAndSinusoid(t *testing.T) {
	f := New(Config{Seed: 1, DriftPerReading: 1e-4})
	vals := applyStream(f, 1001, 2.0)
	if vals[0] != 2.0 {
		t.Errorf("reading 0 should be undrifted, got %v", vals[0])
	}
	want := 2.0 * (1 + 1e-4*1000)
	if math.Abs(vals[1000]-want) > 1e-12 {
		t.Errorf("reading 1000 = %v, want %v", vals[1000], want)
	}

	// Sinusoid alone: bounded by the amplitude, mean ≈ clean value.
	f = New(Config{Seed: 1, DriftAmplitude: 0.05, DriftPeriod: 100})
	sum := 0.0
	for _, v := range applyStream(f, 1000, 1.0) {
		if v < 0.95-1e-12 || v > 1.05+1e-12 {
			t.Fatalf("sinusoidal drift out of bounds: %v", v)
		}
		sum += v
	}
	if mean := sum / 1000; math.Abs(mean-1) > 0.001 {
		t.Errorf("sinusoid mean %v, want ≈ 1", mean)
	}
}

func TestStuckWindowRepeatsValue(t *testing.T) {
	f := New(Config{Seed: 3, StuckRate: 1, StuckLen: 4})
	// First reading latches; the next 4 repeat it regardless of input.
	first := f.Apply(5.0)
	if first != 5.0 {
		t.Fatalf("first reading %v", first)
	}
	for i := 0; i < 4; i++ {
		if v := f.Apply(100.0); v != 5.0 {
			t.Fatalf("stuck reading %d = %v, want 5", i, v)
		}
	}
	if f.Stats().Stuck != 4 {
		t.Errorf("Stuck = %d, want 4", f.Stats().Stuck)
	}
}

func TestBurstWindowAddsNoise(t *testing.T) {
	f := New(Config{Seed: 9, BurstRate: 1, BurstLen: 8, BurstSigma: 0.3})
	changed := 0
	for i := 0; i < 8; i++ {
		if f.Apply(1.0) != 1.0 {
			changed++
		}
	}
	if changed < 7 {
		t.Errorf("only %d/8 burst readings perturbed", changed)
	}
	if f.Stats().Burst != 8 {
		t.Errorf("Burst = %d, want 8", f.Stats().Burst)
	}
}

func TestPresetsValidateAndCombinedMeetsContamination(t *testing.T) {
	for _, name := range PresetNames() {
		cfg, err := Preset(name, 1)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", name, err)
		}
		New(cfg) // must not panic
	}
	combined, _ := Preset("combined", 1)
	if combined.SpikeRate < 0.01 || combined.SpikeMag < 10 {
		t.Errorf("combined preset %+v below the ≥1%% at 10× contamination floor", combined)
	}
	if combined.DriftPerReading <= 0 {
		t.Error("combined preset carries no drift")
	}
	if _, err := Preset("bogus", 1); err == nil {
		t.Error("unknown preset should error")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{SpikeRate: -0.1},
		{DropRate: 1.5},
		{SpikeRate: 0.1, SpikeMag: 0.5},
		{BurstRate: 0.1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail validation: %+v", i, cfg)
		}
	}
}
