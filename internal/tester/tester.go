// Package tester models the measurement-acquisition pathologies of real
// side-channel test equipment. The power model (internal/power) produces
// well-behaved readings — process variation plus optional Gaussian
// measurement noise — but real testers also suffer outlier spikes (probe
// bounce, supply glitches), dropped readings (trigger misses, ADC
// overrange), slow thermal drift, burst-noise windows and stuck ADC
// latches. A FaultModel wraps the reading stream with these injectable
// pathologies so the acquisition layer in internal/core can be exercised
// — and hardened — against them.
//
// Like every stochastic component of the toolchain, a FaultModel is
// seeded and bit-reproducible: the same configuration applied to the same
// reading stream perturbs it identically.
package tester

import (
	"fmt"
	"math"
	"sort"

	"superpose/internal/stats"
)

// Config parameterizes the injectable pathologies. The zero value is an
// ideal tester (every fault disabled). All rates are per-reading
// probabilities; magnitudes are relative to the clean reading.
type Config struct {
	// Seed selects the fault realization.
	Seed uint64

	// SpikeRate is the probability a reading is contaminated by an
	// outlier spike; SpikeMag is the spike's magnitude — the reading is
	// multiplied by a heavy-tailed factor of at least SpikeMag.
	SpikeRate float64
	SpikeMag  float64

	// DropRate is the probability a reading is lost entirely (the tester
	// reports NaN: trigger miss, ADC overrange).
	DropRate float64

	// DriftPerReading is a slow thermal ramp: reading i is scaled by
	// (1 + DriftPerReading·i). DriftAmplitude/DriftPeriod add a
	// sinusoidal component (period in readings; default 4096 when an
	// amplitude is configured).
	DriftPerReading float64
	DriftAmplitude  float64
	DriftPeriod     float64

	// BurstRate is the probability a burst-noise window opens at a
	// reading; for the next BurstLen readings (default 16) every reading
	// carries extra relative Gaussian noise of sigma BurstSigma.
	BurstRate  float64
	BurstLen   int
	BurstSigma float64

	// StuckRate is the probability the ADC latches at a reading: the
	// latched value is repeated for the next StuckLen readings (default 8).
	StuckRate float64
	StuckLen  int

	// Delay-channel pathologies. The transition-delay measurement path
	// runs through its own instrumentation — a time-to-digital converter
	// rather than the power ADC — with its own fault physics: per-reading
	// Gaussian jitter (relative), quantization to a fixed LSB (absolute,
	// in delay units; a quantizing TDC legitimately repeats values, which
	// is why the delay acquisition runs with the stuck-latch guard off),
	// and dropped conversions. They perturb only the ApplyDelay stream,
	// from an RNG stream independent of the power faults', so enabling
	// the delay channel never changes a single power reading.
	DelayJitterSigma float64
	DelayQuantum     float64
	DelayDropRate    float64
}

// Enabled reports whether any pathology is configured.
func (c Config) Enabled() bool {
	return c.SpikeRate > 0 || c.DropRate > 0 ||
		c.DriftPerReading != 0 || c.DriftAmplitude > 0 ||
		c.BurstRate > 0 || c.StuckRate > 0 || c.DelayEnabled()
}

// DelayEnabled reports whether any delay-channel pathology is configured.
func (c Config) DelayEnabled() bool {
	return c.DelayJitterSigma > 0 || c.DelayQuantum > 0 || c.DelayDropRate > 0
}

// Validate checks rates and magnitudes for sanity.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"SpikeRate", c.SpikeRate}, {"DropRate", c.DropRate},
		{"BurstRate", c.BurstRate}, {"StuckRate", c.StuckRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("tester: %s %v outside [0, 1]", r.name, r.v)
		}
	}
	if c.DelayDropRate < 0 || c.DelayDropRate > 1 {
		return fmt.Errorf("tester: DelayDropRate %v outside [0, 1]", c.DelayDropRate)
	}
	if c.DelayJitterSigma < 0 {
		return fmt.Errorf("tester: DelayJitterSigma %v must not be negative", c.DelayJitterSigma)
	}
	if c.DelayQuantum < 0 {
		return fmt.Errorf("tester: DelayQuantum %v must not be negative", c.DelayQuantum)
	}
	if c.SpikeRate > 0 && c.SpikeMag <= 1 {
		return fmt.Errorf("tester: SpikeMag %v must exceed 1 when spikes are enabled", c.SpikeMag)
	}
	if c.BurstRate > 0 && c.BurstSigma <= 0 {
		return fmt.Errorf("tester: BurstSigma %v must be positive when bursts are enabled", c.BurstSigma)
	}
	return nil
}

// Stats counts what the fault model did to the reading stream — ground
// truth for tests and diagnostics; the defender's acquisition layer keeps
// its own (observable) counters.
type Stats struct {
	Readings uint64 // readings passed through the model
	Spiked   uint64
	Dropped  uint64
	Burst    uint64 // readings inside a burst window
	Stuck    uint64 // readings replaced by a latched value

	DelayReadings uint64 // delay readings passed through ApplyDelay
	DelayDropped  uint64 // delay conversions lost (NaN)
}

// FaultModel applies a Config to a stream of readings. Not safe for
// concurrent use (like the chip it perturbs).
type FaultModel struct {
	cfg   Config
	rng   *stats.RNG
	index uint64 // readings seen so far (drives drift)

	burstLeft int
	stuckLeft int
	stuckVal  float64

	// The delay channel draws from its own RNG stream and advances its
	// own reading index: interleaving delay acquisitions between power
	// acquisitions must leave the power fault realization bit-identical
	// to a power-only run (the cross-channel identity contract).
	delayRNG   *stats.RNG
	delayIndex uint64

	st Stats
}

// New returns a fault model for the configuration. It panics on an
// invalid configuration (construction-time programming error, like the
// power model's negative-sigma check).
func New(cfg Config) *FaultModel {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	if cfg.BurstLen <= 0 {
		cfg.BurstLen = 16
	}
	if cfg.StuckLen <= 0 {
		cfg.StuckLen = 8
	}
	if cfg.DriftAmplitude > 0 && cfg.DriftPeriod <= 0 {
		cfg.DriftPeriod = 4096
	}
	return &FaultModel{
		cfg:      cfg,
		rng:      stats.NewRNG(cfg.Seed ^ 0xAC9D15E0FAB71E57),
		delayRNG: stats.NewRNG(cfg.Seed ^ 0x3D5C1D3A9E44B1A7),
	}
}

// Config returns the model's configuration (with defaults filled in).
func (f *FaultModel) Config() Config { return f.cfg }

// Stats returns the ground-truth fault counters so far.
func (f *FaultModel) Stats() Stats { return f.st }

// Apply transforms one clean reading into what the tester reports. NaN
// marks a dropped reading. The model is stateful: drift advances with
// every reading, and burst/stuck windows span consecutive readings.
func (f *FaultModel) Apply(v float64) float64 {
	i := f.index
	f.index++
	f.st.Readings++

	// A latched ADC repeats its value regardless of the input.
	if f.stuckLeft > 0 {
		f.stuckLeft--
		f.st.Stuck++
		return f.stuckVal
	}

	// Slow deterministic drift (thermal ramp plus periodic component).
	if f.cfg.DriftPerReading != 0 {
		v *= 1 + f.cfg.DriftPerReading*float64(i)
	}
	if f.cfg.DriftAmplitude > 0 {
		v *= 1 + f.cfg.DriftAmplitude*math.Sin(2*math.Pi*float64(i)/f.cfg.DriftPeriod)
	}

	// Dropped reading.
	if f.cfg.DropRate > 0 && f.rng.Float64() < f.cfg.DropRate {
		f.st.Dropped++
		return math.NaN()
	}

	// Heavy-tailed outlier spike: at least SpikeMag×, with a 1/√u tail so
	// occasional spikes land far beyond the configured magnitude.
	if f.cfg.SpikeRate > 0 && f.rng.Float64() < f.cfg.SpikeRate {
		tail := 1 / math.Sqrt(1-f.rng.Float64())
		v *= f.cfg.SpikeMag * tail
		f.st.Spiked++
	}

	// Burst-noise window.
	if f.cfg.BurstRate > 0 {
		if f.burstLeft == 0 && f.rng.Float64() < f.cfg.BurstRate {
			f.burstLeft = f.cfg.BurstLen
		}
		if f.burstLeft > 0 {
			f.burstLeft--
			f.st.Burst++
			v += v * f.cfg.BurstSigma * f.rng.Norm()
		}
	}

	// Stuck latch: this reading's (possibly already perturbed) value
	// repeats for the next StuckLen readings.
	if f.cfg.StuckRate > 0 && f.rng.Float64() < f.cfg.StuckRate {
		f.stuckVal = v
		f.stuckLeft = f.cfg.StuckLen
	}
	return v
}

// ApplyDelay transforms one clean delay reading into what the TDC
// reports. NaN marks a lost conversion. The stream is independent of
// Apply's: its RNG and reading index advance only here, so a run that
// interleaves delay acquisitions sees bit-identical power faults to one
// that never measures delay, and vice versa.
func (f *FaultModel) ApplyDelay(v float64) float64 {
	f.delayIndex++
	f.st.DelayReadings++
	if f.cfg.DelayDropRate > 0 && f.delayRNG.Float64() < f.cfg.DelayDropRate {
		f.st.DelayDropped++
		return math.NaN()
	}
	if f.cfg.DelayJitterSigma > 0 {
		v *= 1 + f.cfg.DelayJitterSigma*f.delayRNG.Norm()
	}
	if f.cfg.DelayQuantum > 0 {
		v = math.Round(v/f.cfg.DelayQuantum) * f.cfg.DelayQuantum
	}
	return v
}

// Preset returns a named pathology configuration. The presets are the
// regimes of the tester-fault robustness table (EXPERIMENTS.md): "clean"
// (no faults), "spikes" (heavy-tailed contamination plus occasional
// drops), "drift" (thermal ramp plus a slow sinusoid), "burst"
// (burst-noise windows and stuck latches), "stuck" (aggressive ADC
// latching alone — long identical runs that only the stuck-latch guard
// catches), and "combined" (all of the above, with ≥1% spike
// contamination at 10× magnitude). Every fault-bearing preset also
// carries delay-channel pathologies (jitter, TDC quantization, dropped
// conversions) so the fused verdict is exercised against both
// instruments misbehaving at once.
func Preset(name string, seed uint64) (Config, error) {
	c := Config{Seed: seed}
	switch name {
	case "clean", "none", "":
		// ideal tester
	case "spikes":
		c.SpikeRate, c.SpikeMag = 0.02, 10
		c.DropRate = 0.005
		c.DelayJitterSigma, c.DelayDropRate = 0.01, 0.005
	case "drift":
		c.DriftPerReading = 2e-6
		c.DriftAmplitude, c.DriftPeriod = 0.02, 4096
		// Thermal drift is a power-ADC pathology; the TDC sees only its
		// own mild jitter and LSB quantization.
		c.DelayJitterSigma, c.DelayQuantum = 0.005, 2
	case "burst":
		c.BurstRate, c.BurstLen, c.BurstSigma = 0.002, 16, 0.25
		c.StuckRate, c.StuckLen = 0.0005, 8
		c.DelayJitterSigma = 0.015
	case "stuck":
		c.StuckRate, c.StuckLen = 0.01, 24
		// A coarse TDC repeats codes legitimately — the delay analogue of
		// a latched ADC, handled by quantization rather than the guard.
		c.DelayQuantum = 4
	case "combined":
		c.SpikeRate, c.SpikeMag = 0.015, 10
		c.DropRate = 0.003
		c.DriftPerReading = 2e-6
		c.DriftAmplitude, c.DriftPeriod = 0.02, 4096
		c.BurstRate, c.BurstLen, c.BurstSigma = 0.001, 16, 0.2
		c.StuckRate, c.StuckLen = 0.0003, 8
		c.DelayJitterSigma, c.DelayQuantum, c.DelayDropRate = 0.02, 2, 0.003
	default:
		return Config{}, fmt.Errorf("tester: unknown preset %q (have %v)", name, PresetNames())
	}
	return c, nil
}

// PresetNames lists the named configurations of Preset.
func PresetNames() []string {
	names := []string{"clean", "spikes", "drift", "burst", "stuck", "combined"}
	sort.Strings(names)
	return names
}
