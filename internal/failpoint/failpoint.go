// Package failpoint is a registry of named fault-injection points for
// chaos testing the certification service and the core flow. A package
// that wants to be testable under injected failure calls
//
//	if err := failpoint.Inject("service/queue/enqueue"); err != nil { ... }
//
// at the site where a real fault could strike. With no failpoints
// enabled the call is a single atomic load — a no-op cheap enough to
// leave compiled into production paths. Tests (or an operator, via the
// FAILPOINTS environment variable / the superposed -failpoints flag)
// arm individual points with a small spec language:
//
//	error(msg)          return an injected error
//	panic(msg)          panic with a recognizable PanicValue
//	sleep(50ms)         delay, then proceed normally
//
// prefixed by zero or more '*'-separated modifiers:
//
//	3*error(x)          fire at most 3 times, then disarm
//	each(5)*error(x)    fire on every 5th evaluation
//	p(0.2,7)*error(x)   fire with probability 0.2 (seed 7, deterministic)
//
// Multiple points are listed as name=spec pairs separated by ';':
//
//	FAILPOINTS='journal/fsync=error(io);service/worker/run=1*panic(chaos)'
//
// Like every stochastic component of the toolchain, probabilistic
// failpoints are seeded: the same spec fires on the same evaluations.
package failpoint

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"superpose/internal/stats"
)

// ErrInjected is the sentinel every injected error wraps; callers
// classify failpoint-caused failures with errors.Is(err, ErrInjected).
var ErrInjected = errors.New("failpoint: injected fault")

// Error is an injected failure carrying the failpoint's name.
type Error struct {
	Name string // the failpoint that fired
	Msg  string // the spec's message, "" when none was given
}

func (e *Error) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("failpoint %s: injected fault", e.Name)
	}
	return fmt.Sprintf("failpoint %s: %s", e.Name, e.Msg)
}

// Unwrap makes errors.Is(err, ErrInjected) true for every injected error.
func (e *Error) Unwrap() error { return ErrInjected }

// PanicValue is the value a panic-action failpoint panics with, so a
// recover() site can recognize (and classify as injected) a chaos panic.
type PanicValue struct {
	Name string
	Msg  string
}

func (p PanicValue) String() string {
	if p.Msg == "" {
		return fmt.Sprintf("failpoint %s: injected panic", p.Name)
	}
	return fmt.Sprintf("failpoint %s: %s", p.Name, p.Msg)
}

// action is what a firing failpoint does.
type action uint8

const (
	actError action = iota
	actPanic
	actSleep
)

// point is one armed failpoint. Its evaluation state (remaining fires,
// evaluation counter, RNG) is guarded by the registry lock: injection
// sites are hot paths only when disarmed, so a single lock is fine.
type point struct {
	act   action
	msg   string
	delay time.Duration

	remaining int // fires left; < 0 means unlimited
	every     int // fire on every Nth evaluation; <= 1 means every one
	evals     int
	prob      float64 // fire probability; 0 means always
	rng       *stats.RNG
}

var (
	mu     sync.Mutex
	points = make(map[string]*point)
	// armed gates the Inject fast path: it is true exactly while the
	// registry is non-empty, so a disarmed process pays one atomic load
	// per injection site and nothing else.
	armed atomic.Bool
)

// Enable arms the named failpoint with a spec (see the package comment
// for the grammar). Re-enabling an armed point replaces its spec.
func Enable(name, spec string) error {
	p, err := parse(name, spec)
	if err != nil {
		return err
	}
	mu.Lock()
	points[name] = p
	armed.Store(true)
	mu.Unlock()
	return nil
}

// Disable disarms the named failpoint (a no-op when it is not armed).
func Disable(name string) {
	mu.Lock()
	delete(points, name)
	armed.Store(len(points) > 0)
	mu.Unlock()
}

// DisableAll disarms every failpoint — the deferred cleanup of every
// chaos test.
func DisableAll() {
	mu.Lock()
	points = make(map[string]*point)
	armed.Store(false)
	mu.Unlock()
}

// Setup arms every failpoint of a ';'-separated name=spec list (the
// FAILPOINTS environment variable format). An empty list is a no-op.
func Setup(list string) error {
	for _, item := range strings.Split(list, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, spec, ok := strings.Cut(item, "=")
		if !ok {
			return fmt.Errorf("failpoint: %q is not name=spec", item)
		}
		if err := Enable(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// List returns the names of the armed failpoints, sorted.
func List() []string {
	mu.Lock()
	defer mu.Unlock()
	names := make([]string, 0, len(points))
	for n := range points {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Inject evaluates the named failpoint. Disarmed (the production case)
// it returns nil after one atomic load. Armed, it returns an injected
// *Error, panics with a PanicValue, or sleeps — per the point's spec
// and modifiers.
func Inject(name string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	fire := p.evaluate()
	if fire && p.remaining == 0 {
		// The fire budget is spent: disarm the point so each(…) and
		// probability state stop advancing for nothing.
		delete(points, name)
		armed.Store(len(points) > 0)
	}
	act, msg, delay := p.act, p.msg, p.delay
	mu.Unlock()

	if !fire {
		return nil
	}
	switch act {
	case actSleep:
		time.Sleep(delay)
		return nil
	case actPanic:
		panic(PanicValue{Name: name, Msg: msg})
	default:
		return &Error{Name: name, Msg: msg}
	}
}

// evaluate advances the point's counters and reports whether it fires.
// Called with the registry lock held.
func (p *point) evaluate() bool {
	p.evals++
	if p.every > 1 && p.evals%p.every != 0 {
		return false
	}
	if p.prob > 0 && p.rng.Float64() >= p.prob {
		return false
	}
	if p.remaining == 0 {
		return false
	}
	if p.remaining > 0 {
		p.remaining--
	}
	return true
}

// parse compiles a spec string into a point.
func parse(name, spec string) (*point, error) {
	if name == "" {
		return nil, errors.New("failpoint: empty name")
	}
	p := &point{remaining: -1}
	terms := strings.Split(spec, "*")
	if len(terms) == 0 {
		return nil, fmt.Errorf("failpoint %s: empty spec", name)
	}
	for _, mod := range terms[:len(terms)-1] {
		mod = strings.TrimSpace(mod)
		switch verb, arg, err := splitCall(mod); {
		case err != nil:
			return nil, fmt.Errorf("failpoint %s: %w", name, err)
		case verb == "each":
			n, err := strconv.Atoi(arg)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("failpoint %s: bad each(%s)", name, arg)
			}
			p.every = n
		case verb == "p":
			probArg, seedArg, _ := strings.Cut(arg, ",")
			prob, err := strconv.ParseFloat(strings.TrimSpace(probArg), 64)
			if err != nil || prob <= 0 || prob > 1 {
				return nil, fmt.Errorf("failpoint %s: bad p(%s)", name, arg)
			}
			var seed uint64
			if seedArg = strings.TrimSpace(seedArg); seedArg != "" {
				seed, err = strconv.ParseUint(seedArg, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("failpoint %s: bad p(%s) seed", name, arg)
				}
			}
			p.prob = prob
			p.rng = stats.NewRNG(seed ^ 0xFA11F01D)
		case arg == "" && verb != "":
			n, err := strconv.Atoi(verb)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("failpoint %s: unknown modifier %q", name, mod)
			}
			p.remaining = n
		default:
			return nil, fmt.Errorf("failpoint %s: unknown modifier %q", name, mod)
		}
	}

	verb, arg, err := splitCall(strings.TrimSpace(terms[len(terms)-1]))
	if err != nil {
		return nil, fmt.Errorf("failpoint %s: %w", name, err)
	}
	switch verb {
	case "error":
		p.act, p.msg = actError, arg
	case "panic":
		p.act, p.msg = actPanic, arg
	case "sleep":
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("failpoint %s: bad sleep(%s)", name, arg)
		}
		p.act, p.delay = actSleep, d
	default:
		return nil, fmt.Errorf("failpoint %s: unknown action %q (want error, panic or sleep)", name, verb)
	}
	return p, nil
}

// splitCall splits "verb(arg)" or a bare "verb" into its parts.
func splitCall(s string) (verb, arg string, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return s, "", nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", "", fmt.Errorf("unbalanced parentheses in %q", s)
	}
	return s[:open], s[open+1 : len(s)-1], nil
}
