package failpoint

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsNoOp(t *testing.T) {
	DisableAll()
	if err := Inject("never/armed"); err != nil {
		t.Fatalf("disarmed inject returned %v", err)
	}
}

func TestErrorAction(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("a", "error(boom)"); err != nil {
		t.Fatal(err)
	}
	err := Inject("a")
	if err == nil {
		t.Fatal("armed error failpoint returned nil")
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("err = %v, want wrapping ErrInjected", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Name != "a" || fe.Msg != "boom" {
		t.Errorf("err = %#v", err)
	}
	// Other names stay unaffected.
	if err := Inject("b"); err != nil {
		t.Errorf("unarmed sibling injected %v", err)
	}
}

func TestPanicAction(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("p", "panic(chaos)"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok || pv.Name != "p" || pv.Msg != "chaos" {
			t.Errorf("recovered %#v, want PanicValue{p, chaos}", r)
		}
	}()
	_ = Inject("p")
	t.Fatal("panic failpoint did not panic")
}

func TestSleepAction(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("s", "sleep(30ms)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("s"); err != nil {
		t.Fatalf("sleep action returned %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("sleep failpoint returned after %v, want >= 30ms", d)
	}
}

func TestOneShot(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("once", "1*error(first)"); err != nil {
		t.Fatal(err)
	}
	if err := Inject("once"); err == nil {
		t.Fatal("one-shot did not fire on the first evaluation")
	}
	for i := 0; i < 3; i++ {
		if err := Inject("once"); err != nil {
			t.Fatalf("one-shot fired again on evaluation %d: %v", i+2, err)
		}
	}
	// The spent point disarmed itself.
	if names := List(); len(names) != 0 {
		t.Errorf("spent one-shot still listed: %v", names)
	}
}

func TestCountLimit(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("n", "3*error"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 10; i++ {
		if Inject("n") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("3* spec fired %d times", fired)
	}
}

func TestEveryNth(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("e", "each(3)*error"); err != nil {
		t.Fatal(err)
	}
	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, Inject("e") != nil)
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("each(3) firing pattern %v, want %v", pattern, want)
		}
	}
}

func TestProbabilisticDeterminism(t *testing.T) {
	t.Cleanup(DisableAll)
	run := func() []bool {
		if err := Enable("pr", "p(0.5,42)*error"); err != nil {
			t.Fatal(err)
		}
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, Inject("pr") != nil)
		}
		Disable("pr")
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded probabilistic firing not reproducible at evaluation %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("p(0.5) fired %d/%d times", fired, len(a))
	}
}

func TestSetupList(t *testing.T) {
	t.Cleanup(DisableAll)
	err := Setup("x=error(one); y=1*sleep(1ms) ;; z=panic")
	if err != nil {
		t.Fatal(err)
	}
	got := List()
	if len(got) != 3 || got[0] != "x" || got[1] != "y" || got[2] != "z" {
		t.Errorf("List() = %v", got)
	}
	if err := Setup("junk"); err == nil {
		t.Error("Setup accepted a list item with no '='")
	}
}

func TestParseErrors(t *testing.T) {
	t.Cleanup(DisableAll)
	for _, spec := range []string{
		"", "frobnicate", "error(unclosed", "sleep(xyz)", "0*error",
		"p(2)*error", "p(0.5,nope)*error", "each(0)*error", "wat(3)*error",
	} {
		if err := Enable("bad", spec); err == nil {
			t.Errorf("Enable accepted spec %q", spec)
		}
	}
}

func TestConcurrentInject(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("c", "100*error"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if Inject("c") != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 100 {
		t.Errorf("100-count failpoint fired %d times under concurrency", fired)
	}
}
