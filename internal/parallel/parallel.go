// Package parallel is the deterministic bounded fan-out engine behind
// every hot loop of the certification flow: lot certification fans out
// per die, the experiment harness per benchmark case, and ATPG fault
// simulation per fault shard.
//
// The engine's contract, which the equivalence test suites of the core
// and atpg packages pin down byte-for-byte:
//
//   - Ordered fan-in: Map returns results indexed by item, never by
//     completion order, so the caller's aggregation runs in the same
//     order as a serial loop.
//   - Scheduling-free seeds: any per-item randomness must derive from
//     Mix(baseSeed, index) (or an equivalent index-only formula), never
//     from a worker-local or shared generator, so results are identical
//     for every worker count.
//   - Serial escape hatch: Workers == 1 runs the items in index order on
//     the calling goroutine — the exact legacy serial path.
//   - Contained failure: a panic inside an item becomes a *PanicError
//     return, not a process crash; the first error (lowest item index
//     among the items that ran) cancels the remaining dispatch and is
//     propagated.
//   - Context cancellation: a cancelled ctx stops dispatch; items
//     already running finish and their results are discarded.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// DefaultWorkers is the pool width used when a Workers knob is left at
// zero: one worker per logical CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// Normalize maps a Workers setting to a concrete pool width: values
// below 1 mean DefaultWorkers.
func Normalize(workers int) int {
	if workers < 1 {
		return DefaultWorkers()
	}
	return workers
}

// Mix derives the per-item seed from a base seed and an item index
// (splitmix64 finalizer over a golden-ratio stride). Deriving every
// item's randomness this way — instead of drawing from a generator as
// items are scheduled — is what keeps parallel output bit-identical to
// serial: the seed depends only on the index, never on the interleaving.
func Mix(base uint64, index int) uint64 {
	z := base + (uint64(index)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// PanicError is a worker panic converted into an error.
type PanicError struct {
	Index int // the item whose function panicked
	Value any // the recovered panic value
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: item %d panicked: %v", e.Index, e.Value)
}

// call runs fn(i) with panic containment.
func call(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r}
		}
	}()
	return fn(i)
}

// ForEach runs fn(i) for every i in [0, n) on a pool of Normalize(workers)
// goroutines (capped at n). With workers == 1 the items run in index
// order on the calling goroutine.
//
// On failure the remaining dispatch is cancelled and the recorded error
// with the lowest item index is returned; items already in flight finish
// first. When ctx is cancelled and no item error was recorded, ctx's
// error is returned.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Normalize(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := call(fn, i); err != nil {
				return err
			}
		}
		return ctx.Err()
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	items := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range items {
				if ctx.Err() != nil {
					continue // drain: dispatch raced with cancellation
				}
				if err := call(fn, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		items <- i
	}
	close(items)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Map runs fn(i) for every i in [0, n) under the same pool, cancellation
// and error contract as ForEach, and returns the results in item order.
// On any error the partial results are discarded.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v // each item owns its slot: no cross-item writes
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
