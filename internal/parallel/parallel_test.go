package parallel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestNormalize(t *testing.T) {
	if got := Normalize(0); got != runtime.NumCPU() {
		t.Errorf("Normalize(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Normalize(-3); got != runtime.NumCPU() {
		t.Errorf("Normalize(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Normalize(7); got != 7 {
		t.Errorf("Normalize(7) = %d, want 7", got)
	}
}

func TestMixIndexOnly(t *testing.T) {
	// The same (base, index) always yields the same seed, distinct
	// indices yield distinct seeds, and index 0 is not the identity.
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := Mix(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("Mix(42,%d) collides with index %d", i, prev)
		}
		seen[s] = i
		if s != Mix(42, i) {
			t.Fatalf("Mix not deterministic at index %d", i)
		}
	}
	if Mix(42, 0) == 42 {
		t.Error("Mix(base, 0) must not be the identity")
	}
}

func TestMapOrderedFanIn(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8, 32} {
		out, err := Map(context.Background(), w, 100, func(i int) (int, error) {
			if i%7 == 0 {
				time.Sleep(time.Millisecond) // skew completion order
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) error {
		t.Fatal("fn must not run")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	for _, w := range []int{1, 4} {
		err := ForEach(context.Background(), w, 10, func(i int) error {
			if i == 3 {
				panic("worker exploded")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", w, err)
		}
		if pe.Index != 3 {
			t.Errorf("workers=%d: panic index %d, want 3", w, pe.Index)
		}
	}
}

func TestFirstErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	// Serial: the lowest-index error is returned and later items never run.
	var ran atomic.Int64
	err := ForEach(context.Background(), 1, 10, func(i int) error {
		ran.Add(1)
		if i >= 2 {
			return fmt.Errorf("item %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) || err.Error() != "item 2: boom" {
		t.Fatalf("serial: got %v", err)
	}
	if ran.Load() != 3 {
		t.Errorf("serial: %d items ran, want 3", ran.Load())
	}

	// Parallel: an error cancels the remaining dispatch; the error with
	// the lowest index among the items that ran is returned.
	ran.Store(0)
	err = ForEach(context.Background(), 4, 1000, func(i int) error {
		ran.Add(1)
		if i >= 2 {
			return fmt.Errorf("item %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("parallel: got %v", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Error("parallel: error did not cancel remaining dispatch")
	}
}

func TestContextCancellation(t *testing.T) {
	for _, w := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		done := make(chan error, 1)
		go func() {
			done <- ForEach(ctx, w, 10000, func(i int) error {
				if ran.Add(1) == 5 {
					cancel()
				}
				return nil
			})
		}()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: got %v, want context.Canceled", w, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: cancellation did not stop the pool", w)
		}
		if n := ran.Load(); n == 10000 {
			t.Errorf("workers=%d: cancellation did not curtail dispatch", w)
		}
		cancel()
	}
}

// TestRaceStress hammers the pool with a mix of panicking, erroring,
// slow and cancelled workers under the race detector: the pool must
// neither crash, deadlock, nor corrupt the result slots. Run with
// `go test -race -count=2 -shuffle=on` (the CI configuration).
func TestRaceStress(t *testing.T) {
	for round := 0; round < 30; round++ {
		round := round
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if round%5 == 4 {
				// A fifth of the rounds cancel mid-flight.
				go func() {
					time.Sleep(time.Duration(round) * 100 * time.Microsecond)
					cancel()
				}()
			}
			n := 64 + round
			out, err := Map(ctx, 1+round%9, n, func(i int) (uint64, error) {
				switch {
				case round%5 == 2 && i == n/2:
					panic(fmt.Sprintf("round %d panic", round))
				case round%5 == 3 && i == n/3:
					return 0, errors.New("induced error")
				}
				// Touch the scheduler so interleavings vary.
				runtime.Gosched()
				return Mix(uint64(round), i), nil
			})
			switch round % 5 {
			case 2:
				var pe *PanicError
				if !errors.As(err, &pe) {
					t.Fatalf("want panic error, got %v", err)
				}
			case 3:
				if err == nil {
					t.Fatal("want induced error")
				}
			case 4:
				// Cancellation may or may not land before completion;
				// either a clean result or context.Canceled is legal.
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Fatalf("want nil or context.Canceled, got %v", err)
				}
				if err == nil {
					verify(t, out, round, n)
				}
			default:
				if err != nil {
					t.Fatal(err)
				}
				verify(t, out, round, n)
			}
		})
	}
}

func verify(t *testing.T, out []uint64, round, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if out[i] != Mix(uint64(round), i) {
			t.Fatalf("out[%d] corrupted", i)
		}
	}
}

func TestDiff(t *testing.T) {
	type inner struct {
		F float64
		S []int
	}
	type outer struct {
		P *inner
		M map[string]float64
		b int // unexported: ignored
	}
	a := outer{P: &inner{F: math.NaN(), S: []int{1, 2}}, M: map[string]float64{"x": 1}, b: 1}
	c := outer{P: &inner{F: math.NaN(), S: []int{1, 2}}, M: map[string]float64{"x": 1}, b: 2}
	if d := Diff(a, c); d != "" {
		t.Errorf("NaN-equal structs must be bit-identical, got %q", d)
	}
	c.P.S[1] = 3
	if d := Diff(a, c); d == "" {
		t.Error("differing slice element not reported")
	}
	c.P.S[1] = 2
	c.M["x"] = math.Nextafter(1, 2)
	if d := Diff(a, c); d == "" {
		t.Error("one-ulp float difference not reported")
	}
	if d := Diff(&a, nil); d == "" {
		t.Error("nil vs value not reported")
	}
}
