package parallel

import (
	"fmt"
	"math"
	"reflect"
)

// Diff reports the first path at which two values are not bit-identical,
// or "" when they are. It is the comparator behind the engine's
// equivalence test suites: reflect.DeepEqual is unusable there because a
// run degraded by tester faults legitimately carries NaN readings, and
// DeepEqual treats NaN as unequal to itself. Diff compares floats by
// their IEEE-754 bit patterns instead — the literal meaning of
// "Workers=N output is bit-identical to Workers=1".
//
// Pointers are followed (two non-nil pointers compare by pointee), so
// structurally equal reports built by independent runs compare equal.
func Diff(a, b any) string {
	return diff(reflect.ValueOf(a), reflect.ValueOf(b), "")
}

func diff(a, b reflect.Value, path string) string {
	at := "value"
	if path != "" {
		at = path
	}
	if a.IsValid() != b.IsValid() {
		return fmt.Sprintf("%s: one side missing", at)
	}
	if !a.IsValid() {
		return ""
	}
	if a.Type() != b.Type() {
		return fmt.Sprintf("%s: type %v vs %v", at, a.Type(), b.Type())
	}
	switch a.Kind() {
	case reflect.Float32, reflect.Float64:
		if math.Float64bits(a.Float()) != math.Float64bits(b.Float()) {
			return fmt.Sprintf("%s: %v vs %v", at, a.Float(), b.Float())
		}
	case reflect.Ptr, reflect.Interface:
		if a.IsNil() != b.IsNil() {
			return fmt.Sprintf("%s: nil vs non-nil", at)
		}
		if !a.IsNil() {
			return diff(a.Elem(), b.Elem(), path)
		}
	case reflect.Slice:
		if a.IsNil() != b.IsNil() {
			return fmt.Sprintf("%s: nil vs non-nil slice", at)
		}
		fallthrough
	case reflect.Array:
		if a.Len() != b.Len() {
			return fmt.Sprintf("%s: len %d vs %d", at, a.Len(), b.Len())
		}
		for i := 0; i < a.Len(); i++ {
			if d := diff(a.Index(i), b.Index(i), fmt.Sprintf("%s[%d]", path, i)); d != "" {
				return d
			}
		}
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			name := a.Type().Field(i).Name
			if !a.Type().Field(i).IsExported() {
				// Unexported state (e.g. scratch buffers) is not part of
				// a result's identity.
				continue
			}
			if d := diff(a.Field(i), b.Field(i), path+"."+name); d != "" {
				return d
			}
		}
	case reflect.Map:
		if a.Len() != b.Len() {
			return fmt.Sprintf("%s: map len %d vs %d", at, a.Len(), b.Len())
		}
		for _, k := range a.MapKeys() {
			bv := b.MapIndex(k)
			if !bv.IsValid() {
				return fmt.Sprintf("%s[%v]: missing key", at, k)
			}
			if d := diff(a.MapIndex(k), bv, fmt.Sprintf("%s[%v]", path, k)); d != "" {
				return d
			}
		}
	default:
		ai, bi := a.Interface(), b.Interface()
		if ai != bi {
			return fmt.Sprintf("%s: %v vs %v", at, ai, bi)
		}
	}
	return ""
}
