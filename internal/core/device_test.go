package core

import (
	"math"
	"testing"

	"superpose/internal/netlist"
	"superpose/internal/power"
	"superpose/internal/scan"
	"superpose/internal/stats"
	"superpose/internal/tester"
)

// buildAcqBench builds a small scan circuit (per-FF observer gates so
// every launch toggles combinational logic), manufactures a noiseless
// chip, and returns a device plus a batch of random patterns.
func buildAcqBench(t testing.TB, nFF, nPats int) (*Device, []*scan.Pattern) {
	t.Helper()
	b := netlist.NewBuilder("acqbench")
	if _, err := b.AddInput("pi"); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < nFF; k++ {
		ff := "ff" + string(rune('a'+k))
		if _, err := b.AddDFF(ff, "d"+string(rune('a'+k))); err != nil {
			t.Fatal(err)
		}
		if _, err := b.AddGate("obs"+string(rune('a'+k)), netlist.Buf, ff); err != nil {
			t.Fatal(err)
		}
		if _, err := b.AddGate("d"+string(rune('a'+k)), netlist.Xor, "obs"+string(rune('a'+k)), "pi"); err != nil {
			t.Fatal(err)
		}
		b.MarkOutput("obs" + string(rune('a'+k)))
	}
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	chip := power.Manufacture(nl, power.SAED90Like(), power.ThreeSigmaIntra(0.15), 7)
	dev := NewDevice(chip, 2, scan.LOS)
	ch := scan.Configure(nl, 2)
	rng := stats.NewRNG(11)
	pats := make([]*scan.Pattern, nPats)
	for i := range pats {
		pats[i] = ch.RandomPattern(rng)
	}
	return dev, pats
}

// TestFastPathSkipsRepeats pins the noiseless fast path: with no
// measurement noise and no fault model, every repeat returns the
// identical value, so one sweep must serve regardless of the configured
// repeat count — visible as exactly one pass per batch in the
// acquisition counters.
func TestFastPathSkipsRepeats(t *testing.T) {
	dev, pats := buildAcqBench(t, 8, 6)
	ref := dev.MeasureBatch(pats)

	dev.SetRepeats(10)
	before := dev.AcquisitionStats()
	got := dev.MeasureBatch(pats)
	d := dev.AcquisitionStats().Sub(before)

	if d.Passes != 1 {
		t.Errorf("fast path took %d passes for one batch, want 1", d.Passes)
	}
	if d.Raw != uint64(len(pats)) || d.Readings != uint64(len(pats)) {
		t.Errorf("fast path counters raw %d readings %d, want %d each", d.Raw, d.Readings, len(pats))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Errorf("reading %d: repeats changed a noiseless value: %v vs %v", i, got[i], ref[i])
		}
	}
}

func TestSetRepeatsClamp(t *testing.T) {
	dev, _ := buildAcqBench(t, 4, 1)
	for _, k := range []int{0, -3} {
		dev.SetRepeats(k)
		if got := dev.Acquisition().Repeats; got != 1 {
			t.Errorf("SetRepeats(%d): Repeats = %d, want clamp to 1", k, got)
		}
	}
	dev.SetRepeats(4)
	if got := dev.Acquisition().Repeats; got != 4 {
		t.Errorf("SetRepeats(4): Repeats = %d", got)
	}
}

// TestRobustAcquisitionRecoversSpikes: on a noiseless chip the clean
// samples of a reading are bit-identical, so median aggregation with MAD
// rejection must deliver the exact clean value as long as spikes stay a
// per-reading minority — and the spread gate retries the readings where
// they do not.
func TestRobustAcquisitionRecoversSpikes(t *testing.T) {
	dev, pats := buildAcqBench(t, 8, 10)
	ref := dev.MeasureBatch(pats)

	dev.SetAcquisition(RobustAcquisition())
	dev.SetFaultModel(tester.New(tester.Config{Seed: 3, SpikeRate: 0.1, SpikeMag: 10}))
	got := dev.MeasureBatch(pats)
	st := dev.AcquisitionStats()

	for i := range got {
		if math.IsNaN(got[i]) {
			continue // counted below
		}
		if got[i] != ref[i] {
			t.Errorf("reading %d: %v, want exact clean value %v", i, got[i], ref[i])
		}
	}
	if st.Rejected == 0 {
		t.Error("no samples rejected despite 10% spike contamination")
	}
	if st.Unstable > 1 {
		t.Errorf("%d unstable readings, want at most 1", st.Unstable)
	}
}

// TestRobustAcquisitionDrops: dropped (NaN) raw samples are discarded
// and the surviving identical samples still deliver the exact value.
func TestRobustAcquisitionDrops(t *testing.T) {
	dev, pats := buildAcqBench(t, 8, 10)
	ref := dev.MeasureBatch(pats)

	dev.SetAcquisition(RobustAcquisition())
	dev.SetFaultModel(tester.New(tester.Config{Seed: 5, DropRate: 0.2}))
	got := dev.MeasureBatch(pats)
	st := dev.AcquisitionStats()

	if st.Dropped == 0 {
		t.Fatal("fault model dropped nothing at 20% drop rate")
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Errorf("reading %d: %v, want exact clean value %v", i, got[i], ref[i])
		}
	}
}

// TestStuckGuard: a latched ADC repeats a stale value bit-for-bit — a
// zero-dispersion majority that median, MAD and spread gate all trust.
// The stuck guard discards exact cross-pattern duplicates, so delivered
// readings remain exactly clean and the Latched counter records the
// discards.
func TestStuckGuard(t *testing.T) {
	dev, pats := buildAcqBench(t, 8, 10)
	ref := dev.MeasureBatch(pats)

	dev.SetAcquisition(RobustAcquisition())
	dev.SetFaultModel(tester.New(tester.Config{Seed: 9, StuckRate: 0.05, StuckLen: 8}))
	var got []float64
	for sweep := 0; sweep < 5; sweep++ { // enough stream for several latches
		got = dev.MeasureBatch(pats)
	}
	st := dev.AcquisitionStats()

	if st.Latched == 0 {
		t.Fatal("stuck guard discarded nothing at 5% latch rate")
	}
	for i := range got {
		if math.IsNaN(got[i]) {
			continue
		}
		if got[i] != ref[i] {
			t.Errorf("reading %d: %v, want exact clean value %v (stale latch leaked through)", i, got[i], ref[i])
		}
	}
}

// TestNaiveAcquisitionCorrupted is the contrast case: the naive
// single-shot policy passes spike contamination straight through.
func TestNaiveAcquisitionCorrupted(t *testing.T) {
	dev, pats := buildAcqBench(t, 8, 10)
	ref := dev.MeasureBatch(pats)

	dev.SetFaultModel(tester.New(tester.Config{Seed: 3, SpikeRate: 0.3, SpikeMag: 10}))
	got := dev.MeasureBatch(pats)

	corrupted := 0
	for i := range got {
		if got[i] != ref[i] {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Error("naive acquisition delivered clean values under 30% spike contamination")
	}
}
