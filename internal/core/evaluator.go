package core

import (
	"math"
	"sort"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/power"
	"superpose/internal/scan"
)

// Evaluator is the defender's workbench: the golden (Trojan-free) netlist
// with its nominal power model on one side, the physical Device on the
// other. Everything the detection flow knows is computed here.
type Evaluator struct {
	golden *netlist.Netlist
	chains *scan.Chains
	eng    *scan.Engine // golden-model activity prediction
	model  *power.Model
	dev    *Device
	mode   scan.Mode

	// scale is the per-die calibration factor (see Calibrate): observed
	// powers are divided by it, which is what makes the methodology
	// self-referential with respect to inter-die variation.
	scale float64

	masks []logic.Word // scratch for batch pricing
}

// NewEvaluator assembles the workbench. The scan configuration is built on
// the golden netlist with numChains chains; the device must have been
// created with the same chain count.
func NewEvaluator(golden *netlist.Netlist, lib *power.Library, dev *Device, numChains int, mode scan.Mode) *Evaluator {
	return NewEvaluatorFromChains(golden, lib, dev, scan.Configure(golden, numChains), mode)
}

// NewEvaluatorFromChains assembles the workbench over an explicit scan
// configuration (which must structurally match the device's — see
// NewDeviceFromChains).
func NewEvaluatorFromChains(golden *netlist.Netlist, lib *power.Library, dev *Device, ch *scan.Chains, mode scan.Mode) *Evaluator {
	return &Evaluator{
		golden: golden,
		chains: ch,
		eng:    scan.NewEngine(ch),
		model:  power.NewModel(golden, lib),
		dev:    dev,
		mode:   mode,
		scale:  1,
	}
}

// Calibrate estimates this die's global power scale — the inter-die
// variation component, which multiplies every gate of the chip equally —
// as the median of observed/nominal over a set of patterns, and corrects
// all subsequent measurements by it. This is the "dissecting and
// understanding the characteristics of a given manufactured IC" step of
// the paper's self-referential methodology (§V-D: inter-die variation has
// no opportunity to disrupt behaviour). The median is robust to the tiny
// Trojan contamination of individual readings. It returns the estimated
// scale.
func (ev *Evaluator) Calibrate(pats []*scan.Pattern) float64 {
	var ratios []float64
	for start := 0; start < len(pats); start += 64 {
		end := start + 64
		if end > len(pats) {
			end = len(pats)
		}
		batch := pats[start:end]
		observed := ev.dev.MeasureBatch(batch)
		ev.eng.Launch(batch, ev.mode)
		for i := range batch {
			nom := ev.model.Nominal(ev.eng.Toggles(uint(i)))
			if nom > 0 {
				ratios = append(ratios, observed[i]/nom)
			}
		}
	}
	if len(ratios) == 0 {
		return ev.scale
	}
	sort.Float64s(ratios)
	med := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		med = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	if med > 0 {
		ev.scale = med
	}
	return ev.scale
}

// Scale returns the current calibration factor (1 when uncalibrated).
func (ev *Evaluator) Scale() float64 { return ev.scale }

// Chains returns the scan configuration (for pattern construction).
func (ev *Evaluator) Chains() *scan.Chains { return ev.chains }

// Golden returns the defender's netlist.
func (ev *Evaluator) Golden() *netlist.Netlist { return ev.golden }

// Device returns the IC under certification.
func (ev *Evaluator) Device() *Device { return ev.dev }

// Reading is one defender-visible measurement of a pattern.
type Reading struct {
	Observed float64 // chip power
	Nominal  float64 // golden-model nominal power of the predicted activity
	RPD      float64 // Eq. 1
}

// MeasureBatch evaluates up to 64 patterns: chip observation plus
// golden-model nominal expectation for each.
func (ev *Evaluator) MeasureBatch(pats []*scan.Pattern) []Reading {
	observed := ev.dev.MeasureBatch(pats)
	ev.eng.Launch(pats, ev.mode)
	ev.masks = ev.eng.ToggleMasks(ev.masks)
	nominals := ev.model.NominalLanes(ev.masks, len(pats))
	out := make([]Reading, len(pats))
	for i := range pats {
		obs := observed[i] / ev.scale
		out[i] = Reading{
			Observed: obs,
			Nominal:  nominals[i],
			RPD:      RPD(obs, nominals[i]),
		}
	}
	return out
}

// Measure evaluates a single pattern.
func (ev *Evaluator) Measure(p *scan.Pattern) Reading {
	return ev.MeasureBatch([]*scan.Pattern{p})[0]
}

// GoldenToggles returns the golden-model toggle set of a pattern — the
// defender's prediction of which gates switch.
func (ev *Evaluator) GoldenToggles(p *scan.Pattern) []int {
	ev.eng.Launch([]*scan.Pattern{p}, ev.mode)
	return append([]int(nil), ev.eng.Toggles(0)...)
}

// PairAnalysis is the superposition view of a pattern pair (§IV-C): the
// observed and nominal powers, the golden-model activity decomposition,
// and the resulting S-RPD.
type PairAnalysis struct {
	A, B *scan.Pattern

	ObservedA, ObservedB float64
	NominalA, NominalB   float64

	// Golden-model activity decomposition (gate counts) and the nominal
	// power of the unique parts — the Eq. 2 denominator.
	CommonCount, AUniqueCount, BUniqueCount int
	NominalAUnique, NominalBUnique          float64

	// UniqueEnergySq is Σe² over both unique sets: the squared scale of
	// the intra-die variation the pair is exposed to (σ·√UniqueEnergySq
	// is the residual's standard deviation under the benign hypothesis).
	UniqueEnergySq float64

	SRPD float64
}

// Residual returns the Eq. 2 numerator: the observed power difference not
// explained by the nominal model.
func (pa *PairAnalysis) Residual() float64 {
	return (pa.ObservedA - pa.ObservedB) - (pa.NominalA - pa.NominalB)
}

// Significance returns |Residual| / √(Σe² of the unique sets) — the number
// of per-unit-σ standard deviations the residual stands above benign
// intra-die variation. Unlike S-RPD it is scale-free in σ, so it ranks
// candidate pairs without assuming a variation magnitude.
func (pa *PairAnalysis) Significance() float64 {
	if pa.UniqueEnergySq <= 0 {
		return 0
	}
	r := pa.Residual()
	if r < 0 {
		r = -r
	}
	return r / math.Sqrt(pa.UniqueEnergySq)
}

// AnalyzePair applies superposition to a pattern pair.
func (ev *Evaluator) AnalyzePair(a, b *scan.Pattern) PairAnalysis {
	readings := ev.MeasureBatch([]*scan.Pattern{a, b})

	ev.eng.Launch([]*scan.Pattern{a, b}, ev.mode)
	ta := append([]int(nil), ev.eng.Toggles(0)...)
	tb := ev.eng.Toggles(1)
	common, aU, bU := SplitToggles(ta, tb)

	pa := PairAnalysis{
		A: a, B: b,
		ObservedA: readings[0].Observed, ObservedB: readings[1].Observed,
		NominalA: readings[0].Nominal, NominalB: readings[1].Nominal,
		CommonCount:  len(common),
		AUniqueCount: len(aU), BUniqueCount: len(bU),
		NominalAUnique: ev.model.Nominal(aU),
		NominalBUnique: ev.model.Nominal(bU),
		UniqueEnergySq: ev.model.NominalSumSquares(aU) + ev.model.NominalSumSquares(bU),
	}
	pa.SRPD = SRPD(pa.ObservedA, pa.ObservedB, pa.NominalA, pa.NominalB,
		pa.NominalAUnique, pa.NominalBUnique)
	return pa
}
