package core

import (
	"math"
	"sort"

	"superpose/internal/delay"
	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/power"
	"superpose/internal/scan"
	"superpose/internal/sim"
	"superpose/internal/timing"
)

// Evaluator is the defender's workbench: the golden (Trojan-free) netlist
// with its nominal power model on one side, the physical Device on the
// other. Everything the detection flow knows is computed here.
type Evaluator struct {
	golden *netlist.Netlist
	chains *scan.Chains
	eng    *scan.Engine // golden-model activity prediction
	model  *power.Model
	dev    *Device
	mode   scan.Mode

	// scale is the per-die calibration factor (see Calibrate): observed
	// powers are divided by it, which is what makes the methodology
	// self-referential with respect to inter-die variation.
	scale float64

	// Drift compensation (see SetDriftReference): every driftWindow
	// delivered readings the reference pattern is re-measured and the
	// running driftScale updated, so a slow thermal ramp in the tester
	// divides out of all subsequent observations.
	driftRef    *scan.Pattern
	driftBase   float64
	driftScale  float64
	driftWindow int
	sinceRef    int

	masks []logic.Word // scratch for batch pricing

	// tsetBuf and splitBuf back the pair-analysis toggle decomposition
	// (AnalyzePair/AnalyzePairs). The strategic climb analyses pairs once
	// per candidate modification; at 10⁵–10⁶ gates each analysis would
	// otherwise allocate megabytes of toggle sets whose floating garbage —
	// not live data — dominates certify-time peak RSS. The decomposition
	// never escapes the analysis (only counts and nominal sums are kept),
	// so one grown-to-high-water buffer per Evaluator serves every call.
	tsetBuf  []int
	splitBuf []int

	// adaptiveSweep caches the all-stimulus-bits sweep session across
	// Adaptive calls: the flip list depends only on the scan shape, which
	// is fixed per Evaluator, so the structural cone analysis is paid
	// once per workbench rather than once per climb.
	adaptiveSweep *Sweep

	// Delay-channel golden side, built lazily on the first
	// MeasureDelayChannel call: the nominal delay model over the golden
	// netlist (same library as the device's delay chip) and a pooled
	// walker that turns golden toggle predictions into nominal
	// sensitized-path delays.
	goldenDelay  *timing.Model
	goldenWalker *timing.PathWalker
}

// NewEvaluator assembles the workbench. The scan configuration is built on
// the golden netlist with numChains chains; the device must have been
// created with the same chain count.
func NewEvaluator(golden *netlist.Netlist, lib *power.Library, dev *Device, numChains int, mode scan.Mode) *Evaluator {
	return NewEvaluatorFromChains(golden, lib, dev, scan.Configure(golden, numChains), mode)
}

// NewEvaluatorFromChains assembles the workbench over an explicit scan
// configuration (which must structurally match the device's — see
// NewDeviceFromChains).
func NewEvaluatorFromChains(golden *netlist.Netlist, lib *power.Library, dev *Device, ch *scan.Chains, mode scan.Mode) *Evaluator {
	return &Evaluator{
		golden:     golden,
		chains:     ch,
		eng:        scan.NewEngine(ch),
		model:      power.NewModel(golden, lib),
		dev:        dev,
		mode:       mode,
		scale:      1,
		driftScale: 1,
	}
}

// Close returns the workbench's pooled simulation buffers — the golden
// engine's frames and any cached sweep session — to the shared pools.
// The device is owned by the caller and stays open. The Evaluator must
// not be used afterwards; Close is idempotent.
func (ev *Evaluator) Close() {
	ev.eng.Close()
	if ev.adaptiveSweep != nil {
		ev.adaptiveSweep.Close()
		ev.adaptiveSweep = nil
	}
	if ev.goldenWalker != nil {
		ev.goldenWalker.Release()
		ev.goldenWalker = nil
	}
}

// SetEngine selects the simulation backend on both sides of the
// workbench — the golden-model engine, the device, and any cached sweep
// session. Every Reading, PairAnalysis and sweep lane is bit-identical
// across kinds; the selector changes cost only.
func (ev *Evaluator) SetEngine(kind sim.EngineKind) {
	ev.eng.SetKind(kind)
	ev.dev.SetEngine(kind)
	if ev.adaptiveSweep != nil {
		ev.adaptiveSweep.SetEngine(kind)
	}
}

// Engine returns the resolved golden-model simulation backend.
func (ev *Evaluator) Engine() sim.EngineKind { return ev.eng.Kind() }

// launch runs a golden-model simulation of 1..64 patterns. Callers chunk
// larger sets; an out-of-range batch here is an internal invariant
// violation, not a user error.
func (ev *Evaluator) launch(pats []*scan.Pattern) {
	if _, _, err := ev.eng.Launch(pats, ev.mode); err != nil {
		panic(err.Error())
	}
}

// Calibrate estimates this die's global power scale — the inter-die
// variation component, which multiplies every gate of the chip equally —
// as the median of observed/nominal over a set of patterns, and corrects
// all subsequent measurements by it. This is the "dissecting and
// understanding the characteristics of a given manufactured IC" step of
// the paper's self-referential methodology (§V-D: inter-die variation has
// no opportunity to disrupt behaviour). The median is robust to the tiny
// Trojan contamination of individual readings. It returns the estimated
// scale.
func (ev *Evaluator) Calibrate(pats []*scan.Pattern) float64 {
	var ratios []float64
	for start := 0; start < len(pats); start += 64 {
		end := start + 64
		if end > len(pats) {
			end = len(pats)
		}
		batch := pats[start:end]
		observed := ev.dev.MeasureBatch(batch)
		ev.launch(batch)
		for i := range batch {
			nom := ev.model.Nominal(ev.eng.Toggles(uint(i)))
			// Readings the acquisition layer could not stabilize (NaN)
			// carry no calibration information; the median over the
			// survivors stays robust to losing a few.
			if nom > 0 && !math.IsNaN(observed[i]) {
				ratios = append(ratios, observed[i]/nom)
			}
		}
	}
	if len(ratios) == 0 {
		return ev.scale
	}
	sort.Float64s(ratios)
	med := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		med = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	if med > 0 {
		ev.scale = med
	}
	return ev.scale
}

// Scale returns the current calibration factor (1 when uncalibrated).
func (ev *Evaluator) Scale() float64 { return ev.scale }

// Chains returns the scan configuration (for pattern construction).
func (ev *Evaluator) Chains() *scan.Chains { return ev.chains }

// Golden returns the defender's netlist.
func (ev *Evaluator) Golden() *netlist.Netlist { return ev.golden }

// Device returns the IC under certification.
func (ev *Evaluator) Device() *Device { return ev.dev }

// Reading is one defender-visible measurement of a pattern.
type Reading struct {
	Observed float64 `json:"observed"` // chip power
	Nominal  float64 `json:"nominal"`  // golden-model nominal power of the predicted activity
	RPD      float64 `json:"rpd"`      // Eq. 1
}

// SetDriftReference enables drift compensation against a reference
// pattern: its reading is taken now as the baseline, and every
// DriftWindow delivered readings (from the device's acquisition policy)
// it is re-measured; the ratio of current to baseline is divided out of
// all subsequent observations. A tester's slow thermal ramp — which a
// per-die calibration taken once at the start cannot see — is thereby
// compensated at the cost of one extra reading per window. A
// non-positive or unstable baseline disables compensation.
func (ev *Evaluator) SetDriftReference(ref *scan.Pattern) {
	ev.driftRef = nil
	ev.driftScale = 1
	ev.driftWindow = ev.dev.Acquisition().DriftWindow
	if ev.driftWindow <= 0 || ref == nil {
		return
	}
	base := ev.dev.MeasureBatch([]*scan.Pattern{ref})[0]
	if math.IsNaN(base) || base <= 0 {
		return
	}
	ev.driftRef = ref
	ev.driftBase = base
	ev.sinceRef = 0
}

// DriftScale returns the current drift-compensation factor (1 when
// compensation is disabled or no drift has been observed).
func (ev *Evaluator) DriftScale() float64 { return ev.driftScale }

// maybeTrackDrift re-measures the drift reference once per window and
// updates the running drift scale. An unstable re-measurement keeps the
// previous estimate.
func (ev *Evaluator) maybeTrackDrift() {
	if ev.driftRef == nil || ev.sinceRef < ev.driftWindow {
		return
	}
	ev.sinceRef = 0
	cur := ev.dev.MeasureBatch([]*scan.Pattern{ev.driftRef})[0]
	if !math.IsNaN(cur) && cur > 0 {
		ev.driftScale = cur / ev.driftBase
	}
}

// MeasureBatch evaluates a set of patterns: chip observation plus
// golden-model nominal expectation for each. Any batch size is accepted
// (64-lane launches are chunked internally). Observations are corrected
// by the calibration scale and the running drift estimate; a reading the
// acquisition layer could not stabilize propagates as NaN.
func (ev *Evaluator) MeasureBatch(pats []*scan.Pattern) []Reading {
	out := make([]Reading, 0, len(pats))
	for start := 0; start < len(pats); start += 64 {
		end := start + 64
		if end > len(pats) {
			end = len(pats)
		}
		out = append(out, ev.measureChunk(pats[start:end])...)
	}
	return out
}

func (ev *Evaluator) measureChunk(pats []*scan.Pattern) []Reading {
	ev.maybeTrackDrift()
	observed := ev.dev.MeasureBatch(pats)
	ev.sinceRef += len(pats)
	ev.launch(pats)
	ev.masks = ev.eng.ToggleMasks(ev.masks)
	nominals := ev.model.NominalLanes(ev.masks, len(pats))
	out := make([]Reading, len(pats))
	for i := range pats {
		obs := observed[i] / (ev.scale * ev.driftScale)
		out[i] = Reading{
			Observed: obs,
			Nominal:  nominals[i],
			RPD:      RPD(obs, nominals[i]),
		}
	}
	return out
}

// Measure evaluates a single pattern.
func (ev *Evaluator) Measure(p *scan.Pattern) Reading {
	return ev.MeasureBatch([]*scan.Pattern{p})[0]
}

// MeasureDelayChannel runs the delay side channel over a pattern set:
// the device measures each pattern's sensitized-path delay on the die
// (tester delay faults and the robust acquisition policy included), the
// golden side computes the nominal expectation from the same stimuli —
// the patterns need no re-generation, exactly the LOS-reuse argument —
// and delay.Analyze calibrates out the inter-die scale and scores the
// worst residual. Requires a delay chip on the device (SetDelayChip).
//
// The golden nominal model is built lazily from the device chip's
// library, so defender and die price delays from the same cells. The
// call leaves every power-channel quantity untouched: calibration
// scale, drift tracking and the device's power fault stream all stay
// bit-identical to a run that never measures delay.
func (ev *Evaluator) MeasureDelayChannel(pats []*scan.Pattern) delay.Result {
	measured := ev.dev.MeasureDelayBatch(pats)
	if ev.goldenDelay == nil {
		ev.goldenDelay = timing.NewModel(ev.golden, ev.dev.DelayChip().Library())
		ev.goldenWalker = timing.NewPathWalker(ev.golden)
	}
	nominal := make([]float64, len(pats))
	for start := 0; start < len(pats); start += 64 {
		end := start + 64
		if end > len(pats) {
			end = len(pats)
		}
		chunk := pats[start:end]
		ev.launch(chunk)
		sets, tbuf := ev.eng.TogglesAllBuf(len(chunk), ev.tsetBuf)
		ev.tsetBuf = tbuf
		for i := range chunk {
			nominal[start+i] = ev.goldenWalker.PathDelay(ev.goldenDelay.Delays(), sets[i])
		}
	}
	return delay.Analyze(measured, nominal)
}

// GoldenToggles returns the golden-model toggle set of a pattern — the
// defender's prediction of which gates switch.
func (ev *Evaluator) GoldenToggles(p *scan.Pattern) []int {
	ev.launch([]*scan.Pattern{p})
	return ev.eng.Toggles(0) // freshly allocated per call by the toggle extractor
}

// PairAnalysis is the superposition view of a pattern pair (§IV-C): the
// observed and nominal powers, the golden-model activity decomposition,
// and the resulting S-RPD.
type PairAnalysis struct {
	A *scan.Pattern `json:"a,omitempty"`
	B *scan.Pattern `json:"b,omitempty"`

	ObservedA float64 `json:"observed_a"`
	ObservedB float64 `json:"observed_b"`
	NominalA  float64 `json:"nominal_a"`
	NominalB  float64 `json:"nominal_b"`

	// Golden-model activity decomposition (gate counts) and the nominal
	// power of the unique parts — the Eq. 2 denominator.
	CommonCount    int     `json:"common_count"`
	AUniqueCount   int     `json:"a_unique_count"`
	BUniqueCount   int     `json:"b_unique_count"`
	NominalAUnique float64 `json:"nominal_a_unique"`
	NominalBUnique float64 `json:"nominal_b_unique"`

	// UniqueEnergySq is Σe² over both unique sets: the squared scale of
	// the intra-die variation the pair is exposed to (σ·√UniqueEnergySq
	// is the residual's standard deviation under the benign hypothesis).
	UniqueEnergySq float64 `json:"unique_energy_sq"`

	SRPD float64 `json:"srpd"`
}

// Residual returns the Eq. 2 numerator: the observed power difference not
// explained by the nominal model.
func (pa *PairAnalysis) Residual() float64 {
	return (pa.ObservedA - pa.ObservedB) - (pa.NominalA - pa.NominalB)
}

// Significance returns |Residual| / √(Σe² of the unique sets) — the number
// of per-unit-σ standard deviations the residual stands above benign
// intra-die variation. Unlike S-RPD it is scale-free in σ, so it ranks
// candidate pairs without assuming a variation magnitude.
func (pa *PairAnalysis) Significance() float64 {
	if pa.UniqueEnergySq <= 0 {
		return 0
	}
	r := pa.Residual()
	if r < 0 {
		r = -r
	}
	return r / math.Sqrt(pa.UniqueEnergySq)
}

// AnalyzePair applies superposition to a pattern pair.
func (ev *Evaluator) AnalyzePair(a, b *scan.Pattern) PairAnalysis {
	// MeasureBatch's nominal pricing launched the pair on the golden
	// engine and nothing since touched it, so its frames still hold
	// the pair's toggle activity — no relaunch needed.
	readings := ev.MeasureBatch([]*scan.Pattern{a, b})
	sets, tbuf := ev.eng.TogglesAllBuf(2, ev.tsetBuf)
	ev.tsetBuf = tbuf
	common, aU, bU, sbuf := splitTogglesInto(sets[0], sets[1], ev.splitBuf)
	ev.splitBuf = sbuf

	pa := PairAnalysis{
		A: a, B: b,
		ObservedA: readings[0].Observed, ObservedB: readings[1].Observed,
		NominalA: readings[0].Nominal, NominalB: readings[1].Nominal,
		CommonCount:  len(common),
		AUniqueCount: len(aU), BUniqueCount: len(bU),
		NominalAUnique: ev.model.Nominal(aU),
		NominalBUnique: ev.model.Nominal(bU),
		UniqueEnergySq: ev.model.NominalSumSquares(aU) + ev.model.NominalSumSquares(bU),
	}
	pa.SRPD = SRPD(pa.ObservedA, pa.ObservedB, pa.NominalA, pa.NominalB,
		pa.NominalAUnique, pa.NominalBUnique)
	return pa
}
