package core

import "fmt"

// Aggregation selects how repeated readings of one pattern are collapsed
// into the delivered measurement.
type Aggregation uint8

const (
	// AggMean is the plain average — the classical tester practice, and
	// exactly what a heavy-tailed outlier spike destroys.
	AggMean Aggregation = iota
	// AggMedian is the sample median: immune to any minority of
	// arbitrarily wild samples.
	AggMedian
	// AggTrimmedMean averages after discarding the TrimFrac fraction of
	// extreme samples on each side.
	AggTrimmedMean
)

// String names the aggregation.
func (a Aggregation) String() string {
	switch a {
	case AggMean:
		return "mean"
	case AggMedian:
		return "median"
	case AggTrimmedMean:
		return "trimmed-mean"
	default:
		return fmt.Sprintf("Aggregation(%d)", uint8(a))
	}
}

// AcquisitionPolicy drives the robust measurement-acquisition layer of a
// Device: how many readings are taken per pattern, how outliers among
// them are rejected, how the survivors are aggregated, and how much
// re-measurement a deficient reading earns. The zero value behaves like
// NaiveAcquisition (one reading, plain mean, no rejection).
type AcquisitionPolicy struct {
	// Repeats is the number of readings taken per pattern (minimum 1).
	Repeats int
	// Aggregation collapses the surviving readings into one value.
	Aggregation Aggregation
	// TrimFrac is the per-side trim fraction of AggTrimmedMean
	// (default 0.25 — the interquartile mean).
	TrimFrac float64
	// MADThreshold, when positive, rejects samples more than this many
	// median-absolute-deviations from the sample median before
	// aggregation. Needs at least 3 samples to act.
	MADThreshold float64
	// RetryBudget is the maximum number of extra measurement passes
	// granted when a pattern still has fewer than MinValid surviving
	// samples after the initial Repeats.
	RetryBudget int
	// MinValid is the number of surviving samples a reading needs to be
	// considered stable (minimum 1). A reading that ends below it after
	// the retry budget is exhausted — or with no surviving sample at
	// all — is delivered as NaN and counted in AcquisitionStats.Unstable.
	MinValid int
	// SpreadGate, when positive, is the maximum relative dispersion
	// (MAD over |median|) the surviving samples of a reading may show.
	// A reading above the gate is re-measured from the retry budget and
	// delivered as NaN if it never settles — the defense against burst
	// windows long enough to contaminate every repeat of a small batch,
	// where no point-outlier rejection can help.
	SpreadGate float64
	// DriftWindow, when positive, is the number of delivered readings
	// between reference-pattern re-measurements in the Evaluator's drift
	// compensation (see Evaluator.SetDriftReference).
	DriftWindow int
	// StuckGuard, when set, discards samples that exactly equal the
	// immediately-preceding raw reading of a *different* pattern (or that
	// continue such a run). A latched ADC repeats its value bit-for-bit,
	// so the stale samples of a stuck window are mutually identical —
	// zero dispersion — and sail through both MAD rejection and the
	// spread gate; exact cross-pattern equality is the one observable
	// trace they leave. Repeated readings of the *same* pattern are
	// exempt, so noiseless single-pattern acquisition is unaffected.
	StuckGuard bool
}

// withDefaults clamps the policy to its documented minima.
func (p AcquisitionPolicy) withDefaults() AcquisitionPolicy {
	if p.Repeats < 1 {
		p.Repeats = 1
	}
	if p.MinValid < 1 {
		p.MinValid = 1
	}
	if p.Aggregation == AggTrimmedMean && p.TrimFrac <= 0 {
		p.TrimFrac = 0.25
	}
	return p
}

// NaiveAcquisition is the classical single-shot policy: one reading per
// pattern, taken at face value. It is exact on an ideal tester and
// collapses under tester pathologies (EXPERIMENTS.md, robustness table).
func NaiveAcquisition() AcquisitionPolicy {
	return AcquisitionPolicy{Repeats: 1, Aggregation: AggMean}
}

// RobustAcquisition is the hardened policy: five readings per pattern,
// 4-MAD outlier rejection, median aggregation, a three-pass retry budget
// for readings left with fewer than three survivors or still showing
// more than 5% relative dispersion, a stuck-latch duplicate guard, and
// drift compensation against a reference pattern every 64 readings. The
// tight drift window matters: the strategic stage shrinks pair
// denominators aggressively, so even sub-percent staleness in the global
// scale estimate can masquerade as signal on a clean die. The spread
// gate matters for small batches, where a burst window outlasts all
// repeats of a reading and no point-outlier rejection can save it —
// better an honest NaN than a confident wrong value. The stuck guard
// matters because a latched ADC produces stale samples that are
// *mutually identical*: a zero-dispersion majority that median, MAD and
// spread gate all trust completely.
func RobustAcquisition() AcquisitionPolicy {
	return AcquisitionPolicy{
		Repeats:      5,
		Aggregation:  AggMedian,
		MADThreshold: 4,
		RetryBudget:  3,
		MinValid:     3,
		SpreadGate:   0.05,
		StuckGuard:   true,
		DriftWindow:  64,
	}
}

// AcquisitionStats counts what the acquisition layer observed and did.
// Unlike tester.Stats (the fault model's ground truth), every counter
// here is visible to a real defender.
type AcquisitionStats struct {
	// Readings is the number of aggregated readings delivered.
	Readings uint64 `json:"readings"`
	// Passes is the number of measurement sweeps over the chip
	// (each sweep reads every pattern of the current batch once).
	Passes uint64 `json:"passes"`
	// Raw is the number of raw samples taken from the tester.
	Raw uint64 `json:"raw"`
	// Dropped is the number of raw samples lost by the tester (NaN).
	Dropped uint64 `json:"dropped"`
	// Rejected is the number of samples discarded by MAD outlier
	// rejection.
	Rejected uint64 `json:"rejected"`
	// Latched is the number of samples discarded by the stuck-latch
	// guard (exact duplicates across different patterns).
	Latched uint64 `json:"latched"`
	// Retries is the number of extra measurement passes spent on
	// readings that were still deficient after the initial repeats.
	Retries uint64 `json:"retries"`
	// Unstable is the number of delivered readings with no surviving
	// sample (reported as NaN and excluded downstream).
	Unstable uint64 `json:"unstable"`
}

// Sub returns the counter deltas s − earlier (for per-run accounting on
// a reused device).
func (s AcquisitionStats) Sub(earlier AcquisitionStats) AcquisitionStats {
	return AcquisitionStats{
		Readings: s.Readings - earlier.Readings,
		Passes:   s.Passes - earlier.Passes,
		Raw:      s.Raw - earlier.Raw,
		Dropped:  s.Dropped - earlier.Dropped,
		Rejected: s.Rejected - earlier.Rejected,
		Latched:  s.Latched - earlier.Latched,
		Retries:  s.Retries - earlier.Retries,
		Unstable: s.Unstable - earlier.Unstable,
	}
}

// String renders the counters compactly.
func (s AcquisitionStats) String() string {
	return fmt.Sprintf("readings %d (passes %d, raw %d; dropped %d, rejected %d, latched %d, retries %d, unstable %d)",
		s.Readings, s.Passes, s.Raw, s.Dropped, s.Rejected, s.Latched, s.Retries, s.Unstable)
}
