package core

import (
	"fmt"
	"io"
)

// WriteReport renders a complete human-readable certification report: the
// document a lab would archive with the die. It covers every stage of the
// flow with the quantities the verdict rests on.
func WriteReport(w io.Writer, rep *Report) error {
	p := func(format string, args ...interface{}) {}
	var err error
	p = func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("CERTIFICATION REPORT — test pattern superposition\n")
	p("=================================================\n\n")

	p("1. Seed stage\n")
	if rep.ATPGSummary != "" {
		p("   %s\n", rep.ATPGSummary)
	}
	p("   strongest seed: RPD %+.5f (observed %.3f vs nominal %.3f)\n\n",
		rep.SeedReading.RPD, rep.SeedReading.Observed, rep.SeedReading.Nominal)

	p("2. Adaptive flow\n")
	if rep.Adaptive != nil {
		steps := rep.Adaptive.Steps
		p("   %d accepted steps, transitions %d -> %d\n",
			len(steps)-1, steps[0].Transitions, steps[len(steps)-1].Transitions)
		p("   best suspicious signal: RPD %+.5f at step %d\n",
			rep.AdaptiveReading.RPD, rep.Adaptive.Best)
		p("   drop screen flagged %d pattern pairs\n\n", len(rep.Adaptive.Pairs))
	}

	p("3. Superposition\n")
	if rep.HasPair {
		pa := rep.Superposition
		p("   selected pair: unique activity %d + %d gates (common %d)\n",
			pa.AUniqueCount, pa.BUniqueCount, pa.CommonCount)
		p("   residual %+.3f over unique nominal %.3f -> S-RPD %+.5f\n",
			pa.Residual(), pa.NominalAUnique+pa.NominalBUnique, pa.SRPD)
		p("   significance: %.3f per unit sigma_intra -> z = %.1f at the assumed process\n\n",
			pa.Significance(), rep.FinalZ)

		p("4. Strategic modifications\n")
		p("   %d alignment moves applied:\n", len(rep.Strategic.Applied))
		for _, m := range rep.Strategic.Applied {
			loc := fmt.Sprintf("chain %d bit %d", m.Cell.Chain, m.Cell.Index)
			if m.Cell.IsPI() {
				loc = fmt.Sprintf("primary input %d", m.Cell.Index)
			}
			p("     %-16s %-22s S-RPD %+.5f -> %+.5f\n", m.Kind, loc, m.SRPDBefore, m.SRPDAfter)
		}
		fin := rep.Strategic.Final
		p("   final pair: unique %d + %d gates, S-RPD %+.5f\n\n",
			fin.AUniqueCount, fin.BUniqueCount, fin.SRPD)
	} else {
		p("   no suspicious drop flagged; fallback pair S-RPD %+.5f\n\n", rep.FinalSRPD)
	}

	if rep.HasPair && rep.Confirmed.A != nil {
		p("   verdict confirmation: re-measured S-RPD %+.5f\n\n", rep.Confirmed.SRPD)
	}

	p("5. Verdict\n")
	p("   assumed intra-die variation: 3 sigma = %.0f%%\n", 100*rep.Varsigma)
	p("   max benign S-RPD (Eq. 3):    %.4f\n", MaxBenignSRPD(rep.Varsigma))
	p("   achieved |S-RPD|:            %.4f\n", abs(rep.FinalSRPD))
	if rep.Detected {
		p("   >> TROJAN DETECTED\n\n")
	} else {
		p("   >> no signal beyond process variation\n\n")
	}

	p("6. Detection likelihood vs intra-die variation (Eq. 3)\n")
	for _, v := range TableIIVarsigmas {
		p("   3 sigma = %4.0f%%: %s\n", 100*v,
			FormatProbability(DetectionProbability(rep.FinalSRPD, v)))
	}

	// The acquisition section only appears when the measurement layer
	// actually did robust work (repeats, rejection, retries) or had to
	// degrade gracefully — an ideal single-shot run stays a 6-section
	// report.
	acq := rep.Acquisition
	if acq.Raw > acq.Readings || acq.Dropped+acq.Rejected+acq.Latched+acq.Unstable > 0 ||
		rep.UnstableSeeds+rep.UnstablePairs > 0 {
		p("\n7. Measurement acquisition\n")
		p("   %s\n", acq)
		if rep.UnstableSeeds > 0 {
			p("   %d seed pattern(s) excluded from ranking (unstable readings)\n", rep.UnstableSeeds)
		}
		if rep.UnstablePairs > 0 {
			p("   %d flagged pair(s) excluded from the verdict (unstable readings)\n", rep.UnstablePairs)
		}
	}
	return err
}
